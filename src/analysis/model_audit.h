// Static auditor for model-side data: lookup tables, characterized CSM
// models, and serve-layer arc surfaces -- at rest (store files) or in
// memory. Catches the data defects that otherwise surface as NaN-poisoned
// transients or silently wrong served delays: non-finite payload values,
// broken axes, voltage grids that do not cover the rail range, and
// unphysical header parameters.
//
// Rules (severity / id):
//   error   table.empty               rank-0 / valueless table
//   error   table.nonfinite-value     NaN/Inf payload value
//   error   table.axis-nonfinite      NaN/Inf axis knot
//   error   table.axis-nonmonotone    knots not strictly increasing
//   error   model.inconsistent-shape  table ranks/axes vs pins/internals
//   error   model.physical-range      vdd/dv_margin/temp out of range
//   error   model.knot-coverage       voltage axis does not cover [0, vdd]
//   error   model.duplicate-pin       pin/internal name repeated
//   warning model.negative-capacitance  Co/Cin table dips below zero
//   error   surface.nonpositive-slew  slew table value <= 0
//   error   surface.bad-parameters    dt/settle not finite and positive
//   error   store.unreadable          file failed to load (corrupt,
//                                     truncated, wrong kind, bad checksum)
//   info    store.scanned             directory summary
//
// ModelRepository runs audit_model on every load when
// RepositoryOptions::lint_on_load is set (the default), and the
// examples/mcsm_lint CLI runs audit_path over store directories.
#ifndef MCSM_ANALYSIS_MODEL_AUDIT_H
#define MCSM_ANALYSIS_MODEL_AUDIT_H

#include <string>

#include "analysis/diagnostics.h"
#include "core/model.h"
#include "lut/ndtable.h"
#include "serve/model_store.h"

namespace mcsm::analysis {

// Audits one table. `context` names it in messages ("Io", "NOR2.Io", ...);
// empty uses table.name(). `vdd` > 0 additionally requires every axis to
// cover the voltage range [0, vdd] (pass 0 for non-voltage tables).
LintReport audit_table(const lut::NdTable& table, const std::string& context,
                       double vdd = 0.0);

LintReport audit_model(const core::CsmModel& model);

LintReport audit_surface(const serve::ArcSurfaceData& surface);

// Audits one store file by extension (.csm.bin / .csm / .surf.bin); a file
// that fails to load yields a store.unreadable error instead of throwing.
LintReport audit_file(const std::string& path);

// Audits `path`: a store file, or a directory scanned (non-recursively)
// for store files. Unknown paths yield a store.unreadable error.
LintReport audit_path(const std::string& path);

}  // namespace mcsm::analysis

#endif  // MCSM_ANALYSIS_MODEL_AUDIT_H
