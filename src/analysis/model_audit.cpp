#include "analysis/model_audit.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "common/error.h"
#include "core/model_io.h"

namespace mcsm::analysis {

namespace fs = std::filesystem;

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// First non-finite entry of `values`; -1 when all finite.
long first_nonfinite(const std::vector<double>& values) {
    for (std::size_t i = 0; i < values.size(); ++i)
        if (!std::isfinite(values[i])) return static_cast<long>(i);
    return -1;
}

std::size_t count_nonfinite(const std::vector<double>& values) {
    std::size_t n = 0;
    for (const double v : values)
        if (!std::isfinite(v)) ++n;
    return n;
}

void audit_axes(const lut::NdTable& table, const std::string& name,
                double vdd, LintReport& report) {
    for (std::size_t d = 0; d < table.rank(); ++d) {
        const lut::Axis& ax = table.axis(d);
        const std::vector<double>& knots = ax.knots();
        const long bad = first_nonfinite(knots);
        if (bad >= 0) {
            Diagnostic& diag = report.add(
                Severity::kError, "table.axis-nonfinite",
                "table '" + name + "' axis '" + ax.name() + "' knot " +
                    std::to_string(bad) + " is not finite");
            diag.hint = "re-characterize or restore the table from a good "
                        "copy";
            continue;
        }
        for (std::size_t i = 1; i < knots.size(); ++i) {
            if (!(knots[i] > knots[i - 1])) {
                Diagnostic& diag = report.add(
                    Severity::kError, "table.axis-nonmonotone",
                    "table '" + name + "' axis '" + ax.name() +
                        "' is not strictly increasing (knot " +
                        std::to_string(i) + " = " + std::to_string(knots[i]) +
                        " <= knot " + std::to_string(i - 1) + " = " +
                        std::to_string(knots[i - 1]) + ")");
                diag.hint = "interpolation needs strictly increasing knots";
                break;
            }
        }
        if (vdd > 0.0 && (ax.lo() > 0.0 || ax.hi() < vdd)) {
            Diagnostic& diag = report.add(
                Severity::kError, "model.knot-coverage",
                "table '" + name + "' axis '" + ax.name() + "' spans [" +
                    std::to_string(ax.lo()) + ", " + std::to_string(ax.hi()) +
                    "] V and does not cover the rail range [0, " +
                    std::to_string(vdd) + "] V");
            diag.hint = "evaluation clamps outside the grid; the model "
                        "would serve edge values for in-range voltages";
        }
    }
}

void range_check(double value, double lo, double hi, const char* what,
                 LintReport& report) {
    if (std::isfinite(value) && value > lo && value < hi) return;
    Diagnostic& diag = report.add(
        Severity::kError, "model.physical-range",
        std::string(what) + " = " + std::to_string(value) +
            " outside the physical range (" + std::to_string(lo) + ", " +
            std::to_string(hi) + ")");
    diag.hint = "the model header is corrupt or was characterized with "
                "nonsensical options";
}

// Minimum over a table's payload (0 for empty tables).
double min_value(const lut::NdTable& t) {
    if (t.values().empty()) return 0.0;
    return *std::min_element(t.values().begin(), t.values().end());
}

}  // namespace

LintReport audit_table(const lut::NdTable& table, const std::string& context,
                       double vdd) {
    LintReport report;
    const std::string name = context.empty() ? table.name() : context;
    if (table.rank() == 0 || table.value_count() == 0) {
        report.add(Severity::kError, "table.empty",
                   "table '" + name + "' has no axes/values");
        return report;
    }
    audit_axes(table, name, vdd, report);
    const long bad = first_nonfinite(table.values());
    if (bad >= 0) {
        Diagnostic& diag = report.add(
            Severity::kError, "table.nonfinite-value",
            "table '" + name + "' holds " +
                std::to_string(count_nonfinite(table.values())) +
                " non-finite value(s) (first at flat index " +
                std::to_string(bad) + " of " +
                std::to_string(table.value_count()) + ")");
        diag.hint = "a NaN knot poisons every interpolation that touches "
                    "its cell; re-characterize the model";
    }
    return report;
}

LintReport audit_model(const core::CsmModel& model) {
    LintReport report;
    const std::string cell =
        model.cell_name.empty() ? "<unnamed>" : model.cell_name;

    try {
        model.check_consistent();
    } catch (const ModelError& e) {
        Diagnostic& diag = report.add(
            Severity::kError, "model.inconsistent-shape",
            "model '" + cell + "': " + e.what());
        diag.hint = "table ranks/axis counts disagree with the declared "
                    "pins/internals; the store file is corrupt or "
                    "hand-edited";
        return report;  // table iteration below assumes consistent shape
    }

    range_check(model.vdd, 0.0, 10.0, "vdd [V]", report);
    range_check(model.dv_margin, 0.0, model.vdd > 0.0 ? model.vdd : 10.0,
                "dv_margin [V]", report);
    range_check(model.temp_c, -100.0, 400.0, "temp_c [degC]", report);

    std::set<std::string> seen;
    std::vector<std::string> all_names = model.pins;
    all_names.insert(all_names.end(), model.fixed_pins.begin(),
                     model.fixed_pins.end());
    all_names.insert(all_names.end(), model.internals.begin(),
                     model.internals.end());
    for (const std::string& pin : all_names) {
        if (!seen.insert(pin).second) {
            Diagnostic& diag = report.add(
                Severity::kError, "model.duplicate-pin",
                "model '" + cell + "' declares '" + pin +
                    "' more than once across pins/fixed/internals");
            diag.nodes.push_back(pin);
        }
    }
    for (std::size_t i = 0; i < model.fixed_values.size(); ++i) {
        if (!std::isfinite(model.fixed_values[i]))
            report.add(Severity::kError, "model.physical-range",
                       "model '" + cell + "' fixed pin '" +
                           model.fixed_pins[i] + "' held at non-finite " +
                           "voltage");
    }

    const double vdd = std::isfinite(model.vdd) ? model.vdd : 0.0;
    const auto table = [&](const lut::NdTable& t, const std::string& label) {
        report.merge(audit_table(t, cell + "." + label, vdd));
    };
    table(model.i_out, "Io");
    for (std::size_t j = 0; j < model.i_internal.size(); ++j)
        table(model.i_internal[j], "IN_" + model.internals[j]);
    for (std::size_t p = 0; p < model.c_miller.size(); ++p)
        table(model.c_miller[p], "Cm_" + model.pins[p]);
    table(model.c_out, "Co");
    for (std::size_t j = 0; j < model.c_internal.size(); ++j)
        table(model.c_internal[j], "CN_" + model.internals[j]);
    for (std::size_t i = 0; i < model.c_miller_internal.size(); ++i)
        table(model.c_miller_internal[i], "CmN_" + std::to_string(i));
    for (std::size_t p = 0; p < model.c_in.size(); ++p)
        table(model.c_in[p], "Cin_" + model.pins[p]);

    // Grounded capacitance tables should not dip (meaningfully) below zero;
    // Miller tables are excluded (their sign convention is bias-dependent).
    constexpr double kCapTol = -1e-18;  // transient-extraction noise floor
    if (min_value(model.c_out) < kCapTol) {
        Diagnostic& diag = report.add(
            Severity::kWarning, "model.negative-capacitance",
            "model '" + cell + "' Co dips to " +
                std::to_string(min_value(model.c_out)) + " F");
        diag.hint = "sizeable negative output capacitance usually means a "
                    "broken cap extraction";
    }
    for (std::size_t p = 0; p < model.c_in.size(); ++p) {
        if (min_value(model.c_in[p]) < kCapTol) {
            Diagnostic& diag = report.add(
                Severity::kWarning, "model.negative-capacitance",
                "model '" + cell + "' Cin_" + model.pins[p] + " dips to " +
                    std::to_string(min_value(model.c_in[p])) + " F");
            diag.hint = "sizeable negative input capacitance usually means "
                        "a broken cap extraction";
        }
    }
    return report;
}

LintReport audit_surface(const serve::ArcSurfaceData& surface) {
    LintReport report;
    const std::string arc =
        surface.arc_id.empty() ? "<unnamed-arc>" : surface.arc_id;
    if (surface.arc_id.empty())
        report.add(Severity::kWarning, "surface.bad-parameters",
                   "surface has an empty arc id");
    if (!(std::isfinite(surface.dt) && surface.dt > 0.0) ||
        !(std::isfinite(surface.settle) && surface.settle > 0.0)) {
        Diagnostic& diag = report.add(
            Severity::kError, "surface.bad-parameters",
            "surface '" + arc + "' has dt = " + std::to_string(surface.dt) +
                ", settle = " + std::to_string(surface.settle) +
                " (both must be finite and > 0)");
        diag.hint = "the parameter block is corrupt; delete the file and "
                    "let the service rebuild it";
    }
    report.merge(audit_table(surface.delay, arc + ".delay"));
    report.merge(audit_table(surface.slew, arc + ".slew"));
    // Output slews are 10-90% transition times: strictly positive in any
    // physical surface. (Delays may legitimately be negative -- they are
    // referenced to pin 0's edge, not the latest edge.)
    if (!surface.slew.values().empty() && min_value(surface.slew) <= 0.0) {
        Diagnostic& diag = report.add(
            Severity::kError, "surface.nonpositive-slew",
            "surface '" + arc + "' slew table dips to " +
                std::to_string(min_value(surface.slew)) + " s");
        diag.hint = "a non-positive transition time cannot come from a "
                    "converged transient; rebuild the surface";
    }
    return report;
}

LintReport audit_file(const std::string& path) {
    LintReport report;
    const auto unreadable = [&](const std::string& what) {
        Diagnostic& diag = report.add(Severity::kError, "store.unreadable",
                                      path + ": " + what);
        diag.hint = "the file is corrupt, truncated, or not a store file; "
                    "delete it and let the repository rebuild it";
    };
    try {
        if (ends_with(path, serve::kBinaryModelExt)) {
            report.merge(audit_model(serve::load_model_binary(path)));
        } else if (ends_with(path, serve::kSurfaceExt)) {
            report.merge(audit_surface(serve::load_surface_binary(path)));
        } else if (ends_with(path, serve::kTextModelExt)) {
            report.merge(audit_model(core::load_model(path)));
        } else {
            unreadable("unknown store extension (expected .csm.bin, .csm, "
                       "or .surf.bin)");
        }
    } catch (const ModelError& e) {
        unreadable(e.what());
    }
    // Prefix every diagnostic with the file it came from.
    LintReport prefixed;
    for (Diagnostic d : report.diagnostics()) {
        if (d.message.compare(0, path.size(), path) != 0)
            d.message = path + ": " + d.message;
        prefixed.add(std::move(d));
    }
    return prefixed;
}

LintReport audit_path(const std::string& path) {
    LintReport report;
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
        std::vector<std::string> files;
        for (const auto& entry : fs::directory_iterator(path, ec)) {
            if (!entry.is_regular_file()) continue;
            const std::string p = entry.path().string();
            if (ends_with(p, serve::kBinaryModelExt) ||
                ends_with(p, serve::kSurfaceExt) ||
                ends_with(p, serve::kTextModelExt))
                files.push_back(p);
        }
        std::sort(files.begin(), files.end());
        for (const std::string& f : files) report.merge(audit_file(f));
        report.add(Severity::kInfo, "store.scanned",
                   path + ": audited " + std::to_string(files.size()) +
                       " store file(s)");
        return report;
    }
    if (fs::is_regular_file(path, ec)) return audit_file(path);
    Diagnostic& diag = report.add(Severity::kError, "store.unreadable",
                                  path + ": no such file or directory");
    diag.hint = "pass a store file or a directory of store files";
    return report;
}

}  // namespace mcsm::analysis
