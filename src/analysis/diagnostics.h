// Structured diagnostics shared by the pre-flight static analyses
// (analysis/circuit_lint, analysis/model_audit). A diagnostic names the
// rule that fired, the severity, the circuit/model objects involved and a
// fix hint, so callers can gate admission on error_count() and surface the
// report verbatim to users (the mcsm_lint CLI prints it as a table).
// Every diagnostic added to a report also bumps the process-wide
// lint.errors / lint.warnings / lint.infos obs counters (see obs/metrics.h),
// so a long-running server's snapshot records whether any audit complained.
#ifndef MCSM_ANALYSIS_DIAGNOSTICS_H
#define MCSM_ANALYSIS_DIAGNOSTICS_H

#include <cstddef>
#include <string>
#include <vector>

namespace mcsm::analysis {

enum class Severity {
    kError,    // the artifact will fail or produce wrong results; reject it
    kWarning,  // suspicious but simulatable; surface it
    kInfo,     // informational context (component counts, ...)
};

const char* to_string(Severity severity);

struct Diagnostic {
    Severity severity = Severity::kError;
    // Stable dotted rule id, e.g. "circuit.floating-node",
    // "model.nonfinite-value" (the full set is documented in README
    // "Static analysis & diagnostics").
    std::string rule;
    // What is wrong, with the concrete values involved.
    std::string message;
    // Circuit node / device / table names involved (may be empty).
    std::vector<std::string> nodes;
    std::vector<std::string> devices;
    // How to fix it (may be empty).
    std::string hint;

    // "error[circuit.floating-node] node 'n1' ... (hint)" single-line form.
    std::string format() const;
};

class LintReport {
public:
    void add(Diagnostic diagnostic);
    // Convenience for the common fields-only case.
    Diagnostic& add(Severity severity, std::string rule, std::string message);

    const std::vector<Diagnostic>& diagnostics() const { return diags_; }
    bool empty() const { return diags_.empty(); }
    std::size_t size() const { return diags_.size(); }

    std::size_t count(Severity severity) const;
    std::size_t error_count() const { return count(Severity::kError); }
    std::size_t warning_count() const { return count(Severity::kWarning); }
    bool has_errors() const { return error_count() > 0; }

    // Diagnostics whose rule id equals `rule`.
    std::vector<const Diagnostic*> by_rule(const std::string& rule) const;
    bool fired(const std::string& rule) const { return !by_rule(rule).empty(); }

    // Appends another report (e.g. per-file audits into a directory run).
    void merge(const LintReport& other);

    // Multi-line human-readable report; "" when empty.
    std::string format() const;

    // Throws ModelError carrying the formatted report when has_errors().
    // `context` prefixes the message ("ModelRepository[NOR2.MCSM.A-B]").
    void require_clean(const std::string& context) const;

private:
    std::vector<Diagnostic> diags_;
};

}  // namespace mcsm::analysis

#endif  // MCSM_ANALYSIS_DIAGNOSTICS_H
