#include "analysis/structural.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/error.h"

namespace mcsm::analysis {

namespace {

constexpr int kInf = std::numeric_limits<int>::max();

// Hopcroft-Karp over rows (left) and cols (right). Standard formulation:
// repeat { BFS layers the graph from every free row; DFS augments along
// vertex-disjoint shortest paths } until no augmenting path remains.
class HopcroftKarp {
public:
    HopcroftKarp(std::size_t n, std::span<const std::pair<int, int>> entries)
        : n_(n),
          adj_(n),
          row_match_(n, -1),
          col_match_(n, -1),
          dist_(n, kInf) {
        for (const auto& [r, c] : entries) {
            require(r >= 0 && c >= 0 && static_cast<std::size_t>(r) < n &&
                        static_cast<std::size_t>(c) < n,
                    "structural_analysis: entry out of range");
            adj_[static_cast<std::size_t>(r)].push_back(c);
        }
        // Dedup per row: duplicate stamp entries are common (DC + transient
        // passes touch the same slots) and would only slow the search.
        for (std::vector<int>& cols : adj_) {
            std::sort(cols.begin(), cols.end());
            cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
        }
    }

    std::size_t run() {
        std::size_t matched = 0;
        while (bfs()) {
            for (std::size_t r = 0; r < n_; ++r)
                if (row_match_[r] < 0 && dfs(static_cast<int>(r))) ++matched;
        }
        return matched;
    }

    const std::vector<int>& row_match() const { return row_match_; }
    const std::vector<int>& col_match() const { return col_match_; }

private:
    bool bfs() {
        std::queue<int> q;
        for (std::size_t r = 0; r < n_; ++r) {
            if (row_match_[r] < 0) {
                dist_[r] = 0;
                q.push(static_cast<int>(r));
            } else {
                dist_[r] = kInf;
            }
        }
        bool found_free_col = false;
        while (!q.empty()) {
            const int r = q.front();
            q.pop();
            for (const int c : adj_[static_cast<std::size_t>(r)]) {
                const int r2 = col_match_[static_cast<std::size_t>(c)];
                if (r2 < 0) {
                    found_free_col = true;
                } else if (dist_[static_cast<std::size_t>(r2)] == kInf) {
                    dist_[static_cast<std::size_t>(r2)] =
                        dist_[static_cast<std::size_t>(r)] + 1;
                    q.push(r2);
                }
            }
        }
        return found_free_col;
    }

    bool dfs(int r) {
        for (const int c : adj_[static_cast<std::size_t>(r)]) {
            const int r2 = col_match_[static_cast<std::size_t>(c)];
            if (r2 < 0 || (dist_[static_cast<std::size_t>(r2)] ==
                               dist_[static_cast<std::size_t>(r)] + 1 &&
                           dfs(r2))) {
                row_match_[static_cast<std::size_t>(r)] = c;
                col_match_[static_cast<std::size_t>(c)] = r;
                return true;
            }
        }
        dist_[static_cast<std::size_t>(r)] = kInf;
        return false;
    }

    std::size_t n_;
    std::vector<std::vector<int>> adj_;
    std::vector<int> row_match_;
    std::vector<int> col_match_;
    std::vector<int> dist_;
};

}  // namespace

StructuralResult structural_analysis(
    std::size_t n, std::span<const std::pair<int, int>> entries) {
    StructuralResult result;
    result.size = n;
    if (n == 0) return result;

    HopcroftKarp hk(n, entries);
    result.matching_size = hk.run();
    result.row_match = hk.row_match();
    for (std::size_t r = 0; r < result.size; ++r)
        if (result.row_match[r] < 0)
            result.unmatched_rows.push_back(static_cast<int>(r));
    for (std::size_t c = 0; c < result.size; ++c)
        if (hk.col_match()[c] < 0)
            result.unmatched_cols.push_back(static_cast<int>(c));
    return result;
}

}  // namespace mcsm::analysis
