// Structural (pattern-only) singularity analysis of a sparse matrix.
//
// A linear system is structurally nonsingular when some assignment of its
// structurally-nonzero entries forms a full transversal -- equivalently,
// when the bipartite graph rows x cols with an edge per stored entry has a
// perfect matching. If the maximum matching is deficient, EVERY numeric
// factorization must hit a zero pivot, regardless of device values: the
// deficiency names defective equations (rows) and unknowns (cols) exactly,
// which is far more actionable than SparseLu's eventual "singular matrix at
// pivot k". Maximum matching runs Hopcroft-Karp in O(E * sqrt(V)) over the
// CSR pattern -- microseconds at netlist scale.
#ifndef MCSM_ANALYSIS_STRUCTURAL_H
#define MCSM_ANALYSIS_STRUCTURAL_H

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace mcsm::analysis {

struct StructuralResult {
    std::size_t size = 0;           // system dimension n
    std::size_t matching_size = 0;  // maximum transversal size (<= n)
    std::vector<int> unmatched_rows;
    std::vector<int> unmatched_cols;
    // row_match[r] = matched column (-1 when unmatched); n entries.
    std::vector<int> row_match;

    bool structurally_singular() const { return matching_size < size; }
    // Rank deficiency lower bound implied by the pattern.
    std::size_t deficiency() const { return size - matching_size; }
};

// Maximum bipartite matching over the raw (row, col) entry list of an
// n x n pattern (duplicates are fine; values are irrelevant -- an entry a
// device merely *touches* counts as an edge, matching the solver's
// treatment of its fixed sparsity pattern). Takes the entry list rather
// than a built SparseMatrix deliberately: SparseMatrix::build inserts the
// full diagonal for pivot slots, which would hide exactly the empty rows
// this analysis exists to find. Feed it spice::collect_mna_entries(...,
// include_gmin=false).
StructuralResult structural_analysis(
    std::size_t n, std::span<const std::pair<int, int>> entries);

}  // namespace mcsm::analysis

#endif  // MCSM_ANALYSIS_STRUCTURAL_H
