#include "analysis/diagnostics.h"

#include <sstream>
#include <utility>

#include "common/error.h"
#include "obs/metrics.h"

namespace mcsm::analysis {

const char* to_string(Severity severity) {
    switch (severity) {
        case Severity::kError:
            return "error";
        case Severity::kWarning:
            return "warning";
        case Severity::kInfo:
            return "info";
    }
    return "?";
}

namespace {

void append_names(std::ostream& os, const char* label,
                  const std::vector<std::string>& names) {
    if (names.empty()) return;
    os << ' ' << label << '=';
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (i > 0) os << ',';
        os << names[i];
    }
}

}  // namespace

std::string Diagnostic::format() const {
    std::ostringstream os;
    os << to_string(severity) << '[' << rule << "] " << message;
    append_names(os, "nodes", nodes);
    append_names(os, "devices", devices);
    if (!hint.empty()) os << " (" << hint << ')';
    return os.str();
}

namespace {

// Every diagnostic, wherever it is raised (circuit linter, model/surface
// auditor, store checks), also bumps the process-wide lint.* counters so a
// snapshot shows whether any audit complained since startup.
void count_diagnostic(Severity severity) {
    static obs::Counter& errors = obs::counter("lint.errors");
    static obs::Counter& warnings = obs::counter("lint.warnings");
    static obs::Counter& infos = obs::counter("lint.infos");
    switch (severity) {
        case Severity::kError: errors.add(); break;
        case Severity::kWarning: warnings.add(); break;
        case Severity::kInfo: infos.add(); break;
    }
}

}  // namespace

void LintReport::add(Diagnostic diagnostic) {
    count_diagnostic(diagnostic.severity);
    diags_.push_back(std::move(diagnostic));
}

Diagnostic& LintReport::add(Severity severity, std::string rule,
                            std::string message) {
    count_diagnostic(severity);
    Diagnostic d;
    d.severity = severity;
    d.rule = std::move(rule);
    d.message = std::move(message);
    diags_.push_back(std::move(d));
    return diags_.back();
}

std::size_t LintReport::count(Severity severity) const {
    std::size_t n = 0;
    for (const Diagnostic& d : diags_)
        if (d.severity == severity) ++n;
    return n;
}

std::vector<const Diagnostic*> LintReport::by_rule(
    const std::string& rule) const {
    std::vector<const Diagnostic*> out;
    for (const Diagnostic& d : diags_)
        if (d.rule == rule) out.push_back(&d);
    return out;
}

void LintReport::merge(const LintReport& other) {
    diags_.insert(diags_.end(), other.diags_.begin(), other.diags_.end());
}

std::string LintReport::format() const {
    std::ostringstream os;
    for (const Diagnostic& d : diags_) os << d.format() << '\n';
    return os.str();
}

void LintReport::require_clean(const std::string& context) const {
    if (!has_errors()) return;
    std::ostringstream os;
    os << context << ": " << error_count() << " lint error(s)\n" << format();
    throw ModelError(os.str());
}

}  // namespace mcsm::analysis
