#include "analysis/circuit_lint.h"

#include <cmath>
#include <cstddef>
#include <numeric>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/structural.h"
#include "core/csm_device.h"
#include "spice/circuit.h"
#include "spice/solver_workspace.h"

namespace mcsm::analysis {

namespace {

using spice::Capacitor;
using spice::Circuit;
using spice::Device;
using spice::ISource;
using spice::Mosfet;
using spice::Resistor;
using spice::VSource;

// Plain union-find over node ids.
class UnionFind {
public:
    explicit UnionFind(std::size_t n) : parent_(n) {
        std::iota(parent_.begin(), parent_.end(), 0);
    }

    int find(int a) {
        while (parent_[static_cast<std::size_t>(a)] != a) {
            parent_[static_cast<std::size_t>(a)] =
                parent_[static_cast<std::size_t>(
                    parent_[static_cast<std::size_t>(a)])];
            a = parent_[static_cast<std::size_t>(a)];
        }
        return a;
    }

    // Returns false when a and b were already connected.
    bool unite(int a, int b) {
        const int ra = find(a);
        const int rb = find(b);
        if (ra == rb) return false;
        parent_[static_cast<std::size_t>(ra)] = rb;
        return true;
    }

private:
    std::vector<int> parent_;
};

// "n1, n2, n3, ... (+4 more)" with at most `cap` names spelled out.
std::string join_names(const std::vector<std::string>& names,
                       std::size_t cap = 8) {
    std::ostringstream os;
    for (std::size_t i = 0; i < names.size() && i < cap; ++i) {
        if (i > 0) os << ", ";
        os << '\'' << names[i] << '\'';
    }
    if (names.size() > cap)
        os << " (+" << names.size() - cap << " more)";
    return os.str();
}

bool valid_node(int node, const Circuit& circuit) {
    return node >= 0 && node < circuit.node_count();
}

// Name of MNA unknown `u`: a node voltage for u < n_nodes-1, otherwise the
// branch current of the owning voltage source.
std::string unknown_name(const Circuit& circuit, int u) {
    const int n_nodes = circuit.node_count();
    if (u < n_nodes - 1) return "v(" + circuit.node_name(u + 1) + ")";
    const int branch = u - (n_nodes - 1);
    for (const auto& dev : circuit.devices()) {
        if (dev->branch_count() > 0 && branch >= dev->branch_base() &&
            branch < dev->branch_base() + dev->branch_count())
            return "i(" + dev->name() + ")";
    }
    return "branch#" + std::to_string(branch);
}

}  // namespace

LintReport lint_circuit(Circuit& circuit, const CircuitLintOptions& options) {
    LintReport report;
    const auto& devices = circuit.devices();
    const std::size_t n_nodes = static_cast<std::size_t>(circuit.node_count());

    if (devices.empty()) {
        report.add(Severity::kWarning, "circuit.empty",
                   "circuit has no devices");
        return report;
    }

    // --- terminal scan: dangling ids, per-node degree --------------------
    bool dangling = false;
    std::vector<int> degree(n_nodes, 0);
    for (const auto& dev : devices) {
        for (const int t : dev->terminals()) {
            if (!valid_node(t, circuit)) {
                Diagnostic& d = report.add(
                    Severity::kError, "circuit.dangling-terminal",
                    "device '" + dev->name() + "' references node id " +
                        std::to_string(t) + " outside [0, " +
                        std::to_string(n_nodes) + ")");
                d.devices.push_back(dev->name());
                d.hint = "create nodes through Circuit::node() and pass the "
                         "returned id";
                dangling = true;
                continue;
            }
            ++degree[static_cast<std::size_t>(t)];
        }
    }

    // --- device value rules ----------------------------------------------
    for (const auto& dev : devices) {
        if (const auto* r = dynamic_cast<const Resistor*>(dev.get())) {
            if (!(std::isfinite(r->resistance()) && r->resistance() > 0.0)) {
                Diagnostic& d = report.add(
                    Severity::kError, "circuit.nonpositive-resistance",
                    "resistor '" + r->name() + "' has R = " +
                        std::to_string(r->resistance()) + " Ohm");
                d.devices.push_back(r->name());
                d.hint = "resistances must be finite and > 0; use a voltage "
                         "source for an ideal short";
            }
            if (r->node_a() == r->node_b() && valid_node(r->node_a(), circuit)) {
                Diagnostic& d = report.add(
                    Severity::kWarning, "circuit.shorted-passive",
                    "resistor '" + r->name() +
                        "' has both terminals on node '" +
                        circuit.node_name(r->node_a()) + "'");
                d.devices.push_back(r->name());
                d.nodes.push_back(circuit.node_name(r->node_a()));
                d.hint = "self-loops stamp nothing; remove the device";
            }
        } else if (const auto* c = dynamic_cast<const Capacitor*>(dev.get())) {
            if (!std::isfinite(c->capacitance()) || c->capacitance() < 0.0) {
                Diagnostic& d = report.add(
                    Severity::kError, "circuit.negative-capacitance",
                    "capacitor '" + c->name() + "' has C = " +
                        std::to_string(c->capacitance()) + " F");
                d.devices.push_back(c->name());
                d.hint = "capacitances must be finite and >= 0";
            } else if (c->capacitance() == 0.0) {
                Diagnostic& d = report.add(
                    Severity::kWarning, "circuit.zero-capacitance",
                    "capacitor '" + c->name() + "' has C = 0");
                d.devices.push_back(c->name());
                d.hint = "a zero capacitor has no effect; remove the device";
            }
            if (c->node_a() == c->node_b() && valid_node(c->node_a(), circuit)) {
                Diagnostic& d = report.add(
                    Severity::kWarning, "circuit.shorted-passive",
                    "capacitor '" + c->name() +
                        "' has both terminals on node '" +
                        circuit.node_name(c->node_a()) + "'");
                d.devices.push_back(c->name());
                d.nodes.push_back(circuit.node_name(c->node_a()));
                d.hint = "self-loops stamp nothing; remove the device";
            }
        } else if (const auto* v = dynamic_cast<const VSource*>(dev.get())) {
            if (v->positive_node() == v->negative_node()) {
                Diagnostic& d = report.add(
                    Severity::kError, "circuit.shorted-vsource",
                    "voltage source '" + v->name() +
                        "' has both terminals on one node");
                d.devices.push_back(v->name());
                if (valid_node(v->positive_node(), circuit))
                    d.nodes.push_back(circuit.node_name(v->positive_node()));
                d.hint = "a self-looped source forces 0 = V(t); its branch "
                         "current is indeterminate";
            }
        }
    }

    // --- per-node rules: floating / dangling nodes -----------------------
    for (std::size_t n = 1; n < n_nodes; ++n) {
        if (degree[n] == 0) {
            Diagnostic& d = report.add(
                Severity::kError, "circuit.floating-node",
                "node '" + circuit.node_name(static_cast<int>(n)) +
                    "' is not connected to any device");
            d.nodes.push_back(circuit.node_name(static_cast<int>(n)));
            d.hint = "its voltage is defined only by the gmin shunt; "
                     "connect or remove the node";
        } else if (degree[n] == 1) {
            Diagnostic& d = report.add(
                Severity::kWarning, "circuit.dangling-node",
                "node '" + circuit.node_name(static_cast<int>(n)) +
                    "' is connected to a single device terminal");
            d.nodes.push_back(circuit.node_name(static_cast<int>(n)));
            d.hint = "dead-end nets usually indicate a missing load or a "
                     "typo in a node name";
        }
    }

    // --- connectivity: DC paths to ground, full-graph components ---------
    if (!dangling) {
        UnionFind dc(n_nodes);
        UnionFind any(n_nodes);
        UnionFind vloop(n_nodes);
        for (const auto& dev : devices) {
            const std::vector<int> terms = dev->terminals();
            for (std::size_t i = 1; i < terms.size(); ++i)
                any.unite(terms[0], terms[i]);

            if (const auto* r = dynamic_cast<const Resistor*>(dev.get())) {
                dc.unite(r->node_a(), r->node_b());
            } else if (const auto* v = dynamic_cast<const VSource*>(dev.get())) {
                dc.unite(v->positive_node(), v->negative_node());
                if (v->positive_node() != v->negative_node() &&
                    !vloop.unite(v->positive_node(), v->negative_node())) {
                    Diagnostic& d = report.add(
                        Severity::kError, "circuit.vsource-loop",
                        "voltage source '" + v->name() +
                            "' closes a loop of ideal voltage sources "
                            "between nodes '" +
                            circuit.node_name(v->positive_node()) +
                            "' and '" +
                            circuit.node_name(v->negative_node()) + "'");
                    d.devices.push_back(v->name());
                    d.nodes.push_back(
                        circuit.node_name(v->positive_node()));
                    d.nodes.push_back(
                        circuit.node_name(v->negative_node()));
                    d.hint = "the loop current is indeterminate (the MNA "
                             "branch rows are structurally dependent); "
                             "insert a series resistance or drop one source";
                }
            } else if (const auto* m = dynamic_cast<const Mosfet*>(dev.get())) {
                // Channel and junctions conduct at DC; the gate does not.
                dc.unite(m->drain(), m->source());
                dc.unite(m->drain(), m->bulk());
            } else if (const auto* cell =
                           dynamic_cast<const core::CsmCellDevice*>(
                               dev.get())) {
                // The cell's current sources pin the output/internal nodes
                // to a model-consistent DC state; its input pins are
                // capacitive only (receiver caps).
                dc.unite(cell->out_node(), Circuit::kGround);
                for (const int internal : cell->internal_nodes())
                    dc.unite(internal, Circuit::kGround);
            }
            // Capacitors, LutCapDevice and current sources conduct nothing
            // at DC.
        }

        std::vector<std::string> no_path;
        for (std::size_t n = 1; n < n_nodes; ++n) {
            if (degree[n] == 0) continue;  // already reported as floating
            if (dc.find(static_cast<int>(n)) != dc.find(Circuit::kGround))
                no_path.push_back(circuit.node_name(static_cast<int>(n)));
        }
        if (!no_path.empty()) {
            Diagnostic d;
            d.severity = options.dc_path_is_error ? Severity::kError
                                                  : Severity::kWarning;
            d.rule = "circuit.no-dc-path";
            d.message = "node(s) " + join_names(no_path) +
                        " have no DC path to ground (reachable only "
                        "through capacitors, current sources, or MOSFET "
                        "gates)";
            d.nodes = no_path;
            d.hint = "their DC operating point is set by the gmin shunt "
                     "alone; add a resistive/source path or expect "
                     "gmin-dependent results";
            report.add(std::move(d));
        }

        std::vector<std::string> disconnected;
        for (std::size_t n = 1; n < n_nodes; ++n) {
            if (degree[n] == 0) continue;
            if (any.find(static_cast<int>(n)) != any.find(Circuit::kGround))
                disconnected.push_back(
                    circuit.node_name(static_cast<int>(n)));
        }
        if (!disconnected.empty()) {
            Diagnostic d;
            d.severity = Severity::kWarning;
            d.rule = "circuit.disconnected-subgraph";
            d.message = "node(s) " + join_names(disconnected) +
                        " form a subgraph with no connection of any kind "
                        "to the ground component";
            d.nodes = disconnected;
            d.hint = "isolated islands simulate independently; split them "
                     "into separate circuits or wire them up";
            report.add(std::move(d));
        }
    }

    // --- structural singularity of the MNA pattern -----------------------
    if (options.structural && !dangling) {
        circuit.prepare();
        const std::vector<std::pair<int, int>> entries =
            spice::collect_mna_entries(circuit, /*include_gmin=*/false);
        const std::size_t n = static_cast<std::size_t>(
            circuit.node_count() - 1 + circuit.branch_total());
        const StructuralResult sr = structural_analysis(n, entries);
        if (sr.structurally_singular()) {
            std::vector<std::string> rows;
            for (const int r : sr.unmatched_rows)
                rows.push_back(unknown_name(circuit, r));
            std::vector<std::string> cols;
            for (const int c : sr.unmatched_cols)
                cols.push_back(unknown_name(circuit, c));
            Diagnostic d;
            d.severity = Severity::kError;
            d.rule = "circuit.structural-singularity";
            d.message =
                "the MNA pattern has no full transversal (max matching " +
                std::to_string(sr.matching_size) + " of " +
                std::to_string(sr.size) +
                "): every factorization must hit a zero pivot; deficient "
                "equations: " +
                join_names(rows) + "; deficient unknowns: " + join_names(cols);
            d.nodes = std::move(rows);
            d.devices = std::move(cols);
            d.hint = "the named KCL/branch rows have no independent entry "
                     "-- typically a current-source-only node or a "
                     "voltage-source loop";
            report.add(std::move(d));
        }
    }

    return report;
}

}  // namespace mcsm::analysis
