// Pre-flight circuit linter: audits a spice::Circuit BEFORE any solve, so
// malformed netlists are rejected with named nodes/devices and fix hints
// instead of surfacing as Newton non-convergence, a singular LU pivot, or --
// worst -- a silently wrong waveform held up by the gmin shunt. This is the
// admission gate user-supplied decks pass through on their way into the
// solver (ROADMAP items 1 and 3).
//
// Rules (severity / id):
//   error   circuit.dangling-terminal       terminal node id out of range
//   error   circuit.floating-node           node with no device terminal
//   warning circuit.dangling-node           node with a single terminal
//   error   circuit.no-dc-path              node unreachable from ground
//                                           through DC-conducting devices
//   error   circuit.vsource-loop            loop of ideal voltage sources
//   error   circuit.shorted-vsource         V source with both terminals on
//                                           one node
//   error   circuit.nonpositive-resistance  R <= 0 (or non-finite)
//   error   circuit.negative-capacitance    C < 0 (or non-finite)
//   warning circuit.zero-capacitance        C == 0 (no effect)
//   warning circuit.shorted-passive         R/C with both terminals on one
//                                           node
//   warning circuit.disconnected-subgraph   devices in a component with no
//                                           path (of any kind) to ground
//   error   circuit.structural-singularity  the MNA pattern (without the
//                                           gmin crutch) has no full
//                                           transversal: every numeric
//                                           factorization must fail,
//                                           reported with the offending
//                                           rows/columns by name
//
// The structural check runs maximum bipartite matching (analysis/structural)
// on the same MNA sparsity pattern Circuit::prepare() discovers for the
// SolverWorkspace -- minus the gmin diagonal, which exists precisely to
// paper over the empty rows this rule is meant to find.
#ifndef MCSM_ANALYSIS_CIRCUIT_LINT_H
#define MCSM_ANALYSIS_CIRCUIT_LINT_H

#include "analysis/diagnostics.h"

namespace mcsm::spice {
class Circuit;
}

namespace mcsm::analysis {

struct CircuitLintOptions {
    // Run the bipartite-matching structural-singularity detector (skipped
    // automatically when dangling terminals make the pattern unbuildable).
    bool structural = true;
    // Demote no-dc-path to a warning (explicit-integrator workloads solve
    // node-by-node and tolerate capacitively-anchored nodes).
    bool dc_path_is_error = true;
};

// Lints `circuit`, binding device indices first (Circuit::prepare()) so the
// report matches what the solver would see. Does not solve anything.
LintReport lint_circuit(spice::Circuit& circuit,
                        const CircuitLintOptions& options = {});

}  // namespace mcsm::analysis

#endif  // MCSM_ANALYSIS_CIRCUIT_LINT_H
