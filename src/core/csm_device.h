// CSM cells as spice::Device implementations. Golden (transistor-level) and
// model circuits run through the same MNA transient engine, which makes the
// accuracy comparisons apples-to-apples and gives the model access to
// arbitrary loads (coupled RC nets, receiver caps, other CSM cells).
//
// Solving the output/internal nodes inside the MNA Newton loop is the
// implicit counterpart of the paper's explicit updates (eqs. (4), (5)); the
// explicit integrator lives in core/explicit_sim.h and an ablation bench
// compares the two.
#ifndef MCSM_CORE_CSM_DEVICE_H
#define MCSM_CORE_CSM_DEVICE_H

#include <span>
#include <string>
#include <vector>

#include "core/model.h"
#include "spice/device.h"

namespace mcsm::core {

class CsmCellDevice : public spice::Device {
public:
    // `pin_nodes` follow model.pins order; `internal_nodes` follow
    // model.internals order (pass freshly created circuit nodes - the device
    // owns their dynamics). When `stamp_input_caps` is set, the model's 1-D
    // receiver caps load the input nets (needed when the inputs are driven
    // by other cells rather than ideal sources).
    CsmCellDevice(std::string name, const CsmModel& model,
                  std::vector<int> pin_nodes, std::vector<int> internal_nodes,
                  int out_node, bool stamp_input_caps = false);

    int state_count() const override;
    std::vector<int> terminals() const override;
    void stamp(spice::Stamper& st, const spice::SimContext& ctx) const override;
    void commit(const spice::SimContext& ctx,
                std::span<double> state_next) const override;

    const CsmModel& model() const { return *model_; }
    int out_node() const { return out_; }
    const std::vector<int>& internal_nodes() const { return internals_; }

private:
    // Gathers [pins..., internals..., out] voltages from a solution vector.
    void gather(const std::vector<double>& x, std::vector<double>& v) const;

    // Capacitance tables evaluated at the previous accepted solution,
    // cached per transient step (shared by every Newton iteration and the
    // commit; each value is a multilinear interpolation over 2^dim table
    // corners). Keyed on SimContext::step_id.
    struct StepCaps {
        long long step_id = -1;
        std::vector<double> cm;   // pin -> out Miller, per pin
        double co = 0.0;
        std::vector<double> cn;   // per internal node
        std::vector<double> cmn;  // pin -> internal Miller, [p * n_int + j]
        std::vector<double> ca;   // grounded input component, per pin
    };
    const StepCaps& step_caps(const spice::SimContext& ctx) const;

    const CsmModel* model_;  // non-owning; outlives the circuit
    std::vector<int> pins_;
    std::vector<int> internals_;
    int out_;
    bool input_caps_;
    // Scratch for stamp()/commit(), preallocated so the Newton inner loop
    // stays allocation-free. A device belongs to one circuit and circuits
    // solve single-threaded, so plain mutable members are safe.
    mutable std::vector<double> v_scratch_;
    mutable std::vector<double> vp_scratch_;
    mutable std::vector<double> grad_scratch_;
    mutable StepCaps caps_cache_;
};

// A 1-D voltage-dependent grounded capacitor C(v), used for receiver input
// loads (the paper's CA(VA) tables).
class LutCapDevice : public spice::Device {
public:
    LutCapDevice(std::string name, const lut::NdTable& table, int node,
                 double scale = 1.0);

    int state_count() const override { return 1; }
    std::vector<int> terminals() const override { return {node_}; }
    void stamp(spice::Stamper& st, const spice::SimContext& ctx) const override;
    void commit(const spice::SimContext& ctx,
                std::span<double> state_next) const override;

private:
    double cap_at(double v) const;

    const lut::NdTable* table_;  // non-owning
    int node_;
    double scale_;
    // Per-step cache of the table lookup at the previous accepted solution
    // (keyed on SimContext::step_id, see CsmCellDevice::StepCaps).
    mutable long long cap_step_id_ = -1;
    mutable double cap_cache_ = 0.0;
};

}  // namespace mcsm::core

#endif  // MCSM_CORE_CSM_DEVICE_H
