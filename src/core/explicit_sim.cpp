#include "core/explicit_sim.h"

#include <cmath>

#include "common/error.h"
#include "common/numeric.h"

namespace mcsm::core {

ExplicitResult simulate_explicit(const CsmModel& model,
                                 const std::vector<wave::Waveform>& pin_inputs,
                                 const ExplicitOptions& options) {
    model.check_consistent();
    const std::size_t n_pins = model.pin_count();
    const std::size_t n_int = model.internal_count();
    require(pin_inputs.size() == n_pins,
            "simulate_explicit: one input waveform per switching pin");
    require(options.dt > 0.0 && options.tstop > options.dt,
            "simulate_explicit: bad time grid");

    const std::size_t dim = model.dim();
    std::vector<double> v(dim, 0.0);
    for (std::size_t p = 0; p < n_pins; ++p) v[p] = pin_inputs[p].at(0.0);

    // Initial internal/output state.
    std::vector<double> state0 = options.initial_state;
    if (state0.empty()) {
        state0 = model.dc_state(
            std::span<const double>(v.data(), n_pins));
    }
    require(state0.size() == n_int + 1,
            "simulate_explicit: initial_state must hold internals + out");
    for (std::size_t j = 0; j < n_int; ++j) v[n_pins + j] = state0[j];
    v[dim - 1] = state0[n_int];

    ExplicitResult result;
    result.internals.resize(n_int);
    result.out.append(0.0, v[dim - 1]);
    for (std::size_t j = 0; j < n_int; ++j)
        result.internals[j].append(0.0, v[n_pins + j]);

    const double dt = options.dt;
    const auto n_steps =
        static_cast<std::size_t>(std::ceil(options.tstop / dt));
    const double v_lo = -model.dv_margin;
    const double v_hi = model.vdd + model.dv_margin;

    for (std::size_t k = 1; k <= n_steps; ++k) {
        const double t_prev = dt * static_cast<double>(k - 1);
        const double t = dt * static_cast<double>(k);

        // Model components at the current state (paper: evaluated at t_k).
        const double io = model.io(v);
        const double co = model.co(v);
        double cm_total = 0.0;
        double miller_charge = 0.0;
        for (std::size_t p = 0; p < n_pins; ++p) {
            const double cm = model.cm(p, v);
            cm_total += cm;
            const double dva = pin_inputs[p].at(t) - pin_inputs[p].at(t_prev);
            miller_charge += cm * dva;
        }

        // Eq. (4): output update.
        const double c_out_total = options.load_cap + co + cm_total;
        const double vo_next =
            v[dim - 1] + (miller_charge - io * dt) / c_out_total;

        // Eq. (5): internal-node updates, extended with the optional
        // pin->internal Miller charge (zero tables reproduce the paper).
        std::vector<double> vn_next(n_int, 0.0);
        for (std::size_t j = 0; j < n_int; ++j) {
            const double in_j = model.in(j, v);
            const double cn_j = model.cn(j, v);
            double cmn_total = 0.0;
            double miller_n = 0.0;
            for (std::size_t p = 0; p < n_pins; ++p) {
                const double cmn = model.cmn(p, j, v);
                cmn_total += cmn;
                miller_n +=
                    cmn * (pin_inputs[p].at(t) - pin_inputs[p].at(t_prev));
            }
            vn_next[j] = v[n_pins + j] +
                         (miller_n - in_j * dt) / (cn_j + cmn_total);
        }

        // Advance: inputs at t, clamp states to the characterized range.
        for (std::size_t p = 0; p < n_pins; ++p) v[p] = pin_inputs[p].at(t);
        for (std::size_t j = 0; j < n_int; ++j)
            v[n_pins + j] = clamp(vn_next[j], v_lo, v_hi);
        v[dim - 1] = clamp(vo_next, v_lo, v_hi);

        result.out.append(t, v[dim - 1]);
        for (std::size_t j = 0; j < n_int; ++j)
            result.internals[j].append(t, v[n_pins + j]);
    }
    return result;
}

}  // namespace mcsm::core
