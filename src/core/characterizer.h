// Model characterization (paper Section 3.3).
//
// Current sources Io / IN: DC sweeps of every modeled node over a grid
// spanning [-dv, Vdd+dv] (the paper's safety margin), measuring the current
// each forcing source delivers into the cell.
//
// Capacitances Cm/Co/CN: SPICE-style transient analyses -- one node is
// driven with a saturated ramp while the others are held at DC grid values;
// the capacitive component of each measured source current (total minus the
// DC current at the instantaneous bias) divided by the ramp slope gives the
// capacitance, averaged over two ramp slopes as the paper prescribes.
// A fast "model linearization" mode computes the same quantities directly
// from the MOSFET small-signal capacitances (used by tests; an ablation
// bench shows the two agree).
//
// Input (receiver) capacitances: 1-D in the input voltage, extracted with
// the output tied to DC (paper's eq. (3) discussion), averaged over the two
// output rails and two slopes.
#ifndef MCSM_CORE_CHARACTERIZER_H
#define MCSM_CORE_CHARACTERIZER_H

#include <cstddef>
#include <string>
#include <vector>

#include "cells/library.h"
#include "core/model.h"
#include "spice/solver_workspace.h"

namespace mcsm::core {

struct CharOptions {
    std::size_t grid_points = 11;  // knots per voltage axis (>= 4)
    double dv = -1.0;              // sweep margin; <0 uses tech.dv_margin
    bool transient_caps = true;    // paper-faithful ramp extraction
    double cap_ramp = 150e-12;     // primary ramp duration (0-100%) [s]
    double cap_ramp2 = 300e-12;    // second slope averaged in [s]
    double dt = 1.5e-12;           // transient step for cap extraction [s]
    // LTE-adaptive stepping + Jacobian reuse for the cap-extraction ramps
    // (spice::fast_tran_options with a tightened dt ceiling); false forces
    // the legacy fixed-dt grid.
    bool adaptive_tran = true;
    std::size_t cin_points = 13;   // knots of the 1-D input-cap tables
    // Extract pin -> internal-node Miller caps (extension; the paper
    // neglects them). When false the tables are zero and CN absorbs all
    // capacitance incident to the stack node, exactly as in the paper.
    bool internal_miller = true;
    // Worker threads for the grid sweeps (0: all cores, see MCSM_THREADS).
    // Every worker runs its own testbench fixture and solver workspace and
    // writes disjoint table slots. The DC sweep is bitwise identical for
    // any thread count or claim order: each first-axis slice runs its own
    // blocked solve_dc_sweep with a fresh pivot order and a slice-local
    // warm-start chain (so shortcut characterizations — transient_caps
    // false — are fully deterministic; the transient cap extraction
    // remains reproducible to solver tolerance, its worker fixtures reuse
    // frozen pivot orders across combos).
    std::size_t threads = 0;
    // Solver backend for the testbench fixtures (the dense fallback is kept
    // for cross-checking and perf baselines).
    spice::SolverBackend backend = spice::default_solver_backend();
};

class Characterizer {
public:
    explicit Characterizer(const cells::CellLibrary& lib);

    // Characterizes `cell_name` with the given switching pins.
    //  kSis:         switching_pins must name exactly one input.
    //  kMisBaseline: two inputs, internal nodes left free (not modeled).
    //  kMcsm:        one or two inputs; every internal node of the cell is
    //                modeled (forced during characterization).
    // Remaining inputs are held at their non-controlling values.
    CsmModel characterize(const std::string& cell_name, ModelKind kind,
                          const std::vector<std::string>& switching_pins,
                          const CharOptions& options = {}) const;

private:
    const cells::CellLibrary* lib_;
};

}  // namespace mcsm::core

#endif  // MCSM_CORE_CHARACTERIZER_H
