#include "core/model.h"

#include <cmath>

#include "common/error.h"
#include "common/numeric.h"
#include "common/dense_matrix.h"
#include "common/linear_solver.h"

namespace mcsm::core {

const char* to_string(ModelKind kind) {
    switch (kind) {
        case ModelKind::kSis: return "SIS";
        case ModelKind::kMisBaseline: return "MIS-baseline";
        case ModelKind::kMcsm: return "MCSM";
    }
    return "?";
}

void CsmModel::check_consistent() const {
    const std::size_t d = dim();
    require(pin_count() >= 1, "CsmModel: need at least one switching pin");
    require(kind == ModelKind::kMcsm || internals.empty(),
            "CsmModel: only MCSM models carry internal nodes");
    require(i_out.rank() == d, "CsmModel: i_out rank mismatch");
    require(i_internal.size() == internals.size(),
            "CsmModel: i_internal count mismatch");
    require(c_internal.size() == internals.size(),
            "CsmModel: c_internal count mismatch");
    require(c_miller.size() == pins.size(),
            "CsmModel: c_miller count mismatch");
    require(c_in.size() == pins.size(), "CsmModel: c_in count mismatch");
    for (const auto& t : i_internal)
        require(t.rank() == d, "CsmModel: i_internal rank mismatch");
    for (const auto& t : c_miller)
        require(t.rank() == d, "CsmModel: c_miller rank mismatch");
    require(c_out.rank() == d, "CsmModel: c_out rank mismatch");
    for (const auto& t : c_internal)
        require(t.rank() == d, "CsmModel: c_internal rank mismatch");
    require(c_miller_internal.size() == pins.size() * internals.size(),
            "CsmModel: c_miller_internal count mismatch");
    for (const auto& t : c_miller_internal)
        require(t.rank() == d, "CsmModel: c_miller_internal rank mismatch");
    for (const auto& t : c_in)
        require(t.rank() == 1, "CsmModel: c_in must be 1-D");
    require(fixed_pins.size() == fixed_values.size(),
            "CsmModel: fixed pin/value mismatch");
}

double CsmModel::cin(std::size_t p, double vin) const {
    const double q[1] = {vin};
    return c_in[p].at(std::span<const double>(q, 1));
}

std::vector<double> CsmModel::dc_state(
    std::span<const double> pin_volts) const {
    require(pin_volts.size() == pin_count(), "dc_state: pin count mismatch");
    const std::size_t k = internal_count();
    const std::size_t n_unknowns = k + 1;  // internals + output
    const std::size_t d = dim();

    std::vector<double> v(d, 0.0);
    for (std::size_t p = 0; p < pin_count(); ++p) v[p] = pin_volts[p];

    // Coarse scan for a Newton starting point: minimizes the worst residual
    // over a small grid of the unknowns (robust against the plateaus of the
    // multilinear interpolants).
    {
        const std::vector<double> levels =
            linspace(0.0, vdd, 7);
        std::vector<std::size_t> idx(n_unknowns, 0);
        std::vector<double> best(n_unknowns, 0.5 * vdd);
        double best_score = 1e300;
        for (;;) {
            for (std::size_t j = 0; j < n_unknowns; ++j)
                v[pin_count() + j] = levels[idx[j]];
            double score = 0.0;
            for (std::size_t r = 0; r < n_unknowns; ++r) {
                const lut::NdTable& table = r < k ? i_internal[r] : i_out;
                score = std::max(score, std::fabs(table.at(v)));
            }
            if (score < best_score) {
                best_score = score;
                for (std::size_t j = 0; j < n_unknowns; ++j)
                    best[j] = v[pin_count() + j];
            }
            std::size_t dpos = n_unknowns;
            while (dpos-- > 0) {
                if (++idx[dpos] < levels.size()) break;
                idx[dpos] = 0;
                if (dpos == 0) goto scan_done;
            }
        }
    scan_done:
        for (std::size_t j = 0; j < n_unknowns; ++j)
            v[pin_count() + j] = best[j];
    }

    // Residual: [IN_0..IN_{k-1}, Io] = 0. Damped Newton on the multilinear
    // interpolants; gradients are exact within each cell.
    std::vector<double> grad(d, 0.0);
    const int max_iter = 200;
    for (int it = 0; it < max_iter; ++it) {
        DenseMatrix jac(n_unknowns, n_unknowns);
        std::vector<double> residual(n_unknowns, 0.0);
        for (std::size_t r = 0; r < n_unknowns; ++r) {
            const lut::NdTable& table =
                r < k ? i_internal[r] : i_out;
            residual[r] = table.at_with_gradient(v, grad);
            for (std::size_t c = 0; c < n_unknowns; ++c)
                jac.at(r, c) = grad[pin_count() + c];
        }

        double res_norm = 0.0;
        for (double r : residual) res_norm = std::max(res_norm, std::fabs(r));
        // Current scale: table max gives the natural residual unit.
        const double unit = std::max(1e-12, i_out.max_abs());
        if (res_norm < 1e-9 * unit) break;

        std::vector<double> step;
        try {
            // Regularize: multilinear plateaus can make the Jacobian
            // singular; a small diagonal keeps Newton moving.
            for (std::size_t jj = 0; jj < n_unknowns; ++jj)
                jac.at(jj, jj) += 1e-9 * unit;
            step = solve_lu(jac, residual);
        } catch (const NumericalError&) {
            break;
        }
        double max_step = 0.0;
        for (double s : step) max_step = std::max(max_step, std::fabs(s));
        const double alpha = max_step > 0.2 ? 0.2 / max_step : 1.0;
        for (std::size_t c = 0; c < n_unknowns; ++c) {
            double& x = v[pin_count() + c];
            x = clamp(x - alpha * step[c], -dv_margin, vdd + dv_margin);
        }
        if (alpha * max_step < 1e-12) break;
    }

    return std::vector<double>(v.begin() + static_cast<std::ptrdiff_t>(pin_count()),
                               v.end());
}

}  // namespace mcsm::core
