// Selective modeling (paper Section 3.4): the internal-node effect matters
// only when the cell's internal capacitance is comparable to the total
// output load, so lightly-loaded cells use the complete MCSM while heavily
// loaded ones can fall back to the cheaper baseline MIS model.
#ifndef MCSM_CORE_SELECTIVE_H
#define MCSM_CORE_SELECTIVE_H

#include "core/model.h"

namespace mcsm::core {

struct SelectivePolicy {
    // Use the complete model when internal_node_significance exceeds this.
    double threshold = 0.08;
};

// max_j CN_j / (load_cap + Co), with the capacitances evaluated at a typical
// mid-transition bias. Zero for models without internal nodes.
double internal_node_significance(const CsmModel& model, double load_cap);

bool needs_complete_model(const CsmModel& model, double load_cap,
                          const SelectivePolicy& policy = {});

// Picks between the complete and baseline models for the given load.
const CsmModel& select_model(const CsmModel& complete,
                             const CsmModel& baseline, double load_cap,
                             const SelectivePolicy& policy = {});

}  // namespace mcsm::core

#endif  // MCSM_CORE_SELECTIVE_H
