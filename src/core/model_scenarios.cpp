#include "core/model_scenarios.h"

#include "common/error.h"
#include "wave/edges.h"

namespace mcsm::core {

using spice::Circuit;
using spice::SourceSpec;

ModelCell::ModelCell(
    const CsmModel& model,
    const std::unordered_map<std::string, wave::Waveform>& inputs,
    const ModelLoadSpec& load) {
    std::vector<int> pin_nodes;
    for (const std::string& pin : model.pins) {
        const int n = circuit_.node("in_" + pin);
        pin_nodes.push_back(n);
        const auto it = inputs.find(pin);
        require(it != inputs.end(),
                "ModelCell: missing waveform for switching pin " + pin);
        circuit_.add_vsource("V" + pin, n, Circuit::kGround,
                             SourceSpec::pwl(it->second));
    }
    for (const std::string& formal : model.internals)
        internal_nodes_.push_back(circuit_.node("int_" + formal));
    out_node_ = circuit_.node("out");

    circuit_.add_device<CsmCellDevice>("DUT", model, pin_nodes,
                                       internal_nodes_, out_node_,
                                       /*stamp_input_caps=*/false);

    if (load.cap > 0.0)
        circuit_.add_capacitor("CLOAD", out_node_, Circuit::kGround, load.cap);
    if (load.pi_r > 0.0) {
        far_node_ = circuit_.node("far");
        if (load.pi_c1 > 0.0)
            circuit_.add_capacitor("CPI1", out_node_, Circuit::kGround,
                                   load.pi_c1);
        circuit_.add_resistor("RPI", out_node_, far_node_, load.pi_r);
        if (load.pi_c2 > 0.0)
            circuit_.add_capacitor("CPI2", far_node_, Circuit::kGround,
                                   load.pi_c2);
    }
    if (load.fanout_count > 0) {
        require(load.receiver != nullptr,
                "ModelCell: fanout load needs a receiver model");
        circuit_.add_device<LutCapDevice>(
            "CFO", load.receiver->c_in.front(),
            far_node_ >= 0 ? far_node_ : out_node_,
            static_cast<double>(load.fanout_count));
    }
}

spice::TranResult ModelCell::run(const spice::TranOptions& options) {
    return spice::solve_tran(circuit_, options);
}

ModelCrosstalk::ModelCrosstalk(const CsmModel& inv_model,
                               const CsmModel& nor_model,
                               const engine::CrosstalkConfig& cfg,
                               double t_inject) {
    require(inv_model.pin_count() == 1,
            "ModelCrosstalk: inverter model must have one pin");
    require(nor_model.pin_count() == 2,
            "ModelCrosstalk: NOR model must have two pins");
    const double vdd = inv_model.vdd;

    victim_net_ = circuit_.node("vic");
    const int aggressor_net = circuit_.node("agg");
    nor_out_ = circuit_.node("nor_out");

    // Victim driver (SIS CSM inverter).
    victim_input_ =
        wave::piecewise_edges(vdd, {{cfg.t_victim, cfg.input_ramp, 0.0}});
    const int vin = circuit_.node("vic_in");
    circuit_.add_vsource("VVIC", vin, Circuit::kGround,
                         SourceSpec::pwl(victim_input_));
    circuit_.add_device<CsmCellDevice>("DRV_V", inv_model,
                                       std::vector<int>{vin},
                                       std::vector<int>{}, victim_net_,
                                       /*stamp_input_caps=*/false);

    // Aggressor driver.
    const wave::Waveform agg_in =
        cfg.aggressor_input_rising
            ? wave::piecewise_edges(0.0, {{t_inject, cfg.input_ramp, vdd}})
            : wave::piecewise_edges(vdd, {{t_inject, cfg.input_ramp, 0.0}});
    const int ain = circuit_.node("agg_in");
    circuit_.add_vsource("VAGG", ain, Circuit::kGround,
                         SourceSpec::pwl(agg_in));
    circuit_.add_device<CsmCellDevice>("DRV_A", inv_model,
                                       std::vector<int>{ain},
                                       std::vector<int>{}, aggressor_net,
                                       /*stamp_input_caps=*/false);

    // Interconnect parasitics (identical to the golden circuit).
    circuit_.add_capacitor("CC", victim_net_, aggressor_net, cfg.coupling_cap);
    if (cfg.victim_gnd_cap > 0.0)
        circuit_.add_capacitor("CGV", victim_net_, Circuit::kGround,
                               cfg.victim_gnd_cap);
    if (cfg.aggressor_gnd_cap > 0.0)
        circuit_.add_capacitor("CGA", aggressor_net, Circuit::kGround,
                               cfg.aggressor_gnd_cap);

    // NOR2 model: pin A on the victim net, pin B parked at ground
    // (non-controlling); its input caps load the nets.
    std::vector<int> nor_internals;
    for (const std::string& formal : nor_model.internals)
        nor_internals.push_back(circuit_.node("nor_int_" + formal));
    circuit_.add_device<CsmCellDevice>(
        "XNOR", nor_model, std::vector<int>{victim_net_, Circuit::kGround},
        nor_internals, nor_out_, /*stamp_input_caps=*/true);

    // FO2 receiver caps on the NOR2 output.
    if (cfg.fanout_count > 0)
        circuit_.add_device<LutCapDevice>(
            "CFO", inv_model.c_in.front(), nor_out_,
            static_cast<double>(cfg.fanout_count));
}

spice::TranResult ModelCrosstalk::run(const spice::TranOptions& options) {
    return spice::solve_tran(circuit_, options);
}

}  // namespace mcsm::core
