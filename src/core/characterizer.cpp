#include "core/characterizer.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <optional>

#include "common/error.h"
#include "common/numeric.h"
#include "common/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "spice/dc_solver.h"
#include "spice/tran_solver.h"
#include "wave/edges.h"

namespace mcsm::core {

namespace {

using cells::CellType;
using spice::Circuit;
using spice::DcOptions;
using spice::Mosfet;
using spice::SourceSpec;

// Characterization testbench: the cell with forcing voltage sources on
// every modeled node (switching pins, OUT, and - for MCSM - the internal
// stack nodes). Fixed pins sit at their non-controlling levels.
struct Fixture {
    Circuit circuit;
    std::vector<int> pin_nodes;
    std::vector<std::string> pin_sources;
    std::vector<int> internal_nodes;
    std::vector<std::string> internal_sources;
    int out_node = -1;
    std::string out_source = "VOUT";
    std::vector<const Mosfet*> dut_mosfets;

    // Node id of the forcing source for table axis d.
    const std::string& source_of_axis(std::size_t d,
                                      std::size_t n_pins) const {
        if (d < n_pins) return pin_sources[d];
        if (d < n_pins + internal_sources.size())
            return internal_sources[d - n_pins];
        return out_source;
    }
};

Fixture build_fixture(const cells::CellLibrary& lib, const CellType& cell,
                      const std::vector<std::string>& switching_pins,
                      bool force_internals, bool force_out, double out_level,
                      spice::SolverBackend backend) {
    Fixture f;
    f.circuit.set_solver_backend(backend);
    const double vdd = lib.tech().vdd;
    const int vdd_node = f.circuit.node("vdd");
    f.circuit.add_vsource("VDD", vdd_node, Circuit::kGround,
                          SourceSpec::dc(vdd));

    std::unordered_map<std::string, int> conn;
    conn[cells::kVdd] = vdd_node;
    conn[cells::kGnd] = Circuit::kGround;
    f.out_node = f.circuit.node("out");
    conn[cells::kOut] = f.out_node;

    for (const cells::PinInfo& pin : cell.inputs()) {
        const int n = f.circuit.node("in_" + pin.name);
        conn[pin.name] = n;
        const bool switching =
            std::find(switching_pins.begin(), switching_pins.end(),
                      pin.name) != switching_pins.end();
        const std::string src_name = "VP_" + pin.name;
        f.circuit.add_vsource(src_name, n, Circuit::kGround,
                              SourceSpec::dc(switching ? 0.0
                                                       : pin.non_controlling));
        if (switching) {
            // keep pin order as given in switching_pins
        }
    }
    // Record switching pins in the requested order.
    for (const std::string& p : switching_pins) {
        f.pin_nodes.push_back(conn.at(p));
        f.pin_sources.push_back("VP_" + p);
    }

    if (force_internals) {
        for (const std::string& formal : cell.internal_nodes()) {
            const int n = f.circuit.node("int_" + formal);
            conn[formal] = n;
            const std::string src = "VN_" + formal;
            f.circuit.add_vsource(src, n, Circuit::kGround, SourceSpec::dc(0.0));
            f.internal_nodes.push_back(n);
            f.internal_sources.push_back(src);
        }
    }

    if (force_out) {
        f.circuit.add_vsource(f.out_source, f.out_node, Circuit::kGround,
                              SourceSpec::dc(out_level));
    }

    const cells::CellInstance inst = cell.instantiate(f.circuit, "DUT", conn);
    (void)inst;
    for (const auto& dev : f.circuit.devices()) {
        if (const auto* m = dynamic_cast<const Mosfet*>(dev.get()))
            f.dut_mosfets.push_back(m);
    }
    f.circuit.prepare();
    return f;
}

// Sweep axes: {-dv, -dv/2, linspace(0, vdd, g-2)..., vdd+dv/2, vdd+dv}.
// Both rails are exact knots (needed for clean DC equilibria of the
// resulting model) and the safety margins get a midpoint knot: the early
// part of an output transition and the boosted stack-node voltages live in
// those margin cells, and leaving them as single interpolation cells costs
// several percent of delay accuracy.
std::vector<double> make_knots(double vdd, double dv, std::size_t g) {
    require(g >= 4, "Characterizer: grid_points must be >= 4");
    std::vector<double> knots;
    knots.reserve(g + 2);
    knots.push_back(-dv);
    knots.push_back(-0.5 * dv);
    for (double v : linspace(0.0, vdd, g - 2)) knots.push_back(v);
    knots.push_back(vdd + 0.5 * dv);
    knots.push_back(vdd + dv);
    return knots;
}

// Odometer increment over `sizes`; returns false on wrap-around.
bool next_index(std::vector<std::size_t>& idx,
                const std::vector<std::size_t>& sizes) {
    std::size_t d = idx.size();
    while (d-- > 0) {
        if (++idx[d] < sizes[d]) return true;
        idx[d] = 0;
        if (d == 0) return false;
    }
    return false;
}

// Sums the small-signal MOSFET capacitance between two circuit nodes at the
// bias in `x` (node voltages indexed by node id).
double pair_cap(const std::vector<const Mosfet*>& mosfets,
                const std::vector<double>& x, int a, int b) {
    double total = 0.0;
    for (const Mosfet* m : mosfets) {
        const spice::MosCaps c = m->evaluate_caps(
            x[static_cast<std::size_t>(m->drain())],
            x[static_cast<std::size_t>(m->gate())],
            x[static_cast<std::size_t>(m->source())],
            x[static_cast<std::size_t>(m->bulk())]);
        const struct {
            int u, v;
            double cap;
        } pairs[5] = {{m->gate(), m->source(), c.cgs},
                      {m->gate(), m->drain(), c.cgd},
                      {m->gate(), m->bulk(), c.cgb},
                      {m->drain(), m->bulk(), c.cdb},
                      {m->source(), m->bulk(), c.csb}};
        for (const auto& p : pairs) {
            if ((p.u == a && p.v == b) || (p.u == b && p.v == a))
                total += p.cap;
        }
    }
    return total;
}

// Sums all MOSFET capacitance incident to node `a`, excluding couplings to
// nodes in `excluded`.
double incident_cap(const std::vector<const Mosfet*>& mosfets,
                    const std::vector<double>& x, int a,
                    const std::vector<int>& excluded) {
    double total = 0.0;
    for (const Mosfet* m : mosfets) {
        const spice::MosCaps c = m->evaluate_caps(
            x[static_cast<std::size_t>(m->drain())],
            x[static_cast<std::size_t>(m->gate())],
            x[static_cast<std::size_t>(m->source())],
            x[static_cast<std::size_t>(m->bulk())]);
        const struct {
            int u, v;
            double cap;
        } pairs[5] = {{m->gate(), m->source(), c.cgs},
                      {m->gate(), m->drain(), c.cgd},
                      {m->gate(), m->bulk(), c.cgb},
                      {m->drain(), m->bulk(), c.cdb},
                      {m->source(), m->bulk(), c.csb}};
        for (const auto& p : pairs) {
            int other = -1;
            if (p.u == a) other = p.v;
            else if (p.v == a) other = p.u;
            else continue;
            if (other == a) continue;  // no self terms
            if (std::find(excluded.begin(), excluded.end(), other) !=
                excluded.end())
                continue;
            total += p.cap;
        }
    }
    return total;
}

// Combines the (dim-1) fixed-axis indices with knot k on the ramped axis.
std::vector<std::size_t> combine_index(const std::vector<std::size_t>& other,
                                       std::size_t ramp_axis, std::size_t k) {
    std::vector<std::size_t> idx(other.size() + 1);
    for (std::size_t d = 0, o = 0; d < idx.size(); ++d)
        idx[d] = (d == ramp_axis) ? k : other[o++];
    return idx;
}

// Paper-faithful capacitance extraction: drive one modeled node with a
// saturated ramp, hold the rest at DC grid values, and attribute
// (measured source current - DC current at the instantaneous bias) / slope
// as capacitance. Averaged over the two ramp durations in `opt`.
//
// The grid combinations are independent (each writes its own table slots
// and every transient starts from its own cold DC solve), so they fan out
// over per-worker fixtures; results are reproducible to solver tolerance
// for any thread count (each worker's LU freezes its pivot order at its
// first combo, so bitwise equality across schedules is not guaranteed).
void extract_caps_transient(CsmModel& model, const cells::CellLibrary& lib,
                            const CellType& cell,
                            const std::vector<std::string>& switching_pins,
                            bool force_internals, Fixture& fx,
                            const std::vector<double>& knots,
                            const CharOptions& opt) {
    const std::size_t dim = model.dim();
    const std::size_t n_pins = model.pin_count();
    const std::size_t n_int = model.internal_count();
    const std::size_t g = knots.size();
    const double lo = knots.front();
    const double hi = knots.back();
    const double t0 = 30e-12;
    const std::vector<double> ramps{opt.cap_ramp, opt.cap_ramp2};
    const double slope_weight = 1.0 / static_cast<double>(ramps.size());

    // The margin between an interior knot and the nearest ramp corner must
    // exceed a few steps, or the sample would sit on the corner transient.
    for (double ramp_time : ramps) {
        const double rate = (hi - lo) / ramp_time;
        require((knots[1] - lo) / rate > 3.0 * opt.dt,
                "Characterizer: dv margin too small for cap ramps; "
                "reduce dt or increase dv");
    }

    const std::vector<std::size_t> other_sizes(dim - 1, g);

    // One measurement: axis r ramped, the remaining axes parked at `other`;
    // accumulates both ramp slopes into the (r, other) table slots.
    auto measure_combo = [&](Fixture& cfx, std::size_t r,
                             const std::vector<std::size_t>& other) {
        // Program the non-ramped sources.
        for (std::size_t d = 0, o = 0; d < dim; ++d) {
            if (d == r) continue;
            cfx.circuit.vsource(cfx.source_of_axis(d, n_pins))
                .set_spec(SourceSpec::dc(knots[other[o]]));
            ++o;
        }
        for (double ramp_time : ramps) {
            const double rate = (hi - lo) / ramp_time;
            cfx.circuit.vsource(cfx.source_of_axis(r, n_pins))
                .set_spec(SourceSpec::pwl(
                    wave::saturated_ramp(t0, ramp_time, lo, hi)));
            spice::TranOptions topt;
            if (opt.adaptive_tran) {
                topt = spice::fast_tran_options(t0 + ramp_time + 20e-12,
                                                opt.dt);
                // Current samples feed finite-difference cap extraction:
                // keep the record grid dense enough that interpolating
                // between accepted steps stays below the averaging noise.
                topt.dt_max = 8.0 * opt.dt;
            } else {
                topt.tstop = t0 + ramp_time + 20e-12;
                topt.dt = opt.dt;
            }
            // Per-knot transient span: cold 6-D surface builds spend their
            // time here, so each ramp shows up individually in a trace.
            const obs::Span ramp_span("char.cap_ramp");
            const spice::TranResult res =
                spice::solve_tran(cfx.circuit, topt);
            const wave::Waveform i_out =
                res.vsource_current(cfx.out_source);

            for (std::size_t k = 1; k + 1 < g; ++k) {
                const double tk = t0 + (knots[k] - lo) / rate;
                const auto idx = combine_index(other, r, k);
                if (r < n_pins) {
                    // Pin ramp: Miller cap from the output-source
                    // current (model KCL: I_out = Io - Cm_r dVr/dt).
                    const double i_meas = -i_out.at(tk);
                    const double i_dc = model.i_out.grid_value(idx);
                    const double cm = -(i_meas - i_dc) / rate;
                    auto& slot = model.c_miller[r];
                    slot.set_grid_value(
                        idx, slot.grid_value(idx) + slope_weight * cm);
                    if (opt.internal_miller) {
                        // Same ramp, measured at the stack-node
                        // sources: pin -> internal Miller caps.
                        for (std::size_t j = 0; j < n_int; ++j) {
                            const wave::Waveform i_n = res.vsource_current(
                                cfx.internal_sources[j]);
                            const double in_meas = -i_n.at(tk);
                            const double in_dc =
                                model.i_internal[j].grid_value(idx);
                            const double cmn = -(in_meas - in_dc) / rate;
                            auto& t = model.c_miller_internal[r * n_int + j];
                            t.set_grid_value(
                                idx,
                                t.grid_value(idx) + slope_weight * cmn);
                        }
                    }
                } else if (r < n_pins + n_int) {
                    const std::size_t j = r - n_pins;
                    const wave::Waveform i_n =
                        res.vsource_current(cfx.internal_sources[j]);
                    const double i_meas = -i_n.at(tk);
                    const double i_dc =
                        model.i_internal[j].grid_value(idx);
                    const double cn = (i_meas - i_dc) / rate;
                    auto& slot = model.c_internal[j];
                    slot.set_grid_value(
                        idx, slot.grid_value(idx) + slope_weight * cn);
                } else {
                    // Output ramp: total output capacitance
                    // (Co + sum Cm); the Miller parts are subtracted
                    // after the sweep.
                    const double i_meas = -i_out.at(tk);
                    const double i_dc = model.i_out.grid_value(idx);
                    const double ct = (i_meas - i_dc) / rate;
                    model.c_out.set_grid_value(
                        idx,
                        model.c_out.grid_value(idx) + slope_weight * ct);
                }
            }
        }
    };

    // Inside a pool worker the fan-out would run inline anyway; take the
    // sequential path directly so no per-worker fixtures are built just to
    // find the work cursor drained. Worker fixtures are lazily built once
    // and reused across all ramped axes (fixture construction repeats the
    // pattern analysis and pivot search).
    const std::size_t max_workers =
        ThreadPool::on_worker_thread() ? 1 : resolve_threads(opt.threads);
    std::vector<std::optional<Fixture>> worker_fx(max_workers);

    for (std::size_t r = 0; r < dim; ++r) {
        std::vector<std::vector<std::size_t>> combos;
        std::vector<std::size_t> other(dim - 1, 0);
        do {
            combos.push_back(other);
        } while (next_index(other, other_sizes));

        const std::size_t n_workers = std::min(max_workers, combos.size());
        if (n_workers <= 1) {
            for (const auto& c : combos) measure_combo(fx, r, c);
        } else {
            std::atomic<std::size_t> next{0};
            parallel_workers(n_workers, [&](std::size_t w) {
                // Claim work before paying for a fixture: a worker queued
                // behind a drained cursor exits for free.
                std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
                if (i >= combos.size()) return;
                if (!worker_fx[w]) {
                    worker_fx[w].emplace(
                        build_fixture(lib, cell, switching_pins,
                                      force_internals,
                                      /*force_out=*/true, 0.0, opt.backend));
                }
                Fixture& wfx = *worker_fx[w];
                for (; i < combos.size();
                     i = next.fetch_add(1, std::memory_order_relaxed))
                    measure_combo(wfx, r, combos[i]);
            });
        }

        // Edge knots of the ramped axis: copy the nearest interior value.
        auto fill_edges = [&](lut::NdTable& t) {
            std::vector<std::size_t> o2(dim - 1, 0);
            do {
                const auto i0 = combine_index(o2, r, 0);
                const auto i1 = combine_index(o2, r, 1);
                t.set_grid_value(i0, t.grid_value(i1));
                const auto ie = combine_index(o2, r, g - 1);
                const auto ei = combine_index(o2, r, g - 2);
                t.set_grid_value(ie, t.grid_value(ei));
            } while (next_index(o2, other_sizes));
        };
        if (r < n_pins) {
            fill_edges(model.c_miller[r]);
            if (opt.internal_miller)
                for (std::size_t j = 0; j < n_int; ++j)
                    fill_edges(model.c_miller_internal[r * n_int + j]);
        } else if (r < n_pins + n_int) {
            fill_edges(model.c_internal[r - n_pins]);
        } else {
            fill_edges(model.c_out);
        }
    }

    // c_out currently holds Co + sum(Cm); subtract the Miller tables.
    model.c_out.for_each_grid_point(
        [&](std::span<const std::size_t> idx, std::span<const double>,
            double& v) {
            for (const auto& cm : model.c_miller) v -= cm.grid_value(idx);
        });
    // Likewise CN currently holds everything incident to the stack node;
    // when the pin couplings are modeled separately, take them back out.
    if (opt.internal_miller) {
        for (std::size_t j = 0; j < n_int; ++j) {
            model.c_internal[j].for_each_grid_point(
                [&](std::span<const std::size_t> idx, std::span<const double>,
                    double& v) {
                    for (std::size_t p = 0; p < n_pins; ++p)
                        v -= model.c_miller_internal[p * n_int + j].grid_value(
                            idx);
                });
        }
    }
}

// 1-D receiver input capacitance per switching pin (paper eq. (3)): ramp the
// pin with the output tied to a DC rail and the internal nodes free, then
// average over both rails and both slopes.
void extract_input_caps(CsmModel& model, const cells::CellLibrary& lib,
                        const CellType& cell,
                        const std::vector<std::string>& switching_pins,
                        const CharOptions& opt) {
    const double vdd = lib.tech().vdd;
    const double dv = model.dv_margin;
    const std::vector<double> knots = make_knots(vdd, dv, opt.cin_points);
    const double lo = knots.front();
    const double hi = knots.back();
    const double t0 = 30e-12;
    const std::vector<double> ramps{opt.cap_ramp, opt.cap_ramp2};
    const std::vector<double> out_levels{0.0, vdd};
    const double weight =
        1.0 / static_cast<double>(ramps.size() * out_levels.size());

    // Pins are independent (each runs its own fixture and writes only its
    // own table); fan them out and append in pin order afterwards.
    std::vector<lut::NdTable> tables(switching_pins.size());
    parallel_for(switching_pins.size(), [&](std::size_t p) {
        lut::NdTable table({lut::Axis(switching_pins[p], knots)},
                           "Cin_" + switching_pins[p]);

        Fixture fx = build_fixture(lib, cell, switching_pins,
                                   /*force_internals=*/false,
                                   /*force_out=*/true, 0.0, opt.backend);
        // Park the other switching pins at their non-controlling levels.
        for (std::size_t q = 0; q < switching_pins.size(); ++q) {
            if (q == p) continue;
            fx.circuit.vsource(fx.pin_sources[q])
                .set_spec(SourceSpec::dc(
                    cell.input(switching_pins[q]).non_controlling));
        }
        const int pin_branch = fx.circuit.branch_of(fx.pin_sources[p]);
        (void)pin_branch;

        for (double out_level : out_levels) {
            fx.circuit.vsource(fx.out_source)
                .set_spec(SourceSpec::dc(out_level));
            for (double ramp_time : ramps) {
                const double rate = (hi - lo) / ramp_time;
                fx.circuit.vsource(fx.pin_sources[p])
                    .set_spec(SourceSpec::pwl(
                        wave::saturated_ramp(t0, ramp_time, lo, hi)));
                spice::TranOptions topt;
                if (opt.adaptive_tran) {
                    topt = spice::fast_tran_options(
                        t0 + ramp_time + 20e-12, opt.dt);
                    topt.dt_max = 8.0 * opt.dt;
                } else {
                    topt.tstop = t0 + ramp_time + 20e-12;
                    topt.dt = opt.dt;
                }
                const obs::Span ramp_span("char.cin_ramp");
                const spice::TranResult res =
                    spice::solve_tran(fx.circuit, topt);
                const wave::Waveform i_pin =
                    res.vsource_current(fx.pin_sources[p]);
                for (std::size_t k = 1; k + 1 < knots.size(); ++k) {
                    const double tk = t0 + (knots[k] - lo) / rate;
                    // Gate current is purely capacitive (DC part is zero).
                    const double c = -i_pin.at(tk) / rate;
                    const std::size_t idx[1] = {k};
                    table.set_grid_value(
                        std::span<const std::size_t>(idx, 1),
                        table.grid_value(std::span<const std::size_t>(idx, 1)) +
                            weight * c);
                }
            }
        }
        // Edge knots copy the nearest interior; floor at zero.
        const std::size_t g = knots.size();
        const std::size_t i0[1] = {0};
        const std::size_t i1[1] = {1};
        const std::size_t ie[1] = {g - 1};
        const std::size_t ei[1] = {g - 2};
        table.set_grid_value(std::span<const std::size_t>(i0, 1),
                             table.grid_value(std::span<const std::size_t>(i1, 1)));
        table.set_grid_value(std::span<const std::size_t>(ie, 1),
                             table.grid_value(std::span<const std::size_t>(ei, 1)));
        table.for_each_grid_point([](std::span<const std::size_t>,
                                     std::span<const double>, double& v) {
            if (v < 0.0) v = 0.0;
        });
        tables[p] = std::move(table);
    }, opt.threads);
    for (lut::NdTable& t : tables) model.c_in.push_back(std::move(t));
}

}  // namespace

Characterizer::Characterizer(const cells::CellLibrary& lib) : lib_(&lib) {}

CsmModel Characterizer::characterize(
    const std::string& cell_name, ModelKind kind,
    const std::vector<std::string>& switching_pins,
    const CharOptions& options) const {
    const obs::Span span("char.characterize", cell_name);
    obs::counter("char.characterizations").add();
    const CellType& cell = lib_->get(cell_name);
    const double vdd = lib_->tech().vdd;
    const double dv = options.dv > 0.0 ? options.dv : lib_->tech().dv_margin;

    require(!switching_pins.empty(), "characterize: no switching pins");
    if (kind == ModelKind::kSis)
        require(switching_pins.size() == 1, "SIS model takes one pin");
    for (const std::string& p : switching_pins)
        cell.input(p);  // validates the name

    const bool model_internals = (kind == ModelKind::kMcsm);

    CsmModel model;
    model.kind = kind;
    model.cell_name = cell_name;
    model.vdd = vdd;
    model.dv_margin = dv;
    model.temp_c = lib_->tech().temp_c;
    model.pins = switching_pins;
    for (const cells::PinInfo& pin : cell.inputs()) {
        if (std::find(switching_pins.begin(), switching_pins.end(),
                      pin.name) == switching_pins.end()) {
            model.fixed_pins.push_back(pin.name);
            model.fixed_values.push_back(pin.non_controlling);
        }
    }
    if (model_internals) model.internals = cell.internal_nodes();

    // --- axes --------------------------------------------------------------
    const std::vector<double> knots = make_knots(vdd, dv, options.grid_points);
    std::vector<lut::Axis> axes;
    for (const std::string& p : model.pins) axes.emplace_back(p, knots);
    for (const std::string& n : model.internals) axes.emplace_back(n, knots);
    axes.emplace_back("OUT", knots);
    const std::size_t dim = axes.size();
    const std::size_t n_pins = model.pins.size();
    const std::size_t n_int = model.internals.size();

    Fixture fx = build_fixture(*lib_, cell, switching_pins, model_internals,
                               /*force_out=*/true, 0.0, options.backend);

    // --- current sources: DC sweep ------------------------------------------
    model.i_out = lut::NdTable(axes, "Io");
    for (const std::string& n : model.internals)
        model.i_internal.emplace_back(axes, "I_" + n);
    for (const std::string& p : model.pins)
        model.c_miller.emplace_back(axes, "Cm_" + p);
    model.c_out = lut::NdTable(axes, "Co");
    for (const std::string& n : model.internals)
        model.c_internal.emplace_back(axes, "C_" + n);
    for (const std::string& p : model.pins)
        for (const std::string& n : model.internals)
            model.c_miller_internal.emplace_back(axes, "Cm_" + p + "_" + n);

    const std::vector<std::size_t> sizes(dim, knots.size());
    const std::size_t g_knots = knots.size();
    DcOptions dc_opt;

    // Per-worker sweep bench: a private testbench fixture with its own
    // solver workspace.
    struct SweepBench {
        Fixture* fx;
        int out_branch = -1;
        std::vector<int> int_branches;
    };
    auto make_bench = [&](Fixture* f) {
        SweepBench b;
        b.fx = f;
        b.out_branch = f->circuit.branch_of(f->out_source);
        for (const std::string& s : f->internal_sources)
            b.int_branches.push_back(f->circuit.branch_of(s));
        return b;
    };

    // Records one solved grid point (x: DcResult layout) into the tables.
    auto record_point = [&](SweepBench& b, const std::vector<std::size_t>& idx,
                            const std::vector<double>& x) {
        Fixture& bfx = *b.fx;
        const std::size_t nn =
            static_cast<std::size_t>(bfx.circuit.node_count());
        // Current INTO the cell = -(branch current of the forcing source).
        model.i_out.set_grid_value(
            idx, -x[nn + static_cast<std::size_t>(b.out_branch)]);
        for (std::size_t j = 0; j < n_int; ++j)
            model.i_internal[j].set_grid_value(
                idx, -x[nn + static_cast<std::size_t>(b.int_branches[j])]);

        if (!options.transient_caps) {
            // Model-linearization shortcut: sum device caps at this bias.
            for (std::size_t p = 0; p < n_pins; ++p)
                model.c_miller[p].set_grid_value(
                    idx, pair_cap(bfx.dut_mosfets, x, bfx.pin_nodes[p],
                                  bfx.out_node));
            model.c_out.set_grid_value(
                idx, incident_cap(bfx.dut_mosfets, x, bfx.out_node,
                                  bfx.pin_nodes));
            // When pin->internal Millers are modeled, CN excludes the pin
            // couplings (they get their own tables); otherwise CN absorbs
            // everything incident to the stack node (the paper's choice).
            const std::vector<int> excluded =
                options.internal_miller ? bfx.pin_nodes : std::vector<int>{};
            for (std::size_t j = 0; j < n_int; ++j)
                model.c_internal[j].set_grid_value(
                    idx, incident_cap(bfx.dut_mosfets, x,
                                      bfx.internal_nodes[j], excluded));
            if (options.internal_miller) {
                for (std::size_t p = 0; p < n_pins; ++p)
                    for (std::size_t j = 0; j < n_int; ++j)
                        model.c_miller_internal[p * n_int + j].set_grid_value(
                            idx, pair_cap(bfx.dut_mosfets, x,
                                          bfx.pin_nodes[p],
                                          bfx.internal_nodes[j]));
            }
        }
    };

    // One slice: every grid point with first-axis knot i0, next_index
    // odometer over the remaining axes, solved as blocked bias sweeps
    // (solve_dc_sweep shares one Jacobian factorization per Newton round
    // across a block and updates it with one multi-RHS substitution). Grid
    // writes are disjoint across slices and each slice starts from its own
    // cold warm-start chain with a fresh pivot order, so the tables come
    // out bitwise identical for any worker count or claim order.
    auto sweep_slice = [&](SweepBench& b, std::size_t i0) {
        const obs::Span slice_span("char.dc_slice");
        Fixture& bfx = *b.fx;
        std::vector<spice::VSource*> swept;
        swept.reserve(dim);
        for (std::size_t p = 0; p < n_pins; ++p)
            swept.push_back(&bfx.circuit.vsource(bfx.pin_sources[p]));
        for (std::size_t j = 0; j < n_int; ++j)
            swept.push_back(&bfx.circuit.vsource(bfx.internal_sources[j]));
        swept.push_back(&bfx.circuit.vsource(bfx.out_source));

        spice::DcSweepOptions sopt;
        sopt.dc = dc_opt;

        // Bounded chunks keep the value/index staging small on the 5-axis
        // slices of 3-pin MCSM models; the chunk size is fixed so chunk
        // boundaries (and results) never depend on scheduling.
        constexpr std::size_t kChunk = 4096;
        std::vector<std::size_t> rest(dim - 1, 0);
        const std::vector<std::size_t> rest_sizes(dim - 1, g_knots);
        std::vector<double> vals;
        std::vector<std::vector<std::size_t>> idxs;
        std::vector<double> warm;
        bool more = true;
        while (more) {
            vals.clear();
            idxs.clear();
            while (idxs.size() < kChunk) {
                std::vector<std::size_t> idx(dim);
                idx[0] = i0;
                std::copy(rest.begin(), rest.end(), idx.begin() + 1);
                for (std::size_t d = 0; d < dim; ++d)
                    vals.push_back(knots[idx[d]]);
                idxs.push_back(std::move(idx));
                if (!next_index(rest, rest_sizes)) {
                    more = false;
                    break;
                }
            }
            spice::solve_dc_sweep(
                bfx.circuit, swept, vals, idxs.size(), sopt,
                warm.empty() ? nullptr : &warm,
                [&](std::size_t p, const std::vector<double>& x) {
                    record_point(b, idxs[p], x);
                    warm = x;
                });
        }
    };

    // As in extract_caps_transient: run inline without spare fixtures when
    // this characterize() is itself a pool-worker job.
    const std::size_t sweep_workers =
        ThreadPool::on_worker_thread()
            ? 1
            : std::min(resolve_threads(options.threads), g_knots);
    if (sweep_workers <= 1) {
        SweepBench bench = make_bench(&fx);
        for (std::size_t i0 = 0; i0 < g_knots; ++i0) sweep_slice(bench, i0);
    } else {
        std::atomic<std::size_t> next{0};
        parallel_workers(sweep_workers, [&](std::size_t) {
            // Claim a slice before paying for a fixture (see the cap
            // extraction fan-out).
            std::size_t i0 = next.fetch_add(1, std::memory_order_relaxed);
            if (i0 >= g_knots) return;
            Fixture wfx = build_fixture(*lib_, cell, switching_pins,
                                        model_internals,
                                        /*force_out=*/true, 0.0,
                                        options.backend);
            SweepBench bench = make_bench(&wfx);
            for (; i0 < g_knots;
                 i0 = next.fetch_add(1, std::memory_order_relaxed))
                sweep_slice(bench, i0);
        });
    }

    // --- capacitances: transient ramp extraction -----------------------------
    if (options.transient_caps) {
        extract_caps_transient(model, *lib_, cell, switching_pins,
                               model_internals, fx, knots, options);
    }

    // Numerical floors: keep capacitances physical.
    auto clamp_table = [](lut::NdTable& t, double lo) {
        t.for_each_grid_point([&](std::span<const std::size_t>,
                                  std::span<const double>, double& v) {
            if (v < lo) v = lo;
        });
    };
    for (auto& t : model.c_miller) clamp_table(t, 0.0);
    clamp_table(model.c_out, 1e-18);
    for (auto& t : model.c_internal) clamp_table(t, 1e-18);
    for (auto& t : model.c_miller_internal) clamp_table(t, 0.0);

    // --- input (receiver) capacitances ---------------------------------------
    extract_input_caps(model, *lib_, cell, switching_pins, options);

    model.check_consistent();
    return model;
}

}  // namespace mcsm::core
