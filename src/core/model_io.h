// Plain-text serialization of characterized CSM models, so that expensive
// characterization runs can be cached across processes.
#ifndef MCSM_CORE_MODEL_IO_H
#define MCSM_CORE_MODEL_IO_H

#include <iosfwd>
#include <string>

#include "core/model.h"

namespace mcsm::core {

void write_model(std::ostream& os, const CsmModel& model);
CsmModel read_model(std::istream& is);

// File convenience wrappers; save_model overwrites, load_model throws
// ModelError when the file is missing or malformed.
void save_model(const std::string& path, const CsmModel& model);
CsmModel load_model(const std::string& path);

}  // namespace mcsm::core

#endif  // MCSM_CORE_MODEL_IO_H
