// Model-side twins of the golden scenarios in src/engine: the same stimuli
// and loads, but with CSM devices in place of transistor-level cells.
#ifndef MCSM_CORE_MODEL_SCENARIOS_H
#define MCSM_CORE_MODEL_SCENARIOS_H

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/csm_device.h"
#include "core/model.h"
#include "engine/crosstalk.h"
#include "spice/tran_solver.h"
#include "wave/waveform.h"

namespace mcsm::core {

// Output load for model testbenches: a linear cap plus `fanout_count`
// receiver input capacitances taken from `receiver`'s 1-D c_in table (the
// paper's treatment of fanout loads), plus an optional RC pi network
// (active when pi_r > 0; the fanout caps then sit at the far end).
struct ModelLoadSpec {
    double cap = 0.0;
    int fanout_count = 0;
    const CsmModel* receiver = nullptr;
    double pi_c1 = 0.0;
    double pi_r = 0.0;
    double pi_c2 = 0.0;
};

// Single CSM cell driven by ideal sources: the model twin of
// engine::GoldenCell.
class ModelCell {
public:
    ModelCell(const CsmModel& model,
              const std::unordered_map<std::string, wave::Waveform>& inputs,
              const ModelLoadSpec& load);

    spice::TranResult run(const spice::TranOptions& options);

    int out_node() const { return out_node_; }
    // Far-end node of the pi load (-1 when no pi load was requested).
    int far_node() const { return far_node_; }
    int internal_node(std::size_t j) const { return internal_nodes_[j]; }
    spice::Circuit& circuit() { return circuit_; }

private:
    spice::Circuit circuit_;
    int out_node_ = -1;
    int far_node_ = -1;
    std::vector<int> internal_nodes_;
};

// Model twin of engine::GoldenCrosstalk: SIS-CSM inverter drivers on the
// victim and aggressor lines, the same coupling/ground caps, a CSM NOR2
// (complete MCSM or MIS baseline) receiving the victim net, and FO receiver
// caps on the NOR2 output.
class ModelCrosstalk {
public:
    ModelCrosstalk(const CsmModel& inv_model, const CsmModel& nor_model,
                   const engine::CrosstalkConfig& cfg, double t_inject);

    spice::TranResult run(const spice::TranOptions& options);

    int victim_net() const { return victim_net_; }
    int nor_out() const { return nor_out_; }
    const wave::Waveform& victim_input() const { return victim_input_; }

private:
    spice::Circuit circuit_;
    wave::Waveform victim_input_;
    int victim_net_ = -1;
    int nor_out_ = -1;
};

}  // namespace mcsm::core

#endif  // MCSM_CORE_MODEL_SCENARIOS_H
