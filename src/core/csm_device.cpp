#include "core/csm_device.h"

#include <algorithm>

#include "common/error.h"
#include "spice/cap_companion.h"
#include "spice/circuit.h"

namespace mcsm::core {

CsmCellDevice::CsmCellDevice(std::string name, const CsmModel& model,
                             std::vector<int> pin_nodes,
                             std::vector<int> internal_nodes, int out_node,
                             bool stamp_input_caps)
    : Device(std::move(name)),
      model_(&model),
      pins_(std::move(pin_nodes)),
      internals_(std::move(internal_nodes)),
      out_(out_node),
      input_caps_(stamp_input_caps) {
    model.check_consistent();
    require(pins_.size() == model.pin_count(),
            "CsmCellDevice: pin node count mismatch");
    require(internals_.size() == model.internal_count(),
            "CsmCellDevice: internal node count mismatch");
    v_scratch_.resize(model.dim());
    vp_scratch_.resize(model.dim());
    grad_scratch_.resize(model.dim());
    caps_cache_.cm.resize(model.pin_count());
    caps_cache_.cn.resize(model.internal_count());
    caps_cache_.cmn.resize(model.pin_count() * model.internal_count());
    caps_cache_.ca.resize(input_caps_ ? model.pin_count() : 0);
}

std::vector<int> CsmCellDevice::terminals() const {
    std::vector<int> t(pins_);
    t.insert(t.end(), internals_.begin(), internals_.end());
    t.push_back(out_);
    return t;
}

int CsmCellDevice::state_count() const {
    // Trapezoidal branch currents: one per Miller cap, one for Co, one per
    // CN, one per pin->internal Miller, and one per input cap when stamped.
    return static_cast<int>(model_->pin_count() + 1 +
                            model_->internal_count() +
                            model_->pin_count() * model_->internal_count() +
                            (input_caps_ ? model_->pin_count() : 0));
}

void CsmCellDevice::gather(const std::vector<double>& x,
                           std::vector<double>& v) const {
    v.resize(model_->dim());
    std::size_t d = 0;
    for (int n : pins_) v[d++] = x[static_cast<std::size_t>(n)];
    for (int n : internals_) v[d++] = x[static_cast<std::size_t>(n)];
    v[d] = x[static_cast<std::size_t>(out_)];
}

void CsmCellDevice::stamp(spice::Stamper& st,
                          const spice::SimContext& ctx) const {
    const std::size_t n_pins = model_->pin_count();
    const std::size_t n_int = model_->internal_count();
    const std::size_t dim = model_->dim();

    std::vector<double>& v = v_scratch_;
    gather(*ctx.x, v);
    std::vector<double>& grad = grad_scratch_;
    std::fill(grad.begin(), grad.end(), 0.0);

    // Circuit node corresponding to each model axis.
    auto axis_node = [&](std::size_t d) -> int {
        if (d < n_pins) return pins_[d];
        if (d < n_pins + n_int) return internals_[d - n_pins];
        return out_;
    };

    // Nonlinear current source I(V) leaving `at`; Jacobian from the exact
    // gradient of the multilinear interpolant.
    auto stamp_source = [&](const lut::NdTable& table, int at) {
        const double i = table.at_with_gradient(v, grad);
        double affine = i;
        for (std::size_t d = 0; d < dim; ++d) {
            st.add_matrix(at, axis_node(d), grad[d]);
            affine -= grad[d] * v[d];
        }
        st.add_source_current(at, spice::Circuit::kGround, affine);
    };

    stamp_source(model_->i_out, out_);
    for (std::size_t j = 0; j < n_int; ++j)
        stamp_source(model_->i_internal[j], internals_[j]);

    if (!ctx.is_tran()) return;

    const StepCaps& caps = step_caps(ctx);
    const auto base = static_cast<std::size_t>(state_base());
    const std::vector<double>& state = *ctx.state;
    std::size_t slot = 0;
    for (std::size_t p = 0; p < n_pins; ++p, ++slot)
        spice::stamp_capacitor(st, ctx, pins_[p], out_, caps.cm[p],
                               state[base + slot]);
    spice::stamp_capacitor(st, ctx, out_, spice::Circuit::kGround, caps.co,
                           state[base + slot]);
    ++slot;
    for (std::size_t j = 0; j < n_int; ++j, ++slot)
        spice::stamp_capacitor(st, ctx, internals_[j], spice::Circuit::kGround,
                               caps.cn[j], state[base + slot]);
    for (std::size_t p = 0; p < n_pins; ++p)
        for (std::size_t j = 0; j < n_int; ++j, ++slot)
            spice::stamp_capacitor(st, ctx, pins_[p], internals_[j],
                                   caps.cmn[p * n_int + j],
                                   state[base + slot]);
    if (input_caps_) {
        for (std::size_t p = 0; p < n_pins; ++p, ++slot)
            spice::stamp_capacitor(st, ctx, pins_[p], spice::Circuit::kGround,
                                   caps.ca[p], state[base + slot]);
    }
}

const CsmCellDevice::StepCaps& CsmCellDevice::step_caps(
    const spice::SimContext& ctx) const {
    StepCaps& caps = caps_cache_;
    if (ctx.step_id >= 0 && ctx.step_id == caps.step_id) return caps;
    caps.step_id = ctx.step_id;

    const std::size_t n_pins = model_->pin_count();
    const std::size_t n_int = model_->internal_count();

    // Evaluated at the previous accepted step (consistent with the MOSFET
    // device treatment).
    std::vector<double>& vp = vp_scratch_;
    gather(*ctx.x_prev, vp);
    for (std::size_t p = 0; p < n_pins; ++p) caps.cm[p] = model_->cm(p, vp);
    caps.co = model_->co(vp);
    for (std::size_t j = 0; j < n_int; ++j) caps.cn[j] = model_->cn(j, vp);
    for (std::size_t p = 0; p < n_pins; ++p)
        for (std::size_t j = 0; j < n_int; ++j)
            caps.cmn[p * n_int + j] = model_->cmn(p, j, vp);
    if (input_caps_) {
        // The 1-D c_in tables are extracted with the output tied, so they
        // already contain the pin->out Miller part; the grounded component
        // of eq. (3) is CA = c_in - Cm (the Miller cap is stamped above).
        for (std::size_t p = 0; p < n_pins; ++p)
            caps.ca[p] =
                std::max(0.0, model_->cin(p, vp[p]) - caps.cm[p]);
    }
    return caps;
}

void CsmCellDevice::commit(const spice::SimContext& ctx,
                           std::span<double> state_next) const {
    if (!ctx.is_tran()) return;
    const std::size_t n_pins = model_->pin_count();
    const std::size_t n_int = model_->internal_count();

    // step_caps gathers x_prev into vp_scratch_ (or reuses the cached step
    // linearization from the Newton iterations of this step).
    const StepCaps& caps = step_caps(ctx);
    std::vector<double>& v = v_scratch_;
    std::vector<double>& vp = vp_scratch_;
    gather(*ctx.x, v);
    gather(*ctx.x_prev, vp);
    const auto base = static_cast<std::size_t>(state_base());
    const std::vector<double>& state = *ctx.state;

    auto update = [&](std::size_t slot, double c, double v_now,
                      double v_prev) {
        state_next[base + slot] = spice::capacitor_current(
            ctx, c, v_now, v_prev, state[base + slot]);
    };

    const std::size_t out_d = model_->out_axis();
    std::size_t slot = 0;
    for (std::size_t p = 0; p < n_pins; ++p, ++slot)
        update(slot, caps.cm[p], v[p] - v[out_d], vp[p] - vp[out_d]);
    update(slot, caps.co, v[out_d], vp[out_d]);
    ++slot;
    for (std::size_t j = 0; j < n_int; ++j, ++slot)
        update(slot, caps.cn[j], v[n_pins + j], vp[n_pins + j]);
    for (std::size_t p = 0; p < n_pins; ++p)
        for (std::size_t j = 0; j < n_int; ++j, ++slot)
            update(slot, caps.cmn[p * n_int + j], v[p] - v[n_pins + j],
                   vp[p] - vp[n_pins + j]);
    if (input_caps_) {
        for (std::size_t p = 0; p < n_pins; ++p, ++slot)
            update(slot, caps.ca[p], v[p], vp[p]);
    }
}

LutCapDevice::LutCapDevice(std::string name, const lut::NdTable& table,
                           int node, double scale)
    : Device(std::move(name)), table_(&table), node_(node), scale_(scale) {
    require(table.rank() == 1, "LutCapDevice: table must be 1-D");
    require(scale > 0.0, "LutCapDevice: scale must be positive");
}

double LutCapDevice::cap_at(double v) const {
    const double q[1] = {v};
    return scale_ * table_->at(std::span<const double>(q, 1));
}

void LutCapDevice::stamp(spice::Stamper& st,
                         const spice::SimContext& ctx) const {
    if (!ctx.is_tran()) return;
    if (ctx.step_id < 0 || ctx.step_id != cap_step_id_) {
        cap_cache_ = cap_at(ctx.prev_voltage(node_));
        cap_step_id_ = ctx.step_id;
    }
    const double i_prev =
        (*ctx.state)[static_cast<std::size_t>(state_base())];
    spice::stamp_capacitor(st, ctx, node_, spice::Circuit::kGround,
                           cap_cache_, i_prev);
}

void LutCapDevice::commit(const spice::SimContext& ctx,
                          std::span<double> state_next) const {
    if (!ctx.is_tran()) return;
    const double c = (ctx.step_id >= 0 && ctx.step_id == cap_step_id_)
                         ? cap_cache_
                         : cap_at(ctx.prev_voltage(node_));
    const double i_prev =
        (*ctx.state)[static_cast<std::size_t>(state_base())];
    state_next[static_cast<std::size_t>(state_base())] =
        spice::capacitor_current(ctx, c, ctx.node_voltage(node_),
                                 ctx.prev_voltage(node_), i_prev);
}

}  // namespace mcsm::core
