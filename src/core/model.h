// Current-source-model data structures (the paper's Section 3).
//
// Three model families share one representation:
//  * kSis         - single switching input, no internal node (ref. [5]),
//  * kMisBaseline - two switching inputs, no internal node (Section 3.1,
//                   the model shown to err by ~22%),
//  * kMcsm        - two switching inputs plus modeled internal stack
//                   node(s) (Section 3.2/3.3, the paper's contribution).
//
// Voltage-space axes are ordered [switching pins..., internal nodes..., out].
// Current sign convention: Io / IN are the currents flowing from the node
// INTO the cell (positive current discharges the node), matching the signs
// in the paper's eqs. (1), (2), (4), (5).
#ifndef MCSM_CORE_MODEL_H
#define MCSM_CORE_MODEL_H

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "lut/ndtable.h"

namespace mcsm::core {

enum class ModelKind { kSis, kMisBaseline, kMcsm };

const char* to_string(ModelKind kind);

struct CsmModel {
    ModelKind kind = ModelKind::kMcsm;
    std::string cell_name;
    double vdd = 1.2;
    double dv_margin = 0.12;
    // Junction temperature the model was characterized at [degC]. Purely
    // descriptive at evaluation time (the tables already embody it), but
    // it keys corner-aware stores and round trips through both formats.
    double temp_c = 25.0;

    std::vector<std::string> pins;         // switching input pins
    std::vector<std::string> fixed_pins;   // remaining inputs...
    std::vector<double> fixed_values;      // ...held at these voltages
    std::vector<std::string> internals;    // modeled internal nodes (kMcsm)

    // All D-dimensional tables share the axes [pins..., internals..., out].
    lut::NdTable i_out;                    // Io(V)
    std::vector<lut::NdTable> i_internal;  // IN_j(V), one per internal node
    std::vector<lut::NdTable> c_miller;    // Cm_p(V), one per switching pin
    lut::NdTable c_out;                    // Co(V)
    std::vector<lut::NdTable> c_internal;  // CN_j(V)
    // Pin -> internal-node Miller caps, indexed [p * internal_count + j].
    // The paper neglects these ("we do not model the Miller effect between
    // node N and other nodes"); with our Meyer-style substrate the stack
    // transistor's gate-source cap is a significant part of the stack-node
    // charge balance, so the characterizer extracts them by default. Tables
    // of zeros reproduce the paper's simplification (ablation bench A7).
    std::vector<lut::NdTable> c_miller_internal;
    std::vector<lut::NdTable> c_in;        // 1-D receiver cap per pin

    // --- shape helpers ---------------------------------------------------
    std::size_t pin_count() const { return pins.size(); }
    std::size_t internal_count() const { return internals.size(); }
    // Rank of the D-dimensional tables: pins + internals + 1 (output).
    std::size_t dim() const { return pins.size() + internals.size() + 1; }
    std::size_t out_axis() const { return dim() - 1; }
    std::size_t internal_axis(std::size_t j) const { return pins.size() + j; }

    // Validates table ranks/axis counts against the declared pins/internals.
    void check_consistent() const;

    // --- queries -----------------------------------------------------------
    // v has dim() entries ordered [pins..., internals..., out].
    double io(std::span<const double> v) const { return i_out.at(v); }
    double in(std::size_t j, std::span<const double> v) const {
        return i_internal[j].at(v);
    }
    double cm(std::size_t p, std::span<const double> v) const {
        return c_miller[p].at(v);
    }
    double co(std::span<const double> v) const { return c_out.at(v); }
    double cn(std::size_t j, std::span<const double> v) const {
        return c_internal[j].at(v);
    }
    // Miller capacitance between switching pin p and internal node j.
    double cmn(std::size_t p, std::size_t j, std::span<const double> v) const {
        return c_miller_internal[p * internal_count() + j].at(v);
    }
    // Receiver input capacitance of pin p at input voltage vin.
    double cin(std::size_t p, double vin) const;

    // Model-consistent DC state: solves Io = 0 and IN_j = 0 for the output
    // and internal-node voltages, given the pin voltages. Used to initialize
    // simulations. `pin_volts` has pin_count() entries. Returns
    // [internals..., out] voltages.
    std::vector<double> dc_state(std::span<const double> pin_volts) const;
};

}  // namespace mcsm::core

#endif  // MCSM_CORE_MODEL_H
