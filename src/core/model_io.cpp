#include "core/model_io.h"

#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.h"
#include "common/fp_text.h"
#include "lut/table_io.h"

namespace mcsm::core {

namespace {

ModelKind kind_from_string(const std::string& s) {
    if (s == "SIS") return ModelKind::kSis;
    if (s == "MIS-baseline") return ModelKind::kMisBaseline;
    if (s == "MCSM") return ModelKind::kMcsm;
    throw ModelError("read_model: unknown model kind " + s);
}

// Token-wise double read: accepts the hexfloat tokens written here plus the
// decimal values of legacy cache files.
bool read_double(std::istream& is, double& out) {
    std::string token;
    return static_cast<bool>(is >> token) && parse_exact_double(token, out);
}

}  // namespace

void write_model(std::ostream& os, const CsmModel& model) {
    model.check_consistent();
    os << "csmmodel v1\n";
    os << "kind " << to_string(model.kind) << '\n';
    os << "cell " << model.cell_name << '\n';
    os << "vdd ";
    write_exact_double(os, model.vdd);
    os << '\n';
    os << "dv ";
    write_exact_double(os, model.dv_margin);
    os << '\n';
    os << "temp ";
    write_exact_double(os, model.temp_c);
    os << '\n';
    os << "pins " << model.pins.size();
    for (const auto& p : model.pins) os << ' ' << p;
    os << '\n';
    os << "fixed " << model.fixed_pins.size();
    for (std::size_t i = 0; i < model.fixed_pins.size(); ++i) {
        os << ' ' << model.fixed_pins[i] << ' ';
        write_exact_double(os, model.fixed_values[i]);
    }
    os << '\n';
    os << "internals " << model.internals.size();
    for (const auto& n : model.internals) os << ' ' << n;
    os << '\n';

    lut::write_table(os, model.i_out);
    for (const auto& t : model.i_internal) lut::write_table(os, t);
    for (const auto& t : model.c_miller) lut::write_table(os, t);
    lut::write_table(os, model.c_out);
    for (const auto& t : model.c_internal) lut::write_table(os, t);
    for (const auto& t : model.c_miller_internal) lut::write_table(os, t);
    for (const auto& t : model.c_in) lut::write_table(os, t);
    os << "endmodel\n";
}

CsmModel read_model(std::istream& is) {
    std::string word;
    std::string version;
    require(static_cast<bool>(is >> word >> version) && word == "csmmodel" &&
                version == "v1",
            "read_model: bad header");

    CsmModel m;
    std::string kind_str;
    require(static_cast<bool>(is >> word >> kind_str) && word == "kind",
            "read_model: missing kind");
    m.kind = kind_from_string(kind_str);
    require(static_cast<bool>(is >> word >> m.cell_name) && word == "cell",
            "read_model: missing cell");
    require(static_cast<bool>(is >> word) && word == "vdd" &&
                read_double(is, m.vdd),
            "read_model: missing vdd");
    require(std::isfinite(m.vdd) && m.vdd > 0.0,
            "read_model: vdd = " + std::to_string(m.vdd) +
                " (must be finite and > 0)");
    require(static_cast<bool>(is >> word) && word == "dv" &&
                read_double(is, m.dv_margin),
            "read_model: missing dv");
    require(std::isfinite(m.dv_margin) && m.dv_margin >= 0.0,
            "read_model: dv = " + std::to_string(m.dv_margin) +
                " (must be finite and >= 0)");

    // `temp` was added after the format shipped; legacy files jump straight
    // to `pins` and keep the nominal default.
    require(static_cast<bool>(is >> word), "read_model: truncated header");
    if (word == "temp") {
        require(read_double(is, m.temp_c) && std::isfinite(m.temp_c),
                "read_model: bad temp");
        require(static_cast<bool>(is >> word), "read_model: missing pins");
    }

    std::size_t n = 0;
    require(word == "pins" && static_cast<bool>(is >> n),
            "read_model: missing pins");
    m.pins.resize(n);
    for (auto& p : m.pins)
        require(static_cast<bool>(is >> p), "read_model: truncated pins");

    require(static_cast<bool>(is >> word >> n) && word == "fixed",
            "read_model: missing fixed");
    m.fixed_pins.resize(n);
    m.fixed_values.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        require(static_cast<bool>(is >> m.fixed_pins[i]) &&
                    read_double(is, m.fixed_values[i]),
                "read_model: truncated fixed pins");
        require(std::isfinite(m.fixed_values[i]),
                "read_model: fixed pin '" + m.fixed_pins[i] +
                    "' held at a non-finite voltage");
    }

    require(static_cast<bool>(is >> word >> n) && word == "internals",
            "read_model: missing internals");
    m.internals.resize(n);
    for (auto& s : m.internals)
        require(static_cast<bool>(is >> s), "read_model: truncated internals");

    m.i_out = lut::read_table(is);
    for (std::size_t j = 0; j < m.internals.size(); ++j)
        m.i_internal.push_back(lut::read_table(is));
    for (std::size_t p = 0; p < m.pins.size(); ++p)
        m.c_miller.push_back(lut::read_table(is));
    m.c_out = lut::read_table(is);
    for (std::size_t j = 0; j < m.internals.size(); ++j)
        m.c_internal.push_back(lut::read_table(is));
    for (std::size_t k = 0; k < m.pins.size() * m.internals.size(); ++k)
        m.c_miller_internal.push_back(lut::read_table(is));
    for (std::size_t p = 0; p < m.pins.size(); ++p)
        m.c_in.push_back(lut::read_table(is));

    require(static_cast<bool>(is >> word) && word == "endmodel",
            "read_model: missing endmodel");
    m.check_consistent();
    return m;
}

void save_model(const std::string& path, const CsmModel& model) {
    std::ofstream os(path);
    require(os.good(), "save_model: cannot open " + path);
    write_model(os, model);
    require(os.good(), "save_model: write failed for " + path);
}

CsmModel load_model(const std::string& path) {
    std::ifstream is(path);
    require(is.good(), "load_model: cannot open " + path);
    return read_model(is);
}

}  // namespace mcsm::core
