// Paper-faithful explicit integration of the MCSM equations (4) and (5):
//
//   Vo(t_{k+1}) = Vo(t_k) + [ CmA*dVA + CmB*dVB - Io*dt ]
//                           / (CL + Co + CmA + CmB)
//   VN(t_{k+1}) = VN(t_k) - IN*dt / CN
//
// for a single cell driving a lumped capacitive load. The implicit engine
// (CsmCellDevice + solve_tran) is preferred for stiff or networked cases; an
// ablation bench compares both.
#ifndef MCSM_CORE_EXPLICIT_SIM_H
#define MCSM_CORE_EXPLICIT_SIM_H

#include <vector>

#include "core/model.h"
#include "wave/waveform.h"

namespace mcsm::core {

struct ExplicitOptions {
    double tstop = 3e-9;
    double dt = 0.5e-12;
    double load_cap = 2e-15;  // CL
    // Initial output / internal voltages; when empty they are derived from
    // the model's DC state at the t=0 input values.
    std::vector<double> initial_state;
};

struct ExplicitResult {
    wave::Waveform out;
    std::vector<wave::Waveform> internals;
};

// `pin_inputs` follow model.pins order.
ExplicitResult simulate_explicit(const CsmModel& model,
                                 const std::vector<wave::Waveform>& pin_inputs,
                                 const ExplicitOptions& options);

}  // namespace mcsm::core

#endif  // MCSM_CORE_EXPLICIT_SIM_H
