#include "core/selective.h"

#include <algorithm>

#include "common/error.h"

namespace mcsm::core {

double internal_node_significance(const CsmModel& model, double load_cap) {
    if (model.internal_count() == 0) return 0.0;
    require(load_cap >= 0.0, "internal_node_significance: negative load");

    // Mid-transition bias: switching pins and output at Vdd/2, internals at
    // Vdd/2 - the regime where the stack charge matters.
    std::vector<double> v(model.dim(), 0.5 * model.vdd);
    const double co = model.co(v);
    double worst = 0.0;
    for (std::size_t j = 0; j < model.internal_count(); ++j)
        worst = std::max(worst, model.cn(j, v) / (load_cap + co));
    return worst;
}

bool needs_complete_model(const CsmModel& model, double load_cap,
                          const SelectivePolicy& policy) {
    return internal_node_significance(model, load_cap) > policy.threshold;
}

const CsmModel& select_model(const CsmModel& complete,
                             const CsmModel& baseline, double load_cap,
                             const SelectivePolicy& policy) {
    require(complete.kind == ModelKind::kMcsm,
            "select_model: 'complete' must be an MCSM model");
    return needs_complete_model(complete, load_cap, policy) ? complete
                                                            : baseline;
}

}  // namespace mcsm::core
