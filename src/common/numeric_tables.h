// Compile-time reduction tables for the fast softplus/logistic kernel.
//
// The table-reduced exponential and mantissa-reduced log in
// softplus_logistic_fast (common/numeric.cpp) and the width-templated EKV
// lane kernel (spice/ekv_lane_kernel.h) index the same three tables. They
// used to be filled by a static initializer calling libm; baking them in as
// hexfloat literals removes the first-call init branch and every
// static-init ordering hazard from the hot loop, and lets the per-target
// SIMD translation units fold the loads against a constexpr array. The
// literals are the exact libm doubles (test_ekv_batch asserts bit equality
// against std::exp2/std::log at runtime, so a platform whose libm ever
// disagreed would fail loudly rather than drift).
#ifndef MCSM_COMMON_NUMERIC_TABLES_H
#define MCSM_COMMON_NUMERIC_TABLES_H

namespace mcsm::numeric_tables {

// Reduction constants shared by the scalar and lane kernels:
// u = (32k + j) * ln2/32 - r with the step split hi/lo for an exact
// double-double subtraction.
inline constexpr double kExpInvStep32 = 46.166241308446828384;    // 32/ln2
inline constexpr double kExpStep32Hi = 2.166084939249829418e-02;  // ln2/32
inline constexpr double kExpStep32Lo = -4.5170722176016611e-19;
inline constexpr double kLn2 = 6.93147180559945310e-01;

// 2^(-j/32) for j = 0..31: the 32-slot exponential reduction.
inline constexpr double kExp2Neg32[32] = {
    0x1p+0,                0x1.f50765b6e454p-1,
    0x1.ea4afa2a490dap-1,  0x1.dfc97337b9b5fp-1,
    0x1.d5818dcfba487p-1,  0x1.cb720dcef9069p-1,
    0x1.c199bdd85529cp-1,  0x1.b7f76f2fb5e47p-1,
    0x1.ae89f995ad3adp-1,  0x1.a5503b23e255dp-1,
    0x1.9c49182a3f09p-1,   0x1.93737b0cdc5e5p-1,
    0x1.8ace5422aa0dbp-1,  0x1.82589994cce13p-1,
    0x1.7a11473eb0187p-1,  0x1.71f75e8ec5f74p-1,
    0x1.6a09e667f3bcdp-1,  0x1.6247eb03a5585p-1,
    0x1.5ab07dd485429p-1,  0x1.5342b569d4f82p-1,
    0x1.4bfdad5362a27p-1,  0x1.44e086061892dp-1,
    0x1.3dea64c123422p-1,  0x1.371a7373aa9cbp-1,
    0x1.306fe0a31b715p-1,  0x1.29e9df51fdee1p-1,
    0x1.2387a6e756238p-1,  0x1.1d4873168b9aap-1,
    0x1.172b83c7d517bp-1,  0x1.11301d0125b51p-1,
    0x1.0b5586cf9890fp-1,  0x1.059b0d3158574p-1,
};

// 1 / (1 + j/64) for j = 0..63: the mantissa-reduction reciprocals.
// Exactly-rounded divisions; constexpr-computable, spelled out anyway so
// all three tables read the same.
inline constexpr double kInvM0_64[64] = {
    0x1p+0,                0x1.f81f81f81f82p-1,
    0x1.f07c1f07c1f08p-1,  0x1.e9131abf0b767p-1,
    0x1.e1e1e1e1e1e1ep-1,  0x1.dae6076b981dbp-1,
    0x1.d41d41d41d41dp-1,  0x1.cd85689039b0bp-1,
    0x1.c71c71c71c71cp-1,  0x1.c0e070381c0ep-1,
    0x1.bacf914c1badp-1,   0x1.b4e81b4e81b4fp-1,
    0x1.af286bca1af28p-1,  0x1.a98ef606a63bep-1,
    0x1.a41a41a41a41ap-1,  0x1.9ec8e951033d9p-1,
    0x1.999999999999ap-1,  0x1.948b0fcd6e9ep-1,
    0x1.8f9c18f9c18fap-1,  0x1.8acb90f6bf3aap-1,
    0x1.8618618618618p-1,  0x1.8181818181818p-1,
    0x1.7d05f417d05f4p-1,  0x1.78a4c8178a4c8p-1,
    0x1.745d1745d1746p-1,  0x1.702e05c0b817p-1,
    0x1.6c16c16c16c17p-1,  0x1.6816816816817p-1,
    0x1.642c8590b2164p-1,  0x1.6058160581606p-1,
    0x1.5c9882b931057p-1,  0x1.58ed2308158edp-1,
    0x1.5555555555555p-1,  0x1.51d07eae2f815p-1,
    0x1.4e5e0a72f0539p-1,  0x1.4afd6a052bf5bp-1,
    0x1.47ae147ae147bp-1,  0x1.446f86562d9fbp-1,
    0x1.4141414141414p-1,  0x1.3e22cbce4a902p-1,
    0x1.3b13b13b13b14p-1,  0x1.3813813813814p-1,
    0x1.3521cfb2b78c1p-1,  0x1.323e34a2b10bfp-1,
    0x1.2f684bda12f68p-1,  0x1.2c9fb4d812cap-1,
    0x1.29e4129e4129ep-1,  0x1.27350b8812735p-1,
    0x1.2492492492492p-1,  0x1.21fb78121fb78p-1,
    0x1.1f7047dc11f7p-1,   0x1.1cf06ada2811dp-1,
    0x1.1a7b9611a7b96p-1,  0x1.1811811811812p-1,
    0x1.15b1e5f75270dp-1,  0x1.135c81135c811p-1,
    0x1.1111111111111p-1,  0x1.0ecf56be69c9p-1,
    0x1.0c9714fbcda3bp-1,  0x1.0a6810a6810a7p-1,
    0x1.0842108421084p-1,  0x1.0624dd2f1a9fcp-1,
    0x1.041041041041p-1,   0x1.0204081020408p-1,
};

// log(1 + j/64) for j = 0..63: the mantissa-reduction log anchors.
inline constexpr double kLogM0_64[64] = {
    0x0p+0,                0x1.fc0a8b0fc03e4p-7,
    0x1.f829b0e7833p-6,    0x1.77458f632dcfcp-5,
    0x1.f0a30c01162a6p-5,  0x1.341d7961bd1d1p-4,
    0x1.6f0d28ae56b4cp-4,  0x1.a926d3a4ad563p-4,
    0x1.e27076e2af2e6p-4,  0x1.0d77e7cd08e59p-3,
    0x1.29552f81ff523p-3,  0x1.44d2b6ccb7d1ep-3,
    0x1.5ff3070a793d4p-3,  0x1.7ab890210d909p-3,
    0x1.9525a9cf456b4p-3,  0x1.af3c94e80bff3p-3,
    0x1.c8ff7c79a9a22p-3,  0x1.e27076e2af2e6p-3,
    0x1.fb9186d5e3e2bp-3,  0x1.0a324e27390e3p-2,
    0x1.1675cababa60ep-2,  0x1.22941fbcf7966p-2,
    0x1.2e8e2bae11d31p-2,  0x1.3a64c556945eap-2,
    0x1.4618bc21c5ec2p-2,  0x1.51aad872df82dp-2,
    0x1.5d1bdbf5809cap-2,  0x1.686c81e9b14afp-2,
    0x1.739d7f6bbd007p-2,  0x1.7eaf83b82afc3p-2,
    0x1.89a3386c1425bp-2,  0x1.947941c2116fbp-2,
    0x1.9f323ecbf984cp-2,  0x1.a9cec9a9a084ap-2,
    0x1.b44f77bcc8f63p-2,  0x1.beb4d9da71b7cp-2,
    0x1.c8ff7c79a9a22p-2,  0x1.d32fe7e00ebd5p-2,
    0x1.dd46a04c1c4a1p-2,  0x1.e744261d68788p-2,
    0x1.f128f5faf06edp-2,  0x1.faf588f78f31fp-2,
    0x1.02552a5a5d0ffp-1,  0x1.0723e5c1cdf4p-1,
    0x1.0be72e4252a83p-1,  0x1.109f39e2d4c97p-1,
    0x1.154c3d2f4d5eap-1,  0x1.19ee6b467c96fp-1,
    0x1.1e85f5e7040dp-1,   0x1.23130d7bebf43p-1,
    0x1.2795e1289b11bp-1,  0x1.2c0e9ed448e8cp-1,
    0x1.307d7334f10bep-1,  0x1.34e289d9ce1d3p-1,
    0x1.393e0d3562a1ap-1,  0x1.3d9026a7156fbp-1,
    0x1.41d8fe84672aep-1,  0x1.4618bc21c5ec2p-1,
    0x1.4a4f85db03ebbp-1,  0x1.4e7d811b75bb1p-1,
    0x1.52a2d265bc5abp-1,  0x1.56bf9d5b3f399p-1,
    0x1.5ad404c359f2dp-1,  0x1.5ee02a9241675p-1,
};

}  // namespace mcsm::numeric_tables

#endif  // MCSM_COMMON_NUMERIC_TABLES_H
