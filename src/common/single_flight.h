// Single-flight cache: a string-keyed map of immutable values where
// concurrent misses on one key block on a single production instead of
// duplicating it. Used by the serve layer for model loads (expensive
// characterization) and arc-surface builds (hundreds of transients).
//
// Failure contract: a failed production is never cached. The producer
// evicts its own in-flight entry before publishing the exception, so
// threads already waiting see the failure while the next get starts a
// fresh attempt (e.g. after a corrupt store file was replaced). A put()
// that raced the failing producer is preserved: eviction only removes the
// producer's own entry, never a value installed concurrently.
#ifndef MCSM_COMMON_SINGLE_FLIGHT_H
#define MCSM_COMMON_SINGLE_FLIGHT_H

#include <chrono>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/annotations.h"

namespace mcsm {

// How a get_or_produce() call was served; callers use it to bump their
// cache hit/miss/single-flight-wait observability counters.
enum class CacheOutcome {
    kHit,   // value was already produced
    kMiss,  // this thread ran produce()
    kWait,  // another thread's in-flight production was awaited
};

template <typename Value>
class SingleFlightCache {
public:
    using Ptr = std::shared_ptr<const Value>;

    // Returns the value for `id`, invoking produce() on this thread when
    // the key is absent. Throws whatever produce() throws (also rethrown
    // to concurrent waiters of this attempt). `outcome`, when non-null, is
    // set before any blocking wait or production starts.
    Ptr get_or_produce(const std::string& id,
                       const std::function<Ptr()>& produce,
                       CacheOutcome* outcome = nullptr) {
        std::promise<Ptr> promise;
        std::shared_ptr<Entry> entry;
        std::shared_future<Ptr> existing;
        {
            MutexLock lock(mutex_);
            const auto it = entries_.find(id);
            if (it != entries_.end()) {
                existing = it->second->future;
                if (outcome != nullptr)
                    *outcome = is_ready(existing) ? CacheOutcome::kHit
                                                  : CacheOutcome::kWait;
            } else {
                entry = std::make_shared<Entry>(
                    Entry{promise.get_future().share()});
                entries_.emplace(id, entry);
                if (outcome != nullptr) *outcome = CacheOutcome::kMiss;
            }
        }
        // get() outside the lock: the future may still be in flight and
        // its producer needs the mutex to publish/evict.
        if (existing.valid()) return existing.get();
        try {
            Ptr value = produce();
            promise.set_value(value);
            return value;
        } catch (...) {
            {
                MutexLock lock(mutex_);
                const auto it = entries_.find(id);
                // Only evict our own attempt; a concurrent put() may have
                // installed a valid value under this key meanwhile.
                if (it != entries_.end() && it->second == entry)
                    entries_.erase(it);
            }
            promise.set_exception(std::current_exception());
            throw;
        }
    }

    // Inserts (or replaces) a ready value.
    void put(const std::string& id, Ptr value) {
        std::promise<Ptr> ready;
        ready.set_value(std::move(value));
        MutexLock lock(mutex_);
        entries_[id] =
            std::make_shared<Entry>(Entry{ready.get_future().share()});
    }

    // Removes every COMPLETED entry whose key satisfies `pred`; in-flight
    // productions are left untouched (their producers still need the entry
    // to publish or evict). Returns the number of entries removed. The
    // serve layer uses this to drop surfaces of a retired pack generation
    // after a hot reload, so the old mapping's refcount can reach zero.
    std::size_t erase_ready_if(
        const std::function<bool(const std::string&)>& pred) {
        MutexLock lock(mutex_);
        std::size_t n = 0;
        for (auto it = entries_.begin(); it != entries_.end();) {
            if (is_ready(it->second->future) && pred(it->first)) {
                it = entries_.erase(it);
                ++n;
            } else {
                ++it;
            }
        }
        return n;
    }

    // True when `id` holds a completed (successful or not-yet-evicted)
    // production; false for absent or still-in-flight keys.
    bool ready(const std::string& id) const {
        MutexLock lock(mutex_);
        const auto it = entries_.find(id);
        return it != entries_.end() && is_ready(it->second->future);
    }

    std::size_t ready_count() const {
        MutexLock lock(mutex_);
        std::size_t n = 0;
        for (const auto& [id, entry] : entries_)
            if (is_ready(entry->future)) ++n;
        return n;
    }

private:
    struct Entry {
        std::shared_future<Ptr> future;
    };

    static bool is_ready(const std::shared_future<Ptr>& future) {
        return future.wait_for(std::chrono::seconds(0)) ==
               std::future_status::ready;
    }

    mutable Mutex mutex_;
    std::unordered_map<std::string, std::shared_ptr<Entry>> entries_
        MCSM_GUARDED_BY(mutex_);
};

}  // namespace mcsm

#endif  // MCSM_COMMON_SINGLE_FLIGHT_H
