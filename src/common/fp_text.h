// Round-trip-exact text formatting for doubles. The model/table text caches
// must reload bit-identically (the binary store asserts bit-exactness
// against them), so values are written as C99 hexadecimal float literals
// ("%a", e.g. 0x1.8p+3) and parsed with strtod, which accepts both hex and
// the legacy decimal files. iostream operator>> is avoided on the read side
// because libstdc++ does not parse hexfloat through num_get.
//
// Locale handling: printf/strtod use the process LC_NUMERIC radix
// character. Files must stay portable across locales, so the writer
// normalizes the radix to '.' and the reader maps '.' back to the current
// locale's radix before strtod -- an embedding application that calls
// setlocale(LC_NUMERIC, "de_DE...") can still read caches written under
// the C locale and vice versa.
#ifndef MCSM_COMMON_FP_TEXT_H
#define MCSM_COMMON_FP_TEXT_H

#include <cctype>
#include <charconv>
#include <clocale>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ostream>
#include <string>
#include <string_view>

namespace mcsm {

// Writes v as a hexadecimal float literal; parse_exact_double returns v
// bit-exactly for every finite double, including subnormals and -0.0.
inline void write_exact_double(std::ostream& os, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%a", v);
    if (std::isfinite(v)) {
        // The only non-[0-9a-fA-FxXpP+-] character %a can emit for a
        // finite value is the locale radix; normalize it to '.'.
        for (char* p = buf; *p != '\0'; ++p) {
            const unsigned char c = static_cast<unsigned char>(*p);
            if (!std::isxdigit(c) && *p != 'x' && *p != 'X' && *p != 'p' &&
                *p != 'P' && *p != '+' && *p != '-')
                *p = '.';
        }
    }
    os << buf;
}

// Parses a whole token as a double (hexfloat or decimal, '.' radix).
// Returns false when the token is empty or has trailing garbage.
inline bool parse_exact_double(const std::string& token, double& out) {
    if (token.empty()) return false;
    const char* radix = std::localeconv()->decimal_point;
    char* end = nullptr;
    if (radix == nullptr || std::strcmp(radix, ".") == 0) {
        out = std::strtod(token.c_str(), &end);
        return end == token.c_str() + token.size();
    }
    // Non-'.' locale: strtod expects the locale radix, files use '.'.
    std::string local = token;
    const std::size_t dot = local.find('.');
    if (dot != std::string::npos) local.replace(dot, 1, radix);
    out = std::strtod(local.c_str(), &end);
    return end == local.c_str() + local.size();
}

// Parses a whole token as a decimal (or scientific) double, LOCALE-
// INDEPENDENTLY: std::from_chars always uses the '.' radix and never
// consults LC_NUMERIC, so a wire protocol parsed through here reads
// "2.5e-12" identically whether the embedding process runs under "C" or a
// comma-radix locale like de_DE (strtod/std::stod would stop at the '.'
// and silently drop the fraction). Returns false for empty tokens,
// trailing garbage, or non-finite results -- a network peer cannot smuggle
// "inf"/"nan" into a query. This is the parser for NETWORK/CLI input;
// store files keep parse_exact_double (hexfloat via strtod).
inline bool parse_double_token(std::string_view token, double& out) {
    double v = 0.0;
    const auto [end, ec] =
        std::from_chars(token.data(), token.data() + token.size(), v);
    if (ec != std::errc() || end != token.data() + token.size() ||
        !std::isfinite(v))
        return false;
    out = v;
    return true;
}

}  // namespace mcsm

#endif  // MCSM_COMMON_FP_TEXT_H
