#include "common/linear_solver.h"

#include <cmath>
#include <utility>

#include "common/error.h"

namespace mcsm {

void solve_lu_into(DenseMatrix& a, std::vector<double>& b,
                   std::vector<double>& x, double pivot_floor) {
    const std::size_t n = a.rows();
    require(a.cols() == n, "solve_lu: matrix must be square");
    require(b.size() == n, "solve_lu: rhs size mismatch");

    for (std::size_t k = 0; k < n; ++k) {
        // Partial pivoting: pick the largest magnitude entry in column k.
        std::size_t pivot_row = k;
        double pivot_mag = std::fabs(a.at(k, k));
        for (std::size_t r = k + 1; r < n; ++r) {
            const double mag = std::fabs(a.at(r, k));
            if (mag > pivot_mag) {
                pivot_mag = mag;
                pivot_row = r;
            }
        }
        if (pivot_mag < pivot_floor) {
            throw NumericalError("solve_lu: singular matrix (pivot " +
                                 std::to_string(pivot_mag) + " at column " +
                                 std::to_string(k) + ")");
        }
        if (pivot_row != k) {
            for (std::size_t c = 0; c < n; ++c)
                std::swap(a.at(k, c), a.at(pivot_row, c));
            std::swap(b[k], b[pivot_row]);
        }
        const double inv_pivot = 1.0 / a.at(k, k);
        for (std::size_t r = k + 1; r < n; ++r) {
            const double factor = a.at(r, k) * inv_pivot;
            if (factor == 0.0) continue;
            a.at(r, k) = 0.0;
            for (std::size_t c = k + 1; c < n; ++c)
                a.at(r, c) -= factor * a.at(k, c);
            b[r] -= factor * b[k];
        }
    }

    x.assign(n, 0.0);
    for (std::size_t ri = n; ri-- > 0;) {
        double acc = b[ri];
        for (std::size_t c = ri + 1; c < n; ++c) acc -= a.at(ri, c) * x[c];
        x[ri] = acc / a.at(ri, ri);
    }
}

std::vector<double> solve_lu_in_place(DenseMatrix& a, std::vector<double>& b,
                                      double pivot_floor) {
    std::vector<double> x;
    solve_lu_into(a, b, x, pivot_floor);
    return x;
}

std::vector<double> solve_lu(DenseMatrix a, std::vector<double> b,
                             double pivot_floor) {
    return solve_lu_in_place(a, b, pivot_floor);
}

}  // namespace mcsm
