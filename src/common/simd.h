// Portable fixed-width SIMD abstraction for the solver's lane kernels.
//
// DVec<W> is a W-wide double vector. On GNU/Clang it wraps the compiler's
// native vector type (vector_size), so every arithmetic op, compare, and
// blend lowers directly to one vector instruction in whichever TU
// instantiates it — no reliance on the autovectorizer recognizing per-lane
// loops. Each kernel translation unit is compiled for a specific target
// (-mavx2 -mfma, -mavx512f ...); the same template at W=1 is the guaranteed
// scalar fallback, so exactly one kernel source exists per algorithm and
// every width computes the same IEEE operation sequence. On other compilers
// DVec falls back to a plain array with per-lane loops (those builds never
// enable the vector tier; see CMake gating). The per-target TUs are built
// with -ffp-contract=off: lane ops are then plain vmulpd/vaddpd/vsqrtpd —
// bit-identical per lane to the scalar code — which is what makes kernel
// results independent of the dispatched width (asserted in test_ekv_batch).
//
// Runtime dispatch: cpu_caps() probes the running CPU once (cpuid via
// __builtin_cpu_supports on x86-64; everything false elsewhere) and
// pick_width() turns caps + environment into a lane width:
//   MCSM_NO_SIMD=1        force the scalar fallback (width 1)
//   MCSM_SIMD_WIDTH=1|4|8 pin a width, clamped down to what the CPU and
//                         the build support
// Auto dispatch takes the widest compiled width the CPU supports. Width
// resolution is a pure function so the policy is unit-testable without
// faking cpuid.
//
// Build gating: -DMCSM_SIMD=OFF (or MCSM_FAST_EKV=OFF, whose libm kernel
// the lane tier does not reimplement) compiles the vector TUs out entirely;
// compiled_in() reports which flavor this build is.
#ifndef MCSM_COMMON_SIMD_H
#define MCSM_COMMON_SIMD_H

#include <cmath>

#if defined(__GNUC__) || defined(__clang__)
#define MCSM_SIMD_INLINE inline __attribute__((always_inline))
#define MCSM_SIMD_NATIVE_VEC 1
#else
#define MCSM_SIMD_INLINE inline
#define MCSM_SIMD_NATIVE_VEC 0
#endif

#if MCSM_SIMD_NATIVE_VEC && (defined(__AVX__) || defined(__AVX512F__))
#include <immintrin.h>
#endif

namespace mcsm::simd {

// True when the vector lane kernels are part of this build (MCSM_SIMD=ON,
// fast EKV kernel on, x86-64 toolchain with AVX2 support available).
constexpr bool compiled_in() {
#ifdef MCSM_SIMD_ENABLED
    return true;
#else
    return false;
#endif
}

// ---- width abstraction -------------------------------------------------

template <int W>
struct DVec {
    static_assert(W == 1 || W == 4 || W == 8, "supported widths: 1, 4, 8");
#if MCSM_SIMD_NATIVE_VEC
    typedef double vec __attribute__((vector_size(W * 8)));
    // Same-size signed-integer vector: comparison results and bit masks.
    typedef long long ivec __attribute__((vector_size(W * 8)));
    vec v;
#else
    alignas(W * 8) double v[W];
#endif
};

template <int W>
MCSM_SIMD_INLINE DVec<W> broadcast(double x) {
    DVec<W> r;
#if MCSM_SIMD_NATIVE_VEC
    r.v = x - typename DVec<W>::vec{};  // scalar broadcasts over the vector
#else
    for (int k = 0; k < W; ++k) r.v[k] = x;
#endif
    return r;
}

template <int W>
MCSM_SIMD_INLINE DVec<W> load(const double* p) {
    DVec<W> r;
#if MCSM_SIMD_NATIVE_VEC
    // aligned(8): the lane scratch arrays are only element-aligned, so the
    // load must not assume the vector's natural alignment.
    typedef double uvec
        __attribute__((vector_size(W * 8), aligned(8), may_alias));
    r.v = (typename DVec<W>::vec)(*reinterpret_cast<const uvec*>(p));
#else
    for (int k = 0; k < W; ++k) r.v[k] = p[k];
#endif
    return r;
}

template <int W>
MCSM_SIMD_INLINE void store(double* p, DVec<W> a) {
#if MCSM_SIMD_NATIVE_VEC
    typedef double uvec
        __attribute__((vector_size(W * 8), aligned(8), may_alias));
    *reinterpret_cast<uvec*>(p) = (uvec)a.v;
#else
    for (int k = 0; k < W; ++k) p[k] = a.v[k];
#endif
}

template <int W>
MCSM_SIMD_INLINE DVec<W> operator+(DVec<W> a, DVec<W> b) {
    DVec<W> r;
#if MCSM_SIMD_NATIVE_VEC
    r.v = a.v + b.v;
#else
    for (int k = 0; k < W; ++k) r.v[k] = a.v[k] + b.v[k];
#endif
    return r;
}

template <int W>
MCSM_SIMD_INLINE DVec<W> operator-(DVec<W> a, DVec<W> b) {
    DVec<W> r;
#if MCSM_SIMD_NATIVE_VEC
    r.v = a.v - b.v;
#else
    for (int k = 0; k < W; ++k) r.v[k] = a.v[k] - b.v[k];
#endif
    return r;
}

template <int W>
MCSM_SIMD_INLINE DVec<W> operator*(DVec<W> a, DVec<W> b) {
    DVec<W> r;
#if MCSM_SIMD_NATIVE_VEC
    r.v = a.v * b.v;
#else
    for (int k = 0; k < W; ++k) r.v[k] = a.v[k] * b.v[k];
#endif
    return r;
}

template <int W>
MCSM_SIMD_INLINE DVec<W> operator/(DVec<W> a, DVec<W> b) {
    DVec<W> r;
#if MCSM_SIMD_NATIVE_VEC
    r.v = a.v / b.v;
#else
    for (int k = 0; k < W; ++k) r.v[k] = a.v[k] / b.v[k];
#endif
    return r;
}

template <int W>
MCSM_SIMD_INLINE DVec<W> operator-(DVec<W> a) {
    DVec<W> r;
#if MCSM_SIMD_NATIVE_VEC
    r.v = -a.v;
#else
    for (int k = 0; k < W; ++k) r.v[k] = -a.v[k];
#endif
    return r;
}

// Per-lane a < b ? t : f (compare + blend). NaN compares false, so NaN
// operands select f — the same outcome as the scalar ternary.
template <int W>
MCSM_SIMD_INLINE DVec<W> select_lt(DVec<W> a, DVec<W> b, DVec<W> t,
                                   DVec<W> f) {
    DVec<W> r;
#if MCSM_SIMD_NATIVE_VEC
    r.v = a.v < b.v ? t.v : f.v;
#else
    for (int k = 0; k < W; ++k)
        r.v[k] = a.v[k] < b.v[k] ? t.v[k] : f.v[k];
#endif
    return r;
}

// Per-lane a >= b ? t : f.
template <int W>
MCSM_SIMD_INLINE DVec<W> select_ge(DVec<W> a, DVec<W> b, DVec<W> t,
                                   DVec<W> f) {
    DVec<W> r;
#if MCSM_SIMD_NATIVE_VEC
    r.v = a.v >= b.v ? t.v : f.v;
#else
    for (int k = 0; k < W; ++k)
        r.v[k] = a.v[k] >= b.v[k] ? t.v[k] : f.v[k];
#endif
    return r;
}

// Per-lane isnan(x) ? t : f.
template <int W>
MCSM_SIMD_INLINE DVec<W> select_nan(DVec<W> x, DVec<W> t, DVec<W> f) {
    DVec<W> r;
#if MCSM_SIMD_NATIVE_VEC
    r.v = x.v != x.v ? t.v : f.v;
#else
    for (int k = 0; k < W; ++k)
        r.v[k] = x.v[k] != x.v[k] ? t.v[k] : f.v[k];
#endif
    return r;
}

// std::min semantics per lane: (b < a) ? b : a (keeps a when b is NaN and
// returns b when a is NaN, exactly like the scalar kernel's std::min).
template <int W>
MCSM_SIMD_INLINE DVec<W> vmin(DVec<W> a, DVec<W> b) {
    return select_lt(b, a, b, a);
}

// |a| by clearing the sign bit: bit-identical to std::fabs on every input
// including NaN payloads and -0.0.
template <int W>
MCSM_SIMD_INLINE DVec<W> vabs(DVec<W> a) {
    DVec<W> r;
#if MCSM_SIMD_NATIVE_VEC
    r.v = (typename DVec<W>::vec)((typename DVec<W>::ivec)a.v &
                                  0x7FFFFFFFFFFFFFFFll);
#else
    for (int k = 0; k < W; ++k) r.v[k] = std::fabs(a.v[k]);
#endif
    return r;
}

// floor / sqrt have no native vector operator; the x86 vector widths get
// intrinsic definitions below, everything else takes the per-lane loop
// (exact: both the library calls and the instructions are correctly
// rounded / exact IEEE operations).
template <int W>
MCSM_SIMD_INLINE DVec<W> vfloor(DVec<W> a) {
    DVec<W> r;
    for (int k = 0; k < W; ++k) r.v[k] = std::floor(a.v[k]);
    return r;
}

template <int W>
MCSM_SIMD_INLINE DVec<W> vsqrt(DVec<W> a) {
    DVec<W> r;
    for (int k = 0; k < W; ++k) r.v[k] = std::sqrt(a.v[k]);
    return r;
}

#if MCSM_SIMD_NATIVE_VEC && defined(__AVX__)
template <>
MCSM_SIMD_INLINE DVec<4> vfloor<4>(DVec<4> a) {
    return {(DVec<4>::vec)_mm256_floor_pd((__m256d)a.v)};
}

template <>
MCSM_SIMD_INLINE DVec<4> vsqrt<4>(DVec<4> a) {
    return {(DVec<4>::vec)_mm256_sqrt_pd((__m256d)a.v)};
}
#endif

#if MCSM_SIMD_NATIVE_VEC && defined(__AVX512F__)
template <>
MCSM_SIMD_INLINE DVec<8> vfloor<8>(DVec<8> a) {
    // roundscale imm 0x01: round toward -inf, scale 2^0 — exact floor.
    return {(DVec<8>::vec)_mm512_roundscale_pd((__m512d)a.v, 0x01)};
}

template <>
MCSM_SIMD_INLINE DVec<8> vsqrt<8>(DVec<8> a) {
    return {(DVec<8>::vec)_mm512_sqrt_pd((__m512d)a.v)};
}
#endif

// ---- runtime dispatch --------------------------------------------------

struct Caps {
    bool avx2_fma = false;  // AVX2 + FMA: the 4-wide tier
    bool avx512 = false;    // AVX-512 F/DQ/VL: the 8-wide tier
};

// Capabilities of the running CPU (probed once, cached).
const Caps& cpu_caps();

// Widths compiled into this binary (scalar is always available).
bool width_compiled(int w);

// Pure dispatch policy: the widest compiled width the CPU supports, capped
// by the env knobs. `no_simd_env` / `width_env` are the raw values of
// MCSM_NO_SIMD / MCSM_SIMD_WIDTH (nullptr when unset). Unsupported or
// malformed requests clamp down to the next available width, never up.
int pick_width(const Caps& caps, const char* no_simd_env,
               const char* width_env);

// pick_width over the real environment and cpu_caps(), cached per process
// so every batch in the process dispatches the same kernel (the fixed
// kernel config the determinism contract is stated over).
int default_width();

}  // namespace mcsm::simd

#endif  // MCSM_COMMON_SIMD_H
