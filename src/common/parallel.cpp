#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <utility>

#include "obs/metrics.h"

namespace mcsm {

namespace {

thread_local bool t_on_worker = false;

// Shared lazily-created pool. Sized once from hardware_threads(); living for
// the process keeps thread spawn cost out of every sweep.
ThreadPool& shared_pool() {
    static ThreadPool pool(hardware_threads());
    return pool;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
    if (threads < 1) threads = 1;
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        MutexLock lock(mutex_);
        stopping_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> job) {
    static obs::Gauge& queue_depth = obs::gauge("pool.queue_depth");
    {
        MutexLock lock(mutex_);
        queue_.push_back(std::move(job));
        ++in_flight_;
    }
    queue_depth.add(1);
    work_cv_.notify_one();
}

// Condition-variable wait: the lock travels through std::unique_lock, which
// the thread-safety analysis cannot follow, so the guarded-member accesses
// in the predicate are exempted here (and only here).
void ThreadPool::wait_idle() MCSM_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<Mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

bool ThreadPool::on_worker_thread() { return t_on_worker; }

// Same std::unique_lock exemption as wait_idle().
void ThreadPool::worker_loop() MCSM_NO_THREAD_SAFETY_ANALYSIS {
    t_on_worker = true;
    // pool.busy_ns / pool.tasks together give per-worker utilization
    // (busy_ns / workers / wall time); pool.task_ns is the task-size
    // distribution the micro-batching work wants to watch.
    static obs::Gauge& queue_depth = obs::gauge("pool.queue_depth");
    static obs::Counter& tasks = obs::counter("pool.tasks");
    static obs::Counter& busy_ns = obs::counter("pool.busy_ns");
    static obs::Histogram& task_ns = obs::histogram("pool.task_ns");
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<Mutex> lock(mutex_);
            work_cv_.wait(lock,
                          [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stopping
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        queue_depth.add(-1);
        const std::uint64_t t0 = obs::now_ns();
        job();
        const auto elapsed = static_cast<long long>(obs::now_ns() - t0);
        tasks.add();
        busy_ns.add(elapsed);
        task_ns.observe(static_cast<double>(elapsed));
        {
            MutexLock lock(mutex_);
            if (--in_flight_ == 0) idle_cv_.notify_all();
        }
    }
}

std::size_t hardware_threads() {
    std::size_t n = std::thread::hardware_concurrency();
    if (n < 1) n = 1;
    if (const char* env = std::getenv("MCSM_THREADS")) {
        // Overrides in either direction: throttling shared machines, or
        // exercising the pool on single-core CI runners.
        const long want = std::strtol(env, nullptr, 10);
        if (want > 0) n = std::min<std::size_t>(static_cast<std::size_t>(want), 256);
    }
    return n;
}

std::size_t resolve_threads(std::size_t requested) {
    return requested == 0 ? hardware_threads() : requested;
}

void parallel_workers(std::size_t k,
                      const std::function<void(std::size_t)>& worker) {
    if (k == 0) return;
    if (k == 1 || ThreadPool::on_worker_thread()) {
        for (std::size_t w = 0; w < k; ++w) worker(w);
        return;
    }
    ThreadPool& pool = shared_pool();
    // Per-call completion latch: the caller waits for ITS k jobs only, so
    // concurrent top-level fan-outs on the shared pool don't serialize on
    // each other's batches.
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex mutex;
    std::condition_variable done_cv;
    std::size_t remaining = k;
    for (std::size_t w = 0; w < k; ++w) {
        pool.submit([&, w] {
            if (!failed.load(std::memory_order_relaxed)) {
                try {
                    worker(w);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(mutex);
                    if (!failed.exchange(true)) {
                        first_error = std::current_exception();
                    }
                }
            }
            std::lock_guard<std::mutex> lock(mutex);
            if (--remaining == 0) done_cv.notify_all();
        });
    }
    std::unique_lock<std::mutex> lock(mutex);
    done_cv.wait(lock, [&] { return remaining == 0; });
    if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads) {
    if (n == 0) return;
    const std::size_t k =
        std::min(resolve_threads(threads), n);
    if (k <= 1 || ThreadPool::on_worker_thread()) {
        for (std::size_t i = 0; i < n; ++i) fn(i);
        return;
    }
    std::atomic<std::size_t> next{0};
    parallel_workers(k, [&](std::size_t) {
        for (;;) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n) return;
            fn(i);
        }
    });
}

}  // namespace mcsm
