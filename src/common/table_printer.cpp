#include "common/table_printer.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/error.h"

namespace mcsm {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
    require(cells.size() == header_.size(),
            "TablePrinter: row width differs from header");
    rows_.push_back(std::move(cells));
}

std::string TablePrinter::num(double v, int precision) {
    std::ostringstream os;
    os << std::setprecision(precision) << v;
    return os.str();
}

void TablePrinter::print_aligned(std::ostream& os) const {
    std::vector<std::size_t> width(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto print_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
        }
        os << '\n';
    };
    print_row(header_);
    for (const auto& row : rows_) print_row(row);
}

void TablePrinter::print_csv(std::ostream& os) const {
    auto print_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c) os << ',';
            os << row[c];
        }
        os << '\n';
    };
    print_row(header_);
    for (const auto& row : rows_) print_row(row);
}

}  // namespace mcsm
