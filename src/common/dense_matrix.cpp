#include "common/dense_matrix.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mcsm {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

void DenseMatrix::set_zero() {
    std::fill(data_.begin(), data_.end(), 0.0);
}

void DenseMatrix::resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0);
}

double DenseMatrix::max_abs() const {
    double m = 0.0;
    for (double v : data_) m = std::max(m, std::fabs(v));
    return m;
}

std::vector<double> DenseMatrix::multiply(const std::vector<double>& x) const {
    require(x.size() == cols_, "DenseMatrix::multiply: size mismatch");
    std::vector<double> y(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        double acc = 0.0;
        for (std::size_t c = 0; c < cols_; ++c) acc += data_[r * cols_ + c] * x[c];
        y[r] = acc;
    }
    return y;
}

}  // namespace mcsm
