// Dense row-major matrix, sized for MNA systems of a few dozen unknowns.
#ifndef MCSM_COMMON_DENSE_MATRIX_H
#define MCSM_COMMON_DENSE_MATRIX_H

#include <cstddef>
#include <vector>

namespace mcsm {

class DenseMatrix {
public:
    DenseMatrix() = default;
    DenseMatrix(std::size_t rows, std::size_t cols);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
    double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

    // Sets every entry to zero without reallocating.
    void set_zero();

    // Resizes to rows x cols and zero-fills.
    void resize(std::size_t rows, std::size_t cols);

    // max |a_ij|; zero for an empty matrix.
    double max_abs() const;

    // y = A x. x must have cols() entries; returns rows() entries.
    std::vector<double> multiply(const std::vector<double>& x) const;

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

}  // namespace mcsm

#endif  // MCSM_COMMON_DENSE_MATRIX_H
