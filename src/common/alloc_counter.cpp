#include "common/alloc_counter.h"

namespace mcsm {

std::atomic<std::size_t> AllocCounter::news{0};

}  // namespace mcsm
