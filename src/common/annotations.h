// Portable Clang thread-safety annotations plus the annotated mutex types
// the analysis needs to be useful.
//
// Clang's -Wthread-safety proves lock discipline at compile time: members
// declared MCSM_GUARDED_BY(m) may only be touched while m is held, and
// functions declared MCSM_REQUIRES(m) may only be called with m held. The
// attributes only exist under Clang; every macro expands to nothing on other
// compilers, so GCC builds are unaffected. The CI static-analysis job builds
// with clang -Wthread-safety -Werror, which turns any violation into a
// build failure.
//
// std::mutex on libstdc++ carries no capability attributes, so the analysis
// cannot follow it. Mutex below wraps std::mutex with annotated
// lock()/unlock()/try_lock(), and MutexLock is the annotated RAII guard.
// Code that must hand a lock to a condition variable uses
// std::unique_lock<Mutex> (Mutex satisfies BasicLockable) together with
// std::condition_variable_any; the analysis cannot see through
// std::unique_lock, so such wait loops carry
// MCSM_NO_THREAD_SAFETY_ANALYSIS with a comment.
#ifndef MCSM_COMMON_ANNOTATIONS_H
#define MCSM_COMMON_ANNOTATIONS_H

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define MCSM_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef MCSM_THREAD_ANNOTATION
#define MCSM_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

#define MCSM_CAPABILITY(x) MCSM_THREAD_ANNOTATION(capability(x))
#define MCSM_SCOPED_CAPABILITY MCSM_THREAD_ANNOTATION(scoped_lockable)
#define MCSM_GUARDED_BY(x) MCSM_THREAD_ANNOTATION(guarded_by(x))
#define MCSM_PT_GUARDED_BY(x) MCSM_THREAD_ANNOTATION(pt_guarded_by(x))
#define MCSM_REQUIRES(...) \
    MCSM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define MCSM_ACQUIRE(...) \
    MCSM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define MCSM_TRY_ACQUIRE(...) \
    MCSM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define MCSM_RELEASE(...) \
    MCSM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define MCSM_EXCLUDES(...) MCSM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define MCSM_RETURN_CAPABILITY(x) MCSM_THREAD_ANNOTATION(lock_returned(x))
#define MCSM_NO_THREAD_SAFETY_ANALYSIS \
    MCSM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace mcsm {

// std::mutex with capability annotations so -Wthread-safety can track it.
// Satisfies Lockable, so std::unique_lock<Mutex> and
// std::condition_variable_any work unchanged.
class MCSM_CAPABILITY("mutex") Mutex {
public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() MCSM_ACQUIRE() { m_.lock(); }
    void unlock() MCSM_RELEASE() { m_.unlock(); }
    bool try_lock() MCSM_TRY_ACQUIRE(true) { return m_.try_lock(); }

private:
    std::mutex m_;
};

// Annotated lock_guard equivalent for plain critical sections.
class MCSM_SCOPED_CAPABILITY MutexLock {
public:
    explicit MutexLock(Mutex& m) MCSM_ACQUIRE(m) : m_(m) { m_.lock(); }
    ~MutexLock() MCSM_RELEASE() { m_.unlock(); }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

private:
    Mutex& m_;
};

}  // namespace mcsm

#endif  // MCSM_COMMON_ANNOTATIONS_H
