// Sparse LU for MNA systems with pattern-reusing symbolic factorization.
//
// The first factorization ("full") runs threshold partial pivoting with a
// Markowitz-style sparsity tie-break, records the pivot row order, and
// computes the symbolic fill pattern of L+U for that order. Subsequent
// factorizations of a matrix with the same pattern ("refactor") redo only
// the numeric elimination over the precomputed fill slots in the recorded
// pivot order - no searching, no allocation. A per-row stability check
// falls back to a fresh full factorization when the frozen pivot order goes
// bad (device conductances can change by many orders of magnitude across
// Newton iterations), so refactoring never trades away robustness.
#ifndef MCSM_COMMON_SPARSE_LU_H
#define MCSM_COMMON_SPARSE_LU_H

#include <cstddef>
#include <vector>

#include "common/sparse_matrix.h"

namespace mcsm {

class SparseLu {
public:
    // Factorizes `a`, reusing the symbolic analysis from the previous call
    // when the pattern is unchanged. Throws NumericalError when the matrix
    // is singular up to pivot_floor.
    void factor(const SparseMatrix& a, double pivot_floor = 1e-30);

    // Solves A x = b with the current factorization. x is resized to n;
    // no allocation once its capacity is established.
    void solve(const std::vector<double>& b, std::vector<double>& x) const;

    // Solves A X = B for `nrhs` right-hand sides with one forward/backward
    // pass over the factors. B and X are interleaved (the entry for unknown
    // i of system j sits at [i * nrhs + j]) so the substitution inner loops
    // run contiguously over the RHS dimension — each L/U value is loaded
    // once and applied to the whole block, and the loops vectorize across
    // systems. Both buffers must hold n * nrhs doubles; allocation-free.
    void solve_block(const double* b, double* x, std::size_t nrhs) const;

    bool analyzed() const { return n_ > 0; }
    // Drops the symbolic analysis (next factor() re-pivots from scratch).
    void invalidate() { n_ = 0; }

    std::size_t lu_nnz() const { return lu_cols_.size(); }
    // Instrumentation: how often the expensive pivot-order analysis ran vs
    // the cheap pattern-reusing numeric path.
    std::size_t full_factor_count() const { return full_factors_; }
    std::size_t refactor_count() const { return refactors_; }

private:
    // Pivot search + symbolic fill; allocates freely (cold path).
    void full_factor(const SparseMatrix& a, double pivot_floor);
    // Numeric elimination over the frozen pattern; allocation-free. Returns
    // false when a pivot is absolutely or relatively too small.
    bool refactor(const SparseMatrix& a, double pivot_floor);
    // True when `a` has exactly the analyzed sparsity pattern.
    bool same_pattern(const SparseMatrix& a) const;

    std::size_t n_ = 0;
    std::size_t pattern_nnz_ = 0;       // nnz of the analyzed input matrix
    std::vector<int> a_row_ptr_;        // analyzed input pattern (identity
    std::vector<int> a_cols_;           // check for safe refactor reuse)
    std::vector<int> perm_;             // perm_[i]: input row eliminated i-th
    std::vector<int> lu_row_ptr_;       // fill pattern of L+U, row-major
    std::vector<int> lu_cols_;          // sorted; cols < i are L, >= i are U
    std::vector<double> lu_vals_;
    std::vector<int> diag_pos_;         // slot of (i, i) within lu row i
    std::vector<double> inv_diag_;
    mutable std::vector<double> work_;  // dense scatter row
    std::size_t full_factors_ = 0;
    std::size_t refactors_ = 0;
};

}  // namespace mcsm

#endif  // MCSM_COMMON_SPARSE_LU_H
