#include "common/sparse_lu.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/dense_matrix.h"
#include "common/error.h"

namespace mcsm {

namespace {

// Accept a pivot within this factor of the column max (threshold pivoting);
// among acceptable rows the sparsest one is chosen to limit fill.
constexpr double kPivotThreshold = 0.1;

// A refactor pivot smaller than this fraction of its row's largest entry
// means the frozen pivot order has gone numerically bad.
constexpr double kRefactorStability = 1e-10;

}  // namespace

bool SparseLu::same_pattern(const SparseMatrix& a) const {
    if (n_ != a.size() || pattern_nnz_ != a.nnz()) return false;
    // Exact pattern identity: a same-size/same-nnz matrix with different
    // coordinates must not take the refactor path (its entries would land
    // outside the frozen fill and be silently dropped). The compare is a
    // contiguous int scan, noise next to the numeric elimination.
    std::size_t s = 0;
    for (std::size_t r = 0; r < n_; ++r) {
        const auto cols = a.row_cols(r);
        if (static_cast<int>(cols.size()) !=
            a_row_ptr_[r + 1] - a_row_ptr_[r])
            return false;
        for (int c : cols)
            if (a_cols_[s++] != c) return false;
    }
    return true;
}

void SparseLu::factor(const SparseMatrix& a, double pivot_floor) {
    require(!a.empty(), "SparseLu: empty matrix");
    if (!same_pattern(a)) {
        full_factor(a, pivot_floor);
        return;
    }
    if (refactor(a, pivot_floor)) {
        ++refactors_;
        return;
    }
    // Frozen pivot order went bad; re-pivot from scratch.
    full_factor(a, pivot_floor);
}

void SparseLu::full_factor(const SparseMatrix& a, double pivot_floor) {
    const std::size_t n = a.size();
    ++full_factors_;

    // --- pivot-order search on a dense working copy --------------------
    // MNA systems here are tens of unknowns; an O(n^3) search once per
    // topology (or per rare stability fallback) is noise next to the
    // thousands of refactors it unlocks.
    DenseMatrix w(n, n);
    for (std::size_t r = 0; r < n; ++r) {
        const auto cols = a.row_cols(r);
        const auto vals = a.row_values(r);
        for (std::size_t s = 0; s < cols.size(); ++s)
            w.at(r, static_cast<std::size_t>(cols[s])) = vals[s];
    }
    std::vector<int> perm(n);
    for (std::size_t i = 0; i < n; ++i) perm[i] = static_cast<int>(i);

    for (std::size_t k = 0; k < n; ++k) {
        double col_max = 0.0;
        for (std::size_t r = k; r < n; ++r)
            col_max = std::max(col_max, std::fabs(w.at(r, k)));
        if (col_max < pivot_floor) {
            throw NumericalError("SparseLu: singular matrix (column " +
                                 std::to_string(k) + " max " +
                                 std::to_string(col_max) + ")");
        }
        // Threshold pivoting with a Markowitz-style tie-break: among rows
        // whose pivot candidate is within kPivotThreshold of the column
        // max, take the one with the fewest remaining nonzeros.
        std::size_t pivot_row = k;
        std::size_t best_nnz = n + 1;
        for (std::size_t r = k; r < n; ++r) {
            if (std::fabs(w.at(r, k)) < kPivotThreshold * col_max) continue;
            std::size_t nnz = 0;
            for (std::size_t c = k; c < n; ++c)
                if (w.at(r, c) != 0.0) ++nnz;
            if (nnz < best_nnz) {
                best_nnz = nnz;
                pivot_row = r;
            }
        }
        if (pivot_row != k) {
            for (std::size_t c = 0; c < n; ++c)
                std::swap(w.at(k, c), w.at(pivot_row, c));
            std::swap(perm[k], perm[pivot_row]);
        }
        const double inv_pivot = 1.0 / w.at(k, k);
        for (std::size_t r = k + 1; r < n; ++r) {
            const double factor = w.at(r, k) * inv_pivot;
            if (factor == 0.0) continue;
            w.at(r, k) = factor;
            for (std::size_t c = k + 1; c < n; ++c)
                w.at(r, c) -= factor * w.at(k, c);
        }
    }

    // --- symbolic fill for the recorded pivot order --------------------
    // Row-merge symbolic elimination: the fill pattern of row i is its
    // input pattern plus, for every L column k (ascending), the U pattern
    // of row k. Exact fill by structure - numeric cancellations in the
    // dense pass above cannot drop slots the refactor will need.
    std::vector<std::vector<int>> rows(n);
    std::vector<char> mark(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<int>& pat = rows[i];
        const auto cols = a.row_cols(static_cast<std::size_t>(perm[i]));
        pat.assign(cols.begin(), cols.end());
        if (!std::binary_search(pat.begin(), pat.end(),
                                static_cast<int>(i))) {
            pat.insert(std::lower_bound(pat.begin(), pat.end(),
                                        static_cast<int>(i)),
                       static_cast<int>(i));
        }
        for (int c : pat) mark[static_cast<std::size_t>(c)] = 1;
        // Ascending traversal; fill inserted behind the cursor is never
        // needed (row k only contributes columns > k).
        for (std::size_t s = 0; s < pat.size(); ++s) {
            const int k = pat[s];
            if (static_cast<std::size_t>(k) >= i) break;
            const std::vector<int>& krow = rows[static_cast<std::size_t>(k)];
            for (auto it = std::upper_bound(krow.begin(), krow.end(), k);
                 it != krow.end(); ++it) {
                if (mark[static_cast<std::size_t>(*it)]) continue;
                mark[static_cast<std::size_t>(*it)] = 1;
                pat.insert(std::lower_bound(pat.begin(), pat.end(), *it),
                           *it);
            }
        }
        for (int c : pat) mark[static_cast<std::size_t>(c)] = 0;
    }

    // --- freeze the workspace ------------------------------------------
    n_ = n;
    pattern_nnz_ = a.nnz();
    a_row_ptr_.assign(n + 1, 0);
    a_cols_.clear();
    a_cols_.reserve(a.nnz());
    for (std::size_t r = 0; r < n; ++r) {
        const auto cols = a.row_cols(r);
        a_cols_.insert(a_cols_.end(), cols.begin(), cols.end());
        a_row_ptr_[r + 1] =
            a_row_ptr_[r] + static_cast<int>(cols.size());
    }
    perm_ = std::move(perm);
    lu_row_ptr_.assign(n + 1, 0);
    std::size_t total = 0;
    for (std::size_t i = 0; i < n; ++i) {
        lu_row_ptr_[i] = static_cast<int>(total);
        total += rows[i].size();
    }
    lu_row_ptr_[n] = static_cast<int>(total);
    lu_cols_.clear();
    lu_cols_.reserve(total);
    for (const auto& pat : rows)
        lu_cols_.insert(lu_cols_.end(), pat.begin(), pat.end());
    lu_vals_.assign(total, 0.0);
    diag_pos_.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        const int* first = lu_cols_.data() + lu_row_ptr_[i];
        const int* last = lu_cols_.data() + lu_row_ptr_[i + 1];
        const int* it = std::lower_bound(first, last, static_cast<int>(i));
        diag_pos_[i] = static_cast<int>(it - lu_cols_.data());
    }
    inv_diag_.assign(n, 0.0);
    work_.assign(n, 0.0);

    if (!refactor(a, pivot_floor)) {
        // The dense pass above vouched for this pivot order; only a truly
        // borderline-singular system lands here.
        invalidate();
        throw NumericalError("SparseLu: factorization unstable at the "
                             "pivot floor");
    }
}

bool SparseLu::refactor(const SparseMatrix& a, double pivot_floor) {
    const std::size_t n = n_;
    for (std::size_t i = 0; i < n; ++i) {
        const int row_begin = lu_row_ptr_[i];
        const int row_end = lu_row_ptr_[i + 1];
        for (int s = row_begin; s < row_end; ++s)
            work_[static_cast<std::size_t>(lu_cols_[s])] = 0.0;

        const auto r = static_cast<std::size_t>(perm_[i]);
        const auto cols = a.row_cols(r);
        const auto vals = a.row_values(r);
        for (std::size_t s = 0; s < cols.size(); ++s)
            work_[static_cast<std::size_t>(cols[s])] += vals[s];

        for (int s = row_begin; s < row_end; ++s) {
            const int k = lu_cols_[s];
            if (static_cast<std::size_t>(k) >= i) break;
            const double l =
                work_[static_cast<std::size_t>(k)] *
                inv_diag_[static_cast<std::size_t>(k)];
            work_[static_cast<std::size_t>(k)] = l;
            if (l == 0.0) continue;
            const int kend = lu_row_ptr_[static_cast<std::size_t>(k) + 1];
            for (int us = diag_pos_[static_cast<std::size_t>(k)] + 1;
                 us < kend; ++us)
                work_[static_cast<std::size_t>(lu_cols_[us])] -=
                    l * lu_vals_[static_cast<std::size_t>(us)];
        }

        const double pivot = work_[i];
        double row_max = std::fabs(pivot);
        for (int s = diag_pos_[i] + 1; s < row_end; ++s)
            row_max = std::max(
                row_max,
                std::fabs(work_[static_cast<std::size_t>(lu_cols_[s])]));
        if (std::fabs(pivot) < pivot_floor ||
            std::fabs(pivot) < kRefactorStability * row_max)
            return false;
        inv_diag_[i] = 1.0 / pivot;

        for (int s = row_begin; s < row_end; ++s)
            lu_vals_[static_cast<std::size_t>(s)] =
                work_[static_cast<std::size_t>(lu_cols_[s])];
    }
    return true;
}

void SparseLu::solve_block(const double* b, double* x,
                           std::size_t nrhs) const {
    require(analyzed(), "SparseLu: factor() before solve_block()");
    require(nrhs > 0, "SparseLu: solve_block needs at least one rhs");

    // Forward: L Y = P B (unit lower triangle), Y stored in x.
    for (std::size_t i = 0; i < n_; ++i) {
        double* xi = x + i * nrhs;
        const double* bi =
            b + static_cast<std::size_t>(perm_[i]) * nrhs;
        for (std::size_t j = 0; j < nrhs; ++j) xi[j] = bi[j];
        const int dp = diag_pos_[i];
        for (int s = lu_row_ptr_[i]; s < dp; ++s) {
            const double l = lu_vals_[static_cast<std::size_t>(s)];
            const double* xk =
                x + static_cast<std::size_t>(lu_cols_[s]) * nrhs;
            for (std::size_t j = 0; j < nrhs; ++j) xi[j] -= l * xk[j];
        }
    }
    // Backward: U X = Y.
    for (std::size_t i = n_; i-- > 0;) {
        double* xi = x + i * nrhs;
        const int row_end = lu_row_ptr_[i + 1];
        for (int s = diag_pos_[i] + 1; s < row_end; ++s) {
            const double u = lu_vals_[static_cast<std::size_t>(s)];
            const double* xk =
                x + static_cast<std::size_t>(lu_cols_[s]) * nrhs;
            for (std::size_t j = 0; j < nrhs; ++j) xi[j] -= u * xk[j];
        }
        const double d = inv_diag_[i];
        for (std::size_t j = 0; j < nrhs; ++j) xi[j] *= d;
    }
}

void SparseLu::solve(const std::vector<double>& b,
                     std::vector<double>& x) const {
    require(analyzed(), "SparseLu: factor() before solve()");
    require(b.size() == n_, "SparseLu: rhs size mismatch");
    x.resize(n_);

    // Forward: L y = P b (unit lower triangle), y stored in x.
    for (std::size_t i = 0; i < n_; ++i) {
        double acc = b[static_cast<std::size_t>(perm_[i])];
        const int dp = diag_pos_[i];
        for (int s = lu_row_ptr_[i]; s < dp; ++s)
            acc -= lu_vals_[static_cast<std::size_t>(s)] *
                   x[static_cast<std::size_t>(lu_cols_[s])];
        x[i] = acc;
    }
    // Backward: U x = y.
    for (std::size_t i = n_; i-- > 0;) {
        double acc = x[i];
        const int row_end = lu_row_ptr_[i + 1];
        for (int s = diag_pos_[i] + 1; s < row_end; ++s)
            acc -= lu_vals_[static_cast<std::size_t>(s)] *
                   x[static_cast<std::size_t>(lu_cols_[s])];
        x[i] = acc * inv_diag_[i];
    }
}

}  // namespace mcsm
