// In-place LU factorization with partial pivoting for MNA systems.
#ifndef MCSM_COMMON_LINEAR_SOLVER_H
#define MCSM_COMMON_LINEAR_SOLVER_H

#include <vector>

#include "common/dense_matrix.h"

namespace mcsm {

// Solves A x = b by LU with partial pivoting. A and b are destroyed.
// Throws NumericalError when a pivot falls below pivot_floor (singular
// system up to roundoff).
std::vector<double> solve_lu_in_place(DenseMatrix& a, std::vector<double>& b,
                                      double pivot_floor = 1e-30);

// Convenience overload preserving the inputs.
std::vector<double> solve_lu(DenseMatrix a, std::vector<double> b,
                             double pivot_floor = 1e-30);

// Allocation-free variant for hot loops: factors a/b in place and writes
// the solution into x (only resized on first use at a given dimension).
void solve_lu_into(DenseMatrix& a, std::vector<double>& b,
                   std::vector<double>& x, double pivot_floor = 1e-30);

}  // namespace mcsm

#endif  // MCSM_COMMON_LINEAR_SOLVER_H
