#include "common/sparse_matrix.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mcsm {

void SparseMatrix::build(std::size_t n,
                         std::vector<std::pair<int, int>> entries) {
    n_ = n;
    for (std::size_t i = 0; i < n; ++i)
        entries.emplace_back(static_cast<int>(i), static_cast<int>(i));
    std::sort(entries.begin(), entries.end());
    entries.erase(std::unique(entries.begin(), entries.end()), entries.end());

    row_ptr_.assign(n + 1, 0);
    cols_.clear();
    cols_.reserve(entries.size());
    for (const auto& [r, c] : entries) {
        require(r >= 0 && c >= 0 && static_cast<std::size_t>(r) < n &&
                    static_cast<std::size_t>(c) < n,
                "SparseMatrix: entry out of range");
        ++row_ptr_[static_cast<std::size_t>(r) + 1];
        cols_.push_back(c);
    }
    for (std::size_t r = 0; r < n; ++r) row_ptr_[r + 1] += row_ptr_[r];
    vals_.assign(cols_.size(), 0.0);

    // 512^2 ints = 1 MiB; circuits past that size switch to the row-hashed
    // map, whose footprint scales with nnz instead of n^2.
    constexpr std::size_t kSlotMapLimit = 512;
    slot_map_.clear();
    hash_ptr_.clear();
    hash_key_.clear();
    hash_slot_.clear();
    if (n <= kSlotMapLimit) {
        slot_map_.assign(n * n, -1);
        for (std::size_t r = 0; r < n; ++r) {
            for (int s = row_ptr_[r]; s < row_ptr_[r + 1]; ++s)
                slot_map_[r * n + static_cast<std::size_t>(cols_[s])] = s;
        }
        return;
    }

    // Per-row open-addressed tables: power-of-two capacity at least twice
    // the row's nnz keeps the probe chains O(1).
    hash_ptr_.assign(n + 1, 0);
    for (std::size_t r = 0; r < n; ++r) {
        const std::size_t nnz_r =
            static_cast<std::size_t>(row_ptr_[r + 1] - row_ptr_[r]);
        std::size_t cap = 2;
        while (cap < 2 * nnz_r) cap *= 2;
        hash_ptr_[r + 1] = hash_ptr_[r] + cap;
    }
    hash_key_.assign(hash_ptr_[n], -1);
    hash_slot_.assign(hash_ptr_[n], -1);
    for (std::size_t r = 0; r < n; ++r) {
        const std::size_t base = hash_ptr_[r];
        const std::size_t mask = hash_ptr_[r + 1] - base - 1;
        for (int s = row_ptr_[r]; s < row_ptr_[r + 1]; ++s) {
            std::size_t h =
                hash_col(static_cast<std::size_t>(cols_[s])) & mask;
            while (hash_key_[base + h] >= 0) h = (h + 1) & mask;
            hash_key_[base + h] = cols_[s];
            hash_slot_[base + h] = s;
        }
    }
}

void SparseMatrix::set_zero() {
    std::fill(vals_.begin(), vals_.end(), 0.0);
}

double SparseMatrix::at(std::size_t r, std::size_t c) const {
    const int slot = slot_of(r, c);
    return slot < 0 ? 0.0 : vals_[static_cast<std::size_t>(slot)];
}

void SparseMatrix::multiply(std::span<const double> x,
                            std::span<double> y) const {
    require(x.size() == n_ && y.size() == n_,
            "SparseMatrix: multiply size mismatch");
    for (std::size_t r = 0; r < n_; ++r) {
        double acc = 0.0;
        for (int s = row_ptr_[r]; s < row_ptr_[r + 1]; ++s)
            acc += vals_[static_cast<std::size_t>(s)] *
                   x[static_cast<std::size_t>(cols_[static_cast<std::size_t>(s)])];
        y[r] = acc;
    }
}

double SparseMatrix::max_abs() const {
    double m = 0.0;
    for (double v : vals_) m = std::max(m, std::fabs(v));
    return m;
}

}  // namespace mcsm
