#include "common/sparse_matrix.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mcsm {

void SparseMatrix::build(std::size_t n,
                         std::vector<std::pair<int, int>> entries) {
    n_ = n;
    for (std::size_t i = 0; i < n; ++i)
        entries.emplace_back(static_cast<int>(i), static_cast<int>(i));
    std::sort(entries.begin(), entries.end());
    entries.erase(std::unique(entries.begin(), entries.end()), entries.end());

    row_ptr_.assign(n + 1, 0);
    cols_.clear();
    cols_.reserve(entries.size());
    for (const auto& [r, c] : entries) {
        require(r >= 0 && c >= 0 && static_cast<std::size_t>(r) < n &&
                    static_cast<std::size_t>(c) < n,
                "SparseMatrix: entry out of range");
        ++row_ptr_[static_cast<std::size_t>(r) + 1];
        cols_.push_back(c);
    }
    for (std::size_t r = 0; r < n; ++r) row_ptr_[r + 1] += row_ptr_[r];
    vals_.assign(cols_.size(), 0.0);

    // 512^2 ints = 1 MiB; circuits past that size fall back to the
    // binary-search lookup.
    constexpr std::size_t kSlotMapLimit = 512;
    slot_map_.clear();
    if (n <= kSlotMapLimit) {
        slot_map_.assign(n * n, -1);
        for (std::size_t r = 0; r < n; ++r) {
            for (int s = row_ptr_[r]; s < row_ptr_[r + 1]; ++s)
                slot_map_[r * n + static_cast<std::size_t>(cols_[s])] = s;
        }
    }
}

void SparseMatrix::set_zero() {
    std::fill(vals_.begin(), vals_.end(), 0.0);
}

int SparseMatrix::slot_of_search(std::size_t r, std::size_t c) const {
    const int* first = cols_.data() + row_ptr_[r];
    const int* last = cols_.data() + row_ptr_[r + 1];
    const int* it = std::lower_bound(first, last, static_cast<int>(c));
    if (it == last || *it != static_cast<int>(c)) return -1;
    return static_cast<int>(it - cols_.data());
}

double SparseMatrix::at(std::size_t r, std::size_t c) const {
    const int slot = slot_of(r, c);
    return slot < 0 ? 0.0 : vals_[static_cast<std::size_t>(slot)];
}

double SparseMatrix::max_abs() const {
    double m = 0.0;
    for (double v : vals_) m = std::max(m, std::fabs(v));
    return m;
}

}  // namespace mcsm
