// Minimal thread pool for fanning independent solves (characterization grid
// sweeps, scenario enumeration, STA level evaluation) out over cores.
//
// Concurrency model: callers split work into tasks that touch disjoint data
// (per-thread circuits/workspaces, disjoint table slots); the pool provides
// scheduling and completion only. Nested parallel_for/parallel_workers calls
// from inside a worker run inline, so composed layers (parallel library jobs
// each running a parallel characterizer) degrade gracefully instead of
// deadlocking or oversubscribing.
//
// Environment: MCSM_THREADS=<n> overrides hardware_threads() in either
// direction (0/unset: all cores).
#ifndef MCSM_COMMON_PARALLEL_H
#define MCSM_COMMON_PARALLEL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/annotations.h"

namespace mcsm {

class ThreadPool {
public:
    explicit ThreadPool(std::size_t threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t thread_count() const { return workers_.size(); }

    // Enqueues a job; jobs must not throw past their own boundary (use
    // parallel_for / parallel_workers for exception propagation).
    void submit(std::function<void()> job) MCSM_EXCLUDES(mutex_);

    // Blocks until every submitted job has finished.
    void wait_idle() MCSM_EXCLUDES(mutex_);

    // True when the calling thread is one of this (or any) pool's workers.
    static bool on_worker_thread();

private:
    void worker_loop() MCSM_EXCLUDES(mutex_);

    std::vector<std::thread> workers_;
    Mutex mutex_;
    std::deque<std::function<void()>> queue_ MCSM_GUARDED_BY(mutex_);
    // condition_variable_any: waits take std::unique_lock<Mutex> directly.
    std::condition_variable_any work_cv_;
    std::condition_variable_any idle_cv_;
    std::size_t in_flight_ MCSM_GUARDED_BY(mutex_) = 0;
    bool stopping_ MCSM_GUARDED_BY(mutex_) = false;
};

// Worker-thread count: std::thread::hardware_concurrency(), overridden by
// the MCSM_THREADS environment variable when set. Always >= 1.
std::size_t hardware_threads();

// Resolves a user-facing thread-count knob: 0 means hardware_threads().
std::size_t resolve_threads(std::size_t requested);

// Runs fn(i) for every i in [0, n), fanned over the shared pool. Work is
// claimed dynamically (atomic counter) so uneven items balance. Runs inline
// when n <= 1, threads resolves to 1, or the caller is already a pool
// worker. The first exception thrown by fn is rethrown on the caller.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

// Runs worker(w) for w in [0, k) concurrently - one call per pool slot -
// for callers that keep per-worker state (a fixture, a workspace) and pull
// work items off their own atomic cursor. Same inline/exception rules as
// parallel_for.
void parallel_workers(std::size_t k,
                      const std::function<void(std::size_t)>& worker);

}  // namespace mcsm

#endif  // MCSM_COMMON_PARALLEL_H
