#include "common/simd.h"

#include <cstdlib>
#include <cstring>

namespace mcsm::simd {

const Caps& cpu_caps() {
    static const Caps caps = [] {
        Caps c;
#if defined(MCSM_SIMD_ENABLED) && (defined(__x86_64__) || defined(_M_X64))
        c.avx2_fma = __builtin_cpu_supports("avx2") != 0 &&
                     __builtin_cpu_supports("fma") != 0;
        c.avx512 = __builtin_cpu_supports("avx512f") != 0 &&
                   __builtin_cpu_supports("avx512dq") != 0 &&
                   __builtin_cpu_supports("avx512vl") != 0;
#endif
        return c;
    }();
    return caps;
}

bool width_compiled(int w) {
    switch (w) {
        case 1:
            return true;
#ifdef MCSM_SIMD_AVX2
        case 4:
            return true;
#endif
#ifdef MCSM_SIMD_AVX512
        case 8:
            return true;
#endif
        default:
            return false;
    }
}

namespace {

bool env_truthy(const char* v) {
    return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

// Widest width <= `cap` that is both compiled in and CPU-supported.
int widest_available(const Caps& caps, int cap) {
    if (cap >= 8 && caps.avx512 && width_compiled(8)) return 8;
    if (cap >= 4 && caps.avx2_fma && width_compiled(4)) return 4;
    return 1;
}

}  // namespace

int pick_width(const Caps& caps, const char* no_simd_env,
               const char* width_env) {
    if (!compiled_in()) return 1;
    if (env_truthy(no_simd_env)) return 1;
    int cap = 8;
    if (width_env != nullptr && width_env[0] != '\0') {
        const int w = std::atoi(width_env);
        // Malformed or out-of-range requests fall back to scalar rather
        // than silently picking a vector width the operator didn't ask for.
        cap = (w == 1 || w == 4 || w == 8) ? w : 1;
    }
    return widest_available(caps, cap);
}

int default_width() {
    static const int width =
        pick_width(cpu_caps(), std::getenv("MCSM_NO_SIMD"),
                   std::getenv("MCSM_SIMD_WIDTH"));
    return width;
}

}  // namespace mcsm::simd
