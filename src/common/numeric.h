// Small numerically-safe scalar helpers used by device models and tables.
#ifndef MCSM_COMMON_NUMERIC_H
#define MCSM_COMMON_NUMERIC_H

#include <cmath>
#include <cstddef>
#include <vector>

namespace mcsm {

// softplus(x) = ln(1 + e^x), evaluated without overflow for large |x|.
double softplus(double x);

// d/dx softplus(x) = logistic(x) = 1 / (1 + e^-x), overflow-safe.
double logistic(double x);

// Softplus and logistic evaluated together. The EKV channel model needs
// both at the same argument (F(v) and dF/dv share one exponential), so the
// pair is the natural kernel primitive.
struct SpSig {
    double sp;   // softplus(x)
    double sig;  // logistic(x)
};

// Reference pairing of softplus()/logistic() above (libm exp/log1p).
inline SpSig softplus_logistic_ref(double x) {
    return {softplus(x), logistic(x)};
}

// Fast path for the batched EKV kernel. Both outputs reduce to one
// exponential z = e^-|x|: softplus = max(x,0) + log1p(z), logistic =
// 1/(1+z) or z/(1+z). z comes from a 32-slot table-reduced exponential
// (degree-4 core polynomial) and log1p(z) from a 64-slot mantissa-reduced
// log (degree-6 core), switching to a short alternating series below
// z = 2^-12 where the mantissa reduction would cancel. Worst relative
// error vs the reference is ~2e-12 on both outputs over the full double
// range (asserted in test_ekv_batch). Compiled to the reference when
// MCSM_NO_FAST_EKV is defined (the CI portability job builds both
// flavors).
SpSig softplus_logistic_fast(double x);

// True when softplus_logistic_fast is the distinct piecewise approximation
// (i.e. the library was built without MCSM_NO_FAST_EKV).
constexpr bool fast_ekv_enabled() {
#ifdef MCSM_NO_FAST_EKV
    return false;
#else
    return true;
#endif
}

// Smooth absolute value: sqrt(x^2 + eps^2) - eps, so smooth_abs(0) == 0.
double smooth_abs(double x, double eps);

// d/dx smooth_abs(x, eps).
double smooth_abs_deriv(double x, double eps);

// Clamp x into [lo, hi].
double clamp(double x, double lo, double hi);

// Linear interpolation between (x0,y0) and (x1,y1) evaluated at x.
// Requires x1 != x0.
double lerp(double x0, double y0, double x1, double y1, double x);

// True when |a - b| <= atol + rtol * max(|a|, |b|).
bool nearly_equal(double a, double b, double rtol = 1e-9, double atol = 1e-12);

// Returns a vector of n values spaced uniformly over [lo, hi] (n >= 2).
std::vector<double> linspace(double lo, double hi, std::size_t n);

// Index i such that xs[i] <= x < xs[i+1], clamped to [0, xs.size()-2].
// xs must be strictly increasing with at least two entries.
std::size_t bracket(const std::vector<double>& xs, double x);

}  // namespace mcsm

#endif  // MCSM_COMMON_NUMERIC_H
