// Heap-allocation instrumentation hook for the solver hot-path guarantees.
//
// The library only declares the counter; it stays at zero unless a binary
// (test_solver_core, bench_solver_core) replaces the global operator
// new/delete and bumps it. That keeps the accounting out of production
// builds while letting tests assert "zero allocations per Newton assembly
// after prepare()" on the exact code that ships.
#ifndef MCSM_COMMON_ALLOC_COUNTER_H
#define MCSM_COMMON_ALLOC_COUNTER_H

#include <atomic>
#include <cstddef>

namespace mcsm {

struct AllocCounter {
    // Total operator-new calls observed by an instrumented binary.
    static std::atomic<std::size_t> news;

    static std::size_t count() { return news.load(std::memory_order_relaxed); }
    static void bump() { news.fetch_add(1, std::memory_order_relaxed); }
};

}  // namespace mcsm

#endif  // MCSM_COMMON_ALLOC_COUNTER_H
