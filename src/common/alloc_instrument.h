// Global operator new/delete replacement that bumps AllocCounter — the
// instrumentation side of common/alloc_counter.h. Include this from exactly
// ONE translation unit of a binary that wants heap accounting
// (test_solver_core, bench_solver_core); never from library code.
#ifndef MCSM_COMMON_ALLOC_INSTRUMENT_H
#define MCSM_COMMON_ALLOC_INSTRUMENT_H

#include <cstdlib>
#include <new>

#include "common/alloc_counter.h"

// GCC pairs the replaced malloc-backed operators against its builtin
// new/delete knowledge and emits spurious mismatch warnings at inlined
// call sites; the replacement set below is complete and self-consistent.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
    mcsm::AllocCounter::bump();
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
    mcsm::AllocCounter::bump();
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t align) {
    mcsm::AllocCounter::bump();
    // aligned_alloc requires size to be a multiple of the alignment.
    const auto a = static_cast<std::size_t>(align);
    const std::size_t rounded = (size + a - 1) / a * a;
    if (void* p = std::aligned_alloc(a, rounded)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
    return operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { operator delete(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept {
    operator delete[](p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}

#endif  // MCSM_COMMON_ALLOC_INSTRUMENT_H
