#include "common/numeric.h"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "common/error.h"
#include "common/numeric_tables.h"

namespace mcsm {

double softplus(double x) {
    // For large x, ln(1+e^x) = x + ln(1+e^-x) ~= x; switch at 30 where the
    // correction is below double precision relative to x.
    if (x > 30.0) return x;
    if (x < -30.0) return std::exp(x);
    return std::log1p(std::exp(x));
}

double logistic(double x) {
    if (x >= 0.0) {
        const double e = std::exp(-x);
        return 1.0 / (1.0 + e);
    }
    const double e = std::exp(x);
    return e / (1.0 + e);
}

#ifdef MCSM_NO_FAST_EKV

SpSig softplus_logistic_fast(double x) { return softplus_logistic_ref(x); }

#else

namespace {

// Both softplus and logistic reduce to one exponential of -|x|:
//     z = e^-|x|,  softplus = max(x, 0) + log1p(z),  logistic = 1/(1+z)
//     (x >= 0) or z/(1+z) (x < 0).
// The kernel below evaluates z with a 32-slot table-reduced exponential
// (degree-4 core polynomial) and log1p(z) with a 64-slot mantissa-reduced
// log (degree-6 core), plus a short alternating series when z drops below
// 2^-12 (where the mantissa reduction would cancel). Worst relative error
// against the libm reference is ~2e-12 on both outputs over the full
// double range — asserted in test_ekv_batch.
//
// The reduction tables are compile-time constants (common/numeric_tables.h)
// shared with the SIMD lane kernel, so neither path carries a first-call
// init branch or a static-init ordering hazard.
using numeric_tables::kExp2Neg32;
using numeric_tables::kInvM0_64;
using numeric_tables::kLogM0_64;

// e^-u for u in [0, 708]: u = (32k + j) * ln2/32 - r with |r| <= ln2/64,
// so e^-u = e^r * 2^-k * 2^(-j/32).
inline double exp_neg(double u) {
    constexpr double kInvStep = numeric_tables::kExpInvStep32;
    constexpr double kStepHi = numeric_tables::kExpStep32Hi;
    constexpr double kStepLo = numeric_tables::kExpStep32Lo;
    const double nd = std::floor(u * kInvStep + 0.5);
    const double r = (nd * kStepHi - u) + nd * kStepLo;
    const auto n = static_cast<std::int64_t>(nd);
    const auto j = static_cast<std::uint64_t>(n) & 31u;
    const auto k = n >> 5;
    double p = 1.0 / 24.0;
    p = p * r + 1.0 / 6.0;
    p = p * r + 0.5;
    p = p * r + 1.0;
    p = p * r + 1.0;
    const double scale = std::bit_cast<double>(
        static_cast<std::uint64_t>(1023 - k) << 52);
    return p * (kExp2Neg32[j] * scale);
}

// log(y) for y in (1, 2]: y = 2^e * m0 * (1 + t) with m0 = 1 + j/64 picked
// from the top mantissa bits, t in [0, 1/64].
inline double log_y(double y) {
    constexpr double kLn2 = numeric_tables::kLn2;
    const auto bits = std::bit_cast<std::uint64_t>(y);
    const auto e = static_cast<int>(bits >> 52) - 1023;  // 0, or 1 at y = 2
    const double m = std::bit_cast<double>(
        (bits & 0x000FFFFFFFFFFFFFull) | 0x3FF0000000000000ull);
    const auto j = (bits >> 46) & 63u;
    const double t = m * kInvM0_64[j] - 1.0;
    double q = -1.0 / 7.0;
    q = q * t + 1.0 / 6.0;
    q = q * t - 1.0 / 5.0;
    q = q * t + 1.0 / 4.0;
    q = q * t - 1.0 / 3.0;
    q = q * t + 0.5;
    const double l1pt = t - t * t * q;
    return static_cast<double>(e) * kLn2 + kLogM0_64[j] + l1pt;
}

}  // namespace

SpSig softplus_logistic_fast(double x) {
    if (std::isnan(x)) return {x, x};  // the int cast in exp_neg would be UB
    const double u = std::min(std::fabs(x), 708.0);
    const double z = exp_neg(u);
    const double inv = 1.0 / (1.0 + z);
    // Below 2^-12 the 1+z mantissa reduction cancels; the alternating
    // series (truncation z^5/5 < 2e-19) takes over.
    const double l1p =
        z < 0x1p-12 ? z * (1.0 - z * (0.5 - z * (1.0 / 3.0 - z * 0.25)))
                    : log_y(1.0 + z);
    return {std::max(x, 0.0) + l1p, x >= 0.0 ? inv : z * inv};
}

#endif  // MCSM_NO_FAST_EKV

double smooth_abs(double x, double eps) {
    return std::sqrt(x * x + eps * eps) - eps;
}

double smooth_abs_deriv(double x, double eps) {
    return x / std::sqrt(x * x + eps * eps);
}

double clamp(double x, double lo, double hi) {
    return std::min(std::max(x, lo), hi);
}

double lerp(double x0, double y0, double x1, double y1, double x) {
    return y0 + (y1 - y0) * ((x - x0) / (x1 - x0));
}

bool nearly_equal(double a, double b, double rtol, double atol) {
    return std::fabs(a - b) <= atol + rtol * std::max(std::fabs(a), std::fabs(b));
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
    require(n >= 2, "linspace requires n >= 2");
    std::vector<double> out(n);
    const double step = (hi - lo) / static_cast<double>(n - 1);
    for (std::size_t i = 0; i < n; ++i) out[i] = lo + step * static_cast<double>(i);
    out.back() = hi;
    return out;
}

std::size_t bracket(const std::vector<double>& xs, double x) {
    require(xs.size() >= 2, "bracket requires at least two knots");
    const auto it = std::upper_bound(xs.begin(), xs.end(), x);
    if (it == xs.begin()) return 0;
    std::size_t i = static_cast<std::size_t>(it - xs.begin()) - 1;
    return std::min(i, xs.size() - 2);
}

}  // namespace mcsm
