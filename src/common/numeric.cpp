#include "common/numeric.h"

#include <algorithm>

#include "common/error.h"

namespace mcsm {

double softplus(double x) {
    // For large x, ln(1+e^x) = x + ln(1+e^-x) ~= x; switch at 30 where the
    // correction is below double precision relative to x.
    if (x > 30.0) return x;
    if (x < -30.0) return std::exp(x);
    return std::log1p(std::exp(x));
}

double logistic(double x) {
    if (x >= 0.0) {
        const double e = std::exp(-x);
        return 1.0 / (1.0 + e);
    }
    const double e = std::exp(x);
    return e / (1.0 + e);
}

double smooth_abs(double x, double eps) {
    return std::sqrt(x * x + eps * eps) - eps;
}

double smooth_abs_deriv(double x, double eps) {
    return x / std::sqrt(x * x + eps * eps);
}

double clamp(double x, double lo, double hi) {
    return std::min(std::max(x, lo), hi);
}

double lerp(double x0, double y0, double x1, double y1, double x) {
    return y0 + (y1 - y0) * ((x - x0) / (x1 - x0));
}

bool nearly_equal(double a, double b, double rtol, double atol) {
    return std::fabs(a - b) <= atol + rtol * std::max(std::fabs(a), std::fabs(b));
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
    require(n >= 2, "linspace requires n >= 2");
    std::vector<double> out(n);
    const double step = (hi - lo) / static_cast<double>(n - 1);
    for (std::size_t i = 0; i < n; ++i) out[i] = lo + step * static_cast<double>(i);
    out.back() = hi;
    return out;
}

std::size_t bracket(const std::vector<double>& xs, double x) {
    require(xs.size() >= 2, "bracket requires at least two knots");
    const auto it = std::upper_bound(xs.begin(), xs.end(), x);
    if (it == xs.begin()) return 0;
    std::size_t i = static_cast<std::size_t>(it - xs.begin()) - 1;
    return std::min(i, xs.size() - 2);
}

}  // namespace mcsm
