// Error types shared across the MCSM libraries.
#ifndef MCSM_COMMON_ERROR_H
#define MCSM_COMMON_ERROR_H

#include <stdexcept>
#include <string>

namespace mcsm {

// Thrown when a numerical procedure fails to produce a usable result
// (singular matrix, Newton-Raphson non-convergence, ...).
class NumericalError : public std::runtime_error {
public:
    explicit NumericalError(const std::string& what_arg)
        : std::runtime_error(what_arg) {}
};

// Thrown when a netlist / model / table is constructed or used
// inconsistently (bad node index, mismatched axes, ...).
class ModelError : public std::logic_error {
public:
    explicit ModelError(const std::string& what_arg)
        : std::logic_error(what_arg) {}
};

// Precondition check that survives NDEBUG builds; use for API misuse that
// must never be silently ignored.
inline void require(bool condition, const char* message) {
    if (!condition) throw ModelError(message);
}

inline void require(bool condition, const std::string& message) {
    if (!condition) throw ModelError(message);
}

}  // namespace mcsm

#endif  // MCSM_COMMON_ERROR_H
