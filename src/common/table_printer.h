// Minimal aligned-column / CSV table printer for bench harness output.
#ifndef MCSM_COMMON_TABLE_PRINTER_H
#define MCSM_COMMON_TABLE_PRINTER_H

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace mcsm {

// Collects rows of string cells and prints them either as aligned columns
// (human-readable) or as CSV (machine-readable). Bench harnesses use this to
// emit the paper's figure series.
class TablePrinter {
public:
    explicit TablePrinter(std::vector<std::string> header);

    void add_row(std::vector<std::string> cells);

    // Formats a double with the given precision (default engineering-style).
    static std::string num(double v, int precision = 6);

    void print_aligned(std::ostream& os) const;
    void print_csv(std::ostream& os) const;

    std::size_t row_count() const { return rows_.size(); }

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace mcsm

#endif  // MCSM_COMMON_TABLE_PRINTER_H
