// Compressed-sparse-row matrix over a fixed sparsity pattern. The pattern is
// built once (from the MNA device incidence) and the values are rewritten in
// place on every Newton assembly, so the hot path never allocates.
#ifndef MCSM_COMMON_SPARSE_MATRIX_H
#define MCSM_COMMON_SPARSE_MATRIX_H

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace mcsm {

class SparseMatrix {
public:
    SparseMatrix() = default;

    // Builds an n x n pattern from (row, col) coordinates. Duplicates are
    // merged; every diagonal slot is added so LU pivots always have storage.
    void build(std::size_t n, std::vector<std::pair<int, int>> entries);

    std::size_t size() const { return n_; }
    std::size_t nnz() const { return cols_.size(); }
    bool empty() const { return n_ == 0; }

    // Zeroes every stored value without touching the pattern.
    void set_zero();

    // Accumulates v into slot (r, c). Returns false when (r, c) is not part
    // of the pattern (the caller decides whether that is an error).
    // Stamping hot path: inline, O(1) through the slot map.
    bool add(std::size_t r, std::size_t c, double v) {
        const int slot = slot_of(r, c);
        if (slot < 0) return false;
        vals_[static_cast<std::size_t>(slot)] += v;
        return true;
    }

    // Value at (r, c); zero for entries outside the pattern.
    double at(std::size_t r, std::size_t c) const;

    // Row access for factorization / iteration.
    std::span<const int> row_cols(std::size_t r) const {
        return {cols_.data() + row_ptr_[r],
                static_cast<std::size_t>(row_ptr_[r + 1] - row_ptr_[r])};
    }
    std::span<const double> row_values(std::size_t r) const {
        return {vals_.data() + row_ptr_[r],
                static_cast<std::size_t>(row_ptr_[r + 1] - row_ptr_[r])};
    }
    std::span<double> row_values(std::size_t r) {
        return {vals_.data() + row_ptr_[r],
                static_cast<std::size_t>(row_ptr_[r + 1] - row_ptr_[r])};
    }

    // max |a_ij| over the stored entries; zero for an empty matrix.
    double max_abs() const;

private:
    // Slot index of (r, c) or -1. O(1) through the dense slot map for the
    // system sizes this repo solves; binary search beyond the map limit.
    int slot_of(std::size_t r, std::size_t c) const {
        if (!slot_map_.empty()) return slot_map_[r * n_ + c];
        return slot_of_search(r, c);
    }
    int slot_of_search(std::size_t r, std::size_t c) const;

    std::size_t n_ = 0;
    std::vector<int> row_ptr_;  // n_ + 1 offsets into cols_/vals_
    std::vector<int> cols_;     // sorted within each row
    std::vector<double> vals_;
    // Dense (r, c) -> slot map (-1: absent); built when n_^2 stays small
    // enough (stamping is on the Newton hot path, lookups must be O(1)).
    std::vector<int> slot_map_;
};

}  // namespace mcsm

#endif  // MCSM_COMMON_SPARSE_MATRIX_H
