// Compressed-sparse-row matrix over a fixed sparsity pattern. The pattern is
// built once (from the MNA device incidence) and the values are rewritten in
// place on every Newton assembly, so the hot path never allocates.
#ifndef MCSM_COMMON_SPARSE_MATRIX_H
#define MCSM_COMMON_SPARSE_MATRIX_H

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace mcsm {

class SparseMatrix {
public:
    SparseMatrix() = default;

    // Builds an n x n pattern from (row, col) coordinates. Duplicates are
    // merged; every diagonal slot is added so LU pivots always have storage.
    void build(std::size_t n, std::vector<std::pair<int, int>> entries);

    std::size_t size() const { return n_; }
    std::size_t nnz() const { return cols_.size(); }
    bool empty() const { return n_ == 0; }

    // Zeroes every stored value without touching the pattern.
    void set_zero();

    // Accumulates v into slot (r, c). Returns false when (r, c) is not part
    // of the pattern (the caller decides whether that is an error).
    // Stamping hot path: inline, O(1) through the slot map.
    bool add(std::size_t r, std::size_t c, double v) {
        const int slot = slot_of(r, c);
        if (slot < 0) return false;
        vals_[static_cast<std::size_t>(slot)] += v;
        return true;
    }

    // Value at (r, c); zero for entries outside the pattern.
    double at(std::size_t r, std::size_t c) const;

    // Slot index of (r, c) within values(), -1 outside the pattern. Device
    // batches resolve their stamp destinations once per topology and then
    // scatter by slot, skipping the per-write map probe.
    int slot_index(std::size_t r, std::size_t c) const { return slot_of(r, c); }

    // Flat value storage, indexed by slot (row-major over the CSR rows).
    std::span<double> values() { return vals_; }
    std::span<const double> values() const { return vals_; }

    // y = A x over the stored pattern (sizes n). Used for residual
    // computation in the block DC solver; allocation-free.
    void multiply(std::span<const double> x, std::span<double> y) const;

    // Row access for factorization / iteration.
    std::span<const int> row_cols(std::size_t r) const {
        return {cols_.data() + row_ptr_[r],
                static_cast<std::size_t>(row_ptr_[r + 1] - row_ptr_[r])};
    }
    std::span<const double> row_values(std::size_t r) const {
        return {vals_.data() + row_ptr_[r],
                static_cast<std::size_t>(row_ptr_[r + 1] - row_ptr_[r])};
    }
    std::span<double> row_values(std::size_t r) {
        return {vals_.data() + row_ptr_[r],
                static_cast<std::size_t>(row_ptr_[r + 1] - row_ptr_[r])};
    }

    // max |a_ij| over the stored entries; zero for an empty matrix.
    double max_abs() const;

private:
    // Slot index of (r, c) or -1. O(1) either way: a dense (r, c) -> slot
    // map while n_^2 stays small, a per-row open-addressed hash beyond it,
    // so stamping stays constant-time for flat netlists in the thousands of
    // nodes (stamping is on the Newton hot path).
    int slot_of(std::size_t r, std::size_t c) const {
        if (!slot_map_.empty()) return slot_map_[r * n_ + c];
        return slot_of_hashed(r, c);
    }

    // Per-row hash probe: each row owns a power-of-two region of
    // hash_key_/hash_slot_ at load factor <= 0.5, so linear probing
    // terminates in O(1) expected steps on the fixed pattern.
    int slot_of_hashed(std::size_t r, std::size_t c) const {
        const std::size_t base = hash_ptr_[r];
        const std::size_t mask = hash_ptr_[r + 1] - base - 1;
        std::size_t h = hash_col(c) & mask;
        for (;;) {
            const int key = hash_key_[base + h];
            if (key == static_cast<int>(c)) return hash_slot_[base + h];
            if (key < 0) return -1;
            h = (h + 1) & mask;
        }
    }

    static std::size_t hash_col(std::size_t c) {
        // Fibonacci multiplicative hash; spreads consecutive column ids.
        return static_cast<std::size_t>(
            (static_cast<std::uint64_t>(c) * 0x9E3779B97F4A7C15ull) >> 32);
    }

    std::size_t n_ = 0;
    std::vector<int> row_ptr_;  // n_ + 1 offsets into cols_/vals_
    std::vector<int> cols_;     // sorted within each row
    std::vector<double> vals_;
    // Dense (r, c) -> slot map (-1: absent); built when n_^2 stays small
    // enough. Larger patterns use the row-hashed map below instead.
    std::vector<int> slot_map_;
    // Row-hashed col -> slot map (hash_key_[i] = col or -1 when empty).
    std::vector<std::size_t> hash_ptr_;  // n_ + 1 offsets, pow2-sized rows
    std::vector<int> hash_key_;
    std::vector<int> hash_slot_;
};

}  // namespace mcsm

#endif  // MCSM_COMMON_SPARSE_MATRIX_H
