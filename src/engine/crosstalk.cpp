#include "engine/crosstalk.h"

#include "cells/fanout.h"
#include "wave/edges.h"

namespace mcsm::engine {

using spice::Circuit;
using spice::SourceSpec;

GoldenCrosstalk::GoldenCrosstalk(const cells::CellLibrary& lib,
                                 const CrosstalkConfig& cfg, double t_inject) {
    const double vdd = lib.tech().vdd;
    const cells::CellType& driver = lib.get(cfg.driver_cell);
    const cells::CellType& nor2 = lib.get("NOR2");

    const int vdd_node = circuit_.node("vdd");
    circuit_.add_vsource("VDD", vdd_node, Circuit::kGround,
                         SourceSpec::dc(vdd));

    victim_net_ = circuit_.node("vic");
    aggressor_net_ = circuit_.node("agg");
    nor_out_ = circuit_.node("nor_out");

    // Victim driver: input falls at t_victim, so the victim net rises and
    // NOR2 input A sees a rising edge.
    victim_input_ =
        wave::piecewise_edges(vdd, {{cfg.t_victim, cfg.input_ramp, 0.0}});
    const int vin = circuit_.node("vic_in");
    circuit_.add_vsource("VVIC", vin, Circuit::kGround,
                         SourceSpec::pwl(victim_input_));
    driver.instantiate(circuit_, "DRV_V",
                       {{cells::kVdd, vdd_node},
                        {cells::kGnd, Circuit::kGround},
                        {"A", vin},
                        {cells::kOut, victim_net_}});

    // Aggressor driver switching at the injection time.
    const wave::Waveform agg_in =
        cfg.aggressor_input_rising
            ? wave::piecewise_edges(0.0, {{t_inject, cfg.input_ramp, vdd}})
            : wave::piecewise_edges(vdd, {{t_inject, cfg.input_ramp, 0.0}});
    const int ain = circuit_.node("agg_in");
    circuit_.add_vsource("VAGG", ain, Circuit::kGround,
                         SourceSpec::pwl(agg_in));
    driver.instantiate(circuit_, "DRV_A",
                       {{cells::kVdd, vdd_node},
                        {cells::kGnd, Circuit::kGround},
                        {"A", ain},
                        {cells::kOut, aggressor_net_}});

    // Interconnect parasitics.
    circuit_.add_capacitor("CC", victim_net_, aggressor_net_,
                           cfg.coupling_cap);
    if (cfg.victim_gnd_cap > 0.0)
        circuit_.add_capacitor("CGV", victim_net_, Circuit::kGround,
                               cfg.victim_gnd_cap);
    if (cfg.aggressor_gnd_cap > 0.0)
        circuit_.add_capacitor("CGA", aggressor_net_, Circuit::kGround,
                               cfg.aggressor_gnd_cap);

    // Victim receiver: NOR2 with A on the victim net, B non-controlling.
    nor2.instantiate(circuit_, "XNOR",
                     {{cells::kVdd, vdd_node},
                      {cells::kGnd, Circuit::kGround},
                      {"A", victim_net_},
                      {"B", Circuit::kGround},
                      {cells::kOut, nor_out_}});

    if (cfg.fanout_count > 0)
        cells::attach_fanout(circuit_, lib, "INV_X1", nor_out_, vdd_node,
                             cfg.fanout_count, "FO");
}

spice::TranResult GoldenCrosstalk::run(const spice::TranOptions& options) {
    return spice::solve_tran(circuit_, options);
}

}  // namespace mcsm::engine
