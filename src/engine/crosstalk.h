// The paper's Fig. 12 noise experiment: a victim line driving NOR2 input A
// is capacitively coupled (50 fF) to an aggressor line; both lines are
// driven by minimum-sized inverters and the NOR2 carries an FO2 load. The
// aggressor switching (injection) time is swept and the victim-path delay is
// compared between the golden transistor-level run and the CSM model run.
//
// This header provides the golden side; the model twin lives in
// core/model_scenarios.h so the engine library does not depend on the model
// library.
#ifndef MCSM_ENGINE_CROSSTALK_H
#define MCSM_ENGINE_CROSSTALK_H

#include <string>

#include "cells/library.h"
#include "spice/tran_solver.h"
#include "wave/waveform.h"

namespace mcsm::engine {

struct CrosstalkConfig {
    double coupling_cap = 50e-15;     // victim-aggressor coupling [F]
    double victim_gnd_cap = 4e-15;    // victim wire ground capacitance [F]
    double aggressor_gnd_cap = 4e-15; // aggressor wire ground capacitance [F]
    double t_victim = 2.2e-9;         // victim driver input arrival [s]
    double input_ramp = 100e-12;      // 0-100% ramp of driver inputs [s]
    int fanout_count = 2;             // NOR2 output load (FO2 in the paper)
    bool aggressor_input_rising = true;
    std::string driver_cell = "INV_X1";
};

class GoldenCrosstalk {
public:
    GoldenCrosstalk(const cells::CellLibrary& lib, const CrosstalkConfig& cfg,
                    double t_inject);

    spice::TranResult run(const spice::TranOptions& options);

    int victim_net() const { return victim_net_; }
    int aggressor_net() const { return aggressor_net_; }
    int nor_out() const { return nor_out_; }
    // The ideal waveform at the victim driver's input (delay reference).
    const wave::Waveform& victim_input() const { return victim_input_; }

private:
    spice::Circuit circuit_;
    wave::Waveform victim_input_;
    int victim_net_ = -1;
    int aggressor_net_ = -1;
    int nor_out_ = -1;
};

}  // namespace mcsm::engine

#endif  // MCSM_ENGINE_CROSSTALK_H
