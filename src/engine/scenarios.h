// Scenario builders shared by tests, benches and examples:
//  * GoldenCell - a transistor-level single-cell testbench (the "HSPICE"
//    reference run),
//  * the paper's Section 2.2 input-history stimuli for the NOR2 stack-effect
//    experiments (Figs. 3, 4, 5, 9),
//  * glitch stimuli (Fig. 10) and simultaneous-switching stimuli (Fig. 11).
#ifndef MCSM_ENGINE_SCENARIOS_H
#define MCSM_ENGINE_SCENARIOS_H

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "cells/library.h"
#include "spice/tran_solver.h"
#include "wave/waveform.h"

namespace mcsm::engine {

// Output load description for single-cell testbenches.
struct LoadSpec {
    double cap = 0.0;                  // linear capacitance [F]
    int fanout_count = 0;              // number of receiver-cell inputs
    std::string fanout_cell = "INV_X1";
    // Optional RC pi-network (near cap - series R - far cap), the standard
    // reduced interconnect load; active when pi_r > 0. CSMs are
    // load-independent, so the same characterized model must drive it.
    double pi_c1 = 0.0;
    double pi_r = 0.0;
    double pi_c2 = 0.0;
};

// Transistor-level single-cell testbench: VDD rail, the cell under test,
// ideal voltage sources driving every input pin, and the requested load.
class GoldenCell {
public:
    GoldenCell(const cells::CellLibrary& lib, const std::string& cell_name,
               const std::unordered_map<std::string, wave::Waveform>& inputs,
               const LoadSpec& load);

    spice::TranResult run(const spice::TranOptions& options);

    spice::Circuit& circuit() { return circuit_; }
    int out_node() const { return out_node_; }
    // Far-end node of the pi load (-1 when no pi load was requested).
    int far_node() const { return far_node_; }
    // Node id of a cell-internal formal node such as "N".
    int node_of(const std::string& formal) const;

private:
    spice::Circuit circuit_;
    cells::CellInstance instance_;
    int out_node_ = -1;
    int far_node_ = -1;
};

// The two input histories of paper Section 2.2 for a two-input cell:
//  kFast10:  '10' -> '11' (B rises at t_mid) -> '00' (both fall at t_final);
//            the NOR2 stack node starts the final transition near Vdd.
//  kSlow01:  '01' -> '11' (A rises at t_mid) -> '00' (both fall at t_final);
//            the stack node starts near the body-affected |Vt,p|.
enum class HistoryCase { kFast10, kSlow01 };

struct HistoryStimulus {
    wave::Waveform a;
    wave::Waveform b;
    double t_mid = 0.0;    // time of the intermediate edge
    double t_final = 0.0;  // time of the '11' -> '00' edge
    double ramp = 0.0;     // 0-100% ramp time of every edge
};

HistoryStimulus nor2_history(HistoryCase c, double vdd, double t_mid = 1.0e-9,
                             double t_final = 2.0e-9, double ramp = 80e-12);

// Simultaneous (or skewed) switching of both inputs: A and B fall from vdd
// to 0, B delayed by `skew` relative to A (Fig. 11 uses skew = 0).
struct MisStimulus {
    wave::Waveform a;
    wave::Waveform b;
    double t_edge = 0.0;
};

MisStimulus nor2_simultaneous_fall(double vdd, double t_edge = 2.0e-9,
                                   double ramp = 80e-12, double skew = 0.0);

// Glitch stimulus (Fig. 10): B rises and falls again after `width`, while A
// stays low, producing a partial-swing glitch at the NOR2 output.
struct GlitchStimulus {
    wave::Waveform a;
    wave::Waveform b;
    double t_edge = 0.0;
};

GlitchStimulus nor2_glitch(double vdd, double t_edge = 1.5e-9,
                           double width = 150e-12, double ramp = 80e-12);

// --- scenario enumeration ------------------------------------------------
// A batch entry for golden-transient sweeps (skew sweeps, load sweeps,
// noise grids, ...): one cell, its input waveforms, and the output load.
struct ScenarioSpec {
    std::string name;  // caller-chosen label, carried into the result
    std::string cell;
    std::unordered_map<std::string, wave::Waveform> inputs;
    LoadSpec load;
};

struct ScenarioResult {
    std::string name;
    spice::TranResult result;
    int out_node = -1;
    int far_node = -1;
};

// Runs every scenario's transistor-level transient, fanning the independent
// solves out over per-thread circuits/workspaces (threads = 0: all cores).
// Results are returned in spec order and are identical for any thread
// count. Throws the first scenario failure after the batch drains.
std::vector<ScenarioResult> run_golden_scenarios(
    const cells::CellLibrary& lib, const std::vector<ScenarioSpec>& specs,
    const spice::TranOptions& options, std::size_t threads = 0);

}  // namespace mcsm::engine

#endif  // MCSM_ENGINE_SCENARIOS_H
