// Distributed RC interconnect: an N-segment ladder between two circuit
// nodes, the standard wire model when a lumped pi is too coarse. Used by
// tests and benches to exercise the CSM's load-independence on genuinely
// distributed loads.
#ifndef MCSM_ENGINE_RC_LINE_H
#define MCSM_ENGINE_RC_LINE_H

#include <string>
#include <vector>

#include "spice/circuit.h"

namespace mcsm::engine {

struct RcLineSpec {
    double total_resistance = 1e3;   // [ohm]
    double total_capacitance = 10e-15;  // [F], distributed to ground
    int segments = 8;
};

// Builds the ladder from `from` to a newly created far-end node, returning
// the created node ids (the last entry is the far end). Each segment is an
// R followed by a C-to-ground at its output; half-caps terminate both ends
// so the total capacitance is exact.
std::vector<int> attach_rc_line(spice::Circuit& circuit, int from,
                                const RcLineSpec& spec,
                                const std::string& prefix);

// Elmore delay of the ladder when driven from `from` (useful reference for
// tests): sum over segments of R_i * C_downstream_i.
double rc_line_elmore_delay(const RcLineSpec& spec);

}  // namespace mcsm::engine

#endif  // MCSM_ENGINE_RC_LINE_H
