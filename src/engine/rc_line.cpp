#include "engine/rc_line.h"

#include "common/error.h"

namespace mcsm::engine {

std::vector<int> attach_rc_line(spice::Circuit& circuit, int from,
                                const RcLineSpec& spec,
                                const std::string& prefix) {
    require(spec.segments >= 1, "attach_rc_line: need at least one segment");
    require(spec.total_resistance > 0.0 && spec.total_capacitance >= 0.0,
            "attach_rc_line: bad R/C totals");

    const double r_seg =
        spec.total_resistance / static_cast<double>(spec.segments);
    const double c_seg =
        spec.total_capacitance / static_cast<double>(spec.segments);

    std::vector<int> nodes;
    int prev = from;
    // Half-cap at the driven end.
    if (c_seg > 0.0)
        circuit.add_capacitor(prefix + ".C0", from, spice::Circuit::kGround,
                              0.5 * c_seg);
    for (int k = 0; k < spec.segments; ++k) {
        const int node = circuit.node(prefix + ".n" + std::to_string(k + 1));
        circuit.add_resistor(prefix + ".R" + std::to_string(k + 1), prev,
                             node, r_seg);
        // Interior nodes carry a full segment cap; the far end a half cap.
        const double c = (k + 1 == spec.segments) ? 0.5 * c_seg : c_seg;
        if (c > 0.0)
            circuit.add_capacitor(prefix + ".C" + std::to_string(k + 1), node,
                                  spice::Circuit::kGround, c);
        nodes.push_back(node);
        prev = node;
    }
    return nodes;
}

double rc_line_elmore_delay(const RcLineSpec& spec) {
    const double r_seg =
        spec.total_resistance / static_cast<double>(spec.segments);
    const double c_seg =
        spec.total_capacitance / static_cast<double>(spec.segments);
    // Downstream capacitance seen by segment k (1-based): interior full caps
    // plus the far-end half cap.
    double delay = 0.0;
    for (int k = 1; k <= spec.segments; ++k) {
        const double downstream =
            c_seg * static_cast<double>(spec.segments - k) + 0.5 * c_seg;
        delay += r_seg * downstream;
    }
    return delay;
}

}  // namespace mcsm::engine
