#include "engine/scenarios.h"

#include <utility>

#include "cells/fanout.h"
#include "common/error.h"
#include "common/parallel.h"
#include "wave/edges.h"

namespace mcsm::engine {

using spice::Circuit;
using spice::SourceSpec;

GoldenCell::GoldenCell(
    const cells::CellLibrary& lib, const std::string& cell_name,
    const std::unordered_map<std::string, wave::Waveform>& inputs,
    const LoadSpec& load) {
    const cells::CellType& cell = lib.get(cell_name);
    const double vdd = lib.tech().vdd;

    const int vdd_node = circuit_.node("vdd");
    circuit_.add_vsource("VDD", vdd_node, Circuit::kGround,
                         SourceSpec::dc(vdd));

    std::unordered_map<std::string, int> conn;
    conn[cells::kVdd] = vdd_node;
    conn[cells::kGnd] = Circuit::kGround;
    out_node_ = circuit_.node("out");
    conn[cells::kOut] = out_node_;

    for (const cells::PinInfo& pin : cell.inputs()) {
        const int n = circuit_.node("in_" + pin.name);
        conn[pin.name] = n;
        const auto it = inputs.find(pin.name);
        if (it != inputs.end()) {
            circuit_.add_vsource("V" + pin.name, n, Circuit::kGround,
                                 SourceSpec::pwl(it->second));
        } else {
            // Unspecified pins are parked at their non-controlling level.
            circuit_.add_vsource("V" + pin.name, n, Circuit::kGround,
                                 SourceSpec::dc(pin.non_controlling));
        }
    }

    instance_ = cell.instantiate(circuit_, "DUT", conn);

    if (load.cap > 0.0)
        circuit_.add_capacitor("CLOAD", out_node_, Circuit::kGround, load.cap);
    if (load.pi_r > 0.0) {
        far_node_ = circuit_.node("far");
        if (load.pi_c1 > 0.0)
            circuit_.add_capacitor("CPI1", out_node_, Circuit::kGround,
                                   load.pi_c1);
        circuit_.add_resistor("RPI", out_node_, far_node_, load.pi_r);
        if (load.pi_c2 > 0.0)
            circuit_.add_capacitor("CPI2", far_node_, Circuit::kGround,
                                   load.pi_c2);
    }
    if (load.fanout_count > 0)
        cells::attach_fanout(circuit_, lib, load.fanout_cell,
                             far_node_ >= 0 ? far_node_ : out_node_, vdd_node,
                             load.fanout_count, "FO");
}

spice::TranResult GoldenCell::run(const spice::TranOptions& options) {
    return spice::solve_tran(circuit_, options);
}

int GoldenCell::node_of(const std::string& formal) const {
    return instance_.node(formal);
}

HistoryStimulus nor2_history(HistoryCase c, double vdd, double t_mid,
                             double t_final, double ramp) {
    require(t_final > t_mid, "nor2_history: t_final must follow t_mid");
    HistoryStimulus s;
    s.t_mid = t_mid;
    s.t_final = t_final;
    s.ramp = ramp;
    if (c == HistoryCase::kFast10) {
        // A: 1 -> 1 -> 0 (falls only at the final edge).
        s.a = wave::piecewise_edges(vdd, {{t_final, ramp, 0.0}});
        // B: 0 -> 1 (at t_mid) -> 0 (at t_final).
        s.b = wave::piecewise_edges(0.0,
                                    {{t_mid, ramp, vdd}, {t_final, ramp, 0.0}});
    } else {
        // A: 0 -> 1 (at t_mid) -> 0 (at t_final).
        s.a = wave::piecewise_edges(0.0,
                                    {{t_mid, ramp, vdd}, {t_final, ramp, 0.0}});
        // B: 1 -> 1 -> 0.
        s.b = wave::piecewise_edges(vdd, {{t_final, ramp, 0.0}});
    }
    return s;
}

MisStimulus nor2_simultaneous_fall(double vdd, double t_edge, double ramp,
                                   double skew) {
    MisStimulus s;
    s.t_edge = t_edge;
    s.a = wave::piecewise_edges(vdd, {{t_edge, ramp, 0.0}});
    s.b = wave::piecewise_edges(vdd, {{t_edge + skew, ramp, 0.0}});
    return s;
}

std::vector<ScenarioResult> run_golden_scenarios(
    const cells::CellLibrary& lib, const std::vector<ScenarioSpec>& specs,
    const spice::TranOptions& options, std::size_t threads) {
    std::vector<ScenarioResult> results(specs.size());
    // Each scenario builds a private circuit (own solver workspace), so the
    // fan-out shares only read-only library/technology state.
    parallel_for(
        specs.size(),
        [&](std::size_t i) {
            const ScenarioSpec& spec = specs[i];
            GoldenCell cell(lib, spec.cell, spec.inputs, spec.load);
            results[i].name = spec.name;
            results[i].result = cell.run(options);
            results[i].out_node = cell.out_node();
            results[i].far_node = cell.far_node();
        },
        threads);
    return results;
}

GlitchStimulus nor2_glitch(double vdd, double t_edge, double width,
                           double ramp) {
    GlitchStimulus s;
    s.t_edge = t_edge;
    // A falls at t_edge (the output starts to rise since B=0), but B rises
    // `width` later and cuts the rise short -> a partial-swing glitch that
    // settles back low.
    s.a = wave::piecewise_edges(vdd, {{t_edge, ramp, 0.0}});
    s.b = wave::piecewise_edges(0.0, {{t_edge + width, ramp, vdd}});
    return s;
}

}  // namespace mcsm::engine
