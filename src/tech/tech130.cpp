#include "tech/tech130.h"

#include <algorithm>
#include <cmath>
#include <random>

namespace mcsm::tech {

Technology make_tech130() {
    Technology t;

    spice::MosParams& n = t.nmos;
    n.type = spice::MosType::kNmos;
    n.vt0 = 0.33;
    n.n = 1.30;
    n.kp = 4.2e-4;
    n.lambda = 0.18;
    n.cox = 1.55e-2;
    n.cgso = 3.0e-10;
    n.cgdo = 3.0e-10;
    n.cgbo = 1.0e-10;
    n.cj = 2.6e-3;
    n.mj = 0.5;
    n.pb = 0.8;
    n.cjsw = 5.2e-10;
    n.mjsw = 0.33;
    n.ldiff = 0.42e-6;

    spice::MosParams& p = t.pmos;
    p = n;
    p.type = spice::MosType::kPmos;
    p.vt0 = 0.32;
    p.n = 1.35;
    p.kp = 1.8e-4;
    p.lambda = 0.22;

    return t;
}

Technology apply_corner(const Technology& nominal, const ProcessCorner& c) {
    Technology t = nominal;
    t.nmos.vt0 += c.nmos_dvt;
    t.pmos.vt0 += c.pmos_dvt;
    t.nmos.kp *= c.kp_scale;
    t.pmos.kp *= c.kp_scale;
    t.nmos.cox *= c.cox_scale;
    t.pmos.cox *= c.cox_scale;
    return t;
}

Technology apply_environment(const Technology& nominal, double vdd,
                             double temp_c) {
    Technology t = nominal;
    if (vdd > 0.0) t.vdd = vdd;
    t.temp_c = temp_c;
    const double t_k = 273.15 + temp_c;
    const double tnom_k = 273.15 + nominal.temp_c;
    const double ratio = t_k / tnom_k;
    const double dvt = -0.9e-3 * (temp_c - nominal.temp_c);
    const double mobility = std::pow(ratio, -1.5);
    for (spice::MosParams* m : {&t.nmos, &t.pmos}) {
        m->ut *= ratio;
        // vt0 is a positive magnitude for both polarities; clamp so an
        // extreme hot corner cannot drive it negative.
        m->vt0 = std::max(0.05, m->vt0 + dvt);
        m->kp *= mobility;
    }
    return t;
}

ProcessCorner sample_corner(unsigned seed) {
    std::mt19937 gen(seed);
    // sigma = 10 mV / 2.67% so the 3-sigma spread matches the documented
    // bounds; clamp at 3 sigma to keep corners physical.
    std::normal_distribution<double> vt(0.0, 0.010);
    std::normal_distribution<double> scale(1.0, 0.0267);
    auto clamp3 = [](double x, double mid, double sig) {
        return std::min(std::max(x, mid - 3.0 * sig), mid + 3.0 * sig);
    };
    ProcessCorner c;
    c.nmos_dvt = clamp3(vt(gen), 0.0, 0.010);
    c.pmos_dvt = clamp3(vt(gen), 0.0, 0.010);
    c.kp_scale = clamp3(scale(gen), 1.0, 0.0267);
    c.cox_scale = clamp3(scale(gen), 1.0, 0.0267);
    return c;
}

}  // namespace mcsm::tech
