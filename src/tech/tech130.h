// Synthetic 130nm-class technology card (Vdd = 1.2 V), standing in for the
// proprietary 130nm library used by the paper. Parameters are tuned so that
// inverter FO4-class delays land in a plausible range for the node and the
// NOR2 stack-effect magnitudes match the paper's qualitative behaviour.
#ifndef MCSM_TECH_TECH130_H
#define MCSM_TECH_TECH130_H

#include "spice/mos_params.h"

namespace mcsm::tech {

struct Technology {
    spice::MosParams nmos;
    spice::MosParams pmos;
    double vdd = 1.2;        // supply voltage [V]
    double lmin = 0.13e-6;   // minimum channel length [m]
    double wn_unit = 0.52e-6;  // unit NMOS width [m]
    double wp_unit = 1.04e-6;  // unit PMOS width [m]
    // Characterization sweep margin (the paper's unspecified "safety margin
    // delta-v"). Must cover the worst over/undershoot the models see;
    // 50 fF-class coupling noise can push a driven net several hundred mV
    // past the rails, so the margin is generous.
    double dv_margin = 0.3;
    // Junction temperature the card is evaluated at [degC]; see
    // apply_environment for the derating applied away from nominal.
    double temp_c = 25.0;
};

// The default 130nm-class card used across tests, benches and examples.
Technology make_tech130();

// Process-corner parameters as fractions of nominal: vt shifts are absolute
// volts, the others multiply the nominal value. Used by the statistical
// extension (ref. [5] applies current-based models to statistical delay
// analysis).
struct ProcessCorner {
    double nmos_dvt = 0.0;   // NMOS threshold shift [V]
    double pmos_dvt = 0.0;   // PMOS threshold shift [V]
    double kp_scale = 1.0;   // mobility/current-factor multiplier
    double cox_scale = 1.0;  // oxide-capacitance multiplier
};

// Applies a corner to a nominal card.
Technology apply_corner(const Technology& nominal, const ProcessCorner& c);

// Environmental (operating-point) corner: supply voltage and junction
// temperature. `vdd <= 0` keeps the nominal supply. Temperature enters the
// EKV card through the thermal voltage (kT/q), a mobility derating
// (kp ~ (T/Tnom)^-1.5) and a threshold shift (~ -0.9 mV/K) -- first-order
// derating, representative rather than foundry-calibrated.
Technology apply_environment(const Technology& nominal, double vdd,
                             double temp_c);

// Deterministic pseudo-random corner (seeded), with 3-sigma bounds of
// +/-30 mV on thresholds and +/-8% on kp/cox - representative 130nm global
// variation.
ProcessCorner sample_corner(unsigned seed);

}  // namespace mcsm::tech

#endif  // MCSM_TECH_TECH130_H
