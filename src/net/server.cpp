#include "net/server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/error.h"
#include "net/query_text.h"
#include "obs/metrics.h"
#include "spice/ekv_lanes.h"

namespace mcsm::net {

namespace {

void set_nonblocking(int fd) {
    // All sockets run nonblocking: the loop must never sleep inside a
    // read/write, only in epoll_wait.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    require(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
            "NetServer: cannot set O_NONBLOCK");
}

}  // namespace

struct NetServer::Conn {
    int fd = -1;
    std::string in;   // unconsumed request bytes
    // Response bytes; [out_sent, out.size()) is still unsent. The offset
    // (instead of erase-from-front) keeps partial sends O(1); the buffer
    // resets once fully drained.
    std::string out;
    std::size_t out_sent = 0;
    std::uint64_t seq = 0;     // queries received (the response ids)
    std::uint64_t queued = 0;  // queries of this conn in pending_
    bool eof = false;          // peer half-closed; close once drained
    bool want_write = false;   // EPOLLOUT currently armed

    bool drained() const { return out_sent >= out.size(); }
};

NetServer::NetServer(serve::TimingService& service, NetServerOptions options)
    : service_(&service), options_(std::move(options)) {
    require(options_.batch_max >= 1, "NetServer: batch_max must be >= 1");
    require(options_.max_line >= 64, "NetServer: max_line must be >= 64");
    require(!options_.unix_path.empty() || options_.tcp_port >= 0,
            "NetServer: no listener configured (unix_path or tcp_port)");

    // Register the solver's dispatched lane width up front so the `stats`
    // snapshot reports it even when the serve tier never builds a solver
    // workspace (pure pack serving).
    obs::gauge("solver.simd.width").set(spice::ekv_lane_width());

    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    require(epoll_fd_ >= 0, "NetServer: epoll_create1 failed");
    wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    require(wake_fd_ >= 0, "NetServer: eventfd failed");
    // The epoll payload is always data.ptr: member addresses mark the
    // wake eventfd and the listeners, a Conn* marks a connection -- no
    // fd/ptr union ambiguity.
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = &wake_fd_;
    require(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0,
            "NetServer: epoll_ctl(wake) failed");

    const auto add_listener = [&](int fd, int* marker) {
        set_nonblocking(fd);
        require(::listen(fd, 64) == 0, "NetServer: listen failed");
        epoll_event lev{};
        lev.events = EPOLLIN;
        lev.data.ptr = marker;
        require(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &lev) == 0,
                "NetServer: epoll_ctl(listener) failed");
    };

    if (!options_.unix_path.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        require(options_.unix_path.size() < sizeof(addr.sun_path),
                "NetServer: unix socket path too long: " +
                    options_.unix_path);
        std::memcpy(addr.sun_path, options_.unix_path.c_str(),
                    options_.unix_path.size() + 1);
        unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        require(unix_fd_ >= 0, "NetServer: socket(AF_UNIX) failed");
        // A previous server that crashed leaves the socket file behind;
        // bind would fail with EADDRINUSE on the stale path.
        ::unlink(options_.unix_path.c_str());
        require(::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr),
                       sizeof addr) == 0,
                "NetServer: bind failed for " + options_.unix_path);
        add_listener(unix_fd_, &unix_fd_);
    }
    if (options_.tcp_port >= 0) {
        tcp_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        require(tcp_fd_ >= 0, "NetServer: socket(AF_INET) failed");
        const int one = 1;
        ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port =
            htons(static_cast<std::uint16_t>(options_.tcp_port));
        require(::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr),
                       sizeof addr) == 0,
                "NetServer: TCP bind failed on port " +
                    std::to_string(options_.tcp_port));
        socklen_t len = sizeof addr;
        require(::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&addr),
                              &len) == 0,
                "NetServer: getsockname failed");
        tcp_port_ = ntohs(addr.sin_port);
        add_listener(tcp_fd_, &tcp_fd_);
    }
}

NetServer::~NetServer() {
    for (const auto& conn : conns_)
        if (conn->fd >= 0) ::close(conn->fd);
    if (unix_fd_ >= 0) ::close(unix_fd_);
    if (tcp_fd_ >= 0) ::close(tcp_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (!options_.unix_path.empty())
        ::unlink(options_.unix_path.c_str());
}

void NetServer::stop() {
    stopping_.store(true, std::memory_order_release);
    // One counter write; async-signal-safe, so SIGTERM handlers may call
    // stop() directly.
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(wake_fd_, &one, sizeof one);
}

NetServer::Counters NetServer::counters() const {
    Counters c;
    c.accepted = accepted_.load(std::memory_order_relaxed);
    c.refused = refused_.load(std::memory_order_relaxed);
    c.served = served_.load(std::memory_order_relaxed);
    c.batches = batches_.load(std::memory_order_relaxed);
    c.rejected = rejected_.load(std::memory_order_relaxed);
    c.parse_errors = parse_errors_.load(std::memory_order_relaxed);
    return c;
}

void NetServer::update_epoll(const std::shared_ptr<Conn>& conn,
                             bool want_write) {
    if (conn->fd < 0 || conn->want_write == want_write) return;
    epoll_event ev{};
    ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
    ev.data.ptr = conn.get();
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) == 0)
        conn->want_write = want_write;
}

void NetServer::try_flush(const std::shared_ptr<Conn>& conn) {
    while (conn->fd >= 0 && !conn->drained()) {
        // MSG_NOSIGNAL: a vanished peer surfaces as EPIPE on this
        // connection instead of a process-wide SIGPIPE.
        const ssize_t n =
            ::send(conn->fd, conn->out.data() + conn->out_sent,
                   conn->out.size() - conn->out_sent, MSG_NOSIGNAL);
        if (n > 0) {
            conn->out_sent += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (n < 0 && errno == EINTR) continue;
        close_conn(conn);  // EPIPE/ECONNRESET/...: peer is gone
        return;
    }
    if (conn->drained()) {
        conn->out.clear();
        conn->out_sent = 0;
    }
    if (conn->fd < 0) return;
    update_epoll(conn, !conn->drained());
    // Half-closed peer: close once every response is on the wire and no
    // query of this connection is still waiting in the pending batch.
    if (conn->eof && conn->drained() && conn->queued == 0)
        close_conn(conn);
}

void NetServer::respond(const std::shared_ptr<Conn>& conn,
                        std::string_view line) {
    if (conn->fd < 0) return;  // disconnected while its batch ran
    conn->out += line;
    conn->out += '\n';
    try_flush(conn);
}

void NetServer::close_conn(const std::shared_ptr<Conn>& conn) {
    if (conn->fd < 0) return;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
    ::close(conn->fd);
    conn->fd = -1;
    for (auto it = conns_.begin(); it != conns_.end(); ++it) {
        if (it->get() == conn.get()) {
            conns_.erase(it);
            break;
        }
    }
    // Entries of this conn still in pending_ keep their shared_ptr; the
    // batch runs them and respond() drops the answers on the floor.
}

void NetServer::accept_ready(int listen_fd) {
    for (;;) {
        const int fd = ::accept4(listen_fd, nullptr, nullptr,
                                 SOCK_CLOEXEC | SOCK_NONBLOCK);
        if (fd < 0) {
            if (errno == EINTR) continue;
            return;  // EAGAIN or transient accept error: back to the loop
        }
        if (conns_.size() >= options_.max_conns) {
            refused_.fetch_add(1, std::memory_order_relaxed);
            const char msg[] = "err 0 busy: connection limit reached\n";
            [[maybe_unused]] const ssize_t n =
                ::send(fd, msg, sizeof msg - 1, MSG_NOSIGNAL);
            ::close(fd);
            continue;
        }
        if (listen_fd == tcp_fd_) {
            const int one = 1;
            // Responses are small and latency-bound; never Nagle them.
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        }
        auto conn = std::make_shared<Conn>();
        conn->fd = fd;
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.ptr = conn.get();
        if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
            ::close(fd);
            continue;
        }
        conns_.push_back(std::move(conn));
        accepted_.fetch_add(1, std::memory_order_relaxed);
        obs::counter("net.accepted").add();
    }
}

void NetServer::handle_line(const std::shared_ptr<Conn>& conn,
                            std::string_view line) {
    if (line.empty() || line == "ping") {
        if (line == "ping") respond(conn, "pong");
        return;
    }
    if (line == "flush") {
        run_pending_batch();
        return;
    }
    if (line == "stats") {
        const std::string json = obs::snapshot().to_json();
        // Length-prefixed: the JSON payload spans lines.
        respond(conn, "stats " + std::to_string(json.size()) + "\n" + json);
        return;
    }
    if (line == "reload") {
        if (!options_.pack) {
            respond(conn, "err 0 reload: no pack configured");
            return;
        }
        const bool swapped = options_.pack->refresh();
        respond(conn, std::string("reload ") + (swapped ? "ok " : "noop ") +
                          std::to_string(options_.pack->generation()));
        if (swapped) obs::counter("net.reloads").add();
        return;
    }

    // Everything else is a query line; it consumes one sequence id so the
    // client can correlate responses even across errors.
    const std::uint64_t id = ++conn->seq;
    if (pending_.size() >= options_.max_pending) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        obs::counter("net.rejected").add();
        respond(conn, "err " + std::to_string(id) +
                          " busy: server at max_pending, retry later");
        return;
    }
    Pending p;
    p.conn = conn;
    p.seq = id;
    try {
        if (!parse_query_line(line, p.query)) {
            --conn->seq;  // blank/comment: no response, no id consumed
            return;
        }
    } catch (const std::exception& e) {
        parse_errors_.fetch_add(1, std::memory_order_relaxed);
        obs::counter("net.parse_errors").add();
        respond(conn,
                "err " + std::to_string(id) + " " + std::string(e.what()));
        return;
    }
    if (pending_.empty())
        batch_deadline_ = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(options_.linger_us);
    ++conn->queued;
    pending_.push_back(std::move(p));
    if (pending_.size() >= options_.batch_max) run_pending_batch();
}

void NetServer::run_pending_batch() {
    // EOF-triggered and timer-triggered flushes race an already-empty
    // queue; never pay a run_batch() for zero queries.
    if (pending_.empty()) return;
    std::vector<Pending> batch;
    batch.swap(pending_);
    std::vector<serve::TimingQuery> queries;
    queries.reserve(batch.size());
    for (Pending& p : batch) queries.push_back(std::move(p.query));
    batches_.fetch_add(1, std::memory_order_relaxed);
    obs::counter("net.batches").add();
    obs::histogram("net.batch_size")
        .observe(static_cast<double>(queries.size()));
    const std::vector<serve::TimingResult> results =
        service_->run_batch(queries);
    for (std::size_t i = 0; i < results.size(); ++i) {
        Conn& conn = *batch[i].conn;
        --conn.queued;
        if (conn.fd < 0) continue;  // disconnected while the batch ran
        append_result_line(conn.out, batch[i].seq, results[i]);
        conn.out += '\n';
    }
    served_.fetch_add(results.size(), std::memory_order_relaxed);
    obs::counter("net.served").add(static_cast<long long>(results.size()));
    // ONE flush per connection for the whole batch (responses were only
    // appended above); this also closes half-closed peers whose last
    // responses just materialized.
    for (std::size_t i = conns_.size(); i > 0; --i) {
        const std::shared_ptr<Conn> conn = conns_[i - 1];
        if (!conn->drained() || conn->eof) try_flush(conn);
    }
}

void NetServer::conn_readable(const std::shared_ptr<Conn>& conn) {
    char buf[16384];
    for (;;) {
        if (conn->fd < 0) return;
        const ssize_t n = ::recv(conn->fd, buf, sizeof buf, 0);
        if (n > 0) {
            conn->in.append(buf, static_cast<std::size_t>(n));
            std::size_t start = 0;
            for (;;) {
                const std::size_t nl = conn->in.find('\n', start);
                if (nl == std::string::npos) break;
                std::string_view line(conn->in.data() + start, nl - start);
                if (!line.empty() && line.back() == '\r')
                    line.remove_suffix(1);
                start = nl + 1;
                handle_line(conn, line);
                if (conn->fd < 0) return;
            }
            conn->in.erase(0, start);
            if (conn->in.size() > options_.max_line) {
                // No newline within the cap: the framing is broken and
                // there is no way to resync. Tell the peer and hang up.
                respond(conn, "err 0 line too long");
                conn->eof = true;
                if (conn->fd >= 0 && conn->drained()) close_conn(conn);
                return;
            }
            continue;
        }
        if (n == 0) {
            // Peer half-closed: its last (possibly unterminated) partial
            // line is dropped, its pending queries still run, and the
            // connection closes once the responses drained.
            conn->eof = true;
            run_pending_batch();
            if (conn->fd >= 0) try_flush(conn);
            return;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        close_conn(conn);
        return;
    }
}

int NetServer::loop_timeout_ms() const {
    const auto now = std::chrono::steady_clock::now();
    long timeout = -1;
    if (!pending_.empty()) {
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                              batch_deadline_ - now)
                              .count();
        timeout = left < 0 ? 0 : left;
    }
    if (options_.pack && options_.reload_poll_ms > 0) {
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                              next_reload_ - now)
                              .count();
        const long reload = left < 0 ? 0 : left;
        timeout = timeout < 0 ? reload : std::min(timeout, reload);
    }
    if (timeout > 1000) timeout = 1000;  // bounded wake-up for stop()
    return static_cast<int>(timeout);
}

void NetServer::run() {
    next_reload_ = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(options_.reload_poll_ms);
    epoll_event events[64];
    while (!stopping_.load(std::memory_order_acquire)) {
        const int n =
            ::epoll_wait(epoll_fd_, events, 64, loop_timeout_ms());
        if (n < 0) {
            if (errno == EINTR) continue;
            throw ModelError("NetServer: epoll_wait failed");
        }
        for (int i = 0; i < n; ++i) {
            const epoll_event& ev = events[i];
            if (ev.data.ptr == &wake_fd_) {
                std::uint64_t drain = 0;
                [[maybe_unused]] const ssize_t r =
                    ::read(wake_fd_, &drain, sizeof drain);
                continue;
            }
            if (ev.data.ptr == &unix_fd_ || ev.data.ptr == &tcp_fd_) {
                accept_ready(*static_cast<int*>(ev.data.ptr));
                continue;
            }
            // Connection event: find the owning shared_ptr (the epoll
            // payload is the raw Conn*; conns_ is small).
            std::shared_ptr<Conn> conn;
            for (const auto& c : conns_)
                if (c.get() == ev.data.ptr) {
                    conn = c;
                    break;
                }
            if (!conn) continue;  // closed earlier this wake-up
            if (ev.events & (EPOLLHUP | EPOLLERR)) {
                conn->eof = true;
                conn_readable(conn);  // drain what the kernel still has
                if (conn->fd >= 0 && conn->drained()) close_conn(conn);
                continue;
            }
            if (ev.events & EPOLLIN) conn_readable(conn);
            if (conn->fd >= 0 && (ev.events & EPOLLOUT)) try_flush(conn);
        }
        const auto now = std::chrono::steady_clock::now();
        if (!pending_.empty() && now >= batch_deadline_)
            run_pending_batch();
        if (options_.pack && options_.reload_poll_ms > 0 &&
            now >= next_reload_) {
            if (options_.pack->refresh()) obs::counter("net.reloads").add();
            next_reload_ =
                now + std::chrono::milliseconds(options_.reload_poll_ms);
        }
    }
    // Graceful wind-down: answer what was already submitted, push the
    // bytes out best-effort, then let the destructor close everything.
    run_pending_batch();
    for (std::size_t i = conns_.size(); i > 0; --i) try_flush(conns_[i - 1]);
}

}  // namespace mcsm::net
