// Minimal blocking line-protocol client for NetServer: used by the CLI's
// --client mode, the socket integration tests and bench_net. Handles
// connect (unix / TCP loopback), buffered line reads and SIGPIPE-free
// sends; callers speak the net/query_text grammar through it.
#ifndef MCSM_NET_CLIENT_H
#define MCSM_NET_CLIENT_H

#include <string>
#include <string_view>

namespace mcsm::net {

class LineClient {
public:
    // Both throw ModelError when the connection fails.
    static LineClient connect_unix(const std::string& path);
    static LineClient connect_tcp(int port);  // 127.0.0.1:port

    LineClient(LineClient&& other) noexcept;
    LineClient& operator=(LineClient&& other) noexcept;
    LineClient(const LineClient&) = delete;
    LineClient& operator=(const LineClient&) = delete;
    ~LineClient();

    // Sends raw bytes (callers append their own '\n's); a pipelining
    // client pushes thousands of request lines in one call. SIGPIPE-free;
    // throws ModelError when the peer is gone.
    void send_text(std::string_view text);

    // Sends one line (appending '\n').
    void send_line(std::string_view line);

    // Blocks for the next response line (without the newline); throws
    // ModelError on EOF or socket error.
    std::string recv_line();

    // Reads exactly `n` payload bytes (for length-prefixed responses like
    // "stats <nbytes>").
    std::string recv_bytes(std::size_t n);

    // send_line + recv_line, the one-shot convenience.
    std::string request(const std::string& line);

    // Half-close the write side: the server sees EOF, flushes the pending
    // batch, and the remaining responses stay readable.
    void shutdown_write();

    int fd() const { return fd_; }

private:
    explicit LineClient(int fd) : fd_(fd) {}

    int fd_ = -1;
    std::string buf_;  // received-but-unconsumed bytes
};

}  // namespace mcsm::net

#endif  // MCSM_NET_CLIENT_H
