// Socket front end of the serving tier: an epoll event loop that accepts
// concurrent clients speaking the line protocol of net/query_text and
// feeds their queries to one shared TimingService in MICRO-BATCHES.
//
// Why batch at the socket layer: run_batch() amortizes its warm-up and
// fan-out over the whole batch, so per-query dispatch would waste the
// thread pool on bursty many-client load. The server instead accumulates
// parsed queries from every connection into one pending batch and executes
// it inline on the loop thread when EITHER batch_max queries are pending
// OR the oldest pending query has waited linger_us microseconds (the
// latency bound), OR a client sent "flush" / reached EOF. While a batch
// runs, arriving bytes simply queue in kernel socket buffers -- that
// backpressure is the batching under load.
//
// Per-connection ordering: responses come back in the order the
// connection submitted its queries (batch results are in query order and
// pending entries preserve arrival order). Ordering across connections is
// unspecified.
//
// Control lines (everything else is a query line):
//   ping    -> "pong"
//   flush   -> execute the pending batch now
//   stats   -> "stats <nbytes>\n" + the obs snapshot JSON (length-prefixed
//              because the payload spans lines)
//   reload  -> PackHost::refresh() on the configured pack;
//              "reload ok <generation>" / "reload noop <generation>" /
//              "err 0 reload: no pack configured"
//
// Admission: when max_pending queries are already waiting, new queries are
// rejected immediately with "err <id> busy ..." instead of queueing
// unboundedly -- the client sees the overload instead of a growing tail
// latency.
//
// Shutdown: stop() is async-signal-safe (one eventfd write), so SIGTERM/
// SIGINT handlers can call it directly; the loop then executes the still-
// pending batch, flushes every connection's responses best-effort and
// returns from run(). All sends use MSG_NOSIGNAL: a client that vanished
// mid-response costs an EPIPE on that connection, never a process-killing
// SIGPIPE.
#ifndef MCSM_NET_SERVER_H
#define MCSM_NET_SERVER_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "serve/mapped_store.h"
#include "serve/timing_service.h"

namespace mcsm::net {

struct NetServerOptions {
    // Unix-domain listener path ("" disables). A stale socket file from a
    // crashed server is unlinked before bind.
    std::string unix_path;
    // TCP loopback (127.0.0.1) listener port: -1 disables, 0 binds an
    // ephemeral port (read it back via NetServer::tcp_port()).
    int tcp_port = -1;
    // Micro-batching: execute when batch_max queries are pending, or when
    // the oldest has waited linger_us.
    std::size_t batch_max = 512;
    long linger_us = 200;
    // Admission: pending-query cap; excess queries get "err <id> busy".
    std::size_t max_pending = 1 << 16;
    // Longest accepted request line; a connection exceeding it is closed
    // (no way to resync a line protocol mid-line).
    std::size_t max_line = 4096;
    // Connection cap; excess accepts are refused with an error line.
    std::size_t max_conns = 64;
    // Pack behind the service, target of the "reload" command and of
    // reload polling; may be null (reload then reports an error).
    std::shared_ptr<serve::PackHost> pack;
    // When > 0, the loop calls pack->refresh() at this period -- hot
    // reload without any client sending "reload".
    long reload_poll_ms = 0;
};

class NetServer {
public:
    // Binds the configured listeners eagerly (throws ModelError on bind
    // failure); serving starts with run().
    NetServer(serve::TimingService& service, NetServerOptions options);
    ~NetServer();

    NetServer(const NetServer&) = delete;
    NetServer& operator=(const NetServer&) = delete;

    // Bound TCP port (resolves an ephemeral bind), -1 when disabled.
    int tcp_port() const { return tcp_port_; }

    // Runs the event loop on the calling thread until stop().
    void run();

    // Requests run() to wind down: flush the pending batch, best-effort
    // drain of response buffers, return. Async-signal-safe; callable from
    // any thread and from SIGTERM/SIGINT handlers.
    void stop();

    struct Counters {
        std::uint64_t accepted = 0;     // connections accepted
        std::uint64_t refused = 0;      // connections over max_conns
        std::uint64_t served = 0;       // query responses written
        std::uint64_t batches = 0;      // run_batch executions
        std::uint64_t rejected = 0;     // queries refused by admission
        std::uint64_t parse_errors = 0; // malformed query lines
    };
    Counters counters() const;

private:
    struct Conn;
    struct Pending {
        std::shared_ptr<Conn> conn;
        std::uint64_t seq = 0;
        serve::TimingQuery query;
    };

    void accept_ready(int listen_fd);
    void conn_readable(const std::shared_ptr<Conn>& conn);
    void handle_line(const std::shared_ptr<Conn>& conn,
                     std::string_view line);
    void run_pending_batch();
    // Queues one response line (newline appended) and flushes immediately:
    // control/error responses only. Batch responses append straight to the
    // connection buffer in run_pending_batch and flush ONCE per
    // connection, so a batch costs O(connections) send() calls, not
    // O(queries).
    void respond(const std::shared_ptr<Conn>& conn, std::string_view line);
    void try_flush(const std::shared_ptr<Conn>& conn);
    void close_conn(const std::shared_ptr<Conn>& conn);
    void update_epoll(const std::shared_ptr<Conn>& conn, bool want_write);
    int loop_timeout_ms() const;

    serve::TimingService* service_;
    NetServerOptions options_;

    int epoll_fd_ = -1;
    int wake_fd_ = -1;   // eventfd; stop() writes it
    int unix_fd_ = -1;
    int tcp_fd_ = -1;
    int tcp_port_ = -1;

    std::atomic<bool> stopping_{false};

    // Loop-thread state (never touched concurrently).
    std::vector<std::shared_ptr<Conn>> conns_;
    std::vector<Pending> pending_;
    std::chrono::steady_clock::time_point batch_deadline_{};
    std::chrono::steady_clock::time_point next_reload_{};

    std::atomic<std::uint64_t> accepted_{0};
    std::atomic<std::uint64_t> refused_{0};
    std::atomic<std::uint64_t> served_{0};
    std::atomic<std::uint64_t> batches_{0};
    std::atomic<std::uint64_t> rejected_{0};
    std::atomic<std::uint64_t> parse_errors_{0};
};

}  // namespace mcsm::net

#endif  // MCSM_NET_SERVER_H
