#include "net/client.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/error.h"

namespace mcsm::net {

LineClient LineClient::connect_unix(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    require(path.size() < sizeof(addr.sun_path),
            "LineClient: unix socket path too long: " + path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    require(fd >= 0, "LineClient: socket(AF_UNIX) failed");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
        0) {
        ::close(fd);
        throw ModelError("LineClient: cannot connect to " + path);
    }
    return LineClient(fd);
}

LineClient LineClient::connect_tcp(int port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    require(fd >= 0, "LineClient: socket(AF_INET) failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
        0) {
        ::close(fd);
        throw ModelError("LineClient: cannot connect to 127.0.0.1:" +
                         std::to_string(port));
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return LineClient(fd);
}

LineClient::LineClient(LineClient&& other) noexcept
    : fd_(other.fd_), buf_(std::move(other.buf_)) {
    other.fd_ = -1;
}

LineClient& LineClient::operator=(LineClient&& other) noexcept {
    if (this != &other) {
        if (fd_ >= 0) ::close(fd_);
        fd_ = other.fd_;
        buf_ = std::move(other.buf_);
        other.fd_ = -1;
    }
    return *this;
}

LineClient::~LineClient() {
    if (fd_ >= 0) ::close(fd_);
}

void LineClient::send_text(std::string_view text) {
    std::size_t off = 0;
    while (off < text.size()) {
        const ssize_t n = ::send(fd_, text.data() + off, text.size() - off,
                                 MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        throw ModelError("LineClient: send failed (peer gone?)");
    }
}

void LineClient::send_line(std::string_view line) {
    std::string text(line);
    text += '\n';
    send_text(text);
}

std::string LineClient::recv_line() {
    for (;;) {
        const std::size_t nl = buf_.find('\n');
        if (nl != std::string::npos) {
            std::string line = buf_.substr(0, nl);
            buf_.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r') line.pop_back();
            return line;
        }
        char chunk[16384];
        const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
        if (n > 0) {
            buf_.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        throw ModelError(n == 0 ? "LineClient: server closed the connection"
                                : "LineClient: recv failed");
    }
}

std::string LineClient::recv_bytes(std::size_t n) {
    while (buf_.size() < n) {
        char chunk[16384];
        const ssize_t r = ::recv(fd_, chunk, sizeof chunk, 0);
        if (r > 0) {
            buf_.append(chunk, static_cast<std::size_t>(r));
            continue;
        }
        if (r < 0 && errno == EINTR) continue;
        throw ModelError(r == 0 ? "LineClient: server closed mid-payload"
                                : "LineClient: recv failed");
    }
    std::string payload = buf_.substr(0, n);
    buf_.erase(0, n);
    return payload;
}

std::string LineClient::request(const std::string& line) {
    send_line(line);
    return recv_line();
}

void LineClient::shutdown_write() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

}  // namespace mcsm::net
