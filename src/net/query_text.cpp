#include "net/query_text.h"

#include <charconv>
#include <cstring>
#include <string_view>
#include <vector>

#include "common/error.h"
#include "common/fp_text.h"

namespace mcsm::net {

namespace {

// Hot path: the server parses one line per query, so tokenization is
// plain string_view scanning -- no stringstream, no allocation beyond the
// strings the query itself stores.

std::string_view next_token(std::string_view& rest) {
    std::size_t i = 0;
    while (i < rest.size() && (rest[i] == ' ' || rest[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < rest.size() && rest[j] != ' ' && rest[j] != '\t') ++j;
    const std::string_view token = rest.substr(i, j - i);
    rest.remove_prefix(j);
    return token;
}

double parse_number(std::string_view token, std::string_view line) {
    double v = 0.0;
    // Branch before building the message: require(cond, string) evaluates
    // its argument eagerly, which would put three allocations on the
    // per-number hot path.
    if (!parse_double_token(token, v)) [[unlikely]]
        throw ModelError("bad number '" + std::string(token) +
                         "': " + std::string(line));
    return v;
}

// Splits a comma-separated field, invoking consume(item) per element.
template <typename Fn>
void split_csv(std::string_view csv, const Fn& consume) {
    while (true) {
        const std::size_t comma = csv.find(',');
        consume(csv.substr(0, comma));
        if (comma == std::string_view::npos) return;
        csv.remove_prefix(comma + 1);
    }
}

std::size_t csv_count(std::string_view csv) {
    std::size_t n = 1;
    for (const char c : csv) n += c == ',' ? 1 : 0;
    return n;
}

std::vector<double> parse_ps_list(std::string_view csv,
                                  std::string_view line) {
    std::vector<double> out;
    out.reserve(csv_count(csv));
    split_csv(csv, [&](std::string_view item) {
        out.push_back(parse_number(item, line) * 1e-12);
    });
    return out;
}

std::vector<std::string> parse_name_list(std::string_view csv) {
    std::vector<std::string> out;
    out.reserve(csv_count(csv));
    split_csv(csv,
              [&](std::string_view item) { out.emplace_back(item); });
    return out;
}

// Shortest-round-trip rendering (std::to_chars default): the fewest
// digits that parse back to the exact double.
void append_double(std::string& s, double v) {
    char buf[32];
    s.append(buf, std::to_chars(buf, buf + sizeof buf, v).ptr);
}

void append_csv_ps(std::string& s, const std::vector<double>& vals) {
    for (std::size_t i = 0; i < vals.size(); ++i) {
        if (i != 0) s += ',';
        append_double(s, vals[i] * 1e12);
    }
}

}  // namespace

bool parse_query_line(std::string_view line, serve::TimingQuery& q) {
    std::string_view rest = line;
    const std::string_view cell = next_token(rest);
    if (cell.empty() || cell[0] == '#') return false;
    const std::string_view pins = next_token(rest);
    const std::string_view dir = next_token(rest);
    const std::string_view slews = next_token(rest);
    const std::string_view skews = next_token(rest);
    const std::string_view load_ff = next_token(rest);
    if (load_ff.empty()) [[unlikely]]
        throw ModelError("malformed query line: " + std::string(line));
    if (dir != "rise" && dir != "fall") [[unlikely]]
        throw ModelError("edge direction must be rise|fall: " +
                         std::string(line));
    q = serve::TimingQuery{};
    q.cell = cell;
    q.pins = parse_name_list(pins);
    q.inputs_rise = dir == "rise";
    q.slews = parse_ps_list(slews, line);
    q.skews = parse_ps_list(skews, line);
    // A lone "0" means simultaneous switching for any pin count (the
    // service wants either an empty list or one skew per pin).
    if (q.skews.size() == 1 && q.skews[0] == 0.0 && q.pins.size() > 1)
        q.skews.clear();
    q.load_cap = parse_number(load_ff, line) * 1e-15;

    for (;;) {
        const std::string_view opt = next_token(rest);
        if (opt.empty()) break;
        if (opt == "exact") {
            q.exact = true;
        } else if (opt.substr(0, 3) == "pi=") {
            std::vector<double> vals;
            std::string_view pi = opt.substr(3);
            while (true) {
                const std::size_t colon = pi.find(':');
                vals.push_back(parse_number(pi.substr(0, colon), line));
                if (colon == std::string_view::npos) break;
                pi.remove_prefix(colon + 1);
            }
            require(vals.size() == 3,
                    "bad pi load (want pi=<near_fF>:<r_ohm>:<c_far_fF>): " +
                        std::string(line));
            q.c_near = vals[0] * 1e-15;
            q.r_wire = vals[1];
            q.c_far = vals[2] * 1e-15;
        } else if (opt.substr(0, 4) == "vdd=") {
            q.corner.vdd = parse_number(opt.substr(4), line);
        } else if (opt.substr(0, 5) == "temp=") {
            q.corner.temp_c = parse_number(opt.substr(5), line);
        } else {
            throw ModelError("unknown query option " + std::string(opt) +
                             ": " + std::string(line));
        }
    }
    return true;
}

std::string format_query_line(const serve::TimingQuery& q) {
    std::string line = q.cell;
    line += ' ';
    for (std::size_t i = 0; i < q.pins.size(); ++i) {
        if (i != 0) line += ',';
        line += q.pins[i];
    }
    line += q.inputs_rise ? " rise " : " fall ";
    append_csv_ps(line, q.slews);
    line += ' ';
    if (q.skews.empty())
        line += '0';
    else
        append_csv_ps(line, q.skews);
    line += ' ';
    append_double(line, q.load_cap * 1e15);
    if (q.c_near != 0.0 || q.r_wire != 0.0 || q.c_far != 0.0) {
        line += " pi=";
        append_double(line, q.c_near * 1e15);
        line += ':';
        append_double(line, q.r_wire);
        line += ':';
        append_double(line, q.c_far * 1e15);
    }
    const serve::TimingQuery defaults;
    if (q.corner.vdd != defaults.corner.vdd) {
        line += " vdd=";
        append_double(line, q.corner.vdd);
    }
    if (q.corner.temp_c != defaults.corner.temp_c) {
        line += " temp=";
        append_double(line, q.corner.temp_c);
    }
    if (q.exact) line += " exact";
    return line;
}

void append_result_line(std::string& out, std::uint64_t id,
                        const serve::TimingResult& result) {
    // Hot path: one result line per served query. "ok " + u64 + two
    // shortest-round-trip doubles + " lut|tran" fits 96 bytes with room.
    char buf[96];
    char* p = buf;
    char* const end = buf + sizeof buf;
    if (result.valid) {
        std::memcpy(p, "ok ", 3);
        p = std::to_chars(p + 3, end, id).ptr;
        *p++ = ' ';
        p = std::to_chars(p, end, result.delay).ptr;
        *p++ = ' ';
        p = std::to_chars(p, end, result.slew).ptr;
        const std::string_view path =
            result.path == serve::ResultPath::kLut ? " lut" : " tran";
        std::memcpy(p, path.data(), path.size());
        out.append(buf, p + path.size());
        return;
    }
    out += "err ";
    out.append(buf, std::to_chars(buf, end, id).ptr);
    out += ' ';
    // Errors travel on one line; flatten any embedded newlines.
    for (char c : result.error) out += c == '\n' ? ' ' : c;
}

std::string format_result_line(std::uint64_t id,
                               const serve::TimingResult& result) {
    std::string line;
    append_result_line(line, id, result);
    return line;
}

serve::TimingResult parse_result_line(std::string_view line,
                                      std::uint64_t& id) {
    std::string_view rest = line;
    const std::string_view tag = next_token(rest);
    const std::string_view id_token = next_token(rest);
    std::uint64_t parsed = 0;
    bool id_ok = !id_token.empty();
    for (char c : id_token) {
        if (c < '0' || c > '9') {
            id_ok = false;
            break;
        }
        parsed = parsed * 10 + static_cast<std::uint64_t>(c - '0');
    }
    require(id_ok, "malformed result line: " + std::string(line));
    id = parsed;
    serve::TimingResult r;
    if (tag == "ok") {
        const std::string_view delay = next_token(rest);
        const std::string_view slew = next_token(rest);
        const std::string_view path = next_token(rest);
        r.valid = true;
        r.delay = parse_number(delay, line);
        r.slew = parse_number(slew, line);
        require(path == "lut" || path == "tran",
                "malformed result path: " + std::string(line));
        r.path = path == "lut" ? serve::ResultPath::kLut
                               : serve::ResultPath::kTransient;
        return r;
    }
    require(tag == "err", "malformed result line: " + std::string(line));
    while (!rest.empty() && (rest.front() == ' ' || rest.front() == '\t'))
        rest.remove_prefix(1);
    r.error = rest.empty() ? "unknown server error" : std::string(rest);
    return r;
}

}  // namespace mcsm::net
