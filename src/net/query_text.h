// Text codec of the timing-query wire protocol, shared by the stdin CLI
// (examples/timing_server), the socket server (net/server) and its
// clients: ONE grammar, ONE parser, so a query file pipes unchanged into a
// socket and a socket client can replay a CLI batch.
//
// Query line (whitespace-separated; '#' starts a comment):
//   <cell> <pins> <rise|fall> <slews_ps> <skews_ps> <load_fF> [option...]
//   options: pi=<c_near_fF>:<r_ohm>:<c_far_fF>  vdd=<V>  temp=<degC>  exact
//
// Numbers are parsed with std::from_chars (common/fp_text.h
// parse_double_token): locale-independent '.' radix, whole-token, finite
// -- a server running under a comma-radix locale reads "2.5" as 2.5, and
// trailing junk is a per-line error instead of a silently truncated value.
//
// Result line (full precision, machine-first):
//   ok <id> <delay_s> <slew_s> <lut|tran>
//   err <id> <message...>
// Doubles are rendered with std::to_chars shortest-round-trip form, so
// parsing a result line recovers the exact bits run_batch produced.
// <id> is an opaque caller token (the batch index for the CLI, the
// per-connection sequence number for the socket server).
#ifndef MCSM_NET_QUERY_TEXT_H
#define MCSM_NET_QUERY_TEXT_H

#include <cstdint>
#include <string>
#include <string_view>

#include "serve/timing_service.h"

namespace mcsm::net {

// Parses one query line into `q`. Returns false for blank/comment lines;
// throws ModelError on malformed ones (report per line, keep the stream).
bool parse_query_line(std::string_view line, serve::TimingQuery& q);

// Renders `q` as one protocol query line (no trailing newline). The
// inverse direction of parse_query_line up to unit scaling: numbers are
// shortest-round-trip, so feeding the SAME line to a socket server and an
// in-process parse_query_line + run_batch yields bitwise-equal results.
std::string format_query_line(const serve::TimingQuery& q);

// Renders `result` as one protocol result line (no trailing newline).
// Shortest-round-trip doubles: the text recovers the exact bits, so a
// socket client can assert bitwise equality against an in-process
// run_batch. The append form is the server's hot path: it extends `out`
// in place, no per-response allocation.
void append_result_line(std::string& out, std::uint64_t id,
                        const serve::TimingResult& result);
std::string format_result_line(std::uint64_t id,
                               const serve::TimingResult& result);

// Parses a result line back into (id, result); throws ModelError on
// malformed input. The client-side inverse of format_result_line.
serve::TimingResult parse_result_line(std::string_view line,
                                      std::uint64_t& id);

}  // namespace mcsm::net

#endif  // MCSM_NET_QUERY_TEXT_H
