#include "obs/trace.h"

#ifndef MCSM_OBS_OFF

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.h"

namespace mcsm::obs {

namespace detail {

std::atomic<bool> g_trace_on{false};
std::atomic<bool> g_trace_detail{false};

namespace {

// Per-thread ring buffer of completed spans. The buffer's own mutex
// serializes the (rare, tracing-enabled-only) writer commit against the
// stop_trace() drain; it is uncontended in steady state.
struct ThreadBuf {
  std::mutex mu;
  std::vector<TraceEvent> ring;
  std::size_t next = 0;     // write cursor
  std::size_t count = 0;    // total committed (may exceed ring size)
  int tid = 0;
};

struct TraceState {
  std::mutex mu;  // guards options/epoch/bufs registration
  TraceOptions options;
  std::uint64_t epoch = 0;          // bumped per start_trace
  std::uint64_t t_start_ns = 0;     // capture start, for relative timestamps
  std::vector<ThreadBuf*> bufs;     // registered thread buffers (leaked)
  int next_tid = 1;
};

TraceState& state() {
  static TraceState* s = new TraceState;
  return *s;
}

std::atomic<std::uint64_t> g_epoch{0};

ThreadBuf& thread_buf() {
  thread_local ThreadBuf* buf = nullptr;
  if (buf == nullptr) {
    buf = new ThreadBuf;  // leaked: must outlive detached pool threads
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    buf->tid = s.next_tid++;
    buf->ring.resize(std::max<std::size_t>(s.options.ring_events, 16));
    s.bufs.push_back(buf);
  }
  return *buf;
}

void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out += c;
    }
  }
}

struct EnvTrace {
  EnvTrace() {
    const char* path = std::getenv("MCSM_TRACE");
    if (path == nullptr || path[0] == '\0') return;
    TraceOptions opt;
    opt.path = path;
    const char* detail_env = std::getenv("MCSM_TRACE_DETAIL");
    opt.detail = detail_env != nullptr && detail_env[0] != '\0' &&
                 detail_env[0] != '0';
    start_trace(opt);
    std::atexit([] { stop_trace(); });
  }
};

EnvTrace g_env_trace;

}  // namespace

void commit_event(const char* name, std::uint64_t t0_ns, std::uint64_t t1_ns,
                  std::string_view detail_label) {
  std::uint64_t epoch = g_epoch.load(std::memory_order_acquire);
  ThreadBuf& buf = thread_buf();
  std::lock_guard<std::mutex> lock(buf.mu);
  TraceEvent& ev = buf.ring[buf.next];
  ev.name = name;
  ev.t0_ns = t0_ns;
  ev.t1_ns = t1_ns;
  ev.epoch = epoch;
  std::size_t n = std::min(detail_label.size(), sizeof(ev.detail) - 1);
  if (n > 0) std::memcpy(ev.detail, detail_label.data(), n);
  ev.detail[n] = '\0';
  buf.next = (buf.next + 1) % buf.ring.size();
  ++buf.count;
}

}  // namespace detail

void Span::begin(const char* name, std::string_view label) {
  name_ = name;
  t0_ns_ = now_ns();
  std::size_t n = std::min(label.size(), sizeof(label_) - 1);
  if (n > 0) std::memcpy(label_, label.data(), n);
  label_[n] = '\0';
}

void Span::end() {
  if (!detail::g_trace_on.load(std::memory_order_relaxed)) return;
  detail::commit_event(name_, t0_ns_, now_ns(), label_);
}

std::uint64_t DetailSpan::clock_ns() { return now_ns(); }

void start_trace(const TraceOptions& options) {
  detail::TraceState& s = detail::state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.options = options;
  if (s.options.ring_events < 16) s.options.ring_events = 16;
  ++s.epoch;
  s.t_start_ns = now_ns();
  // Resize/clear existing thread buffers; events from earlier epochs are
  // filtered out at flush via the per-event epoch stamp.
  for (detail::ThreadBuf* buf : s.bufs) {
    std::lock_guard<std::mutex> blk(buf->mu);
    buf->ring.assign(s.options.ring_events, {});
    buf->next = 0;
    buf->count = 0;
  }
  detail::g_epoch.store(s.epoch, std::memory_order_release);
  detail::g_trace_detail.store(options.detail, std::memory_order_relaxed);
  detail::g_trace_on.store(true, std::memory_order_release);
}

bool trace_active() {
  return detail::g_trace_on.load(std::memory_order_relaxed);
}

bool trace_detail_active() {
  return detail::g_trace_detail.load(std::memory_order_relaxed);
}

bool stop_trace() {
  detail::TraceState& s = detail::state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!detail::g_trace_on.load(std::memory_order_relaxed)) return false;
  detail::g_trace_on.store(false, std::memory_order_release);
  detail::g_trace_detail.store(false, std::memory_order_relaxed);

  struct Flat {
    detail::TraceEvent ev;
    int tid;
  };
  std::vector<Flat> events;
  for (detail::ThreadBuf* buf : s.bufs) {
    std::lock_guard<std::mutex> blk(buf->mu);
    std::size_t n = std::min(buf->count, buf->ring.size());
    for (std::size_t i = 0; i < n; ++i) {
      const detail::TraceEvent& ev = buf->ring[i];
      if (ev.name != nullptr && ev.epoch == s.epoch) {
        events.push_back({ev, buf->tid});
      }
    }
  }
  std::sort(events.begin(), events.end(),
            [](const Flat& a, const Flat& b) { return a.ev.t0_ns < b.ev.t0_ns; });

  std::string out = "{\"traceEvents\":[\n";
  char line[512];
  bool first = true;
  for (const Flat& f : events) {
    double ts_us =
        static_cast<double>(f.ev.t0_ns - std::min(f.ev.t0_ns, s.t_start_ns)) /
        1000.0;
    double dur_us = static_cast<double>(f.ev.t1_ns - f.ev.t0_ns) / 1000.0;
    std::string name;
    detail::append_escaped(name, f.ev.name);
    std::string args;
    if (f.ev.detail[0] != '\0') {
      args = ",\"args\":{\"detail\":\"";
      detail::append_escaped(args, f.ev.detail);
      args += "\"}";
    }
    std::snprintf(line, sizeof(line),
                  "%s{\"name\":\"%s\",\"cat\":\"mcsm\",\"ph\":\"X\","
                  "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d%s}",
                  first ? "" : ",\n", name.c_str(), ts_us, dur_us, f.tid,
                  args.c_str());
    first = false;
    out += line;
  }
  out += "\n]}\n";

  std::FILE* file = std::fopen(s.options.path.c_str(), "w");
  if (file == nullptr) return false;
  bool ok = std::fwrite(out.data(), 1, out.size(), file) == out.size();
  ok = (std::fclose(file) == 0) && ok;
  return ok;
}

}  // namespace mcsm::obs

#endif  // MCSM_OBS_OFF
