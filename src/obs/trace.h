#pragma once

// obs/trace -- RAII scoped spans emitting Chrome trace-event JSON.
//
// Spans are recorded into per-thread ring buffers (fixed capacity, oldest
// events overwritten) and flushed to a single JSON file on stop_trace().
// The output loads directly in chrome://tracing and in Perfetto
// (ui.perfetto.dev -> Open trace file).
//
// Cost model: with tracing inactive a Span constructor is one relaxed
// atomic load and a branch -- no clock read, no allocation. The fine-
// grained per-phase solver spans (assemble/factor/solve, fired every
// Newton iteration) additionally hide behind TraceOptions::detail /
// MCSM_TRACE_DETAIL=1 so a default trace of a full serve batch stays
// small and readable.
//
// Activation:
//   - programmatic: obs::start_trace({.path = "run.json"}); ... stop_trace();
//   - environment:  MCSM_TRACE=run.json (flushed at process exit);
//                   MCSM_TRACE_DETAIL=1 adds the per-iteration solver spans.
//
// Like the metrics registry, trace state is process-lifetime and leaked so
// spans fired from pool workers during shutdown stay safe.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#ifndef MCSM_OBS_OFF

#include <atomic>

namespace mcsm::obs {

struct TraceOptions {
  std::string path = "mcsm_trace.json";
  std::size_t ring_events = 1 << 15;  // per thread
  bool detail = false;                // include per-iteration solver spans
};

// Starts capturing; replaces any active capture (previous events dropped).
void start_trace(const TraceOptions& options);

// Stops capturing and writes all buffered events to the configured path.
// Returns false if no capture was active or the file could not be written.
bool stop_trace();

bool trace_active();
bool trace_detail_active();

namespace detail {

struct TraceEvent {
  const char* name = nullptr;  // static-lifetime string
  std::uint64_t t0_ns = 0;
  std::uint64_t t1_ns = 0;
  std::uint64_t epoch = 0;
  char detail[24] = {};  // optional label, e.g. cell name (truncated)
};

extern std::atomic<bool> g_trace_on;
extern std::atomic<bool> g_trace_detail;

void commit_event(const char* name, std::uint64_t t0_ns, std::uint64_t t1_ns,
                  std::string_view detail_label);

}  // namespace detail

// RAII span. `name` must be a static-lifetime string literal; the optional
// label is copied (truncated) into a small inline buffer -- no allocation.
class Span {
 public:
  explicit Span(const char* name) : Span(name, std::string_view{}) {}
  Span(const char* name, std::string_view label) {
    if (detail::g_trace_on.load(std::memory_order_relaxed)) begin(name, label);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    if (name_ != nullptr) end();
  }

 private:
  void begin(const char* name, std::string_view label);
  void end();

  const char* name_ = nullptr;
  std::uint64_t t0_ns_ = 0;
  char label_[sizeof(detail::TraceEvent{}.detail)] = {};
};

// Span that only records when TraceOptions::detail is set. Used for the
// per-Newton-iteration assemble/factor/solve phases, which would otherwise
// flood the ring buffers (and the viewer) on any real workload.
class DetailSpan {
 public:
  explicit DetailSpan(const char* name) {
    if (detail::g_trace_detail.load(std::memory_order_relaxed)) {
      name_ = name;
      t0_ns_ = clock_ns();
    }
  }
  DetailSpan(const DetailSpan&) = delete;
  DetailSpan& operator=(const DetailSpan&) = delete;
  ~DetailSpan() {
    if (name_ != nullptr) {
      detail::commit_event(name_, t0_ns_, clock_ns(), {});
    }
  }

 private:
  static std::uint64_t clock_ns();

  const char* name_ = nullptr;
  std::uint64_t t0_ns_ = 0;
};

}  // namespace mcsm::obs

#else  // MCSM_OBS_OFF

namespace mcsm::obs {

struct TraceOptions {
  std::string path = "mcsm_trace.json";
  std::size_t ring_events = 0;
  bool detail = false;
};

inline void start_trace(const TraceOptions&) {}
inline bool stop_trace() { return false; }
inline bool trace_active() { return false; }
inline bool trace_detail_active() { return false; }

class Span {
 public:
  explicit Span(const char*) {}
  Span(const char*, std::string_view) {}
};

class DetailSpan {
 public:
  explicit DetailSpan(const char*) {}
};

}  // namespace mcsm::obs

#endif  // MCSM_OBS_OFF
