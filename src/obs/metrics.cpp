#include "obs/metrics.h"

#include <cstdio>

#ifndef MCSM_OBS_OFF

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

namespace mcsm::obs {

namespace {

std::atomic<bool> g_enabled{true};

// The registry outlives everything -- pool workers may record metrics while
// other statics are being destroyed, so it is allocated once and leaked.
struct Registry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }
bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace detail {

int shard_index() {
  // One stable shard id per thread; cheap (TLS load) and collision-tolerant.
  static std::atomic<int> next{0};
  thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
  return id & (kShards - 1);
}

}  // namespace detail

int Histogram::bucket_index(double v) {
  if (!(v >= 1.0)) return 0;  // negatives, zero, NaN -> lowest bucket
  int exp = 0;
  double m = std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1)
  // Sub-bucket within the octave from the mantissa: boundaries at
  // 2^-1/2^0.75/... i.e. m in [0.5,0.5946) -> 0, [0.5946,0.7071) -> 1, ...
  int sub;
  if (m < 0.59460355750136053) {
    sub = 0;
  } else if (m < 0.70710678118654757) {
    sub = 1;
  } else if (m < 0.84089641525371450) {
    sub = 2;
  } else {
    sub = 3;
  }
  int idx = (exp - 1) * kBucketsPerOctave + sub;
  if (idx < 0) return 0;
  if (idx >= kBuckets) return kBuckets - 1;
  return idx;
}

double Histogram::bucket_lower_bound(int i) {
  if (i <= 0) return 1.0;
  if (i >= kBuckets) i = kBuckets - 1;
  return std::exp2(static_cast<double>(i) / kBucketsPerOctave);
}

HistogramStats Histogram::stats() const {
  HistogramStats out;
  long long counts[kBuckets];
  long long total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  out.count = total;
  out.sum = sum_.load(std::memory_order_relaxed);
  if (total == 0) return out;
  out.min = min_.load(std::memory_order_relaxed);
  out.max = max_.load(std::memory_order_relaxed);

  // Percentile = lower bound of the bucket holding the q-th sample. Uses the
  // locally captured counts so a concurrent observe() can't skew the walk.
  auto percentile = [&](double q) {
    long long rank = static_cast<long long>(q * static_cast<double>(total - 1));
    long long seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += counts[i];
      if (seen > rank) return bucket_lower_bound(i);
    }
    return bucket_lower_bound(kBuckets - 1);
  };
  out.p50 = percentile(0.50);
  out.p95 = percentile(0.95);
  out.p99 = percentile(0.99);
  return out;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(1e300, std::memory_order_relaxed);
  max_.store(-1e300, std::memory_order_relaxed);
}

Counter& counter(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto& slot = r.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& gauge(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto& slot = r.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& histogram(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto& slot = r.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

Snapshot snapshot() {
  Snapshot snap;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  snap.counters.reserve(r.counters.size());
  for (const auto& [name, c] : r.counters) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(r.gauges.size());
  for (const auto& [name, g] : r.gauges) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(r.histograms.size());
  for (const auto& [name, h] : r.histograms) {
    snap.histograms.push_back({name, h->stats()});
  }
  return snap;
}

void reset_all() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, c] : r.counters) c->reset();
  for (auto& [name, g] : r.gauges) g->reset();
  for (auto& [name, h] : r.histograms) h->reset();
}

std::string Snapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& e : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    append_json_escaped(out, e.name);
    out += "\": " + std::to_string(e.value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& e : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    append_json_escaped(out, e.name);
    out += "\": " + std::to_string(e.value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& e : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    append_json_escaped(out, e.name);
    out += "\": {\"count\": " + std::to_string(e.stats.count);
    out += ", \"sum\": " + fmt_double(e.stats.sum);
    out += ", \"min\": " + fmt_double(e.stats.min);
    out += ", \"max\": " + fmt_double(e.stats.max);
    out += ", \"p50\": " + fmt_double(e.stats.p50);
    out += ", \"p95\": " + fmt_double(e.stats.p95);
    out += ", \"p99\": " + fmt_double(e.stats.p99);
    out += "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string Snapshot::format_human() const {
  std::string out;
  char line[256];
  if (!counters.empty()) {
    out += "counters:\n";
    for (const auto& e : counters) {
      std::snprintf(line, sizeof(line), "  %-40s %lld\n", e.name.c_str(),
                    e.value);
      out += line;
    }
  }
  if (!gauges.empty()) {
    out += "gauges:\n";
    for (const auto& e : gauges) {
      std::snprintf(line, sizeof(line), "  %-40s %lld\n", e.name.c_str(),
                    e.value);
      out += line;
    }
  }
  if (!histograms.empty()) {
    out += "histograms:\n";
    for (const auto& e : histograms) {
      std::snprintf(line, sizeof(line),
                    "  %-40s count=%lld mean=%.3g p50=%.3g p95=%.3g p99=%.3g "
                    "max=%.3g\n",
                    e.name.c_str(), e.stats.count,
                    e.stats.count > 0
                        ? e.stats.sum / static_cast<double>(e.stats.count)
                        : 0.0,
                    e.stats.p50, e.stats.p95, e.stats.p99, e.stats.max);
      out += line;
    }
  }
  if (out.empty()) out = "(no metrics recorded)\n";
  return out;
}

bool write_snapshot_json(const std::string& path) {
  std::string json = snapshot().to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  ok = (std::fclose(f) == 0) && ok;
  return ok;
}

}  // namespace mcsm::obs

#else  // MCSM_OBS_OFF: keep the out-of-line symbols the stub API still needs.

namespace mcsm::obs {

Counter& counter(const std::string&) {
  static Counter c;
  return c;
}

Gauge& gauge(const std::string&) {
  static Gauge g;
  return g;
}

Histogram& histogram(const std::string&) {
  static Histogram h;
  return h;
}

std::string Snapshot::to_json() const {
  return "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {}\n}\n";
}

std::string Snapshot::format_human() const {
  return "(observability compiled out: MCSM_OBS=OFF)\n";
}

bool write_snapshot_json(const std::string& path) {
  std::string json = Snapshot{}.to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  ok = (std::fclose(f) == 0) && ok;
  return ok;
}

}  // namespace mcsm::obs

#endif  // MCSM_OBS_OFF
