#pragma once

// obs/metrics -- process-wide registry of named counters, gauges, and
// log-bucketed latency histograms.
//
// Design constraints, in order:
//   1. The hot path (Counter::add, Histogram::observe) is a relaxed atomic
//      add on a cache-line-padded thread-indexed shard -- no locks, no
//      allocation, no syscalls. Safe from pool workers and from code running
//      during static destruction (the registry is intentionally leaked).
//   2. Snapshotting is always safe concurrently with updates: readers use
//      relaxed loads and may observe a value mid-batch, never a torn one.
//   3. With -DMCSM_OBS=OFF the whole API compiles to empty inline stubs so
//      instrumented call sites cost literally nothing (see the #else block).
//   4. Instrumentation never changes numeric results: the subsystem only
//      observes, and `set_enabled(false)` turns every update into a single
//      relaxed load + branch for overhead A/B measurements.
//
// Usage at a call site (the reference is resolved once, then reused):
//   static obs::Counter& hits = obs::counter("serve.surface.hit");
//   hits.add();

#include <cstdint>
#include <string>
#include <vector>

#ifndef MCSM_OBS_OFF

#include <atomic>

namespace mcsm::obs {

constexpr bool compiled_in() { return true; }

// Runtime kill switch (default on). Only gates *updates*; snapshot always
// reads whatever was recorded. Used by the bench overhead A/B gate.
void set_enabled(bool on);
bool enabled();

// Monotonic clock for latency measurements, ns since an arbitrary epoch.
std::uint64_t now_ns();

namespace detail {

// One cache line per shard so concurrent writers on different cores don't
// bounce the same line. 16 shards is plenty for the pool sizes we run.
inline constexpr int kShards = 16;

struct alignas(64) PaddedI64 {
  std::atomic<long long> v{0};
};

// Cheap thread -> shard mapping; collisions are fine (atomics stay exact).
int shard_index();

}  // namespace detail

class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(long long delta = 1) {
    if (!enabled()) return;
    shards_[detail::shard_index()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  long long value() const {
    long long total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  void reset() {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  detail::PaddedI64 shards_[detail::kShards];
};

class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(long long v) {
    if (!enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  void add(long long delta) {
    if (!enabled()) return;
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  long long value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<long long> v_{0};
};

struct HistogramStats {
  long long count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

// Log-bucketed histogram: 4 buckets per octave (bucket k spans
// [2^(k/4), 2^((k+1)/4))), covering [1, 2^38) -- for nanosecond latencies
// that is 1 ns .. ~275 s. Values below/above clamp to the edge buckets.
// Percentiles are reconstructed at snapshot time from bucket counts
// (resolution ~19% worst case, plenty for p50/p95/p99 dashboards).
class Histogram {
 public:
  static constexpr int kBucketsPerOctave = 4;
  static constexpr int kOctaves = 38;
  static constexpr int kBuckets = kBucketsPerOctave * kOctaves;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double v) {
    if (!enabled()) return;
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    update_min(v);
    update_max(v);
  }

  // Maps a value to its bucket. Exposed for the boundary-case tests.
  static int bucket_index(double v);
  // Lower edge of bucket i, i.e. 2^(i/4).
  static double bucket_lower_bound(int i);

  HistogramStats stats() const;
  void reset();

 private:
  void update_min(double v) {
    double cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  void update_max(double v) {
    double cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<long long> buckets_[kBuckets] = {};
  std::atomic<long long> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{1e300};
  std::atomic<double> max_{-1e300};
};

// Registry lookups. The returned references are process-lifetime stable
// (instruments are never destroyed); the lookup itself takes a mutex, so
// cache the reference in a function-local static at hot call sites.
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name);

// RAII latency sample: observes elapsed ns into `h` on destruction.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram& h) : h_(&h), t0_(now_ns()) {}
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;
  ~ScopedLatency() { h_->observe(static_cast<double>(now_ns() - t0_)); }

 private:
  Histogram* h_;
  std::uint64_t t0_;
};

struct Snapshot {
  struct CounterEntry {
    std::string name;
    long long value = 0;
  };
  struct GaugeEntry {
    std::string name;
    long long value = 0;
  };
  struct HistogramEntry {
    std::string name;
    HistogramStats stats;
  };
  std::vector<CounterEntry> counters;    // sorted by name
  std::vector<GaugeEntry> gauges;        // sorted by name
  std::vector<HistogramEntry> histograms;  // sorted by name

  std::string to_json() const;
  std::string format_human() const;
};

// Consistent-enough point-in-time view: each instrument is read atomically
// per field; cross-instrument skew is possible and fine.
Snapshot snapshot();

// Zeroes every registered instrument (tests / per-batch deltas).
void reset_all();

// Writes snapshot().to_json() to `path`; returns false on I/O failure.
bool write_snapshot_json(const std::string& path);

}  // namespace mcsm::obs

#else  // MCSM_OBS_OFF: every hook below must optimize to nothing.

namespace mcsm::obs {

constexpr bool compiled_in() { return false; }

inline void set_enabled(bool) {}
inline bool enabled() { return false; }
inline std::uint64_t now_ns() { return 0; }

class Counter {
 public:
  void add(long long = 1) {}
  long long value() const { return 0; }
  void reset() {}
};

class Gauge {
 public:
  void set(long long) {}
  void add(long long) {}
  long long value() const { return 0; }
  void reset() {}
};

struct HistogramStats {
  long long count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

class Histogram {
 public:
  static constexpr int kBuckets = 1;
  void observe(double) {}
  static int bucket_index(double) { return 0; }
  static double bucket_lower_bound(int) { return 0.0; }
  HistogramStats stats() const { return {}; }
  void reset() {}
};

Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name);

class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram&) {}
};

struct Snapshot {
  struct CounterEntry {
    std::string name;
    long long value = 0;
  };
  struct GaugeEntry {
    std::string name;
    long long value = 0;
  };
  struct HistogramEntry {
    std::string name;
    HistogramStats stats;
  };
  std::vector<CounterEntry> counters;
  std::vector<GaugeEntry> gauges;
  std::vector<HistogramEntry> histograms;

  std::string to_json() const;
  std::string format_human() const;
};

inline Snapshot snapshot() { return {}; }
inline void reset_all() {}
bool write_snapshot_json(const std::string& path);

}  // namespace mcsm::obs

#endif  // MCSM_OBS_OFF
