// N-dimensional lookup table on non-uniform axes with multilinear
// interpolation and analytic gradient. This is the storage format the paper
// prescribes for the MCSM current sources and capacitances (4-D tables).
#ifndef MCSM_LUT_NDTABLE_H
#define MCSM_LUT_NDTABLE_H

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "lut/axis.h"

namespace mcsm::lut {

class NdTable {
public:
    NdTable() = default;
    // Creates a zero-filled table over the given axes.
    explicit NdTable(std::vector<Axis> axes, std::string name = {});

    const std::string& name() const { return name_; }
    std::size_t rank() const { return axes_.size(); }
    const std::vector<Axis>& axes() const { return axes_; }
    const Axis& axis(std::size_t d) const { return axes_[d]; }
    std::size_t value_count() const { return values_.size(); }
    const std::vector<double>& values() const { return values_; }

    // Flat index of a grid point given per-axis knot indices.
    std::size_t flat_index(std::span<const std::size_t> idx) const;

    double grid_value(std::span<const std::size_t> idx) const;
    void set_grid_value(std::span<const std::size_t> idx, double v);

    // Fills every grid point by evaluating f at the knot coordinates.
    void fill(const std::function<double(std::span<const double>)>& f);

    // Multilinear interpolation at x (clamped to the axis ranges).
    double at(std::span<const double> x) const;

    // Interpolated value and gradient d(value)/dx_d. The gradient is the
    // exact derivative of the multilinear interpolant (piecewise constant in
    // each cell along its own axis).
    double at_with_gradient(std::span<const double> x,
                            std::span<double> grad) const;

    // Max |value| over the whole grid.
    double max_abs() const;

    // Visits every grid point: f(indices, coordinates, value reference).
    void for_each_grid_point(
        const std::function<void(std::span<const std::size_t>,
                                 std::span<const double>, double&)>& f);

private:
    std::string name_;
    std::vector<Axis> axes_;
    std::vector<std::size_t> strides_;  // strides_[d]: flat step per knot in dim d
    std::vector<double> values_;
};

}  // namespace mcsm::lut

#endif  // MCSM_LUT_NDTABLE_H
