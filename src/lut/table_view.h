// Non-owning view of an N-dimensional lookup table: named axes over
// borrowed knot spans plus a borrowed value span, with the same multilinear
// interpolation (and analytic gradient) as NdTable. NdTable::at delegates
// here, so an owned table and a view over foreign storage -- e.g. doubles
// inside an mmap'd model pack (serve/mapped_store) -- evaluate through ONE
// kernel and produce bitwise-identical results. The view allocates nothing
// and is cheap to copy; the borrowed storage must outlive it (the serve
// layer pins the mapping with a shared_ptr next to the view).
#ifndef MCSM_LUT_TABLE_VIEW_H
#define MCSM_LUT_TABLE_VIEW_H

#include <array>
#include <cstddef>
#include <span>
#include <string_view>

namespace mcsm::lut {

class NdTable;

class TableView {
public:
    // Rank cap shared with NdTable (which rejects rank > 8 on
    // construction); keeps the view fixed-size and allocation-free.
    static constexpr std::size_t kMaxRank = 8;

    struct AxisView {
        std::string_view name;
        std::span<const double> knots;  // strictly increasing, >= 2 knots

        double lo() const { return knots.front(); }
        double hi() const { return knots.back(); }
        std::size_t size() const { return knots.size(); }
    };

    TableView() = default;
    // Axes/values must satisfy the NdTable invariants (each axis >= 2
    // strictly increasing knots, values.size() == product of axis sizes);
    // throws ModelError otherwise. Axis name/knot storage is borrowed.
    TableView(std::span<const AxisView> axes, std::span<const double> values,
              std::string_view name = {});

    // View over an owned table; borrows its axes and values.
    static TableView of(const NdTable& table);

    std::string_view name() const { return name_; }
    std::size_t rank() const { return rank_; }
    const AxisView& axis(std::size_t d) const { return axes_[d]; }
    std::span<const double> values() const { return values_; }

    // Multilinear interpolation at x (clamped to the axis ranges).
    double at(std::span<const double> x) const { return eval(x, {}); }
    // Interpolated value and exact multilinear gradient.
    double at_with_gradient(std::span<const double> x,
                            std::span<double> grad) const {
        return eval(x, grad);
    }

private:
    double eval(std::span<const double> x, std::span<double> grad) const;

    std::string_view name_;
    std::size_t rank_ = 0;
    std::array<AxisView, kMaxRank> axes_{};
    std::array<std::size_t, kMaxRank> strides_{};
    std::span<const double> values_;
};

}  // namespace mcsm::lut

#endif  // MCSM_LUT_TABLE_VIEW_H
