#include "lut/ndtable.h"

#include <cmath>

#include "common/error.h"
#include "lut/table_view.h"

namespace mcsm::lut {

NdTable::NdTable(std::vector<Axis> axes, std::string name)
    : name_(std::move(name)), axes_(std::move(axes)) {
    require(!axes_.empty(), "NdTable: need at least one axis");
    require(axes_.size() <= 8, "NdTable: rank above 8 is unsupported");
    strides_.assign(axes_.size(), 1);
    std::size_t total = 1;
    // Last axis is the fastest-varying dimension.
    for (std::size_t d = axes_.size(); d-- > 0;) {
        strides_[d] = total;
        total *= axes_[d].size();
    }
    values_.assign(total, 0.0);
}

std::size_t NdTable::flat_index(std::span<const std::size_t> idx) const {
    require(idx.size() == axes_.size(), "NdTable: index rank mismatch");
    std::size_t flat = 0;
    for (std::size_t d = 0; d < axes_.size(); ++d) {
        require(idx[d] < axes_[d].size(), "NdTable: knot index out of range");
        flat += idx[d] * strides_[d];
    }
    return flat;
}

double NdTable::grid_value(std::span<const std::size_t> idx) const {
    return values_[flat_index(idx)];
}

void NdTable::set_grid_value(std::span<const std::size_t> idx, double v) {
    values_[flat_index(idx)] = v;
}

void NdTable::fill(const std::function<double(std::span<const double>)>& f) {
    for_each_grid_point([&](std::span<const std::size_t>,
                            std::span<const double> x, double& v) {
        v = f(x);
    });
}

void NdTable::for_each_grid_point(
    const std::function<void(std::span<const std::size_t>,
                             std::span<const double>, double&)>& f) {
    const std::size_t rank = axes_.size();
    std::vector<std::size_t> idx(rank, 0);
    std::vector<double> coord(rank);
    for (std::size_t d = 0; d < rank; ++d) coord[d] = axes_[d].knots()[0];
    for (;;) {
        f(idx, coord, values_[flat_index(idx)]);
        // Odometer increment over the grid, last axis fastest.
        std::size_t d = rank;
        while (d-- > 0) {
            if (++idx[d] < axes_[d].size()) {
                coord[d] = axes_[d].knots()[idx[d]];
                break;
            }
            idx[d] = 0;
            coord[d] = axes_[d].knots()[0];
            if (d == 0) return;
        }
    }
}

double NdTable::at(std::span<const double> x) const {
    return at_with_gradient(x, {});
}

double NdTable::at_with_gradient(std::span<const double> x,
                                 std::span<double> grad) const {
    // One multilinear kernel serves owned tables and borrowed storage
    // alike: delegate to TableView so NdTable::at and a view over an
    // mmap'd copy of the same data are bitwise-identical by construction.
    return TableView::of(*this).at_with_gradient(x, grad);
}

double NdTable::max_abs() const {
    double m = 0.0;
    for (double v : values_) m = std::max(m, std::fabs(v));
    return m;
}

}  // namespace mcsm::lut
