#include "lut/ndtable.h"

#include <cmath>

#include "common/error.h"

namespace mcsm::lut {

NdTable::NdTable(std::vector<Axis> axes, std::string name)
    : name_(std::move(name)), axes_(std::move(axes)) {
    require(!axes_.empty(), "NdTable: need at least one axis");
    require(axes_.size() <= 8, "NdTable: rank above 8 is unsupported");
    strides_.assign(axes_.size(), 1);
    std::size_t total = 1;
    // Last axis is the fastest-varying dimension.
    for (std::size_t d = axes_.size(); d-- > 0;) {
        strides_[d] = total;
        total *= axes_[d].size();
    }
    values_.assign(total, 0.0);
}

std::size_t NdTable::flat_index(std::span<const std::size_t> idx) const {
    require(idx.size() == axes_.size(), "NdTable: index rank mismatch");
    std::size_t flat = 0;
    for (std::size_t d = 0; d < axes_.size(); ++d) {
        require(idx[d] < axes_[d].size(), "NdTable: knot index out of range");
        flat += idx[d] * strides_[d];
    }
    return flat;
}

double NdTable::grid_value(std::span<const std::size_t> idx) const {
    return values_[flat_index(idx)];
}

void NdTable::set_grid_value(std::span<const std::size_t> idx, double v) {
    values_[flat_index(idx)] = v;
}

void NdTable::fill(const std::function<double(std::span<const double>)>& f) {
    for_each_grid_point([&](std::span<const std::size_t>,
                            std::span<const double> x, double& v) {
        v = f(x);
    });
}

void NdTable::for_each_grid_point(
    const std::function<void(std::span<const std::size_t>,
                             std::span<const double>, double&)>& f) {
    const std::size_t rank = axes_.size();
    std::vector<std::size_t> idx(rank, 0);
    std::vector<double> coord(rank);
    for (std::size_t d = 0; d < rank; ++d) coord[d] = axes_[d].knots()[0];
    for (;;) {
        f(idx, coord, values_[flat_index(idx)]);
        // Odometer increment over the grid, last axis fastest.
        std::size_t d = rank;
        while (d-- > 0) {
            if (++idx[d] < axes_[d].size()) {
                coord[d] = axes_[d].knots()[idx[d]];
                break;
            }
            idx[d] = 0;
            coord[d] = axes_[d].knots()[0];
            if (d == 0) return;
        }
    }
}

double NdTable::at(std::span<const double> x) const {
    return at_with_gradient(x, {});
}

double NdTable::at_with_gradient(std::span<const double> x,
                                 std::span<double> grad) const {
    const std::size_t rank = axes_.size();
    require(x.size() == rank, "NdTable::at: coordinate rank mismatch");
    const bool want_grad = !grad.empty();
    if (want_grad)
        require(grad.size() == rank, "NdTable::at: gradient rank mismatch");

    // Locate the cell and the normalized position within it per axis.
    std::size_t base = 0;
    double u[8];
    double inv_h[8];
    std::size_t stride[8];
    for (std::size_t d = 0; d < rank; ++d) {
        const Axis::Locate loc = axes_[d].locate(x[d]);
        base += loc.index * strides_[d];
        u[d] = loc.u;
        const auto& knots = axes_[d].knots();
        inv_h[d] = 1.0 / (knots[loc.index + 1] - knots[loc.index]);
        stride[d] = strides_[d];
    }

    // Accumulate over the 2^rank cell corners.
    const std::size_t corners = static_cast<std::size_t>(1) << rank;
    double value = 0.0;
    if (want_grad)
        for (std::size_t d = 0; d < rank; ++d) grad[d] = 0.0;
    for (std::size_t corner = 0; corner < corners; ++corner) {
        std::size_t flat = base;
        double weight = 1.0;
        for (std::size_t d = 0; d < rank; ++d) {
            const bool high = (corner >> d) & 1u;
            if (high) flat += stride[d];
            weight *= high ? u[d] : (1.0 - u[d]);
        }
        const double v = values_[flat];
        value += weight * v;
        if (want_grad) {
            for (std::size_t d = 0; d < rank; ++d) {
                // d(weight)/du_d: replace this axis factor by +/-1.
                double w = 1.0;
                for (std::size_t e = 0; e < rank; ++e) {
                    if (e == d) continue;
                    const bool high = (corner >> e) & 1u;
                    w *= high ? u[e] : (1.0 - u[e]);
                }
                const bool high_d = (corner >> d) & 1u;
                grad[d] += (high_d ? 1.0 : -1.0) * w * v;
            }
        }
    }
    if (want_grad)
        for (std::size_t d = 0; d < rank; ++d) grad[d] *= inv_h[d];
    return value;
}

double NdTable::max_abs() const {
    double m = 0.0;
    for (double v : values_) m = std::max(m, std::fabs(v));
    return m;
}

}  // namespace mcsm::lut
