// A lookup-table axis: a named, strictly increasing knot vector.
#ifndef MCSM_LUT_AXIS_H
#define MCSM_LUT_AXIS_H

#include <cstddef>
#include <string>
#include <vector>

namespace mcsm::lut {

class Axis {
public:
    Axis() = default;
    Axis(std::string name, std::vector<double> knots);

    // Uniform axis with n knots over [lo, hi].
    static Axis uniform(std::string name, double lo, double hi, std::size_t n);

    const std::string& name() const { return name_; }
    const std::vector<double>& knots() const { return knots_; }
    std::size_t size() const { return knots_.size(); }
    double lo() const { return knots_.front(); }
    double hi() const { return knots_.back(); }

    // Segment index i with knots[i] <= x < knots[i+1], clamped to the range;
    // also returns the normalized position u in [0,1] within the segment
    // (clamped, so queries outside the axis hold the end values).
    struct Locate {
        std::size_t index;
        double u;
    };
    Locate locate(double x) const;

private:
    std::string name_;
    std::vector<double> knots_;
};

}  // namespace mcsm::lut

#endif  // MCSM_LUT_AXIS_H
