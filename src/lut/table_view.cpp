#include "lut/table_view.h"

#include <algorithm>

#include "common/error.h"
#include "lut/ndtable.h"

namespace mcsm::lut {

namespace {

// Segment locate over a borrowed knot span; identical arithmetic to
// Axis::locate (common::bracket + clamped normalized position) so a view
// and the owning table pick the same cell and weights for every x.
struct Locate {
    std::size_t index;
    double u;
};

Locate locate(std::span<const double> knots, double x) {
    const auto it = std::upper_bound(knots.begin(), knots.end(), x);
    std::size_t i = it == knots.begin()
                        ? 0
                        : static_cast<std::size_t>(it - knots.begin()) - 1;
    i = std::min(i, knots.size() - 2);
    const double x0 = knots[i];
    const double x1 = knots[i + 1];
    const double u = std::clamp((x - x0) / (x1 - x0), 0.0, 1.0);
    return {i, u};
}

}  // namespace

TableView::TableView(std::span<const AxisView> axes,
                     std::span<const double> values, std::string_view name)
    : name_(name), rank_(axes.size()), values_(values) {
    require(rank_ >= 1, "TableView: need at least one axis");
    require(rank_ <= kMaxRank, "TableView: rank above 8 is unsupported");
    std::size_t total = 1;
    // Last axis is the fastest-varying dimension (NdTable layout).
    for (std::size_t d = rank_; d-- > 0;) {
        const AxisView& ax = axes[d];
        require(ax.knots.size() >= 2,
                "TableView: axis needs at least two knots");
        for (std::size_t i = 1; i < ax.knots.size(); ++i)
            require(ax.knots[i] > ax.knots[i - 1],
                    "TableView: axis knots must strictly increase");
        axes_[d] = ax;
        strides_[d] = total;
        total *= ax.knots.size();
    }
    require(values_.size() == total,
            "TableView: value count does not match axes");
}

TableView TableView::of(const NdTable& table) {
    std::array<AxisView, kMaxRank> axes;
    require(table.rank() >= 1 && table.rank() <= kMaxRank,
            "TableView: rank above 8 is unsupported");
    for (std::size_t d = 0; d < table.rank(); ++d) {
        const Axis& ax = table.axis(d);
        axes[d] = AxisView{ax.name(), ax.knots()};
    }
    return TableView({axes.data(), table.rank()}, table.values(),
                     table.name());
}

double TableView::eval(std::span<const double> x,
                       std::span<double> grad) const {
    const std::size_t rank = rank_;
    require(x.size() == rank, "NdTable::at: coordinate rank mismatch");
    const bool want_grad = !grad.empty();
    if (want_grad)
        require(grad.size() == rank, "NdTable::at: gradient rank mismatch");

    // Locate the cell and the normalized position within it per axis.
    std::size_t base = 0;
    double u[kMaxRank];
    double inv_h[kMaxRank];
    std::size_t stride[kMaxRank];
    for (std::size_t d = 0; d < rank; ++d) {
        const std::span<const double> knots = axes_[d].knots;
        const Locate loc = locate(knots, x[d]);
        base += loc.index * strides_[d];
        u[d] = loc.u;
        inv_h[d] = 1.0 / (knots[loc.index + 1] - knots[loc.index]);
        stride[d] = strides_[d];
    }

    // Accumulate over the 2^rank cell corners.
    const std::size_t corners = static_cast<std::size_t>(1) << rank;
    double value = 0.0;
    if (want_grad)
        for (std::size_t d = 0; d < rank; ++d) grad[d] = 0.0;
    for (std::size_t corner = 0; corner < corners; ++corner) {
        std::size_t flat = base;
        double weight = 1.0;
        for (std::size_t d = 0; d < rank; ++d) {
            const bool high = (corner >> d) & 1u;
            if (high) flat += stride[d];
            weight *= high ? u[d] : (1.0 - u[d]);
        }
        const double v = values_[flat];
        value += weight * v;
        if (want_grad) {
            for (std::size_t d = 0; d < rank; ++d) {
                // d(weight)/du_d: replace this axis factor by +/-1.
                double w = 1.0;
                for (std::size_t e = 0; e < rank; ++e) {
                    if (e == d) continue;
                    const bool high = (corner >> e) & 1u;
                    w *= high ? u[e] : (1.0 - u[e]);
                }
                const bool high_d = (corner >> d) & 1u;
                grad[d] += (high_d ? 1.0 : -1.0) * w * v;
            }
        }
    }
    if (want_grad)
        for (std::size_t d = 0; d < rank; ++d) grad[d] *= inv_h[d];
    return value;
}

}  // namespace mcsm::lut
