#include "lut/table_io.h"

#include <cmath>
#include <istream>
#include <ostream>

#include "common/error.h"
#include "common/fp_text.h"

namespace mcsm::lut {

namespace {

// Reads one whitespace-delimited token and parses it as a double (hexfloat
// written by write_table, or decimal from legacy files).
bool read_double(std::istream& is, double& out) {
    std::string token;
    return static_cast<bool>(is >> token) && parse_exact_double(token, out);
}

// Rejects axes that would break interpolation before the Axis constructor
// sees them, with a message naming the table/axis/knot so a corrupt store
// file can be triaged from the exception alone.
void check_axis_knots(const std::string& table_name,
                      const std::string& axis_name,
                      const std::vector<double>& knots) {
    const std::string where = "read_table: table '" + table_name +
                              "' axis '" + axis_name + "' ";
    for (std::size_t i = 0; i < knots.size(); ++i) {
        require(std::isfinite(knots[i]),
                where + "knot " + std::to_string(i) + " is not finite");
        require(i == 0 || knots[i] > knots[i - 1],
                where + "is not strictly increasing at knot " +
                    std::to_string(i));
    }
}

}  // namespace

void write_table(std::ostream& os, const NdTable& table) {
    os << "table " << (table.name().empty() ? "_" : table.name()) << ' '
       << table.rank() << '\n';
    for (const Axis& ax : table.axes()) {
        os << "axis " << (ax.name().empty() ? "_" : ax.name()) << ' '
           << ax.size();
        for (double k : ax.knots()) {
            os << ' ';
            write_exact_double(os, k);
        }
        os << '\n';
    }
    os << "values " << table.value_count() << '\n';
    std::size_t col = 0;
    for (double v : table.values()) {
        write_exact_double(os, v);
        os << ((++col % 8 == 0) ? '\n' : ' ');
    }
    if (col % 8 != 0) os << '\n';
    os << "end\n";
}

NdTable read_table(std::istream& is) {
    std::string keyword;
    std::string name;
    std::size_t rank = 0;
    require(static_cast<bool>(is >> keyword >> name >> rank) && keyword == "table",
            "read_table: expected 'table <name> <rank>'");
    if (name == "_") name.clear();

    std::vector<Axis> axes;
    axes.reserve(rank);
    for (std::size_t d = 0; d < rank; ++d) {
        std::string axis_name;
        std::size_t n = 0;
        require(static_cast<bool>(is >> keyword >> axis_name >> n) &&
                    keyword == "axis",
                "read_table: expected axis line");
        if (axis_name == "_") axis_name.clear();
        std::vector<double> knots(n);
        for (double& k : knots)
            require(read_double(is, k), "read_table: truncated axis");
        check_axis_knots(name, axis_name, knots);
        axes.emplace_back(std::move(axis_name), std::move(knots));
    }

    std::size_t count = 0;
    require(static_cast<bool>(is >> keyword >> count) && keyword == "values",
            "read_table: expected values line");

    NdTable table(std::move(axes), std::move(name));
    require(table.value_count() == count,
            "read_table: value count does not match axes");
    std::vector<double> vals(count);
    for (std::size_t i = 0; i < count; ++i) {
        require(read_double(is, vals[i]), "read_table: truncated values");
        require(std::isfinite(vals[i]),
                "read_table: table '" + table.name() + "' value " +
                    std::to_string(i) + " is not finite");
    }

    // Write values back through the grid visitor to keep the layout private.
    std::size_t i = 0;
    table.for_each_grid_point([&](std::span<const std::size_t>,
                                  std::span<const double>, double& slot) {
        slot = vals[i++];
    });

    require(static_cast<bool>(is >> keyword) && keyword == "end",
            "read_table: expected 'end'");
    return table;
}

}  // namespace mcsm::lut
