// Plain-text serialization for NdTable, used to cache characterized models.
#ifndef MCSM_LUT_TABLE_IO_H
#define MCSM_LUT_TABLE_IO_H

#include <iosfwd>

#include "lut/ndtable.h"

namespace mcsm::lut {

// Format:
//   table <name> <rank>
//   axis <name> <n> <knot_0> ... <knot_{n-1}>     (rank lines)
//   values <count>
//   <v_0> ... <v_{count-1}>                        (whitespace separated)
//   end
// Doubles are written as C99 hexfloat literals so the round trip is
// bit-exact; the reader also accepts decimal (legacy cache files).
void write_table(std::ostream& os, const NdTable& table);

// Parses a table written by write_table. Throws ModelError on malformed
// input.
NdTable read_table(std::istream& is);

}  // namespace mcsm::lut

#endif  // MCSM_LUT_TABLE_IO_H
