#include "lut/axis.h"

#include "common/error.h"
#include "common/numeric.h"

namespace mcsm::lut {

Axis::Axis(std::string name, std::vector<double> knots)
    : name_(std::move(name)), knots_(std::move(knots)) {
    require(knots_.size() >= 2, "Axis: need at least two knots");
    for (std::size_t i = 1; i < knots_.size(); ++i)
        require(knots_[i] > knots_[i - 1], "Axis: knots must strictly increase");
}

Axis Axis::uniform(std::string name, double lo, double hi, std::size_t n) {
    return Axis(std::move(name), linspace(lo, hi, n));
}

Axis::Locate Axis::locate(double x) const {
    const std::size_t i = bracket(knots_, x);
    const double x0 = knots_[i];
    const double x1 = knots_[i + 1];
    const double u = clamp((x - x0) / (x1 - x0), 0.0, 1.0);
    return {i, u};
}

}  // namespace mcsm::lut
