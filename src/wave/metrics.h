// Timing and similarity metrics over waveforms: 50% propagation delay,
// 10-90% transition (slew) time, and the paper's RMSE (eq. (6)).
#ifndef MCSM_WAVE_METRICS_H
#define MCSM_WAVE_METRICS_H

#include <cstddef>
#include <optional>

#include "wave/waveform.h"

namespace mcsm::wave {

// Time at which w crosses frac * vdd in the given direction, at/after t_from.
std::optional<double> crossing(const Waveform& w, double vdd, double frac,
                               bool rising, double t_from = -1e300);

// 50% input-to-output propagation delay: output 50% crossing minus input 50%
// crossing. `input_rising` / `output_rising` select the edge directions.
std::optional<double> delay_50(const Waveform& input, bool input_rising,
                               const Waveform& output, bool output_rising,
                               double vdd, double t_from = -1e300);

// 10%-90% transition time of the first edge in the given direction at/after
// t_from (for falling edges this is the 90%->10% interval).
std::optional<double> slew_10_90(const Waveform& w, double vdd, bool rising,
                                 double t_from = -1e300);

// Root-mean-squared difference between two waveforms, sampled at n_samples
// uniform points over [t0, t1] (paper eq. (6)). Not normalized.
double rmse(const Waveform& a, const Waveform& b, double t0, double t1,
            std::size_t n_samples = 256);

// RMSE normalized to vdd, as reported by the paper (fraction, not percent).
double rmse_normalized(const Waveform& a, const Waveform& b, double t0,
                       double t1, double vdd, std::size_t n_samples = 256);

// Maximum absolute difference over [t0, t1], sampled at n_samples points.
double max_abs_error(const Waveform& a, const Waveform& b, double t0,
                     double t1, std::size_t n_samples = 256);

// Trapezoidal integral of the waveform over [t0, t1] (e.g. charge when the
// waveform is a current, volt-seconds when a voltage).
double integral(const Waveform& w, double t0, double t1);

// Peak excursion above `level` within [t0, t1]; zero when the waveform
// never exceeds it. With rising=false, measures the excursion below.
double peak_excursion(const Waveform& w, double level, bool above, double t0,
                      double t1);

// Width of the (first) interval within [t0, t1] where the waveform exceeds
// `level` (crosses up then back down); zero if it never does. The classic
// glitch-width metric for noise analysis.
double width_above(const Waveform& w, double level, double t0, double t1);

}  // namespace mcsm::wave

#endif  // MCSM_WAVE_METRICS_H
