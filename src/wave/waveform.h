// Piecewise-linear voltage waveform: the common currency between the SPICE
// substrate, the CSM models and the STA layer.
#ifndef MCSM_WAVE_WAVEFORM_H
#define MCSM_WAVE_WAVEFORM_H

#include <cstddef>
#include <optional>
#include <vector>

namespace mcsm::wave {

// A sampled voltage waveform v(t) with strictly increasing time points,
// interpreted as piecewise-linear between samples and constant outside the
// sampled range (held at the first / last value).
class Waveform {
public:
    Waveform() = default;
    Waveform(std::vector<double> times, std::vector<double> values);

    static Waveform constant(double value);

    std::size_t size() const { return times_.size(); }
    bool empty() const { return times_.empty(); }

    const std::vector<double>& times() const { return times_; }
    const std::vector<double>& values() const { return values_; }

    double time(std::size_t i) const { return times_[i]; }
    double value(std::size_t i) const { return values_[i]; }

    double first_time() const;
    double last_time() const;
    double first_value() const;
    double last_value() const;

    // Appends a sample; t must exceed the current last time.
    void append(double t, double v);

    // Linear interpolation; clamps to end values outside the range.
    double at(double t) const;

    // Time derivative of the piecewise-linear interpolant at t (uses the
    // segment containing t; zero outside the range).
    double slope_at(double t) const;

    // First time the waveform crosses `level` moving in the given direction
    // (rising: from below to >= level). Searches from t_from onward.
    std::optional<double> cross_time(double level, bool rising,
                                     double t_from = -1e300) const;

    // Last crossing of `level` in the given direction.
    std::optional<double> last_cross_time(double level, bool rising) const;

    // Returns a copy shifted in time by dt.
    Waveform shifted(double dt) const;

    // Returns a copy sampled at the given times (linear interpolation).
    Waveform resampled(const std::vector<double>& new_times) const;

    // Returns a copy with values mapped through v -> scale * v + offset.
    Waveform scaled(double scale, double offset = 0.0) const;

    // Minimum / maximum sample value; requires a non-empty waveform.
    double min_value() const;
    double max_value() const;

private:
    std::vector<double> times_;
    std::vector<double> values_;
};

}  // namespace mcsm::wave

#endif  // MCSM_WAVE_WAVEFORM_H
