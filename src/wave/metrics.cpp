#include "wave/metrics.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.h"

namespace mcsm::wave {

std::optional<double> crossing(const Waveform& w, double vdd, double frac,
                               bool rising, double t_from) {
    return w.cross_time(frac * vdd, rising, t_from);
}

std::optional<double> delay_50(const Waveform& input, bool input_rising,
                               const Waveform& output, bool output_rising,
                               double vdd, double t_from) {
    const auto t_in = crossing(input, vdd, 0.5, input_rising, t_from);
    if (!t_in) return std::nullopt;
    const auto t_out = crossing(output, vdd, 0.5, output_rising, *t_in);
    if (!t_out) return std::nullopt;
    return *t_out - *t_in;
}

std::optional<double> slew_10_90(const Waveform& w, double vdd, bool rising,
                                 double t_from) {
    const double lo = 0.1 * vdd;
    const double hi = 0.9 * vdd;
    if (rising) {
        const auto t_lo = w.cross_time(lo, true, t_from);
        if (!t_lo) return std::nullopt;
        const auto t_hi = w.cross_time(hi, true, *t_lo);
        if (!t_hi) return std::nullopt;
        return *t_hi - *t_lo;
    }
    const auto t_hi = w.cross_time(hi, false, t_from);
    if (!t_hi) return std::nullopt;
    const auto t_lo = w.cross_time(lo, false, *t_hi);
    if (!t_lo) return std::nullopt;
    return *t_lo - *t_hi;
}

double rmse(const Waveform& a, const Waveform& b, double t0, double t1,
            std::size_t n_samples) {
    require(t1 > t0, "rmse: t1 must exceed t0");
    require(n_samples >= 2, "rmse: need at least 2 samples");
    double acc = 0.0;
    const double step = (t1 - t0) / static_cast<double>(n_samples - 1);
    for (std::size_t k = 0; k < n_samples; ++k) {
        const double t = t0 + step * static_cast<double>(k);
        const double d = a.at(t) - b.at(t);
        acc += d * d;
    }
    return std::sqrt(acc / static_cast<double>(n_samples));
}

double rmse_normalized(const Waveform& a, const Waveform& b, double t0,
                       double t1, double vdd, std::size_t n_samples) {
    require(vdd > 0.0, "rmse_normalized: vdd must be positive");
    return rmse(a, b, t0, t1, n_samples) / vdd;
}

double integral(const Waveform& w, double t0, double t1) {
    require(t1 > t0, "integral: t1 must exceed t0");
    // Integrate segment-exactly: collect the breakpoints inside [t0, t1]
    // plus the interval ends, then apply the trapezoid rule (exact for a
    // piecewise-linear function).
    std::vector<double> ts;
    ts.push_back(t0);
    for (double t : w.times())
        if (t > t0 && t < t1) ts.push_back(t);
    ts.push_back(t1);
    double acc = 0.0;
    for (std::size_t i = 0; i + 1 < ts.size(); ++i)
        acc += 0.5 * (w.at(ts[i]) + w.at(ts[i + 1])) * (ts[i + 1] - ts[i]);
    return acc;
}

double peak_excursion(const Waveform& w, double level, bool above, double t0,
                      double t1) {
    require(t1 > t0, "peak_excursion: t1 must exceed t0");
    double peak = 0.0;
    auto consider = [&](double v) {
        const double e = above ? v - level : level - v;
        peak = std::max(peak, e);
    };
    consider(w.at(t0));
    consider(w.at(t1));
    for (std::size_t i = 0; i < w.size(); ++i) {
        if (w.time(i) > t0 && w.time(i) < t1) consider(w.value(i));
    }
    return peak;
}

double width_above(const Waveform& w, double level, double t0, double t1) {
    const auto up = w.cross_time(level, true, t0);
    if (!up || *up >= t1) return 0.0;
    const auto down = w.cross_time(level, false, *up);
    const double end = (down && *down < t1) ? *down : t1;
    return end - *up;
}

double max_abs_error(const Waveform& a, const Waveform& b, double t0,
                     double t1, std::size_t n_samples) {
    require(t1 > t0, "max_abs_error: t1 must exceed t0");
    require(n_samples >= 2, "max_abs_error: need at least 2 samples");
    double m = 0.0;
    const double step = (t1 - t0) / static_cast<double>(n_samples - 1);
    for (std::size_t k = 0; k < n_samples; ++k) {
        const double t = t0 + step * static_cast<double>(k);
        m = std::max(m, std::fabs(a.at(t) - b.at(t)));
    }
    return m;
}

}  // namespace mcsm::wave
