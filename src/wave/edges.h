// Builders for standard stimulus waveforms: saturated ramps, pulses,
// glitches, and multi-edge input histories.
#ifndef MCSM_WAVE_EDGES_H
#define MCSM_WAVE_EDGES_H

#include <vector>

#include "wave/waveform.h"

namespace mcsm::wave {

// A saturated ramp from v0 to v1: constant v0 until t_start, linear ramp of
// duration ramp_time (0-to-100%), then constant v1.
Waveform saturated_ramp(double t_start, double ramp_time, double v0, double v1);

// A single edge specification for building piecewise inputs.
struct Edge {
    double t_start = 0.0;    // when the transition begins
    double ramp_time = 0.0;  // 0-to-100% transition duration (> 0)
    double v_to = 0.0;       // value after the edge
};

// A waveform that starts at v_initial and applies the given edges in order.
// Edges must not overlap: each edge must start at or after the previous edge
// has completed.
Waveform piecewise_edges(double v_initial, const std::vector<Edge>& edges);

// A pulse: v_base -> v_peak at t_start (rise ramp_time), back to v_base at
// t_start + width (fall ramp_time). Useful for glitch stimuli.
Waveform pulse(double t_start, double width, double ramp_time, double v_base,
               double v_peak);

}  // namespace mcsm::wave

#endif  // MCSM_WAVE_EDGES_H
