#include "wave/edges.h"

#include "common/error.h"

namespace mcsm::wave {

Waveform saturated_ramp(double t_start, double ramp_time, double v0, double v1) {
    require(ramp_time > 0.0, "saturated_ramp: ramp_time must be positive");
    Waveform w;
    w.append(t_start - 1.0, v0);  // hold region well before the edge
    w.append(t_start, v0);
    w.append(t_start + ramp_time, v1);
    return w;
}

Waveform piecewise_edges(double v_initial, const std::vector<Edge>& edges) {
    Waveform w;
    double v = v_initial;
    double t_done = -1e300;
    bool first = true;
    for (const Edge& e : edges) {
        require(e.ramp_time > 0.0, "piecewise_edges: ramp_time must be positive");
        require(first || e.t_start >= t_done,
                "piecewise_edges: edges must not overlap");
        if (first) {
            w.append(e.t_start - 1.0, v);
            first = false;
        }
        if (e.t_start > w.last_time()) w.append(e.t_start, v);
        w.append(e.t_start + e.ramp_time, e.v_to);
        v = e.v_to;
        t_done = e.t_start + e.ramp_time;
    }
    if (first) return Waveform::constant(v_initial);
    return w;
}

Waveform pulse(double t_start, double width, double ramp_time, double v_base,
               double v_peak) {
    require(width > ramp_time, "pulse: width must exceed ramp_time");
    return piecewise_edges(
        v_base, {{t_start, ramp_time, v_peak},
                 {t_start + width, ramp_time, v_base}});
}

}  // namespace mcsm::wave
