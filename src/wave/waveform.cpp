#include "wave/waveform.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/numeric.h"

namespace mcsm::wave {

Waveform::Waveform(std::vector<double> times, std::vector<double> values)
    : times_(std::move(times)), values_(std::move(values)) {
    require(times_.size() == values_.size(),
            "Waveform: times/values size mismatch");
    for (std::size_t i = 1; i < times_.size(); ++i)
        require(times_[i] > times_[i - 1], "Waveform: times must increase");
}

Waveform Waveform::constant(double value) {
    return Waveform({0.0}, {value});
}

double Waveform::first_time() const {
    require(!empty(), "Waveform::first_time on empty waveform");
    return times_.front();
}

double Waveform::last_time() const {
    require(!empty(), "Waveform::last_time on empty waveform");
    return times_.back();
}

double Waveform::first_value() const {
    require(!empty(), "Waveform::first_value on empty waveform");
    return values_.front();
}

double Waveform::last_value() const {
    require(!empty(), "Waveform::last_value on empty waveform");
    return values_.back();
}

void Waveform::append(double t, double v) {
    require(times_.empty() || t > times_.back(),
            "Waveform::append: time must increase");
    times_.push_back(t);
    values_.push_back(v);
}

double Waveform::at(double t) const {
    require(!empty(), "Waveform::at on empty waveform");
    if (t <= times_.front()) return values_.front();
    if (t >= times_.back()) return values_.back();
    const std::size_t i = bracket(times_, t);
    return lerp(times_[i], values_[i], times_[i + 1], values_[i + 1], t);
}

double Waveform::slope_at(double t) const {
    require(!empty(), "Waveform::slope_at on empty waveform");
    if (times_.size() < 2 || t < times_.front() || t > times_.back()) return 0.0;
    const std::size_t i = bracket(times_, t);
    return (values_[i + 1] - values_[i]) / (times_[i + 1] - times_[i]);
}

std::optional<double> Waveform::cross_time(double level, bool rising,
                                           double t_from) const {
    for (std::size_t i = 0; i + 1 < times_.size(); ++i) {
        if (times_[i + 1] < t_from) continue;
        const double v0 = values_[i];
        const double v1 = values_[i + 1];
        const bool crosses = rising ? (v0 < level && v1 >= level)
                                    : (v0 > level && v1 <= level);
        if (!crosses) continue;
        const double tc = lerp(v0, times_[i], v1, times_[i + 1], level);
        if (tc >= t_from) return tc;
    }
    return std::nullopt;
}

std::optional<double> Waveform::last_cross_time(double level, bool rising) const {
    std::optional<double> found;
    for (std::size_t i = 0; i + 1 < times_.size(); ++i) {
        const double v0 = values_[i];
        const double v1 = values_[i + 1];
        const bool crosses = rising ? (v0 < level && v1 >= level)
                                    : (v0 > level && v1 <= level);
        if (crosses) found = lerp(v0, times_[i], v1, times_[i + 1], level);
    }
    return found;
}

Waveform Waveform::shifted(double dt) const {
    std::vector<double> t = times_;
    for (double& x : t) x += dt;
    return Waveform(std::move(t), values_);
}

Waveform Waveform::resampled(const std::vector<double>& new_times) const {
    std::vector<double> v;
    v.reserve(new_times.size());
    for (double t : new_times) v.push_back(at(t));
    return Waveform(new_times, std::move(v));
}

Waveform Waveform::scaled(double scale, double offset) const {
    std::vector<double> v = values_;
    for (double& x : v) x = scale * x + offset;
    return Waveform(times_, std::move(v));
}

double Waveform::min_value() const {
    require(!empty(), "Waveform::min_value on empty waveform");
    return *std::min_element(values_.begin(), values_.end());
}

double Waveform::max_value() const {
    require(!empty(), "Waveform::max_value on empty waveform");
    return *std::max_element(values_.begin(), values_.end());
}

}  // namespace mcsm::wave
