// Gate-level netlist for the STA layer: cell instances connected by named
// nets, with waveform-driven primary inputs.
#ifndef MCSM_STA_NETLIST_H
#define MCSM_STA_NETLIST_H

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "wave/waveform.h"

namespace mcsm::sta {

struct Instance {
    std::string name;
    std::string cell;  // cell type name in the CellLibrary
    // pin -> net name; must include every input pin and "OUT".
    std::unordered_map<std::string, std::string> conn;
};

// A sink of a net: (instance index, input pin name).
struct Sink {
    std::size_t instance;
    std::string pin;
};

class GateNetlist {
public:
    // Declares a primary input driven by the given waveform.
    void add_primary_input(const std::string& net, wave::Waveform w);

    void add_instance(Instance inst);

    // Extra lumped wire capacitance on a net (farads).
    void set_wire_cap(const std::string& net, double cap);
    double wire_cap(const std::string& net) const;

    const std::vector<Instance>& instances() const { return instances_; }
    const std::unordered_map<std::string, wave::Waveform>& primary_inputs()
        const {
        return primary_inputs_;
    }

    bool is_primary_input(const std::string& net) const;
    // The instance index driving a net; throws for primary inputs or
    // undriven nets.
    std::size_t driver_of(const std::string& net) const;
    // All (instance, pin) sinks fed by a net.
    std::vector<Sink> sinks_of(const std::string& net) const;

    // Instance evaluation order such that every instance appears after the
    // drivers of all its input nets. Throws ModelError on combinational
    // cycles or undriven nets.
    std::vector<std::size_t> topological_order() const;

private:
    std::vector<Instance> instances_;
    std::unordered_map<std::string, wave::Waveform> primary_inputs_;
    std::unordered_map<std::string, double> wire_caps_;
};

}  // namespace mcsm::sta

#endif  // MCSM_STA_NETLIST_H
