#include "sta/nldm.h"

#include <cmath>

#include "common/error.h"
#include "engine/scenarios.h"
#include "wave/edges.h"
#include "wave/metrics.h"

namespace mcsm::sta {

namespace {

// 10-90% slew of a saturated ramp is 0.8 of its 0-100% time.
double ramp_time_from_slew(double slew) { return slew / 0.8; }

}  // namespace

const NldmArc& NldmCell::arc(const std::string& pin, bool input_rising) const {
    for (const NldmArc& a : arcs)
        if (a.pin == pin && a.input_rising == input_rising) return a;
    throw ModelError("NldmCell: no arc for pin " + pin);
}

NldmLibrary::NldmLibrary(const cells::CellLibrary& lib,
                         const std::vector<std::string>& cell_names,
                         const NldmOptions& options) {
    vdd_ = lib.tech().vdd;
    const lut::Axis slew_axis("slew", options.slews);
    const lut::Axis load_axis("load", options.loads);

    for (const std::string& name : cell_names) {
        const cells::CellType& cell = lib.get(name);
        NldmCell out;
        out.cell = name;
        double cap_sum = 0.0;
        for (const cells::PinInfo& pin : cell.inputs())
            cap_sum += cell.input_cap_estimate(pin.name);
        out.pin_cap = cap_sum / static_cast<double>(cell.input_count());

        for (const cells::PinInfo& pin : cell.inputs()) {
            for (const bool input_rising : {true, false}) {
                NldmArc arc;
                arc.pin = pin.name;
                arc.input_rising = input_rising;
                arc.delay = lut::NdTable({slew_axis, load_axis},
                                         name + "." + pin.name + ".delay");
                arc.out_slew = lut::NdTable({slew_axis, load_axis},
                                            name + "." + pin.name + ".slew");

                for (std::size_t si = 0; si < options.slews.size(); ++si) {
                    for (std::size_t li = 0; li < options.loads.size(); ++li) {
                        const double slew = options.slews[si];
                        const double load = options.loads[li];
                        const double t_edge = 0.5e-9;
                        const double ramp = ramp_time_from_slew(slew);
                        const wave::Waveform in = wave::piecewise_edges(
                            input_rising ? 0.0 : vdd_,
                            {{t_edge, ramp, input_rising ? vdd_ : 0.0}});
                        engine::GoldenCell bench(
                            lib, name, {{pin.name, in}},
                            engine::LoadSpec{load, 0, ""});
                        spice::TranOptions topt;
                        topt.tstop = t_edge + ramp + 2.0e-9;
                        topt.dt = options.dt;
                        const spice::TranResult r = bench.run(topt);
                        const wave::Waveform vout =
                            r.node_waveform(bench.out_node());
                        // Inverting cells: output moves opposite the input.
                        const bool out_rising = !input_rising;
                        const auto d = wave::delay_50(in, input_rising, vout,
                                                      out_rising, vdd_);
                        const auto s =
                            wave::slew_10_90(vout, vdd_, out_rising, t_edge);
                        require(d.has_value() && s.has_value(),
                                "NldmLibrary: arc did not switch: " + name);
                        const std::size_t idx[2] = {si, li};
                        arc.delay.set_grid_value(
                            std::span<const std::size_t>(idx, 2), *d);
                        arc.out_slew.set_grid_value(
                            std::span<const std::size_t>(idx, 2), *s);
                    }
                }
                out.arcs.push_back(std::move(arc));
            }
        }
        cells_[name] = std::move(out);
    }
}

const NldmCell& NldmLibrary::cell(const std::string& name) const {
    const auto it = cells_.find(name);
    require(it != cells_.end(), "NldmLibrary: unknown cell " + name);
    return it->second;
}

std::unordered_map<std::string, NldmArrival> run_nldm_sta(
    const GateNetlist& netlist, const NldmLibrary& lib, double vdd) {
    std::unordered_map<std::string, NldmArrival> arrivals;

    // Primary inputs: measure t50/slew from the given waveforms. Constant
    // inputs (tied pins) carry no arrival.
    for (const auto& [net, w] : netlist.primary_inputs()) {
        NldmArrival a;
        const bool rising = w.last_value() > w.first_value();
        const auto t50 = wave::crossing(w, vdd, 0.5, rising);
        const auto slew = wave::slew_10_90(w, vdd, rising);
        if (t50.has_value() && slew.has_value()) {
            a.t50 = *t50;
            a.slew = *slew;
            a.rising = rising;
            a.valid = true;
        }
        arrivals[net] = a;
    }

    for (const std::size_t idx : netlist.topological_order()) {
        const Instance& inst = netlist.instances()[idx];
        const NldmCell& cell = lib.cell(inst.cell);
        const std::string& out_net = inst.conn.at("OUT");

        // Total load: sink pin caps plus wire cap.
        double load = netlist.wire_cap(out_net);
        for (const Sink& sink : netlist.sinks_of(out_net))
            load += lib.cell(netlist.instances()[sink.instance].cell).pin_cap;

        // Worst (latest) arriving switching input wins (classic STA).
        NldmArrival best;
        for (const auto& [pin, net] : inst.conn) {
            if (pin == "OUT") continue;
            const auto it = arrivals.find(net);
            if (it == arrivals.end() || !it->second.valid) continue;
            const NldmArrival& in = it->second;
            const NldmArc& arc = cell.arc(pin, in.rising);
            const double q[2] = {in.slew, load};
            const std::span<const double> qs(q, 2);
            NldmArrival out;
            out.t50 = in.t50 + arc.delay.at(qs);
            out.slew = arc.out_slew.at(qs);
            out.rising = !in.rising;
            out.valid = true;
            if (!best.valid || out.t50 > best.t50) best = out;
        }
        require(best.valid,
                "run_nldm_sta: no switching input for " + inst.name);
        arrivals[out_net] = best;
    }
    return arrivals;
}

}  // namespace mcsm::sta
