// Liberty-style export of NLDM tables: the industry exchange format for
// delay/slew tables. The subset written here (library/cell/pin/timing
// groups with table_lookup templates) is enough for downstream tools and
// for humans to diff characterization runs.
#ifndef MCSM_STA_LIBERTY_WRITER_H
#define MCSM_STA_LIBERTY_WRITER_H

#include <iosfwd>
#include <string>
#include <vector>

#include "sta/nldm.h"

namespace mcsm::sta {

struct LibertyOptions {
    std::string library_name = "mcsm130";
    double time_unit_ns = 1.0;  // times written in ns
    double cap_unit_ff = 1.0;   // capacitances written in fF
};

// Writes the given cells of the NLDM library as a Liberty-like document.
void write_liberty(std::ostream& os, const NldmLibrary& lib,
                   const std::vector<std::string>& cell_names,
                   const LibertyOptions& options = {});

}  // namespace mcsm::sta

#endif  // MCSM_STA_LIBERTY_WRITER_H
