#include "sta/wave_sta.h"

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "common/error.h"
#include "common/parallel.h"
#include "core/csm_device.h"
#include "spice/circuit.h"

namespace mcsm::sta {

using core::CsmModel;
using spice::Circuit;
using spice::SourceSpec;

WaveformSta::WaveformSta(
    const GateNetlist& netlist,
    std::unordered_map<std::string, const CsmModel*> models)
    : netlist_(&netlist), models_(std::move(models)) {
    for (const Instance& inst : netlist.instances())
        require(models_.count(inst.cell) == 1,
                "WaveformSta: no model for cell " + inst.cell);
}

namespace {

// A reusable stage circuit: driver CSM device + receiver caps + wire cap,
// with one programmable source per driver model pin. Stages of the same
// (cell, fanout signature) differ only in their input waveforms, so one
// prepared circuit per signature per worker serves them all with source
// re-programming — the node/device construction, pattern discovery, and
// workspace allocation happen once.
struct StageFixture {
    Circuit circuit;
    std::vector<spice::VSource*> pin_sources;  // model.pins order
    int out_node = -1;
    bool used = false;
};

// Signature of a stage: driver cell plus everything load-side that shapes
// the circuit (wire cap bits, ordered receiver (cell, pin) list).
std::string stage_signature(const GateNetlist& netlist, const Instance& inst,
                            double wire_cap) {
    std::string key = inst.cell;
    char buf[24];
    std::snprintf(buf, sizeof(buf), "|%a", wire_cap);
    key += buf;
    for (const Sink& sink : netlist.sinks_of(inst.conn.at("OUT"))) {
        const Instance& s_inst = netlist.instances()[sink.instance];
        key += '|';
        key += s_inst.cell;
        key += ':';
        key += sink.pin;
    }
    return key;
}

}  // namespace

std::unordered_map<std::string, wave::Waveform> WaveformSta::run(
    const WaveStaOptions& options) const {
    std::unordered_map<std::string, wave::Waveform> nets;
    for (const auto& [net, w] : netlist_->primary_inputs()) nets[net] = w;

    // Builds the stage circuit for `inst` (sources carry placeholder DC
    // drives until a use programs them).
    auto build_fixture = [&](const Instance& inst) -> StageFixture {
        const CsmModel& model = *models_.at(inst.cell);
        const std::string& out_net = inst.conn.at("OUT");

        StageFixture fx;
        std::vector<int> pin_nodes;
        for (const std::string& pin : model.pins) {
            const int n = fx.circuit.node("in_" + pin);
            pin_nodes.push_back(n);
            fx.circuit.add_vsource("V" + pin, n, Circuit::kGround,
                                   SourceSpec::dc(0.0));
        }
        for (const std::string& pin : model.pins)
            fx.pin_sources.push_back(&fx.circuit.vsource("V" + pin));
        std::vector<int> internal_nodes;
        for (const std::string& formal : model.internals)
            internal_nodes.push_back(fx.circuit.node("int_" + formal));
        fx.out_node = fx.circuit.node("out");
        fx.circuit.add_device<core::CsmCellDevice>("DRV", model, pin_nodes,
                                                   internal_nodes, fx.out_node,
                                                   /*stamp_input_caps=*/false);

        const double wire = netlist_->wire_cap(out_net);
        if (wire > 0.0)
            fx.circuit.add_capacitor("CW", fx.out_node, Circuit::kGround,
                                     wire);
        int sink_idx = 0;
        for (const Sink& sink : netlist_->sinks_of(out_net)) {
            const Instance& s_inst = netlist_->instances()[sink.instance];
            const CsmModel& s_model = *models_.at(s_inst.cell);
            const auto pin_it = std::find(s_model.pins.begin(),
                                          s_model.pins.end(), sink.pin);
            require(pin_it != s_model.pins.end(),
                    "WaveformSta: sink pin not in receiver model: " +
                        sink.pin);
            const auto p =
                static_cast<std::size_t>(pin_it - s_model.pins.begin());
            fx.circuit.add_device<core::LutCapDevice>(
                "CSINK" + std::to_string(sink_idx++), s_model.c_in[p],
                fx.out_node);
        }
        return fx;
    };

    // Simulates one stage against the already-evaluated input nets through
    // a (cached) fixture; returns the output-net waveform.
    auto run_stage =
        [&](const Instance& inst,
            std::unordered_map<std::string, StageFixture>& cache)
        -> wave::Waveform {
        const CsmModel& model = *models_.at(inst.cell);
        const std::string key =
            stage_signature(*netlist_, inst,
                            netlist_->wire_cap(inst.conn.at("OUT")));
        auto it = cache.find(key);
        if (it == cache.end())
            it = cache.emplace(key, build_fixture(inst)).first;
        StageFixture& fx = it->second;

        for (std::size_t p = 0; p < model.pins.size(); ++p) {
            const auto cit = inst.conn.find(model.pins[p]);
            // The model itself holds non-controlling values only for its
            // fixed pins, so an unconnected switching pin is a netlist
            // error.
            require(cit != inst.conn.end(),
                    "WaveformSta: instance " + inst.name +
                        " leaves model pin " + model.pins[p] +
                        " unconnected");
            const auto nit = nets.find(cit->second);
            require(nit != nets.end(),
                    "WaveformSta: net evaluated out of order: " +
                        cit->second);
            fx.pin_sources[p]->set_spec(SourceSpec::pwl(nit->second));
        }

        if (fx.used) {
            // Drop the frozen pivot order so a reused fixture solves bit-
            // identically to a freshly built one: the LU re-pivots from
            // this stage's own first Jacobian instead of inheriting the
            // order from whatever stage this worker ran before.
            fx.circuit.workspace().invalidate_factorization();
        }
        fx.used = true;

        spice::TranOptions topt;
        topt.tstop = options.tstop;
        topt.dt = options.dt;
        const spice::TranResult result = spice::solve_tran(fx.circuit, topt);
        return result.node_waveform(fx.out_node);
    };

    // Group the topological order into dependency levels: a stage's level
    // is one past the deepest driver feeding it (primary inputs sit at 0).
    // Stages within a level are independent and fan out over the thread
    // pool; `nets` is merged between levels only, so workers read it
    // concurrently but never write it.
    const std::vector<std::size_t> topo = netlist_->topological_order();
    std::unordered_map<std::string, std::size_t> net_level;
    for (const auto& [net, w] : netlist_->primary_inputs())
        net_level[net] = 0;

    std::vector<std::vector<std::size_t>> levels;
    for (const std::size_t idx : topo) {
        const Instance& inst = netlist_->instances()[idx];
        std::size_t level = 0;
        for (const auto& [pin, net] : inst.conn) {
            if (pin == "OUT") continue;
            const auto it = net_level.find(net);
            if (it != net_level.end()) level = std::max(level, it->second);
        }
        net_level[inst.conn.at("OUT")] = level + 1;
        if (levels.size() <= level) levels.resize(level + 1);
        levels[level].push_back(idx);
    }

    // Per-worker fixture caches persist across levels (worker w always uses
    // caches[w]); stages are claimed dynamically, which is safe because a
    // reused fixture produces bit-identical results to a fresh build.
    const std::size_t max_workers =
        ThreadPool::on_worker_thread() ? 1 : resolve_threads(options.threads);
    std::vector<std::unordered_map<std::string, StageFixture>> caches(
        std::max<std::size_t>(1, max_workers));

    for (const std::vector<std::size_t>& level : levels) {
        std::vector<wave::Waveform> outs(level.size());
        const std::size_t n_workers = std::min(max_workers, level.size());
        if (n_workers <= 1) {
            for (std::size_t i = 0; i < level.size(); ++i)
                outs[i] =
                    run_stage(netlist_->instances()[level[i]], caches[0]);
        } else {
            std::atomic<std::size_t> next{0};
            parallel_workers(n_workers, [&](std::size_t w) {
                for (std::size_t i =
                         next.fetch_add(1, std::memory_order_relaxed);
                     i < level.size();
                     i = next.fetch_add(1, std::memory_order_relaxed))
                    outs[i] = run_stage(netlist_->instances()[level[i]],
                                        caches[w]);
            });
        }
        for (std::size_t i = 0; i < level.size(); ++i) {
            const Instance& inst = netlist_->instances()[level[i]];
            nets[inst.conn.at("OUT")] = std::move(outs[i]);
        }
    }
    return nets;
}

}  // namespace mcsm::sta
