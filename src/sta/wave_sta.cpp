#include "sta/wave_sta.h"

#include <algorithm>

#include "common/error.h"
#include "common/parallel.h"
#include "core/csm_device.h"
#include "spice/circuit.h"

namespace mcsm::sta {

using core::CsmModel;
using spice::Circuit;
using spice::SourceSpec;

WaveformSta::WaveformSta(
    const GateNetlist& netlist,
    std::unordered_map<std::string, const CsmModel*> models)
    : netlist_(&netlist), models_(std::move(models)) {
    for (const Instance& inst : netlist.instances())
        require(models_.count(inst.cell) == 1,
                "WaveformSta: no model for cell " + inst.cell);
}

std::unordered_map<std::string, wave::Waveform> WaveformSta::run(
    const WaveStaOptions& options) const {
    std::unordered_map<std::string, wave::Waveform> nets;
    for (const auto& [net, w] : netlist_->primary_inputs()) nets[net] = w;

    // Simulates one stage against the already-evaluated input nets; returns
    // the output-net waveform. Builds a private stage circuit (with its own
    // solver workspace), so stages with ready inputs can run concurrently.
    auto run_stage = [&](const Instance& inst) -> wave::Waveform {
        const CsmModel& model = *models_.at(inst.cell);
        const std::string& out_net = inst.conn.at("OUT");

        // Stage circuit: input sources -> CSM device -> receiver caps.
        Circuit circuit;
        std::vector<int> pin_nodes;
        for (const std::string& pin : model.pins) {
            const int n = circuit.node("in_" + pin);
            pin_nodes.push_back(n);
            const auto cit = inst.conn.find(pin);
            if (cit != inst.conn.end()) {
                const auto nit = nets.find(cit->second);
                require(nit != nets.end(),
                        "WaveformSta: net evaluated out of order: " +
                            cit->second);
                circuit.add_vsource("V" + pin, n, Circuit::kGround,
                                    SourceSpec::pwl(nit->second));
            } else {
                // Unconnected model pin: park at the non-controlling level
                // recorded... the model itself holds non-controlling values
                // only for its fixed pins, so an unconnected switching pin
                // is a netlist error.
                throw ModelError("WaveformSta: instance " + inst.name +
                                 " leaves model pin " + pin + " unconnected");
            }
        }
        std::vector<int> internal_nodes;
        for (const std::string& formal : model.internals)
            internal_nodes.push_back(circuit.node("int_" + formal));
        const int out_node = circuit.node("out");
        circuit.add_device<core::CsmCellDevice>("DRV", model, pin_nodes,
                                                internal_nodes, out_node,
                                                /*stamp_input_caps=*/false);

        const double wire = netlist_->wire_cap(out_net);
        if (wire > 0.0)
            circuit.add_capacitor("CW", out_node, Circuit::kGround, wire);
        int sink_idx = 0;
        for (const Sink& sink : netlist_->sinks_of(out_net)) {
            const Instance& s_inst = netlist_->instances()[sink.instance];
            const CsmModel& s_model = *models_.at(s_inst.cell);
            const auto pin_it = std::find(s_model.pins.begin(),
                                          s_model.pins.end(), sink.pin);
            require(pin_it != s_model.pins.end(),
                    "WaveformSta: sink pin not in receiver model: " +
                        sink.pin);
            const auto p =
                static_cast<std::size_t>(pin_it - s_model.pins.begin());
            circuit.add_device<core::LutCapDevice>(
                "CSINK" + std::to_string(sink_idx++), s_model.c_in[p],
                out_node);
        }

        spice::TranOptions topt;
        topt.tstop = options.tstop;
        topt.dt = options.dt;
        const spice::TranResult result = spice::solve_tran(circuit, topt);
        return result.node_waveform(out_node);
    };

    // Group the topological order into dependency levels: a stage's level
    // is one past the deepest driver feeding it (primary inputs sit at 0).
    // Stages within a level are independent and fan out over the thread
    // pool; `nets` is merged between levels only, so workers read it
    // concurrently but never write it.
    const std::vector<std::size_t> topo = netlist_->topological_order();
    std::unordered_map<std::string, std::size_t> net_level;
    for (const auto& [net, w] : netlist_->primary_inputs())
        net_level[net] = 0;

    std::vector<std::vector<std::size_t>> levels;
    for (const std::size_t idx : topo) {
        const Instance& inst = netlist_->instances()[idx];
        std::size_t level = 0;
        for (const auto& [pin, net] : inst.conn) {
            if (pin == "OUT") continue;
            const auto it = net_level.find(net);
            if (it != net_level.end()) level = std::max(level, it->second);
        }
        net_level[inst.conn.at("OUT")] = level + 1;
        if (levels.size() <= level) levels.resize(level + 1);
        levels[level].push_back(idx);
    }

    for (const std::vector<std::size_t>& level : levels) {
        std::vector<wave::Waveform> outs(level.size());
        parallel_for(
            level.size(),
            [&](std::size_t i) {
                outs[i] = run_stage(netlist_->instances()[level[i]]);
            },
            options.threads);
        for (std::size_t i = 0; i < level.size(); ++i) {
            const Instance& inst = netlist_->instances()[level[i]];
            nets[inst.conn.at("OUT")] = std::move(outs[i]);
        }
    }
    return nets;
}

}  // namespace mcsm::sta
