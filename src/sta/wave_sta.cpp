#include "sta/wave_sta.h"

#include <algorithm>

#include "common/error.h"
#include "core/csm_device.h"
#include "spice/circuit.h"

namespace mcsm::sta {

using core::CsmModel;
using spice::Circuit;
using spice::SourceSpec;

WaveformSta::WaveformSta(
    const GateNetlist& netlist,
    std::unordered_map<std::string, const CsmModel*> models)
    : netlist_(&netlist), models_(std::move(models)) {
    for (const Instance& inst : netlist.instances())
        require(models_.count(inst.cell) == 1,
                "WaveformSta: no model for cell " + inst.cell);
}

std::unordered_map<std::string, wave::Waveform> WaveformSta::run(
    const WaveStaOptions& options) const {
    std::unordered_map<std::string, wave::Waveform> nets;
    for (const auto& [net, w] : netlist_->primary_inputs()) nets[net] = w;

    for (const std::size_t idx : netlist_->topological_order()) {
        const Instance& inst = netlist_->instances()[idx];
        const CsmModel& model = *models_.at(inst.cell);
        const std::string& out_net = inst.conn.at("OUT");

        // Stage circuit: input sources -> CSM device -> receiver caps.
        Circuit circuit;
        std::vector<int> pin_nodes;
        for (const std::string& pin : model.pins) {
            const int n = circuit.node("in_" + pin);
            pin_nodes.push_back(n);
            const auto cit = inst.conn.find(pin);
            if (cit != inst.conn.end()) {
                const auto nit = nets.find(cit->second);
                require(nit != nets.end(),
                        "WaveformSta: net evaluated out of order: " +
                            cit->second);
                circuit.add_vsource("V" + pin, n, Circuit::kGround,
                                    SourceSpec::pwl(nit->second));
            } else {
                // Unconnected model pin: park at the non-controlling level
                // recorded... the model itself holds non-controlling values
                // only for its fixed pins, so an unconnected switching pin
                // is a netlist error.
                throw ModelError("WaveformSta: instance " + inst.name +
                                 " leaves model pin " + pin + " unconnected");
            }
        }
        std::vector<int> internal_nodes;
        for (const std::string& formal : model.internals)
            internal_nodes.push_back(circuit.node("int_" + formal));
        const int out_node = circuit.node("out");
        circuit.add_device<core::CsmCellDevice>("DRV", model, pin_nodes,
                                                internal_nodes, out_node,
                                                /*stamp_input_caps=*/false);

        const double wire = netlist_->wire_cap(out_net);
        if (wire > 0.0)
            circuit.add_capacitor("CW", out_node, Circuit::kGround, wire);
        int sink_idx = 0;
        for (const Sink& sink : netlist_->sinks_of(out_net)) {
            const Instance& s_inst = netlist_->instances()[sink.instance];
            const CsmModel& s_model = *models_.at(s_inst.cell);
            const auto pin_it = std::find(s_model.pins.begin(),
                                          s_model.pins.end(), sink.pin);
            require(pin_it != s_model.pins.end(),
                    "WaveformSta: sink pin not in receiver model: " +
                        sink.pin);
            const auto p =
                static_cast<std::size_t>(pin_it - s_model.pins.begin());
            circuit.add_device<core::LutCapDevice>(
                "CSINK" + std::to_string(sink_idx++), s_model.c_in[p],
                out_node);
        }

        spice::TranOptions topt;
        topt.tstop = options.tstop;
        topt.dt = options.dt;
        const spice::TranResult result = spice::solve_tran(circuit, topt);
        nets[out_net] = result.node_waveform(out_node);
    }
    return nets;
}

}  // namespace mcsm::sta
