// The "voltage-based method" the paper argues against: classic NLDM
// delay/slew tables indexed by (input slew, load capacitance), characterized
// per timing arc with saturated-ramp inputs on the golden substrate, and a
// saturated-ramp STA propagation engine on top.
#ifndef MCSM_STA_NLDM_H
#define MCSM_STA_NLDM_H

#include <string>
#include <unordered_map>
#include <vector>

#include "cells/library.h"
#include "lut/ndtable.h"
#include "sta/netlist.h"

namespace mcsm::sta {

// One timing arc: input pin edge -> output edge, for an inverting cell.
struct NldmArc {
    std::string pin;
    bool input_rising = true;  // output direction is the inverse
    lut::NdTable delay;        // axes [input slew (10-90%), load cap]
    lut::NdTable out_slew;
};

struct NldmCell {
    std::string cell;
    double pin_cap = 0.0;  // average input pin capacitance [F]
    std::vector<NldmArc> arcs;

    const NldmArc& arc(const std::string& pin, bool input_rising) const;
};

struct NldmOptions {
    std::vector<double> slews{20e-12, 50e-12, 100e-12, 200e-12, 400e-12};
    std::vector<double> loads{1e-15, 2e-15, 4e-15, 8e-15, 16e-15, 32e-15};
    double dt = 1e-12;
};

class NldmLibrary {
public:
    // Characterizes every cell in `cell_names` (inverting single-output
    // cells; the non-switching pins are held at non-controlling values).
    NldmLibrary(const cells::CellLibrary& lib,
                const std::vector<std::string>& cell_names,
                const NldmOptions& options = {});

    const NldmCell& cell(const std::string& name) const;
    double vdd() const { return vdd_; }

private:
    std::unordered_map<std::string, NldmCell> cells_;
    double vdd_ = 0.0;
};

// Arrival-time/slew record propagated by the NLDM engine.
struct NldmArrival {
    double t50 = 0.0;    // 50% crossing time
    double slew = 0.0;   // 10-90% transition time
    bool rising = true;  // edge direction
    bool valid = false;
};

// Classic STA sweep: saturated ramps only. For each instance the worst
// (latest) input arrival defines the output arrival. Returns per-net
// arrivals keyed by net name.
std::unordered_map<std::string, NldmArrival> run_nldm_sta(
    const GateNetlist& netlist, const NldmLibrary& lib, double vdd);

}  // namespace mcsm::sta

#endif  // MCSM_STA_NLDM_H
