// Waveform-propagation STA using CSM cell models: every stage is simulated
// as a small CSM circuit (driver model + receiver input caps + wire cap) and
// the full output waveform - not just delay/slew - is handed to the next
// stage. This is what makes the CSM approach robust to noisy and
// multiple-input-switching waveforms.
#ifndef MCSM_STA_WAVE_STA_H
#define MCSM_STA_WAVE_STA_H

#include <string>
#include <unordered_map>

#include "core/model.h"
#include "sta/netlist.h"
#include "spice/tran_solver.h"

namespace mcsm::sta {

struct WaveStaOptions {
    double tstop = 5e-9;
    double dt = 1e-12;
    // Worker threads for evaluating independent stages of one dependency
    // level concurrently (0: all cores, see MCSM_THREADS). Each stage runs
    // a private circuit + solver workspace; results are thread-count
    // independent.
    std::size_t threads = 0;
};

class WaveformSta {
public:
    // `models` maps cell type name -> characterized CSM model. Each model's
    // switching pins must cover every connected input pin of instances of
    // that cell (remaining model pins are driven with their non-controlling
    // constants).
    WaveformSta(const GateNetlist& netlist,
                std::unordered_map<std::string, const core::CsmModel*> models);

    // Simulates every stage in topological order; returns net -> waveform
    // (primary inputs included verbatim).
    std::unordered_map<std::string, wave::Waveform> run(
        const WaveStaOptions& options = {}) const;

private:
    const GateNetlist* netlist_;
    std::unordered_map<std::string, const core::CsmModel*> models_;
};

}  // namespace mcsm::sta

#endif  // MCSM_STA_WAVE_STA_H
