#include "sta/netlist.h"

#include <algorithm>

#include "common/error.h"

namespace mcsm::sta {

void GateNetlist::add_primary_input(const std::string& net, wave::Waveform w) {
    require(primary_inputs_.find(net) == primary_inputs_.end(),
            "GateNetlist: duplicate primary input " + net);
    primary_inputs_[net] = std::move(w);
}

void GateNetlist::add_instance(Instance inst) {
    require(inst.conn.count("OUT") == 1,
            "GateNetlist: instance must connect OUT");
    instances_.push_back(std::move(inst));
}

void GateNetlist::set_wire_cap(const std::string& net, double cap) {
    require(cap >= 0.0, "GateNetlist: negative wire cap");
    wire_caps_[net] = cap;
}

double GateNetlist::wire_cap(const std::string& net) const {
    const auto it = wire_caps_.find(net);
    return it == wire_caps_.end() ? 0.0 : it->second;
}

bool GateNetlist::is_primary_input(const std::string& net) const {
    return primary_inputs_.find(net) != primary_inputs_.end();
}

std::size_t GateNetlist::driver_of(const std::string& net) const {
    for (std::size_t i = 0; i < instances_.size(); ++i) {
        const auto it = instances_[i].conn.find("OUT");
        if (it != instances_[i].conn.end() && it->second == net) return i;
    }
    throw ModelError("GateNetlist: net has no cell driver: " + net);
}

std::vector<Sink> GateNetlist::sinks_of(const std::string& net) const {
    std::vector<Sink> sinks;
    for (std::size_t i = 0; i < instances_.size(); ++i) {
        for (const auto& [pin, n] : instances_[i].conn) {
            if (pin != "OUT" && n == net) sinks.push_back({i, pin});
        }
    }
    return sinks;
}

std::vector<std::size_t> GateNetlist::topological_order() const {
    const std::size_t n = instances_.size();
    std::vector<int> pending(n, 0);
    // pending[i] = number of input nets of i not yet resolved.
    std::vector<std::vector<std::size_t>> dependents(n);
    std::vector<std::size_t> ready;

    for (std::size_t i = 0; i < n; ++i) {
        for (const auto& [pin, net] : instances_[i].conn) {
            if (pin == "OUT") continue;
            if (is_primary_input(net)) continue;
            const std::size_t drv = driver_of(net);
            ++pending[i];
            dependents[drv].push_back(i);
        }
        if (pending[i] == 0) ready.push_back(i);
    }

    std::vector<std::size_t> order;
    order.reserve(n);
    while (!ready.empty()) {
        const std::size_t i = ready.back();
        ready.pop_back();
        order.push_back(i);
        for (const std::size_t dep : dependents[i]) {
            if (--pending[dep] == 0) ready.push_back(dep);
        }
    }
    require(order.size() == n,
            "GateNetlist: combinational cycle detected");
    return order;
}

}  // namespace mcsm::sta
