#include "sta/liberty_writer.h"

#include <iomanip>
#include <ostream>

#include "common/error.h"

namespace mcsm::sta {

namespace {

void write_values_list(std::ostream& os, const lut::NdTable& t, double scale,
                       const char* indent) {
    const std::size_t rows = t.axis(0).size();
    const std::size_t cols = t.axis(1).size();
    os << indent << "values ( \\\n";
    for (std::size_t r = 0; r < rows; ++r) {
        os << indent << "  \"";
        for (std::size_t c = 0; c < cols; ++c) {
            const std::size_t idx[2] = {r, c};
            os << std::setprecision(6)
               << t.grid_value(std::span<const std::size_t>(idx, 2)) * scale;
            if (c + 1 < cols) os << ", ";
        }
        os << "\"" << (r + 1 < rows ? ", \\" : " \\") << "\n";
    }
    os << indent << ");\n";
}

void write_axis_list(std::ostream& os, const char* key,
                     const std::vector<double>& knots, double scale,
                     const char* indent) {
    os << indent << key << " (\"";
    for (std::size_t i = 0; i < knots.size(); ++i) {
        os << std::setprecision(6) << knots[i] * scale;
        if (i + 1 < knots.size()) os << ", ";
    }
    os << "\");\n";
}

}  // namespace

void write_liberty(std::ostream& os, const NldmLibrary& lib,
                   const std::vector<std::string>& cell_names,
                   const LibertyOptions& options) {
    require(!cell_names.empty(), "write_liberty: no cells");
    const double t_scale = 1e9 / options.time_unit_ns;
    const double c_scale = 1e15 / options.cap_unit_ff;

    os << "library (" << options.library_name << ") {\n";
    os << "  time_unit : \"1ns\";\n";
    os << "  capacitive_load_unit (1, ff);\n";
    os << "  delay_model : table_lookup;\n";

    // One shared template per distinct table shape (all arcs share axes by
    // construction, so write the first arc's template).
    const NldmCell& first = lib.cell(cell_names.front());
    require(!first.arcs.empty(), "write_liberty: cell has no arcs");
    const lut::NdTable& proto = first.arcs.front().delay;
    os << "  lu_table_template (delay_template) {\n";
    os << "    variable_1 : input_net_transition;\n";
    os << "    variable_2 : total_output_net_capacitance;\n";
    write_axis_list(os, "index_1", proto.axis(0).knots(), t_scale, "    ");
    write_axis_list(os, "index_2", proto.axis(1).knots(), c_scale, "    ");
    os << "  }\n";

    for (const std::string& name : cell_names) {
        const NldmCell& cell = lib.cell(name);
        os << "  cell (" << name << ") {\n";
        // Input pins (collect distinct arc pins).
        std::vector<std::string> pins;
        for (const NldmArc& arc : cell.arcs)
            if (std::find(pins.begin(), pins.end(), arc.pin) == pins.end())
                pins.push_back(arc.pin);
        for (const std::string& pin : pins) {
            os << "    pin (" << pin << ") {\n";
            os << "      direction : input;\n";
            os << "      capacitance : " << std::setprecision(6)
               << cell.pin_cap * c_scale << ";\n";
            os << "    }\n";
        }
        os << "    pin (OUT) {\n";
        os << "      direction : output;\n";
        for (const std::string& pin : pins) {
            for (const bool rising : {true, false}) {
                const NldmArc& arc = cell.arc(pin, rising);
                os << "      timing () {\n";
                os << "        related_pin : \"" << pin << "\";\n";
                // Inverting arcs: rising input causes falling output.
                os << "        timing_sense : negative_unate;\n";
                const char* delay_key =
                    rising ? "cell_fall" : "cell_rise";
                const char* slew_key =
                    rising ? "fall_transition" : "rise_transition";
                os << "        " << delay_key << " (delay_template) {\n";
                write_values_list(os, arc.delay, t_scale, "          ");
                os << "        }\n";
                os << "        " << slew_key << " (delay_template) {\n";
                write_values_list(os, arc.out_slew, t_scale, "          ");
                os << "        }\n";
                os << "      }\n";
            }
        }
        os << "    }\n";
        os << "  }\n";
    }
    os << "}\n";
}

}  // namespace mcsm::sta
