// Flattens a gate-level netlist to transistor level and simulates it in one
// transient - the golden reference for the STA engines.
#ifndef MCSM_STA_GOLDEN_FLAT_H
#define MCSM_STA_GOLDEN_FLAT_H

#include <string>
#include <unordered_map>

#include "cells/library.h"
#include "spice/tran_solver.h"
#include "sta/netlist.h"

namespace mcsm::sta {

// Builds the flat circuit and runs it; returns net -> waveform for every
// net in the gate netlist (primary inputs included).
std::unordered_map<std::string, wave::Waveform> run_golden_flat(
    const GateNetlist& netlist, const cells::CellLibrary& lib, double tstop,
    double dt = 1e-12);

}  // namespace mcsm::sta

#endif  // MCSM_STA_GOLDEN_FLAT_H
