#include "sta/golden_flat.h"

#include "common/error.h"
#include "spice/circuit.h"

namespace mcsm::sta {

using spice::Circuit;
using spice::SourceSpec;

std::unordered_map<std::string, wave::Waveform> run_golden_flat(
    const GateNetlist& netlist, const cells::CellLibrary& lib, double tstop,
    double dt) {
    Circuit circuit;
    const int vdd_node = circuit.node("vdd");
    circuit.add_vsource("VDD", vdd_node, Circuit::kGround,
                        SourceSpec::dc(lib.tech().vdd));

    for (const auto& [net, w] : netlist.primary_inputs()) {
        circuit.add_vsource("V_" + net, circuit.node(net), Circuit::kGround,
                            SourceSpec::pwl(w));
    }

    for (const Instance& inst : netlist.instances()) {
        const cells::CellType& cell = lib.get(inst.cell);
        std::unordered_map<std::string, int> conn;
        conn[cells::kVdd] = vdd_node;
        conn[cells::kGnd] = Circuit::kGround;
        conn[cells::kOut] = circuit.node(inst.conn.at("OUT"));
        for (const cells::PinInfo& pin : cell.inputs()) {
            const auto it = inst.conn.find(pin.name);
            if (it != inst.conn.end()) {
                conn[pin.name] = circuit.node(it->second);
            } else {
                // Unconnected input: tie to its non-controlling rail.
                conn[pin.name] = pin.non_controlling > 0.0
                                     ? vdd_node
                                     : Circuit::kGround;
            }
        }
        cell.instantiate(circuit, inst.name, conn);
    }

    // Wire caps.
    for (const Instance& inst : netlist.instances()) {
        const std::string& net = inst.conn.at("OUT");
        const double cap = netlist.wire_cap(net);
        if (cap > 0.0)
            circuit.add_capacitor("CW_" + net, circuit.node(net),
                                  Circuit::kGround, cap);
    }

    spice::TranOptions topt;
    topt.tstop = tstop;
    topt.dt = dt;
    const spice::TranResult result = spice::solve_tran(circuit, topt);

    std::unordered_map<std::string, wave::Waveform> nets;
    for (const auto& [net, w] : netlist.primary_inputs()) nets[net] = w;
    for (const Instance& inst : netlist.instances()) {
        const std::string& net = inst.conn.at("OUT");
        nets[net] = result.node_waveform(circuit.node_id(net));
    }
    return nets;
}

}  // namespace mcsm::sta
