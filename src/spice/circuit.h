// Netlist container: named nodes plus an owned list of devices.
#ifndef MCSM_SPICE_CIRCUIT_H
#define MCSM_SPICE_CIRCUIT_H

#include <cstddef>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/error.h"
#include "spice/device.h"
#include "spice/linear_devices.h"
#include "spice/mosfet.h"
#include "spice/solver_workspace.h"

namespace mcsm::spice {

class Circuit {
public:
    Circuit();

    Circuit(const Circuit&) = delete;
    Circuit& operator=(const Circuit&) = delete;
    Circuit(Circuit&&) = default;
    Circuit& operator=(Circuit&&) = default;

    // --- nodes -----------------------------------------------------------
    static constexpr int kGround = 0;

    // Returns the id for `name`, creating the node on first use.
    int node(const std::string& name);
    bool has_node(const std::string& name) const;
    int node_id(const std::string& name) const;  // throws if missing
    const std::string& node_name(int id) const;
    int node_count() const { return static_cast<int>(node_names_.size()); }

    // --- devices ---------------------------------------------------------
    template <typename D, typename... Args>
    D& add_device(Args&&... args) {
        auto dev = std::make_unique<D>(std::forward<Args>(args)...);
        D& ref = *dev;
        require(device_index_.find(ref.name()) == device_index_.end(),
                "Circuit: duplicate device name");
        device_index_[ref.name()] = devices_.size();
        devices_.push_back(std::move(dev));
        prepared_ = false;
        return ref;
    }

    Resistor& add_resistor(const std::string& name, int a, int b, double r) {
        return add_device<Resistor>(name, a, b, r);
    }
    Capacitor& add_capacitor(const std::string& name, int a, int b, double c) {
        return add_device<Capacitor>(name, a, b, c);
    }
    VSource& add_vsource(const std::string& name, int p, int m,
                         SourceSpec spec) {
        return add_device<VSource>(name, p, m, std::move(spec));
    }
    ISource& add_isource(const std::string& name, int p, int m,
                         SourceSpec spec) {
        return add_device<ISource>(name, p, m, std::move(spec));
    }
    Mosfet& add_mosfet(const std::string& name, int d, int g, int s, int b,
                       const MosParams& params, double w, double l) {
        return add_device<Mosfet>(name, d, g, s, b, params, w, l);
    }

    Device* find_device(const std::string& name);
    const Device* find_device(const std::string& name) const;
    // Typed lookup; throws ModelError when the name or type does not match.
    VSource& vsource(const std::string& name);

    const std::vector<std::unique_ptr<Device>>& devices() const {
        return devices_;
    }

    // --- solver support ----------------------------------------------------
    // Assigns branch/state indices, computes the MNA sparsity pattern from
    // the device incidence, and (re)builds the persistent SolverWorkspace.
    // Safe to call repeatedly; re-runs after any device was added.
    void prepare();
    int branch_total() const { return branch_total_; }
    int state_total() const { return state_total_; }
    // Branch index of a voltage source (for current measurement).
    int branch_of(const std::string& vsource_name) const;

    // The persistent per-topology workspace (valid after prepare()).
    SolverWorkspace& workspace();
    // Selects the backend used when the workspace is (re)built; switching
    // invalidates the current workspace. Default: default_solver_backend().
    void set_solver_backend(SolverBackend backend);
    SolverBackend solver_backend() const { return backend_; }

private:
    std::vector<std::string> node_names_;
    std::unordered_map<std::string, int> node_index_;
    std::vector<std::unique_ptr<Device>> devices_;
    std::unordered_map<std::string, std::size_t> device_index_;
    bool prepared_ = false;
    int branch_total_ = 0;
    int state_total_ = 0;
    SolverBackend backend_ = default_solver_backend();
    std::unique_ptr<SolverWorkspace> workspace_;
};

}  // namespace mcsm::spice

#endif  // MCSM_SPICE_CIRCUIT_H
