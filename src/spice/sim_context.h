// Per-solve context handed to devices while stamping companion models.
#ifndef MCSM_SPICE_SIM_CONTEXT_H
#define MCSM_SPICE_SIM_CONTEXT_H

#include <cstddef>
#include <vector>

namespace mcsm::spice {

// Integration method for the transient companion models.
enum class Integrator {
    kBackwardEuler,
    kTrapezoidal,
};

// Read-only view of the solver state during one Newton-Raphson assembly.
//
// `x` is the current NR iterate (node voltages indexed by NodeId; entry 0 is
// ground and always 0). `x_prev` is the accepted solution of the previous
// time step (valid in transient mode only). `state` is the per-device state
// (e.g. capacitor branch currents) at the previous accepted step.
struct SimContext {
    enum class Mode { kDc, kTran };

    Mode mode = Mode::kDc;
    double time = 0.0;  // time being solved for (t_{n+1} in transient)
    double dt = 0.0;    // step size (transient only)
    Integrator integrator = Integrator::kTrapezoidal;
    // Scale factor applied to independent sources (DC source stepping).
    double source_scale = 1.0;
    // Transient step identity: unique per accepted base solution (x_prev,
    // state) and shared by every attempt at the step — Newton retries and
    // adaptive-dt shrinks included — plus the commit of the accepted one.
    // Devices key raw-capacitance caches on it (evaluated at x_prev, which
    // is constant across attempts); anything that bakes in dt or the
    // integrator must additionally key on those. Negative: caching disabled.
    long long step_id = -1;
    // TranOptions::stale_dv for this assembly: when positive, devices may
    // revalidate a previously-evaluated linearization — the channel tangent
    // model and the capacitance evaluation — if none of their terminal
    // voltages moved more than this [V]. The run id scopes that reuse to
    // one solve_tran call, so a circuit reused across scenarios never
    // carries linearization history between runs (determinism across
    // scheduling orders).
    double stale_dv = 0.0;
    long long run_id = -1;

    const std::vector<double>* x = nullptr;
    const std::vector<double>* x_prev = nullptr;
    const std::vector<double>* state = nullptr;

    double node_voltage(int node) const { return (*x)[static_cast<std::size_t>(node)]; }
    double prev_voltage(int node) const {
        return (*x_prev)[static_cast<std::size_t>(node)];
    }
    bool is_tran() const { return mode == Mode::kTran; }
};

}  // namespace mcsm::spice

#endif  // MCSM_SPICE_SIM_CONTEXT_H
