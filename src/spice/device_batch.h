// Batch-first device evaluation: the per-device virtual stamp() loop
// regrouped into structure-of-arrays batches so the Newton inner loop runs
// as flat, vectorizable kernels instead of pointer-chasing dispatch.
//
// MosfetBatch holds every MOSFET of a prepared circuit as parallel arrays:
// EKV channel coefficients, terminal node ids, and — resolved once per
// topology against the workspace's CSR pattern — the matrix slot of every
// entry a device stamps. evaluate_and_stamp() then
//   1. gathers terminal voltages,
//   2. evaluates the EKV current/conductances for all devices in one flat
//      loop (piecewise-polynomial softplus/logistic fast path unless the
//      library was built with MCSM_NO_FAST_EKV),
//   3. scatters the linearized stamps straight into CSR value slots and RHS
//      rows, skipping the Stamper's per-write map probes.
// Companion-capacitor stamps (5 pairs per device, linearized at the
// previous accepted solution) are refreshed once per transient step into
// parallel geq/isrc arrays — they are constant across the Newton iterations
// of a step — and scattered the same way.
//
// The dense backend keeps the original per-device virtual path, which pins
// its bit-compatibility with the seed solver.
#ifndef MCSM_SPICE_DEVICE_BATCH_H
#define MCSM_SPICE_DEVICE_BATCH_H

#include <cstddef>
#include <vector>

#include "common/sparse_matrix.h"
#include "spice/ekv_lanes.h"
#include "spice/linear_devices.h"
#include "spice/mosfet.h"

namespace mcsm::spice {

class MosfetBatch {
public:
    MosfetBatch() = default;

    // Captures `mosfets` into SoA storage and resolves every stamp
    // destination against `pattern` (the workspace CSR matrix, already
    // containing the full DC + transient incidence). Entries whose row or
    // column is ground resolve to -1 and are skipped when scattering.
    void build(const std::vector<const Mosfet*>& mosfets,
               const SparseMatrix& pattern);

    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }

    // Evaluates all devices at the node voltages in ctx and scatters the
    // linearized stamps into `matrix`/`rhs` (rhs indexed by unknown row).
    // Uses the fast EKV kernel unless built with MCSM_NO_FAST_EKV.
    void evaluate_and_stamp(SparseMatrix& matrix, std::vector<double>& rhs,
                            const SimContext& ctx) const;

    // Evaluation-only hook for tests and benches: out[i] receives device
    // i's channel current evaluated at the node voltages in `x` (node-id
    // indexed like SimContext::x). `fast` selects the kernel;
    // evaluate_and_stamp always uses the compiled-in default.
    void evaluate(const std::vector<double>& x, MosCurrent* out,
                  bool fast) const;

    // Same hook through the dispatched SIMD lane kernel (full batch, no
    // delta gating). With the tier compiled out this runs the W=1 lane
    // instantiation, which matches the fast scalar kernel bit for bit.
    void evaluate_lanes(const std::vector<double>& x, MosCurrent* out) const;

private:
    EkvCoeffs coeffs_at(std::size_t i) const {
        EkvCoeffs c;
        c.pol = pol_[i];
        c.is = is_[i];
        c.n = nn_[i];
        c.vt0 = vt0_[i];
        c.lambda = lambda_[i];
        c.ut = ut_[i];
        return c;
    }

    template <typename SpSigFn>
    void stamp_channel(SparseMatrix& matrix, std::vector<double>& rhs,
                       const SimContext& ctx, SpSigFn&& sp_sig) const;
    // The SIMD tier's phase-split equivalent of stamp_channel: compact the
    // devices outside the stale_dv gate into a dense active list, gather
    // their voltages (and coefficients) lane-contiguously, run the
    // dispatched EKV lane kernel once over the padded block, then stamp
    // every device in original index order (active results from the lane
    // outputs, gated devices from the cached tangent) so the CSR/RHS
    // accumulation order — and therefore every bit — matches the scalar
    // path. Selected by evaluate_and_stamp when the dispatch width is > 1.
    void stamp_channel_lanes(SparseMatrix& matrix, std::vector<double>& rhs,
                             const SimContext& ctx) const;
    // Fills the gather/output scratch pointers into `lanes` for a
    // full-batch sweep over `x` and returns the padded lane count.
    std::size_t gather_full_batch(const std::vector<double>& x,
                                  EkvLanes& lanes, int width) const;
    // Recomputes the per-step companion-cap conductances/current sources
    // (keyed on SimContext::step_id like the per-device caches).
    void refresh_caps(const SimContext& ctx) const;

    std::size_t count_ = 0;
    std::vector<const Mosfet*> devices_;  // for the per-step cap cache

    // Channel coefficients (SoA mirror of EkvCoeffs).
    std::vector<double> pol_;
    std::vector<double> is_;
    std::vector<double> nn_;
    std::vector<double> vt0_;
    std::vector<double> lambda_;
    std::vector<double> ut_;

    // Terminal node ids for the voltage gather.
    std::vector<int> nd_;
    std::vector<int> ng_;
    std::vector<int> ns_;
    std::vector<int> nb_;

    // Channel stamp destinations: 8 matrix slots per device in the order
    // (d,g) (d,d) (d,s) (d,b) (s,g) (s,d) (s,s) (s,b), then the RHS rows of
    // d and s (-1: ground, skipped).
    std::vector<int> mat_slots_;
    std::vector<int> rhs_d_;
    std::vector<int> rhs_s_;

    // Companion caps: 5 pairs per device in Mosfet state order
    // (g,s) (g,d) (g,b) (d,b) (s,b). Per pair: the two node ids, 4 matrix
    // slots (a,a) (b,b) (a,b) (b,a), and 2 RHS rows.
    std::vector<int> cap_a_;
    std::vector<int> cap_b_;
    std::vector<int> cap_slots_;
    std::vector<int> cap_rhs_;
    std::vector<int> cap_state_;  // state index of the pair's i_prev
    // Two-level per-step cache: the raw capacitances depend only on the
    // previous accepted solution (keyed on step_id, shared by every attempt
    // at the same step), while the companion geq/isrc additionally bake in
    // the step size and integrator (re-scaled when either changes, e.g. on
    // an adaptive retry with a smaller dt).
    mutable long long cap_step_id_ = -1;
    mutable double cap_dt_ = 0.0;
    mutable bool cap_be_ = false;
    mutable std::vector<double> cap_c_;
    mutable std::vector<double> cap_geq_;
    mutable std::vector<double> cap_isrc_;

    // Delta-gated channel cache (SimContext::stale_dv > 0 only): the
    // eval-point terminal voltages (4 per device) and the tangent model
    // gm, gds, gms, gmb, i_affine (5 per device) from the last evaluation.
    // While no terminal moved more than stale_dv the cached tangent is
    // re-stamped — a first-order Taylor model whose error is second order
    // in the threshold — so on a gate chain only the handful of switching
    // devices pay for EKV evaluation each Newton iteration. chan_run_id_
    // scopes the cache to one solve_tran run (see SimContext::run_id).
    mutable long long chan_run_id_ = -1;
    mutable std::vector<double> chan_v_;
    mutable std::vector<double> chan_lin_;

    // SIMD lane scratch, preallocated in build() (the Newton loop is
    // allocation-free) and padded by the widest lane count. The coefficient
    // planes are gathered only on the delta-gated path; full-batch sweeps
    // pass the (equally padded) pol_/is_/... arrays straight to the kernel.
    // Pad lanes hold benign device parameters (is = 0) written once in
    // build(), so masked remainder lanes never read uninitialized params.
    // Like the caches above, scratch makes stamping non-reentrant per
    // batch; each pool worker owns its workspace, so this is never shared.
    mutable std::vector<int> act_idx_;
    mutable std::vector<double> lane_vd_;
    mutable std::vector<double> lane_vg_;
    mutable std::vector<double> lane_vs_;
    mutable std::vector<double> lane_vb_;
    mutable std::vector<double> lane_pol_;
    mutable std::vector<double> lane_is_;
    mutable std::vector<double> lane_nn_;
    mutable std::vector<double> lane_vt0_;
    mutable std::vector<double> lane_lambda_;
    mutable std::vector<double> lane_ut_;
    mutable std::vector<double> lane_gm_;
    mutable std::vector<double> lane_gds_;
    mutable std::vector<double> lane_gms_;
    mutable std::vector<double> lane_gmb_;
    mutable std::vector<double> lane_ids_;
    mutable std::vector<double> lane_ia_;
};

// The linear counterpart of MosfetBatch: resistors, capacitors and
// independent V/I sources folded into SoA arrays with CSR slots resolved
// once per topology, eliminating the per-device virtual dispatch that
// dominates assembly at RC-network scale (pi loads, crosstalk nets).
// Resistor conductances and the source incidence (+-1 voltage-branch
// entries) are constants; source values are evaluated per assembly through
// the stored device pointer, so set_spec() reprogramming (characterization
// sweeps) is picked up; capacitor companion geq/isrc pairs are refreshed
// once per transient step, keyed on SimContext::step_id like MosfetBatch.
class LinearBatch {
public:
    LinearBatch() = default;

    // Captures the devices and resolves every stamp destination against
    // `pattern`. `n_nodes` is Circuit::node_count() (ground included),
    // needed to map branch indices onto unknown rows.
    void build(const std::vector<const Resistor*>& resistors,
               const std::vector<const Capacitor*>& capacitors,
               const std::vector<const VSource*>& vsources,
               const std::vector<const ISource*>& isources,
               const SparseMatrix& pattern, int n_nodes);

    std::size_t size() const { return n_r_ + n_c_ + n_v_ + n_i_; }
    bool empty() const { return size() == 0; }

    // Scatters every device's stamps into `matrix`/`rhs` (rhs indexed by
    // unknown row) for the assembly context `ctx`. Allocation-free.
    void stamp(SparseMatrix& matrix, std::vector<double>& rhs,
               const SimContext& ctx) const;

private:
    void refresh_caps(const SimContext& ctx) const;

    // Resistors: 4 matrix slots (a,a) (b,b) (a,b) (b,a) per device.
    std::size_t n_r_ = 0;
    std::vector<int> r_slots_;
    std::vector<double> r_g_;

    // Capacitors: same 4 slots plus the 2 RHS rows, terminal node ids for
    // the v_prev gather, the trapezoidal-current state index, and the
    // per-step companion linearization.
    std::size_t n_c_ = 0;
    std::vector<int> c_slots_;
    std::vector<int> c_rhs_;
    std::vector<int> c_a_;
    std::vector<int> c_b_;
    std::vector<int> c_state_;
    std::vector<double> c_val_;
    // Companion cache keyed on (step_id, dt, integrator): the raw values in
    // c_val_ are constant, but geq/isrc bake in the step size.
    mutable long long cap_step_id_ = -1;
    mutable double cap_dt_ = 0.0;
    mutable bool cap_be_ = false;
    mutable std::vector<double> c_geq_;
    mutable std::vector<double> c_isrc_;

    // Voltage sources: 4 incidence slots (p,br) (br,p) (m,br) (br,m) per
    // device (+1 +1 -1 -1) and the branch RHS row.
    std::size_t n_v_ = 0;
    std::vector<const VSource*> v_dev_;
    std::vector<int> v_slots_;
    std::vector<int> v_rhs_;

    // Current sources: the 2 RHS rows.
    std::size_t n_i_ = 0;
    std::vector<const ISource*> i_dev_;
    std::vector<int> i_rhs_;
};

}  // namespace mcsm::spice

#endif  // MCSM_SPICE_DEVICE_BATCH_H
