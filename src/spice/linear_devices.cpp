#include "spice/linear_devices.h"

#include "common/error.h"
#include "spice/cap_companion.h"

namespace mcsm::spice {

Resistor::Resistor(std::string name, int a, int b, double resistance)
    : Device(std::move(name)), a_(a), b_(b), resistance_(resistance) {
    require(resistance > 0.0, "Resistor: resistance must be positive");
}

void Resistor::stamp(Stamper& st, const SimContext&) const {
    st.add_conductance(a_, b_, 1.0 / resistance_);
}

Capacitor::Capacitor(std::string name, int a, int b, double capacitance)
    : Device(std::move(name)), a_(a), b_(b), capacitance_(capacitance) {
    require(capacitance >= 0.0, "Capacitor: capacitance must be non-negative");
}

void Capacitor::stamp(Stamper& st, const SimContext& ctx) const {
    const double i_prev =
        ctx.state ? (*ctx.state)[static_cast<std::size_t>(state_base())] : 0.0;
    stamp_capacitor(st, ctx, a_, b_, capacitance_, i_prev);
}

void Capacitor::commit(const SimContext& ctx,
                       std::span<double> state_next) const {
    const double i_prev =
        ctx.state ? (*ctx.state)[static_cast<std::size_t>(state_base())] : 0.0;
    const double v_now = ctx.node_voltage(a_) - ctx.node_voltage(b_);
    const double v_prev = ctx.prev_voltage(a_) - ctx.prev_voltage(b_);
    state_next[static_cast<std::size_t>(state_base())] =
        capacitor_current(ctx, capacitance_, v_now, v_prev, i_prev);
}

VSource::VSource(std::string name, int p, int m, SourceSpec spec)
    : Device(std::move(name)), p_(p), m_(m), spec_(std::move(spec)) {}

void VSource::stamp(Stamper& st, const SimContext& ctx) const {
    const double v = ctx.source_scale * spec_.value(ctx.time);
    st.add_voltage_branch(branch_base(), p_, m_, v);
}

void VSource::collect_breakpoints(std::vector<double>& out) const {
    if (spec_.is_dc()) return;
    const auto& t = spec_.waveform().times();
    out.insert(out.end(), t.begin(), t.end());
}

ISource::ISource(std::string name, int p, int m, SourceSpec spec)
    : Device(std::move(name)), p_(p), m_(m), spec_(std::move(spec)) {}

void ISource::stamp(Stamper& st, const SimContext& ctx) const {
    const double i = ctx.source_scale * spec_.value(ctx.time);
    st.add_source_current(p_, m_, i);
}

void ISource::collect_breakpoints(std::vector<double>& out) const {
    if (spec_.is_dc()) return;
    const auto& t = spec_.waveform().times();
    out.insert(out.end(), t.begin(), t.end());
}

}  // namespace mcsm::spice
