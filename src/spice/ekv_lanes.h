// Width-dispatched EKV lane kernel: the SIMD tier of the MOSFET batch.
//
// MosfetBatch's phase-split path gathers the active devices' terminal
// voltages (and, when delta-gating compacted the set, their coefficients)
// into the lane-contiguous SoA block described by EkvLanes, calls the
// dispatched kernel once over the whole padded block, and scatters the
// results from the output arrays into the pre-resolved CSR slots.
//
// The kernel itself (spice/ekv_lane_kernel.h) is one template over
// simd::DVec<W>, instantiated in three translation units:
//     W=1  baseline flags            (ekv_kernel_w1.cpp, always built)
//     W=4  -mavx2 -mfma              (ekv_kernel_w4.cpp)
//     W=8  -mavx512f/dq/vl -mfma     (ekv_kernel_w8.cpp)
// all with -ffp-contract=off, so every width executes the same IEEE
// operation sequence as the scalar fast path and results are bit-identical
// regardless of which kernel the CPU dispatch picks (test_ekv_batch
// asserts this). ekv_lane_kernel() resolves the widest compiled+supported
// width once per process via simd::default_width(); MCSM_NO_SIMD=1 and
// MCSM_SIMD_WIDTH=1|4|8 override (see common/simd.h).
#ifndef MCSM_SPICE_EKV_LANES_H
#define MCSM_SPICE_EKV_LANES_H

#include <cstddef>

namespace mcsm::spice {

// SoA argument block for one lane sweep. All pointers address arrays of at
// least `n` doubles where `n` is a multiple of the kernel width; the caller
// pads the tail with benign lanes (v = 0, pol = 1, is = 0, n = 1, vt0 = 0,
// lambda = 0, ut = 0.025) so masked remainder lanes never read
// uninitialized parameters. `ia` receives the affine RHS term
// ids - (gm*vg + gds*vd + gms*vs + gmb*vb) computed in-lane so the
// stamping loop stays arithmetic-free.
struct EkvLanes {
    // Terminal voltages (gathered per call).
    const double* vd = nullptr;
    const double* vg = nullptr;
    const double* vs = nullptr;
    const double* vb = nullptr;
    // Channel coefficients (SoA mirror of EkvCoeffs).
    const double* pol = nullptr;
    const double* is = nullptr;
    const double* nn = nullptr;
    const double* vt0 = nullptr;
    const double* lambda = nullptr;
    const double* ut = nullptr;
    // Outputs.
    double* gm = nullptr;
    double* gds = nullptr;
    double* gms = nullptr;
    double* gmb = nullptr;
    double* ids = nullptr;
    double* ia = nullptr;
};

using EkvLaneFn = void (*)(const EkvLanes&, std::size_t n);

// The dispatched kernel, its lane width, and a human-readable name
// ("scalar", "avx2x4", "avx512x8") for logs/metrics. Resolved once from
// simd::default_width(); stable for the life of the process unless
// ekv_lane_force_width re-pins it.
EkvLaneFn ekv_lane_kernel();
int ekv_lane_width();
const char* ekv_lane_kernel_name();

// Test/bench hook: pin the kernel to a specific width (1, 4 or 8; clamped
// down to what this build and CPU support). 0 restores the default
// dispatch. Not for concurrent use with running solves.
void ekv_lane_force_width(int w);

// Per-width instantiations (defined in their per-target TUs). Prefer
// ekv_lane_kernel(); these exist for the dispatcher and width-pinned tests.
void ekv_eval_lanes_w1(const EkvLanes& a, std::size_t n);
#ifdef MCSM_SIMD_AVX2
void ekv_eval_lanes_w4(const EkvLanes& a, std::size_t n);
#endif
#ifdef MCSM_SIMD_AVX512
void ekv_eval_lanes_w8(const EkvLanes& a, std::size_t n);
#endif

}  // namespace mcsm::spice

#endif  // MCSM_SPICE_EKV_LANES_H
