// Linear two-terminal devices: resistor, capacitor, independent sources.
#ifndef MCSM_SPICE_LINEAR_DEVICES_H
#define MCSM_SPICE_LINEAR_DEVICES_H

#include <span>
#include <string>
#include <vector>

#include "spice/device.h"
#include "spice/source_spec.h"

namespace mcsm::spice {

class Resistor : public Device {
public:
    Resistor(std::string name, int a, int b, double resistance);

    void stamp(Stamper& st, const SimContext& ctx) const override;
    std::vector<int> terminals() const override { return {a_, b_}; }

    double resistance() const { return resistance_; }
    int node_a() const { return a_; }
    int node_b() const { return b_; }

private:
    int a_;
    int b_;
    double resistance_;
};

class Capacitor : public Device {
public:
    Capacitor(std::string name, int a, int b, double capacitance);

    int state_count() const override { return 1; }  // trapezoidal current
    void stamp(Stamper& st, const SimContext& ctx) const override;
    void commit(const SimContext& ctx,
                std::span<double> state_next) const override;
    std::vector<int> terminals() const override { return {a_, b_}; }

    double capacitance() const { return capacitance_; }
    int node_a() const { return a_; }
    int node_b() const { return b_; }

private:
    int a_;
    int b_;
    double capacitance_;
};

// Independent voltage source from p to m (forces v(p) - v(m) = spec value).
class VSource : public Device {
public:
    VSource(std::string name, int p, int m, SourceSpec spec);

    int branch_count() const override { return 1; }
    void stamp(Stamper& st, const SimContext& ctx) const override;
    void collect_breakpoints(std::vector<double>& out) const override;
    std::vector<int> terminals() const override { return {p_, m_}; }

    // Replaces the drive (used by characterization sweeps).
    void set_spec(SourceSpec spec) { spec_ = std::move(spec); }
    const SourceSpec& spec() const { return spec_; }

    int positive_node() const { return p_; }
    int negative_node() const { return m_; }

private:
    int p_;
    int m_;
    SourceSpec spec_;
};

// Independent current source: value flows from p through the source to m
// (i.e. the current leaves node p and enters node m).
class ISource : public Device {
public:
    ISource(std::string name, int p, int m, SourceSpec spec);

    void stamp(Stamper& st, const SimContext& ctx) const override;
    void collect_breakpoints(std::vector<double>& out) const override;
    std::vector<int> terminals() const override { return {p_, m_}; }

    void set_spec(SourceSpec spec) { spec_ = std::move(spec); }
    const SourceSpec& spec() const { return spec_; }

    int positive_node() const { return p_; }
    int negative_node() const { return m_; }

private:
    int p_;
    int m_;
    SourceSpec spec_;
};

}  // namespace mcsm::spice

#endif  // MCSM_SPICE_LINEAR_DEVICES_H
