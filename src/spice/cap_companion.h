// Shared companion-model stamping for (possibly nonlinear) capacitors.
// The capacitance value is held fixed during a step (evaluated by the caller
// at the previous accepted solution), which keeps Newton-Raphson robust; the
// branch current is integrated with backward Euler or trapezoidal.
#ifndef MCSM_SPICE_CAP_COMPANION_H
#define MCSM_SPICE_CAP_COMPANION_H

#include "spice/sim_context.h"
#include "spice/stamper.h"

namespace mcsm::spice {

// Stamps a capacitor of value c between nodes a and b.
// `i_prev` is the accepted branch current at the previous step (needed for
// trapezoidal; ignored for backward Euler).
inline void stamp_capacitor(Stamper& st, const SimContext& ctx, int a, int b,
                            double c, double i_prev) {
    if (!ctx.is_tran() || ctx.dt <= 0.0) return;  // open circuit in DC
    const double v_prev = ctx.prev_voltage(a) - ctx.prev_voltage(b);
    double geq = 0.0;
    double i_src = 0.0;
    if (ctx.integrator == Integrator::kBackwardEuler) {
        geq = c / ctx.dt;
        i_src = -geq * v_prev;
    } else {
        geq = 2.0 * c / ctx.dt;
        i_src = -geq * v_prev - i_prev;
    }
    st.add_conductance(a, b, geq);
    st.add_source_current(a, b, i_src);
}

// Branch current through the capacitor at the accepted new solution,
// consistent with stamp_capacitor. `v_now` and `v_prev` are the capacitor
// voltages (v_a - v_b) at t_{n+1} and t_n.
inline double capacitor_current(const SimContext& ctx, double c, double v_now,
                                double v_prev, double i_prev) {
    if (!ctx.is_tran() || ctx.dt <= 0.0) return 0.0;
    if (ctx.integrator == Integrator::kBackwardEuler)
        return c / ctx.dt * (v_now - v_prev);
    return 2.0 * c / ctx.dt * (v_now - v_prev) - i_prev;
}

}  // namespace mcsm::spice

#endif  // MCSM_SPICE_CAP_COMPANION_H
