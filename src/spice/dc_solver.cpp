#include "spice/dc_solver.h"

#include <cmath>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mcsm::spice {

namespace {

// One NR solve at fixed gmin. Returns iterations used, or -1 if it failed.
// The circuit's persistent workspace supplies the assembly storage and the
// factorization; the iteration body performs no heap allocation.
int newton_dc(Circuit& circuit, const DcOptions& options, double gmin,
              std::vector<double>& x, int max_iterations = 0) {
    if (max_iterations <= 0) max_iterations = options.max_iterations;
    const int n_nodes = circuit.node_count();
    SolverWorkspace& ws = circuit.workspace();

    SimContext ctx;
    ctx.mode = SimContext::Mode::kDc;
    ctx.time = options.time;
    ctx.source_scale = options.source_scale;
    ctx.x = &x;

    for (int it = 0; it < max_iterations; ++it) {
        Stamper& st = ws.assemble(ctx);
        st.add_gmin_everywhere(gmin);

        const std::vector<double>* sol_ptr;
        try {
            sol_ptr = &ws.solve();
        } catch (const NumericalError&) {
            return -1;
        }
        const std::vector<double>& sol = *sol_ptr;

        // Measure the node-voltage update before damping.
        double dx_max = 0.0;
        for (int node = 1; node < n_nodes; ++node) {
            const int u = st.unknown_of_node(node);
            dx_max = std::max(
                dx_max, std::fabs(sol[static_cast<std::size_t>(u)] -
                                  x[static_cast<std::size_t>(node)]));
        }
        const double alpha =
            dx_max > options.max_update ? options.max_update / dx_max : 1.0;

        for (int node = 1; node < n_nodes; ++node) {
            const int u = st.unknown_of_node(node);
            auto& xv = x[static_cast<std::size_t>(node)];
            xv += alpha * (sol[static_cast<std::size_t>(u)] - xv);
        }
        for (int br = 0; br < circuit.branch_total(); ++br) {
            const int u = st.unknown_of_branch(br);
            auto& xb = x[static_cast<std::size_t>(n_nodes + br)];
            xb += alpha * (sol[static_cast<std::size_t>(u)] - xb);
        }

        if (dx_max < options.vtol) return it + 1;
        if (!std::isfinite(dx_max)) return -1;
    }
    return -1;
}

// Mirrors DcResult::iterations into the obs counters (one source: the
// result field is authoritative, the counters are its process-wide sum).
void publish_dc_iters(int iterations) {
    static obs::Counter& solves = obs::counter("solver.dc.solves");
    static obs::Counter& iters = obs::counter("solver.dc.newton_iters");
    solves.add();
    iters.add(iterations);
}

}  // namespace

DcResult solve_dc(Circuit& circuit, const DcOptions& options,
                  const std::vector<double>* initial) {
    const obs::Span span("spice.solve_dc");
    circuit.prepare();
    const std::size_t x_size = static_cast<std::size_t>(
        circuit.node_count() + circuit.branch_total());

    DcResult result;
    if (initial != nullptr) {
        require(initial->size() == x_size, "solve_dc: bad initial size");
        result.x = *initial;
    } else {
        result.x.assign(x_size, 0.0);
    }
    result.x[0] = 0.0;

    // Fast path: try a direct solve at the final gmin (warm starts usually
    // converge immediately). Cold starts may cap the probe's iteration
    // budget -- a failure here only costs time, never the solution.
    const int probe_budget =
        initial == nullptr ? options.cold_probe_iterations : 0;
    int iters =
        newton_dc(circuit, options, options.gmin_final, result.x, probe_budget);
    if (iters >= 0) {
        result.iterations = iters;
        publish_dc_iters(result.iterations);
        return result;
    }

    // gmin stepping from a heavy shunt down to gmin_final.
    result.x.assign(x_size, 0.0);
    int total = 0;
    for (double gmin = 1e-2; gmin > options.gmin_final * 0.5; gmin *= 0.1) {
        const double g = std::max(gmin, options.gmin_final);
        iters = newton_dc(circuit, options, g, result.x);
        if (iters < 0) {
            throw NumericalError("solve_dc: gmin stepping failed at gmin=" +
                                 std::to_string(g));
        }
        total += iters;
        if (g == options.gmin_final) break;
    }
    // Ensure the final stage ran at gmin_final even if the loop exited early.
    iters = newton_dc(circuit, options, options.gmin_final, result.x);
    if (iters < 0)
        throw NumericalError("solve_dc: final stage failed to converge");
    result.iterations = total + iters;
    publish_dc_iters(result.iterations);
    return result;
}

namespace {

// Scratch for one solve_dc_sweep call; every buffer is sized once so the
// per-round loop stays allocation-free.
struct SweepScratch {
    std::vector<std::vector<double>> xs;  // per-point iterates (x layout)
    std::vector<double> u;                // one iterate in unknown space
    std::vector<double> r;                // one residual in unknown space
    std::vector<double> r_block;          // interleaved residual block
    std::vector<double> d_block;          // interleaved update block
    std::vector<char> converged;
    std::vector<char> needs_fallback;
    std::vector<std::size_t> active;      // block-local ids of live points
};

// x (node/branch layout) -> unknown-space vector (ground dropped).
void to_unknowns(const std::vector<double>& x, int n_nodes, int n_branches,
                 std::vector<double>& u) {
    for (int node = 1; node < n_nodes; ++node)
        u[static_cast<std::size_t>(node - 1)] =
            x[static_cast<std::size_t>(node)];
    for (int br = 0; br < n_branches; ++br)
        u[static_cast<std::size_t>(n_nodes - 1 + br)] =
            x[static_cast<std::size_t>(n_nodes + br)];
}

}  // namespace

void solve_dc_sweep(
    Circuit& circuit, const std::vector<VSource*>& swept,
    std::span<const double> values, std::size_t n_points,
    const DcSweepOptions& options, const std::vector<double>* initial,
    const std::function<void(std::size_t, const std::vector<double>&)>&
        on_point) {
    const std::size_t n_swept = swept.size();
    require(values.size() == n_points * n_swept,
            "solve_dc_sweep: values size mismatch");
    circuit.prepare();
    SolverWorkspace& ws = circuit.workspace();

    auto program_point = [&](std::size_t p) {
        for (std::size_t k = 0; k < n_swept; ++k)
            swept[k]->set_spec(SourceSpec::dc(values[p * n_swept + k]));
    };

    if (ws.backend() == SolverBackend::kDense || n_points == 0) {
        // Dense fallback: the retained pre-refactor path, point by point
        // with a warm-start chain.
        DcResult dc;
        if (initial != nullptr) dc.x = *initial;
        for (std::size_t p = 0; p < n_points; ++p) {
            program_point(p);
            dc = solve_dc(circuit, options.dc, dc.x.empty() ? nullptr : &dc.x);
            on_point(p, dc.x);
        }
        return;
    }

    // Deterministic regardless of what this workspace solved before: the
    // first factorization of the sweep re-runs the pivot search.
    ws.invalidate_factorization();

    // When every non-ground node is pinned by a ground-referenced voltage
    // source (the characterization-fixture shape), the source rows are
    // present exactly in any shared matrix, so the shared-factorization
    // step delivers the exact node delta — and, once nodes are within
    // vtol, an exact branch-current delta (the KCL rows are linear in the
    // branch unknowns, contaminated only by conductance-mismatch * vtol).
    // The per-point verification solve is provably redundant then.
    const bool fully_forced = [&] {
        std::vector<char> forced(static_cast<std::size_t>(circuit.node_count()),
                                 0);
        forced[0] = 1;
        for (const auto& dev : circuit.devices()) {
            const auto* v = dynamic_cast<const VSource*>(dev.get());
            if (v == nullptr) continue;
            if (v->negative_node() == 0 && v->positive_node() > 0)
                forced[static_cast<std::size_t>(v->positive_node())] = 1;
        }
        for (char f : forced)
            if (!f) return false;
        return true;
    }();

    const int n_nodes = circuit.node_count();
    const int n_branches = circuit.branch_total();
    const std::size_t n_u = ws.system_size();
    const std::size_t x_size =
        static_cast<std::size_t>(n_nodes + n_branches);
    const std::size_t block = std::max<std::size_t>(1, options.block);

    SweepScratch s;
    s.xs.assign(block, std::vector<double>(x_size, 0.0));
    s.u.assign(n_u, 0.0);
    s.r.assign(n_u, 0.0);
    s.r_block.assign(n_u * block, 0.0);
    s.d_block.assign(n_u * block, 0.0);
    s.converged.assign(block, 0);
    s.needs_fallback.assign(block, 0);
    s.active.reserve(block);

    SimContext ctx;
    ctx.mode = SimContext::Mode::kDc;
    ctx.time = options.dc.time;
    ctx.source_scale = options.dc.source_scale;

    const std::vector<double>* warm = initial;
    for (std::size_t base = 0; base < n_points; base += block) {
        const std::size_t bm = std::min(block, n_points - base);

        // Warm-start every point of the block from the best solution known
        // so far (the previous block's last point, chained), then seed the
        // nodes the swept sources force with their exact target values —
        // on a fully forced fixture that makes the very first shared round
        // assemble at the converged bias, so one round settles the point
        // (the source rows are linear, so the branch-current update it
        // produces is exact and the node delta is ~0).
        for (std::size_t j = 0; j < bm; ++j) {
            if (warm != nullptr && warm->size() == x_size)
                s.xs[j] = *warm;
            else
                std::fill(s.xs[j].begin(), s.xs[j].end(), 0.0);
            s.xs[j][0] = 0.0;
            for (std::size_t k = 0; k < n_swept; ++k) {
                const double val = values[(base + j) * n_swept + k];
                const int p = swept[k]->positive_node();
                const int m = swept[k]->negative_node();
                if (m == 0 && p != 0)
                    s.xs[j][static_cast<std::size_t>(p)] = val;
                else if (p == 0 && m != 0)
                    s.xs[j][static_cast<std::size_t>(m)] = -val;
                else if (p != 0)
                    s.xs[j][static_cast<std::size_t>(p)] =
                        s.xs[j][static_cast<std::size_t>(m)] + val;
            }
            s.converged[j] = 0;
            s.needs_fallback[j] = 0;
        }

        for (int round = 0; round < options.shared_rounds; ++round) {
            s.active.clear();
            for (std::size_t j = 0; j < bm; ++j)
                if (!s.converged[j] && !s.needs_fallback[j])
                    s.active.push_back(j);
            if (s.active.empty()) break;
            const std::size_t na = s.active.size();

            // Assemble every active point at its own iterate, collect the
            // true residuals, and factor the lead point's Jacobian (before
            // the next assembly overwrites the shared matrix storage).
            bool factored = false;
            for (std::size_t a = 0; a < na; ++a) {
                const std::size_t j = s.active[a];
                program_point(base + j);
                ctx.x = &s.xs[j];
                Stamper& st = ws.assemble(ctx);
                st.add_gmin_everywhere(options.dc.gmin_final);
                to_unknowns(s.xs[j], n_nodes, n_branches, s.u);
                ws.residual(s.u, s.r);
                for (std::size_t i = 0; i < n_u; ++i)
                    s.r_block[i * na + a] = s.r[i];
                if (!factored) {
                    try {
                        ws.factor();
                        factored = true;
                    } catch (const NumericalError&) {
                        s.needs_fallback[j] = 1;
                    }
                }
            }
            if (!factored) continue;  // every lead candidate was singular

            ws.solve_block(s.r_block.data(), s.d_block.data(), na);

            for (std::size_t a = 0; a < na; ++a) {
                const std::size_t j = s.active[a];
                if (s.needs_fallback[j]) continue;
                double dx_max = 0.0;
                for (int node = 1; node < n_nodes; ++node) {
                    const std::size_t u = static_cast<std::size_t>(node - 1);
                    dx_max = std::max(dx_max,
                                      std::fabs(s.d_block[u * na + a]));
                }
                if (!std::isfinite(dx_max)) {
                    s.needs_fallback[j] = 1;
                    continue;
                }
                const double alpha = dx_max > options.dc.max_update
                                         ? options.dc.max_update / dx_max
                                         : 1.0;
                std::vector<double>& x = s.xs[j];
                for (int node = 1; node < n_nodes; ++node)
                    x[static_cast<std::size_t>(node)] +=
                        alpha *
                        s.d_block[static_cast<std::size_t>(node - 1) * na + a];
                for (int br = 0; br < n_branches; ++br)
                    x[static_cast<std::size_t>(n_nodes + br)] +=
                        alpha *
                        s.d_block[static_cast<std::size_t>(n_nodes - 1 + br) *
                                      na +
                                  a];
                if (dx_max < options.dc.vtol) s.converged[j] = 1;
            }
        }

        // Acceptance: the shared-matrix step test alone can under-resolve a
        // node whose local conductance is far below the lead point's (a
        // small J_lead^-1 r does not imply a small J_j^-1 r), so every
        // candidate must pass one exact-Newton step with its own Jacobian
        // — the same criterion the per-point solver uses. The step is
        // applied (it is a free accuracy improvement); a failed check or a
        // never-converged point takes the robust per-point path (own
        // pivoting per iteration, gmin stepping) from its current iterate.
        for (std::size_t j = 0; j < bm; ++j) {
            bool accepted = fully_forced && s.converged[j];
            if (!accepted && s.converged[j] && !s.needs_fallback[j]) {
                program_point(base + j);
                ctx.x = &s.xs[j];
                Stamper& st = ws.assemble(ctx);
                st.add_gmin_everywhere(options.dc.gmin_final);
                to_unknowns(s.xs[j], n_nodes, n_branches, s.u);
                ws.residual(s.u, s.r);
                try {
                    ws.factor();
                    ws.solve_block(s.r.data(), s.d_block.data(), 1);
                    double dx_max = 0.0;
                    for (int node = 1; node < n_nodes; ++node)
                        dx_max = std::max(
                            dx_max,
                            std::fabs(
                                s.d_block[static_cast<std::size_t>(node - 1)]));
                    if (std::isfinite(dx_max) && dx_max < options.dc.vtol) {
                        std::vector<double>& x = s.xs[j];
                        for (int node = 1; node < n_nodes; ++node)
                            x[static_cast<std::size_t>(node)] +=
                                s.d_block[static_cast<std::size_t>(node - 1)];
                        for (int br = 0; br < n_branches; ++br)
                            x[static_cast<std::size_t>(n_nodes + br)] +=
                                s.d_block[static_cast<std::size_t>(
                                    n_nodes - 1 + br)];
                        accepted = true;
                    }
                } catch (const NumericalError&) {
                }
            }
            if (!accepted) {
                program_point(base + j);
                const DcResult dc =
                    solve_dc(circuit, options.dc, &s.xs[j]);
                s.xs[j] = dc.x;
            }
            on_point(base + j, s.xs[j]);
        }
        warm = &s.xs[bm - 1];
    }
}

}  // namespace mcsm::spice
