#include "spice/dc_solver.h"

#include <cmath>

#include "common/error.h"

namespace mcsm::spice {

namespace {

// One NR solve at fixed gmin. Returns iterations used, or -1 if it failed.
// The circuit's persistent workspace supplies the assembly storage and the
// factorization; the iteration body performs no heap allocation.
int newton_dc(Circuit& circuit, const DcOptions& options, double gmin,
              std::vector<double>& x) {
    const int n_nodes = circuit.node_count();
    SolverWorkspace& ws = circuit.workspace();

    SimContext ctx;
    ctx.mode = SimContext::Mode::kDc;
    ctx.time = options.time;
    ctx.source_scale = options.source_scale;
    ctx.x = &x;

    for (int it = 0; it < options.max_iterations; ++it) {
        Stamper& st = ws.begin_assembly();
        for (const auto& dev : circuit.devices()) dev->stamp(st, ctx);
        st.add_gmin_everywhere(gmin);

        const std::vector<double>* sol_ptr;
        try {
            sol_ptr = &ws.solve();
        } catch (const NumericalError&) {
            return -1;
        }
        const std::vector<double>& sol = *sol_ptr;

        // Measure the node-voltage update before damping.
        double dx_max = 0.0;
        for (int node = 1; node < n_nodes; ++node) {
            const int u = st.unknown_of_node(node);
            dx_max = std::max(
                dx_max, std::fabs(sol[static_cast<std::size_t>(u)] -
                                  x[static_cast<std::size_t>(node)]));
        }
        const double alpha =
            dx_max > options.max_update ? options.max_update / dx_max : 1.0;

        for (int node = 1; node < n_nodes; ++node) {
            const int u = st.unknown_of_node(node);
            auto& xv = x[static_cast<std::size_t>(node)];
            xv += alpha * (sol[static_cast<std::size_t>(u)] - xv);
        }
        for (int br = 0; br < circuit.branch_total(); ++br) {
            const int u = st.unknown_of_branch(br);
            auto& xb = x[static_cast<std::size_t>(n_nodes + br)];
            xb += alpha * (sol[static_cast<std::size_t>(u)] - xb);
        }

        if (dx_max < options.vtol) return it + 1;
        if (!std::isfinite(dx_max)) return -1;
    }
    return -1;
}

}  // namespace

DcResult solve_dc(Circuit& circuit, const DcOptions& options,
                  const std::vector<double>* initial) {
    circuit.prepare();
    const std::size_t x_size = static_cast<std::size_t>(
        circuit.node_count() + circuit.branch_total());

    DcResult result;
    if (initial != nullptr) {
        require(initial->size() == x_size, "solve_dc: bad initial size");
        result.x = *initial;
    } else {
        result.x.assign(x_size, 0.0);
    }
    result.x[0] = 0.0;

    // Fast path: try a direct solve at the final gmin (warm starts usually
    // converge immediately).
    int iters = newton_dc(circuit, options, options.gmin_final, result.x);
    if (iters >= 0) {
        result.iterations = iters;
        return result;
    }

    // gmin stepping from a heavy shunt down to gmin_final.
    result.x.assign(x_size, 0.0);
    int total = 0;
    for (double gmin = 1e-2; gmin > options.gmin_final * 0.5; gmin *= 0.1) {
        const double g = std::max(gmin, options.gmin_final);
        iters = newton_dc(circuit, options, g, result.x);
        if (iters < 0) {
            throw NumericalError("solve_dc: gmin stepping failed at gmin=" +
                                 std::to_string(g));
        }
        total += iters;
        if (g == options.gmin_final) break;
    }
    // Ensure the final stage ran at gmin_final even if the loop exited early.
    iters = newton_dc(circuit, options, options.gmin_final, result.x);
    if (iters < 0)
        throw NumericalError("solve_dc: final stage failed to converge");
    result.iterations = total + iters;
    return result;
}

}  // namespace mcsm::spice
