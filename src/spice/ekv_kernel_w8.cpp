// W=8 instantiation, compiled -mavx512f -mavx512dq -mavx512vl -mfma
// -ffp-contract=off (see src/spice/CMakeLists.txt). Same IEEE operation
// sequence as the scalar kernel in 512-bit lanes; dispatched only on CPUs
// reporting AVX-512 F/DQ/VL.
#include "spice/ekv_lanes.h"

#include "spice/ekv_lane_kernel.h"

namespace mcsm::spice {

void ekv_eval_lanes_w8(const EkvLanes& a, std::size_t n) {
    ekv_eval_lanes_impl<8>(a, n);
}

}  // namespace mcsm::spice
