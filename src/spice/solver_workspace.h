// Persistent solver workspace: built once per circuit topology by
// Circuit::prepare() and reused across every Newton iteration and time step.
//
// Construction discovers the MNA sparsity pattern by running one
// pattern-collection stamp pass over the devices (DC and transient modes,
// so companion-model entries are included), then preallocates CSR storage
// and the sparse LU. After that, an assemble + solve cycle performs zero
// heap allocations: devices write into fixed CSR slots through the same
// Stamper primitives, the LU reuses its symbolic factorization, and the
// solution lands in a preallocated buffer.
//
// A dense backend is retained behind a runtime switch (SolverBackend /
// MCSM_DENSE_SOLVER=1) for cross-checking; it reproduces the pre-workspace
// dense path bit for bit.
#ifndef MCSM_SPICE_SOLVER_WORKSPACE_H
#define MCSM_SPICE_SOLVER_WORKSPACE_H

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "common/dense_matrix.h"
#include "common/sparse_lu.h"
#include "common/sparse_matrix.h"
#include "spice/device_batch.h"
#include "spice/stamper.h"

namespace mcsm::spice {

class Circuit;
class Device;

enum class SolverBackend {
    kSparse,  // CSR storage + pattern-reusing sparse LU (default)
    kDense,   // dense matrix + partial-pivot LU (cross-check fallback)
};

// Process-wide default: kSparse, or kDense when the MCSM_DENSE_SOLVER
// environment variable is set to a non-zero value.
SolverBackend default_solver_backend();

// Discovers the MNA sparsity pattern of an index-bound circuit (one
// pattern-mode stamp pass in DC and one in transient, so companion-model
// entries are included). `include_gmin` adds the gmin shunt diagonal the
// solvers stamp: the workspace wants it (the solved matrix has it), the
// structural-singularity detector in analysis/circuit_lint does not (gmin
// would mask every empty node row it exists to find).
//
// collect_mna_entries returns the raw (row, col) stamp list, possibly with
// duplicates and WITHOUT the unconditional diagonal SparseMatrix::build
// inserts for pivot slots -- the form the structural detector needs (an
// equation with no device entry must show up as an empty row).
// collect_mna_pattern builds the solver-facing SparseMatrix from it.
std::vector<std::pair<int, int>> collect_mna_entries(const Circuit& circuit,
                                                     bool include_gmin);
SparseMatrix collect_mna_pattern(const Circuit& circuit, bool include_gmin);

class SolverWorkspace {
public:
    // The circuit must be index-bound (Circuit::prepare() constructs the
    // workspace after binding). The workspace takes no reference to the
    // circuit beyond the constructor.
    SolverWorkspace(const Circuit& circuit, SolverBackend backend);

    SolverWorkspace(const SolverWorkspace&) = delete;
    SolverWorkspace& operator=(const SolverWorkspace&) = delete;

    SolverBackend backend() const { return backend_; }
    std::size_t system_size() const { return stamper_.system_size(); }
    // Stored MNA nonzeros (sparse backend; dense reports the full square).
    std::size_t pattern_nnz() const;

    // Clears the assembly storage and hands out the device-facing writer.
    Stamper& begin_assembly();

    // Assembles the full linearized system for `ctx`: clears the storage,
    // runs the batched MOSFET evaluate-and-stamp pass (sparse backend), then
    // the remaining devices' virtual stamp(). Returns the stamper so the
    // caller can add gmin / extra stamps before solving. This is the Newton
    // inner-loop entry point; it performs no heap allocation.
    Stamper& assemble(const SimContext& ctx);

    // Factors and solves the assembled system; the result stays valid until
    // the next solve(). Throws NumericalError on singular systems.
    const std::vector<double>& solve();

    // --- blocked multi-RHS interface (sparse backend) -------------------
    // Factors the assembled matrix without solving; throws NumericalError
    // on singular systems.
    void factor();
    // Solves nrhs systems against the last factor()ed matrix. Interleaved
    // layout (see SparseLu::solve_block); allocation-free.
    void solve_block(const double* b, double* x, std::size_t nrhs);
    // Residual r = rhs - A*x of the assembled system, in unknown space.
    void residual(std::span<const double> x_unknown, std::span<double> r) const;
    // Drops the frozen LU pivot order so the next factorization re-pivots
    // from scratch (used where results must not depend on which systems a
    // reused workspace solved before).
    void invalidate_factorization() { lu_.invalidate(); }

    // The batched MOSFET evaluator (empty on the dense backend).
    const MosfetBatch& mosfet_batch() const { return batch_; }
    // The batched linear stampers (empty on the dense backend).
    const LinearBatch& linear_batch() const { return linear_batch_; }
    // Read-only view of the assembled CSR storage (sparse backend); tests
    // cross-check batched assembly against the virtual stamp path with it.
    const SparseMatrix& csr_matrix() const { return matrix_; }

    // --- instrumentation ------------------------------------------------
    // Lane width of the dispatched SIMD EKV kernel this workspace's
    // assemble() uses for the MOSFET batch (1 = scalar fast path; the
    // dense backend always stays on the virtual scalar path).
    int simd_width() const;
    // "scalar", "avx2x4" or "avx512x8" — the matching kernel name.
    const char* simd_kernel_name() const;
    std::size_t solve_count() const { return solves_; }
    // Sparse backend: how often the pivot-order analysis had to rerun
    // (1 per topology in the steady state; more means unstable refactors).
    std::size_t full_factor_count() const { return lu_.full_factor_count(); }
    // Sparse backend: stored L+U nonzeros including fill (0 before the
    // first factorization / on the dense backend).
    std::size_t lu_nnz() const { return lu_.lu_nnz(); }

private:
    SolverBackend backend_;
    SparseMatrix matrix_;   // sparse backend storage
    Stamper stamper_;       // writes into matrix_ or its own dense storage
    SparseLu lu_;
    DenseMatrix dense_scratch_;
    std::vector<double> rhs_scratch_;
    std::vector<double> sol_;
    std::size_t solves_ = 0;
    // Device grouping for assemble(): MOSFETs go through the SoA batch and
    // resistors/capacitors/independent sources through the linear batch on
    // the sparse backend; everything else (and every device on the dense
    // backend, preserving its bit-compatible ordering) stays on the virtual
    // path.
    MosfetBatch batch_;
    LinearBatch linear_batch_;
    std::vector<const Device*> scalar_devices_;
};

}  // namespace mcsm::spice

#endif  // MCSM_SPICE_SOLVER_WORKSPACE_H
