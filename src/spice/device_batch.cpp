#include "spice/device_batch.h"

#include "common/error.h"

namespace mcsm::spice {

namespace {

// Unknown-space row/col of a node (ground is eliminated), mirroring
// Stamper::unknown_of_node.
inline int unknown_of(int node) { return node == 0 ? -1 : node - 1; }

// Slot of (row_node, col_node) in the pattern, -1 when either is ground.
int resolve_slot(const SparseMatrix& pattern, int row_node, int col_node) {
    const int r = unknown_of(row_node);
    const int c = unknown_of(col_node);
    if (r < 0 || c < 0) return -1;
    const int slot = pattern.slot_index(static_cast<std::size_t>(r),
                                        static_cast<std::size_t>(c));
    require(slot >= 0,
            "MosfetBatch: stamp destination missing from the pattern");
    return slot;
}

}  // namespace

void MosfetBatch::build(const std::vector<const Mosfet*>& mosfets,
                        const SparseMatrix& pattern) {
    count_ = mosfets.size();
    devices_ = mosfets;

    pol_.resize(count_);
    is_.resize(count_);
    nn_.resize(count_);
    vt0_.resize(count_);
    lambda_.resize(count_);
    ut_.resize(count_);
    nd_.resize(count_);
    ng_.resize(count_);
    ns_.resize(count_);
    nb_.resize(count_);
    mat_slots_.resize(count_ * 8);
    rhs_d_.resize(count_);
    rhs_s_.resize(count_);
    cap_a_.resize(count_ * 5);
    cap_b_.resize(count_ * 5);
    cap_slots_.resize(count_ * 20);
    cap_rhs_.resize(count_ * 10);
    cap_state_.resize(count_ * 5);
    cap_geq_.assign(count_ * 5, 0.0);
    cap_isrc_.assign(count_ * 5, 0.0);
    cap_step_id_ = -1;

    for (std::size_t i = 0; i < count_; ++i) {
        const Mosfet& m = *mosfets[i];
        const EkvCoeffs& c = m.ekv_coeffs();
        pol_[i] = c.pol;
        is_[i] = c.is;
        nn_[i] = c.n;
        vt0_[i] = c.vt0;
        lambda_[i] = c.lambda;
        ut_[i] = c.ut;
        const int d = m.drain();
        const int g = m.gate();
        const int s = m.source();
        const int b = m.bulk();
        nd_[i] = d;
        ng_[i] = g;
        ns_[i] = s;
        nb_[i] = b;

        int* ms = &mat_slots_[i * 8];
        ms[0] = resolve_slot(pattern, d, g);
        ms[1] = resolve_slot(pattern, d, d);
        ms[2] = resolve_slot(pattern, d, s);
        ms[3] = resolve_slot(pattern, d, b);
        ms[4] = resolve_slot(pattern, s, g);
        ms[5] = resolve_slot(pattern, s, d);
        ms[6] = resolve_slot(pattern, s, s);
        ms[7] = resolve_slot(pattern, s, b);
        rhs_d_[i] = unknown_of(d);
        rhs_s_[i] = unknown_of(s);

        // Companion-cap pairs in Mosfet state order.
        const int pa[5] = {g, g, g, d, s};
        const int pb[5] = {s, d, b, b, b};
        for (std::size_t k = 0; k < 5; ++k) {
            const std::size_t p = i * 5 + k;
            cap_a_[p] = pa[k];
            cap_b_[p] = pb[k];
            int* cs = &cap_slots_[p * 4];
            cs[0] = resolve_slot(pattern, pa[k], pa[k]);
            cs[1] = resolve_slot(pattern, pb[k], pb[k]);
            cs[2] = resolve_slot(pattern, pa[k], pb[k]);
            cs[3] = resolve_slot(pattern, pb[k], pa[k]);
            cap_rhs_[p * 2 + 0] = unknown_of(pa[k]);
            cap_rhs_[p * 2 + 1] = unknown_of(pb[k]);
            cap_state_[p] = m.state_base() + static_cast<int>(k);
        }
    }
}

template <typename SpSigFn>
void MosfetBatch::stamp_channel(SparseMatrix& matrix,
                                std::vector<double>& rhs,
                                const std::vector<double>& x,
                                SpSigFn&& sp_sig) const {
    double* vals = matrix.values().data();
    for (std::size_t i = 0; i < count_; ++i) {
        const double vd = x[static_cast<std::size_t>(nd_[i])];
        const double vg = x[static_cast<std::size_t>(ng_[i])];
        const double vs = x[static_cast<std::size_t>(ns_[i])];
        const double vb = x[static_cast<std::size_t>(nb_[i])];

        const MosCurrent cur =
            ekv_current(coeffs_at(i), vd, vg, vs, vb, sp_sig);

        const int* ms = &mat_slots_[i * 8];
        if (ms[0] >= 0) vals[ms[0]] += cur.gm;
        if (ms[1] >= 0) vals[ms[1]] += cur.gds;
        if (ms[2] >= 0) vals[ms[2]] += cur.gms;
        if (ms[3] >= 0) vals[ms[3]] += cur.gmb;
        if (ms[4] >= 0) vals[ms[4]] -= cur.gm;
        if (ms[5] >= 0) vals[ms[5]] -= cur.gds;
        if (ms[6] >= 0) vals[ms[6]] -= cur.gms;
        if (ms[7] >= 0) vals[ms[7]] -= cur.gmb;

        const double i_affine = cur.ids - (cur.gm * vg + cur.gds * vd +
                                           cur.gms * vs + cur.gmb * vb);
        if (rhs_d_[i] >= 0)
            rhs[static_cast<std::size_t>(rhs_d_[i])] -= i_affine;
        if (rhs_s_[i] >= 0)
            rhs[static_cast<std::size_t>(rhs_s_[i])] += i_affine;
    }
}

void MosfetBatch::refresh_caps(const SimContext& ctx) const {
    const std::vector<double>& x_prev = *ctx.x_prev;
    const std::vector<double>& state = *ctx.state;
    const std::size_t n_caps = count_ * 5;
    for (std::size_t i = 0; i < count_; ++i) {
        // Per-device cache shared with commit(): one scalar caps evaluation
        // per device per step.
        const MosCaps& caps = devices_[i]->caps_at_step(ctx);
        const std::size_t p = i * 5;
        cap_geq_[p + 0] = caps.cgs;
        cap_geq_[p + 1] = caps.cgd;
        cap_geq_[p + 2] = caps.cgb;
        cap_geq_[p + 3] = caps.cdb;
        cap_geq_[p + 4] = caps.csb;
    }
    // Companion linearization (see spice/cap_companion.h): geq and the
    // equivalent current source are fixed for the whole step.
    const bool be = ctx.integrator == Integrator::kBackwardEuler;
    const double gscale = (be ? 1.0 : 2.0) / ctx.dt;
    for (std::size_t p = 0; p < n_caps; ++p) {
        const double v_prev =
            x_prev[static_cast<std::size_t>(cap_a_[p])] -
            x_prev[static_cast<std::size_t>(cap_b_[p])];
        const double geq = cap_geq_[p] * gscale;
        const double i_prev =
            be ? 0.0 : state[static_cast<std::size_t>(cap_state_[p])];
        cap_geq_[p] = geq;
        cap_isrc_[p] = -geq * v_prev - i_prev;
    }
    cap_step_id_ = ctx.step_id;
}

void MosfetBatch::evaluate_and_stamp(SparseMatrix& matrix,
                                     std::vector<double>& rhs,
                                     const SimContext& ctx) const {
#ifdef MCSM_NO_FAST_EKV
    stamp_channel(matrix, rhs, *ctx.x, mcsm::softplus_logistic_ref);
#else
    stamp_channel(matrix, rhs, *ctx.x, mcsm::softplus_logistic_fast);
#endif

    if (!ctx.is_tran() || ctx.dt <= 0.0) return;
    if (ctx.step_id < 0 || ctx.step_id != cap_step_id_) refresh_caps(ctx);

    double* vals = matrix.values().data();
    const std::size_t n_caps = count_ * 5;
    for (std::size_t p = 0; p < n_caps; ++p) {
        const double geq = cap_geq_[p];
        const double isrc = cap_isrc_[p];
        const int* cs = &cap_slots_[p * 4];
        if (cs[0] >= 0) vals[cs[0]] += geq;
        if (cs[1] >= 0) vals[cs[1]] += geq;
        if (cs[2] >= 0) vals[cs[2]] -= geq;
        if (cs[3] >= 0) vals[cs[3]] -= geq;
        const int ra = cap_rhs_[p * 2 + 0];
        const int rb = cap_rhs_[p * 2 + 1];
        if (ra >= 0) rhs[static_cast<std::size_t>(ra)] -= isrc;
        if (rb >= 0) rhs[static_cast<std::size_t>(rb)] += isrc;
    }
}

void MosfetBatch::evaluate(const std::vector<double>& x, MosCurrent* out,
                           bool fast) const {
    for (std::size_t i = 0; i < count_; ++i) {
        const double vd = x[static_cast<std::size_t>(nd_[i])];
        const double vg = x[static_cast<std::size_t>(ng_[i])];
        const double vs = x[static_cast<std::size_t>(ns_[i])];
        const double vb = x[static_cast<std::size_t>(nb_[i])];
        const EkvCoeffs c = coeffs_at(i);
        out[i] = fast ? ekv_current(c, vd, vg, vs, vb,
                                    mcsm::softplus_logistic_fast)
                      : ekv_current(c, vd, vg, vs, vb,
                                    mcsm::softplus_logistic_ref);
    }
}

}  // namespace mcsm::spice
