#include "spice/device_batch.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "obs/metrics.h"

namespace mcsm::spice {

namespace {

// Scratch padding for the widest lane kernel (DVec<8>), so any active-set
// size can be rounded up to a whole number of lanes.
constexpr std::size_t kLanePad = 8;

// Unknown-space row/col of a node (ground is eliminated), mirroring
// Stamper::unknown_of_node.
inline int unknown_of(int node) { return node == 0 ? -1 : node - 1; }

// Slot of (row_node, col_node) in the pattern, -1 when either is ground.
int resolve_slot(const SparseMatrix& pattern, int row_node, int col_node) {
    const int r = unknown_of(row_node);
    const int c = unknown_of(col_node);
    if (r < 0 || c < 0) return -1;
    const int slot = pattern.slot_index(static_cast<std::size_t>(r),
                                        static_cast<std::size_t>(c));
    require(slot >= 0,
            "MosfetBatch: stamp destination missing from the pattern");
    return slot;
}

}  // namespace

void MosfetBatch::build(const std::vector<const Mosfet*>& mosfets,
                        const SparseMatrix& pattern) {
    count_ = mosfets.size();
    devices_ = mosfets;

    // The coefficient arrays carry kLanePad benign pad devices (is = 0, so
    // a pad lane's current and conductances are exactly zero) so the SIMD
    // full-batch path can hand them to the lane kernel unchanged.
    pol_.assign(count_ + kLanePad, 1.0);
    is_.assign(count_ + kLanePad, 0.0);
    nn_.assign(count_ + kLanePad, 1.0);
    vt0_.assign(count_ + kLanePad, 0.0);
    lambda_.assign(count_ + kLanePad, 0.0);
    ut_.assign(count_ + kLanePad, 0.025);
    nd_.resize(count_);
    ng_.resize(count_);
    ns_.resize(count_);
    nb_.resize(count_);
    mat_slots_.resize(count_ * 8);
    rhs_d_.resize(count_);
    rhs_s_.resize(count_);
    cap_a_.resize(count_ * 5);
    cap_b_.resize(count_ * 5);
    cap_slots_.resize(count_ * 20);
    cap_rhs_.resize(count_ * 10);
    cap_state_.resize(count_ * 5);
    cap_c_.assign(count_ * 5, 0.0);
    cap_geq_.assign(count_ * 5, 0.0);
    cap_isrc_.assign(count_ * 5, 0.0);
    cap_step_id_ = -1;
    cap_dt_ = 0.0;
    cap_be_ = false;
    chan_run_id_ = -1;
    chan_v_.assign(count_ * 4, std::numeric_limits<double>::quiet_NaN());
    chan_lin_.assign(count_ * 5, 0.0);

    // SIMD gather/output scratch, padded like the coefficient arrays. The
    // benign initial values keep every pad lane's arithmetic finite; the
    // pad region of the voltage planes is never overwritten afterwards
    // (compaction writes only the active prefix).
    act_idx_.assign(count_, 0);
    const std::size_t padded = count_ + kLanePad;
    lane_vd_.assign(padded, 0.0);
    lane_vg_.assign(padded, 0.0);
    lane_vs_.assign(padded, 0.0);
    lane_vb_.assign(padded, 0.0);
    lane_pol_.assign(padded, 1.0);
    lane_is_.assign(padded, 0.0);
    lane_nn_.assign(padded, 1.0);
    lane_vt0_.assign(padded, 0.0);
    lane_lambda_.assign(padded, 0.0);
    lane_ut_.assign(padded, 0.025);
    lane_gm_.assign(padded, 0.0);
    lane_gds_.assign(padded, 0.0);
    lane_gms_.assign(padded, 0.0);
    lane_gmb_.assign(padded, 0.0);
    lane_ids_.assign(padded, 0.0);
    lane_ia_.assign(padded, 0.0);

    for (std::size_t i = 0; i < count_; ++i) {
        const Mosfet& m = *mosfets[i];
        const EkvCoeffs& c = m.ekv_coeffs();
        pol_[i] = c.pol;
        is_[i] = c.is;
        nn_[i] = c.n;
        vt0_[i] = c.vt0;
        lambda_[i] = c.lambda;
        ut_[i] = c.ut;
        const int d = m.drain();
        const int g = m.gate();
        const int s = m.source();
        const int b = m.bulk();
        nd_[i] = d;
        ng_[i] = g;
        ns_[i] = s;
        nb_[i] = b;

        int* ms = &mat_slots_[i * 8];
        ms[0] = resolve_slot(pattern, d, g);
        ms[1] = resolve_slot(pattern, d, d);
        ms[2] = resolve_slot(pattern, d, s);
        ms[3] = resolve_slot(pattern, d, b);
        ms[4] = resolve_slot(pattern, s, g);
        ms[5] = resolve_slot(pattern, s, d);
        ms[6] = resolve_slot(pattern, s, s);
        ms[7] = resolve_slot(pattern, s, b);
        rhs_d_[i] = unknown_of(d);
        rhs_s_[i] = unknown_of(s);

        // Companion-cap pairs in Mosfet state order.
        const int pa[5] = {g, g, g, d, s};
        const int pb[5] = {s, d, b, b, b};
        for (std::size_t k = 0; k < 5; ++k) {
            const std::size_t p = i * 5 + k;
            cap_a_[p] = pa[k];
            cap_b_[p] = pb[k];
            int* cs = &cap_slots_[p * 4];
            cs[0] = resolve_slot(pattern, pa[k], pa[k]);
            cs[1] = resolve_slot(pattern, pb[k], pb[k]);
            cs[2] = resolve_slot(pattern, pa[k], pb[k]);
            cs[3] = resolve_slot(pattern, pb[k], pa[k]);
            cap_rhs_[p * 2 + 0] = unknown_of(pa[k]);
            cap_rhs_[p * 2 + 1] = unknown_of(pb[k]);
            cap_state_[p] = m.state_base() + static_cast<int>(k);
        }
    }
}

template <typename SpSigFn>
void MosfetBatch::stamp_channel(SparseMatrix& matrix,
                                std::vector<double>& rhs,
                                const SimContext& ctx,
                                SpSigFn&& sp_sig) const {
    static obs::Counter& scalar_evals =
        obs::counter("solver.simd.scalar_evals");
    const std::vector<double>& x = *ctx.x;
    double* vals = matrix.values().data();
    const double tol = ctx.stale_dv;
    const bool gate = tol > 0.0 && ctx.run_id >= 0;
    long long n_eval = 0;
    if (gate && chan_run_id_ != ctx.run_id) {
        // New solve_tran run: drop every cached eval point so nothing from
        // a previous scenario on this (pooled) circuit can be revalidated.
        // NaN sentinels fail every |v - cached| <= tol test.
        std::fill(chan_v_.begin(), chan_v_.end(),
                  std::numeric_limits<double>::quiet_NaN());
        chan_run_id_ = ctx.run_id;
    }
    for (std::size_t i = 0; i < count_; ++i) {
        const double vd = x[static_cast<std::size_t>(nd_[i])];
        const double vg = x[static_cast<std::size_t>(ng_[i])];
        const double vs = x[static_cast<std::size_t>(ns_[i])];
        const double vb = x[static_cast<std::size_t>(nb_[i])];

        double* cv = &chan_v_[i * 4];
        double* cl = &chan_lin_[i * 5];
        double gm, gds, gms, gmb, i_affine;
        if (gate && std::fabs(vd - cv[0]) <= tol &&
            std::fabs(vg - cv[1]) <= tol && std::fabs(vs - cv[2]) <= tol &&
            std::fabs(vb - cv[3]) <= tol) {
            gm = cl[0];
            gds = cl[1];
            gms = cl[2];
            gmb = cl[3];
            i_affine = cl[4];
        } else {
            ++n_eval;
            const MosCurrent cur =
                ekv_current(coeffs_at(i), vd, vg, vs, vb, sp_sig);
            gm = cur.gm;
            gds = cur.gds;
            gms = cur.gms;
            gmb = cur.gmb;
            i_affine = cur.ids -
                       (gm * vg + gds * vd + gms * vs + gmb * vb);
            if (gate) {
                cv[0] = vd;
                cv[1] = vg;
                cv[2] = vs;
                cv[3] = vb;
                cl[0] = gm;
                cl[1] = gds;
                cl[2] = gms;
                cl[3] = gmb;
                cl[4] = i_affine;
            }
        }

        const int* ms = &mat_slots_[i * 8];
        if (ms[0] >= 0) vals[ms[0]] += gm;
        if (ms[1] >= 0) vals[ms[1]] += gds;
        if (ms[2] >= 0) vals[ms[2]] += gms;
        if (ms[3] >= 0) vals[ms[3]] += gmb;
        if (ms[4] >= 0) vals[ms[4]] -= gm;
        if (ms[5] >= 0) vals[ms[5]] -= gds;
        if (ms[6] >= 0) vals[ms[6]] -= gms;
        if (ms[7] >= 0) vals[ms[7]] -= gmb;

        if (rhs_d_[i] >= 0)
            rhs[static_cast<std::size_t>(rhs_d_[i])] -= i_affine;
        if (rhs_s_[i] >= 0)
            rhs[static_cast<std::size_t>(rhs_s_[i])] += i_affine;
    }
    scalar_evals.add(n_eval);
}

std::size_t MosfetBatch::gather_full_batch(const std::vector<double>& x,
                                           EkvLanes& lanes,
                                           int width) const {
    for (std::size_t i = 0; i < count_; ++i) {
        lane_vd_[i] = x[static_cast<std::size_t>(nd_[i])];
        lane_vg_[i] = x[static_cast<std::size_t>(ng_[i])];
        lane_vs_[i] = x[static_cast<std::size_t>(ns_[i])];
        lane_vb_[i] = x[static_cast<std::size_t>(nb_[i])];
    }
    lanes.vd = lane_vd_.data();
    lanes.vg = lane_vg_.data();
    lanes.vs = lane_vs_.data();
    lanes.vb = lane_vb_.data();
    lanes.pol = pol_.data();
    lanes.is = is_.data();
    lanes.nn = nn_.data();
    lanes.vt0 = vt0_.data();
    lanes.lambda = lambda_.data();
    lanes.ut = ut_.data();
    lanes.gm = lane_gm_.data();
    lanes.gds = lane_gds_.data();
    lanes.gms = lane_gms_.data();
    lanes.gmb = lane_gmb_.data();
    lanes.ids = lane_ids_.data();
    lanes.ia = lane_ia_.data();
    const std::size_t w = static_cast<std::size_t>(width);
    return count_ == 0 ? 0 : (count_ + w - 1) / w * w;
}

void MosfetBatch::stamp_channel_lanes(SparseMatrix& matrix,
                                      std::vector<double>& rhs,
                                      const SimContext& ctx) const {
    static obs::Counter& vec_evals =
        obs::counter("solver.simd.vector_evals");
    static obs::Counter& gate_reuses =
        obs::counter("solver.simd.gate_reuses");
    static obs::Gauge& active_gauge = obs::gauge("solver.simd.active_set");
    static obs::Histogram& occupancy =
        obs::histogram("solver.simd.lane_occupancy_pct");

    const std::vector<double>& x = *ctx.x;
    double* vals = matrix.values().data();
    const double tol = ctx.stale_dv;
    const bool gated = tol > 0.0 && ctx.run_id >= 0;
    if (gated && chan_run_id_ != ctx.run_id) {
        // Same run-scope reset as stamp_channel: NaN sentinels fail every
        // |v - cached| <= tol test.
        std::fill(chan_v_.begin(), chan_v_.end(),
                  std::numeric_limits<double>::quiet_NaN());
        chan_run_id_ = ctx.run_id;
    }

    const int width = ekv_lane_width();
    EkvLanes lanes;
    std::size_t na;     // active devices, compacted to the lane prefix
    std::size_t n_pad;  // active count rounded up to whole lanes
    if (gated) {
        // Phase 1: compact the devices outside the stale_dv gate into a
        // dense active list, gathering voltages and coefficients
        // lane-contiguously as we go. Pad lanes keep their benign build()
        // values (or finite leftovers from a larger earlier active set);
        // either way the kernel's tail arithmetic is well-defined and its
        // results are never stamped.
        na = 0;
        for (std::size_t i = 0; i < count_; ++i) {
            const double vd = x[static_cast<std::size_t>(nd_[i])];
            const double vg = x[static_cast<std::size_t>(ng_[i])];
            const double vs = x[static_cast<std::size_t>(ns_[i])];
            const double vb = x[static_cast<std::size_t>(nb_[i])];
            const double* cv = &chan_v_[i * 4];
            if (std::fabs(vd - cv[0]) <= tol &&
                std::fabs(vg - cv[1]) <= tol &&
                std::fabs(vs - cv[2]) <= tol &&
                std::fabs(vb - cv[3]) <= tol)
                continue;
            act_idx_[na] = static_cast<int>(i);
            lane_vd_[na] = vd;
            lane_vg_[na] = vg;
            lane_vs_[na] = vs;
            lane_vb_[na] = vb;
            lane_pol_[na] = pol_[i];
            lane_is_[na] = is_[i];
            lane_nn_[na] = nn_[i];
            lane_vt0_[na] = vt0_[i];
            lane_lambda_[na] = lambda_[i];
            lane_ut_[na] = ut_[i];
            ++na;
        }
        lanes.vd = lane_vd_.data();
        lanes.vg = lane_vg_.data();
        lanes.vs = lane_vs_.data();
        lanes.vb = lane_vb_.data();
        lanes.pol = lane_pol_.data();
        lanes.is = lane_is_.data();
        lanes.nn = lane_nn_.data();
        lanes.vt0 = lane_vt0_.data();
        lanes.lambda = lane_lambda_.data();
        lanes.ut = lane_ut_.data();
        lanes.gm = lane_gm_.data();
        lanes.gds = lane_gds_.data();
        lanes.gms = lane_gms_.data();
        lanes.gmb = lane_gmb_.data();
        lanes.ids = lane_ids_.data();
        lanes.ia = lane_ia_.data();
        const std::size_t w = static_cast<std::size_t>(width);
        n_pad = na == 0 ? 0 : (na + w - 1) / w * w;
    } else {
        // DC / ungated: the full batch is active; the padded coefficient
        // arrays go to the kernel directly, no compaction pass.
        for (std::size_t i = 0; i < count_; ++i)
            act_idx_[i] = static_cast<int>(i);
        na = count_;
        n_pad = gather_full_batch(x, lanes, width);
    }

    // Phase 2: one kernel sweep over the padded active block.
    if (n_pad > 0) ekv_lane_kernel()(lanes, n_pad);

    vec_evals.add(static_cast<long long>(na));
    gate_reuses.add(static_cast<long long>(count_ - na));
    active_gauge.set(static_cast<long long>(na));
    if (n_pad > 0)
        occupancy.observe(100.0 * static_cast<double>(na) /
                          static_cast<double>(n_pad));

    // Phase 3: scatter in original device order. act_idx_ is ascending, so
    // one cursor walks the active results while gated devices replay the
    // cached tangent — the CSR/RHS accumulation order is exactly the scalar
    // path's, which is what keeps the two tiers bit-identical.
    std::size_t a = 0;
    for (std::size_t i = 0; i < count_; ++i) {
        double gm, gds, gms, gmb, i_affine;
        if (a < na && act_idx_[a] == static_cast<int>(i)) {
            gm = lane_gm_[a];
            gds = lane_gds_[a];
            gms = lane_gms_[a];
            gmb = lane_gmb_[a];
            i_affine = lane_ia_[a];
            if (gated) {
                double* cv = &chan_v_[i * 4];
                double* cl = &chan_lin_[i * 5];
                cv[0] = lane_vd_[a];
                cv[1] = lane_vg_[a];
                cv[2] = lane_vs_[a];
                cv[3] = lane_vb_[a];
                cl[0] = gm;
                cl[1] = gds;
                cl[2] = gms;
                cl[3] = gmb;
                cl[4] = i_affine;
            }
            ++a;
        } else {
            const double* cl = &chan_lin_[i * 5];
            gm = cl[0];
            gds = cl[1];
            gms = cl[2];
            gmb = cl[3];
            i_affine = cl[4];
        }

        const int* ms = &mat_slots_[i * 8];
        if (ms[0] >= 0) vals[ms[0]] += gm;
        if (ms[1] >= 0) vals[ms[1]] += gds;
        if (ms[2] >= 0) vals[ms[2]] += gms;
        if (ms[3] >= 0) vals[ms[3]] += gmb;
        if (ms[4] >= 0) vals[ms[4]] -= gm;
        if (ms[5] >= 0) vals[ms[5]] -= gds;
        if (ms[6] >= 0) vals[ms[6]] -= gms;
        if (ms[7] >= 0) vals[ms[7]] -= gmb;

        if (rhs_d_[i] >= 0)
            rhs[static_cast<std::size_t>(rhs_d_[i])] -= i_affine;
        if (rhs_s_[i] >= 0)
            rhs[static_cast<std::size_t>(rhs_s_[i])] += i_affine;
    }
}

void MosfetBatch::refresh_caps(const SimContext& ctx) const {
    const std::vector<double>& x_prev = *ctx.x_prev;
    const std::vector<double>& state = *ctx.state;
    const std::size_t n_caps = count_ * 5;
    if (ctx.step_id < 0 || ctx.step_id != cap_step_id_) {
        // Raw-capacitance level: depends only on the accepted base solution,
        // so retries of the same step (same step_id, new dt) skip it. The
        // per-device cache is shared with commit(): one scalar caps
        // evaluation per device per accepted base.
        for (std::size_t i = 0; i < count_; ++i) {
            const MosCaps& caps = devices_[i]->caps_at_step(ctx);
            const std::size_t p = i * 5;
            cap_c_[p + 0] = caps.cgs;
            cap_c_[p + 1] = caps.cgd;
            cap_c_[p + 2] = caps.cgb;
            cap_c_[p + 3] = caps.cdb;
            cap_c_[p + 4] = caps.csb;
        }
        cap_step_id_ = ctx.step_id;
    }
    // Companion linearization (see spice/cap_companion.h): geq/isrc bake in
    // the step size and integrator, so this scaling pass re-runs whenever
    // either changes (adaptive retry at a shrunk dt, breakpoint BE step).
    const bool be = ctx.integrator == Integrator::kBackwardEuler;
    const double gscale = (be ? 1.0 : 2.0) / ctx.dt;
    for (std::size_t p = 0; p < n_caps; ++p) {
        const double v_prev =
            x_prev[static_cast<std::size_t>(cap_a_[p])] -
            x_prev[static_cast<std::size_t>(cap_b_[p])];
        const double geq = cap_c_[p] * gscale;
        const double i_prev =
            be ? 0.0 : state[static_cast<std::size_t>(cap_state_[p])];
        cap_geq_[p] = geq;
        cap_isrc_[p] = -geq * v_prev - i_prev;
    }
    cap_dt_ = ctx.dt;
    cap_be_ = be;
}

void MosfetBatch::evaluate_and_stamp(SparseMatrix& matrix,
                                     std::vector<double>& rhs,
                                     const SimContext& ctx) const {
#ifdef MCSM_NO_FAST_EKV
    stamp_channel(matrix, rhs, ctx, mcsm::softplus_logistic_ref);
#else
    // Width 1 means the SIMD tier is compiled out, the CPU lacks AVX2+FMA,
    // or MCSM_NO_SIMD forced scalar — the plain fused loop wins there (no
    // gather/scatter detour for zero lane parallelism).
    if (ekv_lane_width() > 1)
        stamp_channel_lanes(matrix, rhs, ctx);
    else
        stamp_channel(matrix, rhs, ctx, mcsm::softplus_logistic_fast);
#endif

    if (!ctx.is_tran() || ctx.dt <= 0.0) return;
    if (ctx.step_id < 0 || ctx.step_id != cap_step_id_ ||
        ctx.dt != cap_dt_ ||
        (ctx.integrator == Integrator::kBackwardEuler) != cap_be_)
        refresh_caps(ctx);

    double* vals = matrix.values().data();
    const std::size_t n_caps = count_ * 5;
    for (std::size_t p = 0; p < n_caps; ++p) {
        const double geq = cap_geq_[p];
        const double isrc = cap_isrc_[p];
        const int* cs = &cap_slots_[p * 4];
        if (cs[0] >= 0) vals[cs[0]] += geq;
        if (cs[1] >= 0) vals[cs[1]] += geq;
        if (cs[2] >= 0) vals[cs[2]] -= geq;
        if (cs[3] >= 0) vals[cs[3]] -= geq;
        const int ra = cap_rhs_[p * 2 + 0];
        const int rb = cap_rhs_[p * 2 + 1];
        if (ra >= 0) rhs[static_cast<std::size_t>(ra)] -= isrc;
        if (rb >= 0) rhs[static_cast<std::size_t>(rb)] += isrc;
    }
}

void LinearBatch::build(const std::vector<const Resistor*>& resistors,
                        const std::vector<const Capacitor*>& capacitors,
                        const std::vector<const VSource*>& vsources,
                        const std::vector<const ISource*>& isources,
                        const SparseMatrix& pattern, int n_nodes) {
    // Slot of (row, col) in unknown space; rows/cols must exist (the
    // pattern pass stamped the same incidence).
    const auto slot_u = [&pattern](int r, int c) {
        const int slot = pattern.slot_index(static_cast<std::size_t>(r),
                                            static_cast<std::size_t>(c));
        require(slot >= 0,
                "LinearBatch: stamp destination missing from the pattern");
        return slot;
    };
    const auto pair_slots = [&](int a, int b, int* s) {
        const int au = unknown_of(a);
        const int bu = unknown_of(b);
        s[0] = au >= 0 ? slot_u(au, au) : -1;
        s[1] = bu >= 0 ? slot_u(bu, bu) : -1;
        s[2] = au >= 0 && bu >= 0 ? slot_u(au, bu) : -1;
        s[3] = au >= 0 && bu >= 0 ? slot_u(bu, au) : -1;
    };

    n_r_ = resistors.size();
    r_slots_.resize(n_r_ * 4);
    r_g_.resize(n_r_);
    for (std::size_t i = 0; i < n_r_; ++i) {
        const Resistor& r = *resistors[i];
        pair_slots(r.node_a(), r.node_b(), &r_slots_[i * 4]);
        r_g_[i] = 1.0 / r.resistance();
    }

    n_c_ = capacitors.size();
    c_slots_.resize(n_c_ * 4);
    c_rhs_.resize(n_c_ * 2);
    c_a_.resize(n_c_);
    c_b_.resize(n_c_);
    c_state_.resize(n_c_);
    c_val_.resize(n_c_);
    c_geq_.assign(n_c_, 0.0);
    c_isrc_.assign(n_c_, 0.0);
    cap_step_id_ = -1;
    cap_dt_ = 0.0;
    cap_be_ = false;
    for (std::size_t i = 0; i < n_c_; ++i) {
        const Capacitor& c = *capacitors[i];
        pair_slots(c.node_a(), c.node_b(), &c_slots_[i * 4]);
        c_rhs_[i * 2 + 0] = unknown_of(c.node_a());
        c_rhs_[i * 2 + 1] = unknown_of(c.node_b());
        c_a_[i] = c.node_a();
        c_b_[i] = c.node_b();
        c_state_[i] = c.state_base();
        c_val_[i] = c.capacitance();
    }

    n_v_ = vsources.size();
    v_dev_ = vsources;
    v_slots_.resize(n_v_ * 4);
    v_rhs_.resize(n_v_);
    for (std::size_t i = 0; i < n_v_; ++i) {
        const VSource& v = *vsources[i];
        const int pu = unknown_of(v.positive_node());
        const int mu = unknown_of(v.negative_node());
        const int bu = n_nodes - 1 + v.branch_base();
        int* s = &v_slots_[i * 4];
        s[0] = pu >= 0 ? slot_u(pu, bu) : -1;
        s[1] = pu >= 0 ? slot_u(bu, pu) : -1;
        s[2] = mu >= 0 ? slot_u(mu, bu) : -1;
        s[3] = mu >= 0 ? slot_u(bu, mu) : -1;
        v_rhs_[i] = bu;
    }

    n_i_ = isources.size();
    i_dev_ = isources;
    i_rhs_.resize(n_i_ * 2);
    for (std::size_t i = 0; i < n_i_; ++i) {
        i_rhs_[i * 2 + 0] = unknown_of(isources[i]->positive_node());
        i_rhs_[i * 2 + 1] = unknown_of(isources[i]->negative_node());
    }
}

void LinearBatch::refresh_caps(const SimContext& ctx) const {
    // Companion linearization (see spice/cap_companion.h): geq and the
    // equivalent current source are fixed for the whole step.
    const std::vector<double>& x_prev = *ctx.x_prev;
    const std::vector<double>& state = *ctx.state;
    const bool be = ctx.integrator == Integrator::kBackwardEuler;
    const double gscale = (be ? 1.0 : 2.0) / ctx.dt;
    for (std::size_t i = 0; i < n_c_; ++i) {
        const double v_prev = x_prev[static_cast<std::size_t>(c_a_[i])] -
                              x_prev[static_cast<std::size_t>(c_b_[i])];
        const double geq = c_val_[i] * gscale;
        const double i_prev =
            be ? 0.0 : state[static_cast<std::size_t>(c_state_[i])];
        c_geq_[i] = geq;
        c_isrc_[i] = -geq * v_prev - i_prev;
    }
    cap_step_id_ = ctx.step_id;
    cap_dt_ = ctx.dt;
    cap_be_ = be;
}

void LinearBatch::stamp(SparseMatrix& matrix, std::vector<double>& rhs,
                        const SimContext& ctx) const {
    double* vals = matrix.values().data();

    for (std::size_t i = 0; i < n_r_; ++i) {
        const int* s = &r_slots_[i * 4];
        const double g = r_g_[i];
        if (s[0] >= 0) vals[s[0]] += g;
        if (s[1] >= 0) vals[s[1]] += g;
        if (s[2] >= 0) vals[s[2]] -= g;
        if (s[3] >= 0) vals[s[3]] -= g;
    }

    for (std::size_t i = 0; i < n_v_; ++i) {
        const int* s = &v_slots_[i * 4];
        if (s[0] >= 0) vals[s[0]] += 1.0;
        if (s[1] >= 0) vals[s[1]] += 1.0;
        if (s[2] >= 0) vals[s[2]] -= 1.0;
        if (s[3] >= 0) vals[s[3]] -= 1.0;
        rhs[static_cast<std::size_t>(v_rhs_[i])] +=
            ctx.source_scale * v_dev_[i]->spec().value(ctx.time);
    }

    for (std::size_t i = 0; i < n_i_; ++i) {
        const double cur =
            ctx.source_scale * i_dev_[i]->spec().value(ctx.time);
        const int rp = i_rhs_[i * 2 + 0];
        const int rm = i_rhs_[i * 2 + 1];
        if (rp >= 0) rhs[static_cast<std::size_t>(rp)] -= cur;
        if (rm >= 0) rhs[static_cast<std::size_t>(rm)] += cur;
    }

    if (!ctx.is_tran() || ctx.dt <= 0.0) return;  // caps open in DC
    if (ctx.step_id < 0 || ctx.step_id != cap_step_id_ ||
        ctx.dt != cap_dt_ ||
        (ctx.integrator == Integrator::kBackwardEuler) != cap_be_)
        refresh_caps(ctx);
    for (std::size_t i = 0; i < n_c_; ++i) {
        const double geq = c_geq_[i];
        const double isrc = c_isrc_[i];
        const int* s = &c_slots_[i * 4];
        if (s[0] >= 0) vals[s[0]] += geq;
        if (s[1] >= 0) vals[s[1]] += geq;
        if (s[2] >= 0) vals[s[2]] -= geq;
        if (s[3] >= 0) vals[s[3]] -= geq;
        const int ra = c_rhs_[i * 2 + 0];
        const int rb = c_rhs_[i * 2 + 1];
        if (ra >= 0) rhs[static_cast<std::size_t>(ra)] -= isrc;
        if (rb >= 0) rhs[static_cast<std::size_t>(rb)] += isrc;
    }
}

void MosfetBatch::evaluate(const std::vector<double>& x, MosCurrent* out,
                           bool fast) const {
    for (std::size_t i = 0; i < count_; ++i) {
        const double vd = x[static_cast<std::size_t>(nd_[i])];
        const double vg = x[static_cast<std::size_t>(ng_[i])];
        const double vs = x[static_cast<std::size_t>(ns_[i])];
        const double vb = x[static_cast<std::size_t>(nb_[i])];
        const EkvCoeffs c = coeffs_at(i);
        out[i] = fast ? ekv_current(c, vd, vg, vs, vb,
                                    mcsm::softplus_logistic_fast)
                      : ekv_current(c, vd, vg, vs, vb,
                                    mcsm::softplus_logistic_ref);
    }
}

void MosfetBatch::evaluate_lanes(const std::vector<double>& x,
                                 MosCurrent* out) const {
    EkvLanes lanes;
    const std::size_t n_pad = gather_full_batch(x, lanes, ekv_lane_width());
    if (n_pad > 0) ekv_lane_kernel()(lanes, n_pad);
    for (std::size_t i = 0; i < count_; ++i) {
        out[i].ids = lane_ids_[i];
        out[i].gm = lane_gm_[i];
        out[i].gds = lane_gds_[i];
        out[i].gms = lane_gms_[i];
        out[i].gmb = lane_gmb_[i];
    }
}

}  // namespace mcsm::spice
