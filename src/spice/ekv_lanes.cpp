#include "spice/ekv_lanes.h"

#include <atomic>

#include "common/simd.h"

namespace mcsm::spice {

namespace {

struct Kernel {
    EkvLaneFn fn;
    int width;
    const char* name;
};

Kernel kernel_for_width(int w) {
#ifdef MCSM_SIMD_AVX512
    if (w >= 8) return {&ekv_eval_lanes_w8, 8, "avx512x8"};
#endif
#ifdef MCSM_SIMD_AVX2
    if (w >= 4) return {&ekv_eval_lanes_w4, 4, "avx2x4"};
#endif
    (void)w;
    return {&ekv_eval_lanes_w1, 1, "scalar"};
}

// 0 = follow simd::default_width(); otherwise a pinned width from
// ekv_lane_force_width (tests/bench only).
std::atomic<int> g_forced{0};

Kernel current_kernel() {
    const int forced = g_forced.load(std::memory_order_relaxed);
    if (forced > 0) {
        // Pin only what the build and CPU can actually run.
        const int w = forced;
        if (w >= 8 && simd::cpu_caps().avx512 && simd::width_compiled(8))
            return kernel_for_width(8);
        if (w >= 4 && simd::cpu_caps().avx2_fma && simd::width_compiled(4))
            return kernel_for_width(4);
        return kernel_for_width(1);
    }
    return kernel_for_width(simd::default_width());
}

}  // namespace

EkvLaneFn ekv_lane_kernel() { return current_kernel().fn; }

int ekv_lane_width() { return current_kernel().width; }

const char* ekv_lane_kernel_name() { return current_kernel().name; }

void ekv_lane_force_width(int w) {
    g_forced.store(w > 0 ? w : 0, std::memory_order_relaxed);
}

}  // namespace mcsm::spice
