// The EKV interpolation channel current shared by the scalar Mosfet device
// and the batched SoA evaluator:
//     I = Is * [F(vp - vs) - F(vp - vd)] * (1 + lambda*|vds|),
//     F(v) = softplus(v / 2Ut)^2,  vp = (vg - VT0)/n   (bulk-referenced).
//
// The arithmetic here is transcribed exactly from the original
// Mosfet::evaluate_current so that the reference-math instantiation stays
// bit-identical to the scalar device (the dense solver backend pins that
// path to the seed waveforms). The math policy only swaps how the
// softplus/logistic pair is computed: `softplus_logistic_ref` (libm) or
// `softplus_logistic_fast` (piecewise polynomial, see common/numeric.h).
#ifndef MCSM_SPICE_EKV_H
#define MCSM_SPICE_EKV_H

#include "common/numeric.h"
#include "spice/mos_params.h"

namespace mcsm::spice {

// Channel current and derivatives w.r.t. terminal voltages (d, g, s, b).
struct MosCurrent {
    double ids = 0.0;  // current from drain terminal to source terminal [A]
    double gm = 0.0;   // d ids / d vg
    double gds = 0.0;  // d ids / d vd
    double gms = 0.0;  // d ids / d vs
    double gmb = 0.0;  // d ids / d vb
};

// Per-device channel coefficients, frozen at construction (params live in
// the technology card and geometry never changes after the device exists).
struct EkvCoeffs {
    double pol = 1.0;     // +1 NMOS, -1 PMOS
    double is = 0.0;      // 2 n beta Ut^2 with beta = kp W / L
    double n = 1.0;
    double vt0 = 0.0;
    double lambda = 0.0;
    double ut = 0.025;

    static EkvCoeffs from(const MosParams& p, double w, double l) {
        EkvCoeffs c;
        c.pol = p.type == MosType::kNmos ? 1.0 : -1.0;
        const double beta = p.kp * w / l;
        c.is = 2.0 * p.n * beta * p.ut * p.ut;
        c.n = p.n;
        c.vt0 = p.vt0;
        c.lambda = p.lambda;
        c.ut = p.ut;
        return c;
    }
};

// Evaluates the channel current and its derivatives at the given terminal
// voltages. `sp_sig` maps x to the {softplus(x), logistic(x)} pair.
template <typename SpSigFn>
inline MosCurrent ekv_current(const EkvCoeffs& c, double vd, double vg,
                              double vs, double vb, SpSigFn&& sp_sig) {
    // Polarity-normalized, bulk-referenced voltages.
    const double wg = c.pol * (vg - vb);
    const double wd = c.pol * (vd - vb);
    const double ws = c.pol * (vs - vb);

    const double vp = (wg - c.vt0) / c.n;

    // F(v) = softplus(v / (2 Ut))^2 and its derivative w.r.t. v.
    const SpSig f_src = sp_sig((vp - ws) / (2.0 * c.ut));
    const SpSig f_drn = sp_sig((vp - wd) / (2.0 * c.ut));
    const double ff = f_src.sp * f_src.sp;
    const double dff = f_src.sp * f_src.sig / c.ut;
    const double fr = f_drn.sp * f_drn.sp;
    const double dfr = f_drn.sp * f_drn.sig / c.ut;
    const double diff = ff - fr;

    // Smooth channel-length modulation, symmetric in d/s.
    const double eps = 1e-3;
    const double sabs = mcsm::smooth_abs(wd - ws, eps);
    const double dsabs = mcsm::smooth_abs_deriv(wd - ws, eps);
    const double clm = 1.0 + c.lambda * sabs;

    const double iw = c.is * diff * clm;

    // Derivatives in w-space.
    const double di_dwg = c.is * clm * (dff - dfr) / c.n;
    const double di_dws = -c.is * clm * dff - c.is * diff * c.lambda * dsabs;
    const double di_dwd = c.is * clm * dfr + c.is * diff * c.lambda * dsabs;

    MosCurrent out;
    // ids = pol * iw; d(ids)/d(v_x) = pol * d(iw)/d(w_x) * pol = d(iw)/d(w_x).
    out.ids = c.pol * iw;
    out.gm = di_dwg;
    out.gds = di_dwd;
    out.gms = di_dws;
    out.gmb = -(out.gm + out.gds + out.gms);
    return out;
}

}  // namespace mcsm::spice

#endif  // MCSM_SPICE_EKV_H
