// Technology parameters for the EKV-style MOSFET model.
#ifndef MCSM_SPICE_MOS_PARAMS_H
#define MCSM_SPICE_MOS_PARAMS_H

namespace mcsm::spice {

enum class MosType { kNmos, kPmos };

// Device card. Voltages inside the model are polarity-normalized, so vt0 is
// a positive magnitude for both NMOS and PMOS.
struct MosParams {
    MosType type = MosType::kNmos;

    // --- I-V ------------------------------------------------------------
    double vt0 = 0.33;     // zero-bias threshold magnitude [V]
    double n = 1.3;        // slope factor (also sets the body effect)
    double kp = 4.0e-4;    // mu * Cox [A/V^2]
    double lambda = 0.15;  // channel-length modulation [1/V]
    double ut = 0.02585;   // thermal voltage [V]

    // --- gate capacitance -------------------------------------------------
    double cox = 1.55e-2;  // oxide capacitance per area [F/m^2]
    double cgso = 3.0e-10; // gate-source overlap per width [F/m]
    double cgdo = 3.0e-10; // gate-drain overlap per width [F/m]
    double cgbo = 1.0e-10; // gate-bulk overlap per length [F/m]
    double cgb_frac = 0.8; // channel-to-bulk fraction when not inverted
    double blend_v = 0.06; // region blending width [V]

    // --- junction (diffusion) capacitance --------------------------------
    double cj = 1.0e-3;    // area junction cap at zero bias [F/m^2]
    double mj = 0.5;       // area grading coefficient
    double pb = 0.8;       // built-in potential [V]
    double fc = 0.5;       // forward-bias linearization point (fraction of pb)
    double cjsw = 2.0e-10; // sidewall cap per perimeter [F/m]
    double mjsw = 0.33;    // sidewall grading coefficient
    double ldiff = 0.34e-6;  // diffusion extent used for default AD/AS [m]
};

}  // namespace mcsm::spice

#endif  // MCSM_SPICE_MOS_PARAMS_H
