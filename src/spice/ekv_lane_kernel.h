// The width-templated EKV lane kernel body, included by the per-target
// translation units (ekv_kernel_w1/w4/w8.cpp) — never compile this header
// into more than one TU per width.
//
// ekv_eval_lanes_impl<W> mirrors ekv_current(..., softplus_logistic_fast)
// operation for operation over simd::DVec<W>: same reduction tables
// (common/numeric_tables.h), same association order on every +,-,*,/ and
// sqrt, and the per-target TUs compile with -ffp-contract=off so no FMA
// contraction perturbs the sequence. Each lane therefore produces the exact
// bits of the scalar fast path — the property the determinism tests pin.
//
// Deviations from the scalar control flow, value-preserving by selection:
//   - NaN inputs: the scalar kernel early-returns {x, x} before its int
//     cast. Lanes can't branch, so NaN lanes are sanitized to 0 for the
//     table index math and the NaN is re-selected into both outputs.
//   - log1p small-z branch: both the mantissa-reduced log and the
//     alternating series are computed for every lane, then blended at the
//     scalar's exact z < 2^-12 cut. Both paths are finite for z in [0, 1].
#ifndef MCSM_SPICE_EKV_LANE_KERNEL_H
#define MCSM_SPICE_EKV_LANE_KERNEL_H

#include <bit>
#include <cstddef>
#include <cstdint>

#include "common/numeric_tables.h"
#include "common/simd.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace mcsm::spice {

namespace lanes_detail {

using simd::DVec;

// ---- table-reduction index math -----------------------------------------
// The exp/log reductions mix FP with integer bit manipulation and table
// lookups. Written as per-lane loops the compiler lowers them to long
// extract/insert chains that dominate the chunk cost, so the vector widths
// get explicit integer-SIMD + gather specializations. Every specialization
// produces the exact doubles of the generic loop (same table slots, same
// int arithmetic, same final multiplies), so lane bits are unchanged.

// ts = kExp2Neg32[n & 31] * 2^-(n >> 5) for n = (int64)nd per lane.
// nd is floor(u * 32/ln2 + 0.5) with u in [0, 708]: a small non-negative
// integer-valued double (fits int32), which the vector paths rely on.
template <int W>
MCSM_SIMD_INLINE DVec<W> exp_slot_scale(DVec<W> nd) {
    namespace nt = mcsm::numeric_tables;
    DVec<W> ts;
    for (int k = 0; k < W; ++k) {
        const auto n64 = static_cast<std::int64_t>(nd.v[k]);
        const auto j = static_cast<std::uint64_t>(n64) & 31u;
        const auto e = n64 >> 5;
        const double scale = std::bit_cast<double>(
            static_cast<std::uint64_t>(1023 - e) << 52);
        ts.v[k] = nt::kExp2Neg32[j] * scale;
    }
    return ts;
}

// Mantissa/exponent split of y = 1 + z (y in [1, 2], so the unbiased
// exponent is never negative): m is y's mantissa renormalized to [1, 2),
// invm the 64-slot reciprocal anchor, anchor = e*ln2 + log(m0).
template <int W>
MCSM_SIMD_INLINE void log_reduce(DVec<W> y, DVec<W>& m, DVec<W>& invm,
                                 DVec<W>& anchor) {
    namespace nt = mcsm::numeric_tables;
    for (int k = 0; k < W; ++k) {
        const auto bits = std::bit_cast<std::uint64_t>(y.v[k]);
        const auto e = static_cast<int>(bits >> 52) - 1023;
        m.v[k] = std::bit_cast<double>(
            (bits & 0x000FFFFFFFFFFFFFull) | 0x3FF0000000000000ull);
        const auto j = (bits >> 46) & 63u;
        invm.v[k] = nt::kInvM0_64[j];
        anchor.v[k] =
            static_cast<double>(e) * nt::kLn2 + nt::kLogM0_64[j];
    }
}

#if defined(__AVX2__)
template <>
MCSM_SIMD_INLINE DVec<4> exp_slot_scale<4>(DVec<4> nd) {
    namespace nt = mcsm::numeric_tables;
    const __m256d ndv = (__m256d)nd.v;
    const __m128i n32 = _mm256_cvttpd_epi32(ndv);  // truncation, like (int)
    const __m128i j32 = _mm_and_si128(n32, _mm_set1_epi32(31));
    const __m128i e32 = _mm_srai_epi32(n32, 5);
    const __m256i sbits = _mm256_slli_epi64(
        _mm256_sub_epi64(_mm256_set1_epi64x(1023),
                         _mm256_cvtepi32_epi64(e32)),
        52);
    const __m256d slot = _mm256_i32gather_pd(nt::kExp2Neg32, j32, 8);
    return {(DVec<4>::vec)_mm256_mul_pd(slot,
                                        _mm256_castsi256_pd(sbits))};
}

template <>
MCSM_SIMD_INLINE void log_reduce<4>(DVec<4> y, DVec<4>& m, DVec<4>& invm,
                                    DVec<4>& anchor) {
    namespace nt = mcsm::numeric_tables;
    const __m256i bits = _mm256_castpd_si256((__m256d)y.v);
    const __m256i e64 = _mm256_sub_epi64(_mm256_srli_epi64(bits, 52),
                                         _mm256_set1_epi64x(1023));
    m.v = (DVec<4>::vec)_mm256_castsi256_pd(_mm256_or_si256(
        _mm256_and_si256(bits, _mm256_set1_epi64x(0x000FFFFFFFFFFFFFll)),
        _mm256_set1_epi64x(0x3FF0000000000000ll)));
    const __m256i j64 = _mm256_and_si256(_mm256_srli_epi64(bits, 46),
                                         _mm256_set1_epi64x(63));
    invm.v = (DVec<4>::vec)_mm256_i64gather_pd(nt::kInvM0_64, j64, 8);
    const __m256d logm0 = _mm256_i64gather_pd(nt::kLogM0_64, j64, 8);
    // int64 -> double via the 2^52 bit trick (exact for 0 <= e < 2^52;
    // e >= 0 because y >= 1).
    const __m256d e_d = _mm256_sub_pd(
        _mm256_castsi256_pd(_mm256_or_si256(
            e64, _mm256_set1_epi64x(0x4330000000000000ll))),
        _mm256_set1_pd(0x1p52));
    anchor.v = (DVec<4>::vec)_mm256_add_pd(
        _mm256_mul_pd(e_d, _mm256_set1_pd(nt::kLn2)), logm0);
}
#endif  // __AVX2__

#if defined(__AVX512F__) && defined(__AVX512DQ__)
template <>
MCSM_SIMD_INLINE DVec<8> exp_slot_scale<8>(DVec<8> nd) {
    namespace nt = mcsm::numeric_tables;
    const __m512i n64 = _mm512_cvttpd_epi64((__m512d)nd.v);
    const __m512i j64 = _mm512_and_epi64(n64, _mm512_set1_epi64(31));
    const __m512i sbits = _mm512_slli_epi64(
        _mm512_sub_epi64(_mm512_set1_epi64(1023),
                         _mm512_srai_epi64(n64, 5)),
        52);
    const __m512d slot = _mm512_i64gather_pd(j64, nt::kExp2Neg32, 8);
    return {(DVec<8>::vec)_mm512_mul_pd(slot,
                                        _mm512_castsi512_pd(sbits))};
}

template <>
MCSM_SIMD_INLINE void log_reduce<8>(DVec<8> y, DVec<8>& m, DVec<8>& invm,
                                    DVec<8>& anchor) {
    namespace nt = mcsm::numeric_tables;
    const __m512i bits = _mm512_castpd_si512((__m512d)y.v);
    const __m512i e64 = _mm512_sub_epi64(_mm512_srli_epi64(bits, 52),
                                         _mm512_set1_epi64(1023));
    m.v = (DVec<8>::vec)_mm512_castsi512_pd(_mm512_or_epi64(
        _mm512_and_epi64(bits, _mm512_set1_epi64(0x000FFFFFFFFFFFFFll)),
        _mm512_set1_epi64(0x3FF0000000000000ll)));
    const __m512i j64 = _mm512_and_epi64(_mm512_srli_epi64(bits, 46),
                                         _mm512_set1_epi64(63));
    invm.v = (DVec<8>::vec)_mm512_i64gather_pd(j64, nt::kInvM0_64, 8);
    const __m512d logm0 = _mm512_i64gather_pd(j64, nt::kLogM0_64, 8);
    const __m512d e_d = _mm512_cvtepi64_pd(e64);  // exact (AVX-512 DQ)
    anchor.v = (DVec<8>::vec)_mm512_add_pd(
        _mm512_mul_pd(e_d, _mm512_set1_pd(nt::kLn2)), logm0);
}
#endif  // __AVX512F__ && __AVX512DQ__

// {softplus(x), logistic(x)} across W lanes, bit-equal per lane to
// mcsm::softplus_logistic_fast.
template <int W>
MCSM_SIMD_INLINE void sp_sig_lanes(DVec<W> x, DVec<W>& sp, DVec<W>& sig) {
    namespace nt = mcsm::numeric_tables;
    const DVec<W> zero = simd::broadcast<W>(0.0);
    const DVec<W> one = simd::broadcast<W>(1.0);

    // NaN lanes take the sanitized value 0 through the pipeline; the NaN
    // itself is re-selected into the outputs at the end.
    const DVec<W> xs = simd::select_nan(x, zero, x);

    // z = e^-u, u = min(|x|, 708): 32-slot table-reduced exponential.
    const DVec<W> u = simd::vmin(simd::vabs(xs), simd::broadcast<W>(708.0));
    const DVec<W> nd = simd::vfloor(u * simd::broadcast<W>(nt::kExpInvStep32) +
                                    simd::broadcast<W>(0.5));
    const DVec<W> r = (nd * simd::broadcast<W>(nt::kExpStep32Hi) - u) +
                      nd * simd::broadcast<W>(nt::kExpStep32Lo);
    // 2^-k * 2^(-j/32): the table slot pre-multiplied by the scale.
    const DVec<W> ts = exp_slot_scale<W>(nd);
    DVec<W> p = simd::broadcast<W>(1.0 / 24.0);
    p = p * r + simd::broadcast<W>(1.0 / 6.0);
    p = p * r + simd::broadcast<W>(0.5);
    p = p * r + one;
    p = p * r + one;
    const DVec<W> z = p * ts;

    // log1p(z), large branch: 64-slot mantissa-reduced log of y = 1 + z.
    const DVec<W> y = one + z;
    DVec<W> m, invm, anchor;  // anchor = e*ln2 + log(m0)
    log_reduce<W>(y, m, invm, anchor);
    const DVec<W> t = m * invm - one;
    DVec<W> q = simd::broadcast<W>(-1.0 / 7.0);
    q = q * t + simd::broadcast<W>(1.0 / 6.0);
    q = q * t - simd::broadcast<W>(1.0 / 5.0);
    q = q * t + simd::broadcast<W>(1.0 / 4.0);
    q = q * t - simd::broadcast<W>(1.0 / 3.0);
    q = q * t + simd::broadcast<W>(0.5);
    const DVec<W> log_y = anchor + (t - t * t * q);

    // log1p(z), small branch: alternating series below the scalar's cut.
    const DVec<W> series =
        z * (one - z * (simd::broadcast<W>(0.5) -
                        z * (simd::broadcast<W>(1.0 / 3.0) -
                             z * simd::broadcast<W>(0.25))));
    const DVec<W> l1p =
        simd::select_lt(z, simd::broadcast<W>(0x1p-12), series, log_y);

    const DVec<W> inv = one / (one + z);
    // softplus = max(x, 0) + log1p(z); std::max(x, 0.0) keeps -0.0.
    const DVec<W> sp_clean = simd::select_lt(xs, zero, zero, xs) + l1p;
    const DVec<W> sig_clean = simd::select_ge(xs, zero, inv, z * inv);
    sp = simd::select_nan(x, x, sp_clean);
    sig = simd::select_nan(x, x, sig_clean);
}

}  // namespace lanes_detail

// One W-wide chunk starting at `base`; `a`'s arrays must be readable and
// writable for W lanes from there.
template <int W>
MCSM_SIMD_INLINE void ekv_chunk(const EkvLanes& a, std::size_t base) {
    using simd::DVec;
    using lanes_detail::sp_sig_lanes;

    const DVec<W> vd = simd::load<W>(a.vd + base);
    const DVec<W> vg = simd::load<W>(a.vg + base);
    const DVec<W> vs = simd::load<W>(a.vs + base);
    const DVec<W> vb = simd::load<W>(a.vb + base);
    const DVec<W> pol = simd::load<W>(a.pol + base);
    const DVec<W> is = simd::load<W>(a.is + base);
    const DVec<W> nn = simd::load<W>(a.nn + base);
    const DVec<W> vt0 = simd::load<W>(a.vt0 + base);
    const DVec<W> lambda = simd::load<W>(a.lambda + base);
    const DVec<W> ut = simd::load<W>(a.ut + base);

    // Polarity-normalized, bulk-referenced voltages (ekv_current order).
    const DVec<W> wg = pol * (vg - vb);
    const DVec<W> wd = pol * (vd - vb);
    const DVec<W> ws = pol * (vs - vb);

    const DVec<W> vp = (wg - vt0) / nn;

    const DVec<W> two_ut = simd::broadcast<W>(2.0) * ut;
    DVec<W> sp_s, sig_s, sp_d, sig_d;
    sp_sig_lanes<W>((vp - ws) / two_ut, sp_s, sig_s);
    sp_sig_lanes<W>((vp - wd) / two_ut, sp_d, sig_d);
    const DVec<W> ff = sp_s * sp_s;
    const DVec<W> dff = sp_s * sig_s / ut;
    const DVec<W> fr = sp_d * sp_d;
    const DVec<W> dfr = sp_d * sig_d / ut;
    const DVec<W> diff = ff - fr;

    // smooth_abs / smooth_abs_deriv share one sqrt(x^2 + eps^2); operands
    // are identical so reusing it preserves the scalar bits.
    const DVec<W> eps = simd::broadcast<W>(1e-3);
    const DVec<W> dv = wd - ws;
    const DVec<W> root = simd::vsqrt(dv * dv + eps * eps);
    const DVec<W> sabs = root - eps;
    const DVec<W> dsabs = dv / root;
    const DVec<W> clm = simd::broadcast<W>(1.0) + lambda * sabs;

    const DVec<W> iw = is * diff * clm;

    const DVec<W> di_dwg = is * clm * (dff - dfr) / nn;
    const DVec<W> di_dws = -is * clm * dff - is * diff * lambda * dsabs;
    const DVec<W> di_dwd = is * clm * dfr + is * diff * lambda * dsabs;

    const DVec<W> ids = pol * iw;
    const DVec<W> gm = di_dwg;
    const DVec<W> gds = di_dwd;
    const DVec<W> gms = di_dws;
    const DVec<W> gmb = -(gm + gds + gms);
    // Affine RHS term, associated exactly like the scalar stamping path:
    // ids - (((gm*vg + gds*vd) + gms*vs) + gmb*vb).
    const DVec<W> ia =
        ids - (gm * vg + gds * vd + gms * vs + gmb * vb);

    simd::store<W>(a.gm + base, gm);
    simd::store<W>(a.gds + base, gds);
    simd::store<W>(a.gms + base, gms);
    simd::store<W>(a.gmb + base, gmb);
    simd::store<W>(a.ids + base, ids);
    simd::store<W>(a.ia + base, ia);
}

template <int W>
void ekv_eval_lanes_impl(const EkvLanes& a, std::size_t n) {
    for (std::size_t base = 0; base < n; base += W) ekv_chunk<W>(a, base);
}

}  // namespace mcsm::spice

#endif  // MCSM_SPICE_EKV_LANE_KERNEL_H
