#include "spice/circuit.h"

namespace mcsm::spice {

Circuit::Circuit() {
    node_names_.push_back("0");
    node_index_["0"] = kGround;
    node_index_["gnd"] = kGround;
}

int Circuit::node(const std::string& name) {
    const auto it = node_index_.find(name);
    if (it != node_index_.end()) return it->second;
    const int id = static_cast<int>(node_names_.size());
    node_names_.push_back(name);
    node_index_[name] = id;
    return id;
}

bool Circuit::has_node(const std::string& name) const {
    return node_index_.find(name) != node_index_.end();
}

int Circuit::node_id(const std::string& name) const {
    const auto it = node_index_.find(name);
    require(it != node_index_.end(), "Circuit: unknown node name");
    return it->second;
}

const std::string& Circuit::node_name(int id) const {
    require(id >= 0 && id < node_count(), "Circuit: bad node id");
    return node_names_[static_cast<std::size_t>(id)];
}

Device* Circuit::find_device(const std::string& name) {
    const auto it = device_index_.find(name);
    return it == device_index_.end() ? nullptr : devices_[it->second].get();
}

const Device* Circuit::find_device(const std::string& name) const {
    const auto it = device_index_.find(name);
    return it == device_index_.end() ? nullptr : devices_[it->second].get();
}

VSource& Circuit::vsource(const std::string& name) {
    auto* dev = dynamic_cast<VSource*>(find_device(name));
    require(dev != nullptr, "Circuit: no voltage source with that name");
    return *dev;
}

void Circuit::prepare() {
    if (prepared_) return;
    int branch = 0;
    int state = 0;
    for (const auto& dev : devices_) {
        dev->bind(branch, state);
        branch += dev->branch_count();
        state += dev->state_count();
    }
    branch_total_ = branch;
    state_total_ = state;
    prepared_ = true;
    // The workspace captures the topology (sparsity pattern + LU analysis);
    // device parameter/source changes do not invalidate it, adding devices
    // or switching backends does.
    workspace_ = std::make_unique<SolverWorkspace>(*this, backend_);
}

SolverWorkspace& Circuit::workspace() {
    require(prepared_ && workspace_ != nullptr,
            "Circuit: prepare() must run before workspace()");
    return *workspace_;
}

void Circuit::set_solver_backend(SolverBackend backend) {
    if (backend == backend_ && prepared_) return;
    backend_ = backend;
    prepared_ = false;
    workspace_.reset();
}

int Circuit::branch_of(const std::string& vsource_name) const {
    const auto it = device_index_.find(vsource_name);
    require(it != device_index_.end(), "Circuit: unknown device");
    const Device& dev = *devices_[it->second];
    require(dev.branch_count() == 1, "Circuit: device has no branch current");
    require(prepared_, "Circuit: prepare() must run before branch_of()");
    return dev.branch_base();
}

}  // namespace mcsm::spice
