// Device interface for the MNA solver. Transistor-level devices live in the
// spice module; the CSM cell models in src/core implement the same interface
// so golden and model circuits run through one transient engine.
#ifndef MCSM_SPICE_DEVICE_H
#define MCSM_SPICE_DEVICE_H

#include <span>
#include <string>
#include <vector>

#include "spice/sim_context.h"
#include "spice/stamper.h"

namespace mcsm::spice {

class Device {
public:
    explicit Device(std::string name) : name_(std::move(name)) {}
    virtual ~Device() = default;

    Device(const Device&) = delete;
    Device& operator=(const Device&) = delete;

    const std::string& name() const { return name_; }

    // Number of branch-current unknowns this device adds (voltage sources: 1).
    virtual int branch_count() const { return 0; }

    // Circuit nodes this device connects to, in declaration order (repeats
    // allowed). Cold-path introspection for the pre-flight circuit linter
    // (analysis/circuit_lint); not used while solving.
    virtual std::vector<int> terminals() const { return {}; }

    // Number of doubles of per-device state persisted across time steps
    // (e.g. capacitor companion currents for trapezoidal integration).
    virtual int state_count() const { return 0; }

    // Called once by the circuit when indices are frozen.
    void bind(int branch_base, int state_base) {
        branch_base_ = branch_base;
        state_base_ = state_base;
    }
    int branch_base() const { return branch_base_; }
    int state_base() const { return state_base_; }

    // Stamps the linearized companion model for the current NR iterate.
    virtual void stamp(Stamper& st, const SimContext& ctx) const = 0;

    // Appends times at which the device's drive has a derivative
    // discontinuity (waveform corners). The transient solver switches to
    // backward Euler for steps containing a breakpoint to suppress
    // trapezoidal ringing.
    virtual void collect_breakpoints(std::vector<double>& out) const {
        (void)out;
    }

    // Called after a time step converged; writes the device state for the
    // next step into `state_next` (same indexing as ctx.state).
    virtual void commit(const SimContext& ctx,
                        std::span<double> state_next) const {
        (void)ctx;
        (void)state_next;
    }

private:
    std::string name_;
    int branch_base_ = -1;
    int state_base_ = -1;
};

}  // namespace mcsm::spice

#endif  // MCSM_SPICE_DEVICE_H
