// W=1 instantiation: the guaranteed scalar fallback, built with baseline
// flags (plus the project-wide -ffp-contract=off) in every configuration.
#include "spice/ekv_lanes.h"

#include "spice/ekv_lane_kernel.h"

namespace mcsm::spice {

void ekv_eval_lanes_w1(const EkvLanes& a, std::size_t n) {
    ekv_eval_lanes_impl<1>(a, n);
}

}  // namespace mcsm::spice
