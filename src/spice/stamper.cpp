#include "spice/stamper.h"

#include "common/error.h"
#include "common/linear_solver.h"

namespace mcsm::spice {

Stamper::Stamper(int n_nodes, int n_branches)
    : backend_(Backend::kDense), n_nodes_(n_nodes), n_branches_(n_branches) {
    require(n_nodes >= 1, "Stamper: need at least the ground node");
    const std::size_t n = system_size();
    a_.resize(n, n);
    b_.assign(n, 0.0);
}

Stamper::Stamper(int n_nodes, int n_branches, SparseMatrix* sparse)
    : backend_(Backend::kSparse),
      n_nodes_(n_nodes),
      n_branches_(n_branches),
      sparse_(sparse) {
    require(n_nodes >= 1, "Stamper: need at least the ground node");
    require(sparse != nullptr && sparse->size() == system_size(),
            "Stamper: sparse storage size mismatch");
    b_.assign(system_size(), 0.0);
}

Stamper::Stamper(int n_nodes, int n_branches,
                 std::vector<std::pair<int, int>>* pattern_out)
    : backend_(Backend::kPattern),
      n_nodes_(n_nodes),
      n_branches_(n_branches),
      pattern_out_(pattern_out) {
    require(n_nodes >= 1, "Stamper: need at least the ground node");
    require(pattern_out != nullptr, "Stamper: null pattern sink");
    b_.assign(system_size(), 0.0);
}

std::size_t Stamper::system_size() const {
    return static_cast<std::size_t>(n_nodes_ - 1 + n_branches_);
}

void Stamper::clear() {
    switch (backend_) {
        case Backend::kDense:
            a_.set_zero();
            break;
        case Backend::kSparse:
            sparse_->set_zero();
            break;
        case Backend::kPattern:
            break;
    }
    std::fill(b_.begin(), b_.end(), 0.0);
}

void Stamper::sink_pattern_miss() const {
    throw ModelError(
        "Stamper: stamp outside the prepared sparsity pattern "
        "(device set changed without prepare()?)");
}

void Stamper::add_voltage_branch(int branch, int p, int m, double v) {
    require(branch >= 0 && branch < n_branches_, "Stamper: bad branch index");
    const int bi = unknown_of_branch(branch);
    const int pu = unknown_of_node(p);
    const int mu = unknown_of_node(m);
    if (pu >= 0) {
        // Branch current flows out of p through the source.
        sink(pu, bi, 1.0);
        sink(bi, pu, 1.0);
    }
    if (mu >= 0) {
        sink(mu, bi, -1.0);
        sink(bi, mu, -1.0);
    }
    b_[static_cast<std::size_t>(bi)] += v;
}

DenseMatrix& Stamper::matrix() {
    require(backend_ == Backend::kDense,
            "Stamper: matrix() is dense-backend only");
    return a_;
}

std::vector<double> Stamper::solve() {
    require(backend_ == Backend::kDense,
            "Stamper: solve() is dense-backend only");
    return solve_lu(a_, b_);
}

}  // namespace mcsm::spice
