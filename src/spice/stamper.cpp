#include "spice/stamper.h"

#include "common/error.h"
#include "common/linear_solver.h"

namespace mcsm::spice {

Stamper::Stamper(int n_nodes, int n_branches)
    : n_nodes_(n_nodes), n_branches_(n_branches) {
    require(n_nodes >= 1, "Stamper: need at least the ground node");
    const std::size_t n = system_size();
    a_.resize(n, n);
    b_.assign(n, 0.0);
}

std::size_t Stamper::system_size() const {
    return static_cast<std::size_t>(n_nodes_ - 1 + n_branches_);
}

void Stamper::clear() {
    a_.set_zero();
    std::fill(b_.begin(), b_.end(), 0.0);
}

void Stamper::add_matrix(int row_node, int col_node, double value) {
    const int r = unknown_of_node(row_node);
    const int c = unknown_of_node(col_node);
    if (r < 0 || c < 0) return;
    a_.at(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) += value;
}

void Stamper::add_rhs(int row_node, double value) {
    const int r = unknown_of_node(row_node);
    if (r < 0) return;
    b_[static_cast<std::size_t>(r)] += value;
}

void Stamper::add_conductance(int a, int b, double g) {
    add_matrix(a, a, g);
    add_matrix(b, b, g);
    add_matrix(a, b, -g);
    add_matrix(b, a, -g);
}

void Stamper::add_transconductance(int from, int to, int ctrl_p, int ctrl_m,
                                   double g) {
    add_matrix(from, ctrl_p, g);
    add_matrix(from, ctrl_m, -g);
    add_matrix(to, ctrl_p, -g);
    add_matrix(to, ctrl_m, g);
}

void Stamper::add_source_current(int from, int to, double i) {
    // Current i leaves `from` and enters `to`; KCL rows are written as
    // (sum of currents leaving node) = 0, with sources moved to the RHS.
    add_rhs(from, -i);
    add_rhs(to, i);
}

void Stamper::add_voltage_branch(int branch, int p, int m, double v) {
    require(branch >= 0 && branch < n_branches_, "Stamper: bad branch index");
    const int bi = unknown_of_branch(branch);
    const int pu = unknown_of_node(p);
    const int mu = unknown_of_node(m);
    const auto bi_u = static_cast<std::size_t>(bi);
    if (pu >= 0) {
        // Branch current flows out of p through the source.
        a_.at(static_cast<std::size_t>(pu), bi_u) += 1.0;
        a_.at(bi_u, static_cast<std::size_t>(pu)) += 1.0;
    }
    if (mu >= 0) {
        a_.at(static_cast<std::size_t>(mu), bi_u) -= 1.0;
        a_.at(bi_u, static_cast<std::size_t>(mu)) -= 1.0;
    }
    b_[bi_u] += v;
}

void Stamper::add_gmin_everywhere(double gmin) {
    for (int node = 1; node < n_nodes_; ++node) add_matrix(node, node, gmin);
}

std::vector<double> Stamper::solve() {
    return solve_lu(a_, b_);
}

}  // namespace mcsm::spice
