// W=4 instantiation, compiled -mavx2 -mfma -ffp-contract=off (see
// src/spice/CMakeLists.txt): the DVec lane loops collapse to 256-bit
// vmulpd/vaddpd/vdivpd/vsqrtpd, never contracted FMAs, so each lane stays
// bit-identical to the scalar kernel. Dispatched only on CPUs reporting
// AVX2+FMA.
#include "spice/ekv_lanes.h"

#include "spice/ekv_lane_kernel.h"

namespace mcsm::spice {

void ekv_eval_lanes_w4(const EkvLanes& a, std::size_t n) {
    ekv_eval_lanes_impl<4>(a, n);
}

}  // namespace mcsm::spice
