// Transient analysis with Newton-Raphson per step, trapezoidal or
// backward-Euler integration, and two step-control regimes:
//  * kFixedGrid (default) -- the record grid is the time grid; steps only
//    subdivide on Newton failure. Bit-compatible with the seed solver.
//  * kAdaptiveLte -- a predictor-corrector local-truncation-error estimate
//    grows and shrinks dt between source breakpoints (which stay exact).
// Independently, `reuse_jacobian` freezes one sparse LU factorization across
// consecutive accepted steps and runs delta-form Newton corrections against
// it; the residual is always assembled at the current iterate, so
// correctness never depends on the stale matrix (same contract as
// solve_dc_sweep).
#ifndef MCSM_SPICE_TRAN_SOLVER_H
#define MCSM_SPICE_TRAN_SOLVER_H

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "spice/circuit.h"
#include "spice/dc_solver.h"
#include "wave/waveform.h"

namespace mcsm::spice {

enum class StepControl {
    kFixedGrid,    // step on the dt grid (legacy; bit-compatible baseline)
    kAdaptiveLte,  // LTE-controlled dt between breakpoints
};

struct TranOptions {
    double tstop = 1e-9;   // end time [s]
    double dt = 1e-12;     // recording/time-step grid [s]
    Integrator integrator = Integrator::kTrapezoidal;
    int max_newton = 80;
    double vtol = 1e-7;        // NR convergence tolerance [V]
    double max_update = 0.4;   // NR damping clamp [V]
    double gmin = 1e-12;       // transient shunt [S]
    int max_subdivisions = 10; // binary step subdivision depth on NR failure

    // --- step control (kAdaptiveLte only, except dt_min) ----------------
    StepControl step_control = StepControl::kFixedGrid;
    double dt_min = 0.0;    // smallest adaptive step; 0 selects dt / 1024
    double dt_max = 0.0;    // largest adaptive step; 0 selects 32 * dt
    // Per-step LTE budget over node voltages (branch currents are excluded:
    // trapezoidal source currents carry a marginally-stable ringing mode
    // that a polynomial predictor cannot track).
    double lte_rel = 2e-3;    // relative budget
    double lte_abs_v = 5e-5;  // absolute floor [V]
    double grow_max = 2.0;    // max per-accepted-step dt growth factor

    // --- Jacobian reuse (sparse backend; silently off on dense) ---------
    bool reuse_jacobian = false;
    double itol = 1e-9;  // residual acceptance on KCL rows [A] when the
                         // accepting iteration ran against a stale LU
    // Devices may keep their cached linearization — the channel tangent
    // model and the step-frozen capacitance evaluation — when no terminal
    // voltage moved more than this [V] since it was last evaluated (0 =
    // re-evaluate everywhere, the bit-compatible default). Channel reuse
    // re-stamps the cached *tangent*, so its model error is second order
    // in the threshold; cap reuse is first order, which bounds how large
    // the knob should be. On a gate chain only the switching cells pay for
    // device evaluation; settled cells revalidate for free. Assembly,
    // commit, and LTE control all see the same (slightly stale, still
    // charge-consistent) linearization.
    double stale_dv = 0.0;

    // Operating-point options for the t=0 solve.
    DcOptions dc;
};

// Validates every TranOptions field, throwing ModelError with a descriptive
// message on the first violation. solve_tran calls this up front.
void validate_tran_options(const TranOptions& options);

// The tuned fast-path configuration shared by the characterizer, the serve
// layer's exact queries, and the benches: LTE-adaptive stepping plus
// Jacobian reuse on top of the caller's (tstop, dt) window.
TranOptions fast_tran_options(double tstop, double dt);

// Stepping-loop counters exposed through TranResult::stats().
struct TranStats {
    long long steps_accepted = 0;
    long long steps_rejected = 0;  // LTE rejections + Newton failures
    long long lte_rejections = 0;  // subset of steps_rejected: LTE only
    long long newton_iters = 0;    // linear solves across all attempts
    long long lu_refactors = 0;    // factorizations (reuse mode only)
    // Accepted steps whose Newton loop ran entirely against a frozen
    // factorization from an earlier step.
    long long jacobian_reuse_steps = 0;
};

class TranResult {
public:
    // Empty result, fillable by assignment (used by batch containers).
    TranResult() = default;

    TranResult(std::vector<std::string> node_names,
               std::unordered_map<std::string, int> vsource_branch);

    // Preallocates storage for n_samples records of n_branches branch
    // currents, so record() never reallocates during the stepping loop.
    void reserve(std::size_t n_samples, int n_branches);

    void record(double t, const std::vector<double>& x, int n_nodes,
                int n_branches);

    const std::vector<double>& times() const { return times_; }
    std::size_t sample_count() const { return times_.size(); }

    // Voltage waveform of a node (by name or id).
    wave::Waveform node_waveform(const std::string& node_name) const;
    wave::Waveform node_waveform(int node_id) const;

    // Current through a voltage source, positive flowing from the positive
    // terminal through the source to the negative terminal.
    wave::Waveform vsource_current(const std::string& vsource_name) const;

    double final_node_voltage(int node_id) const;

    const TranStats& stats() const { return stats_; }
    void set_stats(const TranStats& stats) { stats_ = stats; }

private:
    std::vector<std::string> node_names_;
    std::unordered_map<std::string, int> node_index_;
    std::unordered_map<std::string, int> vsource_branch_;
    std::vector<double> times_;
    std::vector<std::vector<double>> node_v_;   // [node][sample]
    std::vector<std::vector<double>> branch_i_; // [branch][sample]
    TranStats stats_;
};

// Runs a transient from the DC operating point at t=0 to options.tstop.
// Throws NumericalError if a step fails even after subdivision.
TranResult solve_tran(Circuit& circuit, const TranOptions& options);

}  // namespace mcsm::spice

#endif  // MCSM_SPICE_TRAN_SOLVER_H
