// Fixed-grid transient analysis with Newton-Raphson per step, trapezoidal or
// backward-Euler integration, and automatic step subdivision on
// non-convergence.
#ifndef MCSM_SPICE_TRAN_SOLVER_H
#define MCSM_SPICE_TRAN_SOLVER_H

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "spice/circuit.h"
#include "spice/dc_solver.h"
#include "wave/waveform.h"

namespace mcsm::spice {

struct TranOptions {
    double tstop = 1e-9;   // end time [s]
    double dt = 1e-12;     // recording/time-step grid [s]
    Integrator integrator = Integrator::kTrapezoidal;
    int max_newton = 80;
    double vtol = 1e-7;        // NR convergence tolerance [V]
    double max_update = 0.4;   // NR damping clamp [V]
    double gmin = 1e-12;       // transient shunt [S]
    int max_subdivisions = 10; // binary step subdivision depth on NR failure
    // Operating-point options for the t=0 solve.
    DcOptions dc;
};

class TranResult {
public:
    // Empty result, fillable by assignment (used by batch containers).
    TranResult() = default;

    TranResult(std::vector<std::string> node_names,
               std::unordered_map<std::string, int> vsource_branch);

    // Preallocates storage for n_samples records of n_branches branch
    // currents, so record() never reallocates during the stepping loop.
    void reserve(std::size_t n_samples, int n_branches);

    void record(double t, const std::vector<double>& x, int n_nodes,
                int n_branches);

    const std::vector<double>& times() const { return times_; }
    std::size_t sample_count() const { return times_.size(); }

    // Voltage waveform of a node (by name or id).
    wave::Waveform node_waveform(const std::string& node_name) const;
    wave::Waveform node_waveform(int node_id) const;

    // Current through a voltage source, positive flowing from the positive
    // terminal through the source to the negative terminal.
    wave::Waveform vsource_current(const std::string& vsource_name) const;

    double final_node_voltage(int node_id) const;

private:
    std::vector<std::string> node_names_;
    std::unordered_map<std::string, int> node_index_;
    std::unordered_map<std::string, int> vsource_branch_;
    std::vector<double> times_;
    std::vector<std::vector<double>> node_v_;   // [node][sample]
    std::vector<std::vector<double>> branch_i_; // [branch][sample]
};

// Runs a transient from the DC operating point at t=0 to options.tstop.
// Throws NumericalError if a step fails even after subdivision.
TranResult solve_tran(Circuit& circuit, const TranOptions& options);

}  // namespace mcsm::spice

#endif  // MCSM_SPICE_TRAN_SOLVER_H
