// Time-dependent value for independent sources: DC or piecewise-linear
// (driven by a wave::Waveform).
#ifndef MCSM_SPICE_SOURCE_SPEC_H
#define MCSM_SPICE_SOURCE_SPEC_H

#include <utility>

#include "wave/waveform.h"

namespace mcsm::spice {

class SourceSpec {
public:
    SourceSpec() = default;

    static SourceSpec dc(double v) {
        SourceSpec s;
        s.is_dc_ = true;
        s.dc_value_ = v;
        return s;
    }

    static SourceSpec pwl(wave::Waveform w) {
        SourceSpec s;
        s.is_dc_ = false;
        s.waveform_ = std::move(w);
        return s;
    }

    double value(double t) const {
        return is_dc_ ? dc_value_ : waveform_.at(t);
    }

    bool is_dc() const { return is_dc_; }
    const wave::Waveform& waveform() const { return waveform_; }

private:
    bool is_dc_ = true;
    double dc_value_ = 0.0;
    wave::Waveform waveform_;
};

}  // namespace mcsm::spice

#endif  // MCSM_SPICE_SOURCE_SPEC_H
