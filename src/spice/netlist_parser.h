// SPICE-style netlist parser for the substrate, so circuits and regressions
// can be described as decks instead of C++.
//
// Supported deck syntax (case-insensitive element letters, '*' comments,
// node names are arbitrary identifiers, '0'/'gnd' is ground):
//
//   * comment
//   .model nch nmos vt0=0.33 kp=4.2e-4 ...     (param names match MosParams)
//   .model pch pmos vt0=0.32 ...
//   Rname a b 1k
//   Cname a b 10f
//   Vname p m DC 1.2
//   Vname p m PWL (0 0 1n 0 1.1n 1.2)
//   Iname p m DC 1u
//   Mname d g s b modelname w=0.52u l=0.13u
//   .end                                        (optional)
//
// Engineering suffixes: f p n u m k meg g t.
#ifndef MCSM_SPICE_NETLIST_PARSER_H
#define MCSM_SPICE_NETLIST_PARSER_H

#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_map>

#include "spice/circuit.h"

namespace mcsm::spice {

// A parsed deck: the circuit plus the .model cards it owns (MOSFETs hold
// non-owning pointers into `models`, so keep the ParsedNetlist alive as
// long as the circuit).
struct ParsedNetlist {
    Circuit circuit;
    std::unordered_map<std::string, std::unique_ptr<MosParams>> models;
};

// Parses a numeric literal with an optional engineering suffix ("2.5k",
// "10f", "0.13u", "3meg"). Throws ModelError on malformed input.
double parse_spice_number(const std::string& token);

// Parses a full deck. Throws ModelError with a line number on any syntax
// error, unknown model reference, or duplicate element name.
ParsedNetlist parse_netlist(std::istream& input);
ParsedNetlist parse_netlist_string(const std::string& text);

}  // namespace mcsm::spice

#endif  // MCSM_SPICE_NETLIST_PARSER_H
