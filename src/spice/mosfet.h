// Four-terminal MOSFET with an EKV-style continuous I-V model, Meyer-style
// region-blended gate capacitances and bias-dependent junction capacitances.
//
// The EKV interpolation current
//     I = Is * [F(vp - vs) - F(vp - vd)] * (1 + lambda*|vds|),
//     F(v) = softplus(v / 2Ut)^2,  vp = (vg - VT0)/n   (bulk-referenced)
// is smooth from subthreshold to strong inversion and symmetric in
// drain/source, which matters here: the stack-effect experiments rely on the
// internal node of a series stack charging/discharging through a device
// whose source and drain roles swap, and on the body-affected |Vt| plateau
// (bulk-referencing gives VT_eff = VT0 + (n-1) * Vsb).
#ifndef MCSM_SPICE_MOSFET_H
#define MCSM_SPICE_MOSFET_H

#include <span>
#include <string>

#include "spice/device.h"
#include "spice/ekv.h"
#include "spice/mos_params.h"

namespace mcsm::spice {

// Small-signal capacitances evaluated at a bias point.
struct MosCaps {
    double cgs = 0.0;
    double cgd = 0.0;
    double cgb = 0.0;
    double cdb = 0.0;
    double csb = 0.0;
};

class Mosfet : public Device {
public:
    // Geometry in meters. Junction areas/perimeters default from W and
    // params.ldiff; pass explicit values to override.
    Mosfet(std::string name, int d, int g, int s, int b,
           const MosParams& params, double w, double l, double ad = -1.0,
           double as = -1.0, double pd = -1.0, double ps = -1.0);

    int state_count() const override { return 5; }  // cgs, cgd, cgb, cdb, csb
    std::vector<int> terminals() const override { return {d_, g_, s_, b_}; }

    void stamp(Stamper& st, const SimContext& ctx) const override;
    void commit(const SimContext& ctx,
                std::span<double> state_next) const override;

    // Model evaluation at explicit terminal voltages (exposed for tests and
    // for the model-based capacitance shortcut in the characterizer). This
    // is the scalar reference path: libm softplus/logistic through the
    // shared ekv_current kernel.
    MosCurrent evaluate_current(double vd, double vg, double vs,
                                double vb) const;
    MosCaps evaluate_caps(double vd, double vg, double vs, double vb) const;

    // Channel coefficients for the batched SoA evaluator
    // (spice/device_batch). Derived on demand so the device keeps the
    // original read-params-at-evaluation semantics (the tech card must
    // outlive the device, not predate its construction).
    EkvCoeffs ekv_coeffs() const {
        return EkvCoeffs::from(*params_, w_, l_);
    }

    // Capacitances at the previous accepted solution, cached per transient
    // step (keyed on SimContext::step_id): shared by every Newton iteration
    // and the commit of a step, and by the batched companion-cap stamping.
    // A device belongs to one circuit and circuits solve single-threaded,
    // so the mutable cache is safe.
    const MosCaps& caps_at_step(const SimContext& ctx) const;

    double width() const { return w_; }
    double length() const { return l_; }
    const MosParams& params() const { return *params_; }

    int drain() const { return d_; }
    int gate() const { return g_; }
    int source() const { return s_; }
    int bulk() const { return b_; }

private:
    double polarity() const {
        return params_->type == MosType::kNmos ? 1.0 : -1.0;
    }
    // Junction capacitance (area + sidewall) for the given junction reverse
    // bias; vj is the forward-bias voltage of the junction diode.
    double junction_cap(double vj, double area, double perim) const;

    int d_;
    int g_;
    int s_;
    int b_;
    const MosParams* params_;  // non-owning; lives in the technology card
    double w_;
    double l_;
    double ad_;
    double as_;
    double pd_;
    double ps_;
    mutable long long caps_step_id_ = -1;
    mutable MosCaps caps_cache_;
    // Terminal voltages caps_cache_ was evaluated at plus the solve_tran
    // run that evaluated them, for the delta-gated revalidation
    // (SimContext::stale_dv / run_id).
    mutable double caps_vd_ = 0.0, caps_vg_ = 0.0, caps_vs_ = 0.0,
                   caps_vb_ = 0.0;
    mutable long long caps_run_id_ = -1;
};

}  // namespace mcsm::spice

#endif  // MCSM_SPICE_MOSFET_H
