#include "spice/tran_solver.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/error.h"

namespace mcsm::spice {

TranResult::TranResult(std::vector<std::string> node_names,
                       std::unordered_map<std::string, int> vsource_branch)
    : node_names_(std::move(node_names)),
      vsource_branch_(std::move(vsource_branch)) {
    for (std::size_t i = 0; i < node_names_.size(); ++i)
        node_index_[node_names_[i]] = static_cast<int>(i);
    node_v_.resize(node_names_.size());
}

void TranResult::reserve(std::size_t n_samples, int n_branches) {
    times_.reserve(n_samples);
    for (auto& v : node_v_) v.reserve(n_samples);
    if (branch_i_.size() < static_cast<std::size_t>(n_branches))
        branch_i_.resize(static_cast<std::size_t>(n_branches));
    for (auto& i : branch_i_) i.reserve(n_samples);
}

void TranResult::record(double t, const std::vector<double>& x, int n_nodes,
                        int n_branches) {
    times_.push_back(t);
    for (int node = 0; node < n_nodes; ++node)
        node_v_[static_cast<std::size_t>(node)].push_back(
            x[static_cast<std::size_t>(node)]);
    if (branch_i_.empty()) branch_i_.resize(static_cast<std::size_t>(n_branches));
    for (int br = 0; br < n_branches; ++br)
        branch_i_[static_cast<std::size_t>(br)].push_back(
            x[static_cast<std::size_t>(n_nodes + br)]);
}

wave::Waveform TranResult::node_waveform(const std::string& node_name) const {
    const auto it = node_index_.find(node_name);
    require(it != node_index_.end(), "TranResult: unknown node name");
    return node_waveform(it->second);
}

wave::Waveform TranResult::node_waveform(int node_id) const {
    require(node_id >= 0 &&
                node_id < static_cast<int>(node_v_.size()),
            "TranResult: bad node id");
    return wave::Waveform(times_, node_v_[static_cast<std::size_t>(node_id)]);
}

wave::Waveform TranResult::vsource_current(
    const std::string& vsource_name) const {
    const auto it = vsource_branch_.find(vsource_name);
    require(it != vsource_branch_.end(), "TranResult: unknown vsource");
    return wave::Waveform(times_,
                          branch_i_[static_cast<std::size_t>(it->second)]);
}

double TranResult::final_node_voltage(int node_id) const {
    require(!times_.empty(), "TranResult: empty result");
    require(node_id >= 0 && node_id < static_cast<int>(node_v_.size()),
            "TranResult: bad node id");
    return node_v_[static_cast<std::size_t>(node_id)].back();
}

namespace {

// Reusable step buffers: advance() runs thousands of times per transient,
// and the recursion on subdivision is sequential, so one set suffices.
struct TranScratch {
    std::vector<double> x_new;
    std::vector<double> state_next;
};

// Process-wide so step ids never repeat across solve_tran calls on a reused
// circuit (devices key their linearization caches on it).
std::atomic<long long> g_step_counter{0};

// The transient SimContext shared by newton_tran and commit_step.
SimContext make_tran_context(Integrator integrator, double time, double dt,
                             const std::vector<double>& x_prev,
                             const std::vector<double>& state,
                             const std::vector<double>& x,
                             long long step_id) {
    SimContext ctx;
    ctx.mode = SimContext::Mode::kTran;
    ctx.time = time;
    ctx.dt = dt;
    ctx.integrator = integrator;
    ctx.x = &x;
    ctx.x_prev = &x_prev;
    ctx.state = &state;
    ctx.step_id = step_id;
    return ctx;
}

// One NR solve for the step ending at `time` with step `dt`. `x` enters as
// the warm start and leaves as the solution. Returns false on divergence.
// Assembly and factorization run in the circuit's persistent workspace;
// the iteration body performs no heap allocation.
bool newton_tran(Circuit& circuit, const TranOptions& options,
                 Integrator integrator, double time, double dt,
                 const std::vector<double>& x_prev,
                 const std::vector<double>& state, std::vector<double>& x,
                 long long step_id) {
    const int n_nodes = circuit.node_count();
    SolverWorkspace& ws = circuit.workspace();
    const SimContext ctx =
        make_tran_context(integrator, time, dt, x_prev, state, x, step_id);

    for (int it = 0; it < options.max_newton; ++it) {
        Stamper& st = ws.assemble(ctx);
        st.add_gmin_everywhere(options.gmin);

        const std::vector<double>* sol_ptr;
        try {
            sol_ptr = &ws.solve();
        } catch (const NumericalError&) {
            return false;
        }
        const std::vector<double>& sol = *sol_ptr;

        double dx_max = 0.0;
        for (int node = 1; node < n_nodes; ++node) {
            const int u = st.unknown_of_node(node);
            dx_max = std::max(
                dx_max, std::fabs(sol[static_cast<std::size_t>(u)] -
                                  x[static_cast<std::size_t>(node)]));
        }
        if (!std::isfinite(dx_max)) return false;
        const double alpha =
            dx_max > options.max_update ? options.max_update / dx_max : 1.0;

        for (int node = 1; node < n_nodes; ++node) {
            const int u = st.unknown_of_node(node);
            auto& xv = x[static_cast<std::size_t>(node)];
            xv += alpha * (sol[static_cast<std::size_t>(u)] - xv);
        }
        for (int br = 0; br < circuit.branch_total(); ++br) {
            const int u = st.unknown_of_branch(br);
            auto& xb = x[static_cast<std::size_t>(n_nodes + br)];
            xb += alpha * (sol[static_cast<std::size_t>(u)] - xb);
        }
        if (dx_max < options.vtol) return true;
    }
    return false;
}

// Commits device states after an accepted step into `state_next`.
void commit_step(Circuit& circuit, Integrator integrator, double time,
                 double dt, const std::vector<double>& x_prev,
                 const std::vector<double>& state,
                 const std::vector<double>& x,
                 std::vector<double>& state_next, long long step_id) {
    const SimContext ctx =
        make_tran_context(integrator, time, dt, x_prev, state, x, step_id);
    state_next = state;
    for (const auto& dev : circuit.devices())
        dev->commit(ctx, std::span<double>(state_next));
}

// True when a source-waveform corner lies inside [t0, t0+dt): trapezoidal
// integration would ring across the derivative discontinuity.
bool step_has_breakpoint(const std::vector<double>& breakpoints, double t0,
                         double dt) {
    const double eps = dt * 1e-6;
    const auto it =
        std::lower_bound(breakpoints.begin(), breakpoints.end(), t0 - eps);
    return it != breakpoints.end() && *it < t0 + dt - eps;
}

// Advances from (x, state) at t0 to t0+dt, subdividing on failure.
void advance(Circuit& circuit, const TranOptions& options,
             const std::vector<double>& breakpoints, double t0, double dt,
             std::vector<double>& x, std::vector<double>& state,
             TranScratch& scratch, int depth) {
    const Integrator integrator =
        step_has_breakpoint(breakpoints, t0, dt) ? Integrator::kBackwardEuler
                                                 : options.integrator;
    scratch.x_new = x;  // warm start
    const long long step_id =
        g_step_counter.fetch_add(1, std::memory_order_relaxed);
    if (newton_tran(circuit, options, integrator, t0 + dt, dt, x, state,
                    scratch.x_new, step_id)) {
        commit_step(circuit, integrator, t0 + dt, dt, x, state, scratch.x_new,
                    scratch.state_next, step_id);
        x.swap(scratch.x_new);
        state.swap(scratch.state_next);
        return;
    }
    if (depth >= options.max_subdivisions) {
        throw NumericalError("solve_tran: step at t=" + std::to_string(t0) +
                             " failed after max subdivisions");
    }
    advance(circuit, options, breakpoints, t0, dt * 0.5, x, state, scratch,
            depth + 1);
    advance(circuit, options, breakpoints, t0 + dt * 0.5, dt * 0.5, x, state,
            scratch, depth + 1);
}

}  // namespace

TranResult solve_tran(Circuit& circuit, const TranOptions& options) {
    require(options.tstop > 0.0 && options.dt > 0.0,
            "solve_tran: tstop and dt must be positive");
    circuit.prepare();

    // Operating point at t=0.
    DcOptions dc = options.dc;
    dc.time = 0.0;
    DcResult op = solve_dc(circuit, dc);

    std::vector<double> x = op.x;
    std::vector<double> state(static_cast<std::size_t>(circuit.state_total()),
                              0.0);

    // Collect node names and vsource branch map for the result object.
    std::vector<std::string> names;
    names.reserve(static_cast<std::size_t>(circuit.node_count()));
    for (int node = 0; node < circuit.node_count(); ++node)
        names.push_back(circuit.node_name(node));
    std::unordered_map<std::string, int> vsrc;
    for (const auto& dev : circuit.devices()) {
        if (dev->branch_count() == 1) vsrc[dev->name()] = dev->branch_base();
    }

    // Breakpoints from every source, deduplicated and clamped to the run
    // window; corners outside [0, tstop] can never land inside a step.
    std::vector<double> breakpoints;
    for (const auto& dev : circuit.devices())
        dev->collect_breakpoints(breakpoints);
    std::sort(breakpoints.begin(), breakpoints.end());
    breakpoints.erase(std::unique(breakpoints.begin(), breakpoints.end()),
                      breakpoints.end());
    breakpoints.erase(
        std::remove_if(breakpoints.begin(), breakpoints.end(),
                       [&](double t) { return t < 0.0 || t > options.tstop; }),
        breakpoints.end());

    TranResult result(std::move(names), std::move(vsrc));
    const auto n_steps =
        static_cast<std::size_t>(std::ceil(options.tstop / options.dt - 1e-9));
    result.reserve(n_steps + 1, circuit.branch_total());
    result.record(0.0, x, circuit.node_count(), circuit.branch_total());

    TranScratch scratch;
    scratch.x_new.reserve(x.size());
    scratch.state_next.reserve(state.size());
    for (std::size_t k = 0; k < n_steps; ++k) {
        const double t0 = options.dt * static_cast<double>(k);
        const double t1 = std::min(options.tstop, t0 + options.dt);
        advance(circuit, options, breakpoints, t0, t1 - t0, x, state, scratch,
                0);
        result.record(t1, x, circuit.node_count(), circuit.branch_total());
    }
    return result;
}

}  // namespace mcsm::spice
