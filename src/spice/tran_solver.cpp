#include "spice/tran_solver.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cmath>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mcsm::spice {

TranResult::TranResult(std::vector<std::string> node_names,
                       std::unordered_map<std::string, int> vsource_branch)
    : node_names_(std::move(node_names)),
      vsource_branch_(std::move(vsource_branch)) {
    for (std::size_t i = 0; i < node_names_.size(); ++i)
        node_index_[node_names_[i]] = static_cast<int>(i);
    node_v_.resize(node_names_.size());
}

void TranResult::reserve(std::size_t n_samples, int n_branches) {
    times_.reserve(n_samples);
    for (auto& v : node_v_) v.reserve(n_samples);
    if (branch_i_.size() < static_cast<std::size_t>(n_branches))
        branch_i_.resize(static_cast<std::size_t>(n_branches));
    for (auto& i : branch_i_) i.reserve(n_samples);
}

void TranResult::record(double t, const std::vector<double>& x, int n_nodes,
                        int n_branches) {
    times_.push_back(t);
    for (int node = 0; node < n_nodes; ++node)
        node_v_[static_cast<std::size_t>(node)].push_back(
            x[static_cast<std::size_t>(node)]);
    if (branch_i_.empty()) branch_i_.resize(static_cast<std::size_t>(n_branches));
    for (int br = 0; br < n_branches; ++br)
        branch_i_[static_cast<std::size_t>(br)].push_back(
            x[static_cast<std::size_t>(n_nodes + br)]);
}

wave::Waveform TranResult::node_waveform(const std::string& node_name) const {
    const auto it = node_index_.find(node_name);
    require(it != node_index_.end(), "TranResult: unknown node name");
    return node_waveform(it->second);
}

wave::Waveform TranResult::node_waveform(int node_id) const {
    require(node_id >= 0 &&
                node_id < static_cast<int>(node_v_.size()),
            "TranResult: bad node id");
    return wave::Waveform(times_, node_v_[static_cast<std::size_t>(node_id)]);
}

wave::Waveform TranResult::vsource_current(
    const std::string& vsource_name) const {
    const auto it = vsource_branch_.find(vsource_name);
    require(it != vsource_branch_.end(), "TranResult: unknown vsource");
    return wave::Waveform(times_,
                          branch_i_[static_cast<std::size_t>(it->second)]);
}

double TranResult::final_node_voltage(int node_id) const {
    require(!times_.empty(), "TranResult: empty result");
    require(node_id >= 0 && node_id < static_cast<int>(node_v_.size()),
            "TranResult: bad node id");
    return node_v_[static_cast<std::size_t>(node_id)].back();
}

namespace {

// Reusable step buffers: advance() runs thousands of times per transient,
// and the recursion on subdivision is sequential, so one set suffices.
struct TranScratch {
    std::vector<double> x_new;
    std::vector<double> state_next;
};

// Process-wide so step ids never repeat across solve_tran calls on a reused
// circuit (devices key their linearization caches on it).
std::atomic<long long> g_step_counter{0};

// The transient SimContext shared by newton_tran and commit_step.
SimContext make_tran_context(Integrator integrator, double time, double dt,
                             const std::vector<double>& x_prev,
                             const std::vector<double>& state,
                             const std::vector<double>& x,
                             long long step_id) {
    SimContext ctx;
    ctx.mode = SimContext::Mode::kTran;
    ctx.time = time;
    ctx.dt = dt;
    ctx.integrator = integrator;
    ctx.x = &x;
    ctx.x_prev = &x_prev;
    ctx.state = &state;
    ctx.step_id = step_id;
    return ctx;
}

// One NR solve for the step ending at `time` with step `dt`. `x` enters as
// the warm start and leaves as the solution. Returns false on divergence.
// Assembly and factorization run in the circuit's persistent workspace;
// the iteration body performs no heap allocation.
bool newton_tran(Circuit& circuit, const TranOptions& options,
                 Integrator integrator, double time, double dt,
                 const std::vector<double>& x_prev,
                 const std::vector<double>& state, std::vector<double>& x,
                 long long step_id, TranStats* stats = nullptr) {
    const int n_nodes = circuit.node_count();
    SolverWorkspace& ws = circuit.workspace();
    const SimContext ctx =
        make_tran_context(integrator, time, dt, x_prev, state, x, step_id);

    for (int it = 0; it < options.max_newton; ++it) {
        if (stats != nullptr) ++stats->newton_iters;
        Stamper& st = ws.assemble(ctx);
        st.add_gmin_everywhere(options.gmin);

        const std::vector<double>* sol_ptr;
        try {
            sol_ptr = &ws.solve();
        } catch (const NumericalError&) {
            return false;
        }
        const std::vector<double>& sol = *sol_ptr;

        double dx_max = 0.0;
        for (int node = 1; node < n_nodes; ++node) {
            const int u = st.unknown_of_node(node);
            dx_max = std::max(
                dx_max, std::fabs(sol[static_cast<std::size_t>(u)] -
                                  x[static_cast<std::size_t>(node)]));
        }
        if (!std::isfinite(dx_max)) return false;
        const double alpha =
            dx_max > options.max_update ? options.max_update / dx_max : 1.0;

        for (int node = 1; node < n_nodes; ++node) {
            const int u = st.unknown_of_node(node);
            auto& xv = x[static_cast<std::size_t>(node)];
            xv += alpha * (sol[static_cast<std::size_t>(u)] - xv);
        }
        for (int br = 0; br < circuit.branch_total(); ++br) {
            const int u = st.unknown_of_branch(br);
            auto& xb = x[static_cast<std::size_t>(n_nodes + br)];
            xb += alpha * (sol[static_cast<std::size_t>(u)] - xb);
        }
        if (dx_max < options.vtol) return true;
    }
    return false;
}

// Commits device states after an accepted step into `state_next`.
void commit_step(Circuit& circuit, Integrator integrator, double time,
                 double dt, const std::vector<double>& x_prev,
                 const std::vector<double>& state,
                 const std::vector<double>& x,
                 std::vector<double>& state_next, long long step_id) {
    const SimContext ctx =
        make_tran_context(integrator, time, dt, x_prev, state, x, step_id);
    state_next = state;
    for (const auto& dev : circuit.devices())
        dev->commit(ctx, std::span<double>(state_next));
}

// True when a source-waveform corner lies inside [t0, t0+dt): trapezoidal
// integration would ring across the derivative discontinuity.
bool step_has_breakpoint(const std::vector<double>& breakpoints, double t0,
                         double dt) {
    const double eps = dt * 1e-6;
    const auto it =
        std::lower_bound(breakpoints.begin(), breakpoints.end(), t0 - eps);
    return it != breakpoints.end() && *it < t0 + dt - eps;
}

// Advances from (x, state) at t0 to t0+dt, subdividing on failure.
void advance(Circuit& circuit, const TranOptions& options,
             const std::vector<double>& breakpoints, double t0, double dt,
             std::vector<double>& x, std::vector<double>& state,
             TranScratch& scratch, int depth, TranStats& stats) {
    const Integrator integrator =
        step_has_breakpoint(breakpoints, t0, dt) ? Integrator::kBackwardEuler
                                                 : options.integrator;
    scratch.x_new = x;  // warm start
    const long long step_id =
        g_step_counter.fetch_add(1, std::memory_order_relaxed);
    if (newton_tran(circuit, options, integrator, t0 + dt, dt, x, state,
                    scratch.x_new, step_id, &stats)) {
        commit_step(circuit, integrator, t0 + dt, dt, x, state, scratch.x_new,
                    scratch.state_next, step_id);
        x.swap(scratch.x_new);
        state.swap(scratch.state_next);
        ++stats.steps_accepted;
        return;
    }
    ++stats.steps_rejected;
    if (depth >= options.max_subdivisions) {
        throw NumericalError("solve_tran: step at t=" + std::to_string(t0) +
                             " failed after max subdivisions");
    }
    advance(circuit, options, breakpoints, t0, dt * 0.5, x, state, scratch,
            depth + 1, stats);
    advance(circuit, options, breakpoints, t0 + dt * 0.5, dt * 0.5, x, state,
            scratch, depth + 1, stats);
}

// TranStats is the single source for stepping-loop accounting: the engines
// fill the struct (surfaced per-result through TranResult::stats(), which
// the bench gates read), and each solve publishes the same struct into the
// process-wide obs counters here -- the two views cannot drift apart.
void publish_tran_stats(const TranStats& stats) {
    static obs::Counter& solves = obs::counter("solver.tran.solves");
    static obs::Counter& accepted =
        obs::counter("solver.tran.steps_accepted");
    static obs::Counter& rejected =
        obs::counter("solver.tran.steps_rejected");
    static obs::Counter& lte = obs::counter("solver.tran.lte_rejections");
    static obs::Counter& iters = obs::counter("solver.tran.newton_iters");
    static obs::Counter& refactors =
        obs::counter("solver.tran.lu_refactors");
    static obs::Counter& reuse =
        obs::counter("solver.tran.jacobian_reuse_steps");
    solves.add();
    accepted.add(stats.steps_accepted);
    rejected.add(stats.steps_rejected);
    lte.add(stats.lte_rejections);
    iters.add(stats.newton_iters);
    refactors.add(stats.lu_refactors);
    reuse.add(stats.jacobian_reuse_steps);
}

// --- fast path: Jacobian reuse + LTE-adaptive stepping -------------------

// A few ulps of absolute slack around a time value; used to dedupe
// breakpoints against accepted step times and to snap step ends.
double time_ulp(double t) {
    return std::ldexp(std::max(std::fabs(t), 1e-30), -50);
}

// Full solution vector (ground + nodes + branches) -> unknown vector.
void to_unknowns(const std::vector<double>& x, int n_nodes, int n_branches,
                 std::vector<double>& u) {
    for (int node = 1; node < n_nodes; ++node)
        u[static_cast<std::size_t>(node - 1)] =
            x[static_cast<std::size_t>(node)];
    for (int br = 0; br < n_branches; ++br)
        u[static_cast<std::size_t>(n_nodes - 1 + br)] =
            x[static_cast<std::size_t>(n_nodes + br)];
}

// The fast transient engine: delta-form Newton against a frozen sparse LU
// (refreshed on integrator/dt changes, slow convergence, or failures) and,
// in kAdaptiveLte mode, predictor-corrector LTE step control between source
// breakpoints. Every buffer is allocated in the constructor; the stepping
// loop itself is allocation-free.
class TranEngine {
public:
    TranEngine(Circuit& circuit, const TranOptions& opt,
               const std::vector<double>& breakpoints)
        : circuit_(circuit),
          opt_(opt),
          ws_(circuit.workspace()),
          bps_(breakpoints),
          n_nodes_(circuit.node_count()),
          n_branches_(circuit.branch_total()) {
        use_reuse_ =
            opt.reuse_jacobian && ws_.backend() == SolverBackend::kSparse;
        dt_floor_ = opt.dt_min > 0.0 ? opt.dt_min : opt.dt / 1024.0;
        dt_cap_ = std::max(opt.dt_max > 0.0 ? opt.dt_max : 32.0 * opt.dt,
                           dt_floor_);
        const auto n_u = static_cast<std::size_t>(n_nodes_ - 1 + n_branches_);
        u_.assign(n_u, 0.0);
        r_.assign(n_u, 0.0);
        d_.assign(n_u, 0.0);
        const auto n_x = static_cast<std::size_t>(n_nodes_ + n_branches_);
        x_new_.assign(n_x, 0.0);
        x_old_.assign(n_x, 0.0);
        state_next_.assign(static_cast<std::size_t>(circuit.state_total()),
                           0.0);
        // Results must not depend on which systems this workspace solved
        // before (same determinism contract as solve_dc_sweep).
        if (use_reuse_) ws_.invalidate_factorization();
        // Step ids key the device linearization caches on the accepted base
        // solution: every attempt at the same step (Newton retry, LTE
        // shrink) shares one id, so raw capacitance evaluations are paid
        // once per accepted point, not once per attempt.
        base_step_id_ = g_step_counter.fetch_add(1, std::memory_order_relaxed);
        run_id_ = base_step_id_;  // scopes delta-gated cap reuse to this run
    }

    void run(std::vector<double>& x, std::vector<double>& state,
             TranResult& result) {
        if (opt_.step_control == StepControl::kAdaptiveLte)
            run_adaptive(x, state, result);
        else
            run_fixed(x, state, result);
    }

    TranStats stats;

private:
    // Legacy-compatible outer loop: record on the dt grid, halve on Newton
    // failure only.
    void run_fixed(std::vector<double>& x, std::vector<double>& state,
                   TranResult& result) {
        const auto n_steps = static_cast<std::size_t>(
            std::ceil(opt_.tstop / opt_.dt - 1e-9));
        for (std::size_t k = 0; k < n_steps; ++k) {
            const double t0 = opt_.dt * static_cast<double>(k);
            const double t1 = std::min(opt_.tstop, t0 + opt_.dt);
            double t = t0;
            double h = t1 - t0;
            const double h_min =
                (t1 - t0) * std::ldexp(1.0, -opt_.max_subdivisions);
            while (t < t1 - time_ulp(t1)) {
                double t_next = std::min(t1, t + h);
                if (t1 - t_next <= time_ulp(t1)) t_next = t1;
                const Integrator integ =
                    step_has_breakpoint(bps_, t, t_next - t)
                        ? Integrator::kBackwardEuler
                        : opt_.integrator;
                if (try_step(t, t_next, integ, x, state)) {
                    accept(x, state);
                    t = t_next;
                } else {
                    ++stats.steps_rejected;
                    have_factor_ = false;
                    h *= 0.5;
                    if (h < h_min * 0.999) {
                        throw NumericalError(
                            "solve_tran: step at t=" + std::to_string(t) +
                            " failed after max subdivisions");
                    }
                }
            }
            result.record(t1, x, n_nodes_, n_branches_);
        }
    }

    void run_adaptive(std::vector<double>& x, std::vector<double>& state,
                      TranResult& result) {
        const double t_end = opt_.tstop;
        double t = 0.0;
        double dt = std::min(opt_.dt, dt_cap_);
        std::size_t bp_i = 0;
        bool force_be = false;
        while (t < t_end - time_ulp(t_end)) {
            // Consume breakpoints at (or within ulps of) the current time so
            // a breakpoint coinciding with an accepted step is never stepped
            // a second time.
            while (bp_i < bps_.size() && bps_[bp_i] <= t + time_ulp(bps_[bp_i]))
                ++bp_i;

            double h = std::clamp(dt, dt_floor_, dt_cap_);
            double t_next = t + h;
            bool hit_bp = false;
            if (bp_i < bps_.size()) {
                const double b = bps_[bp_i];
                if (t_next >= b - std::max(time_ulp(b), 1e-6 * h)) {
                    t_next = b;
                    hit_bp = true;
                }
            }
            if (!hit_bp &&
                t_next >= t_end - std::max(time_ulp(t_end), 1e-6 * h))
                t_next = t_end;
            h = t_next - t;

            const Integrator integ =
                (force_be || step_has_breakpoint(bps_, t, h))
                    ? Integrator::kBackwardEuler
                    : opt_.integrator;
            lte_bail_enabled_ = have_history_ && !force_be &&
                                h_prev_ > 0.0 && h > dt_floor_ * 1.001;
            if (!try_step(t, t_next, integ, x, state)) {
                ++stats.steps_rejected;
                if (att_lte_bail_) {
                    // Newton bailed early because the step is already far
                    // over the LTE budget: shrink like an LTE rejection and
                    // keep the factorization (it is still valid).
                    ++stats.lte_rejections;
                    dt = std::max(h * std::clamp(0.9 / std::sqrt(att_lte_ratio_),
                                                 0.25, 0.9),
                                  dt_floor_);
                    continue;
                }
                have_factor_ = false;
                dt = h * 0.5;
                if (dt < dt_floor_ * 0.999) {
                    throw NumericalError(
                        "solve_tran: adaptive step at t=" + std::to_string(t) +
                        " failed at the minimum step size");
                }
                continue;
            }

            // LTE accept/reject: linear extrapolation from the last two
            // accepted points predicts this step; the miss, scaled by the
            // mixed absolute/relative budget, drives the controller.
            double ratio = 0.0;
            if (have_history_ && !force_be && h_prev_ > 0.0) {
                ratio = lte_ratio(x, h);
                if (ratio > 1.0 && h > dt_floor_ * 1.001) {
                    ++stats.steps_rejected;
                    ++stats.lte_rejections;
                    dt = std::max(
                        h * std::clamp(0.9 / std::sqrt(ratio), 0.25, 0.9),
                        dt_floor_);
                    continue;
                }
            }

            accept(x, state);
            h_prev_ = h;
            result.record(t_next, x, n_nodes_, n_branches_);
            t = t_next;

            double grow = opt_.grow_max;
            if (ratio > 0.0)
                grow = std::clamp(0.9 / std::sqrt(ratio), 0.3, opt_.grow_max);
            dt = std::clamp(h * grow, dt_floor_, dt_cap_);
            if (hit_bp) {
                // Derivative discontinuity: restart the predictor history,
                // take one backward-Euler step, and drop back to the base dt.
                have_history_ = false;
                force_be = true;
                dt = std::min(dt, opt_.dt);
                ++bp_i;
            } else {
                have_history_ = true;
                force_be = false;
            }
        }
    }

    // Solves the step ending at t1 into x_new_ (x and state untouched, so a
    // rejected attempt needs no rollback). Returns false on divergence.
    bool try_step(double t0, double t1, Integrator integ,
                  const std::vector<double>& x,
                  const std::vector<double>& state) {
        att_t1_ = t1;
        att_h_ = t1 - t0;
        att_integ_ = integ;
        att_step_id_ = base_step_id_;
        att_lte_bail_ = false;
        x_new_ = x;  // warm start
        if (have_history_ && h_prev_ > 0.0) {
            // Seed Newton with the same linear extrapolation the LTE
            // controller scores against: the initial error drops from the
            // full step change to the LTE miss, saving iterations against
            // stale factors. Node voltages only -- trapezoidal source
            // branch currents ring and extrapolate badly.
            const double s = att_h_ / h_prev_;
            for (int node = 1; node < n_nodes_; ++node) {
                const auto i = static_cast<std::size_t>(node);
                x_new_[i] = x[i] + (x[i] - x_old_[i]) * s;
            }
        }
        last_step_refactored_ = false;
        if (use_reuse_)
            return newton_reuse(integ, t1, att_h_, x, state, att_step_id_);
        return newton_tran(circuit_, opt_, integ, t1, att_h_, x, state, x_new_,
                           att_step_id_, &stats);
    }

    // Commits the attempt solved by the last successful try_step.
    void accept(std::vector<double>& x, std::vector<double>& state) {
        commit_step(circuit_, att_integ_, att_t1_, att_h_, x, state, x_new_,
                    state_next_, att_step_id_);
        x_old_ = x;  // predictor history: solution one accepted step back
        x.swap(x_new_);
        state.swap(state_next_);
        ++stats.steps_accepted;
        if (use_reuse_ && !last_step_refactored_) ++stats.jacobian_reuse_steps;
        // New accepted base solution -> new cache key for the next step.
        base_step_id_ = g_step_counter.fetch_add(1, std::memory_order_relaxed);
    }

    // Delta-form Newton against the frozen factorization: every iteration
    // assembles the true matrix and residual at the current iterate; only
    // the correction d = LU_frozen^-1 r goes through stale factors, so an
    // accepted solution never depends on them. Acceptance requires a small
    // correction AND either exact factors this iteration or a small true
    // residual (KCL rows vs itol, branch rows vs vtol).
    bool newton_reuse(Integrator integ, double time, double dt,
                      const std::vector<double>& x_prev,
                      const std::vector<double>& state, long long step_id) {
        SimContext ctx = make_tran_context(integ, time, dt, x_prev,
                                           state, x_new_, step_id);
        ctx.stale_dv = opt_.stale_dv;
        ctx.run_id = run_id_;
        // A stale factorization only slows convergence (acceptance is
        // residual-gated), so tolerate a fairly wide dt drift before paying
        // for a refactor: companion conductances scale with 1/dt.
        bool want_fresh = !have_factor_ || integ != factor_integrator_ ||
                          dt < 0.45 * factor_dt_ || dt > 2.2 * factor_dt_;
        // Eager-fresh heuristic: when stale starts have recently needed a
        // mid-loop refresh anyway (paying for the wasted assembles), start
        // fresh for a while, probing a stale start every kFreshProbe steps
        // to notice when reuse becomes profitable again.
        bool started_stale = !want_fresh;
        if (started_stale && prefer_fresh_) {
            if (fresh_streak_ < kFreshProbe) {
                want_fresh = true;
                started_stale = false;
                ++fresh_streak_;
            } else {
                fresh_streak_ = 0;
            }
        }
        int stall = 0;
        double dx_prev = 0.0;
        for (int it = 0; it < opt_.max_newton; ++it) {
            Stamper& st = ws_.assemble(ctx);
            st.add_gmin_everywhere(opt_.gmin);
            to_unknowns(x_new_, n_nodes_, n_branches_, u_);
            ws_.residual(u_, r_);
            bool fresh = false;
            if (want_fresh) {
                try {
                    ws_.factor();
                } catch (const NumericalError&) {
                    return false;
                }
                have_factor_ = true;
                factor_dt_ = dt;
                factor_integrator_ = integ;
                last_step_refactored_ = true;
                want_fresh = false;
                fresh = true;
                ++stats.lu_refactors;
            }
            ws_.solve_block(r_.data(), d_.data(), 1);
            ++stats.newton_iters;

            double dx_max = 0.0;
            for (int node = 1; node < n_nodes_; ++node)
                dx_max = std::max(
                    dx_max, std::fabs(d_[static_cast<std::size_t>(node - 1)]));
            if (!std::isfinite(dx_max)) {
                if (fresh) return false;
                want_fresh = true;  // retry this iterate with exact factors
                continue;
            }
            const double alpha = dx_max > opt_.max_update
                                     ? opt_.max_update / dx_max
                                     : 1.0;
            for (int node = 1; node < n_nodes_; ++node)
                x_new_[static_cast<std::size_t>(node)] +=
                    alpha * d_[static_cast<std::size_t>(node - 1)];
            for (int br = 0; br < n_branches_; ++br)
                x_new_[static_cast<std::size_t>(n_nodes_ + br)] +=
                    alpha * d_[static_cast<std::size_t>(n_nodes_ - 1 + br)];

            if (lte_bail_enabled_ && it == 0) {
                // The predictor-seeded first iterate is already close to the
                // step's solution; if its LTE is far over budget the step
                // will be rejected anyway, so skip the remaining iterations.
                const double ratio = lte_ratio(x_prev, dt);
                if (ratio > kLteBailRatio) {
                    att_lte_bail_ = true;
                    att_lte_ratio_ = ratio;
                    return false;
                }
            }

            if (dx_max < opt_.vtol) {
                if (fresh || residual_small()) {
                    if (started_stale) prefer_fresh_ = last_step_refactored_;
                    return true;
                }
                // Stale factors keep stalling next to the solution: refresh
                // instead of looping on a residual that will not shrink.
                if (++stall >= 3) want_fresh = true;
            } else {
                stall = 0;
                if (!last_step_refactored_ &&
                    (it >= kReuseIterBudget ||
                     (!fresh && dx_prev > 0.0 && dx_max > 0.4 * dx_prev))) {
                    // Slow linear contraction against the stale factors:
                    // each extra iteration costs a full device assembly, so
                    // cut losses and refactor at the current iterate (its
                    // progress is kept) rather than crawling to vtol.
                    want_fresh = true;
                }
            }
            dx_prev = dx_max;
        }
        return false;
    }

    // r_ holds the residual assembled at the accepting iterate (before its
    // sub-vtol correction): KCL rows in amps, branch rows in volts.
    bool residual_small() const {
        const auto n_kcl = static_cast<std::size_t>(n_nodes_ - 1);
        for (std::size_t i = 0; i < r_.size(); ++i) {
            const double tol = i < n_kcl ? opt_.itol : opt_.vtol;
            if (!(std::fabs(r_[i]) <= tol)) return false;
        }
        return true;
    }

    // Worst node-voltage entry of |corrector - predictor| over the mixed
    // budget; x_prev is the last accepted solution, x_old_ the one before,
    // x_new_ the candidate for the step of size h. Branch currents are
    // deliberately excluded (see TranOptions::lte_rel).
    double lte_ratio(const std::vector<double>& x_prev, double h) const {
        const double s = h / h_prev_;
        double worst = 0.0;
        for (int node = 1; node < n_nodes_; ++node) {
            const auto i = static_cast<std::size_t>(node);
            const double pred = x_prev[i] + (x_prev[i] - x_old_[i]) * s;
            const double scale =
                opt_.lte_abs_v + opt_.lte_rel * std::fabs(x_new_[i]);
            if (scale > 0.0)
                worst = std::max(worst, std::fabs(x_new_[i] - pred) / scale);
        }
        return worst;
    }

    // Iterations granted to a stale factorization before refreshing. With
    // delta-gated device reuse an assembly against an unchanged iterate is
    // cheap, so stale Newton can afford a few extra iterations before the
    // refactor pays for itself.
    static constexpr int kReuseIterBudget = 4;
    // Eager-fresh probe period and the first-iterate LTE ratio beyond which
    // a step is abandoned without finishing Newton.
    static constexpr int kFreshProbe = 6;
    static constexpr double kLteBailRatio = 3.0;

    Circuit& circuit_;
    const TranOptions& opt_;
    SolverWorkspace& ws_;
    const std::vector<double>& bps_;
    int n_nodes_;
    int n_branches_;
    bool use_reuse_ = false;
    double dt_floor_ = 0.0;
    double dt_cap_ = 0.0;

    std::vector<double> u_, r_, d_;          // unknown-space scratch
    std::vector<double> x_new_, state_next_; // step candidate
    std::vector<double> x_old_;              // predictor history
    double h_prev_ = 0.0;
    bool have_history_ = false;

    bool have_factor_ = false;
    double factor_dt_ = 0.0;
    Integrator factor_integrator_ = Integrator::kTrapezoidal;
    bool last_step_refactored_ = false;
    bool prefer_fresh_ = false;
    int fresh_streak_ = 0;

    // Attempt bookkeeping between try_step and accept.
    double att_t1_ = 0.0;
    double att_h_ = 0.0;
    Integrator att_integ_ = Integrator::kTrapezoidal;
    long long att_step_id_ = 0;
    long long base_step_id_ = 0;
    long long run_id_ = -1;
    bool lte_bail_enabled_ = false;
    bool att_lte_bail_ = false;
    double att_lte_ratio_ = 0.0;
};

}  // namespace

void validate_tran_options(const TranOptions& o) {
    require(std::isfinite(o.tstop) && o.tstop > 0.0,
            "TranOptions: tstop must be positive and finite");
    require(std::isfinite(o.dt) && o.dt > 0.0,
            "TranOptions: dt must be positive and finite");
    require(o.max_newton >= 1, "TranOptions: max_newton must be >= 1");
    require(std::isfinite(o.vtol) && o.vtol > 0.0,
            "TranOptions: vtol must be positive and finite");
    require(std::isfinite(o.max_update) && o.max_update > 0.0,
            "TranOptions: max_update must be positive and finite");
    require(std::isfinite(o.gmin) && o.gmin >= 0.0,
            "TranOptions: gmin must be non-negative and finite");
    require(o.max_subdivisions >= 0,
            "TranOptions: max_subdivisions must be >= 0");
    require(std::isfinite(o.dt_min) && o.dt_min >= 0.0,
            "TranOptions: dt_min must be non-negative and finite");
    require(std::isfinite(o.dt_max) && o.dt_max >= 0.0,
            "TranOptions: dt_max must be non-negative and finite");
    require(o.dt_min == 0.0 || o.dt_max == 0.0 || o.dt_min <= o.dt_max,
            "TranOptions: dt_min must not exceed dt_max");
    require(std::isfinite(o.itol) && o.itol > 0.0,
            "TranOptions: itol must be positive and finite");
    require(std::isfinite(o.stale_dv) && o.stale_dv >= 0.0,
            "TranOptions: stale_dv must be non-negative and finite");
    if (o.step_control == StepControl::kAdaptiveLte) {
        require(std::isfinite(o.lte_rel) && o.lte_rel >= 0.0,
                "TranOptions: lte_rel must be non-negative and finite");
        require(std::isfinite(o.lte_abs_v) && o.lte_abs_v >= 0.0,
                "TranOptions: lte_abs_v must be non-negative and finite");
        require(o.lte_rel > 0.0 || o.lte_abs_v > 0.0,
                "TranOptions: adaptive stepping needs a nonzero LTE budget "
                "(lte_rel or lte_abs_v)");
        require(std::isfinite(o.grow_max) && o.grow_max >= 1.0,
                "TranOptions: grow_max must be >= 1");
    }
}

TranOptions fast_tran_options(double tstop, double dt) {
    TranOptions o;
    o.tstop = tstop;
    o.dt = dt;
    o.step_control = StepControl::kAdaptiveLte;
    o.reuse_jacobian = true;
    // Tuned for throughput: the per-step LTE budget dominates the waveform
    // error (millivolts), so Newton does not need to polish three orders of
    // magnitude below it — acceptance is gated on the true residual
    // (itol/vtol), which keeps the solution honest at the looser vtol. A
    // budget this size holds 50 ps-class edges to low-picosecond timing
    // error while letting dt float well above a fixed 1-2 ps grid.
    o.lte_rel = 3e-2;
    o.lte_abs_v = 1e-3;
    o.vtol = 1e-4;
    o.itol = 3e-6;
    // Settled devices keep their linearization (channel tangent + caps)
    // until a terminal moves 0.2 mV -- on a gate chain only the switching
    // cells re-evaluate.
    o.stale_dv = 2e-4;
    // Cold-start DC either converges directly within a few dozen iterations
    // or oscillates until the iteration cap and falls back to gmin stepping;
    // don't burn the 400-iteration stage budget proving the latter.
    o.dc.cold_probe_iterations = 50;
    return o;
}

TranResult solve_tran(Circuit& circuit, const TranOptions& opts_in) {
    // MCSM_TRAN_ADAPTIVE=1 upgrades fixed-grid calls to LTE-adaptive
    // stepping with the (tight) default budgets — a CI lever that drives
    // every transient in a test binary through the adaptive loop without
    // touching call sites. Explicit adaptive requests are unaffected.
    TranOptions options = opts_in;
    if (options.step_control == StepControl::kFixedGrid) {
        if (const char* env = std::getenv("MCSM_TRAN_ADAPTIVE");
            env != nullptr && env[0] == '1')
            options.step_control = StepControl::kAdaptiveLte;
    }
    validate_tran_options(options);
    const obs::Span span("spice.solve_tran");
    circuit.prepare();

    // Operating point at t=0.
    DcOptions dc = options.dc;
    dc.time = 0.0;
    DcResult op = solve_dc(circuit, dc);

    std::vector<double> x = op.x;
    std::vector<double> state(static_cast<std::size_t>(circuit.state_total()),
                              0.0);

    // Collect node names and vsource branch map for the result object.
    std::vector<std::string> names;
    names.reserve(static_cast<std::size_t>(circuit.node_count()));
    for (int node = 0; node < circuit.node_count(); ++node)
        names.push_back(circuit.node_name(node));
    std::unordered_map<std::string, int> vsrc;
    for (const auto& dev : circuit.devices()) {
        if (dev->branch_count() == 1) vsrc[dev->name()] = dev->branch_base();
    }

    // Breakpoints from every source, deduplicated and clamped to the run
    // window; corners outside [0, tstop] can never land inside a step.
    std::vector<double> breakpoints;
    for (const auto& dev : circuit.devices())
        dev->collect_breakpoints(breakpoints);
    std::sort(breakpoints.begin(), breakpoints.end());
    breakpoints.erase(std::unique(breakpoints.begin(), breakpoints.end()),
                      breakpoints.end());
    breakpoints.erase(
        std::remove_if(breakpoints.begin(), breakpoints.end(),
                       [&](double t) { return t < 0.0 || t > options.tstop; }),
        breakpoints.end());

    TranResult result(std::move(names), std::move(vsrc));
    const auto n_steps =
        static_cast<std::size_t>(std::ceil(options.tstop / options.dt - 1e-9));
    result.reserve(n_steps + 1, circuit.branch_total());
    result.record(0.0, x, circuit.node_count(), circuit.branch_total());

    // The fast engine owns Jacobian reuse (sparse backend) and adaptive
    // stepping; the default configuration stays on the legacy loop below,
    // which is bit-compatible with the seed solver.
    const bool fast_path =
        options.step_control == StepControl::kAdaptiveLte ||
        (options.reuse_jacobian &&
         circuit.workspace().backend() == SolverBackend::kSparse);
    if (fast_path) {
        TranEngine engine(circuit, options, breakpoints);
        engine.run(x, state, result);
        result.set_stats(engine.stats);
        publish_tran_stats(engine.stats);
        return result;
    }

    TranScratch scratch;
    scratch.x_new.reserve(x.size());
    scratch.state_next.reserve(state.size());
    TranStats stats;
    for (std::size_t k = 0; k < n_steps; ++k) {
        const double t0 = options.dt * static_cast<double>(k);
        const double t1 = std::min(options.tstop, t0 + options.dt);
        advance(circuit, options, breakpoints, t0, t1 - t0, x, state, scratch,
                0, stats);
        result.record(t1, x, circuit.node_count(), circuit.branch_total());
    }
    result.set_stats(stats);
    publish_tran_stats(stats);
    return result;
}

}  // namespace mcsm::spice
