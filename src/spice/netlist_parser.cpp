#include "spice/netlist_parser.h"

#include <algorithm>
#include <cctype>
#include <istream>
#include <sstream>
#include <vector>

#include "common/error.h"
#include "wave/waveform.h"

namespace mcsm::spice {

namespace {

std::string lower(std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
}

[[noreturn]] void fail(int line, const std::string& what) {
    throw ModelError("netlist parse error at line " + std::to_string(line) +
                     ": " + what);
}

std::vector<std::string> tokenize(const std::string& line) {
    std::vector<std::string> tokens;
    std::string cur;
    for (char raw : line) {
        const char c = raw;
        if (std::isspace(static_cast<unsigned char>(c)) || c == '(' ||
            c == ')' || c == ',') {
            if (!cur.empty()) {
                tokens.push_back(cur);
                cur.clear();
            }
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty()) tokens.push_back(cur);
    return tokens;
}

// key=value split; returns false when there is no '='.
bool split_assignment(const std::string& token, std::string& key,
                      std::string& value) {
    const auto eq = token.find('=');
    if (eq == std::string::npos) return false;
    key = lower(token.substr(0, eq));
    value = token.substr(eq + 1);
    return !key.empty() && !value.empty();
}

}  // namespace

double parse_spice_number(const std::string& token) {
    require(!token.empty(), "parse_spice_number: empty token");
    std::size_t consumed = 0;
    double base = 0.0;
    try {
        base = std::stod(token, &consumed);
    } catch (const std::exception&) {
        throw ModelError("parse_spice_number: bad number '" + token + "'");
    }
    const std::string suffix = lower(token.substr(consumed));
    if (suffix.empty()) return base;
    if (suffix == "f") return base * 1e-15;
    if (suffix == "p") return base * 1e-12;
    if (suffix == "n") return base * 1e-9;
    if (suffix == "u") return base * 1e-6;
    if (suffix == "m") return base * 1e-3;
    if (suffix == "k") return base * 1e3;
    if (suffix == "meg") return base * 1e6;
    if (suffix == "g") return base * 1e9;
    if (suffix == "t") return base * 1e12;
    throw ModelError("parse_spice_number: unknown suffix '" + suffix + "'");
}

ParsedNetlist parse_netlist(std::istream& input) {
    ParsedNetlist out;
    std::string line;
    int line_no = 0;

    auto node_of = [&](const std::string& name) {
        return out.circuit.node(lower(name) == "gnd" ? "0" : name);
    };

    while (std::getline(input, line)) {
        ++line_no;
        // Strip comments ('*' at start, ';' anywhere).
        const auto semi = line.find(';');
        if (semi != std::string::npos) line = line.substr(0, semi);
        const auto tokens = tokenize(line);
        if (tokens.empty()) continue;
        const std::string head = lower(tokens[0]);
        if (head[0] == '*') continue;

        if (head == ".end") break;

        if (head == ".model") {
            if (tokens.size() < 3) fail(line_no, ".model needs name and type");
            const std::string name = lower(tokens[1]);
            const std::string type = lower(tokens[2]);
            auto params = std::make_unique<MosParams>();
            if (type == "nmos") {
                params->type = MosType::kNmos;
            } else if (type == "pmos") {
                params->type = MosType::kPmos;
            } else {
                fail(line_no, "unknown model type " + type);
            }
            for (std::size_t i = 3; i < tokens.size(); ++i) {
                std::string key;
                std::string value;
                if (!split_assignment(tokens[i], key, value))
                    fail(line_no, "expected key=value, got " + tokens[i]);
                const double v = parse_spice_number(value);
                if (key == "vt0") params->vt0 = v;
                else if (key == "n") params->n = v;
                else if (key == "kp") params->kp = v;
                else if (key == "lambda") params->lambda = v;
                else if (key == "cox") params->cox = v;
                else if (key == "cgso") params->cgso = v;
                else if (key == "cgdo") params->cgdo = v;
                else if (key == "cgbo") params->cgbo = v;
                else if (key == "cj") params->cj = v;
                else if (key == "mj") params->mj = v;
                else if (key == "pb") params->pb = v;
                else if (key == "cjsw") params->cjsw = v;
                else if (key == "mjsw") params->mjsw = v;
                else if (key == "ldiff") params->ldiff = v;
                else fail(line_no, "unknown model parameter " + key);
            }
            require(out.models.find(name) == out.models.end(),
                    "duplicate .model " + name);
            out.models[name] = std::move(params);
            continue;
        }
        if (head[0] == '.') fail(line_no, "unknown directive " + tokens[0]);

        const char kind = head[0];
        const std::string& name = tokens[0];
        try {
            switch (kind) {
                case 'r': {
                    if (tokens.size() != 4) fail(line_no, "R: name a b value");
                    out.circuit.add_resistor(name, node_of(tokens[1]),
                                             node_of(tokens[2]),
                                             parse_spice_number(tokens[3]));
                    break;
                }
                case 'c': {
                    if (tokens.size() != 4) fail(line_no, "C: name a b value");
                    out.circuit.add_capacitor(name, node_of(tokens[1]),
                                              node_of(tokens[2]),
                                              parse_spice_number(tokens[3]));
                    break;
                }
                case 'v':
                case 'i': {
                    if (tokens.size() < 5)
                        fail(line_no, "source: name p m DC|PWL values");
                    const int p = node_of(tokens[1]);
                    const int m = node_of(tokens[2]);
                    const std::string mode = lower(tokens[3]);
                    SourceSpec spec;
                    if (mode == "dc") {
                        spec = SourceSpec::dc(parse_spice_number(tokens[4]));
                    } else if (mode == "pwl") {
                        if ((tokens.size() - 4) % 2 != 0)
                            fail(line_no, "PWL needs (t v) pairs");
                        wave::Waveform w;
                        for (std::size_t i = 4; i + 1 < tokens.size(); i += 2)
                            w.append(parse_spice_number(tokens[i]),
                                     parse_spice_number(tokens[i + 1]));
                        spec = SourceSpec::pwl(std::move(w));
                    } else {
                        fail(line_no, "source mode must be DC or PWL");
                    }
                    if (kind == 'v')
                        out.circuit.add_vsource(name, p, m, std::move(spec));
                    else
                        out.circuit.add_isource(name, p, m, std::move(spec));
                    break;
                }
                case 'm': {
                    if (tokens.size() < 8)
                        fail(line_no, "M: name d g s b model w= l=");
                    const std::string model_name = lower(tokens[5]);
                    const auto it = out.models.find(model_name);
                    if (it == out.models.end())
                        fail(line_no, "unknown .model " + model_name);
                    double w = -1.0;
                    double l = -1.0;
                    for (std::size_t i = 6; i < tokens.size(); ++i) {
                        std::string key;
                        std::string value;
                        if (!split_assignment(tokens[i], key, value))
                            fail(line_no, "expected w=/l=, got " + tokens[i]);
                        if (key == "w") w = parse_spice_number(value);
                        else if (key == "l") l = parse_spice_number(value);
                        else fail(line_no, "unknown MOS parameter " + key);
                    }
                    if (w <= 0.0 || l <= 0.0)
                        fail(line_no, "MOSFET needs positive w= and l=");
                    out.circuit.add_mosfet(name, node_of(tokens[1]),
                                           node_of(tokens[2]),
                                           node_of(tokens[3]),
                                           node_of(tokens[4]), *it->second, w,
                                           l);
                    break;
                }
                default:
                    fail(line_no, "unknown element " + tokens[0]);
            }
        } catch (const ModelError&) {
            throw;
        } catch (const std::exception& e) {
            fail(line_no, e.what());
        }
    }
    return out;
}

ParsedNetlist parse_netlist_string(const std::string& text) {
    std::istringstream is(text);
    return parse_netlist(is);
}

}  // namespace mcsm::spice
