// MNA matrix assembly helper. Maps node ids / branch ids onto the unknown
// vector (ground is eliminated) and offers the stamping primitives devices
// need.
//
// The stamper is a thin writer over one of three storages:
//   kDense   - owns a DenseMatrix (standalone use and the cross-check
//              fallback backend),
//   kSparse  - writes into a SolverWorkspace's preallocated CSR slots,
//   kPattern - records (row, col) coordinates only; used once per topology
//              by Circuit::prepare() to discover the sparsity pattern.
// Device stamp() signatures are identical across backends.
#ifndef MCSM_SPICE_STAMPER_H
#define MCSM_SPICE_STAMPER_H

#include <cstddef>
#include <utility>
#include <vector>

#include "common/dense_matrix.h"
#include "common/sparse_matrix.h"

namespace mcsm::spice {

// Unknown ordering: node voltages for nodes 1..n_nodes-1, then branch
// currents for devices that request them (voltage sources).
class Stamper {
public:
    // Standalone dense stamper (legacy construction; also the dense
    // backend inside SolverWorkspace).
    Stamper(int n_nodes, int n_branches);

    // Sparse writer into preallocated CSR storage (SolverWorkspace owns
    // the matrix and guarantees it outlives the stamper).
    Stamper(int n_nodes, int n_branches, SparseMatrix* sparse);

    // Pattern recorder: primitives append (row, col) coordinates to *out
    // instead of writing values.
    Stamper(int n_nodes, int n_branches,
            std::vector<std::pair<int, int>>* pattern_out);

    void clear();

    int n_nodes() const { return n_nodes_; }
    int n_branches() const { return n_branches_; }
    std::size_t system_size() const;

    // --- stamping primitives -------------------------------------------
    // All inline: they run millions of times per transient (every matrix
    // entry of every device of every Newton iteration).

    // Two-terminal conductance g between nodes a and b.
    void add_conductance(int a, int b, double g) {
        add_matrix(a, a, g);
        add_matrix(b, b, g);
        add_matrix(a, b, -g);
        add_matrix(b, a, -g);
    }

    // Transconductance: current g*(v_cp - v_cm) flows from node `from` to
    // node `to` (out of `from`, into `to`).
    void add_transconductance(int from, int to, int ctrl_p, int ctrl_m,
                              double g) {
        add_matrix(from, ctrl_p, g);
        add_matrix(from, ctrl_m, -g);
        add_matrix(to, ctrl_p, -g);
        add_matrix(to, ctrl_m, g);
    }

    // Constant current i flowing from node `from` to node `to`. KCL rows
    // are written as (sum of currents leaving node) = 0, with sources moved
    // to the RHS.
    void add_source_current(int from, int to, double i) {
        add_rhs(from, -i);
        add_rhs(to, i);
    }

    // Voltage-source branch: enforces v(p) - v(m) = v, adds the branch
    // current unknown into the KCL rows of p and m. `branch` is the branch
    // index in [0, n_branches).
    void add_voltage_branch(int branch, int p, int m, double v);

    // Raw access (row/col are node ids; ground rows/cols are dropped).
    void add_matrix(int row_node, int col_node, double value) {
        const int r = unknown_of_node(row_node);
        const int c = unknown_of_node(col_node);
        if (r < 0 || c < 0) return;
        sink(r, c, value);
    }
    void add_rhs(int row_node, double value) {
        const int r = unknown_of_node(row_node);
        if (r < 0) return;
        b_[static_cast<std::size_t>(r)] += value;
    }

    // Shunt conductance to ground on every non-ground node (gmin).
    void add_gmin_everywhere(double gmin) {
        for (int node = 1; node < n_nodes_; ++node)
            add_matrix(node, node, gmin);
    }

    // Dense-backend storage (throws on other backends).
    DenseMatrix& matrix();
    std::vector<double>& rhs() { return b_; }
    const std::vector<double>& rhs() const { return b_; }

    // Solves the assembled dense system; returns the full solution vector
    // indexed like the unknowns. Standalone/legacy path - circuit solvers
    // go through SolverWorkspace::solve() instead.
    std::vector<double> solve();

    // Index helpers (-1 for ground).
    int unknown_of_node(int node) const { return node == 0 ? -1 : node - 1; }
    int unknown_of_branch(int branch) const {
        return n_nodes_ - 1 + branch;
    }

private:
    enum class Backend { kDense, kSparse, kPattern };

    // Accumulates v at unknown-space coordinates (r, c).
    void sink(int r, int c, double v) {
        switch (backend_) {
            case Backend::kDense:
                a_.at(static_cast<std::size_t>(r),
                      static_cast<std::size_t>(c)) += v;
                break;
            case Backend::kSparse:
                if (!sparse_->add(static_cast<std::size_t>(r),
                                  static_cast<std::size_t>(c), v))
                    sink_pattern_miss();
                break;
            case Backend::kPattern:
                pattern_out_->emplace_back(r, c);
                break;
        }
    }
    [[noreturn]] void sink_pattern_miss() const;

    Backend backend_ = Backend::kDense;
    int n_nodes_ = 0;
    int n_branches_ = 0;
    DenseMatrix a_;  // dense backend only
    std::vector<double> b_;
    SparseMatrix* sparse_ = nullptr;
    std::vector<std::pair<int, int>>* pattern_out_ = nullptr;
};

}  // namespace mcsm::spice

#endif  // MCSM_SPICE_STAMPER_H
