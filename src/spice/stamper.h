// MNA matrix assembly helper. Maps node ids / branch ids onto the unknown
// vector (ground is eliminated) and offers the stamping primitives devices
// need.
#ifndef MCSM_SPICE_STAMPER_H
#define MCSM_SPICE_STAMPER_H

#include <cstddef>
#include <vector>

#include "common/dense_matrix.h"

namespace mcsm::spice {

// Unknown ordering: node voltages for nodes 1..n_nodes-1, then branch
// currents for devices that request them (voltage sources).
class Stamper {
public:
    Stamper(int n_nodes, int n_branches);

    void clear();

    int n_nodes() const { return n_nodes_; }
    int n_branches() const { return n_branches_; }
    std::size_t system_size() const;

    // --- stamping primitives -------------------------------------------
    // Two-terminal conductance g between nodes a and b.
    void add_conductance(int a, int b, double g);

    // Transconductance: current g*(v_cp - v_cm) flows from node `from` to
    // node `to` (out of `from`, into `to`).
    void add_transconductance(int from, int to, int ctrl_p, int ctrl_m,
                              double g);

    // Constant current i flowing from node `from` to node `to`.
    void add_source_current(int from, int to, double i);

    // Voltage-source branch: enforces v(p) - v(m) = v, adds the branch
    // current unknown into the KCL rows of p and m. `branch` is the branch
    // index in [0, n_branches).
    void add_voltage_branch(int branch, int p, int m, double v);

    // Raw access (row/col are node ids; ground rows/cols are dropped).
    void add_matrix(int row_node, int col_node, double value);
    void add_rhs(int row_node, double value);

    // Shunt conductance to ground on every non-ground node (gmin).
    void add_gmin_everywhere(double gmin);

    DenseMatrix& matrix() { return a_; }
    std::vector<double>& rhs() { return b_; }

    // Solves the assembled system; returns the full solution vector indexed
    // like the unknowns (use unknown_of_node / unknown_of_branch).
    std::vector<double> solve();

    // Index helpers (-1 for ground).
    int unknown_of_node(int node) const { return node == 0 ? -1 : node - 1; }
    int unknown_of_branch(int branch) const {
        return n_nodes_ - 1 + branch;
    }

private:
    int n_nodes_ = 0;
    int n_branches_ = 0;
    DenseMatrix a_;
    std::vector<double> b_;
};

}  // namespace mcsm::spice

#endif  // MCSM_SPICE_STAMPER_H
