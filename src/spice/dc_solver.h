// Newton-Raphson DC operating point with gmin stepping and damping, plus a
// blocked sweep solver that amortizes factorizations over many bias points.
#ifndef MCSM_SPICE_DC_SOLVER_H
#define MCSM_SPICE_DC_SOLVER_H

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "spice/circuit.h"

namespace mcsm::spice {

struct DcOptions {
    double gmin_final = 1e-12;   // shunt left in place at the solution [S]
    int max_iterations = 400;    // NR iterations per gmin stage
    // Iteration budget for the cold-start direct attempt (no warm start)
    // before falling back to gmin stepping; 0 = use max_iterations. A circuit
    // that converges directly from zero does so in a few dozen iterations,
    // so fast-path callers cap the probe instead of burning the full budget
    // proving divergence.
    int cold_probe_iterations = 0;
    double vtol = 1e-9;          // node-voltage convergence tolerance [V]
    double max_update = 0.3;     // damping clamp on NR voltage updates [V]
    double time = 0.0;           // evaluation time for waveform sources
    double source_scale = 1.0;   // scaling for source stepping callers
};

struct DcResult {
    // Solution layout: [0] ground (0.0), [1..n_nodes-1] node voltages,
    // [n_nodes..] branch currents.
    std::vector<double> x;
    int iterations = 0;

    double node_voltage(int node) const {
        return x[static_cast<std::size_t>(node)];
    }
};

// Solves the DC operating point. `initial` optionally seeds the NR iterate
// (same layout as DcResult::x). Throws NumericalError on non-convergence.
DcResult solve_dc(Circuit& circuit, const DcOptions& options = {},
                  const std::vector<double>* initial = nullptr);

struct DcSweepOptions {
    DcOptions dc;
    // Bias points solved together: per quasi-Newton round the block shares
    // one Jacobian factorization (taken at the first unconverged point) and
    // one blocked multi-RHS substitution.
    std::size_t block = 32;
    // Shared-matrix rounds before a point falls back to its own solve_dc
    // (which re-pivots per iteration and gmin-steps if needed).
    int shared_rounds = 25;
};

// Solves `n_points` DC operating points on one prepared circuit that differ
// only in the DC levels of the `swept` sources. `values` is point-major:
// values[p * swept.size() + k] programs swept[k] at point p.
//
// Each block runs delta-form Newton: every point assembles its own
// linearized system (through the batched device pass) and computes its true
// residual r = b - A x, but the update comes from the *lead* point's
// factorization via one blocked SparseLu::solve_block. A point whose
// shared-matrix step falls below vtol is then *verified* with one
// exact-Newton step against its own factored Jacobian — the same
// acceptance criterion the per-point solver uses, so a shared matrix that
// under-resolves some node (its local conductance far below the lead's)
// cannot smuggle an unconverged point through. Points that fail the
// shared rounds or the verification fall back to solve_dc. One structural
// exception: when every non-ground node is pinned by a ground-referenced
// voltage source (the characterization-fixture shape), the source rows
// make the shared step exact and the verification is provably redundant,
// so those sweeps skip it and most points cost a single seeded assembly
// plus a share of one factorization.
//
// `initial` seeds the first point's iterate (DcResult::x layout); warm
// starts chain point-to-point inside the call. on_point(p, x) fires for
// every point in order. Results are deterministic: the frozen LU pivot
// order is dropped on entry so the outcome does not depend on what the
// workspace solved before.
void solve_dc_sweep(
    Circuit& circuit, const std::vector<VSource*>& swept,
    std::span<const double> values, std::size_t n_points,
    const DcSweepOptions& options, const std::vector<double>* initial,
    const std::function<void(std::size_t, const std::vector<double>&)>&
        on_point);

}  // namespace mcsm::spice

#endif  // MCSM_SPICE_DC_SOLVER_H
