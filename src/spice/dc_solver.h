// Newton-Raphson DC operating point with gmin stepping and damping.
#ifndef MCSM_SPICE_DC_SOLVER_H
#define MCSM_SPICE_DC_SOLVER_H

#include <cstddef>
#include <vector>

#include "spice/circuit.h"

namespace mcsm::spice {

struct DcOptions {
    double gmin_final = 1e-12;   // shunt left in place at the solution [S]
    int max_iterations = 400;    // NR iterations per gmin stage
    double vtol = 1e-9;          // node-voltage convergence tolerance [V]
    double max_update = 0.3;     // damping clamp on NR voltage updates [V]
    double time = 0.0;           // evaluation time for waveform sources
    double source_scale = 1.0;   // scaling for source stepping callers
};

struct DcResult {
    // Solution layout: [0] ground (0.0), [1..n_nodes-1] node voltages,
    // [n_nodes..] branch currents.
    std::vector<double> x;
    int iterations = 0;

    double node_voltage(int node) const {
        return x[static_cast<std::size_t>(node)];
    }
};

// Solves the DC operating point. `initial` optionally seeds the NR iterate
// (same layout as DcResult::x). Throws NumericalError on non-convergence.
DcResult solve_dc(Circuit& circuit, const DcOptions& options = {},
                  const std::vector<double>* initial = nullptr);

}  // namespace mcsm::spice

#endif  // MCSM_SPICE_DC_SOLVER_H
