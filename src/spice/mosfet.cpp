#include "spice/mosfet.h"

#include <cmath>

#include "common/error.h"
#include "common/numeric.h"
#include "spice/cap_companion.h"

namespace mcsm::spice {

Mosfet::Mosfet(std::string name, int d, int g, int s, int b,
               const MosParams& params, double w, double l, double ad,
               double as, double pd, double ps)
    : Device(std::move(name)),
      d_(d),
      g_(g),
      s_(s),
      b_(b),
      params_(&params),
      w_(w),
      l_(l),
      ad_(ad >= 0.0 ? ad : w * params.ldiff),
      as_(as >= 0.0 ? as : w * params.ldiff),
      pd_(pd >= 0.0 ? pd : 2.0 * (w + params.ldiff)),
      ps_(ps >= 0.0 ? ps : 2.0 * (w + params.ldiff)) {
    require(w > 0.0 && l > 0.0, "Mosfet: W and L must be positive");
}

MosCurrent Mosfet::evaluate_current(double vd, double vg, double vs,
                                    double vb) const {
    return ekv_current(ekv_coeffs(), vd, vg, vs, vb,
                       mcsm::softplus_logistic_ref);
}

double Mosfet::junction_cap(double vj, double area, double perim) const {
    const MosParams& p = *params_;
    const double fcpb = p.fc * p.pb;
    // pow(x, 0.5) == sqrt(x) exactly under a correctly-rounded libm, and
    // sqrt is an order of magnitude cheaper -- the common mj = 0.5 case
    // dominates the per-step capacitance refresh.
    auto grade = [](double x, double m) {
        return m == 0.5 ? std::sqrt(x) : std::pow(x, m);
    };
    auto one_component = [&](double c0, double m) {
        if (c0 <= 0.0) return 0.0;
        if (vj < fcpb) {
            return c0 / grade(1.0 - vj / p.pb, m);
        }
        // Linearized extension beyond fc*pb (standard SPICE treatment).
        const double f = grade(1.0 - p.fc, m);
        return c0 / f * (1.0 + m * (vj - fcpb) / (p.pb * (1.0 - p.fc)));
    };
    return one_component(p.cj * area, p.mj) +
           one_component(p.cjsw * perim, p.mjsw);
}

MosCaps Mosfet::evaluate_caps(double vd, double vg, double vs,
                              double vb) const {
    const MosParams& p = *params_;
    const double pol = polarity();

    const double wg = pol * (vg - vb);
    const double wd = pol * (vd - vb);
    const double ws = pol * (vs - vb);

    const double wgs = wg - ws;
    const double wgd = wg - wd;

    // Body-affected threshold seen from the conducting (source) side; use a
    // smooth-max of the two channel ends for symmetry. The softplus/logistic
    // pair at (wgs-wgd)/bw shares one fast-kernel evaluation (same
    // approximation family as the batched EKV channel model; the portable
    // build compiles it to the libm reference).
    const double bw = p.blend_v;
    const mcsm::SpSig side = mcsm::softplus_logistic_fast((wgs - wgd) / bw);
    const double smax = bw * side.sp + wgd;
    const double smin = wgs + wgd - smax;
    const double w_side_min = std::min(ws, wd);
    const double vt_eff = p.vt0 + (p.n - 1.0) * std::max(0.0, w_side_min);

    // sigma: channel inverted somewhere; tau: inverted at both ends (triode).
    const double sigma =
        mcsm::softplus_logistic_fast((smax - vt_eff) / bw).sig;
    const double tau = mcsm::softplus_logistic_fast((smin - vt_eff) / bw).sig;

    // Probability that the s terminal acts as the source (lower potential
    // for NMOS); routes the saturation 2/3 Cox to the source side smoothly.
    const double psrc = side.sig;

    const double c_ch = p.cox * w_ * l_;
    MosCaps c;
    c.cgs = c_ch * (tau * 0.5 + (sigma - tau) * (2.0 / 3.0) * psrc) +
            p.cgso * w_;
    c.cgd = c_ch * (tau * 0.5 + (sigma - tau) * (2.0 / 3.0) * (1.0 - psrc)) +
            p.cgdo * w_;
    c.cgb = c_ch * (1.0 - sigma) * p.cgb_frac + p.cgbo * l_;

    // Junction caps: forward bias of the bulk junction diode is pol*(vb - vx).
    c.cdb = junction_cap(pol * (vb - vd), ad_, pd_);
    c.csb = junction_cap(pol * (vb - vs), as_, ps_);
    return c;
}

void Mosfet::stamp(Stamper& st, const SimContext& ctx) const {
    const double vd = ctx.node_voltage(d_);
    const double vg = ctx.node_voltage(g_);
    const double vs = ctx.node_voltage(s_);
    const double vb = ctx.node_voltage(b_);

    const MosCurrent cur = evaluate_current(vd, vg, vs, vb);

    // Linearized channel current: stamp the Jacobian entries and move the
    // affine remainder to the RHS. Current `ids` leaves node d, enters s.
    st.add_matrix(d_, g_, cur.gm);
    st.add_matrix(d_, d_, cur.gds);
    st.add_matrix(d_, s_, cur.gms);
    st.add_matrix(d_, b_, cur.gmb);
    st.add_matrix(s_, g_, -cur.gm);
    st.add_matrix(s_, d_, -cur.gds);
    st.add_matrix(s_, s_, -cur.gms);
    st.add_matrix(s_, b_, -cur.gmb);

    const double i_affine = cur.ids - (cur.gm * vg + cur.gds * vd +
                                       cur.gms * vs + cur.gmb * vb);
    st.add_source_current(d_, s_, i_affine);

    if (ctx.is_tran()) {
        // Capacitances linearized at the previous accepted solution.
        const MosCaps& caps = caps_at_step(ctx);
        const auto base = static_cast<std::size_t>(state_base());
        const std::vector<double>& state = *ctx.state;
        stamp_capacitor(st, ctx, g_, s_, caps.cgs, state[base + 0]);
        stamp_capacitor(st, ctx, g_, d_, caps.cgd, state[base + 1]);
        stamp_capacitor(st, ctx, g_, b_, caps.cgb, state[base + 2]);
        stamp_capacitor(st, ctx, d_, b_, caps.cdb, state[base + 3]);
        stamp_capacitor(st, ctx, s_, b_, caps.csb, state[base + 4]);
    }
}

const MosCaps& Mosfet::caps_at_step(const SimContext& ctx) const {
    if (ctx.step_id < 0 || ctx.step_id != caps_step_id_) {
        const double vd = ctx.prev_voltage(d_);
        const double vg = ctx.prev_voltage(g_);
        const double vs = ctx.prev_voltage(s_);
        const double vb = ctx.prev_voltage(b_);
        // Delta-gated revalidation (fast transient path only): a settled
        // device whose terminals barely moved keeps the linearization from
        // the step that last evaluated it. Assembly and commit still agree
        // on one C per pair, so the companion charge bookkeeping stays
        // consistent; the LTE controller absorbs the (tiny) model drift.
        const double tol = ctx.stale_dv;
        if (!(tol > 0.0 && ctx.run_id >= 0 && caps_run_id_ == ctx.run_id &&
              std::fabs(vd - caps_vd_) <= tol &&
              std::fabs(vg - caps_vg_) <= tol &&
              std::fabs(vs - caps_vs_) <= tol &&
              std::fabs(vb - caps_vb_) <= tol)) {
            caps_cache_ = evaluate_caps(vd, vg, vs, vb);
            caps_vd_ = vd;
            caps_vg_ = vg;
            caps_vs_ = vs;
            caps_vb_ = vb;
            caps_run_id_ = ctx.run_id;
        }
        caps_step_id_ = ctx.step_id;
    }
    return caps_cache_;
}

void Mosfet::commit(const SimContext& ctx,
                    std::span<double> state_next) const {
    if (!ctx.is_tran()) return;
    const MosCaps& caps = caps_at_step(ctx);
    const auto base = static_cast<std::size_t>(state_base());
    const std::vector<double>& state = *ctx.state;

    struct Pair {
        int a;
        int b;
        double c;
    };
    const Pair pairs[5] = {{g_, s_, caps.cgs},
                           {g_, d_, caps.cgd},
                           {g_, b_, caps.cgb},
                           {d_, b_, caps.cdb},
                           {s_, b_, caps.csb}};
    for (std::size_t k = 0; k < 5; ++k) {
        const double v_now =
            ctx.node_voltage(pairs[k].a) - ctx.node_voltage(pairs[k].b);
        const double v_prev =
            ctx.prev_voltage(pairs[k].a) - ctx.prev_voltage(pairs[k].b);
        state_next[base + k] = capacitor_current(ctx, pairs[k].c, v_now,
                                                 v_prev, state[base + k]);
    }
}

}  // namespace mcsm::spice
