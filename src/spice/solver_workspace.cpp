#include "spice/solver_workspace.h"

#include <cstdlib>

#include "common/error.h"
#include "common/linear_solver.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "spice/circuit.h"
#include "spice/ekv_lanes.h"

namespace mcsm::spice {

// Values are ignored during pattern collection; the entries a device
// touches are fixed by its node/branch bindings, so a zero-bias pass covers
// every operating point.
std::vector<std::pair<int, int>> collect_mna_entries(const Circuit& circuit,
                                                     bool include_gmin) {
    const int n_nodes = circuit.node_count();
    const int n_branches = circuit.branch_total();
    std::vector<std::pair<int, int>> entries;
    Stamper pat(n_nodes, n_branches, &entries);

    const std::vector<double> x(
        static_cast<std::size_t>(n_nodes + n_branches), 0.0);
    const std::vector<double> state(
        static_cast<std::size_t>(circuit.state_total()), 0.0);

    SimContext dc;
    dc.mode = SimContext::Mode::kDc;
    dc.x = &x;
    for (const auto& dev : circuit.devices()) dev->stamp(pat, dc);

    SimContext tran;
    tran.mode = SimContext::Mode::kTran;
    tran.dt = 1e-12;
    tran.integrator = Integrator::kTrapezoidal;
    tran.x = &x;
    tran.x_prev = &x;
    tran.state = &state;
    for (const auto& dev : circuit.devices()) dev->stamp(pat, tran);

    if (include_gmin) pat.add_gmin_everywhere(1.0);
    return entries;
}

SparseMatrix collect_mna_pattern(const Circuit& circuit, bool include_gmin) {
    std::vector<std::pair<int, int>> entries =
        collect_mna_entries(circuit, include_gmin);
    SparseMatrix m;
    m.build(static_cast<std::size_t>(circuit.node_count() - 1 +
                                     circuit.branch_total()),
            std::move(entries));
    return m;
}

namespace {

Stamper make_stamper(const Circuit& circuit, SolverBackend backend,
                     SparseMatrix* sparse) {
    const int n_nodes = circuit.node_count();
    const int n_branches = circuit.branch_total();
    if (backend == SolverBackend::kSparse)
        return Stamper(n_nodes, n_branches, sparse);
    return Stamper(n_nodes, n_branches);
}

}  // namespace

SolverBackend default_solver_backend() {
    static const SolverBackend backend = [] {
        if (const char* env = std::getenv("MCSM_DENSE_SOLVER")) {
            if (env[0] != '\0' && env[0] != '0') return SolverBackend::kDense;
        }
        return SolverBackend::kSparse;
    }();
    return backend;
}

SolverWorkspace::SolverWorkspace(const Circuit& circuit, SolverBackend backend)
    : backend_(backend),
      matrix_(backend == SolverBackend::kSparse
                  ? collect_mna_pattern(circuit, /*include_gmin=*/true)
                  : SparseMatrix{}),
      stamper_(make_stamper(circuit, backend, &matrix_)) {
    const std::size_t n = stamper_.system_size();
    sol_.assign(n, 0.0);
    if (backend_ == SolverBackend::kDense) {
        dense_scratch_.resize(n, n);
        rhs_scratch_.assign(n, 0.0);
    }

    // Group devices for assemble(): MOSFETs into the SoA batch and linear
    // two-terminal devices into the LinearBatch (sparse backend only), the
    // rest onto the virtual path in original order.
    std::vector<const Mosfet*> mosfets;
    std::vector<const Resistor*> resistors;
    std::vector<const Capacitor*> capacitors;
    std::vector<const VSource*> vsources;
    std::vector<const ISource*> isources;
    for (const auto& dev : circuit.devices()) {
        if (backend_ == SolverBackend::kSparse) {
            if (const auto* m = dynamic_cast<const Mosfet*>(dev.get())) {
                mosfets.push_back(m);
                continue;
            }
            if (const auto* r = dynamic_cast<const Resistor*>(dev.get())) {
                resistors.push_back(r);
                continue;
            }
            if (const auto* c = dynamic_cast<const Capacitor*>(dev.get())) {
                capacitors.push_back(c);
                continue;
            }
            if (const auto* v = dynamic_cast<const VSource*>(dev.get())) {
                vsources.push_back(v);
                continue;
            }
            if (const auto* i = dynamic_cast<const ISource*>(dev.get())) {
                isources.push_back(i);
                continue;
            }
        }
        scalar_devices_.push_back(dev.get());
    }
    if (!mosfets.empty()) batch_.build(mosfets, matrix_);
    // Dispatch is per-process, but surfacing it per workspace makes the
    // active kernel visible wherever stats are read (obs dump, server
    // stats line) without a solve having run yet.
    static obs::Gauge& width_gauge = obs::gauge("solver.simd.width");
    width_gauge.set(simd_width());
    if (!resistors.empty() || !capacitors.empty() || !vsources.empty() ||
        !isources.empty())
        linear_batch_.build(resistors, capacitors, vsources, isources,
                            matrix_, circuit.node_count());
}

int SolverWorkspace::simd_width() const {
    if (backend_ != SolverBackend::kSparse) return 1;
#ifdef MCSM_NO_FAST_EKV
    return 1;
#else
    return ekv_lane_width();
#endif
}

const char* SolverWorkspace::simd_kernel_name() const {
    return simd_width() > 1 ? ekv_lane_kernel_name() : "scalar";
}

std::size_t SolverWorkspace::pattern_nnz() const {
    if (backend_ == SolverBackend::kSparse) return matrix_.nnz();
    return system_size() * system_size();
}

Stamper& SolverWorkspace::begin_assembly() {
    stamper_.clear();
    return stamper_;
}

Stamper& SolverWorkspace::assemble(const SimContext& ctx) {
    // DetailSpan/Counter keep the zero-allocation Newton contract: with
    // tracing off the span is one relaxed load + branch, and the counter
    // reference is resolved once per process.
    const obs::DetailSpan span("spice.assemble");
    static obs::Counter& assembles = obs::counter("solver.ws.assembles");
    assembles.add();
    stamper_.clear();
    if (!batch_.empty())
        batch_.evaluate_and_stamp(matrix_, stamper_.rhs(), ctx);
    if (!linear_batch_.empty())
        linear_batch_.stamp(matrix_, stamper_.rhs(), ctx);
    for (const Device* dev : scalar_devices_) dev->stamp(stamper_, ctx);
    return stamper_;
}

void SolverWorkspace::factor() {
    require(backend_ == SolverBackend::kSparse,
            "SolverWorkspace: factor() needs the sparse backend");
    const obs::DetailSpan span("spice.factor");
    static obs::Counter& factors = obs::counter("solver.ws.factors");
    factors.add();
    lu_.factor(matrix_);
}

void SolverWorkspace::solve_block(const double* b, double* x,
                                  std::size_t nrhs) {
    require(backend_ == SolverBackend::kSparse,
            "SolverWorkspace: solve_block() needs the sparse backend");
    const obs::DetailSpan span("spice.solve");
    static obs::Counter& solves = obs::counter("solver.ws.solves");
    solves.add();
    ++solves_;
    lu_.solve_block(b, x, nrhs);
}

void SolverWorkspace::residual(std::span<const double> x_unknown,
                               std::span<double> r) const {
    require(backend_ == SolverBackend::kSparse,
            "SolverWorkspace: residual() needs the sparse backend");
    matrix_.multiply(x_unknown, r);
    const std::vector<double>& b = stamper_.rhs();
    for (std::size_t i = 0; i < r.size(); ++i) r[i] = b[i] - r[i];
}

const std::vector<double>& SolverWorkspace::solve() {
    const obs::DetailSpan span("spice.factor_solve");
    static obs::Counter& solves = obs::counter("solver.ws.solves");
    solves.add();
    ++solves_;
    if (backend_ == SolverBackend::kSparse) {
        lu_.factor(matrix_);
        lu_.solve(stamper_.rhs(), sol_);
        return sol_;
    }
    dense_scratch_ = stamper_.matrix();
    rhs_scratch_ = stamper_.rhs();
    solve_lu_into(dense_scratch_, rhs_scratch_, sol_);
    return sol_;
}

}  // namespace mcsm::spice
