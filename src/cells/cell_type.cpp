#include "cells/cell_type.h"

#include "common/error.h"

namespace mcsm::cells {

int CellInstance::node(const std::string& formal) const {
    const auto it = nodes.find(formal);
    require(it != nodes.end(), "CellInstance: unknown formal node");
    return it->second;
}

CellType::CellType(std::string name, const tech::Technology& tech,
                   std::vector<PinInfo> inputs,
                   std::vector<std::string> internals,
                   std::vector<MosSpec> mosfets,
                   std::function<bool(std::span<const bool>)> logic)
    : name_(std::move(name)),
      tech_(&tech),
      inputs_(std::move(inputs)),
      internals_(std::move(internals)),
      mosfets_(std::move(mosfets)),
      logic_(std::move(logic)) {
    require(!mosfets_.empty(), "CellType: no transistors");
}

const PinInfo& CellType::input(const std::string& pin) const {
    for (const PinInfo& p : inputs_)
        if (p.name == pin) return p;
    throw ModelError("CellType: unknown input pin " + pin);
}

bool CellType::eval_logic(std::span<const bool> in) const {
    require(in.size() == inputs_.size(), "CellType: bad logic input arity");
    return logic_(in);
}

CellInstance CellType::instantiate(
    spice::Circuit& circuit, const std::string& prefix,
    const std::unordered_map<std::string, int>& conn) const {
    CellInstance inst;
    inst.nodes = conn;

    auto resolve = [&](const std::string& formal) -> int {
        const auto it = inst.nodes.find(formal);
        if (it != inst.nodes.end()) return it->second;
        const int id = circuit.node(prefix + "." + formal);
        inst.nodes[formal] = id;
        return id;
    };

    require(conn.count(kVdd) && conn.count(kGnd) && conn.count(kOut),
            "CellType::instantiate: VDD, GND and OUT must be connected");
    for (const PinInfo& p : inputs_)
        require(conn.count(p.name) != 0,
                "CellType::instantiate: all input pins must be connected");

    for (const MosSpec& m : mosfets_) {
        const spice::MosParams& params = m.type == spice::MosType::kNmos
                                             ? tech_->nmos
                                             : tech_->pmos;
        circuit.add_mosfet(prefix + "." + m.name, resolve(m.d), resolve(m.g),
                           resolve(m.s), resolve(m.b), params, m.w, m.l);
    }
    return inst;
}

double CellType::input_cap_estimate(const std::string& pin) const {
    double cap = 0.0;
    for (const MosSpec& m : mosfets_) {
        if (m.g != pin) continue;
        const spice::MosParams& params = m.type == spice::MosType::kNmos
                                             ? tech_->nmos
                                             : tech_->pmos;
        cap += params.cox * m.w * m.l + (params.cgso + params.cgdo) * m.w;
    }
    return cap;
}

}  // namespace mcsm::cells
