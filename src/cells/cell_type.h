// Transistor-level standard-cell template: a list of MOSFET instances over
// formal node names, plus the metadata the characterizer needs (input pins
// with non-controlling values, modeled internal stack nodes, logic function).
#ifndef MCSM_CELLS_CELL_TYPE_H
#define MCSM_CELLS_CELL_TYPE_H

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "spice/circuit.h"
#include "tech/tech130.h"

namespace mcsm::cells {

// Formal node names used by cell templates.
inline constexpr const char* kVdd = "VDD";
inline constexpr const char* kGnd = "GND";
inline constexpr const char* kOut = "OUT";

struct PinInfo {
    std::string name;
    // Input value (volts) that keeps the cell sensitive to the other inputs
    // (0 for NOR inputs, Vdd for NAND inputs).
    double non_controlling = 0.0;
};

struct MosSpec {
    std::string name;  // instance suffix, e.g. "M1"
    std::string d;
    std::string g;
    std::string s;
    std::string b;
    spice::MosType type = spice::MosType::kNmos;
    double w = 0.0;
    double l = 0.0;
};

// Result of instantiating a cell: resolved node ids for every formal name.
struct CellInstance {
    std::unordered_map<std::string, int> nodes;

    int node(const std::string& formal) const;
};

class CellType {
public:
    CellType(std::string name, const tech::Technology& tech,
             std::vector<PinInfo> inputs, std::vector<std::string> internals,
             std::vector<MosSpec> mosfets,
             std::function<bool(std::span<const bool>)> logic);

    const std::string& name() const { return name_; }
    const tech::Technology& tech() const { return *tech_; }
    const std::vector<PinInfo>& inputs() const { return inputs_; }
    const PinInfo& input(const std::string& pin) const;
    std::size_t input_count() const { return inputs_.size(); }
    const std::vector<std::string>& internal_nodes() const { return internals_; }
    const std::vector<MosSpec>& mosfets() const { return mosfets_; }

    // Logic value of the output for the given input values.
    bool eval_logic(std::span<const bool> in) const;

    // Adds the cell's transistors to `circuit`. `conn` must map VDD, GND,
    // OUT and every input pin to circuit nodes; internal nodes may be mapped
    // too (to probe them) and are otherwise created as "<prefix>.<formal>".
    CellInstance instantiate(
        spice::Circuit& circuit, const std::string& prefix,
        const std::unordered_map<std::string, int>& conn) const;

    // Rough input capacitance (gate area + overlap of devices driven by the
    // pin), used for load estimates and sanity checks.
    double input_cap_estimate(const std::string& pin) const;

private:
    std::string name_;
    const tech::Technology* tech_;
    std::vector<PinInfo> inputs_;
    std::vector<std::string> internals_;
    std::vector<MosSpec> mosfets_;
    std::function<bool(std::span<const bool>)> logic_;
};

}  // namespace mcsm::cells

#endif  // MCSM_CELLS_CELL_TYPE_H
