#include "cells/library.h"

#include "common/error.h"

namespace mcsm::cells {

namespace {

constexpr spice::MosType kN = spice::MosType::kNmos;
constexpr spice::MosType kP = spice::MosType::kPmos;

}  // namespace

CellLibrary::CellLibrary(const tech::Technology& tech) : tech_(&tech) {
    const double l = tech.lmin;
    const double wn = tech.wn_unit;
    const double wp = tech.wp_unit;
    const double vdd = tech.vdd;

    // --- inverters -------------------------------------------------------
    for (const auto& [suffix, mult] :
         std::vector<std::pair<std::string, double>>{
             {"INV_X1", 1.0}, {"INV_X2", 2.0}, {"INV_X4", 4.0}}) {
        add(std::make_unique<CellType>(
            suffix, tech, std::vector<PinInfo>{{"A", 0.0}},
            std::vector<std::string>{},
            std::vector<MosSpec>{
                {"MN", kOut, "A", kGnd, kGnd, kN, mult * wn, l},
                {"MP", kOut, "A", kVdd, kVdd, kP, mult * wp, l}},
            [](std::span<const bool> in) { return !in[0]; }));
    }

    // --- NOR2 (paper Fig. 2) ----------------------------------------------
    add(std::make_unique<CellType>(
        "NOR2", tech, std::vector<PinInfo>{{"A", 0.0}, {"B", 0.0}},
        std::vector<std::string>{"N"},
        std::vector<MosSpec>{
            // PMOS stack: M4 on top (gate B), M3 below (gate A), node N
            // between them.
            {"M4", "N", "B", kVdd, kVdd, kP, 2.0 * wp, l},
            {"M3", kOut, "A", "N", kVdd, kP, 2.0 * wp, l},
            // Parallel NMOS at the output.
            {"M1", kOut, "A", kGnd, kGnd, kN, wn, l},
            {"M2", kOut, "B", kGnd, kGnd, kN, wn, l}},
        [](std::span<const bool> in) { return !(in[0] || in[1]); }));

    // --- NOR3 -------------------------------------------------------------
    add(std::make_unique<CellType>(
        "NOR3", tech,
        std::vector<PinInfo>{{"A", 0.0}, {"B", 0.0}, {"C", 0.0}},
        std::vector<std::string>{"N1", "N2"},
        std::vector<MosSpec>{
            {"MP3", "N1", "C", kVdd, kVdd, kP, 3.0 * wp, l},
            {"MP2", "N2", "B", "N1", kVdd, kP, 3.0 * wp, l},
            {"MP1", kOut, "A", "N2", kVdd, kP, 3.0 * wp, l},
            {"MN1", kOut, "A", kGnd, kGnd, kN, wn, l},
            {"MN2", kOut, "B", kGnd, kGnd, kN, wn, l},
            {"MN3", kOut, "C", kGnd, kGnd, kN, wn, l}},
        [](std::span<const bool> in) { return !(in[0] || in[1] || in[2]); }));

    // --- NAND2 -------------------------------------------------------------
    add(std::make_unique<CellType>(
        "NAND2", tech, std::vector<PinInfo>{{"A", vdd}, {"B", vdd}},
        std::vector<std::string>{"N"},
        std::vector<MosSpec>{
            {"MN1", kOut, "A", "N", kGnd, kN, 2.0 * wn, l},
            {"MN2", "N", "B", kGnd, kGnd, kN, 2.0 * wn, l},
            {"MP1", kOut, "A", kVdd, kVdd, kP, wp, l},
            {"MP2", kOut, "B", kVdd, kVdd, kP, wp, l}},
        [](std::span<const bool> in) { return !(in[0] && in[1]); }));

    // --- NAND3 -------------------------------------------------------------
    add(std::make_unique<CellType>(
        "NAND3", tech,
        std::vector<PinInfo>{{"A", vdd}, {"B", vdd}, {"C", vdd}},
        std::vector<std::string>{"N1", "N2"},
        std::vector<MosSpec>{
            {"MN1", kOut, "A", "N1", kGnd, kN, 3.0 * wn, l},
            {"MN2", "N1", "B", "N2", kGnd, kN, 3.0 * wn, l},
            {"MN3", "N2", "C", kGnd, kGnd, kN, 3.0 * wn, l},
            {"MP1", kOut, "A", kVdd, kVdd, kP, wp, l},
            {"MP2", kOut, "B", kVdd, kVdd, kP, wp, l},
            {"MP3", kOut, "C", kVdd, kVdd, kP, wp, l}},
        [](std::span<const bool> in) {
            return !(in[0] && in[1] && in[2]);
        }));

    // --- AOI21: OUT = !(A*B + C) -------------------------------------------
    add(std::make_unique<CellType>(
        "AOI21", tech,
        std::vector<PinInfo>{{"A", vdd}, {"B", vdd}, {"C", 0.0}},
        std::vector<std::string>{"N1", "P1"},
        std::vector<MosSpec>{
            // Pull-down: A-B series stack (node N1) in parallel with C.
            {"MNA", kOut, "A", "N1", kGnd, kN, 2.0 * wn, l},
            {"MNB", "N1", "B", kGnd, kGnd, kN, 2.0 * wn, l},
            {"MNC", kOut, "C", kGnd, kGnd, kN, wn, l},
            // Pull-up: (A || B) in series with C (node P1).
            {"MPA", "P1", "A", kVdd, kVdd, kP, 2.0 * wp, l},
            {"MPB", "P1", "B", kVdd, kVdd, kP, 2.0 * wp, l},
            {"MPC", kOut, "C", "P1", kVdd, kP, 2.0 * wp, l}},
        [](std::span<const bool> in) {
            return !((in[0] && in[1]) || in[2]);
        }));

    // --- OAI21: OUT = !((A + B) * C) ----------------------------------------
    add(std::make_unique<CellType>(
        "OAI21", tech,
        std::vector<PinInfo>{{"A", 0.0}, {"B", 0.0}, {"C", vdd}},
        std::vector<std::string>{"N1", "P1"},
        std::vector<MosSpec>{
            // Pull-down: (A || B) in series with C (node N1).
            {"MNC", kOut, "C", "N1", kGnd, kN, 2.0 * wn, l},
            {"MNA", "N1", "A", kGnd, kGnd, kN, 2.0 * wn, l},
            {"MNB", "N1", "B", kGnd, kGnd, kN, 2.0 * wn, l},
            // Pull-up: A-B series stack (node P1) in parallel with C.
            {"MPA", "P1", "A", kVdd, kVdd, kP, 2.0 * wp, l},
            {"MPB", kOut, "B", "P1", kVdd, kP, 2.0 * wp, l},
            {"MPC", kOut, "C", kVdd, kVdd, kP, wp, l}},
        [](std::span<const bool> in) {
            return !((in[0] || in[1]) && in[2]);
        }));
}

void CellLibrary::add(std::unique_ptr<CellType> cell) {
    order_.push_back(cell->name());
    cells_[cell->name()] = std::move(cell);
}

const CellType& CellLibrary::get(const std::string& name) const {
    const auto it = cells_.find(name);
    require(it != cells_.end(), "CellLibrary: unknown cell");
    return *it->second;
}

bool CellLibrary::has(const std::string& name) const {
    return cells_.find(name) != cells_.end();
}

std::vector<std::string> CellLibrary::names() const { return order_; }

}  // namespace mcsm::cells
