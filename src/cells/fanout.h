// Helpers for building fanout loads: FO-k = k parallel receiver-cell inputs
// attached to a driver's output net, as in the paper's Fig. 5 sweep.
#ifndef MCSM_CELLS_FANOUT_H
#define MCSM_CELLS_FANOUT_H

#include <string>

#include "cells/library.h"
#include "spice/circuit.h"

namespace mcsm::cells {

// Attaches `count` receiver instances (their input pin "A") to `net`.
// Receivers are real transistor-level cells; their outputs are left to swing
// freely (each output node is created as "<prefix><k>.OUT").
// Returns the total estimated input capacitance added.
double attach_fanout(spice::Circuit& circuit, const CellLibrary& lib,
                     const std::string& receiver_cell, int net, int vdd_node,
                     int count, const std::string& prefix);

// Estimated input capacitance of one receiver input (pin "A").
double receiver_input_cap(const CellLibrary& lib,
                          const std::string& receiver_cell);

}  // namespace mcsm::cells

#endif  // MCSM_CELLS_FANOUT_H
