// Factory for the transistor-level standard-cell set used throughout the
// repository: INV_X1/X2/X4, NAND2/3, NOR2/3, AOI21, OAI21.
//
// The NOR2 template follows the paper's Fig. 2: PMOS M4 (gate B) on top of
// PMOS M3 (gate A) with the stack node N between them, NMOS M1 (A) and
// M2 (B) in parallel at the output.
#ifndef MCSM_CELLS_LIBRARY_H
#define MCSM_CELLS_LIBRARY_H

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cells/cell_type.h"
#include "tech/tech130.h"

namespace mcsm::cells {

class CellLibrary {
public:
    explicit CellLibrary(const tech::Technology& tech);

    CellLibrary(const CellLibrary&) = delete;
    CellLibrary& operator=(const CellLibrary&) = delete;

    const tech::Technology& tech() const { return *tech_; }

    const CellType& get(const std::string& name) const;
    bool has(const std::string& name) const;
    std::vector<std::string> names() const;

private:
    void add(std::unique_ptr<CellType> cell);

    const tech::Technology* tech_;
    std::unordered_map<std::string, std::unique_ptr<CellType>> cells_;
    std::vector<std::string> order_;
};

}  // namespace mcsm::cells

#endif  // MCSM_CELLS_LIBRARY_H
