#include "cells/fanout.h"

namespace mcsm::cells {

double attach_fanout(spice::Circuit& circuit, const CellLibrary& lib,
                     const std::string& receiver_cell, int net, int vdd_node,
                     int count, const std::string& prefix) {
    const CellType& recv = lib.get(receiver_cell);
    double total_cap = 0.0;
    for (int k = 0; k < count; ++k) {
        const std::string inst = prefix + std::to_string(k);
        std::unordered_map<std::string, int> conn;
        conn[kVdd] = vdd_node;
        conn[kGnd] = spice::Circuit::kGround;
        conn[recv.inputs().front().name] = net;
        // Remaining inputs (if any) tie to their non-controlling level rails.
        for (std::size_t i = 1; i < recv.inputs().size(); ++i) {
            const PinInfo& pin = recv.inputs()[i];
            conn[pin.name] =
                pin.non_controlling > 0.0 ? vdd_node : spice::Circuit::kGround;
        }
        conn[kOut] = circuit.node(inst + ".OUT");
        recv.instantiate(circuit, inst, conn);
        total_cap += recv.input_cap_estimate(recv.inputs().front().name);
    }
    return total_cap;
}

double receiver_input_cap(const CellLibrary& lib,
                          const std::string& receiver_cell) {
    const CellType& recv = lib.get(receiver_cell);
    return recv.input_cap_estimate(recv.inputs().front().name);
}

}  // namespace mcsm::cells
