#include "serve/timing_service.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/error.h"
#include "common/parallel.h"
#include "core/model_scenarios.h"
#include "spice/tran_solver.h"
#include "wave/edges.h"
#include "wave/metrics.h"

namespace mcsm::serve {

namespace {

// Quiet interval before the earliest input edge, so the t=0 operating
// point settles on the pre-transition state.
constexpr double kEdgePad = 100e-12;

double skew_of(const TimingQuery& q, std::size_t p) {
    return q.skews.empty() ? 0.0 : q.skews[p];
}

}  // namespace

TimingService::TimingService(ModelRepository& repo, ServeOptions options)
    : repo_(&repo), options_(std::move(options)) {
    require(!options_.slew_knots.empty() && !options_.skew_knots.empty() &&
                !options_.load_knots.empty(),
            "TimingService: empty surface knot vector");
}

void TimingService::validate(const TimingQuery& q) {
    require(!q.cell.empty(), "TimingQuery: empty cell name");
    require(q.pins.size() == 1 || q.pins.size() == 2,
            "TimingQuery: need 1 or 2 switching pins");
    require(q.slews.size() == q.pins.size(),
            "TimingQuery: need one input slew per switching pin");
    require(q.skews.empty() || q.skews.size() == q.pins.size(),
            "TimingQuery: skews must be empty or one per switching pin");
    for (double s : q.slews)
        require(s > 0.0, "TimingQuery: input slews must be positive");
    require(q.load_cap >= 0.0, "TimingQuery: negative load capacitance");
}

std::string TimingService::arc_id(const TimingQuery& q) {
    std::string id = q.cell;
    id += '|';
    for (std::size_t p = 0; p < q.pins.size(); ++p) {
        if (p) id += '-';
        id += q.pins[p];
    }
    id += '|';
    id += q.inputs_rise ? 'R' : 'F';
    return id;
}

TimingResult TimingService::eval_transient(const core::CsmModel& model,
                                           const TimingQuery& q) const {
    const double vdd = model.vdd;
    const double v0 = q.inputs_rise ? 0.0 : vdd;
    const double v1 = vdd - v0;
    const bool output_rising = !q.inputs_rise;

    double min_skew = 0.0;
    double max_skew = 0.0;
    double max_slew = 0.0;
    for (std::size_t p = 0; p < q.pins.size(); ++p) {
        min_skew = std::min(min_skew, skew_of(q, p));
        max_skew = std::max(max_skew, skew_of(q, p));
        max_slew = std::max(max_slew, q.slews[p]);
    }
    const double t_edge = kEdgePad - std::min(0.0, min_skew);

    std::unordered_map<std::string, wave::Waveform> inputs;
    double ref_t50 = -1e300;  // 50% crossing of the latest input edge
    for (std::size_t p = 0; p < q.pins.size(); ++p) {
        const double t_start = t_edge + skew_of(q, p);
        inputs[q.pins[p]] =
            wave::saturated_ramp(t_start, q.slews[p], v0, v1);
        ref_t50 = std::max(ref_t50, t_start + 0.5 * q.slews[p]);
    }

    core::ModelLoadSpec load;
    load.cap = q.load_cap;
    core::ModelCell cell(model, inputs, load);

    spice::TranOptions topt;
    topt.dt = options_.dt;
    topt.tstop = t_edge + max_skew + max_slew + options_.settle;
    const spice::TranResult tran = cell.run(topt);
    const wave::Waveform out = tran.node_waveform(cell.out_node());

    TimingResult result;
    result.path = ResultPath::kTransient;
    const auto out_t50 = wave::crossing(out, vdd, 0.5, output_rising);
    const auto out_slew = wave::slew_10_90(out, vdd, output_rising);
    if (!out_t50 || !out_slew) {
        result.error = "output never completed the " +
                       std::string(output_rising ? "rising" : "falling") +
                       " transition within the simulation window";
        return result;
    }
    result.valid = true;
    result.delay = *out_t50 - ref_t50;
    result.slew = *out_slew;
    if (q.want_waveform) result.waveform = out;
    return result;
}

TimingService::SurfacePtr TimingService::build_surface(
    const TimingQuery& q) {
    const std::shared_ptr<const core::CsmModel> model =
        repo_->get(ModelKey::arc(q.cell, q.pins));

    std::vector<lut::Axis> axes;
    if (q.pins.size() == 1) {
        axes.emplace_back("slew", options_.slew_knots);
    } else {
        axes.emplace_back("slew_a", options_.slew_knots);
        axes.emplace_back("slew_b", options_.slew_knots);
        axes.emplace_back("skew_b", options_.skew_knots);
    }
    axes.emplace_back("load", options_.load_knots);

    auto surface = std::make_shared<ArcSurface>();
    surface->delay = lut::NdTable(axes, arc_id(q) + ".delay");
    surface->slew = lut::NdTable(axes, arc_id(q) + ".slew");

    // Enumerate the grid sequentially, then fan the independent transient
    // evaluations out over the pool; every point writes disjoint slots, so
    // the tables are identical for any thread count.
    std::vector<std::vector<std::size_t>> points;
    std::vector<std::size_t> idx(axes.size(), 0);
    for (;;) {
        points.push_back(idx);
        std::size_t d = axes.size();
        while (d > 0) {
            --d;
            if (++idx[d] < axes[d].size()) break;
            idx[d] = 0;
            if (d == 0) break;
        }
        if (idx == std::vector<std::size_t>(axes.size(), 0)) break;
    }

    parallel_for(
        points.size(),
        [&](std::size_t i) {
            const std::vector<std::size_t>& at = points[i];
            TimingQuery knot;
            knot.cell = q.cell;
            knot.pins = q.pins;
            knot.inputs_rise = q.inputs_rise;
            if (q.pins.size() == 1) {
                knot.slews = {axes[0].knots()[at[0]]};
                knot.load_cap = axes[1].knots()[at[1]];
            } else {
                knot.slews = {axes[0].knots()[at[0]],
                              axes[1].knots()[at[1]]};
                knot.skews = {0.0, axes[2].knots()[at[2]]};
                knot.load_cap = axes[3].knots()[at[3]];
            }
            const TimingResult r = eval_transient(*model, knot);
            require(r.valid, "TimingService: surface grid point failed for " +
                                 arc_id(q) + ": " + r.error);
            surface->delay.set_grid_value(at, r.delay);
            surface->slew.set_grid_value(at, r.slew);
        },
        options_.threads);

    return surface;
}

TimingService::SurfacePtr TimingService::surface_for(const TimingQuery& q) {
    // Same single-flight contract as the repository: concurrent misses
    // build once, failures are never cached.
    return surfaces_.get_or_produce(arc_id(q),
                                    [&] { return build_surface(q); });
}

TimingResult TimingService::eval_lut(const ArcSurface& surface,
                                     const TimingQuery& q) const {
    std::vector<double> x;
    if (q.pins.size() == 1) {
        x = {q.slews[0], q.load_cap};
    } else {
        // Delay is referenced to the latest input edge, so only the skew
        // DIFFERENCE matters; absolute skews shift the whole experiment.
        x = {q.slews[0], q.slews[1], skew_of(q, 1) - skew_of(q, 0),
             q.load_cap};
    }
    TimingResult result;
    result.valid = true;
    result.path = ResultPath::kLut;
    result.delay = surface.delay.at(x);
    result.slew = surface.slew.at(x);
    return result;
}

std::vector<TimingResult> TimingService::run_batch(
    std::span<const TimingQuery> queries) {
    std::vector<TimingResult> results(queries.size());

    // Phase 1: warm every distinct arc once (surface or model), so the
    // per-query phase interpolates instead of serializing on single-flight
    // builds. Arcs are warmed sequentially ON PURPOSE: each cold surface
    // build fans its grid transients over the whole pool, which beats
    // building arcs concurrently with one inline-running worker each.
    // A failed warm-up is recorded and short-circuits every query on that
    // arc below -- one build attempt per arc per batch, not per query (the
    // next run_batch retries, preserving the never-cache-failures
    // contract).
    std::unordered_map<std::string, std::string> failed;
    {
        std::unordered_set<std::string> seen;
        for (const TimingQuery& q : queries) {
            try {
                validate(q);
            } catch (const std::exception&) {
                continue;  // phase 2 reports it on the right result
            }
            const bool lut = !(q.exact || q.want_waveform);
            const std::string warm_id = (lut ? "S|" : "M|") + arc_id(q);
            if (!seen.insert(warm_id).second) continue;
            try {
                if (lut)
                    surface_for(q);
                else
                    repo_->get(ModelKey::arc(q.cell, q.pins));
            } catch (const std::exception& e) {
                failed.emplace(warm_id, e.what());
            }
        }
    }

    const auto failure_of = [&](const TimingQuery& q) -> const std::string* {
        const bool lut = !(q.exact || q.want_waveform);
        const auto it = failed.find((lut ? "S|" : "M|") + arc_id(q));
        return it == failed.end() ? nullptr : &it->second;
    };

    // Phase 2: evaluate every query independently.
    parallel_for(
        queries.size(),
        [&](std::size_t i) {
            const TimingQuery& q = queries[i];
            try {
                validate(q);
                if (const std::string* error = failure_of(q)) {
                    results[i].error = *error;
                    return;
                }
                if (q.exact || q.want_waveform) {
                    const auto model =
                        repo_->get(ModelKey::arc(q.cell, q.pins));
                    results[i] = eval_transient(*model, q);
                } else {
                    results[i] = eval_lut(*surface_for(q), q);
                }
            } catch (const std::exception& e) {
                results[i] = TimingResult{};
                results[i].error = e.what();
            }
        },
        options_.threads);
    return results;
}

TimingResult TimingService::run_one(const TimingQuery& query) {
    return run_batch({&query, 1}).front();
}

std::size_t TimingService::surface_count() const {
    return surfaces_.ready_count();
}

}  // namespace mcsm::serve
