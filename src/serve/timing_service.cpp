#include "serve/timing_service.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/error.h"
#include "common/parallel.h"
#include "core/model_scenarios.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/model_store.h"
#include "spice/tran_solver.h"
#include "wave/edges.h"
#include "wave/metrics.h"

namespace mcsm::serve {

namespace {

namespace fs = std::filesystem;

// Quiet interval before the earliest input edge, so the t=0 operating
// point settles on the pre-transition state.
constexpr double kEdgePad = 100e-12;

constexpr std::size_t kMaxPins = 3;

double skew_of(const TimingQuery& q, std::size_t p) {
    return q.skews.empty() ? 0.0 : q.skews[p];
}

// 50%-crossing offset of pin p's edge relative to pin 0's. Only
// DIFFERENCES relative to pin 0 matter; absolute skews shift the whole
// experiment.
double edge_offset(const TimingQuery& q, std::size_t p) {
    return (skew_of(q, p) - skew_of(q, 0)) +
           0.5 * (q.slews[p] - q.slews[0]);
}

// Slew scale the skew axis is normalized by (see ArcSurface in the
// header): the mean of the two ramp durations involved.
double slew_scale(double slew_0, double slew_p) {
    return 0.5 * (slew_0 + slew_p);
}

// Normalized edge offset of pin p (the u coordinate).
double u_of(const TimingQuery& q, std::size_t p) {
    return edge_offset(q, p) / slew_scale(q.slews[0], q.slews[p]);
}

// Surface coordinates of `q` with the load axis pinned to `cap` (the
// effective lumped load). Two-pin arcs use u_b directly; three-pin arcs
// use the rotated (max, diff) coordinates -- see ArcSurface in the header.
std::vector<double> lut_coords(const TimingQuery& q, double cap) {
    std::vector<double> x;
    x.reserve(2 * q.pins.size());
    for (double s : q.slews) x.push_back(s);
    if (q.pins.size() == 2) {
        x.push_back(u_of(q, 1));
    } else if (q.pins.size() == 3) {
        const double u_b = u_of(q, 1);
        const double u_c = u_of(q, 2);
        x.push_back(std::max(u_b, u_c));
        x.push_back(u_b - u_c);
    }
    x.push_back(cap);
    return x;
}

void check_knots(const std::string& name, const std::vector<double>& knots,
                 bool positive) {
    // lut::Axis needs at least two knots; reject here so a degenerate
    // configuration fails at construction, not per-query at build time.
    require(knots.size() >= 2,
            "ServeOptions: " + name + " knot vector needs >= 2 knots");
    for (std::size_t i = 0; i < knots.size(); ++i) {
        require(std::isfinite(knots[i]),
                "ServeOptions: non-finite " + name + " knot");
        require(!positive || knots[i] > 0.0,
                "ServeOptions: " + name + " knots must be positive");
        require(i == 0 || knots[i] > knots[i - 1],
                "ServeOptions: " + name +
                    " knots must be strictly increasing");
    }
}

void check_skew_knots(const std::string& name,
                      const std::vector<double>& knots) {
    check_knots(name, knots, /*positive=*/false);
    require(knots.front() <= 0.0 && knots.back() >= 0.0,
            "ServeOptions: " + name +
                " knots must bracket 0 (the simultaneous-switching valley)");
    // Skew knots are normalized edge offsets (order 1): an axis spanning
    // less than a milli-slew is almost certainly raw seconds from the
    // pre-normalized schema, and one tens of mean-slews wide is garbage.
    require(knots.back() - knots.front() >= 1e-3 &&
                std::fabs(knots.front()) <= 20.0 && knots.back() <= 20.0,
            "ServeOptions: " + name +
                " knots are normalized edge offsets (dimensionless, order "
                "1), not seconds");
}

void validate_options(const ServeOptions& o) {
    check_knots("slew", o.slew_knots, /*positive=*/true);
    check_skew_knots("skew", o.skew_knots);
    check_knots("load", o.load_knots, /*positive=*/false);
    check_knots("3-pin slew", o.slew_knots_mis3, /*positive=*/true);
    check_skew_knots("3-pin skew", o.skew_knots_mis3);
    check_skew_knots("3-pin skew-pair", o.skew_pair_knots_mis3);
    check_knots("3-pin load", o.load_knots_mis3, /*positive=*/false);
    require(o.load_knots.front() >= 0.0 && o.load_knots_mis3.front() >= 0.0,
            "ServeOptions: load knots must be non-negative");
    require(std::isfinite(o.dt) && o.dt > 0.0,
            "ServeOptions: dt must be positive");
    require(std::isfinite(o.settle) && o.settle > 0.0,
            "ServeOptions: settle must be positive");
}

}  // namespace

TimingService::TimingService(ModelRepository& repo, ServeOptions options)
    : repo_(&repo), options_(std::move(options)) {
    validate_options(options_);
    // Same orphan policy as the model repository: sweep "*.tmp.*"
    // droppings a dead writer left in the surface store, but never a
    // potentially live writer's in-flight temp.
    if (!options_.surface_dir.empty())
        clean_orphan_temps(options_.surface_dir, 3600);
}

void TimingService::validate(const TimingQuery& q) {
    require(!q.cell.empty(), "TimingQuery: empty cell name");
    require(q.pins.size() >= 1 && q.pins.size() <= kMaxPins,
            "TimingQuery: need 1 to 3 switching pins, got " +
                std::to_string(q.pins.size()));
    for (std::size_t p = 0; p < q.pins.size(); ++p) {
        require(!q.pins[p].empty(), "TimingQuery: empty pin name");
        for (std::size_t r = p + 1; r < q.pins.size(); ++r)
            require(q.pins[p] != q.pins[r],
                    "TimingQuery: duplicate switching pin " + q.pins[p]);
    }
    require(q.slews.size() == q.pins.size(),
            "TimingQuery: need one input slew per switching pin (" +
                std::to_string(q.pins.size()) + " pins, " +
                std::to_string(q.slews.size()) + " slews)");
    require(q.skews.empty() || q.skews.size() == q.pins.size(),
            "TimingQuery: skews must be empty or one per switching pin (" +
                std::to_string(q.pins.size()) + " pins, " +
                std::to_string(q.skews.size()) + " skews)");
    for (double s : q.slews)
        require(std::isfinite(s) && s > 0.0,
                "TimingQuery: input slews must be positive and finite");
    for (double s : q.skews)
        require(std::isfinite(s), "TimingQuery: non-finite input skew");
    require(std::isfinite(q.load_cap) && q.load_cap >= 0.0,
            "TimingQuery: negative load capacitance");
    require(std::isfinite(q.c_near) && q.c_near >= 0.0 &&
                std::isfinite(q.c_far) && q.c_far >= 0.0,
            "TimingQuery: negative pi-load capacitance");
    require(std::isfinite(q.r_wire) && q.r_wire >= 0.0,
            "TimingQuery: negative pi-load wire resistance");
    require(q.r_wire > 0.0 || (q.c_near == 0.0 && q.c_far == 0.0),
            "TimingQuery: pi-load caps given without r_wire > 0 (fold them "
            "into load_cap or set r_wire)");
    require(std::isfinite(q.corner.vdd) &&
                (q.corner.vdd <= 0.0 ||
                 (q.corner.vdd >= 0.3 && q.corner.vdd <= 5.0)),
            "TimingQuery: corner vdd outside [0.3, 5] V (0 = nominal)");
    require(std::isfinite(q.corner.temp_c) && q.corner.temp_c >= -100.0 &&
                q.corner.temp_c <= 300.0,
            "TimingQuery: corner temperature outside [-100, 300] degC");
}

std::string TimingService::arc_id(const TimingQuery& q) {
    std::string id = q.cell;
    id += '|';
    for (std::size_t p = 0; p < q.pins.size(); ++p) {
        if (p) id += '-';
        id += q.pins[p];
    }
    id += '|';
    id += q.inputs_rise ? 'R' : 'F';
    const std::string tag = q.corner.tag();
    if (!tag.empty()) {
        id += '|';
        id += tag;
    }
    return id;
}

std::string TimingService::surface_path(const std::string& arc_id) const {
    if (options_.surface_dir.empty()) return {};
    std::string stem = arc_id;
    std::replace(stem.begin(), stem.end(), '|', '.');
    return options_.surface_dir + "/" + stem + kSurfaceExt;
}

std::vector<lut::Axis> TimingService::surface_axes(
    std::size_t pin_count) const {
    const bool mis3 = pin_count >= 3;
    const std::vector<double>& slews =
        mis3 ? options_.slew_knots_mis3 : options_.slew_knots;
    const std::vector<double>& skews =
        mis3 ? options_.skew_knots_mis3 : options_.skew_knots;
    const std::vector<double>& loads =
        mis3 ? options_.load_knots_mis3 : options_.load_knots;

    static constexpr const char* kSlewNames[kMaxPins] = {"slew_a", "slew_b",
                                                         "slew_c"};
    std::vector<lut::Axis> axes;
    if (pin_count == 1) {
        axes.emplace_back("slew", slews);
    } else if (pin_count == 2) {
        axes.emplace_back(kSlewNames[0], slews);
        axes.emplace_back(kSlewNames[1], slews);
        axes.emplace_back("skew_b", skews);
    } else {
        for (std::size_t p = 0; p < pin_count; ++p)
            axes.emplace_back(kSlewNames[p], slews);
        axes.emplace_back("skew_max", skews);
        axes.emplace_back("skew_diff", options_.skew_pair_knots_mis3);
    }
    axes.emplace_back("load", loads);
    return axes;
}

TimingResult TimingService::eval_transient(const core::CsmModel& model,
                                           const TimingQuery& q,
                                           bool ref_pin0) const {
    const double vdd = model.vdd;
    const double v0 = q.inputs_rise ? 0.0 : vdd;
    const double v1 = vdd - v0;
    const bool output_rising = !q.inputs_rise;

    double min_skew = 0.0;
    double max_skew = 0.0;
    double max_slew = 0.0;
    for (std::size_t p = 0; p < q.pins.size(); ++p) {
        min_skew = std::min(min_skew, skew_of(q, p));
        max_skew = std::max(max_skew, skew_of(q, p));
        max_slew = std::max(max_slew, q.slews[p]);
    }
    const double t_edge = kEdgePad - std::min(0.0, min_skew);

    std::unordered_map<std::string, wave::Waveform> inputs;
    double ref_t50 = -1e300;  // 50% crossing of the latest input edge
    for (std::size_t p = 0; p < q.pins.size(); ++p) {
        const double t_start = t_edge + skew_of(q, p);
        inputs[q.pins[p]] =
            wave::saturated_ramp(t_start, q.slews[p], v0, v1);
        ref_t50 = std::max(ref_t50, t_start + 0.5 * q.slews[p]);
    }
    if (ref_pin0)
        ref_t50 = t_edge + skew_of(q, 0) + 0.5 * q.slews[0];

    core::ModelLoadSpec load;
    load.cap = q.load_cap;
    if (q.has_pi_load()) {
        load.pi_c1 = q.c_near;
        load.pi_r = q.r_wire;
        load.pi_c2 = q.c_far;
    }
    core::ModelCell cell(model, inputs, load);

    // The far cap charges through r_wire; give its time constant room to
    // settle inside the window.
    const double tstop = t_edge + max_skew + max_slew + options_.settle +
                         5.0 * q.r_wire * q.c_far;
    spice::TranOptions topt;
    if (options_.adaptive_tran) {
        topt = spice::fast_tran_options(tstop, options_.dt);
    } else {
        topt.dt = options_.dt;
        topt.tstop = tstop;
    }
    const spice::TranResult tran = cell.run(topt);
    const wave::Waveform out = tran.node_waveform(cell.out_node());

    TimingResult result;
    result.path = ResultPath::kTransient;
    const auto out_t50 = wave::crossing(out, vdd, 0.5, output_rising);
    const auto out_slew = wave::slew_10_90(out, vdd, output_rising);
    if (!out_t50 || !out_slew) {
        result.error = "output never completed the " +
                       std::string(output_rising ? "rising" : "falling") +
                       " transition within the simulation window";
        return result;
    }
    result.valid = true;
    result.delay = *out_t50 - ref_t50;
    result.slew = *out_slew;
    if (q.want_waveform) result.waveform = out;
    return result;
}

TimingService::SurfacePtr TimingService::build_surface(
    const TimingQuery& q) {
    const std::string id = arc_id(q);
    const obs::Span span("serve.build_surface", id);
    const std::vector<lut::Axis> axes = surface_axes(q.pins.size());
    const std::string path = surface_path(id);

    // Packed-surface fast path: serve TableViews pointing straight into
    // the mapping -- no parse, no copy, no model fetch (which could
    // trigger characterization). Accepted only when the evaluation
    // parameters match AND the surface's source-model checksum equals the
    // pack's own model entry: a pack is a consistent snapshot or it is
    // ignored entry-by-entry.
    if (options_.pack) {
        std::shared_ptr<const MappedPack> pack = options_.pack->current();
        const MappedSurface* mapped = pack->find_surface(id);
        const auto axes_match_view = [&](const lut::TableView& t) {
            if (t.rank() != axes.size()) return false;
            for (std::size_t d = 0; d < axes.size(); ++d) {
                const lut::TableView::AxisView& ax = t.axis(d);
                const std::vector<double>& knots = axes[d].knots();
                if (ax.name != axes[d].name() ||
                    ax.knots.size() != knots.size() ||
                    !std::equal(ax.knots.begin(), ax.knots.end(),
                                knots.begin()))
                    return false;
            }
            return true;
        };
        if (mapped != nullptr && mapped->dt == options_.dt &&
            mapped->settle == options_.settle &&
            mapped->model_check != 0 &&
            mapped->model_check ==
                pack->model_check(
                    ModelKey::arc(q.cell, q.pins, q.corner).to_string()) &&
            axes_match_view(mapped->delay) && axes_match_view(mapped->slew)) {
            auto surface = std::make_shared<ArcSurface>();
            surface->delay = mapped->delay;
            surface->slew = mapped->slew;
            surface->pack = std::move(pack);
            ++surface_loads_;
            obs::counter("serve.surface.pack_loads").add();
            return surface;
        }
    }

    const std::shared_ptr<const core::CsmModel> model =
        repo_->get(ModelKey::arc(q.cell, q.pins, q.corner));
    const std::uint64_t model_check = model_checksum(*model);

    // Persisted-surface fast path: accept only files whose identity,
    // evaluation parameters AND source-model checksum match the current
    // state exactly; anything else (stale knots, different dt, a
    // re-characterized model, corruption) falls through to a rebuild that
    // overwrites the file.
    if (!path.empty()) {
        std::error_code ec;
        if (fs::exists(path, ec)) {
            try {
                ArcSurfaceData data = load_surface_binary(path);
                const auto axes_match = [&](const lut::NdTable& t) {
                    if (t.rank() != axes.size()) return false;
                    for (std::size_t d = 0; d < axes.size(); ++d) {
                        if (t.axis(d).name() != axes[d].name() ||
                            t.axis(d).knots() != axes[d].knots())
                            return false;
                    }
                    return true;
                };
                if (data.arc_id == id && data.dt == options_.dt &&
                    data.settle == options_.settle &&
                    data.model_check == model_check &&
                    axes_match(data.delay) && axes_match(data.slew)) {
                    auto surface = std::make_shared<ArcSurface>();
                    surface->delay_owned = std::move(data.delay);
                    surface->slew_owned = std::move(data.slew);
                    surface->delay = lut::TableView::of(surface->delay_owned);
                    surface->slew = lut::TableView::of(surface->slew_owned);
                    ++surface_loads_;
                    obs::counter("serve.surface.disk_loads").add();
                    return surface;
                }
            } catch (const ModelError&) {
                // Corrupt file: rebuild below and overwrite it.
            }
        }
    }

    auto surface = std::make_shared<ArcSurface>();
    surface->delay_owned = lut::NdTable(axes, id + ".delay");
    surface->slew_owned = lut::NdTable(axes, id + ".slew");

    // Enumerate the grid sequentially, then fan the independent transient
    // evaluations out over the pool; every point writes disjoint slots, so
    // the tables are identical for any thread count.
    std::vector<std::vector<std::size_t>> points;
    std::vector<std::size_t> idx(axes.size(), 0);
    for (;;) {
        points.push_back(idx);
        std::size_t d = axes.size();
        while (d > 0) {
            --d;
            if (++idx[d] < axes[d].size()) break;
            idx[d] = 0;
            if (d == 0) break;
        }
        if (idx == std::vector<std::size_t>(axes.size(), 0)) break;
    }

    const std::size_t n_pins = q.pins.size();
    parallel_for(
        points.size(),
        [&](std::size_t i) {
            const std::vector<std::size_t>& at = points[i];
            TimingQuery knot;
            knot.cell = q.cell;
            knot.pins = q.pins;
            knot.inputs_rise = q.inputs_rise;
            knot.corner = q.corner;
            if (n_pins == 1) {
                knot.slews = {axes[0].knots()[at[0]]};
                knot.load_cap = axes[1].knots()[at[1]];
            } else {
                knot.slews.resize(n_pins);
                knot.skews.assign(n_pins, 0.0);
                for (std::size_t p = 0; p < n_pins; ++p)
                    knot.slews[p] = axes[p].knots()[at[p]];
                // Recover the per-pin normalized offsets from the skew
                // axes (u_b directly for 2-pin arcs; the (max, diff)
                // rotation inverted for 3-pin arcs), then denormalize and
                // convert to the edge-start skew the stimulus needs (the
                // half-slew term cancels the 50%-crossing difference of
                // unequal ramps).
                double u[kMaxPins] = {0.0, 0.0, 0.0};
                if (n_pins == 2) {
                    u[1] = axes[2].knots()[at[2]];
                } else {
                    const double m = axes[3].knots()[at[3]];
                    const double d = axes[4].knots()[at[4]];
                    u[1] = d >= 0.0 ? m : m + d;
                    u[2] = d >= 0.0 ? m - d : m;
                }
                for (std::size_t p = 1; p < n_pins; ++p) {
                    const double delta =
                        u[p] * slew_scale(knot.slews[0], knot.slews[p]);
                    knot.skews[p] =
                        delta - 0.5 * (knot.slews[p] - knot.slews[0]);
                }
                knot.load_cap = axes[2 * n_pins - 1].knots()[at[2 * n_pins - 1]];
            }
            const TimingResult r =
                eval_transient(*model, knot, /*ref_pin0=*/true);
            require(r.valid, "TimingService: surface grid point failed for " +
                                 id + ": " + r.error);
            surface->delay_owned.set_grid_value(at, r.delay);
            surface->slew_owned.set_grid_value(at, r.slew);
        },
        options_.threads);
    surface->delay = lut::TableView::of(surface->delay_owned);
    surface->slew = lut::TableView::of(surface->slew_owned);

    if (!path.empty()) {
        // Persistence is an optimization: a full-disk or unwritable
        // surface_dir must not discard the perfectly good surface just
        // built (and trigger a full-grid rebuild on every batch) -- serve
        // from memory and let the next service instance retry the write.
        try {
            fs::create_directories(options_.surface_dir);
            ArcSurfaceData data;
            data.arc_id = id;
            data.dt = options_.dt;
            data.settle = options_.settle;
            data.model_check = model_check;
            data.delay = surface->delay_owned;
            data.slew = surface->slew_owned;
            save_surface_binary(path, data);
        } catch (const std::exception&) {
        }
    }

    return surface;
}

std::string TimingService::surface_cache_key(const std::string& arc) {
    if (!options_.pack) return arc;
    // Key by pack generation: after a hot reload, queries re-resolve
    // against the new mapping instead of serving stale cached surfaces.
    // On the first query of a new generation, evict every completed
    // surface of older generations -- they are the last references pinning
    // the retired mapping (in-flight batches still hold theirs until the
    // batch returns).
    const std::uint64_t gen = options_.pack->generation();
    std::uint64_t seen = surface_generation_.load(std::memory_order_acquire);
    const std::string prefix = "g" + std::to_string(gen) + "|";
    if (seen != gen &&
        surface_generation_.compare_exchange_strong(
            seen, gen, std::memory_order_acq_rel)) {
        surfaces_.erase_ready_if([&](const std::string& key) {
            return key.compare(0, prefix.size(), prefix) != 0;
        });
    }
    return prefix + arc;
}

TimingService::SurfacePtr TimingService::surface_for(const TimingQuery& q) {
    static obs::Counter& hits = obs::counter("serve.surface.hit");
    static obs::Counter& misses = obs::counter("serve.surface.miss");
    static obs::Counter& waits = obs::counter("serve.surface.wait");
    // Same single-flight contract as the repository: concurrent misses
    // build once, failures are never cached.
    CacheOutcome outcome = CacheOutcome::kHit;
    SurfacePtr surface = surfaces_.get_or_produce(
        surface_cache_key(arc_id(q)), [&] { return build_surface(q); },
        &outcome);
    switch (outcome) {
        case CacheOutcome::kHit: hits.add(); break;
        case CacheOutcome::kMiss: misses.add(); break;
        case CacheOutcome::kWait: waits.add(); break;
    }
    return surface;
}

double TimingService::effective_cap(const ArcSurface& surface,
                                    const TimingQuery& q,
                                    std::vector<double>& coords) const {
    if (!q.has_pi_load()) return q.load_cap;
    const double ctot = q.load_cap + q.c_near + q.c_far;
    const double tau = q.r_wire * q.c_far;
    if (tau <= 0.0) return ctot;
    // Resistive shielding: during an output ramp of duration T the far
    // cap, charged through r_wire, draws the charge of an equivalent
    // lumped cap k * c_far with k = 1 - (tau/T) * (1 - exp(-T/tau)). The
    // delay is set by the 50% crossing, so the averaging window is the
    // FIRST HALF of the ramp (where the relative lag is largest); the ramp
    // duration depends on the load, so iterate against the surface's own
    // slew table, reusing the caller's coordinate vector (only the cap
    // slot changes between rounds).
    double ceff = ctot;
    for (int iter = 0; iter < 4; ++iter) {
        coords.back() = ceff;
        const double slew_out = std::max(surface.slew.at(coords), 1e-12);
        const double t_half = 0.5 * slew_out / 0.8;  // 10-90% -> half ramp
        const double r = tau / t_half;
        const double k = 1.0 - r * (1.0 - std::exp(-1.0 / r));
        const double next = q.load_cap + q.c_near + k * q.c_far;
        // Exact-equality early exit: further rounds would reproduce the
        // same value, so this cannot change results, only skip work.
        if (next == ceff) break;
        ceff = next;
    }
    return ceff;
}

namespace {

// Evaluates `table` at `coords`, linearly extrapolating along the SKEW
// axes when the query lies outside their hull (axes [first_skew,
// first_skew + n_skew)). The stored functions are linear in the skew
// coordinates beyond the dominance transition by construction (tail
// regions, see ArcSurface), so edge-gradient extrapolation returns the
// single-late-input answer instead of a clamped-coordinate artifact whose
// delay error would grow linearly with the excess skew. Slew/load axes
// keep the plain clamping of NdTable::at.
double eval_skew_extrapolated(const lut::TableView& table,
                              std::span<const double> coords,
                              std::size_t first_skew, std::size_t n_skew) {
    bool outside = false;
    for (std::size_t i = first_skew; i < first_skew + n_skew; ++i) {
        const lut::TableView::AxisView& ax = table.axis(i);
        outside = outside || coords[i] < ax.lo() || coords[i] > ax.hi();
    }
    if (!outside) return table.at(coords);

    std::vector<double> clamped(coords.begin(), coords.end());
    for (std::size_t i = first_skew; i < first_skew + n_skew; ++i) {
        const lut::TableView::AxisView& ax = table.axis(i);
        clamped[i] = std::clamp(clamped[i], ax.lo(), ax.hi());
    }
    std::vector<double> grad(table.rank(), 0.0);
    double v = table.at_with_gradient(clamped, grad);
    for (std::size_t i = first_skew; i < first_skew + n_skew; ++i)
        v += grad[i] * (coords[i] - clamped[i]);
    return v;
}

}  // namespace

TimingResult TimingService::eval_lut(const ArcSurface& surface,
                                     const TimingQuery& q) const {
    // One coordinate vector serves the whole evaluation: the Ceff
    // iteration, the delay lookup and the slew lookup differ only in the
    // cap slot.
    std::vector<double> x = lut_coords(q, q.load_cap);
    x.back() = effective_cap(surface, q, x);
    // The surface's delay is referenced to pin 0's edge (see ArcSurface);
    // the query contract references the LATEST edge. The difference is the
    // exact, analytic offset between the two references: the largest
    // positive edge offset.
    double ref_shift = 0.0;
    for (std::size_t p = 1; p < q.pins.size(); ++p)
        ref_shift = std::max(ref_shift, edge_offset(q, p));
    const std::size_t n_skew = q.pins.size() - 1;
    const std::size_t first_skew = q.pins.size();
    TimingResult result;
    result.valid = true;
    result.path = ResultPath::kLut;
    result.delay =
        eval_skew_extrapolated(surface.delay, x, first_skew, n_skew) -
        ref_shift;
    // The 50% crossing sees the shielded (effective) cap, but the 10-90%
    // span integrates essentially the whole far-cap charge (the resistive
    // lag collapses as dv/dt falls towards the rails), so the slew tracks
    // the full lumped load plus a first-order tail stretch: the far cap
    // keeps drawing wire current into the 90% crossing, flattening the
    // drive-point approach by roughly its RC lag weighted by its share of
    // the load. Validated for tau = r_wire * c_far small against the
    // output transition (the golden suite's sampled domain); far beyond
    // that the slew read trends pessimistic.
    if (q.has_pi_load()) {
        const double ctot = q.load_cap + q.c_near + q.c_far;
        x.back() = ctot;
        result.slew =
            eval_skew_extrapolated(surface.slew, x, first_skew, n_skew) +
            0.5 * q.r_wire * q.c_far * (q.c_far / ctot);
    } else {
        result.slew =
            eval_skew_extrapolated(surface.slew, x, first_skew, n_skew);
    }
    return result;
}

std::vector<TimingResult> TimingService::run_batch(
    std::span<const TimingQuery> queries) {
    static obs::Counter& batches = obs::counter("serve.batches");
    static obs::Counter& lut_queries = obs::counter("serve.query.lut");
    static obs::Counter& exact_queries = obs::counter("serve.query.exact");
    static obs::Counter& query_errors = obs::counter("serve.query.errors");
    static obs::Histogram& batch_ns = obs::histogram("serve.batch_ns");
    static obs::Histogram& lut_ns = obs::histogram("serve.query.lut_ns");
    static obs::Histogram& exact_ns = obs::histogram("serve.query.exact_ns");
    const obs::Span batch_span("serve.run_batch");
    const obs::ScopedLatency batch_latency(batch_ns);
    batches.add();
    std::vector<TimingResult> results(queries.size());

    // Phase 1: warm every distinct arc once (surface or model), so the
    // per-query phase interpolates instead of serializing on single-flight
    // builds. Arcs are warmed sequentially ON PURPOSE: each cold surface
    // build fans its grid transients over the whole pool, which beats
    // building arcs concurrently with one inline-running worker each.
    // A failed warm-up is recorded and short-circuits every query on that
    // arc below -- one build attempt per arc per batch, not per query (the
    // next run_batch retries, preserving the never-cache-failures
    // contract).
    std::unordered_map<std::string, std::string> failed;
    {
        std::unordered_set<std::string> seen;
        for (const TimingQuery& q : queries) {
            try {
                validate(q);
            } catch (const std::exception&) {
                continue;  // phase 2 reports it on the right result
            }
            const bool lut = !(q.exact || q.want_waveform);
            const std::string warm_id = (lut ? "S|" : "M|") + arc_id(q);
            if (!seen.insert(warm_id).second) continue;
            try {
                if (lut)
                    surface_for(q);
                else
                    repo_->get(ModelKey::arc(q.cell, q.pins, q.corner));
            } catch (const std::exception& e) {
                failed.emplace(warm_id, e.what());
            }
        }
    }

    const auto failure_of = [&](const TimingQuery& q) -> const std::string* {
        const bool lut = !(q.exact || q.want_waveform);
        const auto it = failed.find((lut ? "S|" : "M|") + arc_id(q));
        return it == failed.end() ? nullptr : &it->second;
    };

    // Phase 2: evaluate every query independently.
    parallel_for(
        queries.size(),
        [&](std::size_t i) {
            const TimingQuery& q = queries[i];
            const obs::Span query_span("serve.query", q.cell);
            const std::uint64_t t0 = obs::now_ns();
            try {
                validate(q);
                if (const std::string* error = failure_of(q)) {
                    results[i].error = *error;
                    return;
                }
                if (q.exact || q.want_waveform) {
                    const auto model = repo_->get(
                        ModelKey::arc(q.cell, q.pins, q.corner));
                    results[i] = eval_transient(*model, q);
                    exact_queries.add();
                    exact_ns.observe(static_cast<double>(obs::now_ns() - t0));
                } else {
                    results[i] = eval_lut(*surface_for(q), q);
                    lut_queries.add();
                    lut_ns.observe(static_cast<double>(obs::now_ns() - t0));
                }
            } catch (const std::exception& e) {
                results[i] = TimingResult{};
                results[i].error = e.what();
            }
            if (!results[i].error.empty()) query_errors.add();
        },
        options_.threads);
    return results;
}

TimingResult TimingService::run_one(const TimingQuery& query) {
    return run_batch({&query, 1}).front();
}

std::size_t TimingService::surface_count() const {
    return surfaces_.ready_count();
}

}  // namespace mcsm::serve
