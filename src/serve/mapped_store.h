// mmap-able zero-parse model/surface pack -- format v3 of the binary
// store family (see model_store.h for v1/v2, which stream one payload per
// file through a parse-and-copy reader).
//
// A pack bundles any number of characterized models and serve-layer arc
// surfaces into ONE file laid out for mmap(2):
//   * page-aligned sections, so section starts never share a page and the
//     kernel can fault exactly what a query touches;
//   * every numeric array stored as naturally-aligned little-endian
//     doubles, referenced by offset instead of being inlined behind
//     variable-length headers -- a mapped surface is served through
//     lut::TableView spans pointing STRAIGHT INTO THE MAPPING, no decode,
//     no allocation, no per-process copy of the knot/value data;
//   * one FNV-1a checksum over the body, verified ONCE at map time (plus
//     rigorous bounds/monotonicity validation of every directory entry),
//     after which lookups trust the mapping.
// N server processes mapping the same pack therefore share a single kernel
// page cache copy of every model -- the "many processes, one page cache"
// serving tier of ROADMAP item 1.
//
// Layout (all offsets from file start, little-endian; doubles 8-aligned):
//   header   page 0: magic "MCSMMAP3", version u32(=3), reserved u32,
//            file_size u64, entry_count u64, dir_offset u64,
//            body_offset u64, payload_check u64 (FNV-1a over
//            [body_offset, file_size)), header_check u64 (FNV-1a over the
//            preceding header bytes)
//   body     per-entry payloads, each page-aligned:
//            model payload   = the complete v2 model envelope bytes
//                              (write_model_binary), so the directory
//                              checksum doubles as model_checksum()
//            surface payload = arc_id (len-prefixed, 8-padded), dt f64,
//                              settle f64, model_check u64, then delay and
//                              slew tables: name (len-prefixed, 8-padded),
//                              rank u64, per axis {name, knot_count u64,
//                              knots f64[]}, value_count u64, values f64[]
//   dir      entry records {kind u32, name_len u32, name_off u64,
//            payload_off u64, payload_size u64, content_check u64}
//            followed by the name blob
//
// Hot reload: PackHost re-stats the pack path and swaps in a fresh mapping
// (atomic shared_ptr swap under a mutex, generation bump); queries already
// holding the old MappedPack via shared_ptr keep serving off the retired
// mapping until the last reference drops, which munmaps it -- reload never
// invalidates an in-flight batch.
#ifndef MCSM_SERVE_MAPPED_STORE_H
#define MCSM_SERVE_MAPPED_STORE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "core/model.h"
#include "lut/table_view.h"
#include "serve/model_store.h"

namespace mcsm::serve {

inline constexpr char kPackMagic[8] = {'M', 'C', 'S', 'M',
                                       'M', 'A', 'P', '3'};
inline constexpr std::uint32_t kPackFormatVersion = 3;
inline constexpr const char* kPackExt = ".mcsmpack";

// A surface resolved inside a mapping: evaluation parameters plus
// TableViews whose spans point into the mapped bytes. Valid only while the
// owning MappedPack is alive (pin it with the shared_ptr you got it from).
struct MappedSurface {
    std::string_view arc_id;
    double dt = 0.0;
    double settle = 0.0;
    std::uint64_t model_check = 0;
    lut::TableView delay;
    lut::TableView slew;
};

// Accumulates models/surfaces and writes them as one pack file, durably
// and atomically (same fsync + rename contract as the per-file store).
class PackWriter {
public:
    // Entry names are lookup keys: ModelKey::to_string() for models,
    // TimingService arc ids for surfaces. Duplicate names throw.
    void add_model(const std::string& name, const core::CsmModel& model);
    void add_surface(const std::string& name, const ArcSurfaceData& surface);

    std::size_t entry_count() const { return entries_.size(); }

    void write(const std::string& path) const;

private:
    struct Entry {
        std::uint32_t kind = 0;
        std::string name;
        std::string payload;  // already in the mapped layout
    };
    std::vector<Entry> entries_;
    std::unordered_map<std::string, std::size_t> by_name_;

    void add(std::uint32_t kind, const std::string& name,
             std::string payload);
};

// Builds a pack from the per-file binary store: every *.csm.bin under
// model_dir (keyed by file stem) and every *.surf.bin under surface_dir
// (keyed by the surface's own arc_id). Either directory may be empty ("").
// Corrupt files throw -- a pack is built from a verified store or not at
// all.
PackWriter pack_from_dirs(const std::string& model_dir,
                          const std::string& surface_dir);

// One immutable read-only mapping of a pack file. Construction mmaps the
// file, verifies the checksum and validates every entry's bounds (and
// every surface axis' monotonicity); after that, surface lookups are
// pointer handouts. Thread-safe for concurrent readers.
class MappedPack {
public:
    // Identity of the mapped file, used by PackHost to detect changes.
    struct FileId {
        std::uint64_t dev = 0;
        std::uint64_t ino = 0;
        std::uint64_t size = 0;
        std::int64_t mtime_ns = 0;
        bool operator==(const FileId&) const = default;
    };

    static std::shared_ptr<const MappedPack> map(const std::string& path);
    ~MappedPack();

    MappedPack(const MappedPack&) = delete;
    MappedPack& operator=(const MappedPack&) = delete;

    const std::string& path() const { return path_; }
    const FileId& id() const { return id_; }
    std::size_t model_count() const { return models_.size(); }
    std::size_t surface_count() const { return surfaces_.size(); }

    // nullptr when absent. The views borrow the mapping: keep the
    // shared_ptr alive while using the result.
    const MappedSurface* find_surface(const std::string& name) const;

    // Content identity (FNV-1a of the v2 model envelope bytes, i.e.
    // model_checksum()) of a packed model; 0 when absent.
    std::uint64_t model_check(const std::string& name) const;

    // Parses a packed model into an owned CsmModel (the exact path needs
    // real tables); throws ModelError when absent or inconsistent.
    core::CsmModel materialize_model(const std::string& name) const;

    std::vector<std::string> model_names() const;
    std::vector<std::string> surface_names() const;

private:
    MappedPack() = default;

    struct ModelEntry {
        const char* payload = nullptr;
        std::uint64_t size = 0;
        std::uint64_t check = 0;
    };

    std::string path_;
    FileId id_;
    const unsigned char* base_ = nullptr;
    std::size_t size_ = 0;
    std::unordered_map<std::string, MappedSurface> surfaces_;
    std::unordered_map<std::string, ModelEntry> models_;
};

// Shared, hot-reloadable handle on a pack path. current() hands out the
// active mapping; refresh() re-stats the file and atomically swaps in a
// new mapping when the file changed (rename-published by PackWriter, so a
// change is always a whole new inode). Old mappings retire via shared_ptr
// refcount once their last in-flight reader drops them.
class PackHost {
public:
    // Maps eagerly; throws ModelError when the pack is missing/corrupt.
    explicit PackHost(std::string path);

    const std::string& path() const { return path_; }

    std::shared_ptr<const MappedPack> current() const;

    // Returns true when a new mapping was swapped in. A vanished or
    // corrupt replacement file leaves the current mapping serving (and
    // returns false): a botched deploy must not take the server down.
    bool refresh();

    // Bumps on every successful swap; serves as the cache-epoch component
    // of surface keys in TimingService.
    std::uint64_t generation() const {
        return generation_.load(std::memory_order_acquire);
    }

private:
    const std::string path_;
    mutable Mutex mutex_;
    std::shared_ptr<const MappedPack> pack_ MCSM_GUARDED_BY(mutex_);
    std::atomic<std::uint64_t> generation_{1};
};

}  // namespace mcsm::serve

#endif  // MCSM_SERVE_MAPPED_STORE_H
