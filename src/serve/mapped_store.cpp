#include "serve/mapped_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/error.h"

// The zero-parse contract hands out spans over raw file bytes as doubles;
// that is only the on-disk format (little-endian IEEE-754, like the v1/v2
// stores) on a little-endian host. Big-endian ports would need a decoding
// reader here.
static_assert(std::endian::native == std::endian::little,
              "mapped_store: the zero-parse pack requires a little-endian "
              "host");

namespace mcsm::serve {

namespace fs = std::filesystem;

namespace {

constexpr std::uint64_t kPageSize = 4096;
// Header field block right after the 8-byte magic.
constexpr std::uint64_t kHeaderFields = 4 + 4 + 8 * 6;
constexpr std::uint64_t kHeaderBytes = sizeof(kPackMagic) + kHeaderFields;
// 24 distinct models/surfaces serve the whole demo library; a corrupt
// count must fail before any allocation, so cap generously.
constexpr std::uint64_t kMaxEntries = 1u << 20;
constexpr std::uint32_t kDirRecordBytes = 4 + 4 + 8 * 4;

std::uint64_t fnv1a_bytes(const unsigned char* data, std::uint64_t size) {
    std::uint64_t h = 14695981039346656037ull;
    for (std::uint64_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 1099511628211ull;
    }
    return h;
}

std::uint64_t page_align(std::uint64_t off) {
    return (off + kPageSize - 1) & ~(kPageSize - 1);
}

// --- little-endian append helpers (writer side) --------------------------

void put_u32(std::string& buf, std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& buf, std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_f64(std::string& buf, double v) {
    put_u64(buf, std::bit_cast<std::uint64_t>(v));
}

// Length-prefixed string padded to 8 bytes, so every subsequent double
// stays naturally aligned.
void put_padded_str(std::string& buf, std::string_view s) {
    put_u64(buf, s.size());
    buf.append(s);
    while (buf.size() % 8 != 0) buf.push_back('\0');
}

void put_table(std::string& buf, const lut::NdTable& table) {
    put_padded_str(buf, table.name());
    put_u64(buf, table.rank());
    for (const lut::Axis& ax : table.axes()) {
        put_padded_str(buf, ax.name());
        put_u64(buf, ax.knots().size());
        for (double k : ax.knots()) put_f64(buf, k);
    }
    put_u64(buf, table.values().size());
    for (double v : table.values()) put_f64(buf, v);
}

// --- bounds-checked cursor over the mapped bytes (map-time validation) ---

class MapCursor {
public:
    MapCursor(const unsigned char* base, std::uint64_t begin,
              std::uint64_t end)
        : base_(base), pos_(begin), end_(end) {}

    std::uint64_t u64() {
        need(8);
        std::uint64_t v = 0;
        std::memcpy(&v, base_ + pos_, 8);
        pos_ += 8;
        return v;
    }
    double f64() { return std::bit_cast<double>(u64()); }

    std::string_view padded_str() {
        const std::uint64_t n = u64();
        need(n);
        std::string_view s(reinterpret_cast<const char*>(base_ + pos_), n);
        pos_ += n;
        const std::uint64_t pad = (8 - pos_ % 8) % 8;
        need(pad);
        pos_ += pad;
        return s;
    }

    // Span of `n` doubles in place -- the zero-parse handout.
    std::span<const double> f64_span(std::uint64_t n) {
        require(n <= remaining() / 8, "mapped_store: truncated array");
        const auto* p = reinterpret_cast<const double*>(base_ + pos_);
        pos_ += n * 8;
        return {p, n};
    }

    bool exhausted() const { return pos_ == end_; }
    std::uint64_t remaining() const { return end_ - pos_; }

private:
    void need(std::uint64_t n) const {
        require(n <= remaining(), "mapped_store: truncated payload");
    }

    const unsigned char* base_;
    std::uint64_t pos_;
    std::uint64_t end_;
};

lut::TableView read_table_view(MapCursor& c) {
    const std::string_view name = c.padded_str();
    const std::uint64_t rank = c.u64();
    require(rank >= 1 && rank <= lut::TableView::kMaxRank,
            "mapped_store: implausible table rank");
    std::array<lut::TableView::AxisView, lut::TableView::kMaxRank> axes;
    for (std::uint64_t d = 0; d < rank; ++d) {
        const std::string_view axis_name = c.padded_str();
        const std::uint64_t nknots = c.u64();
        require(nknots >= 2 && nknots <= c.remaining() / 8,
                "mapped_store: implausible knot count");
        const std::span<const double> knots = c.f64_span(nknots);
        for (std::size_t i = 0; i < knots.size(); ++i)
            require(std::isfinite(knots[i]) &&
                        (i == 0 || knots[i] > knots[i - 1]),
                    "mapped_store: non-finite or non-increasing axis knots");
        axes[d] = lut::TableView::AxisView{axis_name, knots};
    }
    const std::uint64_t nvalues = c.u64();
    require(nvalues <= c.remaining() / 8,
            "mapped_store: implausible value count");
    const std::span<const double> values = c.f64_span(nvalues);
    for (double v : values)
        require(std::isfinite(v), "mapped_store: non-finite table value");
    // TableView's own constructor re-checks value_count == product of axis
    // sizes and re-validates monotonicity.
    return lut::TableView({axes.data(), rank}, values, name);
}

MappedSurface read_surface(MapCursor& c) {
    MappedSurface s;
    const std::string_view id = c.padded_str();
    s.arc_id = id;
    s.dt = c.f64();
    s.settle = c.f64();
    s.model_check = c.u64();
    require(!id.empty() && std::isfinite(s.dt) && s.dt > 0.0 &&
                std::isfinite(s.settle) && s.settle > 0.0,
            "mapped_store: implausible surface parameters");
    s.delay = read_table_view(c);
    s.slew = read_table_view(c);
    require(s.delay.rank() == s.slew.rank(),
            "mapped_store: surface delay/slew rank mismatch");
    require(c.exhausted(), "mapped_store: trailing bytes after surface");
    return s;
}

MappedPack::FileId stat_to_id(const struct ::stat& st) {
    MappedPack::FileId id;
    id.dev = static_cast<std::uint64_t>(st.st_dev);
    id.ino = static_cast<std::uint64_t>(st.st_ino);
    id.size = static_cast<std::uint64_t>(st.st_size);
    id.mtime_ns = static_cast<std::int64_t>(st.st_mtim.tv_sec) * 1000000000 +
                  st.st_mtim.tv_nsec;
    return id;
}

}  // namespace

// --- PackWriter ----------------------------------------------------------

void PackWriter::add(std::uint32_t kind, const std::string& name,
                     std::string payload) {
    require(!name.empty(), "PackWriter: empty entry name");
    require(by_name_.emplace(name, entries_.size()).second,
            "PackWriter: duplicate entry name " + name);
    entries_.push_back(Entry{kind, name, std::move(payload)});
}

void PackWriter::add_model(const std::string& name,
                           const core::CsmModel& model) {
    // Stored as the complete v2 envelope: the directory content_check is
    // then FNV over those bytes == model_checksum(model), which surfaces
    // reference to detect stale pairings.
    std::ostringstream os;
    write_model_binary(os, model);
    add(kModelKind, name, std::move(os).str());
}

void PackWriter::add_surface(const std::string& name,
                             const ArcSurfaceData& surface) {
    require(!surface.arc_id.empty(), "PackWriter: empty surface arc id");
    require(std::isfinite(surface.dt) && surface.dt > 0.0 &&
                std::isfinite(surface.settle) && surface.settle > 0.0,
            "PackWriter: implausible surface parameters");
    std::string buf;
    put_padded_str(buf, surface.arc_id);
    put_f64(buf, surface.dt);
    put_f64(buf, surface.settle);
    put_u64(buf, surface.model_check);
    put_table(buf, surface.delay);
    put_table(buf, surface.slew);
    add(kSurfaceKind, name, std::move(buf));
}

void PackWriter::write(const std::string& path) const {
    // Layout pass: header page, then page-aligned payload sections, then
    // the page-aligned directory (records + name blob).
    std::vector<std::uint64_t> offsets(entries_.size(), 0);
    std::uint64_t off = kPageSize;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        offsets[i] = off;
        off = page_align(off + entries_[i].payload.size());
    }
    const std::uint64_t dir_offset = off;

    std::string dir;
    std::string names;
    std::uint64_t name_base =
        dir_offset + kDirRecordBytes * entries_.size();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const Entry& e = entries_[i];
        put_u32(dir, e.kind);
        put_u32(dir, static_cast<std::uint32_t>(e.name.size()));
        put_u64(dir, name_base + names.size());
        put_u64(dir, offsets[i]);
        put_u64(dir, e.payload.size());
        put_u64(dir, fnv1a_bytes(
                         reinterpret_cast<const unsigned char*>(
                             e.payload.data()),
                         e.payload.size()));
        names += e.name;
    }
    const std::uint64_t file_size = name_base + names.size();

    std::string file;
    file.reserve(file_size);
    file.append(kPackMagic, sizeof kPackMagic);
    put_u32(file, kPackFormatVersion);
    put_u32(file, 0);  // reserved
    put_u64(file, file_size);
    put_u64(file, entries_.size());
    put_u64(file, dir_offset);
    put_u64(file, kPageSize);  // body_offset
    const std::size_t check_slot = file.size();
    put_u64(file, 0);  // payload_check, patched below
    put_u64(file, 0);  // header_check, patched below
    file.resize(kPageSize, '\0');
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        file.resize(offsets[i], '\0');
        file += entries_[i].payload;
    }
    file.resize(dir_offset, '\0');
    file += dir;
    file += names;
    require(file.size() == file_size, "PackWriter: layout bookkeeping bug");

    const std::uint64_t payload_check = fnv1a_bytes(
        reinterpret_cast<const unsigned char*>(file.data()) + kPageSize,
        file_size - kPageSize);
    std::string patch;
    put_u64(patch, payload_check);
    file.replace(check_slot, 8, patch);
    const std::uint64_t header_check = fnv1a_bytes(
        reinterpret_cast<const unsigned char*>(file.data()), check_slot + 8);
    patch.clear();
    put_u64(patch, header_check);
    file.replace(check_slot + 8, 8, patch);

    // Same durable publish as every store writer: a crash mid-write can
    // only ever leave a *.tmp.* dropping, never a truncated pack.
    save_bytes_atomically(path, file);
}

PackWriter pack_from_dirs(const std::string& model_dir,
                          const std::string& surface_dir) {
    PackWriter writer;
    const auto scan = [](const std::string& dir, const char* ext,
                         const auto& consume) {
        if (dir.empty()) return;
        std::error_code ec;
        std::vector<fs::path> paths;
        for (const fs::directory_entry& entry :
             fs::directory_iterator(dir, ec)) {
            if (ec) break;
            const std::string name = entry.path().filename().string();
            if (name.size() > std::strlen(ext) &&
                name.ends_with(ext) &&
                name.find(".tmp.") == std::string::npos)
                paths.push_back(entry.path());
        }
        // Deterministic pack bytes for a given store state.
        std::sort(paths.begin(), paths.end());
        for (const fs::path& p : paths) consume(p);
    };
    scan(model_dir, kBinaryModelExt, [&](const fs::path& p) {
        std::string stem = p.filename().string();
        stem.resize(stem.size() - std::strlen(kBinaryModelExt));
        writer.add_model(stem, load_model_binary(p.string()));
    });
    scan(surface_dir, kSurfaceExt, [&](const fs::path& p) {
        const ArcSurfaceData s = load_surface_binary(p.string());
        writer.add_surface(s.arc_id, s);
    });
    return writer;
}

// --- MappedPack ----------------------------------------------------------

std::shared_ptr<const MappedPack> MappedPack::map(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    require(fd >= 0, "mapped_store: cannot open " + path);
    struct ::stat st {};
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        throw ModelError("mapped_store: cannot stat " + path);
    }
    const auto size = static_cast<std::uint64_t>(st.st_size);
    if (size < kPageSize) {
        ::close(fd);
        throw ModelError("mapped_store: " + path +
                         " is too small to be a pack");
    }
    void* mem = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
    ::close(fd);  // the mapping holds its own reference
    require(mem != MAP_FAILED, "mapped_store: mmap failed for " + path);

    // From here the mapping must be released on any validation failure.
    auto pack = std::shared_ptr<MappedPack>(new MappedPack());
    pack->path_ = path;
    pack->id_ = stat_to_id(st);
    pack->base_ = static_cast<const unsigned char*>(mem);
    pack->size_ = size;

    const unsigned char* base = pack->base_;
    require(std::memcmp(base, kPackMagic, sizeof kPackMagic) == 0,
            "mapped_store: bad magic (not an MCSM pack): " + path);
    MapCursor header(base, sizeof kPackMagic, kHeaderBytes);
    std::uint32_t version = 0;
    std::memcpy(&version, base + sizeof kPackMagic, 4);
    const std::uint64_t file_size = [&] {
        MapCursor c(base, sizeof kPackMagic + 8, kHeaderBytes);
        return c.u64();
    }();
    require(version == kPackFormatVersion,
            "mapped_store: unsupported pack version " +
                std::to_string(version));
    MapCursor c(base, sizeof kPackMagic + 8 + 8, kHeaderBytes);
    const std::uint64_t entry_count = c.u64();
    const std::uint64_t dir_offset = c.u64();
    const std::uint64_t body_offset = c.u64();
    const std::uint64_t payload_check = c.u64();
    const std::uint64_t header_check = c.u64();

    require(file_size == size,
            "mapped_store: header size does not match the file (truncated "
            "or concatenated pack): " + path);
    require(fnv1a_bytes(base, kHeaderBytes - 8) == header_check,
            "mapped_store: header checksum mismatch: " + path);
    require(entry_count <= kMaxEntries,
            "mapped_store: implausible entry count (corrupt header)");
    require(body_offset == kPageSize && dir_offset >= body_offset &&
                dir_offset % kPageSize == 0 && dir_offset <= size &&
                entry_count * kDirRecordBytes <= size - dir_offset,
            "mapped_store: corrupt section layout: " + path);
    // The one full-body pass of a map: checksum everything after the
    // header page. After this, readers trust the bytes.
    require(fnv1a_bytes(base + body_offset, size - body_offset) ==
                payload_check,
            "mapped_store: body checksum mismatch: " + path);

    for (std::uint64_t i = 0; i < entry_count; ++i) {
        const std::uint64_t rec = dir_offset + i * kDirRecordBytes;
        std::uint32_t kind = 0;
        std::uint32_t name_len = 0;
        std::memcpy(&kind, base + rec, 4);
        std::memcpy(&name_len, base + rec + 4, 4);
        MapCursor r(base, rec + 8, rec + kDirRecordBytes);
        const std::uint64_t name_off = r.u64();
        const std::uint64_t payload_off = r.u64();
        const std::uint64_t payload_size = r.u64();
        const std::uint64_t content_check = r.u64();
        require(name_off <= size && name_len <= size - name_off,
                "mapped_store: directory name out of bounds");
        require(payload_off % 8 == 0 && payload_off <= size &&
                    payload_size <= size - payload_off,
                "mapped_store: directory payload out of bounds");
        std::string name(reinterpret_cast<const char*>(base + name_off),
                         name_len);
        require(!name.empty(), "mapped_store: empty entry name");
        if (kind == kSurfaceKind) {
            MapCursor sc(base, payload_off, payload_off + payload_size);
            require(pack->surfaces_.emplace(std::move(name),
                                            read_surface(sc)).second,
                    "mapped_store: duplicate surface entry");
        } else if (kind == kModelKind) {
            ModelEntry entry;
            entry.payload = reinterpret_cast<const char*>(base + payload_off);
            entry.size = payload_size;
            entry.check = content_check;
            require(pack->models_.emplace(std::move(name), entry).second,
                    "mapped_store: duplicate model entry");
        } else {
            throw ModelError("mapped_store: unknown entry kind " +
                             std::to_string(kind));
        }
    }
    return pack;
}

MappedPack::~MappedPack() {
    if (base_ != nullptr)
        ::munmap(const_cast<unsigned char*>(base_), size_);
}

const MappedSurface* MappedPack::find_surface(const std::string& name) const {
    const auto it = surfaces_.find(name);
    return it == surfaces_.end() ? nullptr : &it->second;
}

std::uint64_t MappedPack::model_check(const std::string& name) const {
    const auto it = models_.find(name);
    return it == models_.end() ? 0 : it->second.check;
}

core::CsmModel MappedPack::materialize_model(const std::string& name) const {
    const auto it = models_.find(name);
    require(it != models_.end(),
            "mapped_store: no model '" + name + "' in pack " + path_);
    // The payload is the standard v2 envelope; reuse its hardened reader.
    std::istringstream is(
        std::string(it->second.payload, it->second.size));
    return read_model_binary(is);
}

std::vector<std::string> MappedPack::model_names() const {
    std::vector<std::string> names;
    names.reserve(models_.size());
    for (const auto& [name, entry] : models_) names.push_back(name);
    std::sort(names.begin(), names.end());
    return names;
}

std::vector<std::string> MappedPack::surface_names() const {
    std::vector<std::string> names;
    names.reserve(surfaces_.size());
    for (const auto& [name, entry] : surfaces_) names.push_back(name);
    std::sort(names.begin(), names.end());
    return names;
}

// --- PackHost ------------------------------------------------------------

PackHost::PackHost(std::string path) : path_(std::move(path)) {
    MutexLock lock(mutex_);
    pack_ = MappedPack::map(path_);
}

std::shared_ptr<const MappedPack> PackHost::current() const {
    MutexLock lock(mutex_);
    return pack_;
}

bool PackHost::refresh() {
    struct ::stat st {};
    if (::stat(path_.c_str(), &st) != 0) return false;
    {
        MutexLock lock(mutex_);
        if (stat_to_id(st) == pack_->id()) return false;
    }
    // Map outside the lock (checksumming a large pack is not free); a
    // failed map -- torn deploy, corrupt file -- keeps the old mapping.
    std::shared_ptr<const MappedPack> fresh;
    try {
        fresh = MappedPack::map(path_);
    } catch (const ModelError&) {
        return false;
    }
    MutexLock lock(mutex_);
    if (fresh->id() == pack_->id()) return false;
    pack_ = std::move(fresh);  // old mapping retires via refcount
    generation_.fetch_add(1, std::memory_order_acq_rel);
    return true;
}

}  // namespace mcsm::serve
