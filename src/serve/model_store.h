// Versioned, checksummed binary serialization of characterized models,
// lookup tables and serve-layer arc surfaces -- the at-rest format of the
// serving layer. Compared to the text model_io/table_io path it is ~10x
// smaller and faster to load, and the round trip is bit-exact by
// construction (doubles travel as their IEEE-754 bit patterns).
//
// Envelope (shared by every payload kind):
//   magic   8 bytes  "MCSMBIN1"
//   version u32      kFormatVersion (little-endian, like every scalar)
//   kind    u32      payload kind (kTableKind / kModelKind / kSurfaceKind)
//   size    u64      payload byte count
//   check   u64      FNV-1a 64 over the payload bytes
//   payload size bytes
// Readers verify magic, version, kind, size and checksum before any payload
// parsing, and throw ModelError on the slightest mismatch -- a corrupt store
// can never yield a partial model.
//
// Version history:
//   1  initial format (tables, models)
//   2  model payload gains the characterization temperature (temp_c);
//      new kSurfaceKind payload (serve-layer delay/slew arc surfaces).
// Writers emit version 2; readers accept 1 and 2 (a v1 model loads with the
// nominal 25 degC temperature).
#ifndef MCSM_SERVE_MODEL_STORE_H
#define MCSM_SERVE_MODEL_STORE_H

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/model.h"
#include "lut/ndtable.h"

namespace mcsm::serve {

inline constexpr char kStoreMagic[8] = {'M', 'C', 'S', 'M',
                                        'B', 'I', 'N', '1'};
inline constexpr std::uint32_t kFormatVersion = 2;
inline constexpr std::uint32_t kMinFormatVersion = 1;
inline constexpr std::uint32_t kTableKind = 1;
inline constexpr std::uint32_t kModelKind = 2;
inline constexpr std::uint32_t kSurfaceKind = 3;

// Canonical file extensions of the store formats.
inline constexpr const char* kBinaryModelExt = ".csm.bin";
inline constexpr const char* kTextModelExt = ".csm";
inline constexpr const char* kSurfaceExt = ".surf.bin";

void write_table_binary(std::ostream& os, const lut::NdTable& table);
lut::NdTable read_table_binary(std::istream& is);

void write_model_binary(std::ostream& os, const core::CsmModel& model);
core::CsmModel read_model_binary(std::istream& is);

// A persisted serve-layer arc surface: the delay/slew tables the
// TimingService builds by running one CSM transient per knot, plus the
// evaluation parameters they were built under. arc_id and the parameters
// let a loader reject stale files after an options change instead of
// serving wrong numbers.
struct ArcSurfaceData {
    std::string arc_id;   // TimingService arc identity (cell|pins|dir|corner)
    double dt = 0.0;      // transient step the knots were measured with [s]
    double settle = 0.0;  // post-edge simulation window [s]
    // model_checksum() of the CSM model the knot transients ran against;
    // loaders compare it so a surface derived from a stale model (e.g.
    // re-characterized with different options) is rebuilt, never served.
    std::uint64_t model_check = 0;
    lut::NdTable delay;
    lut::NdTable slew;
};

void write_surface_binary(std::ostream& os, const ArcSurfaceData& surface);
ArcSurfaceData read_surface_binary(std::istream& is);

// FNV-1a 64 over the model's binary payload: a content identity for
// derived caches (arc surfaces).
std::uint64_t model_checksum(const core::CsmModel& model);

// --- durable file plumbing ---------------------------------------------
//
// Every store writer publishes through write-temp + fsync + rename +
// fsync(parent dir): after save_* returns, the new file survives a crash
// or power loss, and a reader can never observe a truncated payload under
// the final name (the incomplete bytes only ever live under a "*.tmp.*"
// name). These helpers are shared with the pack writer in
// serve/mapped_store.

// Writes `bytes` to `path` durably and atomically: unique same-directory
// temp file, full write, fsync, rename over `path`, fsync of the parent
// directory. Throws ModelError on any failure (the temp is cleaned up).
void save_bytes_atomically(const std::string& path, const std::string& bytes);

// Durably renames the fully-written, fsync'd `tmp` over `path` and fsyncs
// the parent directory of `path`. When the rename fails with EXDEV (tmp on
// a different filesystem), falls back to copying into a fresh temp next to
// `path` first, so cross-filesystem temp directories still publish
// atomically. Throws ModelError on failure; `tmp` is removed either way.
void durable_replace_file(const std::string& tmp, const std::string& path);

// Removes "*.tmp.*" droppings left in `dir` by writers that died between
// write and rename. Only files older than `min_age_s` are removed, so a
// concurrently-running writer's in-flight temp is never yanked away.
// Returns the number of files removed; missing/unreadable directories
// count as empty. ModelRepository runs this on construction.
std::size_t clean_orphan_temps(const std::string& dir, long min_age_s);

// File convenience wrappers; save overwrites atomically AND durably (see
// above), load throws ModelError when the file is missing, truncated,
// corrupt, or structurally inconsistent.
void save_model_binary(const std::string& path, const core::CsmModel& model);
core::CsmModel load_model_binary(const std::string& path);
void save_surface_binary(const std::string& path,
                         const ArcSurfaceData& surface);
ArcSurfaceData load_surface_binary(const std::string& path);

}  // namespace mcsm::serve

#endif  // MCSM_SERVE_MODEL_STORE_H
