// Versioned, checksummed binary serialization of characterized models and
// lookup tables -- the at-rest format of the serving layer. Compared to the
// text model_io/table_io path it is ~10x smaller and faster to load, and the
// round trip is bit-exact by construction (doubles travel as their IEEE-754
// bit patterns).
//
// Envelope (shared by tables and models):
//   magic   8 bytes  "MCSMBIN1"
//   version u32      kFormatVersion (little-endian, like every scalar)
//   kind    u32      payload kind (kTableKind / kModelKind)
//   size    u64      payload byte count
//   check   u64      FNV-1a 64 over the payload bytes
//   payload size bytes
// Readers verify magic, version, kind, size and checksum before any payload
// parsing, and throw ModelError on the slightest mismatch -- a corrupt store
// can never yield a partial model.
#ifndef MCSM_SERVE_MODEL_STORE_H
#define MCSM_SERVE_MODEL_STORE_H

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/model.h"
#include "lut/ndtable.h"

namespace mcsm::serve {

inline constexpr char kStoreMagic[8] = {'M', 'C', 'S', 'M',
                                        'B', 'I', 'N', '1'};
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::uint32_t kTableKind = 1;
inline constexpr std::uint32_t kModelKind = 2;

// Canonical file extensions of the two store formats.
inline constexpr const char* kBinaryModelExt = ".csm.bin";
inline constexpr const char* kTextModelExt = ".csm";

void write_table_binary(std::ostream& os, const lut::NdTable& table);
lut::NdTable read_table_binary(std::istream& is);

void write_model_binary(std::ostream& os, const core::CsmModel& model);
core::CsmModel read_model_binary(std::istream& is);

// File convenience wrappers; save overwrites atomically (temp file +
// rename), load throws ModelError when the file is missing, truncated,
// corrupt, or structurally inconsistent.
void save_model_binary(const std::string& path, const core::CsmModel& model);
core::CsmModel load_model_binary(const std::string& path);

}  // namespace mcsm::serve

#endif  // MCSM_SERVE_MODEL_STORE_H
