#include "serve/repository.h"

#include <cstdio>
#include <filesystem>
#include <utility>

#include "analysis/model_audit.h"
#include "common/error.h"
#include "core/model_io.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/model_store.h"

namespace mcsm::serve {

namespace fs = std::filesystem;

std::string Corner::tag() const {
    if (nominal()) return {};
    // %.6g is stable and round-trip-exact for the handful of digits corner
    // specs carry; the tag is an identity, not a serialization.
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6gV%.6gC", vdd > 0.0 ? vdd : 0.0,
                  temp_c);
    return buf;
}

std::string ModelKey::to_string() const {
    std::string s = cell;
    s += '.';
    s += core::to_string(kind);
    s += '.';
    for (std::size_t i = 0; i < pins.size(); ++i) {
        if (i) s += '-';
        s += pins[i];
    }
    const std::string tag = corner.tag();
    if (!tag.empty()) {
        s += '@';
        s += tag;
    }
    return s;
}

ModelKey ModelKey::arc(std::string cell, std::vector<std::string> pins,
                       Corner corner) {
    ModelKey key;
    key.cell = std::move(cell);
    key.kind = pins.size() == 1 ? core::ModelKind::kSis
                                : core::ModelKind::kMcsm;
    key.pins = std::move(pins);
    key.corner = corner;
    return key;
}

namespace {

// Orphaned "*.tmp.*" droppings (writer died between write and rename) are
// removed on repository construction, but only once they are old enough
// that no live writer can still own them: a characterization run filling
// the store can legitimately keep temps in flight for minutes.
constexpr long kOrphanMinAgeS = 3600;

}  // namespace

ModelRepository::ModelRepository(const cells::CellLibrary* lib,
                                 RepositoryOptions options)
    : lib_(lib), options_(std::move(options)) {
    if (!options_.dir.empty()) {
        const std::size_t removed =
            clean_orphan_temps(options_.dir, kOrphanMinAgeS);
        if (removed > 0)
            obs::counter("serve.store.orphans_cleaned")
                .add(static_cast<long long>(removed));
    }
}

std::string ModelRepository::binary_path(const ModelKey& key) const {
    if (options_.dir.empty()) return {};
    return options_.dir + "/" + key.to_string() + kBinaryModelExt;
}

std::shared_ptr<const core::CsmModel> ModelRepository::get(
    const ModelKey& key) {
    static obs::Counter& hits = obs::counter("serve.model.hit");
    static obs::Counter& misses = obs::counter("serve.model.miss");
    static obs::Counter& waits = obs::counter("serve.model.wait");
    CacheOutcome outcome = CacheOutcome::kHit;
    ModelPtr result = cache_.get_or_produce(
        key.to_string(),
        [&] {
            ModelPtr model = load_or_characterize(key);
            // Pre-flight audit on every production (store load, legacy
            // migration, or fresh characterization): a defective model is
            // rejected here, before anything is served from it, and the
            // failure is never cached (single-flight failure contract).
            if (options_.lint_on_load)
                analysis::audit_model(*model).require_clean(
                    "ModelRepository[" + key.to_string() + "]");
            return model;
        },
        &outcome);
    switch (outcome) {
        case CacheOutcome::kHit: hits.add(); break;
        case CacheOutcome::kMiss: misses.add(); break;
        case CacheOutcome::kWait: waits.add(); break;
    }
    return result;
}

ModelRepository::ModelPtr ModelRepository::load_or_characterize(
    const ModelKey& key) {
    if (options_.pack) {
        // Pack hit: parse the packed v2 envelope into an owned model (the
        // exact path needs real tables); the in-memory cache then serves
        // every later get(). Absent keys fall through to the per-file
        // stores.
        const std::shared_ptr<const MappedPack> pack =
            options_.pack->current();
        if (pack->model_check(key.to_string()) != 0) {
            obs::counter("serve.model.pack_loads").add();
            return std::make_shared<const core::CsmModel>(
                pack->materialize_model(key.to_string()));
        }
    }
    if (!options_.dir.empty()) {
        std::error_code ec;
        const std::string bin = binary_path(key);
        if (fs::exists(bin, ec)) {
            obs::counter("serve.model.store_loads").add();
            return std::make_shared<const core::CsmModel>(
                load_model_binary(bin));
        }
        const std::string txt =
            options_.dir + "/" + key.to_string() + kTextModelExt;
        if (fs::exists(txt, ec)) {
            core::CsmModel m = core::load_model(txt);
            // Migrate legacy text stores to the binary format on first load.
            if (options_.write_back) save_model_binary(bin, m);
            return std::make_shared<const core::CsmModel>(std::move(m));
        }
    }

    require(lib_ != nullptr, "ModelRepository: model " + key.to_string() +
                                 " not in store and no cell library "
                                 "attached for characterization");
    ++characterize_count_;
    obs::counter("serve.model.characterize").add();
    const obs::Span span("serve.characterize", key.to_string());
    const obs::ScopedLatency latency(
        obs::histogram("serve.characterize_ns"));
    const cells::CellLibrary& lib = library_for(key.corner);
    const core::Characterizer chr(lib);
    const core::CharOptions& copt = key.pins.size() >= 3
                                        ? options_.char_options_mis3
                                        : options_.char_options;
    core::CsmModel m = chr.characterize(key.cell, key.kind, key.pins, copt);
    if (!options_.dir.empty() && options_.write_back) {
        fs::create_directories(options_.dir);
        save_model_binary(binary_path(key), m);
    }
    return std::make_shared<const core::CsmModel>(std::move(m));
}

const cells::CellLibrary& ModelRepository::library_for(const Corner& corner) {
    require(lib_ != nullptr,
            "ModelRepository: no cell library attached for characterization");
    if (corner.nominal()) return *lib_;
    const std::string tag = corner.tag();
    MutexLock lock(corner_mutex_);
    auto it = corner_libs_.find(tag);
    if (it == corner_libs_.end()) {
        it = corner_libs_
                 .emplace(tag, std::make_unique<CornerLibrary>(
                                   tech::apply_environment(
                                       lib_->tech(), corner.vdd,
                                       corner.temp_c)))
                 .first;
    }
    return it->second->lib;
}

void ModelRepository::put(const ModelKey& key, core::CsmModel model) {
    model.check_consistent();
    if (options_.lint_on_load)
        analysis::audit_model(model).require_clean(
            "ModelRepository::put[" + key.to_string() + "]");
    auto ptr = std::make_shared<const core::CsmModel>(std::move(model));
    cache_.put(key.to_string(), ptr);
    if (!options_.dir.empty() && options_.write_back) {
        fs::create_directories(options_.dir);
        save_model_binary(binary_path(key), *ptr);
    }
}

bool ModelRepository::cached(const ModelKey& key) const {
    return cache_.ready(key.to_string());
}

std::size_t ModelRepository::cached_count() const {
    return cache_.ready_count();
}

}  // namespace mcsm::serve
