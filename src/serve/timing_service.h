// Batched timing query service over cached CSM models.
//
// Callers submit vectors of TimingQuery{cell, switching pins, input slews,
// per-pin skews, load, corner} and get TimingResult{delay, slew, optional
// waveform} back. The query schema covers the paper's full scenario space:
//  * MIS skew is a first-class query axis: two-pin arcs are served from
//    delay/slew surfaces over [slew_a, slew_b, skew_b, load] and three-pin
//    arcs over [slew_a, slew_b, slew_c, skew_b, skew_c, load], so near-
//    simultaneous and skewed input combinations interpolate through the MIS
//    valley instead of collapsing onto a single-input model.
//  * Loads are either a lumped cap or an RC pi network (c_near - r_wire -
//    c_far). Pi loads are served from the same linear-load surfaces through
//    an effective-capacitance iteration (resistive shielding of the far
//    cap, converged against the surface's own output slew); the exact path
//    attaches the real pi network. Delay/slew are always measured at the
//    cell output (the drive point).
//  * Queries carry a Vdd/temperature corner; corner models characterize on
//    miss against a derated technology card and cache like any other model
//    (see serve/repository.h), and every corner gets its own surfaces.
//
// Two evaluation paths:
//  * LUT fast path - multilinear interpolation into per-arc delay/slew
//    surfaces, built on first use by running the CSM transient at every
//    surface knot (fanned over the shared thread pool) and cached for the
//    service lifetime. Surface builds are single-flight: concurrent misses
//    on one arc build it once. With ServeOptions::surface_dir set, built
//    surfaces persist to <dir>/<arc>.surf.bin and later services reload
//    them (bit-identical) instead of re-running the knot transients --
//    worth it for 3-pin arcs, whose default grid costs ~2k transients.
//  * Transient exact path (query.exact / query.want_waveform) - one CSM
//    transient per query, returning the measured delay/slew and the output
//    waveform.
// Models come from a ModelRepository (memory -> binary store -> on-demand
// characterization). Batch results are deterministic for any thread count:
// every query is an independent, single-threaded evaluation of immutable
// tables.
#ifndef MCSM_SERVE_TIMING_SERVICE_H
#define MCSM_SERVE_TIMING_SERVICE_H

#include <atomic>
#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/single_flight.h"
#include "lut/ndtable.h"
#include "lut/table_view.h"
#include "serve/mapped_store.h"
#include "serve/repository.h"
#include "wave/waveform.h"

namespace mcsm::serve {

struct TimingQuery {
    std::string cell;
    // 1 switching pin (SIS model) or 2-3 (MCSM model, skewed MIS).
    std::vector<std::string> pins;
    // Edge direction of the switching inputs; every library cell is
    // inverting, so the output edge is the opposite direction.
    bool inputs_rise = false;
    std::vector<double> slews;  // per-pin 0-100% input ramp [s]
    // Per-pin edge offsets [s] relative to the common edge time; empty
    // means all zero (simultaneous switching).
    std::vector<double> skews;
    double load_cap = 5e-15;  // linear output load [F]
    // Optional RC pi load (near cap - series R - far cap), active when
    // r_wire > 0; stacks on top of load_cap at the output node.
    double c_near = 0.0;  // [F]
    double r_wire = 0.0;  // [Ohm]
    double c_far = 0.0;   // [F]
    // Vdd/temperature operating point; default-constructed = nominal.
    Corner corner;
    bool exact = false;          // force the transient path
    bool want_waveform = false;  // implies the transient path

    bool has_pi_load() const { return r_wire > 0.0; }
};

enum class ResultPath { kLut, kTransient };

struct TimingResult {
    bool valid = false;
    // 50% crossing of the LATEST switching input to 50% crossing of the
    // output (the standard MIS delay reference), measured at the cell
    // output node (the drive point, for pi loads too).
    double delay = 0.0;
    double slew = 0.0;  // output 10-90% transition [s]
    ResultPath path = ResultPath::kLut;
    wave::Waveform waveform;  // output waveform (want_waveform only)
    std::string error;        // set when !valid
};

struct ServeOptions {
    // Surface knots for 1- and 2-pin arcs. Slew knots [s] parameterize
    // every switching pin; skew knots are DIMENSIONLESS normalized edge
    // offsets u (see ArcSurface above; u = +-1 means the edges' 50%
    // crossings are one mean-slew apart) and must bracket 0 so the
    // simultaneous-switching valley is a grid point.
    std::vector<double> slew_knots{20e-12, 80e-12, 200e-12, 400e-12};
    std::vector<double> skew_knots{-3.0, -1.2, -0.5, 0.0, 0.5, 1.2, 3.0};
    std::vector<double> load_knots{1e-15, 4e-15, 16e-15, 32e-15};
    // Surface knots for 3-pin arcs ([slew_a, slew_b, slew_c, skew_max,
    // skew_diff, load]; skew_knots_mis3 parameterizes the max of the two
    // normalized edge offsets, skew_pair_knots_mis3 their difference --
    // see ArcSurface). Deliberately coarser: the knot count multiplies as
    // slews^3 * skew_max * skew_diff * loads, one CSM transient per knot
    // -- the defaults below already cost 27 * 25 * 3 = 2025 transients per
    // arc (vs 448 for a 2-pin arc). Widen them only with surface_dir
    // persistence on.
    std::vector<double> slew_knots_mis3{30e-12, 120e-12, 400e-12};
    std::vector<double> skew_knots_mis3{-2.5, -1.0, 0.0, 1.0, 2.5};
    std::vector<double> skew_pair_knots_mis3{-2.0, -0.6, 0.0, 0.6, 2.0};
    std::vector<double> load_knots_mis3{1e-15, 8e-15, 32e-15};
    double dt = 2e-12;      // transient step of the evaluators [s]
    double settle = 2e-9;   // post-edge simulation window [s]
    // LTE-adaptive stepping + Jacobian reuse for every evaluator transient
    // (surface knot builds and exact queries share the path, so LUT and
    // exact answers stay consistent); false forces the fixed-dt grid.
    bool adaptive_tran = true;
    std::size_t threads = 0;  // batch fan-out (0: all cores)
    // Directory for persisted arc surfaces (empty: in-memory only). Stale
    // files (different knots/dt/settle) are rebuilt and overwritten, never
    // served.
    std::string surface_dir;
    // Optional mmap'd pack (serve/mapped_store) consulted BEFORE
    // surface_dir: a matching packed surface is served zero-parse straight
    // off the mapping (TableViews into the mapped bytes, no copy, no
    // transients), validated against the pack's own model entry so a stale
    // model/surface pairing is rebuilt, never served. The pack is
    // hot-reloadable: PackHost::refresh() swaps mappings, and the surface
    // cache is keyed by the pack generation so post-reload queries re-
    // resolve while in-flight batches finish on the retired mapping.
    std::shared_ptr<PackHost> pack;
};

class TimingService {
public:
    // Validates `options` up front (monotone knot vectors, skew knots
    // bracketing 0, positive dt/settle); throws ModelError on a bad
    // configuration rather than serving garbage later.
    TimingService(ModelRepository& repo, ServeOptions options = {});

    TimingService(const TimingService&) = delete;
    TimingService& operator=(const TimingService&) = delete;

    // Executes the batch over the shared thread pool; results come back in
    // query order. Per-query failures land in TimingResult::error instead
    // of aborting the batch.
    std::vector<TimingResult> run_batch(std::span<const TimingQuery> queries);

    TimingResult run_one(const TimingQuery& query);

    // Delay/slew surfaces built or loaded so far.
    std::size_t surface_count() const;
    // Surfaces reloaded from surface_dir instead of being rebuilt.
    std::size_t surface_load_count() const { return surface_loads_; }

    const ServeOptions& options() const { return options_; }

private:
    // Immutable per-arc delay/slew surfaces: axes [slew, load] for one-pin
    // arcs, [slew_a, slew_b, skew_b, load] for two-pin arcs, and
    // [slew_a, slew_b, slew_c, skew_max, skew_diff, load] for three-pin
    // arcs.
    //
    // Two parameterization choices keep the interpolated functions smooth
    // where multilinear interpolation would otherwise break the 5%-class
    // accuracy budget:
    //  * The skew axes hold the NORMALIZED 50%-CROSSING OFFSET of pin p's
    //    edge relative to pin 0's,
    //        u_p = delta_p / ((slew_0 + slew_p)/2),
    //        delta_p = skew_p - skew_0 + (slew_p - slew_0)/2,
    //    not the raw edge-start skew. Two reasons: the MIS valley and the
    //    which-edge-dominates ridge live at delta ~ 0 for every slew
    //    combination (so they align with a grid plane instead of cutting
    //    diagonally through cells), and the WIDTH of that transition
    //    region scales with the ramp overlap, i.e. with the slews -- in u
    //    the transition occupies |u| <~ 1 for every slew combination, so a
    //    single knot vector is dense where the curvature lives. Beyond the
    //    transition the delay is (bi)linear in u and slews, which
    //    multilinear interpolation reproduces exactly.
    //  * The delay table stores the output 50% crossing referenced to PIN
    //    0's input edge, not to the latest edge: the latest-edge reference
    //    has a slope discontinuity wherever the latest input changes
    //    identity (delta crossing 0), which interpolation tracks poorly.
    //    The pin-0 reference is smooth there; eval_lut converts to the
    //    standard latest-edge delay with the exact analytic shift
    //    max_p(delta_p, 0).
    //  * Queries whose normalized offsets fall OUTSIDE the skew-knot hull
    //    are served by linear extrapolation along the skew axes (the
    //    tails are linear by construction), so a far-skewed MIS query
    //    degrades to the single-late-input answer instead of a
    //    clamped-coordinate artifact.
    //  * Three-pin arcs do NOT use (u_b, u_c) directly: the which-of-B/C-
    //    fires-last transition is a DIAGONAL ridge (u_b ~ u_c) that
    //    axis-aligned knots cannot track. The axes are instead
    //    skew_max = max(u_b, u_c) and skew_diff = u_b - u_c, which
    //    rotate both that ridge (skew_diff = 0) and the pin-0 transition
    //    (skew_max = 0) onto grid planes; the late-edge tail is linear in
    //    skew_max and flat in skew_diff, which multilinear interpolation
    //    reproduces exactly. The mapping is bijective: given (m, d),
    //    u_b = m, u_c = m - d for d >= 0, else u_c = m, u_b = m + d.
    struct ArcSurface {
        // Owned tables, populated when the surface was built or loaded
        // from the per-file store; left empty for pack-served surfaces.
        lut::NdTable delay_owned;
        lut::NdTable slew_owned;
        // The evaluation handles: views over the owned tables or straight
        // into the pack mapping. Every eval goes through lut::TableView's
        // single interpolation kernel, so owned and mapped serving are
        // bitwise-identical by construction.
        lut::TableView delay;
        lut::TableView slew;
        // Pins the mapping the views borrow from (null for owned
        // surfaces); a hot reload cannot munmap a mapping this surface
        // still references.
        std::shared_ptr<const MappedPack> pack;
    };
    using SurfacePtr = std::shared_ptr<const ArcSurface>;

    static void validate(const TimingQuery& query);
    static std::string arc_id(const TimingQuery& query);
    std::string surface_path(const std::string& arc_id) const;

    std::vector<lut::Axis> surface_axes(std::size_t pin_count) const;

    // Single-flight lookup/build of the arc surface for `query`.
    SurfacePtr surface_for(const TimingQuery& query);
    SurfacePtr build_surface(const TimingQuery& query);

    // Effective lumped capacitance of the query's load as seen from the
    // cell output around the 50% crossing: load_cap for lumped loads, the
    // converged shielded cap for pi loads (iterates against the surface's
    // slew table through `coords`, whose cap slot it clobbers). Feeds the
    // delay lookup; the slew lookup uses the full lumped cap (see
    // eval_lut).
    double effective_cap(const ArcSurface& surface,
                         const TimingQuery& query,
                         std::vector<double>& coords) const;

    TimingResult eval_lut(const ArcSurface& surface,
                          const TimingQuery& query) const;
    // `ref_pin0` switches the delay reference from the latest input edge
    // (the query contract) to pin 0's edge (the surface-build contract, see
    // ArcSurface).
    TimingResult eval_transient(const core::CsmModel& model,
                                const TimingQuery& query,
                                bool ref_pin0 = false) const;

    // Cache key of `arc` under the current pack generation (plain arc id
    // without a pack); detects generation changes and evicts surfaces of
    // retired generations so old mappings can actually munmap.
    std::string surface_cache_key(const std::string& arc);

    ModelRepository* repo_;
    ServeOptions options_;

    SingleFlightCache<ArcSurface> surfaces_;
    std::atomic<std::size_t> surface_loads_{0};
    std::atomic<std::uint64_t> surface_generation_{0};
};

}  // namespace mcsm::serve

#endif  // MCSM_SERVE_TIMING_SERVICE_H
