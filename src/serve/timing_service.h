// Batched timing query service over cached CSM models.
//
// Callers submit vectors of TimingQuery{cell, switching pins, input slews,
// per-pin skews, load} and get TimingResult{delay, slew, optional waveform}
// back. MIS skew is a first-class query axis: two-pin arcs are served from
// delay/slew surfaces over [slew_a, slew_b, skew, load], so near-
// simultaneous and skewed input combinations interpolate through the MIS
// valley instead of collapsing onto a single-input model.
//
// Two evaluation paths:
//  * LUT fast path - multilinear interpolation into per-arc delay/slew
//    surfaces, built on first use by running the CSM transient at every
//    surface knot (fanned over the shared thread pool) and cached for the
//    service lifetime. Surface builds are single-flight: concurrent misses
//    on one arc build it once.
//  * Transient exact path (query.exact / query.want_waveform) - one CSM
//    transient per query, returning the measured delay/slew and the output
//    waveform.
// Models come from a ModelRepository (memory -> binary store -> on-demand
// characterization). Batch results are deterministic for any thread count:
// every query is an independent, single-threaded evaluation of immutable
// tables.
#ifndef MCSM_SERVE_TIMING_SERVICE_H
#define MCSM_SERVE_TIMING_SERVICE_H

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/single_flight.h"
#include "lut/ndtable.h"
#include "serve/repository.h"
#include "wave/waveform.h"

namespace mcsm::serve {

struct TimingQuery {
    std::string cell;
    // 1 switching pin (SIS model) or 2 (MCSM model, skewed MIS).
    std::vector<std::string> pins;
    // Edge direction of the switching inputs; every library cell is
    // inverting, so the output edge is the opposite direction.
    bool inputs_rise = false;
    std::vector<double> slews;  // per-pin 0-100% input ramp [s]
    // Per-pin edge offsets [s] relative to the common edge time; empty
    // means all zero (simultaneous switching).
    std::vector<double> skews;
    double load_cap = 5e-15;  // linear output load [F]
    bool exact = false;          // force the transient path
    bool want_waveform = false;  // implies the transient path
};

enum class ResultPath { kLut, kTransient };

struct TimingResult {
    bool valid = false;
    // 50% crossing of the LATEST switching input to 50% crossing of the
    // output (the standard MIS delay reference).
    double delay = 0.0;
    double slew = 0.0;  // output 10-90% transition [s]
    ResultPath path = ResultPath::kLut;
    wave::Waveform waveform;  // output waveform (want_waveform only)
    std::string error;        // set when !valid
};

struct ServeOptions {
    // Surface knots. Slew knots parameterize every switching pin; skew
    // knots parameterize pin[1] relative to pin[0] on two-pin arcs (must
    // bracket 0 so the simultaneous-switching valley is a grid point).
    std::vector<double> slew_knots{20e-12, 80e-12, 200e-12, 400e-12};
    std::vector<double> skew_knots{-200e-12, -80e-12, 0.0, 80e-12,
                                   200e-12};
    std::vector<double> load_knots{1e-15, 4e-15, 16e-15, 32e-15};
    double dt = 2e-12;      // transient step of the evaluators [s]
    double settle = 2e-9;   // post-edge simulation window [s]
    std::size_t threads = 0;  // batch fan-out (0: all cores)
};

class TimingService {
public:
    TimingService(ModelRepository& repo, ServeOptions options = {});

    TimingService(const TimingService&) = delete;
    TimingService& operator=(const TimingService&) = delete;

    // Executes the batch over the shared thread pool; results come back in
    // query order. Per-query failures land in TimingResult::error instead
    // of aborting the batch.
    std::vector<TimingResult> run_batch(std::span<const TimingQuery> queries);

    TimingResult run_one(const TimingQuery& query);

    // Delay/slew surfaces built so far.
    std::size_t surface_count() const;

    const ServeOptions& options() const { return options_; }

private:
    // Immutable per-arc delay/slew surfaces: axes [slew, load] for one-pin
    // arcs, [slew_a, slew_b, skew_b, load] for two-pin arcs.
    struct ArcSurface {
        lut::NdTable delay;
        lut::NdTable slew;
    };
    using SurfacePtr = std::shared_ptr<const ArcSurface>;

    static void validate(const TimingQuery& query);
    static std::string arc_id(const TimingQuery& query);

    // Single-flight lookup/build of the arc surface for `query`.
    SurfacePtr surface_for(const TimingQuery& query);
    SurfacePtr build_surface(const TimingQuery& query);

    TimingResult eval_lut(const ArcSurface& surface,
                          const TimingQuery& query) const;
    TimingResult eval_transient(const core::CsmModel& model,
                                const TimingQuery& query) const;

    ModelRepository* repo_;
    ServeOptions options_;

    SingleFlightCache<ArcSurface> surfaces_;
};

}  // namespace mcsm::serve

#endif  // MCSM_SERVE_TIMING_SERVICE_H
