// Directory-backed model repository: the serving layer's cache of
// characterized CSM models.
//
// Lookup order for a key: in-memory cache -> binary store file
// (<dir>/<key>.csm.bin) -> legacy text store file (<dir>/<key>.csm) ->
// on-demand characterization (when a cell library is attached), whose
// result is written back to the binary store. Loads are lazy and
// single-flight: concurrent misses on the same key block on one
// load/characterization instead of duplicating it, and a failed load is
// never cached (the next get retries, e.g. after the corrupt file was
// replaced).
//
// Keys carry an optional Vdd/temperature corner. Corner models are
// first-class store citizens: they characterize on miss against a derated
// technology card (tech::apply_environment), cache under a corner-suffixed
// key, and persist like any nominal model -- two corners of the same cell
// never share a cache entry or a store file.
#ifndef MCSM_SERVE_REPOSITORY_H
#define MCSM_SERVE_REPOSITORY_H

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cells/library.h"
#include "common/annotations.h"
#include "common/single_flight.h"
#include "core/characterizer.h"
#include "core/model.h"
#include "serve/mapped_store.h"
#include "tech/tech130.h"

namespace mcsm::serve {

// Operating-point (environmental) corner of a query or model key.
// vdd <= 0 means "library nominal supply"; temp_c defaults to the nominal
// 25 degC. The default-constructed Corner is the nominal corner.
struct Corner {
    double vdd = 0.0;     // supply override [V]; <= 0 keeps nominal
    double temp_c = 25.0; // junction temperature [degC]

    bool nominal() const { return vdd <= 0.0 && temp_c == 25.0; }
    // Filename-safe key suffix, "" for the nominal corner (so nominal
    // store files keep their pre-corner names): "1.08V85C".
    std::string tag() const;
};

// Identifies one characterized model: cell, model family, the ordered
// switching pins, and the Vdd/temperature corner.
struct ModelKey {
    std::string cell;
    core::ModelKind kind = core::ModelKind::kMcsm;
    std::vector<std::string> pins;
    Corner corner;

    // "NOR2.MCSM.A-B" (nominal) / "NOR2.MCSM.A-B@1.08V85C": also the store
    // file stem.
    std::string to_string() const;

    // Conventional key for a cell's timing arc: one pin -> SIS, several ->
    // MCSM (internal stack nodes modeled).
    static ModelKey arc(std::string cell, std::vector<std::string> pins,
                        Corner corner = {});
};

struct RepositoryOptions {
    // Store directory; empty runs the repository purely in memory.
    std::string dir;
    // Optional mmap'd model pack (serve/mapped_store). When set, lookups
    // consult the pack's current mapping before touching per-file stores or
    // characterizing: memory -> pack -> .csm.bin -> .csm -> characterize.
    // Pack hits parse the packed v2 envelope once per process (the
    // in-memory cache holds the result); the mapping itself is shared
    // page-cache across every process hosting the same pack.
    std::shared_ptr<PackHost> pack;
    // Persist freshly characterized models into `dir`.
    bool write_back = true;
    // Run analysis::audit_model on every model production (store load,
    // legacy-text migration, characterize-on-miss, put()) and throw
    // ModelError carrying the lint report when it finds errors -- the
    // pre-flight admission gate of the serve layer. Failed audits are
    // never cached, so a repaired store file is retried on the next get().
    bool lint_on_load = true;
    // Options for the characterize-on-miss fallback (1- and 2-pin arcs).
    core::CharOptions char_options;
    // Characterization options for arcs with >= 3 switching pins. A 3-pin
    // MCSM model of a 3-stack cell is 6-D (3 pins + 2 internals + out), so
    // the default grid would cost knots^6 DC solves and the paper-faithful
    // transient cap extraction becomes intractable; the defaults here trade
    // grid resolution for a feasible build (~50k DC points) and use the
    // model-linearized capacitance path.
    core::CharOptions char_options_mis3 = [] {
        core::CharOptions o;
        o.grid_points = 5;
        o.transient_caps = false;
        o.cin_points = 9;
        return o;
    }();
};

class ModelRepository {
public:
    // `lib` may be null: the repository then only serves models already in
    // memory or on disk and throws ModelError on a full miss.
    ModelRepository(const cells::CellLibrary* lib, RepositoryOptions options);

    ModelRepository(const ModelRepository&) = delete;
    ModelRepository& operator=(const ModelRepository&) = delete;

    // Returns the cached model, loading or characterizing it first if
    // needed. Thread-safe; throws ModelError when the model cannot be
    // produced. The returned pointer is immutable and stays valid for the
    // caller's lifetime regardless of later cache activity.
    std::shared_ptr<const core::CsmModel> get(const ModelKey& key);

    // Inserts (or replaces) a model under `key`, writing it back to the
    // store directory when configured.
    void put(const ModelKey& key, core::CsmModel model);

    // True when `key` is resident in memory (not merely on disk).
    bool cached(const ModelKey& key) const;
    std::size_t cached_count() const;

    // Number of characterize-on-miss fallbacks taken (single-flight: one
    // per key however many threads raced on it).
    std::size_t characterize_count() const { return characterize_count_; }

    const RepositoryOptions& options() const { return options_; }
    // Store path of a key's binary model file ("" without a store dir).
    std::string binary_path(const ModelKey& key) const;

private:
    using ModelPtr = std::shared_ptr<const core::CsmModel>;

    ModelPtr load_or_characterize(const ModelKey& key);
    // Library evaluated at `corner` (the attached nominal library for the
    // nominal corner; built once per distinct corner otherwise). Requires
    // an attached library; throws ModelError without one.
    const cells::CellLibrary& library_for(const Corner& corner);

    const cells::CellLibrary* lib_;
    RepositoryOptions options_;

    // Corner-derated technology cards + cell libraries, built lazily and
    // owned for the repository lifetime (characterized models reference
    // nothing in them afterwards, but concurrent characterizations do).
    struct CornerLibrary {
        tech::Technology tech;
        cells::CellLibrary lib;
        explicit CornerLibrary(tech::Technology t)
            : tech(std::move(t)), lib(tech) {}
    };
    Mutex corner_mutex_;
    std::map<std::string, std::unique_ptr<CornerLibrary>> corner_libs_
        MCSM_GUARDED_BY(corner_mutex_);

    SingleFlightCache<core::CsmModel> cache_;
    std::atomic<std::size_t> characterize_count_{0};
};

}  // namespace mcsm::serve

#endif  // MCSM_SERVE_REPOSITORY_H
