// Directory-backed model repository: the serving layer's cache of
// characterized CSM models.
//
// Lookup order for a key: in-memory cache -> binary store file
// (<dir>/<key>.csm.bin) -> legacy text store file (<dir>/<key>.csm) ->
// on-demand characterization (when a cell library is attached), whose
// result is written back to the binary store. Loads are lazy and
// single-flight: concurrent misses on the same key block on one
// load/characterization instead of duplicating it, and a failed load is
// never cached (the next get retries, e.g. after the corrupt file was
// replaced).
#ifndef MCSM_SERVE_REPOSITORY_H
#define MCSM_SERVE_REPOSITORY_H

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "cells/library.h"
#include "common/single_flight.h"
#include "core/characterizer.h"
#include "core/model.h"

namespace mcsm::serve {

// Identifies one characterized model: cell, model family, and the ordered
// switching pins.
struct ModelKey {
    std::string cell;
    core::ModelKind kind = core::ModelKind::kMcsm;
    std::vector<std::string> pins;

    // "NOR2.MCSM.A-B": also the store file stem.
    std::string to_string() const;

    // Conventional key for a cell's timing arc: one pin -> SIS, several ->
    // MCSM (internal stack nodes modeled).
    static ModelKey arc(std::string cell, std::vector<std::string> pins);
};

struct RepositoryOptions {
    // Store directory; empty runs the repository purely in memory.
    std::string dir;
    // Persist freshly characterized models into `dir`.
    bool write_back = true;
    // Options for the characterize-on-miss fallback.
    core::CharOptions char_options;
};

class ModelRepository {
public:
    // `lib` may be null: the repository then only serves models already in
    // memory or on disk and throws ModelError on a full miss.
    ModelRepository(const cells::CellLibrary* lib, RepositoryOptions options);

    ModelRepository(const ModelRepository&) = delete;
    ModelRepository& operator=(const ModelRepository&) = delete;

    // Returns the cached model, loading or characterizing it first if
    // needed. Thread-safe; throws ModelError when the model cannot be
    // produced. The returned pointer is immutable and stays valid for the
    // caller's lifetime regardless of later cache activity.
    std::shared_ptr<const core::CsmModel> get(const ModelKey& key);

    // Inserts (or replaces) a model under `key`, writing it back to the
    // store directory when configured.
    void put(const ModelKey& key, core::CsmModel model);

    // True when `key` is resident in memory (not merely on disk).
    bool cached(const ModelKey& key) const;
    std::size_t cached_count() const;

    // Number of characterize-on-miss fallbacks taken (single-flight: one
    // per key however many threads raced on it).
    std::size_t characterize_count() const { return characterize_count_; }

    const RepositoryOptions& options() const { return options_; }
    // Store path of a key's binary model file ("" without a store dir).
    std::string binary_path(const ModelKey& key) const;

private:
    using ModelPtr = std::shared_ptr<const core::CsmModel>;

    ModelPtr load_or_characterize(const ModelKey& key);

    const cells::CellLibrary* lib_;
    RepositoryOptions options_;

    SingleFlightCache<core::CsmModel> cache_;
    std::atomic<std::size_t> characterize_count_{0};
};

}  // namespace mcsm::serve

#endif  // MCSM_SERVE_REPOSITORY_H
