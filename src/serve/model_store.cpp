#include "serve/model_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <bit>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace mcsm::serve {

namespace fs = std::filesystem;

namespace {

// Corrupt headers must fail before the payload allocation, so cap the
// declared payload size at something far beyond any real model (a 4-D
// 25-knot model is ~40 MB).
constexpr std::uint64_t kMaxPayloadBytes = 1ull << 31;

std::uint64_t fnv1a(const std::string& bytes) {
    std::uint64_t h = 14695981039346656037ull;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

// --- little-endian payload writer --------------------------------------

class ByteWriter {
public:
    void u32(std::uint32_t v) {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
    void u64(std::uint64_t v) {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
    void str(const std::string& s) {
        u32(static_cast<std::uint32_t>(s.size()));
        buf_.append(s);
    }
    void f64_vec(const std::vector<double>& v) {
        u64(v.size());
        for (double x : v) f64(x);
    }
    const std::string& bytes() const { return buf_; }

private:
    std::string buf_;
};

// --- bounds-checked little-endian payload reader ------------------------

class ByteReader {
public:
    explicit ByteReader(const std::string& bytes) : bytes_(&bytes) {}

    std::uint32_t u32() {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(byte(pos_ + i)) << (8 * i);
        pos_ += 4;
        return v;
    }
    std::uint64_t u64() {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(byte(pos_ + i)) << (8 * i);
        pos_ += 8;
        return v;
    }
    double f64() { return std::bit_cast<double>(u64()); }
    std::string str() {
        const std::uint32_t n = u32();
        need(n);
        std::string s = bytes_->substr(pos_, n);
        pos_ += n;
        return s;
    }
    std::vector<double> f64_vec() {
        const std::uint64_t n = u64();
        // Overflow-safe bound; fails before allocating from a corrupt count.
        require(n <= remaining() / 8, "model_store: truncated payload");
        std::vector<double> v(n);
        for (double& x : v) x = f64();
        return v;
    }
    bool exhausted() const { return pos_ == bytes_->size(); }

    // Checks a declared element count against the bytes actually left
    // (each element needs at least min_bytes), so corrupt counts in an
    // otherwise checksum-consistent payload fail with ModelError before
    // any allocation instead of escaping as bad_alloc/length_error.
    void check_count(std::uint64_t n, std::uint64_t min_bytes) const {
        require(n <= remaining() / min_bytes,
                "model_store: implausible element count (corrupt payload)");
    }

private:
    unsigned char byte(std::size_t i) const {
        return static_cast<unsigned char>((*bytes_)[i]);
    }
    std::uint64_t remaining() const { return bytes_->size() - pos_; }
    void need(std::uint64_t n) const {
        require(n <= remaining(), "model_store: truncated payload");
    }

    const std::string* bytes_;
    std::size_t pos_ = 0;
};

// --- envelope -----------------------------------------------------------

void write_envelope(std::ostream& os, std::uint32_t kind,
                    const std::string& payload) {
    ByteWriter header;
    header.u32(kFormatVersion);
    header.u32(kind);
    header.u64(payload.size());
    header.u64(fnv1a(payload));
    os.write(kStoreMagic, sizeof kStoreMagic);
    os.write(header.bytes().data(),
             static_cast<std::streamsize>(header.bytes().size()));
    os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    require(os.good(), "model_store: write failed");
}

struct Envelope {
    std::string payload;
    std::uint32_t version = 0;
};

Envelope read_envelope(std::istream& is, std::uint32_t kind) {
    char magic[sizeof kStoreMagic];
    is.read(magic, sizeof magic);
    require(is.gcount() == sizeof magic &&
                std::memcmp(magic, kStoreMagic, sizeof magic) == 0,
            "model_store: bad magic (not an MCSM binary store file)");

    std::string header_bytes(24, '\0');
    is.read(header_bytes.data(), 24);
    require(is.gcount() == 24, "model_store: truncated header");
    ByteReader header(header_bytes);
    const std::uint32_t version = header.u32();
    require(version >= kMinFormatVersion && version <= kFormatVersion,
            "model_store: unsupported format version " +
                std::to_string(version));
    const std::uint32_t file_kind = header.u32();
    require(file_kind == kind,
            "model_store: payload kind mismatch");
    // Surfaces were introduced with format version 2; a v1 envelope
    // declaring one is corrupt by definition.
    require(kind != kSurfaceKind || version >= 2,
            "model_store: surface payload in a pre-surface format version");
    const std::uint64_t size = header.u64();
    require(size <= kMaxPayloadBytes,
            "model_store: implausible payload size (corrupt header)");
    const std::uint64_t checksum = header.u64();

    std::string payload(size, '\0');
    is.read(payload.data(), static_cast<std::streamsize>(size));
    require(static_cast<std::uint64_t>(is.gcount()) == size,
            "model_store: truncated payload");
    require(fnv1a(payload) == checksum, "model_store: checksum mismatch");
    return Envelope{std::move(payload), version};
}

// --- table / model payloads ---------------------------------------------

void put_table(ByteWriter& w, const lut::NdTable& table) {
    w.str(table.name());
    w.u32(static_cast<std::uint32_t>(table.rank()));
    for (const lut::Axis& ax : table.axes()) {
        w.str(ax.name());
        w.f64_vec(ax.knots());
    }
    w.f64_vec(table.values());
}

lut::NdTable get_table(ByteReader& r) {
    std::string name = r.str();
    const std::uint32_t rank = r.u32();
    r.check_count(rank, 16);  // axis = name len + knot count at minimum
    std::vector<lut::Axis> axes;
    axes.reserve(rank);
    for (std::uint32_t d = 0; d < rank; ++d) {
        std::string axis_name = r.str();
        std::vector<double> knots = r.f64_vec();
        for (std::size_t i = 0; i < knots.size(); ++i) {
            require(std::isfinite(knots[i]) &&
                        (i == 0 || knots[i] > knots[i - 1]),
                    "model_store: table '" + name + "' axis '" + axis_name +
                        "' has a non-finite or non-increasing knot at index " +
                        std::to_string(i) + " (corrupt payload)");
        }
        axes.emplace_back(std::move(axis_name), std::move(knots));
    }
    lut::NdTable table(std::move(axes), std::move(name));
    const std::vector<double> vals = r.f64_vec();
    require(vals.size() == table.value_count(),
            "model_store: value count does not match axes");
    for (std::size_t i = 0; i < vals.size(); ++i)
        require(std::isfinite(vals[i]),
                "model_store: table '" + table.name() + "' value " +
                    std::to_string(i) + " is not finite (corrupt payload)");
    std::size_t i = 0;
    table.for_each_grid_point([&](std::span<const std::size_t>,
                                  std::span<const double>, double& slot) {
        slot = vals[i++];
    });
    return table;
}

void put_str_vec(ByteWriter& w, const std::vector<std::string>& v) {
    w.u32(static_cast<std::uint32_t>(v.size()));
    for (const std::string& s : v) w.str(s);
}

std::vector<std::string> get_str_vec(ByteReader& r) {
    const std::uint32_t n = r.u32();
    r.check_count(n, 4);  // every string carries a u32 length prefix
    std::vector<std::string> v;
    v.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) v.push_back(r.str());
    return v;
}

// No reserve: n is a product of parsed counts (pins x internals) and could
// be implausibly large in a corrupt payload; get_table hits a truncation
// ModelError within a few reads instead.
void get_tables(ByteReader& r, std::size_t n,
                std::vector<lut::NdTable>& out) {
    for (std::size_t i = 0; i < n; ++i) out.push_back(get_table(r));
}

}  // namespace

void write_table_binary(std::ostream& os, const lut::NdTable& table) {
    ByteWriter w;
    put_table(w, table);
    write_envelope(os, kTableKind, w.bytes());
}

lut::NdTable read_table_binary(std::istream& is) {
    const Envelope env = read_envelope(is, kTableKind);
    ByteReader r(env.payload);
    lut::NdTable table = get_table(r);
    require(r.exhausted(), "model_store: trailing bytes after table");
    return table;
}

void write_model_binary(std::ostream& os, const core::CsmModel& model) {
    model.check_consistent();
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(model.kind));
    w.str(model.cell_name);
    w.f64(model.vdd);
    w.f64(model.dv_margin);
    w.f64(model.temp_c);  // since format version 2
    put_str_vec(w, model.pins);
    put_str_vec(w, model.fixed_pins);
    w.f64_vec(model.fixed_values);
    put_str_vec(w, model.internals);
    put_table(w, model.i_out);
    for (const auto& t : model.i_internal) put_table(w, t);
    for (const auto& t : model.c_miller) put_table(w, t);
    put_table(w, model.c_out);
    for (const auto& t : model.c_internal) put_table(w, t);
    for (const auto& t : model.c_miller_internal) put_table(w, t);
    for (const auto& t : model.c_in) put_table(w, t);
    write_envelope(os, kModelKind, w.bytes());
}

core::CsmModel read_model_binary(std::istream& is) {
    const Envelope env = read_envelope(is, kModelKind);
    ByteReader r(env.payload);

    core::CsmModel m;
    const std::uint32_t kind = r.u32();
    require(kind <= static_cast<std::uint32_t>(core::ModelKind::kMcsm),
            "model_store: unknown model kind");
    m.kind = static_cast<core::ModelKind>(kind);
    m.cell_name = r.str();
    m.vdd = r.f64();
    m.dv_margin = r.f64();
    if (env.version >= 2) m.temp_c = r.f64();
    require(std::isfinite(m.vdd) && m.vdd > 0.0,
            "model_store: vdd = " + std::to_string(m.vdd) +
                " (must be finite and > 0)");
    require(std::isfinite(m.dv_margin) && m.dv_margin >= 0.0,
            "model_store: dv_margin = " + std::to_string(m.dv_margin) +
                " (must be finite and >= 0)");
    require(std::isfinite(m.temp_c), "model_store: non-finite temp_c");
    m.pins = get_str_vec(r);
    m.fixed_pins = get_str_vec(r);
    m.fixed_values = r.f64_vec();
    m.internals = get_str_vec(r);
    require(m.fixed_pins.size() == m.fixed_values.size(),
            "model_store: fixed pin/value count mismatch");

    m.i_out = get_table(r);
    get_tables(r, m.internals.size(), m.i_internal);
    get_tables(r, m.pins.size(), m.c_miller);
    m.c_out = get_table(r);
    get_tables(r, m.internals.size(), m.c_internal);
    get_tables(r, m.pins.size() * m.internals.size(), m.c_miller_internal);
    get_tables(r, m.pins.size(), m.c_in);
    require(r.exhausted(), "model_store: trailing bytes after model");
    m.check_consistent();
    return m;
}

void write_surface_binary(std::ostream& os, const ArcSurfaceData& surface) {
    require(!surface.arc_id.empty(), "write_surface_binary: empty arc id");
    require(surface.delay.rank() == surface.slew.rank(),
            "write_surface_binary: delay/slew rank mismatch");
    ByteWriter w;
    w.str(surface.arc_id);
    w.f64(surface.dt);
    w.f64(surface.settle);
    w.u64(surface.model_check);
    put_table(w, surface.delay);
    put_table(w, surface.slew);
    write_envelope(os, kSurfaceKind, w.bytes());
}

ArcSurfaceData read_surface_binary(std::istream& is) {
    const Envelope env = read_envelope(is, kSurfaceKind);
    ByteReader r(env.payload);
    ArcSurfaceData s;
    s.arc_id = r.str();
    s.dt = r.f64();
    s.settle = r.f64();
    s.model_check = r.u64();
    s.delay = get_table(r);
    s.slew = get_table(r);
    require(r.exhausted(), "model_store: trailing bytes after surface");
    require(!s.arc_id.empty() && std::isfinite(s.dt) && s.dt > 0.0 &&
                std::isfinite(s.settle) && s.settle > 0.0,
            "model_store: implausible surface parameters");
    require(s.delay.rank() == s.slew.rank(),
            "model_store: surface delay/slew rank mismatch");
    return s;
}

std::uint64_t model_checksum(const core::CsmModel& model) {
    std::ostringstream os;
    write_model_binary(os, model);
    return fnv1a(os.str());
}

namespace {

// Unique same-process temp name next to `path`; concurrent writers of the
// same key each publish a complete file and the last rename wins.
std::string temp_name(const std::string& path) {
    static std::atomic<unsigned> counter{0};
    return path + ".tmp." + std::to_string(::getpid()) + "." +
           std::to_string(counter++);
}

[[noreturn]] void fail_errno(const std::string& what) {
    throw ModelError("model_store: " + what + " (" +
                     std::strerror(errno) + ")");
}

// write(2) the whole buffer, riding out short writes and EINTR.
void write_all(int fd, const char* data, std::size_t size,
               const std::string& path) {
    std::size_t done = 0;
    while (done < size) {
        const ssize_t n = ::write(fd, data + done, size - done);
        if (n < 0) {
            if (errno == EINTR) continue;
            fail_errno("write failed for " + path);
        }
        done += static_cast<std::size_t>(n);
    }
}

// Opens, fully writes, fsyncs and closes a fresh temp file. Throws with
// the temp removed on any failure.
void write_temp_durably(const std::string& tmp, const std::string& bytes) {
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC,
                          0644);
    if (fd < 0) fail_errno("cannot open " + tmp);
    try {
        write_all(fd, bytes.data(), bytes.size(), tmp);
        // fsync BEFORE rename: rename is a metadata operation that can be
        // journaled ahead of the data blocks, so without this a crash
        // after publication could surface an empty/truncated file under
        // the final name -- the exact outage the atomic write exists to
        // prevent.
        if (::fsync(fd) != 0) fail_errno("fsync failed for " + tmp);
        if (::close(fd) != 0) fail_errno("close failed for " + tmp);
    } catch (...) {
        ::close(fd);
        ::unlink(tmp.c_str());
        throw;
    }
}

// fsync the directory containing `path`, so the rename itself (a directory
// entry update) is on disk before the writer reports success.
void fsync_parent_dir(const std::string& path) {
    const fs::path parent = fs::path(path).parent_path();
    const std::string dir = parent.empty() ? "." : parent.string();
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) fail_errno("cannot open directory " + dir);
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) fail_errno("fsync failed for directory " + dir);
}

}  // namespace

void durable_replace_file(const std::string& tmp, const std::string& path) {
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        if (errno != EXDEV) {
            const int saved = errno;
            ::unlink(tmp.c_str());
            errno = saved;
            fail_errno("rename failed for " + path);
        }
        // Temp on a different filesystem (e.g. a tmpfs staging dir):
        // rename(2) cannot cross the boundary, so re-stage the bytes in a
        // same-directory temp and publish that one atomically instead.
        std::string bytes;
        {
            std::ifstream is(tmp, std::ios::binary);
            std::ostringstream copy;
            copy << is.rdbuf();
            if (!is.good() && !is.eof()) {
                ::unlink(tmp.c_str());
                throw ModelError("model_store: cannot re-read " + tmp +
                                 " for cross-filesystem publish");
            }
            bytes = std::move(copy).str();
        }
        ::unlink(tmp.c_str());
        const std::string local = temp_name(path);
        write_temp_durably(local, bytes);
        if (::rename(local.c_str(), path.c_str()) != 0) {
            const int saved = errno;
            ::unlink(local.c_str());
            errno = saved;
            fail_errno("rename failed for " + path);
        }
        fsync_parent_dir(path);
        return;
    }
    fsync_parent_dir(path);
}

void save_bytes_atomically(const std::string& path,
                           const std::string& bytes) {
    const std::string tmp = temp_name(path);
    write_temp_durably(tmp, bytes);
    durable_replace_file(tmp, path);
}

std::size_t clean_orphan_temps(const std::string& dir, long min_age_s) {
    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec) return 0;
    const auto now = std::chrono::file_clock::now();
    std::size_t removed = 0;
    for (const fs::directory_entry& entry :
         fs::directory_iterator(dir, ec)) {
        if (ec) break;
        std::error_code entry_ec;
        if (!entry.is_regular_file(entry_ec) || entry_ec) continue;
        const std::string name = entry.path().filename().string();
        if (name.find(".tmp.") == std::string::npos) continue;
        const auto mtime = fs::last_write_time(entry.path(), entry_ec);
        if (entry_ec) continue;
        const auto age =
            std::chrono::duration_cast<std::chrono::seconds>(now - mtime);
        if (age.count() < min_age_s) continue;
        if (fs::remove(entry.path(), entry_ec) && !entry_ec) ++removed;
    }
    return removed;
}

namespace {

// Serialize-then-publish: the payload is rendered in memory first so the
// temp file is written in one pass and can be fsync'd before rename --
// see the durability contract in the header.
void save_atomically(const std::string& path,
                     const std::function<void(std::ostream&)>& write) {
    std::ostringstream os;
    write(os);
    require(os.good(), "model_store: serialization failed for " + path);
    save_bytes_atomically(path, std::move(os).str());
}

}  // namespace

void save_model_binary(const std::string& path,
                       const core::CsmModel& model) {
    save_atomically(path,
                    [&](std::ostream& os) { write_model_binary(os, model); });
}

core::CsmModel load_model_binary(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    require(is.good(), "load_model_binary: cannot open " + path);
    return read_model_binary(is);
}

void save_surface_binary(const std::string& path,
                         const ArcSurfaceData& surface) {
    save_atomically(
        path, [&](std::ostream& os) { write_surface_binary(os, surface); });
}

ArcSurfaceData load_surface_binary(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    require(is.good(), "load_surface_binary: cannot open " + path);
    return read_surface_binary(is);
}

}  // namespace mcsm::serve
