// Glitch analysis: a partial-swing glitch is generated at a NOR2 output
// (Fig. 10 scenario) and propagated through a two-inverter chain. Because
// the CSM engine carries full waveforms, it shows how the logic filters the
// glitch - something delay/slew-based models cannot express at all.
#include <cmath>
#include <cstdio>

#include "cells/library.h"
#include "core/characterizer.h"
#include "sta/golden_flat.h"
#include "sta/wave_sta.h"
#include "tech/tech130.h"
#include "wave/edges.h"
#include "engine/scenarios.h"
#include "wave/metrics.h"

using namespace mcsm;

int main() {
    const tech::Technology tech = tech::make_tech130();
    const cells::CellLibrary lib(tech);

    // Glitch generator: NOR2 with A falling and B rising 40 ps later.
    const engine::GlitchStimulus stim =
        engine::nor2_glitch(tech.vdd, 1.5e-9, 40e-12);

    sta::GateNetlist nl;
    nl.add_primary_input("a", stim.a);
    nl.add_primary_input("b", stim.b);
    nl.add_instance({"u1", "NOR2", {{"A", "a"}, {"B", "b"}, {"OUT", "g"}}});
    nl.add_instance({"u2", "INV_X1", {{"A", "g"}, {"OUT", "s1"}}});
    nl.add_instance({"u3", "INV_X1", {{"A", "s1"}, {"OUT", "s2"}}});
    nl.set_wire_cap("g", 2e-15);
    nl.set_wire_cap("s1", 2e-15);
    nl.set_wire_cap("s2", 4e-15);

    const auto golden = sta::run_golden_flat(nl, lib, 3.5e-9);

    const core::Characterizer chr(lib);
    core::CharOptions fast;
    fast.transient_caps = false;
    const core::CsmModel inv =
        chr.characterize("INV_X1", core::ModelKind::kSis, {"A"}, fast);
    const core::CsmModel nor =
        chr.characterize("NOR2", core::ModelKind::kMcsm, {"A", "B"}, fast);
    sta::WaveformSta wsta(nl, {{"INV_X1", &inv}, {"NOR2", &nor}});
    sta::WaveStaOptions wopt;
    wopt.tstop = 3.5e-9;
    const auto nets = wsta.run(wopt);

    std::printf("%6s %18s %18s %14s\n", "net", "golden peak/V",
                "csm peak/V", "rmse/%vdd");
    for (const std::string net : {"g", "s1", "s2"}) {
        // Peak excursion from the resting level (g and s2 rest low, s1
        // rests high).
        const bool rests_low = (net != "s1");
        const wave::Waveform& gw = golden.at(net);
        const wave::Waveform& mw = nets.at(net);
        const double g_peak =
            rests_low ? gw.max_value() : tech.vdd - gw.min_value();
        const double m_peak =
            rests_low ? mw.max_value() : tech.vdd - mw.min_value();
        const double rmse = 100.0 * wave::rmse_normalized(gw, mw, 1.4e-9,
                                                          3.4e-9, tech.vdd);
        std::printf("%6s %18.3f %18.3f %14.2f\n", net.c_str(), g_peak,
                    m_peak, rmse);
    }
    std::printf("\nthe glitch shrinks stage by stage (electrical masking); "
                "the CSM engine tracks the\ngolden peaks closely because it "
                "propagates complete waveforms, not (delay, slew) pairs.\n");
    return 0;
}
