// Waveform-propagation STA on a small gate network, three ways:
//   1. classic NLDM (the "voltage-based method" the paper argues against),
//   2. MCSM waveform propagation (this library's engine),
//   3. flat transistor-level simulation (ground truth).
// The network includes a reconvergent NOR2 whose inputs can switch close
// together - the MIS situation where NLDM goes optimistic.
#include <cmath>
#include <cstdio>

#include "cells/library.h"
#include "core/characterizer.h"
#include "sta/golden_flat.h"
#include "sta/nldm.h"
#include "sta/wave_sta.h"
#include "tech/tech130.h"
#include "wave/edges.h"
#include "wave/metrics.h"

using namespace mcsm;

int main() {
    const tech::Technology tech = tech::make_tech130();
    const cells::CellLibrary lib(tech);

    // in -> u1:INV -> n1 ---+
    //                        +--> u3:NOR2 -> y -> u4:INV -> out
    // in -> u2:NAND2(B=1) -> n2 -+
    // Both NOR2 inputs derive from 'in', so they switch within ~a gate
    // delay of each other: a reconvergent MIS event.
    const double t_edge = 1.0e-9;
    sta::GateNetlist nl;
    nl.add_primary_input(
        "in", wave::piecewise_edges(0.0, {{t_edge, 100e-12, tech.vdd}}));
    nl.add_primary_input("tie_hi", wave::Waveform::constant(tech.vdd));
    nl.add_instance({"u1", "INV_X1", {{"A", "in"}, {"OUT", "n1"}}});
    nl.add_instance(
        {"u2", "NAND2", {{"A", "in"}, {"B", "tie_hi"}, {"OUT", "n2"}}});
    nl.add_instance(
        {"u3", "NOR2", {{"A", "n1"}, {"B", "n2"}, {"OUT", "y"}}});
    nl.add_instance({"u4", "INV_X1", {{"A", "y"}, {"OUT", "out"}}});
    nl.set_wire_cap("n1", 1e-15);
    nl.set_wire_cap("n2", 1e-15);
    nl.set_wire_cap("y", 1e-15);
    nl.set_wire_cap("out", 4e-15);

    // Golden reference: the whole network flattened to transistors.
    const auto golden = sta::run_golden_flat(nl, lib, 4e-9);

    // NLDM STA.
    const sta::NldmLibrary nldm(lib, {"INV_X1", "NAND2", "NOR2"});
    const auto arrivals = sta::run_nldm_sta(nl, nldm, tech.vdd);

    // MCSM waveform STA.
    const core::Characterizer chr(lib);
    core::CharOptions fast;
    fast.transient_caps = false;
    const core::CsmModel inv =
        chr.characterize("INV_X1", core::ModelKind::kSis, {"A"}, fast);
    const core::CsmModel nor =
        chr.characterize("NOR2", core::ModelKind::kMcsm, {"A", "B"}, fast);
    const core::CsmModel nand =
        chr.characterize("NAND2", core::ModelKind::kMcsm, {"A", "B"}, fast);
    sta::WaveformSta wsta(nl, {{"INV_X1", &inv}, {"NOR2", &nor},
                               {"NAND2", &nand}});
    sta::WaveStaOptions wopt;
    wopt.tstop = 4e-9;
    const auto nets = wsta.run(wopt);

    std::printf("%6s %8s %14s %14s %14s\n", "net", "edge", "golden t50/ns",
                "nldm t50/ns", "csm t50/ns");
    for (const std::string net : {"n1", "n2", "y", "out"}) {
        const bool rising = arrivals.at(net).rising;
        const auto g50 =
            wave::crossing(golden.at(net), tech.vdd, 0.5, rising, 0.9e-9);
        const auto m50 =
            wave::crossing(nets.at(net), tech.vdd, 0.5, rising, 0.9e-9);
        std::printf("%6s %8s %14.4f %14.4f %14.4f\n", net.c_str(),
                    rising ? "rise" : "fall", g50.value_or(-1) * 1e9,
                    arrivals.at(net).t50 * 1e9, m50.value_or(-1) * 1e9);
    }

    const auto g_out =
        wave::crossing(golden.at("out"), tech.vdd, 0.5,
                       arrivals.at("out").rising, 0.9e-9);
    const double nldm_err =
        std::fabs(arrivals.at("out").t50 - g_out.value_or(0));
    const auto m_out = wave::crossing(nets.at("out"), tech.vdd, 0.5,
                                      arrivals.at("out").rising, 0.9e-9);
    const double csm_err = std::fabs(m_out.value_or(0) - g_out.value_or(0));
    std::printf("\nend-to-end arrival error vs golden: NLDM %.2f ps, MCSM "
                "waveform STA %.2f ps\n", nldm_err * 1e12, csm_err * 1e12);
    std::printf("(see bench_ext_nldm_vs_csm for the MIS and noisy-input "
                "cases where the gap widens\nfurther)\n");
    return 0;
}
