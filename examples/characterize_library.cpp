// Library characterization flow: build CSM models for a set of cells, write
// them to .csm files (plain text), and reload them - the cache pattern a
// timing tool would use so characterization runs once per library release.
//
// The jobs are independent and fan out over the process thread pool; each
// characterization runs its own testbench fixtures and solver workspaces.
// (Per-job sweep parallelism degrades gracefully to inline execution while
// the jobs themselves occupy the pool.)
//
//   $ ./characterize_library [output_dir]
//
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "cells/library.h"
#include "common/parallel.h"
#include "core/characterizer.h"
#include "core/model_io.h"
#include "tech/tech130.h"

using namespace mcsm;

int main(int argc, char** argv) {
    const std::string out_dir = argc > 1 ? argv[1] : "models";
    std::filesystem::create_directories(out_dir);

    const tech::Technology tech = tech::make_tech130();
    const cells::CellLibrary lib(tech);
    const core::Characterizer characterizer(lib);

    struct Job {
        const char* cell;
        core::ModelKind kind;
        std::vector<std::string> pins;
        std::size_t grid;
    };
    const std::vector<Job> jobs{
        {"INV_X1", core::ModelKind::kSis, {"A"}, 13},
        {"INV_X2", core::ModelKind::kSis, {"A"}, 13},
        {"INV_X4", core::ModelKind::kSis, {"A"}, 13},
        {"NOR2", core::ModelKind::kMcsm, {"A", "B"}, 11},
        {"NOR2", core::ModelKind::kMisBaseline, {"A", "B"}, 11},
        {"NAND2", core::ModelKind::kMcsm, {"A", "B"}, 11},
        {"NOR3", core::ModelKind::kMcsm, {"A", "B"}, 7},
        {"NAND3", core::ModelKind::kMcsm, {"A", "B"}, 7},
        {"AOI21", core::ModelKind::kMcsm, {"A", "C"}, 7},
        {"OAI21", core::ModelKind::kMcsm, {"A", "C"}, 7},
    };

    struct Row {
        core::CsmModel model;
        double ms = 0.0;
        std::string file;
    };
    std::vector<Row> rows(jobs.size());

    const auto wall_start = std::chrono::steady_clock::now();
    parallel_for(jobs.size(), [&](std::size_t i) {
        const Job& job = jobs[i];
        core::CharOptions opt;
        opt.grid_points = job.grid;
        opt.transient_caps = false;  // set true for the paper-faithful flow

        const auto start = std::chrono::steady_clock::now();
        rows[i].model =
            characterizer.characterize(job.cell, job.kind, job.pins, opt);
        rows[i].ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
        rows[i].file = out_dir + "/" + std::string(job.cell) + "_" +
                       core::to_string(job.kind) + ".csm";
        core::save_model(rows[i].file, rows[i].model);
    });
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - wall_start)
                               .count();

    std::printf("%-10s %-14s %6s %10s %10s  %s\n", "cell", "kind", "dims",
                "entries", "char/ms", "file");
    double sum_ms = 0.0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const Job& job = jobs[i];
        const Row& row = rows[i];

        // Round-trip check: the reloaded model must be usable.
        const core::CsmModel reloaded = core::load_model(row.file);
        reloaded.check_consistent();

        std::printf("%-10s %-14s %6zu %10zu %10.1f  %s (%.1f kB)\n", job.cell,
                    core::to_string(job.kind), row.model.dim(),
                    row.model.i_out.value_count(), row.ms, row.file.c_str(),
                    static_cast<double>(
                        std::filesystem::file_size(row.file)) / 1024.0);
        sum_ms += row.ms;
    }
    std::printf("\n%zu jobs on %zu threads: %.0f ms wall"
                " (%.0f ms of single-job work, %.2fx)\n",
                jobs.size(), hardware_threads(), wall_ms, sum_ms,
                sum_ms / wall_ms);
    std::printf("reload with core::load_model(path) - see quickstart.cpp\n");
    return 0;
}
