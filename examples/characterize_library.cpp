// Library characterization flow: build CSM models for a set of cells, write
// them to .csm files (plain text), and reload them - the cache pattern a
// timing tool would use so characterization runs once per library release.
//
//   $ ./characterize_library [output_dir]
//
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "cells/library.h"
#include "core/characterizer.h"
#include "core/model_io.h"
#include "tech/tech130.h"

using namespace mcsm;

int main(int argc, char** argv) {
    const std::string out_dir = argc > 1 ? argv[1] : "models";
    std::filesystem::create_directories(out_dir);

    const tech::Technology tech = tech::make_tech130();
    const cells::CellLibrary lib(tech);
    const core::Characterizer characterizer(lib);

    struct Job {
        const char* cell;
        core::ModelKind kind;
        std::vector<std::string> pins;
        std::size_t grid;
    };
    const std::vector<Job> jobs{
        {"INV_X1", core::ModelKind::kSis, {"A"}, 13},
        {"INV_X2", core::ModelKind::kSis, {"A"}, 13},
        {"INV_X4", core::ModelKind::kSis, {"A"}, 13},
        {"NOR2", core::ModelKind::kMcsm, {"A", "B"}, 11},
        {"NOR2", core::ModelKind::kMisBaseline, {"A", "B"}, 11},
        {"NAND2", core::ModelKind::kMcsm, {"A", "B"}, 11},
        {"NOR3", core::ModelKind::kMcsm, {"A", "B"}, 7},
        {"NAND3", core::ModelKind::kMcsm, {"A", "B"}, 7},
        {"AOI21", core::ModelKind::kMcsm, {"A", "C"}, 7},
        {"OAI21", core::ModelKind::kMcsm, {"A", "C"}, 7},
    };

    std::printf("%-10s %-14s %6s %10s %10s  %s\n", "cell", "kind", "dims",
                "entries", "char/ms", "file");
    for (const Job& job : jobs) {
        core::CharOptions opt;
        opt.grid_points = job.grid;
        opt.transient_caps = false;  // set true for the paper-faithful flow

        const auto start = std::chrono::steady_clock::now();
        const core::CsmModel model =
            characterizer.characterize(job.cell, job.kind, job.pins, opt);
        const double ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - start)
                              .count();

        const std::string file = out_dir + "/" + std::string(job.cell) + "_" +
                                 core::to_string(job.kind) + ".csm";
        core::save_model(file, model);

        // Round-trip check: the reloaded model must be usable.
        const core::CsmModel reloaded = core::load_model(file);
        reloaded.check_consistent();

        std::printf("%-10s %-14s %6zu %10zu %10.1f  %s (%.1f kB)\n", job.cell,
                    core::to_string(job.kind), model.dim(),
                    model.i_out.value_count(), ms, file.c_str(),
                    static_cast<double>(
                        std::filesystem::file_size(file)) / 1024.0);
    }
    std::printf("\nreload with core::load_model(path) - see quickstart.cpp\n");
    return 0;
}
