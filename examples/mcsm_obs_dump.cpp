// Observability demo/dump CLI: runs a small representative workload (one
// SIS characterization plus a transistor-level transient) so the obs
// registry has something to show, then prints the process-wide snapshot --
// counters, gauges and latency histograms with p50/p95/p99.
//
//   $ ./mcsm_obs_dump              human-readable table
//   $ ./mcsm_obs_dump --json       the same snapshot as JSON
//   $ ./mcsm_obs_dump --trace t.json
//                                  also capture a Chrome trace-event JSON
//                                  of the workload (load in Perfetto)
//
// Long-running tools surface the same data differently: timing_server
// --stats prints this snapshot at exit, MCSM_OBS_JSON writes it as JSON,
// and MCSM_TRACE captures a trace without any code changes.
#include <cstdio>
#include <string>

#include "cells/library.h"
#include "core/characterizer.h"
#include "engine/scenarios.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tech/tech130.h"

using namespace mcsm;

int main(int argc, char** argv) {
    bool json = false;
    std::string trace_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--trace" && i + 1 < argc) {
            trace_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: mcsm_obs_dump [--json] [--trace <path>]\n");
            return arg == "--help" ? 0 : 1;
        }
    }

    if (!obs::compiled_in())
        std::fprintf(stderr,
                     "# built with MCSM_OBS=OFF: hooks are compiled out, "
                     "the snapshot below is empty\n");

    if (!trace_path.empty()) {
        obs::TraceOptions topt;
        topt.path = trace_path;
        obs::start_trace(topt);
    }

    // Small workload: a coarse-grid SIS characterization (DC sweeps + cap
    // ramps) and one golden transient, touching the char.*, solver.* and
    // lint.* instrumentation.
    const tech::Technology tech = tech::make_tech130();
    const cells::CellLibrary lib(tech);
    const core::Characterizer characterizer(lib);
    core::CharOptions options;
    options.transient_caps = false;
    options.grid_points = 5;
    const core::CsmModel inv = characterizer.characterize(
        "INV_X1", core::ModelKind::kSis, {"A"}, options);
    std::fprintf(stderr, "# characterized %s: %zu-D tables\n",
                 inv.cell_name.c_str(), inv.dim());

    const engine::HistoryStimulus stim =
        engine::nor2_history(engine::HistoryCase::kFast10, tech.vdd);
    engine::GoldenCell golden(lib, "NOR2", {{"A", stim.a}, {"B", stim.b}},
                              engine::LoadSpec{5e-15, 0, ""});
    spice::TranOptions topt;
    topt.tstop = 3.2e-9;
    topt.dt = 1e-12;
    (void)golden.run(topt);

    if (!trace_path.empty()) {
        if (obs::stop_trace())
            std::fprintf(stderr, "# wrote trace %s\n", trace_path.c_str());
        else
            std::fprintf(stderr, "# cannot write trace %s\n",
                         trace_path.c_str());
    }

    const obs::Snapshot snap = obs::snapshot();
    std::fputs(json ? snap.to_json().c_str() : snap.format_human().c_str(),
               stdout);
    return 0;
}
