// mcsm_lint: standalone pre-flight auditor for MCSM store artifacts.
//
// Walks the given store files (.csm.bin / .csm / .surf.bin) or directories
// of them through analysis::audit_path and prints every diagnostic --
// severity, rule id, offending objects, fix hint. The same checks gate
// ModelRepository loads (RepositoryOptions::lint_on_load); this tool runs
// them without a serving process, e.g. in CI over a model store artifact.
//
//   usage: mcsm_lint [--strict] [--demo] [path ...]
//     path      store file or directory of store files
//     --strict  non-zero exit on warnings too, not just errors
//     --demo    lint built-in demonstration artifacts instead of (or in
//               addition to) paths: a defective netlist, a clean netlist,
//               and a NaN-poisoned model. Needs no files; the CI smoke
//               test runs this mode.
//
//   exit status: 0 clean, 1 diagnostics at the gating severity, 2 usage
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "analysis/circuit_lint.h"
#include "analysis/model_audit.h"
#include "lut/axis.h"
#include "spice/circuit.h"
#include "spice/source_spec.h"

using namespace mcsm;

namespace {

constexpr const char* kUsage =
    "usage: mcsm_lint [--strict] [--demo] [path ...]\n"
    "  path      model/surface store file (.csm.bin, .csm, .surf.bin) or a\n"
    "            directory of them\n"
    "  --strict  exit 1 on warnings too, not just errors\n"
    "  --demo    lint built-in demonstration artifacts (no files needed)\n";

void print_report(const char* title, const analysis::LintReport& report) {
    std::printf("== %s\n", title);
    if (report.empty()) {
        std::printf("   clean (no diagnostics)\n");
    } else {
        for (const analysis::Diagnostic& d : report.diagnostics())
            std::printf("   %s\n", d.format().c_str());
    }
    std::printf("   %zu error(s), %zu warning(s)\n\n", report.error_count(),
                report.warning_count());
}

// A netlist seeded with most of the defect classes the linter knows:
// floating and dangling nodes, a voltage-source loop, nonphysical element
// values, a capacitively-suspended node with no DC path, and a structurally
// singular MNA pattern (a node fed only by a current source).
analysis::LintReport lint_defective_demo() {
    spice::Circuit c;
    const int in = c.node("in");
    const int out = c.node("out");
    c.node("nowhere");  // floating: no device terminal ever touches it
    const int island = c.node("island");
    const int cap_only = c.node("cap_only");

    c.add_vsource("Vin", in, spice::Circuit::kGround,
                  spice::SourceSpec::dc(1.2));
    // Same two terminals as Vin: an ideal-source loop (and a singular MNA).
    c.add_vsource("Vdup", in, spice::Circuit::kGround,
                  spice::SourceSpec::dc(1.1));
    // Negative values are rejected at construction; non-finite ones slip
    // through the ctor guards (inf > 0) and only the linter names them.
    constexpr double kInf = std::numeric_limits<double>::infinity();
    c.add_resistor("Rinf", in, out, kInf);
    c.add_capacitor("Cinf", out, spice::Circuit::kGround, kInf);
    c.add_capacitor("Czero", out, spice::Circuit::kGround, 0.0);
    // cap_only hangs off `out` through a capacitor alone: no DC path.
    c.add_capacitor("Chang", out, cap_only, 1e-15);
    // island is driven only by a current source: its MNA row is empty at
    // DC and in transient -- the structural-singularity detector names it.
    c.add_isource("Ifloat", island, spice::Circuit::kGround,
                  spice::SourceSpec::dc(1e-6));
    return analysis::lint_circuit(c);
}

// The same rules on a healthy RC divider: must stay silent.
analysis::LintReport lint_clean_demo() {
    spice::Circuit c;
    const int in = c.node("in");
    const int mid = c.node("mid");
    c.add_vsource("Vin", in, spice::Circuit::kGround,
                  spice::SourceSpec::dc(1.2));
    c.add_resistor("R1", in, mid, 1e3);
    c.add_resistor("R2", mid, spice::Circuit::kGround, 1e3);
    c.add_capacitor("C1", mid, spice::Circuit::kGround, 1e-15);
    return analysis::lint_circuit(c);
}

// A shape-consistent SIS model poisoned with a NaN payload value and a
// grid that misses the upper rail: what a corrupt or mis-characterized
// store entry looks like to audit_model.
analysis::LintReport lint_poisoned_model_demo() {
    core::CsmModel m;
    m.kind = core::ModelKind::kSis;
    m.cell_name = "DEMO_INV";
    m.vdd = 1.2;
    m.dv_margin = 0.12;
    m.pins = {"A"};

    const lut::Axis va("A", {-0.12, 0.0, 0.6, 1.2, 1.32});
    // Covers only [0, 0.9] V: fails the rail-coverage rule at vdd = 1.2.
    const lut::Axis vo_short("out", {0.0, 0.45, 0.9});
    m.i_out = lut::NdTable({va, vo_short}, "Io");
    m.i_out.set_grid_value(std::vector<std::size_t>{1, 1},
                           std::nan(""));  // poisoned payload
    const lut::Axis vo("out", {-0.12, 0.0, 0.6, 1.2, 1.32});
    m.c_miller = {lut::NdTable({va, vo}, "Cm_A")};
    m.c_out = lut::NdTable({va, vo}, "Co");
    m.c_in = {lut::NdTable({va}, "Cin_A")};
    return analysis::audit_model(m);
}

}  // namespace

int main(int argc, char** argv) {
    bool strict = false;
    bool demo = false;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--strict") == 0) {
            strict = true;
        } else if (std::strcmp(argv[i], "--demo") == 0) {
            demo = true;
        } else if (std::strcmp(argv[i], "--help") == 0) {
            std::fputs(kUsage, stdout);
            return 0;
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "mcsm_lint: unknown option %s\n%s", argv[i],
                         kUsage);
            return 2;
        } else {
            paths.emplace_back(argv[i]);
        }
    }
    if (!demo && paths.empty()) {
        std::fputs(kUsage, stderr);
        return 2;
    }

    std::size_t errors = 0;
    std::size_t warnings = 0;
    const auto tally = [&](const analysis::LintReport& r) {
        errors += r.error_count();
        warnings += r.warning_count();
    };

    if (demo) {
        const analysis::LintReport defective = lint_defective_demo();
        print_report("demo: defective netlist", defective);
        const analysis::LintReport clean = lint_clean_demo();
        print_report("demo: clean RC netlist", clean);
        const analysis::LintReport poisoned = lint_poisoned_model_demo();
        print_report("demo: NaN-poisoned SIS model", poisoned);
        // The demo demonstrates the rules; it only fails the run when the
        // linter itself misbehaves (missed defects or false positives).
        if (defective.error_count() == 0 || !clean.empty() ||
            poisoned.error_count() == 0) {
            std::fprintf(stderr,
                         "mcsm_lint: demo expectations violated "
                         "(defective=%zu clean=%zu poisoned=%zu)\n",
                         defective.error_count(), clean.size(),
                         poisoned.error_count());
            return 1;
        }
    }

    for (const std::string& path : paths) {
        const analysis::LintReport report = analysis::audit_path(path);
        print_report(path.c_str(), report);
        tally(report);
    }

    std::printf("mcsm_lint: %zu error(s), %zu warning(s) across %zu path(s)%s\n",
                errors, warnings, paths.size(), demo ? " + demo" : "");
    if (errors > 0 || (strict && warnings > 0)) return 1;
    return 0;
}
