// Quickstart: characterize an MCSM model for a NOR2 cell, simulate a
// multiple-input-switching event with it, and compare against the
// transistor-level reference — the core loop of the library in ~80 lines.
//
//   $ ./quickstart
//
#include <cmath>
#include <cstdio>

#include "cells/library.h"
#include "core/characterizer.h"
#include "core/model_io.h"
#include "core/model_scenarios.h"
#include "engine/scenarios.h"
#include "tech/tech130.h"
#include "wave/metrics.h"

using namespace mcsm;

int main() {
    // 1. Technology and transistor-level cell library (the HSPICE-substitute
    //    substrate everything is validated against).
    const tech::Technology tech = tech::make_tech130();
    const cells::CellLibrary lib(tech);

    // 2. Characterize the paper's model: Io/IN current-source tables by DC
    //    sweeps, capacitances by the fast model-linearization (pass
    //    transient_caps=true for the paper-faithful ramp extraction).
    const core::Characterizer characterizer(lib);
    core::CharOptions options;
    options.transient_caps = false;
    options.grid_points = 11;
    const core::CsmModel nor2 = characterizer.characterize(
        "NOR2", core::ModelKind::kMcsm, {"A", "B"}, options);
    std::printf("characterized %s (%s): %zu switching pins, %zu internal "
                "node(s), %zu-D tables with %zu entries each\n",
                nor2.cell_name.c_str(), core::to_string(nor2.kind),
                nor2.pin_count(), nor2.internal_count(), nor2.dim(),
                nor2.i_out.value_count());

    // Models are plain text on disk - cache them across runs.
    core::save_model("nor2_mcsm.csm", nor2);
    const core::CsmModel reloaded = core::load_model("nor2_mcsm.csm");

    // 3. Build a MIS stimulus: the paper's worst case, where the input
    //    history ('10' vs '01') decides the initial stack-node charge.
    const engine::HistoryStimulus stim =
        engine::nor2_history(engine::HistoryCase::kSlow01, tech.vdd);

    // 4. Simulate the model (implicit engine) and the golden circuit.
    spice::TranOptions topt;
    topt.tstop = 3.2e-9;
    topt.dt = 1e-12;

    core::ModelLoadSpec load;
    load.cap = 5e-15;
    core::ModelCell model_bench(reloaded, {{"A", stim.a}, {"B", stim.b}},
                                load);
    const wave::Waveform model_out =
        model_bench.run(topt).node_waveform(model_bench.out_node());

    engine::GoldenCell golden_bench(lib, "NOR2",
                                    {{"A", stim.a}, {"B", stim.b}},
                                    engine::LoadSpec{5e-15, 0, ""});
    const wave::Waveform golden_out =
        golden_bench.run(topt).node_waveform(golden_bench.out_node());

    // 5. Compare: 50% delay and waveform RMSE (paper eq. (6)).
    const double t_from = stim.t_final - 0.2e-9;
    const double d_model =
        wave::delay_50(stim.a, false, model_out, true, tech.vdd, t_from)
            .value_or(-1);
    const double d_golden =
        wave::delay_50(stim.a, false, golden_out, true, tech.vdd, t_from)
            .value_or(-1);
    const double nrmse = wave::rmse_normalized(
        golden_out, model_out, t_from, t_from + 0.7e-9, tech.vdd);

    std::printf("golden delay: %.2f ps\n", d_golden * 1e12);
    std::printf("MCSM delay:   %.2f ps  (error %.2f%%)\n", d_model * 1e12,
                100.0 * std::fabs(d_model - d_golden) / d_golden);
    std::printf("waveform RMSE: %.2f%% of Vdd\n", 100.0 * nrmse);
    return 0;
}
