// Network timing daemon: the socket front end (net/server) over the full
// serving stack, plus the pack-store utilities that feed it. One binary
// covers the operational loop: build an mmap pack from a per-file store,
// serve it over unix/TCP sockets with micro-batching, hot-reload it in
// place, and talk to a running daemon as a client. Run with --help.
#include <csignal>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "cells/library.h"
#include "net/client.h"
#include "net/query_text.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "serve/mapped_store.h"
#include "serve/repository.h"
#include "serve/timing_service.h"
#include "tech/tech130.h"

using namespace mcsm;

namespace {

constexpr const char* kUsage = R"(timing_serverd -- socket timing server over an mmap'd model pack

Usage:
  timing_serverd [--unix <path>] [--port <n>] [serve options]
      Serve the line protocol (same query grammar as timing_server; see
      timing_server --help) on a unix socket and/or TCP loopback port.
      --port 0 binds an ephemeral port; the bound address is announced on
      stdout as "# listening unix=<path> tcp=<port>" before serving.
      SIGINT/SIGTERM flush the pending batch, drain responses and exit.

  timing_serverd --build-pack <pack> --model-dir <dir> [--surface-dir <dir>]
      Bundle a per-file binary store into one mmap-able pack file
      (published durably: fsync + rename) and exit.

  timing_serverd --client --unix <path> | --client --port <n>
      Pipe stdin to a running daemon and stream its responses to stdout
      (write side half-closes at EOF, so the daemon flushes the final
      batch). Sized for operational batches, not bulk transfers: input is
      sent before responses are read.

  timing_serverd --demo
      Self-contained smoke run (also the CTest wiring): starts an
      in-process server on a unix socket, exercises queries, flush, stats
      and malformed lines through a real client connection, prints the
      server counters and exits.

Serve options:
  --pack <path>        mmap pack served zero-parse (models + surfaces);
                       hot-reloadable
  --reload-ms <n>      poll the pack file for replacement every n ms
                       (a "reload" protocol line forces a check any time)
  --model-dir <dir>    per-file model store fallback; misses characterize
                       on demand and write back
  --surface-dir <dir>  per-file surface store fallback
  --batch-max <n>      micro-batch size cap              (default 512)
  --linger-us <n>      micro-batch latency bound in us   (default 200)
  --max-pending <n>    admission cap; excess queries get "err <id> busy"
  --max-conns <n>      concurrent connection cap         (default 64)
  --threads <n>        TimingService batch fan-out       (default: cores)
)";

net::NetServer* g_server = nullptr;

void install_signal_handlers() {
    // MSG_NOSIGNAL covers the server's own sends; SIG_IGN covers anything
    // else (a client CLI writing to a closed stdout pipe).
    std::signal(SIGPIPE, SIG_IGN);
    struct sigaction sa{};
    // NetServer::stop() is one eventfd write -- async-signal-safe.
    sa.sa_handler = [](int) {
        if (g_server != nullptr) g_server->stop();
    };
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

struct Args {
    std::string unix_path;
    int port = -1;
    std::string pack;
    std::string build_pack;
    std::string model_dir;
    std::string surface_dir;
    long batch_max = 512;
    long linger_us = 200;
    long max_pending = 1 << 16;
    long max_conns = 64;
    long threads = 0;
    long reload_ms = 0;
    bool client = false;
    bool demo = false;
};

long parse_long(const std::string& value, const char* flag) {
    char* end = nullptr;
    const long v = std::strtol(value.c_str(), &end, 10);
    require(end == value.c_str() + value.size() && !value.empty() && v >= 0,
            std::string("timing_serverd: bad value for ") + flag + ": " +
                value);
    return v;
}

Args parse_args(int argc, char** argv) {
    Args a;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            require(i + 1 < argc,
                    "timing_serverd: " + arg + " needs a value");
            return argv[++i];
        };
        if (arg == "--help") {
            std::fputs(kUsage, stdout);
            std::exit(0);
        } else if (arg == "--unix") {
            a.unix_path = value();
        } else if (arg == "--port") {
            a.port = static_cast<int>(parse_long(value(), "--port"));
        } else if (arg == "--pack") {
            a.pack = value();
        } else if (arg == "--build-pack") {
            a.build_pack = value();
        } else if (arg == "--model-dir") {
            a.model_dir = value();
        } else if (arg == "--surface-dir") {
            a.surface_dir = value();
        } else if (arg == "--batch-max") {
            a.batch_max = parse_long(value(), "--batch-max");
        } else if (arg == "--linger-us") {
            a.linger_us = parse_long(value(), "--linger-us");
        } else if (arg == "--max-pending") {
            a.max_pending = parse_long(value(), "--max-pending");
        } else if (arg == "--max-conns") {
            a.max_conns = parse_long(value(), "--max-conns");
        } else if (arg == "--threads") {
            a.threads = parse_long(value(), "--threads");
        } else if (arg == "--reload-ms") {
            a.reload_ms = parse_long(value(), "--reload-ms");
        } else if (arg == "--client") {
            a.client = true;
        } else if (arg == "--demo") {
            a.demo = true;
        } else {
            std::fprintf(stderr, "timing_serverd: unknown flag %s\n",
                         arg.c_str());
            std::exit(2);
        }
    }
    return a;
}

int run_build_pack(const Args& a) {
    require(!a.model_dir.empty() || !a.surface_dir.empty(),
            "timing_serverd: --build-pack needs --model-dir and/or "
            "--surface-dir");
    const serve::PackWriter writer =
        serve::pack_from_dirs(a.model_dir, a.surface_dir);
    require(writer.entry_count() > 0,
            "timing_serverd: store directories hold no pack-able entries");
    writer.write(a.build_pack);
    std::printf("# packed %zu entries into %s\n", writer.entry_count(),
                a.build_pack.c_str());
    return 0;
}

int run_client(const Args& a) {
    require(!a.unix_path.empty() || a.port >= 0,
            "timing_serverd: --client needs --unix or --port");
    net::LineClient client =
        !a.unix_path.empty() ? net::LineClient::connect_unix(a.unix_path)
                             : net::LineClient::connect_tcp(a.port);
    std::string input;
    std::string line;
    while (std::getline(std::cin, line)) {
        input += line;
        input += '\n';
    }
    client.send_text(input);
    // Half-close: the daemon sees EOF, flushes the final batch and closes
    // after draining -- the recv loop below then terminates cleanly.
    client.shutdown_write();
    for (;;) {
        try {
            line = client.recv_line();
        } catch (const ModelError&) {
            break;  // server closed after the drain
        }
        std::printf("%s\n", line.c_str());
    }
    return 0;
}

// Shared server scaffolding for daemon and demo mode.
struct ServerStack {
    tech::Technology tech = tech::make_tech130();
    cells::CellLibrary lib{tech};
    std::shared_ptr<serve::PackHost> pack;
    std::unique_ptr<serve::ModelRepository> repo;
    std::unique_ptr<serve::TimingService> service;
    std::unique_ptr<net::NetServer> server;

    ServerStack(const Args& a, const std::string& unix_path) {
        if (!a.pack.empty())
            pack = std::make_shared<serve::PackHost>(a.pack);

        serve::RepositoryOptions ropt;
        ropt.dir = a.model_dir;
        ropt.pack = pack;
        // Demo-grade characterize-on-miss settings (see timing_server): a
        // production daemon serves a pre-characterized pack/store.
        ropt.char_options.transient_caps = false;
        ropt.char_options.grid_points = 7;
        ropt.char_options_mis3.grid_points = 4;
        repo = std::make_unique<serve::ModelRepository>(&lib, ropt);

        serve::ServeOptions sopt;
        sopt.surface_dir = a.surface_dir;
        sopt.pack = pack;
        sopt.threads = static_cast<std::size_t>(a.threads);
        service = std::make_unique<serve::TimingService>(*repo, sopt);

        net::NetServerOptions nopt;
        nopt.unix_path = unix_path;
        nopt.tcp_port = a.port;
        nopt.batch_max = static_cast<std::size_t>(a.batch_max);
        nopt.linger_us = a.linger_us;
        nopt.max_pending = static_cast<std::size_t>(a.max_pending);
        nopt.max_conns = static_cast<std::size_t>(a.max_conns);
        nopt.pack = pack;
        nopt.reload_poll_ms = a.reload_ms;
        server = std::make_unique<net::NetServer>(*service, nopt);
    }
};

void print_counters(const net::NetServer& server) {
    const net::NetServer::Counters c = server.counters();
    std::fprintf(stderr,
                 "# conns accepted=%llu refused=%llu; queries served=%llu "
                 "rejected=%llu parse_errors=%llu; batches=%llu\n",
                 static_cast<unsigned long long>(c.accepted),
                 static_cast<unsigned long long>(c.refused),
                 static_cast<unsigned long long>(c.served),
                 static_cast<unsigned long long>(c.rejected),
                 static_cast<unsigned long long>(c.parse_errors),
                 static_cast<unsigned long long>(c.batches));
}

int run_daemon(const Args& a) {
    require(!a.unix_path.empty() || a.port >= 0,
            "timing_serverd: need --unix and/or --port (or --demo)");
    ServerStack stack(a, a.unix_path);
    g_server = stack.server.get();
    std::printf("# listening unix=%s tcp=%d\n",
                a.unix_path.empty() ? "-" : a.unix_path.c_str(),
                stack.server->tcp_port());
    std::fflush(stdout);
    stack.server->run();
    g_server = nullptr;
    print_counters(*stack.server);
    return 0;
}

int run_demo(Args a) {
    // Everything in the working directory (CTest runs each test in its
    // own build dir); a tiny single-pin arc keeps the cold cost at one
    // characterization plus a 2-D surface build.
    const std::string sock = "timing_serverd_demo.sock";
    a.batch_max = 8;
    a.linger_us = 1000;
    ServerStack stack(a, sock);
    g_server = stack.server.get();
    std::thread loop([&] { stack.server->run(); });

    int failures = 0;
    const auto expect = [&](bool ok, const char* what) {
        if (!ok) {
            ++failures;
            std::fprintf(stderr, "# demo FAIL: %s\n", what);
        }
    };
    try {
        net::LineClient client = net::LineClient::connect_unix(sock);
        expect(client.request("ping") == "pong", "ping/pong");
        client.send_line("INV_X1 A rise 100 0 2");
        client.send_line("INV_X1 A rise 140 0 4");
        client.send_line("not a query at all");
        client.send_line("flush");
        for (int i = 0; i < 3; ++i) {
            std::uint64_t id = 0;
            const serve::TimingResult r =
                net::parse_result_line(client.recv_line(), id);
            if (id <= 2)
                expect(r.valid && r.delay > 0.0 && r.slew > 0.0,
                       "query result valid");
            else
                expect(!r.valid, "malformed line reported as error");
        }
        const std::string stats = client.request("stats");
        expect(stats.rfind("stats ", 0) == 0, "stats header");
        const std::size_t nbytes = static_cast<std::size_t>(
            std::strtoull(stats.c_str() + 6, nullptr, 10));
        const std::string json = client.recv_bytes(nbytes);
        expect(json.find("serve.query.lut") != std::string::npos,
               "stats json carries serve counters");
    } catch (const std::exception& e) {
        ++failures;
        std::fprintf(stderr, "# demo FAIL: %s\n", e.what());
    }

    stack.server->stop();
    loop.join();
    g_server = nullptr;
    print_counters(*stack.server);
    return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    install_signal_handlers();
    const Args args = parse_args(argc, argv);
    try {
        if (!args.build_pack.empty()) return run_build_pack(args);
        if (args.client) return run_client(args);
        if (args.demo) return run_demo(args);
        return run_daemon(args);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "timing_serverd: %s\n", e.what());
        return 1;
    }
}
