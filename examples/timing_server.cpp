// Thin CLI server loop over the serving stack: reads timing-query batches
// from a file or stdin and streams results as CSV, demonstrating
// end-to-end throughput of ModelRepository + TimingService across the full
// scenario space (1/2/3-pin MIS arcs, linear and RC pi loads, Vdd/temp
// corners). Run with --help for the query grammar.
#include <csignal>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cells/library.h"
#include "net/query_text.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/repository.h"
#include "serve/timing_service.h"
#include "tech/tech130.h"

using namespace mcsm;

namespace {

constexpr const char* kUsage = R"(timing_server -- batched CSM timing queries over the serve stack

Usage:
  timing_server --demo          built-in sweep (also the CTest smoke run);
                                prints an observability snapshot at exit
  timing_server <batch-file>    one query per line, batch flushed at EOF
  timing_server -               same, reading stdin; a line "flush"
                                executes the pending batch immediately and
                                a line "stats" prints the current
                                observability snapshot to stderr
  timing_server --stats         (combinable with any mode) print the
                                observability snapshot -- cache hit/miss
                                counters and per-query latency percentiles
                                -- to stderr at exit
  timing_server --help          this text

Query line (whitespace-separated; '#' starts a comment):
  <cell> <pins> <rise|fall> <slews_ps> <skews_ps> <load_fF> [option...]

  <pins>      1-3 comma-separated switching pins (2-3 -> MIS arc served
              from a skew-aware surface)
  <slews_ps>  per-pin 0-100% input ramps [ps], comma-separated
  <skews_ps>  per-pin edge offsets [ps], comma-separated; a lone "0"
              means simultaneous switching for any pin count
  <load_fF>   lumped output load [fF]

  options (any order, after the load):
    pi=<c_near_fF>:<r_ohm>:<c_far_fF>   RC pi load on top of load_fF
    vdd=<V>                             supply corner (default: nominal)
    temp=<degC>                         temperature corner (default 25)
    exact                               force the transient path

  examples:
    NOR2 A,B fall 80,120 0,50 4
    NAND3 A,B,C rise 80,100,120 0,40,80 6 pi=1:300:4 vdd=1.1 temp=85
    INV_X1 A rise 100 0 2 exact

  A 3-pin arc is served from a 6-D surface ([slew_a, slew_b, slew_c,
  skew_b, skew_c, load]); its first (cold) query characterizes a 6-D model
  and runs one CSM transient per surface knot -- about 2k transients with
  the default knots, vs ~450 for a 2-pin arc -- so warm it offline or
  persist surfaces via MCSM_SURFACE_DIR.

Result CSV:  index,cell,delay_ps,slew_ps,path,error

Environment:
  MCSM_MODEL_DIR    model store directory (default: in-memory only).
                    Models missing from the store are characterized on
                    demand and written back (corner models under
                    corner-suffixed keys), so the second run serves from
                    disk.
  MCSM_SURFACE_DIR  arc-surface store directory: cold surface builds are
                    persisted and reloaded by later runs.
  MCSM_TRACE=<path>         capture a Chrome trace-event JSON of the run
                            (load in Perfetto / chrome://tracing); spans
                            cover batches, queries, characterizations and
                            SPICE solves.
  MCSM_TRACE_DETAIL=1       with MCSM_TRACE: also emit per-Newton-phase
                            spans (assemble/factor/solve) -- much larger.
  MCSM_OBS_JSON=<path>      write the observability snapshot (counters,
                            gauges, latency histograms) as JSON at exit.
)";

// Batch flush on SIGINT/SIGTERM: the handler just raises a flag; the
// stdin read loop is installed WITHOUT SA_RESTART so a blocking getline
// fails with EINTR, the loop falls through, and the final run(batch)
// executes the still-pending queries before exit -- a Ctrl-C'd pipeline
// still gets answers for everything it submitted.
volatile std::sig_atomic_t g_stop = 0;

void install_signal_handlers() {
    // Results often stream into a pipe (head, awk); a closed reader must
    // surface as a failed printf, not a process-killing SIGPIPE mid-batch.
    std::signal(SIGPIPE, SIG_IGN);
    struct sigaction sa{};
    sa.sa_handler = [](int) { g_stop = 1; };
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

void stream_results(const std::vector<serve::TimingQuery>& batch,
                    const std::vector<serve::TimingResult>& results,
                    std::size_t base_index) {
    for (std::size_t i = 0; i < results.size(); ++i) {
        const serve::TimingResult& r = results[i];
        if (r.valid)
            std::printf("%zu,%s,%.4f,%.4f,%s,\n", base_index + i,
                        batch[i].cell.c_str(), r.delay * 1e12,
                        r.slew * 1e12,
                        r.path == serve::ResultPath::kLut ? "lut" : "tran");
        else
            std::printf("%zu,%s,,,error,%s\n", base_index + i,
                        batch[i].cell.c_str(), r.error.c_str());
    }
}

std::vector<serve::TimingQuery> demo_batch() {
    std::vector<serve::TimingQuery> batch;
    for (int i = 0; i < 600; ++i) {
        serve::TimingQuery q;
        if (i % 3 == 0) {
            q.cell = "INV_X1";
            q.pins = {"A"};
            q.slews = {(30 + 12.0 * (i % 17)) * 1e-12};
        } else {
            q.cell = i % 3 == 1 ? "NOR2" : "NAND2";
            q.pins = {"A", "B"};
            q.slews = {(40 + 8.0 * (i % 13)) * 1e-12,
                       (50 + 9.0 * (i % 11)) * 1e-12};
            q.skews = {0.0, (static_cast<double>(i % 21) - 10.0) * 15e-12};
        }
        q.inputs_rise = (i % 2) == 1;
        q.load_cap = (2 + (i % 8)) * 1e-15;
        // A slice of the sweep exercises the expanded scenario space: RC
        // pi loads and a hot/low-voltage corner.
        if (i % 7 == 3) {
            q.c_near = 1e-15;
            q.r_wire = 400.0 + 40.0 * (i % 9);
            q.c_far = (2 + (i % 5)) * 1e-15;
        }
        if (i % 5 == 2) q.corner = serve::Corner{1.1, 85.0};
        batch.push_back(q);
    }
    // A 3-pin MIS section (every combination of leading/lagging B and C
    // edges through the stack), small because its cold cost is a 6-D model
    // characterization plus one transient per surface knot.
    for (int i = 0; i < 60; ++i) {
        serve::TimingQuery q;
        q.cell = "NAND3";
        q.pins = {"A", "B", "C"};
        q.inputs_rise = true;  // NMOS stack discharge: the stack-effect arc
        q.slews = {(60 + 10.0 * (i % 9)) * 1e-12,
                   (70 + 12.0 * (i % 7)) * 1e-12,
                   (80 + 14.0 * (i % 5)) * 1e-12};
        q.skews = {0.0, (static_cast<double>(i % 7) - 3.0) * 30e-12,
                   (static_cast<double>(i % 11) - 5.0) * 20e-12};
        q.load_cap = (2 + (i % 6) * 3) * 1e-15;
        if (i % 4 == 1) {
            q.c_near = 1e-15;
            q.r_wire = 500.0;
            q.c_far = 4e-15;
        }
        batch.push_back(q);
    }
    return batch;
}

}  // namespace

int main(int argc, char** argv) {
    install_signal_handlers();
    bool demo = false;
    bool stats = false;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help") {
            std::fputs(kUsage, stdout);
            return 0;
        } else if (arg == "--demo") {
            demo = true;
        } else if (arg == "--stats") {
            stats = true;
        } else {
            positional.push_back(arg);
        }
    }
    // The demo doubles as the smoke/CI run; always leave its obs snapshot
    // in the log so cache behavior regressions are visible there.
    if (demo) stats = true;

    const tech::Technology tech = tech::make_tech130();
    const cells::CellLibrary lib(tech);

    serve::RepositoryOptions ropt;
    if (const char* dir = std::getenv("MCSM_MODEL_DIR")) ropt.dir = dir;
    // Demo-grade characterize-on-miss settings; a production store is
    // characterized offline with the full paper-faithful options and this
    // server only ever loads it.
    ropt.char_options.transient_caps = false;
    ropt.char_options.grid_points = 7;
    ropt.char_options_mis3.grid_points = 4;
    serve::ModelRepository repo(&lib, ropt);

    serve::ServeOptions sopt;
    if (const char* dir = std::getenv("MCSM_SURFACE_DIR"))
        sopt.surface_dir = dir;
    if (demo) {
        // Keep the smoke run's cold 3-pin surface small; real servers keep
        // the stock grid and amortize it via MCSM_SURFACE_DIR.
        sopt.slew_knots_mis3 = {50e-12, 280e-12};
        sopt.skew_knots_mis3 = {-1.5, 0.0, 1.5};
        sopt.skew_pair_knots_mis3 = {-1.5, 0.0, 1.5};
        sopt.load_knots_mis3 = {2e-15, 20e-15};
    }
    serve::TimingService service(repo, sopt);

    std::size_t served = 0;
    double busy_ms = 0.0;
    const auto run = [&](std::vector<serve::TimingQuery>& batch) {
        if (batch.empty()) return;
        const auto t0 = std::chrono::steady_clock::now();
        const std::vector<serve::TimingResult> results =
            service.run_batch(batch);
        const auto t1 = std::chrono::steady_clock::now();
        stream_results(batch, results, served);
        busy_ms +=
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        served += batch.size();
        batch.clear();
    };

    std::printf("index,cell,delay_ps,slew_ps,path,error\n");
    std::vector<serve::TimingQuery> batch;
    if (demo) {
        batch = demo_batch();
        run(batch);
        // Second pass is the warm steady state: every arc surface cached.
        batch = demo_batch();
        run(batch);
    } else {
        std::ifstream file;
        if (!positional.empty() && positional[0] != "-") {
            file.open(positional[0]);
            if (!file) {
                std::fprintf(stderr, "timing_server: cannot open %s\n",
                             positional[0].c_str());
                return 1;
            }
        }
        std::istream& in = file.is_open() ? file : std::cin;
        std::string line;
        while (std::getline(in, line)) {
            if (line == "flush") {
                run(batch);
                continue;
            }
            if (line == "stats") {
                std::fputs(obs::snapshot().format_human().c_str(), stderr);
                continue;
            }
            serve::TimingQuery q;
            try {
                // Shared wire grammar (net/query_text): the same line
                // parses identically here and across a socket, and numbers
                // go through std::from_chars -- a comma-radix LC_NUMERIC
                // locale can no longer truncate "2.5" to 2.
                if (net::parse_query_line(line, q)) batch.push_back(q);
            } catch (const std::exception& e) {
                std::fprintf(stderr, "# skipped (%s): %s\n", e.what(),
                             line.c_str());
            }
            if (g_stop != 0) break;
        }
        // EOF or signal: execute whatever is still pending (run() skips
        // the spurious empty flush when the stream ended cleanly on a
        // "flush" line).
        run(batch);
    }

    std::fprintf(stderr,
                 "# served %zu queries in %.1f ms (%.0f queries/sec, "
                 "surfaces cached: %zu)\n",
                 served, busy_ms,
                 busy_ms > 0.0 ? 1e3 * static_cast<double>(served) / busy_ms
                               : 0.0,
                 service.surface_count());
    if (stats) std::fputs(obs::snapshot().format_human().c_str(), stderr);
    if (const char* json_path = std::getenv("MCSM_OBS_JSON")) {
        if (obs::write_snapshot_json(json_path))
            std::fprintf(stderr, "# wrote obs snapshot %s\n", json_path);
        else
            std::fprintf(stderr, "# cannot write obs snapshot %s\n",
                         json_path);
    }
    return 0;
}
