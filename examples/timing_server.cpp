// Thin CLI server loop over the serving stack: reads timing-query batches
// from a file or stdin and streams results as CSV, demonstrating
// end-to-end throughput of ModelRepository + TimingService.
//
// Usage:
//   timing_server --demo          built-in sweep (also the CTest smoke run)
//   timing_server <batch-file>    one query per line, batch flushed at EOF
//   timing_server -               same, reading stdin; a line "flush"
//                                 executes the pending batch immediately
//
// Query line:  <cell> <pins> <rise|fall> <slews_ps> <skews_ps> <load_fF>
//   e.g.       NOR2 A,B fall 80,120 0,50 4
// comma-separated per-pin slews/skews; '#' starts a comment line.
//
// Result CSV:  index,cell,delay_ps,slew_ps,path,error
//
// Environment:
//   MCSM_MODEL_DIR   model store directory (default: in-memory only).
//                    Models missing from the store are characterized on
//                    demand and written back, so the second run serves
//                    from disk.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cells/library.h"
#include "serve/repository.h"
#include "serve/timing_service.h"
#include "tech/tech130.h"

using namespace mcsm;

namespace {

std::vector<double> parse_ps_list(const std::string& csv) {
    std::vector<double> out;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ','))
        out.push_back(std::stod(item) * 1e-12);
    return out;
}

std::vector<std::string> parse_name_list(const std::string& csv) {
    std::vector<std::string> out;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ',')) out.push_back(item);
    return out;
}

// Parses one query line; returns false on blank/comment lines and throws
// ModelError on malformed ones (reported per line, batch continues).
bool parse_query(const std::string& line, serve::TimingQuery& q) {
    std::stringstream ss(line);
    std::string cell;
    std::string pins;
    std::string dir;
    std::string slews;
    std::string skews;
    double load_ff = 0.0;
    if (!(ss >> cell) || cell.empty() || cell[0] == '#') return false;
    require(static_cast<bool>(ss >> pins >> dir >> slews >> skews >> load_ff),
            "malformed query line: " + line);
    require(dir == "rise" || dir == "fall",
            "edge direction must be rise|fall: " + line);
    q = serve::TimingQuery{};
    q.cell = cell;
    q.pins = parse_name_list(pins);
    q.inputs_rise = dir == "rise";
    q.slews = parse_ps_list(slews);
    q.skews = parse_ps_list(skews);
    q.load_cap = load_ff * 1e-15;
    return true;
}

void stream_results(const std::vector<serve::TimingQuery>& batch,
                    const std::vector<serve::TimingResult>& results,
                    std::size_t base_index) {
    for (std::size_t i = 0; i < results.size(); ++i) {
        const serve::TimingResult& r = results[i];
        if (r.valid)
            std::printf("%zu,%s,%.4f,%.4f,%s,\n", base_index + i,
                        batch[i].cell.c_str(), r.delay * 1e12,
                        r.slew * 1e12,
                        r.path == serve::ResultPath::kLut ? "lut" : "tran");
        else
            std::printf("%zu,%s,,,error,%s\n", base_index + i,
                        batch[i].cell.c_str(), r.error.c_str());
    }
}

std::vector<serve::TimingQuery> demo_batch() {
    std::vector<serve::TimingQuery> batch;
    for (int i = 0; i < 600; ++i) {
        serve::TimingQuery q;
        if (i % 3 == 0) {
            q.cell = "INV_X1";
            q.pins = {"A"};
            q.slews = {(30 + 12.0 * (i % 17)) * 1e-12};
        } else {
            q.cell = i % 3 == 1 ? "NOR2" : "NAND2";
            q.pins = {"A", "B"};
            q.slews = {(40 + 8.0 * (i % 13)) * 1e-12,
                       (50 + 9.0 * (i % 11)) * 1e-12};
            q.skews = {0.0, (static_cast<double>(i % 21) - 10.0) * 15e-12};
        }
        q.inputs_rise = (i % 2) == 1;
        q.load_cap = (2 + (i % 8)) * 1e-15;
        batch.push_back(q);
    }
    return batch;
}

}  // namespace

int main(int argc, char** argv) {
    const tech::Technology tech = tech::make_tech130();
    const cells::CellLibrary lib(tech);

    serve::RepositoryOptions ropt;
    if (const char* dir = std::getenv("MCSM_MODEL_DIR")) ropt.dir = dir;
    // Demo-grade characterize-on-miss settings; a production store is
    // characterized offline with the full paper-faithful options and this
    // server only ever loads it.
    ropt.char_options.transient_caps = false;
    ropt.char_options.grid_points = 7;
    serve::ModelRepository repo(&lib, ropt);
    serve::TimingService service(repo, serve::ServeOptions{});

    std::size_t served = 0;
    double busy_ms = 0.0;
    const auto run = [&](std::vector<serve::TimingQuery>& batch) {
        if (batch.empty()) return;
        const auto t0 = std::chrono::steady_clock::now();
        const std::vector<serve::TimingResult> results =
            service.run_batch(batch);
        const auto t1 = std::chrono::steady_clock::now();
        stream_results(batch, results, served);
        busy_ms +=
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        served += batch.size();
        batch.clear();
    };

    std::printf("index,cell,delay_ps,slew_ps,path,error\n");
    std::vector<serve::TimingQuery> batch;
    if (argc > 1 && std::string(argv[1]) == "--demo") {
        batch = demo_batch();
        run(batch);
        // Second pass is the warm steady state: every arc surface cached.
        batch = demo_batch();
        run(batch);
    } else {
        std::ifstream file;
        if (argc > 1 && std::string(argv[1]) != "-") {
            file.open(argv[1]);
            if (!file) {
                std::fprintf(stderr, "timing_server: cannot open %s\n",
                             argv[1]);
                return 1;
            }
        }
        std::istream& in = file.is_open() ? file : std::cin;
        std::string line;
        while (std::getline(in, line)) {
            if (line == "flush") {
                run(batch);
                continue;
            }
            serve::TimingQuery q;
            try {
                if (parse_query(line, q)) batch.push_back(q);
            } catch (const std::exception& e) {
                // ModelError from parse_query, std::invalid_argument from
                // std::stod on a bad number -- skip the line either way.
                std::fprintf(stderr, "# skipped (%s): %s\n", e.what(),
                             line.c_str());
            }
        }
        run(batch);
    }

    std::fprintf(stderr,
                 "# served %zu queries in %.1f ms (%.0f queries/sec, "
                 "surfaces cached: %zu)\n",
                 served, busy_ms,
                 busy_ms > 0.0 ? 1e3 * static_cast<double>(served) / busy_ms
                               : 0.0,
                 service.surface_count());
    return 0;
}
