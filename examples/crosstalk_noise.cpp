// Crosstalk noise analysis (the paper's Fig. 12 application): a victim line
// feeding NOR2 input A is coupled to an aggressor through 50 fF; this
// example sweeps the aggressor injection time around the victim transition
// and reports how the victim-path delay shifts, comparing the CSM-based
// analysis to the transistor-level reference.
#include <cmath>
#include <cstdio>

#include "cells/library.h"
#include "core/characterizer.h"
#include "core/model_scenarios.h"
#include "engine/crosstalk.h"
#include "tech/tech130.h"
#include "wave/metrics.h"

using namespace mcsm;

int main() {
    const tech::Technology tech = tech::make_tech130();
    const cells::CellLibrary lib(tech);
    const core::Characterizer characterizer(lib);

    core::CharOptions fast;
    fast.transient_caps = false;
    const core::CsmModel inv = characterizer.characterize(
        "INV_X1", core::ModelKind::kSis, {"A"}, fast);
    const core::CsmModel nor = characterizer.characterize(
        "NOR2", core::ModelKind::kMcsm, {"A", "B"}, fast);

    engine::CrosstalkConfig cfg;  // 50 fF coupling, FO2 load, 2.2 ns victim
    spice::TranOptions topt;
    topt.tstop = 4.2e-9;
    topt.dt = 2e-12;

    std::printf("aggressor injection sweep (victim arrives at %.1f ns):\n",
                cfg.t_victim * 1e9);
    std::printf("%12s %14s %14s %12s %10s\n", "t_inject/ns", "golden/ps",
                "csm/ps", "err/ps", "rmse/%vdd");

    for (double t_inj = 2.1e-9; t_inj <= 2.6e-9 + 1e-15; t_inj += 0.1e-9) {
        engine::GoldenCrosstalk golden(lib, cfg, t_inj);
        const wave::Waveform g_out =
            golden.run(topt).node_waveform(golden.nor_out());
        core::ModelCrosstalk model(inv, nor, cfg, t_inj);
        const wave::Waveform m_out =
            model.run(topt).node_waveform(model.nor_out());

        const double dg = wave::delay_50(golden.victim_input(), false, g_out,
                                         false, tech.vdd, 2.0e-9)
                              .value_or(-1);
        const double dm = wave::delay_50(model.victim_input(), false, m_out,
                                         false, tech.vdd, 2.0e-9)
                              .value_or(-1);
        const double rmse = 100.0 * wave::rmse_normalized(g_out, m_out,
                                                          2.0e-9, 4.0e-9,
                                                          tech.vdd);
        std::printf("%12.2f %14.2f %14.2f %12.2f %10.2f\n", t_inj * 1e9,
                    dg * 1e12, dm * 1e12, (dm - dg) * 1e12, rmse);
    }
    std::printf("\nnote: the delay shifts by tens of ps as the aggressor "
                "lands on the victim transition -\nexactly the effect "
                "ramp-based (NLDM) models cannot represent.\n");
    return 0;
}
