// Extension A5: the stack effect on NMOS stacks (NAND2, falling output) and
// a three-input cell (NAND3) with *two* modeled internal nodes (5-D tables).
// The paper's analysis is symmetric ("the key concepts and analyses for
// other types of logic cells ... are similar"); this bench verifies it.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table_printer.h"
#include "core/characterizer.h"
#include "core/model_scenarios.h"
#include "engine/scenarios.h"
#include "wave/edges.h"
#include "wave/metrics.h"

using namespace mcsm;
using bench::Context;

namespace {

// NAND2 history stimuli (dual of the NOR2 cases): final edge is both inputs
// rising, '00' via '10' (N precharged through the top NMOS) vs via '01'
// (N held at ground by the bottom NMOS).
engine::HistoryStimulus nand2_history(bool n_high_case, double vdd,
                                      double t_mid = 1.0e-9,
                                      double t_final = 2.0e-9,
                                      double ramp = 80e-12) {
    engine::HistoryStimulus s;
    s.t_mid = t_mid;
    s.t_final = t_final;
    s.ramp = ramp;
    if (n_high_case) {
        // '10' (A=1, B=0) -> '00' (A falls at t_mid) -> '11' (both rise).
        s.a = wave::piecewise_edges(vdd,
                                    {{t_mid, ramp, 0.0}, {t_final, ramp, vdd}});
        s.b = wave::piecewise_edges(0.0, {{t_final, ramp, vdd}});
    } else {
        // '01' (A=0, B=1) -> '00' (B falls at t_mid) -> '11'.
        s.a = wave::piecewise_edges(0.0, {{t_final, ramp, vdd}});
        s.b = wave::piecewise_edges(vdd,
                                    {{t_mid, ramp, 0.0}, {t_final, ramp, vdd}});
    }
    return s;
}

}  // namespace

int main() {
    Context& ctx = Context::get();
    const double vdd = ctx.vdd();
    const core::Characterizer chr(ctx.lib());

    std::printf("# Extension: NMOS-stack history effect (NAND2) and "
                "two-internal-node NAND3 model\n");

    // --- NAND2: history effect on the falling output -----------------------
    core::CharOptions opt = ctx.char_options(11);
    const core::CsmModel nand2 =
        chr.characterize("NAND2", core::ModelKind::kMcsm, {"A", "B"}, opt);
    const core::CsmModel nand2_base = chr.characterize(
        "NAND2", core::ModelKind::kMisBaseline, {"A", "B"}, opt);

    spice::TranOptions topt;
    topt.tstop = 3.5e-9;
    topt.dt = 1e-12;

    TablePrinter table({"scenario", "golden_ps", "mcsm_err_pct",
                        "baseline_err_pct"});
    double golden_delay[2] = {0, 0};
    double worst_mcsm = 0.0;
    double worst_base = 0.0;
    for (int i = 0; i < 2; ++i) {
        const engine::HistoryStimulus stim = nand2_history(i == 0, vdd);
        engine::GoldenCell golden(ctx.lib(), "NAND2",
                                  {{"A", stim.a}, {"B", stim.b}},
                                  engine::LoadSpec{5e-15, 0, ""});
        const wave::Waveform g =
            golden.run(topt).node_waveform(golden.out_node());
        // Output falls on the final (rising-input) edge.
        const double dg = wave::delay_50(stim.a, true, g, false, vdd,
                                         stim.t_final - 0.2e-9)
                              .value_or(-1);
        golden_delay[i] = dg;

        double err[2];
        const core::CsmModel* models[2] = {&nand2, &nand2_base};
        for (int m = 0; m < 2; ++m) {
            core::ModelLoadSpec load;
            load.cap = 5e-15;
            core::ModelCell mc(*models[m], {{"A", stim.a}, {"B", stim.b}},
                               load);
            const wave::Waveform w = mc.run(topt).node_waveform(mc.out_node());
            const double dm = wave::delay_50(stim.a, true, w, false, vdd,
                                             stim.t_final - 0.2e-9)
                                  .value_or(-1);
            err[m] = 100.0 * std::fabs(dm - dg) / dg;
        }
        worst_mcsm = std::max(worst_mcsm, err[0]);
        worst_base = std::max(worst_base, err[1]);
        table.add_row({i == 0 ? "via'10'(N high)" : "via'01'(N low)",
                       TablePrinter::num(dg * 1e12, 4),
                       TablePrinter::num(err[0], 3),
                       TablePrinter::num(err[1], 3)});
    }
    table.print_csv(std::cout);
    std::printf("# golden split between histories: %.1f%%\n",
                100.0 * std::fabs(golden_delay[0] - golden_delay[1]) /
                    std::max(golden_delay[0], golden_delay[1]));

    // --- NAND3: two internal nodes, 5-D tables ------------------------------
    core::CharOptions opt3 = ctx.char_options(7);
    opt3.transient_caps = false;  // 5-D ramp sweeps are bench-prohibitive
    const core::CsmModel nand3 =
        chr.characterize("NAND3", core::ModelKind::kMcsm, {"A", "B"}, opt3);
    std::printf("# NAND3 MCSM: dim=%zu internals=%zu table entries=%zu\n",
                nand3.dim(), nand3.internal_count(),
                nand3.i_out.value_count());

    const engine::MisStimulus mis3 = engine::nor2_simultaneous_fall(vdd);
    // For NAND3, the MIS event of interest is both inputs rising.
    const wave::Waveform a3 =
        wave::piecewise_edges(0.0, {{2.0e-9, 80e-12, vdd}});
    const wave::Waveform b3 =
        wave::piecewise_edges(0.0, {{2.0e-9, 80e-12, vdd}});
    (void)mis3;
    engine::GoldenCell g3(ctx.lib(), "NAND3", {{"A", a3}, {"B", b3}},
                          engine::LoadSpec{5e-15, 0, ""});
    const wave::Waveform gw3 = g3.run(topt).node_waveform(g3.out_node());
    core::ModelLoadSpec load3;
    load3.cap = 5e-15;
    core::ModelCell m3(nand3, {{"A", a3}, {"B", b3}}, load3);
    const wave::Waveform mw3 = m3.run(topt).node_waveform(m3.out_node());
    const double dg3 =
        wave::delay_50(a3, true, gw3, false, vdd, 1.8e-9).value_or(-1);
    const double dm3 =
        wave::delay_50(a3, true, mw3, false, vdd, 1.8e-9).value_or(-1);
    const double err3 = 100.0 * std::fabs(dm3 - dg3) / dg3;
    std::printf("# NAND3 MIS: golden %.2f ps, MCSM %.2f ps, err %.2f%%\n",
                dg3 * 1e12, dm3 * 1e12, err3);

    bench::Checker check;
    check.check(std::fabs(golden_delay[0] - golden_delay[1]) /
                        std::max(golden_delay[0], golden_delay[1]) >
                    0.03,
                "NAND2 shows a history effect on the NMOS stack");
    check.check(worst_mcsm < 6.0, "NAND2 MCSM within 6%");
    check.check(worst_base > worst_mcsm,
                "NAND2 baseline (no internal node) is worse");
    check.check(err3 < 8.0, "NAND3 two-internal-node model within 8%");
    return check.exit_code();
}
