// Extension A10: statistical use of the model (the context of ref. [5],
// which applies current-based models to statistical delay analysis). For a
// set of deterministic pseudo-random process corners, the NOR2 is
// re-characterized per corner and the MIS delay is compared model-vs-golden:
// the model must track the corner-to-corner delay spread, not just the
// nominal point.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "cells/library.h"
#include "common/table_printer.h"
#include "core/characterizer.h"
#include "core/model_scenarios.h"
#include "engine/scenarios.h"
#include "wave/metrics.h"

using namespace mcsm;
using bench::Context;

int main() {
    Context& ctx = Context::get();
    const double vdd = ctx.vdd();

    std::printf("# Extension: MCSM across process corners (statistical use, "
                "cf. ref. [5])\n");

    const engine::HistoryStimulus stim =
        engine::nor2_history(engine::HistoryCase::kSlow01, vdd);
    spice::TranOptions topt;
    topt.tstop = 3.6e-9;
    topt.dt = 1e-12;

    TablePrinter table({"corner", "dvt_n_mV", "kp_scale", "golden_ps",
                        "mcsm_ps", "err_pct"});
    const int corners = 12;
    double golden_min = 1e9;
    double golden_max = -1e9;
    double worst_err = 0.0;
    double sum_g = 0.0;
    double sum_m = 0.0;
    double sum_gg = 0.0;
    double sum_mm = 0.0;
    double sum_gm = 0.0;

    for (int k = 0; k < corners; ++k) {
        const tech::ProcessCorner corner =
            k == 0 ? tech::ProcessCorner{}  // nominal first
                   : tech::sample_corner(1000u + static_cast<unsigned>(k));
        const tech::Technology t =
            tech::apply_corner(tech::make_tech130(), corner);
        const cells::CellLibrary lib(t);

        const core::Characterizer chr(lib);
        core::CharOptions opt;
        opt.transient_caps = false;
        opt.grid_points = 9;
        const core::CsmModel nor =
            chr.characterize("NOR2", core::ModelKind::kMcsm, {"A", "B"}, opt);

        engine::GoldenCell golden(lib, "NOR2",
                                  {{"A", stim.a}, {"B", stim.b}},
                                  engine::LoadSpec{5e-15, 0, ""});
        const wave::Waveform g =
            golden.run(topt).node_waveform(golden.out_node());
        core::ModelLoadSpec load;
        load.cap = 5e-15;
        core::ModelCell cell(nor, {{"A", stim.a}, {"B", stim.b}}, load);
        const wave::Waveform w = cell.run(topt).node_waveform(cell.out_node());

        const double t_from = stim.t_final - 0.2e-9;
        const double dg = wave::delay_50(stim.a, false, g, true, vdd, t_from)
                              .value_or(-1);
        const double dm = wave::delay_50(stim.a, false, w, true, vdd, t_from)
                              .value_or(-1);
        const double err = 100.0 * std::fabs(dm - dg) / dg;
        worst_err = std::max(worst_err, err);
        golden_min = std::min(golden_min, dg);
        golden_max = std::max(golden_max, dg);
        sum_g += dg;
        sum_m += dm;
        sum_gg += dg * dg;
        sum_mm += dm * dm;
        sum_gm += dg * dm;
        table.add_row({std::to_string(k),
                       TablePrinter::num(corner.nmos_dvt * 1e3, 3),
                       TablePrinter::num(corner.kp_scale, 4),
                       TablePrinter::num(dg * 1e12, 4),
                       TablePrinter::num(dm * 1e12, 4),
                       TablePrinter::num(err, 3)});
    }
    table.print_csv(std::cout);

    const double n = corners;
    const double cov = sum_gm / n - (sum_g / n) * (sum_m / n);
    const double var_g = sum_gg / n - (sum_g / n) * (sum_g / n);
    const double var_m = sum_mm / n - (sum_m / n) * (sum_m / n);
    const double corr = cov / std::sqrt(var_g * var_m);
    std::printf("# golden spread %.2f..%.2f ps; worst model error %.2f%%; "
                "corner-to-corner correlation %.4f\n",
                golden_min * 1e12, golden_max * 1e12, worst_err, corr);

    bench::Checker check;
    check.check(golden_max - golden_min > 1e-12,
                "corners produce a visible delay spread");
    check.check(worst_err < 6.0, "model within 6% at every corner");
    check.check(corr > 0.99,
                "model tracks the golden corner-to-corner variation");
    return check.exit_code();
}
