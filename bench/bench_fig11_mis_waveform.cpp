// Fig. 11: simultaneous switching of both NOR2 inputs - MCSM vs golden vs
// the SIS CSM of ref. [5], which can only model one switching input and
// therefore errs significantly on MIS events.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table_printer.h"
#include "core/model_scenarios.h"
#include "engine/scenarios.h"
#include "wave/metrics.h"

using namespace mcsm;
using bench::Context;

int main() {
    Context& ctx = Context::get();
    const double vdd = ctx.vdd();

    std::printf("# Fig. 11: simultaneous A/B switching on NOR2: golden vs "
                "MCSM vs SIS CSM [5]\n");

    const engine::MisStimulus stim = engine::nor2_simultaneous_fall(vdd);
    spice::TranOptions topt;
    topt.tstop = 3.2e-9;
    topt.dt = 1e-12;

    engine::GoldenCell golden(ctx.lib(), "NOR2",
                              {{"A", stim.a}, {"B", stim.b}},
                              engine::LoadSpec{0.0, 2, "INV_X1"});
    const wave::Waveform g_out =
        golden.run(topt).node_waveform(golden.out_node());

    core::ModelLoadSpec load;
    load.fanout_count = 2;
    load.receiver = &ctx.inv_sis();

    core::ModelCell mcsm(ctx.nor_mcsm(), {{"A", stim.a}, {"B", stim.b}},
                         load);
    const wave::Waveform m_out = mcsm.run(topt).node_waveform(mcsm.out_node());

    // SIS CSM: only input A is modeled; B is frozen at its non-controlling
    // value inside the model tables, so the B transition is invisible to it.
    core::ModelCell sis(ctx.nor_sis_a(), {{"A", stim.a}}, load);
    const wave::Waveform s_out = sis.run(topt).node_waveform(sis.out_node());

    bench::print_waveform_header(
        {"A", "OUT_golden", "OUT_mcsm", "OUT_sis_csm"});
    bench::print_waveform_rows({&stim.a, &g_out, &m_out, &s_out}, 1.9e-9,
                               2.6e-9, 5e-12);

    const double t_from = stim.t_edge - 0.2e-9;
    const double dg =
        wave::delay_50(stim.a, false, g_out, true, vdd, t_from).value_or(-1);
    const double dm =
        wave::delay_50(stim.a, false, m_out, true, vdd, t_from).value_or(-1);
    const double ds =
        wave::delay_50(stim.a, false, s_out, true, vdd, t_from).value_or(-1);
    const double rmse_m = wave::rmse_normalized(g_out, m_out, 1.9e-9, 2.8e-9, vdd);
    const double rmse_s = wave::rmse_normalized(g_out, s_out, 1.9e-9, 2.8e-9, vdd);

    TablePrinter table({"model", "delay_ps", "delay_err_pct", "rmse_pct_vdd"});
    table.add_row({"golden", TablePrinter::num(dg * 1e12, 4), "0", "0"});
    table.add_row({"MCSM", TablePrinter::num(dm * 1e12, 4),
                   TablePrinter::num(100.0 * std::fabs(dm - dg) / dg, 3),
                   TablePrinter::num(100.0 * rmse_m, 3)});
    table.add_row({"SIS_CSM", TablePrinter::num(ds * 1e12, 4),
                   TablePrinter::num(100.0 * std::fabs(ds - dg) / dg, 3),
                   TablePrinter::num(100.0 * rmse_s, 3)});
    table.print_csv(std::cout);
    std::printf("# paper: MCSM accurately models the waveform, SIS CSM shows "
                "significant error under MIS\n");

    bench::Checker check;
    check.check(dg > 0 && dm > 0 && ds > 0, "all transitions measured");
    check.check(std::fabs(dm - dg) / dg < 0.05,
                "MCSM delay within 5% of golden");
    check.check(std::fabs(ds - dg) > 2.0 * std::fabs(dm - dg),
                "SIS CSM error at least 2x the MCSM error");
    check.check(rmse_m < rmse_s, "MCSM waveform RMSE beats SIS CSM");
    return check.exit_code();
}
