// Fig. 12: crosstalk noise experiment. NOR2 input A is driven through a
// victim line coupled (50 fF) to an aggressor line; both lines are driven by
// minimum-sized inverters and the NOR2 carries an FO2 load. The victim
// transition arrives at 2.2 ns; the aggressor injection time sweeps
// 2.0 -> 3.0 ns. For each point: 50% delay error between MCSM and golden
// (paper: a few ps, peaking when the aggressor lands on the transition) and
// the waveform RMSE (paper: average 1.4% of Vdd).
//
// MCSM_FIG12_STEP_PS overrides the sweep step (default 20 ps; the paper
// uses 10 ps - set 10 for the full-resolution run).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "bench_util.h"
#include "common/table_printer.h"
#include "core/model_scenarios.h"
#include "engine/crosstalk.h"
#include "wave/metrics.h"

using namespace mcsm;
using bench::Context;

int main() {
    Context& ctx = Context::get();
    const double vdd = ctx.vdd();

    double step_ps = 20.0;
    if (const char* s = std::getenv("MCSM_FIG12_STEP_PS"))
        step_ps = std::atof(s);

    std::printf("# Fig. 12: victim delay error vs aggressor injection time "
                "(step %.0f ps)\n", step_ps);

    engine::CrosstalkConfig cfg;
    spice::TranOptions topt;
    topt.tstop = 4.2e-9;
    topt.dt = 2e-12;

    TablePrinter table({"t_inject_ns", "golden_delay_ps", "mcsm_delay_ps",
                        "delay_error_ps", "rmse_pct_vdd"});
    double rmse_sum = 0.0;
    double max_err = 0.0;
    int count = 0;
    int measured = 0;

    for (double t_inj = 2.0e-9; t_inj <= 3.0e-9 + 1e-15;
         t_inj += step_ps * 1e-12) {
        engine::GoldenCrosstalk golden(ctx.lib(), cfg, t_inj);
        const spice::TranResult gr = golden.run(topt);
        const wave::Waveform g_out = gr.node_waveform(golden.nor_out());

        core::ModelCrosstalk model(ctx.inv_sis(), ctx.nor_mcsm(), cfg, t_inj);
        const spice::TranResult mr = model.run(topt);
        const wave::Waveform m_out = mr.node_waveform(model.nor_out());

        const auto dg = wave::delay_50(golden.victim_input(), false, g_out,
                                       false, vdd, 2.0e-9);
        const auto dm = wave::delay_50(model.victim_input(), false, m_out,
                                       false, vdd, 2.0e-9);
        const double rmse =
            wave::rmse_normalized(g_out, m_out, 2.0e-9, 4.0e-9, vdd);
        rmse_sum += rmse;
        ++count;

        double err_ps = -1.0;
        if (dg && dm) {
            err_ps = (*dm - *dg) * 1e12;
            max_err = std::max(max_err, std::fabs(err_ps));
            ++measured;
        }
        table.add_row({TablePrinter::num(t_inj * 1e9, 5),
                       TablePrinter::num(dg.value_or(-1) * 1e12, 4),
                       TablePrinter::num(dm.value_or(-1) * 1e12, 4),
                       TablePrinter::num(err_ps, 3),
                       TablePrinter::num(100.0 * rmse, 3)});
    }
    table.print_csv(std::cout);

    const double avg_rmse = 100.0 * rmse_sum / count;
    std::printf("# summary: %d sweep points, avg RMSE %.2f%% of Vdd, max "
                "|delay error| %.2f ps\n",
                count, avg_rmse, max_err);
    std::printf("# paper: avg RMSE 1.4%% of Vdd, delay errors up to ~3.5 ps\n");

    bench::Checker check;
    check.check(measured == count, "delay measured at every sweep point");
    check.check(avg_rmse < 3.0, "average waveform RMSE below 3% of Vdd");
    check.check(max_err < 10.0, "max delay error below 10 ps");
    return check.exit_code();
}
