// Fig. 5: percentage difference between the low-to-high propagation delays
// of the '11'->'00' NOR2 transition under the two internal-node histories,
// as a function of the output load FO1..FO8 (golden substrate).
// Paper shape: ~26% at FO1 decreasing to ~9% at FO8.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table_printer.h"
#include "engine/scenarios.h"
#include "wave/metrics.h"

using namespace mcsm;
using bench::Context;

int main() {
    Context& ctx = Context::get();
    const double vdd = ctx.vdd();

    std::printf("# Fig. 5: history-induced delay difference vs output load "
                "(golden substrate)\n");

    spice::TranOptions topt;
    topt.tstop = 3.2e-9;
    topt.dt = 1e-12;

    TablePrinter table({"load", "delay_fast_ps", "delay_slow_ps",
                        "difference_pct"});
    std::vector<double> diffs;
    for (int fo = 1; fo <= 8; ++fo) {
        double delay[2] = {0.0, 0.0};
        const engine::HistoryCase cases[2] = {engine::HistoryCase::kFast10,
                                              engine::HistoryCase::kSlow01};
        for (int i = 0; i < 2; ++i) {
            const engine::HistoryStimulus stim =
                engine::nor2_history(cases[i], vdd);
            engine::GoldenCell cell(ctx.lib(), "NOR2",
                                    {{"A", stim.a}, {"B", stim.b}},
                                    engine::LoadSpec{0.0, fo, "INV_X1"});
            const wave::Waveform out =
                cell.run(topt).node_waveform(cell.out_node());
            delay[i] = wave::delay_50(stim.a, false, out, true, vdd,
                                      stim.t_final - 0.2e-9)
                           .value_or(-1.0);
        }
        const double diff = 100.0 * (delay[1] - delay[0]) / delay[1];
        diffs.push_back(diff);
        table.add_row({"FO" + std::to_string(fo),
                       TablePrinter::num(delay[0] * 1e12, 4),
                       TablePrinter::num(delay[1] * 1e12, 4),
                       TablePrinter::num(diff, 3)});
    }
    table.print_csv(std::cout);
    std::printf("# paper: ~26%% at FO1 decreasing to ~9%% at FO8\n");

    bench::Checker check;
    check.check(diffs.front() > 8.0 && diffs.front() < 45.0,
                "significant difference at FO1");
    check.check(diffs.back() < diffs.front(),
                "difference shrinks toward FO8");
    bool broadly_decreasing = true;
    for (std::size_t i = 1; i < diffs.size(); ++i)
        if (diffs[i] > diffs[i - 1] + 3.0) broadly_decreasing = false;
    check.check(broadly_decreasing, "trend is broadly decreasing with load");
    return check.exit_code();
}
