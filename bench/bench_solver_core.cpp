// Solver-core bench: quantifies the persistent-workspace refactor.
//
//  * Newton assembly+solve cycle (the transient hot loop) at cell and
//    flat-netlist scale, sparse workspace vs the retained dense fallback,
//  * full transient wall-clock on the same circuits,
//  * characterization wall-clock, serial dense vs parallel sparse,
//  * heap-allocation count of the steady-state Newton cycle (must be 0).
//
// Correctness gates (waveform agreement, zero allocations) drive the exit
// code; the speedups are reported for the perf log. See bench_perf_speedup
// for the machine-readable BENCH_perf.json (it times the same stages
// through the shared bench_util helpers).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/parallel.h"
#include "obs/metrics.h"
#include "spice/dc_solver.h"
#include "spice/ekv_lanes.h"
#include "spice/tran_solver.h"
#include "wave/metrics.h"

// Allocation instrumentation (see common/alloc_counter.h): counts every
// operator new in this binary.
#include "common/alloc_instrument.h"

using namespace mcsm;
using bench::Context;
using spice::Circuit;
using spice::SolverBackend;

int main() {
    Context& ctx = Context::get();
    bench::Checker check;

    std::printf("# solver core: persistent workspace + sparse LU vs dense "
                "fallback (%zu threads)\n\n", hardware_threads());

    // --- Newton cycle ----------------------------------------------------
    std::printf("%-28s %10s %10s %9s\n", "stage", "dense", "sparse",
                "speedup");
    for (int stages : {12, 48}) {
        const double d = bench::time_newton_cycle_us(ctx.lib(), stages,
                                                     SolverBackend::kDense);
        const double s = bench::time_newton_cycle_us(ctx.lib(), stages,
                                                     SolverBackend::kSparse);
        std::printf("newton_cycle_%-2d cells %6s %8.2fus %8.2fus %8.2fx\n",
                    stages, "", d, s, d / s);
    }

    // --- batched vs scalar device evaluation -----------------------------
    std::printf("\n%-28s %10s %10s %9s\n", "stage", "scalar", "batched",
                "speedup");
    for (int stages : {12, 48}) {
        const double v = bench::time_device_eval_us(ctx.lib(), stages, false);
        const double b = bench::time_device_eval_us(ctx.lib(), stages, true);
        std::printf("device_eval_%-2d cells  %7s %8.2fus %8.2fus %8.2fx\n",
                    stages, "", v, b, v / b);
        if (stages == 48)
            check.check(b < v,
                        "batched SoA device evaluation beats the virtual "
                        "scalar loop");
    }

    // --- SIMD lane kernel vs scalar fast kernel --------------------------
    // Pure device-evaluation math on the 48-cell chain batch (no stamping):
    // the dispatched lane kernel against the scalar fast kernel it mirrors.
    // Gated at >=2x only when a vector width actually dispatched (the
    // scalar fallback trivially measures 1x); min-of-5 with remeasurement
    // keeps VM scheduler noise from failing the gate.
    {
        const int width = spice::ekv_lane_width();
        std::printf("\n%-28s %10s %10s %9s\n", "stage", "scalar", "simd",
                    "speedup");
        double sc = 0.0;
        double ln = 0.0;
        bool ok = false;
        for (int attempt = 0; attempt < 3 && !ok; ++attempt) {
            sc = 1e300;
            ln = 1e300;
            for (int r = 0; r < 5; ++r) {
                sc = std::min(sc,
                              bench::time_ekv_kernel_us(ctx.lib(), 48, false));
                ln = std::min(ln,
                              bench::time_ekv_kernel_us(ctx.lib(), 48, true));
            }
            ok = width < 4 || ln * 2.0 <= sc;
        }
        std::printf("ekv_kernel_48 cells w=%d %4s %8.2fus %8.2fus %8.2fx  "
                    "(%s)\n",
                    width, "", sc, ln, sc / ln,
                    spice::ekv_lane_kernel_name());
        if (width >= 4)
            check.check(ok,
                        "vectorized full-batch EKV kernel >=2x the scalar "
                        "fast kernel (measured " + std::to_string(sc / ln) +
                            "x at width " + std::to_string(width) + ")");
        else
            std::printf("ekv_kernel gate skipped: scalar dispatch (width "
                        "%d)\n", width);
    }

    // --- multi-RHS vs single-RHS solves ----------------------------------
    std::printf("\n%-28s %10s %10s %9s\n", "stage", "single", "blocked",
                "speedup");
    for (std::size_t nrhs : {8u, 32u}) {
        const double one =
            bench::time_multi_rhs_us(ctx.lib(), 12, nrhs, false);
        const double blk = bench::time_multi_rhs_us(ctx.lib(), 12, nrhs, true);
        std::printf("multi_rhs_%-2zu 12 cells %6s %8.2fus %8.2fus %8.2fx\n",
                    nrhs, "", one, blk, one / blk);
        if (nrhs == 32)
            check.check(blk < one,
                        "blocked multi-RHS solve beats per-RHS refactor+solve");
    }

    // --- blocked DC bias sweep -------------------------------------------
    {
        const double d = bench::time_dc_sweep_ms(ctx.lib(),
                                                 SolverBackend::kDense);
        const double s = bench::time_dc_sweep_ms(ctx.lib(),
                                                 SolverBackend::kSparse);
        std::printf("\ndc_sweep_nor2 1296pt        %8.1fms %8.1fms %8.2fx\n",
                    d, s, d / s);
    }

    // --- full transient --------------------------------------------------
    wave::Waveform w_dense;
    wave::Waveform w_sparse;
    double sparse_fixed_48_ms = 0.0;
    for (int stages : {12, 48}) {
        const double d = bench::time_chain_transient_ms(
            ctx.lib(), stages, SolverBackend::kDense, &w_dense);
        const double s = bench::time_chain_transient_ms(
            ctx.lib(), stages, SolverBackend::kSparse, &w_sparse);
        if (stages == 48) sparse_fixed_48_ms = s;
        std::printf("transient_%-2d cells    %8s %8.1fms %8.1fms %8.2fx\n",
                    stages, "", d, s, d / s);
    }
    // Far-end waveform agreement between the backends (48 cells).
    double max_dv = 0.0;
    for (double t = 0.0; t <= 2.5e-9; t += 10e-12)
        max_dv = std::max(max_dv,
                          std::fabs(w_dense.at(t) - w_sparse.at(t)));
    check.check(max_dv < 1e-6,
                "dense/sparse transient waveforms agree (max dv " +
                    std::to_string(max_dv) + " V)");

    // --- adaptive transient fast path ------------------------------------
    // LTE-adaptive stepping + Jacobian reuse vs the fixed sparse grid on
    // the 48-cell chain; correctness is the far-end 50% crossing time, not
    // a pointwise voltage delta (edges amplify a few-fs time shift into
    // tens of mV).
    {
        const double vdd = ctx.vdd();
        wave::Waveform w_adapt;
        double reuse_rate = 0.0;
        const double no_reuse = bench::time_chain_transient_fast_ms(
            ctx.lib(), 48, /*reuse_jacobian=*/false);
        const double fast = bench::time_chain_transient_fast_ms(
            ctx.lib(), 48, /*reuse_jacobian=*/true, &reuse_rate, &w_adapt);
        std::printf("\n%-28s %10s %10s %9s\n", "stage", "fixed", "adaptive",
                    "speedup");
        std::printf("transient_adaptive_48 cells %8.1fms %8.1fms %8.2fx  "
                    "(no-reuse %.1fms, reuse rate %.0f%%)\n",
                    sparse_fixed_48_ms, fast, sparse_fixed_48_ms / fast,
                    no_reuse, 100.0 * reuse_rate);
        check.check(fast < sparse_fixed_48_ms,
                    "adaptive+reuse transient beats the fixed sparse grid");
        // The tuned fast path prefers a fresh factorization while the LTE
        // controller is actively resizing steps (refactors are cheap at
        // this matrix size) and freezes the LU on settled stretches, so
        // the reuse rate is a floor, not a target.
        check.check(reuse_rate > 0.15,
                    "Jacobian reuse engages on settled stretches (rate " +
                        std::to_string(reuse_rate) + ")");
        // The 48-cell far end rides the chain's last rising edge.
        const auto t50_fixed = wave::crossing(w_sparse, vdd, 0.5, true);
        const auto t50_adapt = wave::crossing(w_adapt, vdd, 0.5, true);
        check.check(t50_fixed.has_value() && t50_adapt.has_value(),
                    "both far-end waveforms cross 50%");
        if (t50_fixed && t50_adapt) {
            const double dt50 = std::fabs(*t50_adapt - *t50_fixed);
            const double budget = std::max(0.01 * *t50_fixed, 2e-12);
            check.check(dt50 < budget,
                        "adaptive far-end 50% crossing within max(1%, 2 ps) "
                        "of the fixed grid (delta " +
                            std::to_string(dt50 * 1e12) + " ps)");
        }
    }

    // --- characterization ------------------------------------------------
    {
        core::CharOptions serial = ctx.char_options(7);
        serial.transient_caps = false;
        serial.threads = 1;
        serial.backend = SolverBackend::kDense;
        core::CharOptions parallel = serial;
        parallel.threads = 0;
        parallel.backend = SolverBackend::kSparse;

        const double d = bench::time_characterize_nor2_ms(ctx.lib(), serial);
        const double s =
            bench::time_characterize_nor2_ms(ctx.lib(), parallel);
        std::printf("characterize NOR2 MCSM g7   %8.1fms %8.1fms %8.2fx\n",
                    d, s, d / s);
    }

    // --- zero-allocation guarantee ---------------------------------------
    {
        Circuit c = bench::make_chain_circuit(ctx.lib(), 12);
        c.set_solver_backend(SolverBackend::kSparse);
        const spice::DcResult op = spice::solve_dc(c);
        spice::SolverWorkspace& ws = c.workspace();
        spice::SimContext sctx;
        sctx.mode = spice::SimContext::Mode::kDc;
        sctx.x = &op.x;
        // The batched evaluate-and-stamp entry point the solvers use, plus
        // a blocked multi-RHS solve on the same factorization.
        const std::size_t n = ws.system_size();
        std::vector<double> b_block(n * 8, 1e-9);
        std::vector<double> x_block(n * 8);
        auto cycle = [&] {
            spice::Stamper& st = ws.assemble(sctx);
            st.add_gmin_everywhere(1e-12);
            (void)ws.solve();
            ws.solve_block(b_block.data(), x_block.data(), 8);
        };
        cycle();  // warm
        const std::size_t before = AllocCounter::count();
        for (int r = 0; r < 200; ++r) cycle();
        const std::size_t allocs = AllocCounter::count() - before;
        std::printf("\nnewton cycle heap allocations after prepare(): %zu\n",
                    allocs);
        check.check(allocs == 0,
                    "batched Newton assembly+solve and multi-RHS cycle is "
                    "allocation-free");
    }

    // --- observability overhead ------------------------------------------
    // The Newton cycle runs through SolverWorkspace::assemble()/solve(),
    // which carry the obs hooks (a relaxed counter add per call plus the
    // disabled-DetailSpan check). A/B with the runtime kill switch on the
    // identical binary; the <2% bound is the tentpole's overhead budget.
    // The two sides are measured in interleaved pairs (so a load burst --
    // e.g. a parallel ctest run -- hits both equally rather than biasing
    // one block), each side takes its min-of-5, and a noisy verdict gets
    // two remeasurements before it may fail the gate.
    if (obs::compiled_in()) {
        auto cycle_us = [&](bool enabled) {
            obs::set_enabled(enabled);
            return bench::time_newton_cycle_us(ctx.lib(), 48,
                                               SolverBackend::kSparse);
        };
        (void)cycle_us(true);  // warm caches and counter registry
        double off_us = 0.0;
        double on_us = 0.0;
        bool ok = false;
        for (int attempt = 0; attempt < 3 && !ok; ++attempt) {
            off_us = 1e300;
            on_us = 1e300;
            for (int r = 0; r < 5; ++r) {
                off_us = std::min(off_us, cycle_us(false));
                on_us = std::min(on_us, cycle_us(true));
            }
            ok = on_us <= off_us * 1.02;
        }
        obs::set_enabled(true);
        const double overhead =
            off_us > 0.0 ? (on_us - off_us) / off_us : 0.0;
        std::printf("\nobs overhead newton_cycle_48: off %.2fus on %.2fus "
                    "(%+.2f%%)\n",
                    off_us, on_us, 100.0 * overhead);
        check.check(ok,
                    "metrics overhead < 2% on the newton cycle (measured " +
                        std::to_string(100.0 * overhead) + "%)");
    } else {
        std::printf("\nobs overhead newton_cycle_48: skipped "
                    "(MCSM_OBS=OFF, hooks compiled out)\n");
    }

    return check.exit_code();
}
