// Solver-core bench: quantifies the persistent-workspace refactor.
//
//  * Newton assembly+solve cycle (the transient hot loop) at cell and
//    flat-netlist scale, sparse workspace vs the retained dense fallback,
//  * full transient wall-clock on the same circuits,
//  * characterization wall-clock, serial dense vs parallel sparse,
//  * heap-allocation count of the steady-state Newton cycle (must be 0).
//
// Correctness gates (waveform agreement, zero allocations) drive the exit
// code; the speedups are reported for the perf log. See bench_perf_speedup
// for the machine-readable BENCH_perf.json (it times the same stages
// through the shared bench_util helpers).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/parallel.h"
#include "spice/dc_solver.h"
#include "spice/tran_solver.h"

// Allocation instrumentation (see common/alloc_counter.h): counts every
// operator new in this binary.
#include "common/alloc_instrument.h"

using namespace mcsm;
using bench::Context;
using spice::Circuit;
using spice::SolverBackend;

int main() {
    Context& ctx = Context::get();
    bench::Checker check;

    std::printf("# solver core: persistent workspace + sparse LU vs dense "
                "fallback (%zu threads)\n\n", hardware_threads());

    // --- Newton cycle ----------------------------------------------------
    std::printf("%-28s %10s %10s %9s\n", "stage", "dense", "sparse",
                "speedup");
    for (int stages : {12, 48}) {
        const double d = bench::time_newton_cycle_us(ctx.lib(), stages,
                                                     SolverBackend::kDense);
        const double s = bench::time_newton_cycle_us(ctx.lib(), stages,
                                                     SolverBackend::kSparse);
        std::printf("newton_cycle_%-2d cells %6s %8.2fus %8.2fus %8.2fx\n",
                    stages, "", d, s, d / s);
    }

    // --- full transient --------------------------------------------------
    wave::Waveform w_dense;
    wave::Waveform w_sparse;
    for (int stages : {12, 48}) {
        const double d = bench::time_chain_transient_ms(
            ctx.lib(), stages, SolverBackend::kDense, &w_dense);
        const double s = bench::time_chain_transient_ms(
            ctx.lib(), stages, SolverBackend::kSparse, &w_sparse);
        std::printf("transient_%-2d cells    %8s %8.1fms %8.1fms %8.2fx\n",
                    stages, "", d, s, d / s);
    }
    // Far-end waveform agreement between the backends (48 cells).
    double max_dv = 0.0;
    for (double t = 0.0; t <= 2.5e-9; t += 10e-12)
        max_dv = std::max(max_dv,
                          std::fabs(w_dense.at(t) - w_sparse.at(t)));
    check.check(max_dv < 1e-6,
                "dense/sparse transient waveforms agree (max dv " +
                    std::to_string(max_dv) + " V)");

    // --- characterization ------------------------------------------------
    {
        core::CharOptions serial = ctx.char_options(7);
        serial.transient_caps = false;
        serial.threads = 1;
        serial.backend = SolverBackend::kDense;
        core::CharOptions parallel = serial;
        parallel.threads = 0;
        parallel.backend = SolverBackend::kSparse;

        const double d = bench::time_characterize_nor2_ms(ctx.lib(), serial);
        const double s =
            bench::time_characterize_nor2_ms(ctx.lib(), parallel);
        std::printf("characterize NOR2 MCSM g7   %8.1fms %8.1fms %8.2fx\n",
                    d, s, d / s);
    }

    // --- zero-allocation guarantee ---------------------------------------
    {
        Circuit c = bench::make_chain_circuit(ctx.lib(), 12);
        c.set_solver_backend(SolverBackend::kSparse);
        const spice::DcResult op = spice::solve_dc(c);
        spice::SolverWorkspace& ws = c.workspace();
        spice::SimContext sctx;
        sctx.mode = spice::SimContext::Mode::kDc;
        sctx.x = &op.x;
        auto cycle = [&] {
            spice::Stamper& st = ws.begin_assembly();
            for (const auto& dev : c.devices()) dev->stamp(st, sctx);
            st.add_gmin_everywhere(1e-12);
            (void)ws.solve();
        };
        cycle();  // warm
        const std::size_t before = AllocCounter::count();
        for (int r = 0; r < 200; ++r) cycle();
        const std::size_t allocs = AllocCounter::count() - before;
        std::printf("\nnewton cycle heap allocations after prepare(): %zu\n",
                    allocs);
        check.check(allocs == 0,
                    "Newton assembly+solve cycle is allocation-free");
    }

    return check.exit_code();
}
