// Ablation A1 (paper Section 3.4): selective modeling. The complete MCSM is
// only needed for lightly loaded cells; as the load grows, the baseline
// (no-internal-node) model converges to it. This bench sweeps the load,
// reports both models' delay errors, and shows where the selection policy
// switches.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table_printer.h"
#include "core/model_scenarios.h"
#include "core/selective.h"
#include "engine/scenarios.h"
#include "wave/metrics.h"

using namespace mcsm;
using bench::Context;

int main() {
    Context& ctx = Context::get();
    const double vdd = ctx.vdd();

    std::printf("# Ablation: selective modeling (paper Section 3.4)\n");

    const engine::HistoryStimulus stim =
        engine::nor2_history(engine::HistoryCase::kFast10, vdd);
    spice::TranOptions topt;
    topt.tstop = 3.5e-9;
    topt.dt = 1e-12;
    const core::SelectivePolicy policy;

    TablePrinter table({"load_fF", "golden_ps", "mcsm_err_pct",
                        "baseline_err_pct", "significance", "policy"});
    double err_base_light = 0.0;
    double err_base_heavy = 0.0;
    bool first = true;
    bool saw_complete = false;
    bool saw_baseline = false;
    for (const double cl : {1e-15, 2e-15, 5e-15, 10e-15, 20e-15, 50e-15,
                            100e-15}) {
        engine::GoldenCell golden(ctx.lib(), "NOR2",
                                  {{"A", stim.a}, {"B", stim.b}},
                                  engine::LoadSpec{cl, 0, ""});
        const wave::Waveform g =
            golden.run(topt).node_waveform(golden.out_node());
        const double dg = wave::delay_50(stim.a, false, g, true, vdd,
                                         stim.t_final - 0.2e-9)
                              .value_or(-1);

        core::ModelLoadSpec load;
        load.cap = cl;
        core::ModelCell mc(ctx.nor_mcsm(), {{"A", stim.a}, {"B", stim.b}},
                           load);
        const wave::Waveform m = mc.run(topt).node_waveform(mc.out_node());
        core::ModelCell bc(ctx.nor_mis_baseline(),
                           {{"A", stim.a}, {"B", stim.b}}, load);
        const wave::Waveform b = bc.run(topt).node_waveform(bc.out_node());

        const double dm = wave::delay_50(stim.a, false, m, true, vdd,
                                         stim.t_final - 0.2e-9)
                              .value_or(-1);
        const double db = wave::delay_50(stim.a, false, b, true, vdd,
                                         stim.t_final - 0.2e-9)
                              .value_or(-1);
        const double em = 100.0 * std::fabs(dm - dg) / dg;
        const double eb = 100.0 * std::fabs(db - dg) / dg;
        const double sig =
            core::internal_node_significance(ctx.nor_mcsm(), cl);
        const bool complete =
            core::needs_complete_model(ctx.nor_mcsm(), cl, policy);
        if (complete) saw_complete = true; else saw_baseline = true;
        if (first) {
            err_base_light = eb;
            first = false;
        }
        err_base_heavy = eb;

        table.add_row({TablePrinter::num(cl * 1e15, 3),
                       TablePrinter::num(dg * 1e12, 4),
                       TablePrinter::num(em, 3), TablePrinter::num(eb, 3),
                       TablePrinter::num(sig, 3),
                       complete ? "complete" : "baseline"});
    }
    table.print_csv(std::cout);
    std::printf("# paper: the internal-node effect matters for lightly "
                "loaded cells and fades as the load grows\n");

    bench::Checker check;
    check.check(err_base_light > 2.0 * err_base_heavy,
                "baseline error shrinks substantially with load");
    check.check(saw_complete && saw_baseline,
                "the policy switches between models across the sweep");
    return check.exit_code();
}
