// Fig. 10: a glitch at the NOR2 output (A falls, B rises shortly after) -
// the MCSM waveform must track the golden partial-swing pulse.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "core/model_scenarios.h"
#include "engine/scenarios.h"
#include "wave/metrics.h"

using namespace mcsm;
using bench::Context;

int main() {
    Context& ctx = Context::get();
    const double vdd = ctx.vdd();

    std::printf("# Fig. 10: NOR2 output glitch, golden vs MCSM\n");

    const engine::GlitchStimulus stim = engine::nor2_glitch(vdd, 1.5e-9, 60e-12);
    spice::TranOptions topt;
    topt.tstop = 3.0e-9;
    topt.dt = 1e-12;

    engine::GoldenCell golden(ctx.lib(), "NOR2",
                              {{"A", stim.a}, {"B", stim.b}},
                              engine::LoadSpec{0.0, 2, "INV_X1"});
    const wave::Waveform g_out =
        golden.run(topt).node_waveform(golden.out_node());

    core::ModelLoadSpec load;
    load.fanout_count = 2;
    load.receiver = &ctx.inv_sis();
    core::ModelCell model(ctx.nor_mcsm(), {{"A", stim.a}, {"B", stim.b}},
                          load);
    const wave::Waveform m_out = model.run(topt).node_waveform(model.out_node());

    bench::print_waveform_header({"A", "B", "OUT_golden", "OUT_mcsm"});
    bench::print_waveform_rows({&stim.a, &stim.b, &g_out, &m_out}, 1.3e-9,
                               2.6e-9, 5e-12);

    const double g_peak = g_out.max_value();
    const double m_peak = m_out.max_value();
    const double nrmse =
        wave::rmse_normalized(g_out, m_out, 1.3e-9, 2.8e-9, vdd);
    std::printf("# summary: glitch peak golden %.3f V, MCSM %.3f V, "
                "RMSE %.2f%% of Vdd\n",
                g_peak, m_peak, 100.0 * nrmse);

    bench::Checker check;
    check.check(g_peak > 0.25 * vdd && g_peak < 0.95 * vdd,
                "golden output glitch is a partial swing");
    check.check(std::fabs(m_peak - g_peak) < 0.1 * vdd,
                "MCSM reproduces the glitch peak within 10% of Vdd");
    check.check(nrmse < 0.05, "waveform RMSE below 5% of Vdd");
    check.check(g_out.at(2.9e-9) < 0.1 * vdd && m_out.at(2.9e-9) < 0.1 * vdd,
                "both waveforms settle low");
    return check.exit_code();
}
