// Extension A8: load independence. The paper's central argument for CSMs is
// that characterization is load-independent - "the output voltage waveform
// can be constructed for a given input voltage waveform in the presence of
// an arbitrary load". This bench drives the *same* characterized NOR2 MCSM
// into loads it was never characterized for - lumped caps, RC pi networks
// of varying resistance, and pi + fanout - and checks it still tracks
// golden at both the near and far end of the wire.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table_printer.h"
#include "core/model_scenarios.h"
#include "engine/scenarios.h"
#include "wave/metrics.h"

using namespace mcsm;
using bench::Context;

int main() {
    Context& ctx = Context::get();
    const double vdd = ctx.vdd();

    std::printf("# Extension: one characterization, arbitrary loads "
                "(paper Section 3.4)\n");

    const engine::HistoryStimulus stim =
        engine::nor2_history(engine::HistoryCase::kSlow01, vdd);
    spice::TranOptions topt;
    topt.tstop = 3.6e-9;
    topt.dt = 1e-12;

    struct LoadCase {
        const char* name;
        engine::LoadSpec golden;
        core::ModelLoadSpec model;
    };
    std::vector<LoadCase> cases;
    {
        LoadCase lumped{"lumped_5fF", {}, {}};
        lumped.golden.cap = 5e-15;
        lumped.model.cap = 5e-15;
        cases.push_back(lumped);

        for (const double r : {0.5e3, 2e3, 8e3}) {
            LoadCase pi{nullptr, {}, {}};
            static std::string names[3];
            static int k = 0;
            names[k] = "pi_r" + std::to_string(static_cast<int>(r)) + "_2fF_8fF";
            pi.name = names[k].c_str();
            ++k;
            pi.golden.pi_c1 = 2e-15;
            pi.golden.pi_r = r;
            pi.golden.pi_c2 = 8e-15;
            pi.model.pi_c1 = 2e-15;
            pi.model.pi_r = r;
            pi.model.pi_c2 = 8e-15;
            cases.push_back(pi);
        }
        LoadCase pifo{"pi_r2000_plus_FO2", {}, {}};
        pifo.golden.pi_c1 = 2e-15;
        pifo.golden.pi_r = 2e3;
        pifo.golden.pi_c2 = 4e-15;
        pifo.golden.fanout_count = 2;
        pifo.model.pi_c1 = 2e-15;
        pifo.model.pi_r = 2e3;
        pifo.model.pi_c2 = 4e-15;
        pifo.model.fanout_count = 2;
        pifo.model.receiver = &ctx.inv_sis();
        cases.push_back(pifo);
    }

    TablePrinter table({"load", "near_err_pct", "far_err_pct",
                        "far_rmse_pct_vdd"});
    bench::Checker check;
    const double t_from = stim.t_final - 0.2e-9;
    for (const LoadCase& lc : cases) {
        engine::GoldenCell golden(ctx.lib(), "NOR2",
                                  {{"A", stim.a}, {"B", stim.b}}, lc.golden);
        const spice::TranResult gr = golden.run(topt);
        const wave::Waveform g_near = gr.node_waveform(golden.out_node());
        const wave::Waveform g_far = golden.far_node() >= 0
                                         ? gr.node_waveform(golden.far_node())
                                         : g_near;

        core::ModelCell model(ctx.nor_mcsm(), {{"A", stim.a}, {"B", stim.b}},
                              lc.model);
        const spice::TranResult mr = model.run(topt);
        const wave::Waveform m_near = mr.node_waveform(model.out_node());
        const wave::Waveform m_far = model.far_node() >= 0
                                         ? mr.node_waveform(model.far_node())
                                         : m_near;

        const double dgn =
            wave::delay_50(stim.a, false, g_near, true, vdd, t_from)
                .value_or(-1);
        const double dmn =
            wave::delay_50(stim.a, false, m_near, true, vdd, t_from)
                .value_or(-1);
        const double dgf =
            wave::delay_50(stim.a, false, g_far, true, vdd, t_from)
                .value_or(-1);
        const double dmf =
            wave::delay_50(stim.a, false, m_far, true, vdd, t_from)
                .value_or(-1);
        const double near_err = 100.0 * std::fabs(dmn - dgn) / dgn;
        const double far_err = 100.0 * std::fabs(dmf - dgf) / dgf;
        const double rmse = 100.0 * wave::rmse_normalized(
                                        g_far, m_far, t_from,
                                        t_from + 1.2e-9, vdd);
        table.add_row({lc.name, TablePrinter::num(near_err, 3),
                       TablePrinter::num(far_err, 3),
                       TablePrinter::num(rmse, 3)});
        check.check(near_err < 5.0 && far_err < 5.0,
                    std::string(lc.name) + ": both ends within 5%");
    }
    table.print_csv(std::cout);
    return check.exit_code();
}
