// Fig. 4: NOR2 output waveforms for the '11'->'00' input transition under
// the two input histories (golden substrate). Out1 (case '10'->'11'->'00')
// rises earlier than Out2 ('01'->'11'->'00').
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "engine/scenarios.h"
#include "wave/metrics.h"

using namespace mcsm;
using bench::Context;

int main() {
    Context& ctx = Context::get();
    const double vdd = ctx.vdd();

    std::printf("# Fig. 4: NOR2 output waveforms for '11'->'00' under two "
                "input histories (golden substrate)\n");

    spice::TranOptions topt;
    topt.tstop = 3.2e-9;
    topt.dt = 1e-12;

    wave::Waveform out[2];
    wave::Waveform a_in;
    double delay[2] = {0.0, 0.0};
    const engine::HistoryCase cases[2] = {engine::HistoryCase::kFast10,
                                          engine::HistoryCase::kSlow01};
    for (int i = 0; i < 2; ++i) {
        const engine::HistoryStimulus stim = engine::nor2_history(cases[i], vdd);
        engine::GoldenCell cell(ctx.lib(), "NOR2",
                                {{"A", stim.a}, {"B", stim.b}},
                                engine::LoadSpec{0.0, 2, "INV_X1"});
        out[i] = cell.run(topt).node_waveform(cell.out_node());
        if (i == 0) a_in = stim.a;
        delay[i] = wave::delay_50(stim.a, false, out[i], true, vdd,
                                  stim.t_final - 0.2e-9)
                       .value_or(-1.0);
    }

    bench::print_waveform_header({"A", "Out1", "Out2"});
    bench::print_waveform_rows({&a_in, &out[0], &out[1]}, 1.9e-9, 2.5e-9,
                               5e-12);

    std::printf("# summary: delay(Out1 fast) = %.2f ps, delay(Out2 slow) = "
                "%.2f ps, difference = %.1f%%\n",
                delay[0] * 1e12, delay[1] * 1e12,
                100.0 * (delay[1] - delay[0]) / delay[1]);

    bench::Checker check;
    check.check(delay[0] > 0.0 && delay[1] > 0.0, "both transitions measured");
    check.check(delay[0] < delay[1],
                "history '10'->'11'->'00' (Out1) is faster than "
                "'01'->'11'->'00' (Out2), as in the paper");
    return check.exit_code();
}
