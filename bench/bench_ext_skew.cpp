// Extension A9: MIS skew sweep - the classic multiple-input-switching
// characterization plot. Both NOR2 inputs fall, with B skewed relative to A
// from -200 ps to +200 ps; the rising-output delay traces the MIS "valley".
// Golden vs MCSM vs the SIS CSM (which cannot see the second input and so
// produces a flat, optimistic curve on one side).
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table_printer.h"
#include "core/model_scenarios.h"
#include "engine/scenarios.h"
#include "wave/metrics.h"

using namespace mcsm;
using bench::Context;

int main() {
    Context& ctx = Context::get();
    const double vdd = ctx.vdd();

    std::printf("# Extension: NOR2 rising delay vs input skew (MIS sweep), "
                "golden vs MCSM vs SIS CSM\n");

    spice::TranOptions topt;
    topt.tstop = 3.4e-9;
    topt.dt = 1e-12;
    const double t_edge = 2.0e-9;

    TablePrinter table({"skew_ps", "golden_ps", "mcsm_ps", "sis_ps",
                        "mcsm_err_pct"});
    bench::Checker check;
    double worst_mcsm = 0.0;
    double worst_sis = 0.0;
    double golden_min = 1e9;
    double golden_max = -1e9;

    // The golden transients of the whole sweep are independent scenarios;
    // enumerate them once and fan them out over the thread pool.
    std::vector<double> skews;
    for (double skew = -200e-12; skew <= 200e-12 + 1e-15; skew += 50e-12)
        skews.push_back(skew);
    std::vector<engine::ScenarioSpec> specs;
    for (double skew : skews) {
        const engine::MisStimulus stim =
            engine::nor2_simultaneous_fall(vdd, t_edge, 80e-12, skew);
        specs.push_back({"skew", "NOR2",
                         {{"A", stim.a}, {"B", stim.b}},
                         engine::LoadSpec{5e-15, 0, ""}});
    }
    const std::vector<engine::ScenarioResult> goldens =
        engine::run_golden_scenarios(ctx.lib(), specs, topt);

    for (std::size_t i = 0; i < skews.size(); ++i) {
        const double skew = skews[i];
        const engine::MisStimulus stim =
            engine::nor2_simultaneous_fall(vdd, t_edge, 80e-12, skew);
        // Delay referenced to the LATER input edge (standard for MIS plots).
        const wave::Waveform& ref = skew >= 0.0 ? stim.b : stim.a;
        const double t_from = t_edge - 0.4e-9;

        const wave::Waveform g =
            goldens[i].result.node_waveform(goldens[i].out_node);
        const double dg =
            wave::delay_50(ref, false, g, true, vdd, t_from).value_or(-1);

        core::ModelLoadSpec load;
        load.cap = 5e-15;
        core::ModelCell mcsm(ctx.nor_mcsm(), {{"A", stim.a}, {"B", stim.b}},
                             load);
        const wave::Waveform m =
            mcsm.run(topt).node_waveform(mcsm.out_node());
        const double dm =
            wave::delay_50(ref, false, m, true, vdd, t_from).value_or(-1);

        core::ModelCell sis(ctx.nor_sis_a(), {{"A", stim.a}}, load);
        const wave::Waveform s =
            sis.run(topt).node_waveform(sis.out_node());
        const double ds =
            wave::delay_50(ref, false, s, true, vdd, t_from).value_or(-1);

        const double err_m = 100.0 * std::fabs(dm - dg) / dg;
        // The SIS model often produces no output crossing after the later
        // (invisible-to-it) edge at all; score that as a 100% miss.
        const double err_s =
            ds < 0.0 ? 100.0 : 100.0 * std::fabs(ds - dg) / dg;
        worst_mcsm = std::max(worst_mcsm, err_m);
        worst_sis = std::max(worst_sis, err_s);
        golden_min = std::min(golden_min, dg);
        golden_max = std::max(golden_max, dg);
        table.add_row({TablePrinter::num(skew * 1e12, 4),
                       TablePrinter::num(dg * 1e12, 4),
                       TablePrinter::num(dm * 1e12, 4),
                       TablePrinter::num(ds * 1e12, 4),
                       TablePrinter::num(err_m, 3)});
    }
    table.print_csv(std::cout);
    std::printf("# golden delay spans %.2f..%.2f ps across the skew sweep; "
                "worst errors: MCSM %.2f%%, SIS %.2f%%\n",
                golden_min * 1e12, golden_max * 1e12, worst_mcsm, worst_sis);

    check.check(golden_max - golden_min > 2e-12,
                "skew visibly modulates the golden delay (MIS effect)");
    check.check(worst_mcsm < 6.0, "MCSM within 6% across the sweep");
    check.check(worst_sis > worst_mcsm, "SIS CSM is worse than MCSM");
    return check.exit_code();
}
