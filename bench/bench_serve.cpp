// Serving-layer benchmark and correctness gates: binary vs text model
// store (size, cold-load latency, bit-exact round trip), TimingService
// batch throughput (LUT fast path, exact transient path, serial-vs-parallel
// determinism), the 3-pin MIS arc path (6-D characterize-on-miss + surface
// build + warm throughput), the RC pi-load path (throughput + a loose
// LUT-vs-exact sanity gate; the tight 5% gate lives in test_serve_golden)
// and the socket front end (4 concurrent pipelined clients through
// net::NetServer; gated at >= 50% of the in-process warm LUT rate, with a
// bitwise-identity check against the same batch run in process).
// Results are written as machine-readable BENCH_serve.json ({"threads",
// "model_store": {...}, "timing_service": {...}, "mis3": {...},
// "pi_load": {...}, "net": {...}}) for CI trend tracking, next to
// BENCH_perf.json; set MCSM_BENCH_JSON to change the path, or =0 to skip
// the file.
#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "core/characterizer.h"
#include "core/model_io.h"
#include "net/client.h"
#include "net/query_text.h"
#include "net/server.h"
#include "serve/model_store.h"
#include "serve/repository.h"
#include "serve/timing_service.h"

using namespace mcsm;
namespace fs = std::filesystem;

namespace {

double wall_ms(const std::function<void()>& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

double best_of(int reps, const std::function<void()>& fn) {
    double best = 1e300;
    for (int r = 0; r < reps; ++r) best = std::min(best, wall_ms(fn));
    return best;
}

std::string binary_bytes(const core::CsmModel& model) {
    std::stringstream ss;
    serve::write_model_binary(ss, model);
    return ss.str();
}

// Off-grid query mix over both arcs of the NOR2 surface family plus the
// INV_X1 SIS arc; i indexes a deterministic pattern.
serve::TimingQuery mixed_query(std::size_t i) {
    serve::TimingQuery q;
    if (i % 4 == 0) {
        q.cell = "INV_X1";
        q.pins = {"A"};
        q.slews = {(25 + 11.0 * (i % 31)) * 1e-12};
    } else {
        q.cell = "NOR2";
        q.pins = {"A", "B"};
        q.slews = {(30 + 7.0 * (i % 37)) * 1e-12,
                   (40 + 9.0 * (i % 29)) * 1e-12};
        q.skews = {0.0, (static_cast<double>(i % 41) - 20.0) * 9e-12};
    }
    q.inputs_rise = (i % 2) == 1;
    q.load_cap = (1.5 + 0.8 * static_cast<double>(i % 23)) * 1e-15;
    return q;
}

}  // namespace

int main() {
    bench::Checker check;
    const tech::Technology tech = tech::make_tech130();
    const cells::CellLibrary lib(tech);
    const core::Characterizer chr(lib);

    core::CharOptions copt;
    copt.transient_caps = false;
    copt.grid_points = 7;
    const core::CsmModel inv =
        chr.characterize("INV_X1", core::ModelKind::kSis, {"A"}, copt);
    const core::CsmModel nor =
        chr.characterize("NOR2", core::ModelKind::kMcsm, {"A", "B"}, copt);

    const fs::path dir = "serve_store_bench";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string text_path = (dir / "nor.csm").string();
    const std::string bin_path = (dir / "nor.csm.bin").string();

    // --- model store: size, cold load, fidelity --------------------------
    core::save_model(text_path, nor);
    serve::save_model_binary(bin_path, nor);
    const auto text_bytes = fs::file_size(text_path);
    const auto bin_bytes = fs::file_size(bin_path);

    const double load_text_ms =
        best_of(3, [&] { (void)core::load_model(text_path); });
    const double load_bin_ms =
        best_of(3, [&] { (void)serve::load_model_binary(bin_path); });

    check.check(binary_bytes(serve::load_model_binary(bin_path)) ==
                    binary_bytes(nor),
                "binary store round trip is bit-exact");
    check.check(binary_bytes(core::load_model(text_path)) ==
                    binary_bytes(nor),
                "text store round trip is bit-exact (hexfloat)");
    check.check(bin_bytes < text_bytes,
                "binary store is smaller than the text store");
    // The cold-load latency comparison is reported (below and in the JSON)
    // but not gated: sub-ms wall clocks are noise-dominated on shared CI
    // runners.

    // --- timing service: surface build + warm batch throughput -----------
    serve::RepositoryOptions ropt;
    // The 3-pin section characterizes its 6-D model on miss; keep that and
    // the 1/2-pin fallbacks bench-fast.
    ropt.char_options = copt;
    ropt.char_options_mis3.grid_points = 4;
    ropt.char_options_mis3.cin_points = 5;
    serve::ModelRepository repo(&lib, ropt);
    repo.put(serve::ModelKey::arc("INV_X1", {"A"}), inv);
    repo.put(serve::ModelKey::arc("NOR2", {"A", "B"}), nor);

    serve::ServeOptions sopt;  // stock 1/2-pin surface grid
    // Bench-grade 3-pin knots: the stock 3-pin grid costs ~2k transients,
    // which is offline-build territory, not bench territory.
    sopt.slew_knots_mis3 = {60e-12, 250e-12};
    sopt.skew_knots_mis3 = {-1.0, 0.0, 1.0};
    sopt.skew_pair_knots_mis3 = {-1.0, 0.0, 1.0};
    sopt.load_knots_mis3 = {2e-15, 16e-15};
    serve::TimingService service(repo, sopt);

    // First batch touches all four arcs: its wall clock is the cold
    // surface-build cost (320 CSM transients per two-pin arc by default).
    std::vector<serve::TimingQuery> warmup;
    for (std::size_t i = 0; i < 8; ++i) warmup.push_back(mixed_query(i));
    const double surface_build_ms =
        wall_ms([&] { (void)service.run_batch(warmup); });

    const std::size_t batch_n = 20000;
    std::vector<serve::TimingQuery> batch;
    batch.reserve(batch_n);
    for (std::size_t i = 0; i < batch_n; ++i)
        batch.push_back(mixed_query(i));

    std::vector<serve::TimingResult> results;
    const double warm_ms = wall_ms([&] { results = service.run_batch(batch); });
    std::size_t valid = 0;
    for (const auto& r : results) valid += r.valid ? 1 : 0;
    check.check(valid == batch_n, "every warm LUT query succeeded");
    const double warm_qps = 1e3 * static_cast<double>(batch_n) / warm_ms;

    serve::ServeOptions serial_opt = sopt;
    serial_opt.threads = 1;
    serve::TimingService serial(repo, serial_opt);
    (void)serial.run_batch(warmup);
    const double serial_ms =
        wall_ms([&] { (void)serial.run_batch(batch); });
    const double serial_qps = 1e3 * static_cast<double>(batch_n) / serial_ms;

    // Determinism gate: parallel and serial services agree bitwise.
    {
        std::vector<serve::TimingQuery> probe;
        for (std::size_t i = 0; i < 256; ++i) probe.push_back(mixed_query(i));
        const auto a = service.run_batch(probe);
        const auto b = serial.run_batch(probe);
        bool same = true;
        for (std::size_t i = 0; i < probe.size(); ++i)
            same = same && a[i].delay == b[i].delay && a[i].slew == b[i].slew;
        check.check(same, "batch results identical across thread counts");
    }

    const std::size_t exact_n = 64;
    std::vector<serve::TimingQuery> exact_batch;
    for (std::size_t i = 0; i < exact_n; ++i) {
        serve::TimingQuery q = mixed_query(i);
        q.exact = true;
        exact_batch.push_back(q);
    }
    std::vector<serve::TimingResult> exact_results;
    const double exact_ms =
        wall_ms([&] { exact_results = service.run_batch(exact_batch); });
    const double exact_qps = 1e3 * static_cast<double>(exact_n) / exact_ms;

    // Exact path on the legacy fixed-dt grid: the same queries through a
    // service with adaptive_tran off. The exact path never touches the
    // surfaces, so no warmup batch is needed.
    serve::ServeOptions fixed_opt = sopt;
    fixed_opt.adaptive_tran = false;
    serve::TimingService fixed_service(repo, fixed_opt);
    std::vector<serve::TimingResult> exact_fixed;
    const double exact_fixed_ms =
        wall_ms([&] { exact_fixed = fixed_service.run_batch(exact_batch); });
    const double exact_qps_fixed =
        1e3 * static_cast<double>(exact_n) / exact_fixed_ms;
    check.check(exact_ms < exact_fixed_ms,
                "adaptive exact path beats the fixed-dt grid");
    {
        // Per-query agreement between the two stepping regimes, same
        // tolerance shape as the golden gate: max(5%, 2 ps).
        double worst = 0.0;
        std::size_t compared = 0;
        for (std::size_t i = 0; i < exact_n; ++i) {
            if (!exact_results[i].valid || !exact_fixed[i].valid) continue;
            ++compared;
            const double want = exact_fixed[i].delay;
            worst = std::max(worst,
                             std::abs(exact_results[i].delay - want) /
                                 std::max(2e-12, 0.05 * std::abs(want)));
        }
        check.check(compared == exact_n,
                    "every exact query evaluated on both stepping regimes");
        check.check(worst < 1.0,
                    "adaptive exact delays within max(5%, 2 ps) of the "
                    "fixed grid (worst " + std::to_string(worst) +
                        " of bound)");
    }

    // --- 3-pin MIS arcs: characterize-on-miss + surface build + warm LUT --
    const auto mis3_query = [](std::size_t i) {
        serve::TimingQuery q;
        q.cell = "NAND3";
        q.pins = {"A", "B", "C"};
        q.inputs_rise = true;
        q.slews = {(70 + 9.0 * (i % 19)) * 1e-12,
                   (80 + 11.0 * (i % 13)) * 1e-12,
                   (90 + 13.0 * (i % 11)) * 1e-12};
        q.skews = {0.0, (static_cast<double>(i % 15) - 7.0) * 12e-12,
                   (static_cast<double>(i % 9) - 4.0) * 16e-12};
        q.load_cap = (3 + (i % 6) * 2) * 1e-15;
        return q;
    };
    const double mis3_cold_ms = wall_ms([&] {
        const auto r = service.run_one(mis3_query(0));
        check.check(r.valid, "cold 3-pin query succeeded");
    });
    const std::size_t mis3_n = 4000;
    std::vector<serve::TimingQuery> mis3_batch;
    for (std::size_t i = 0; i < mis3_n; ++i)
        mis3_batch.push_back(mis3_query(i));
    std::vector<serve::TimingResult> mis3_results;
    const double mis3_ms =
        wall_ms([&] { mis3_results = service.run_batch(mis3_batch); });
    std::size_t mis3_valid = 0;
    for (const auto& r : mis3_results) mis3_valid += r.valid ? 1 : 0;
    check.check(mis3_valid == mis3_n, "every warm 3-pin LUT query succeeded");
    const double mis3_qps = 1e3 * static_cast<double>(mis3_n) / mis3_ms;

    // --- RC pi loads: warm throughput + loose LUT-vs-exact sanity gate ----
    const auto pi_query = [&](std::size_t i) {
        serve::TimingQuery q = mixed_query(i);
        q.load_cap = (1 + (i % 3)) * 1e-15;
        q.c_near = (1 + (i % 4)) * 1e-15;
        q.r_wire = 300.0 + 90.0 * static_cast<double>(i % 11);
        q.c_far = (2 + (i % 7)) * 1e-15;
        return q;
    };
    const std::size_t pi_n = 10000;
    std::vector<serve::TimingQuery> pi_batch;
    for (std::size_t i = 0; i < pi_n; ++i) pi_batch.push_back(pi_query(i));
    std::vector<serve::TimingResult> pi_results;
    const double pi_ms =
        wall_ms([&] { pi_results = service.run_batch(pi_batch); });
    std::size_t pi_valid = 0;
    for (const auto& r : pi_results) pi_valid += r.valid ? 1 : 0;
    check.check(pi_valid == pi_n, "every warm pi-load LUT query succeeded");
    const double pi_qps = 1e3 * static_cast<double>(pi_n) / pi_ms;

    double pi_max_delay_err = 0.0;
    double pi_max_slew_err = 0.0;
    {
        // Accuracy probe inside the served domain (slew ratios <= ~2,
        // normalized skews within the knot hull): it gates the
        // effective-capacitance machinery, not stock-grid extrapolation
        // at extreme coordinates.
        const auto pi_probe_query = [](std::size_t i) {
            serve::TimingQuery q;
            if (i % 3 == 0) {
                q.cell = "INV_X1";
                q.pins = {"A"};
                q.slews = {(50 + 15.0 * (i % 11)) * 1e-12};
            } else {
                q.cell = "NOR2";
                q.pins = {"A", "B"};
                const double slew_a = (60 + 12.0 * (i % 9)) * 1e-12;
                const double slew_b = slew_a * (0.7 + 0.1 * (i % 8));
                const double u = (static_cast<double>(i % 13) - 6.0) / 4.0;
                const double delta = u * 0.5 * (slew_a + slew_b);
                q.slews = {slew_a, slew_b};
                q.skews = {0.0, delta - 0.5 * (slew_b - slew_a)};
            }
            q.inputs_rise = (i % 2) == 1;
            q.load_cap = (1 + (i % 3)) * 1e-15;
            q.c_near = (1 + (i % 4)) * 1e-15;
            q.r_wire = 300.0 + 90.0 * static_cast<double>(i % 11);
            q.c_far = (2 + (i % 7)) * 1e-15;
            return q;
        };
        std::vector<serve::TimingQuery> probe;
        std::vector<serve::TimingQuery> probe_exact;
        for (std::size_t i = 0; i < 24; ++i) {
            probe.push_back(pi_probe_query(i));
            probe_exact.push_back(probe.back());
            probe_exact.back().exact = true;
        }
        const auto lut = service.run_batch(probe);
        const auto ref = service.run_batch(probe_exact);
        // Errors are measured against max(20%, 8 ps) -- like the golden
        // gate's tolerance shape, an absolute floor keeps near-zero MIS
        // delays (output fired by the earlier edge) from exploding a
        // relative metric.
        const auto err_of = [](double got, double want) {
            return std::abs(got - want) /
                   std::max(8e-12, 0.2 * std::abs(want));
        };
        std::size_t compared = 0;
        for (std::size_t i = 0; i < probe.size(); ++i) {
            if (!lut[i].valid || !ref[i].valid) continue;
            ++compared;
            pi_max_delay_err =
                std::max(pi_max_delay_err, err_of(lut[i].delay, ref[i].delay));
            pi_max_slew_err =
                std::max(pi_max_slew_err, err_of(lut[i].slew, ref[i].slew));
        }
        // Guard against a vacuous pass: failed probes must fail the gate,
        // not silently shrink the comparison set to nothing.
        check.check(compared == probe.size(),
                    "every pi-load accuracy probe evaluated on both paths");
        // Loose sanity bound -- the tight randomized 5% gate lives in
        // test_serve_golden; this guards against the effective-capacitance
        // path regressing wholesale.
        check.check(pi_max_delay_err < 1.0 && pi_max_slew_err < 1.0,
                    "pi-load LUT path stays within max(20%, 8 ps) of the "
                    "exact path");
    }

    // --- socket front end: 4 concurrent pipelined clients -----------------
    const std::size_t net_clients = 4;
    const std::size_t net_per_client = 5000;
    const std::size_t net_total = net_clients * net_per_client;
    double net_qps = 0.0;
    double net_ref_qps = 0.0;
    {
        net::NetServerOptions nopt;
        nopt.unix_path = (dir / "bench_net.sock").string();
        nopt.batch_max = 4096;
        nopt.linger_us = 200;
        net::NetServer server(service, nopt);
        std::thread server_thread([&] { server.run(); });

        // Requests render outside the timed window, and the timed client
        // loop is send-everything then drain-to-EOF: the measurement is
        // the serving stack (line split, parse, batch, eval, format,
        // socket I/O), not client-side formatting.
        std::vector<std::string> request(net_clients);
        std::vector<serve::TimingQuery> net_ref;
        net_ref.reserve(net_total);
        bool net_lines_parse = true;
        for (std::size_t c = 0; c < net_clients; ++c) {
            for (std::size_t i = 0; i < net_per_client; ++i) {
                const std::string line = net::format_query_line(
                    mixed_query(c * net_per_client + i));
                request[c] += line;
                request[c] += '\n';
                serve::TimingQuery q;
                net_lines_parse =
                    net_lines_parse && net::parse_query_line(line, q);
                net_ref.push_back(q);
            }
        }
        check.check(net_lines_parse, "every rendered query line parses");
        // In-process reference over the SAME parsed queries: what the
        // socket responses must match bitwise. Its wall clock, taken
        // back-to-back with the socket run, is the fair throughput
        // baseline (warm_qps was measured minutes earlier in this
        // process; clock throttling between sections would skew a
        // cross-section ratio both ways).
        std::vector<serve::TimingResult> ref_results;
        const double ref_ms =
            wall_ms([&] { ref_results = service.run_batch(net_ref); });
        const double ref_qps =
            1e3 * static_cast<double>(net_total) / ref_ms;

        std::vector<std::string> received(net_clients);
        const double net_ms = wall_ms([&] {
            std::vector<std::thread> clients;
            for (std::size_t c = 0; c < net_clients; ++c) {
                clients.emplace_back([&, c] {
                    net::LineClient cli =
                        net::LineClient::connect_unix(nopt.unix_path);
                    cli.send_text(request[c]);
                    cli.shutdown_write();
                    std::string& sink = received[c];
                    char buf[1 << 16];
                    for (;;) {
                        const ssize_t n = ::recv(cli.fd(), buf, sizeof buf, 0);
                        if (n <= 0) break;
                        sink.append(buf, static_cast<std::size_t>(n));
                    }
                });
            }
            for (auto& t : clients) t.join();
        });
        server.stop();
        server_thread.join();
        net_qps = 1e3 * static_cast<double>(net_total) / net_ms;

        // Bitwise identity + per-connection ordering: response i on each
        // connection carries id i and the exact doubles run_batch produced.
        std::size_t matched = 0;
        for (std::size_t c = 0; c < net_clients; ++c) {
            std::size_t pos = 0;
            std::size_t idx = 0;
            while (pos < received[c].size() && idx < net_per_client) {
                const std::size_t nl = received[c].find('\n', pos);
                if (nl == std::string::npos) break;
                std::uint64_t id = 0;
                const serve::TimingResult got = net::parse_result_line(
                    received[c].substr(pos, nl - pos), id);
                const serve::TimingResult& want =
                    ref_results[c * net_per_client + idx];
                // Response ids are 1-based per connection (0 is reserved
                // for connection-level errors).
                if (id == idx + 1 && got.valid && want.valid &&
                    got.delay == want.delay && got.slew == want.slew &&
                    got.path == want.path)
                    ++matched;
                ++idx;
                pos = nl + 1;
            }
        }
        check.check(matched == net_total,
                    "socket responses are bitwise-identical to the "
                    "in-process batch (" + std::to_string(matched) + "/" +
                        std::to_string(net_total) + ")");
        check.check(net_qps >= 0.5 * ref_qps,
                    "socket front end holds >= 50% of in-process warm LUT "
                    "throughput with 4 concurrent clients");
        net_ref_qps = ref_qps;
    }

    // Measurements done; drop the scratch store before any early return in
    // the reporting below can leak it.
    fs::remove_all(dir);

    // --- report ----------------------------------------------------------
    std::printf("# store: text %zu B, binary %zu B (%.2fx smaller); cold "
                "load text %.3f ms, binary %.3f ms (%.1fx faster)\n",
                static_cast<std::size_t>(text_bytes),
                static_cast<std::size_t>(bin_bytes),
                static_cast<double>(text_bytes) /
                    static_cast<double>(bin_bytes),
                load_text_ms, load_bin_ms, load_text_ms / load_bin_ms);
    std::printf("# serve: surfaces built in %.1f ms; warm LUT batch %zu "
                "queries -> %.0f q/s (%zu threads), %.0f q/s serial; exact "
                "transient path %.0f q/s (fixed grid %.0f q/s)\n",
                surface_build_ms, batch_n, warm_qps, hardware_threads(),
                serial_qps, exact_qps, exact_qps_fixed);
    std::printf("# serve/mis3: cold 3-pin query (6-D characterize + "
                "surface) %.0f ms; warm 3-pin LUT %.0f q/s\n",
                mis3_cold_ms, mis3_qps);
    std::printf("# serve/pi: warm pi-load LUT %.0f q/s; LUT vs exact max "
                "err delay %.0f%%, slew %.0f%% of the max(20%%, 8 ps) "
                "bound (24-query probe)\n",
                pi_qps, 100.0 * pi_max_delay_err, 100.0 * pi_max_slew_err);
    std::printf("# serve/net: %zu pipelined clients x %zu queries over a "
                "unix socket -> %.0f q/s (%.0f%% of in-process warm LUT)\n",
                net_clients, net_per_client, net_qps,
                100.0 * net_qps / net_ref_qps);

    const char* path_env = std::getenv("MCSM_BENCH_JSON");
    const std::string json_path =
        path_env == nullptr ? "BENCH_serve.json" : path_env;
    if (json_path != "0") {
        std::FILE* f = std::fopen(json_path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "bench_serve: cannot write %s\n",
                         json_path.c_str());
            return 1;
        }
        std::fprintf(f, "{\n  \"threads\": %zu,\n", hardware_threads());
        std::fprintf(
            f,
            "  \"model_store\": {\"text_bytes\": %zu, \"binary_bytes\": "
            "%zu, \"size_ratio\": %.3f, \"cold_load_text_ms\": %.4f, "
            "\"cold_load_binary_ms\": %.4f, \"load_speedup\": %.2f},\n",
            static_cast<std::size_t>(text_bytes),
            static_cast<std::size_t>(bin_bytes),
            static_cast<double>(text_bytes) / static_cast<double>(bin_bytes),
            load_text_ms, load_bin_ms, load_text_ms / load_bin_ms);
        std::fprintf(
            f,
            "  \"timing_service\": {\"surface_build_ms\": %.2f, "
            "\"warm_batch_size\": %zu, \"warm_lut_qps\": %.0f, "
            "\"warm_lut_qps_serial\": %.0f, \"exact_qps\": %.0f, "
            "\"exact_qps_fixed_grid\": %.0f},\n",
            surface_build_ms, batch_n, warm_qps, serial_qps, exact_qps,
            exact_qps_fixed);
        std::fprintf(f,
                     "  \"mis3\": {\"cold_first_query_ms\": %.1f, "
                     "\"warm_lut_qps\": %.0f},\n",
                     mis3_cold_ms, mis3_qps);
        std::fprintf(f,
                     "  \"pi_load\": {\"warm_lut_qps\": %.0f, "
                     "\"max_delay_err_of_bound\": %.4f, "
                     "\"max_slew_err_of_bound\": %.4f},\n",
                     pi_qps, pi_max_delay_err, pi_max_slew_err);
        std::fprintf(f,
                     "  \"net\": {\"clients\": %zu, \"queries\": %zu, "
                     "\"net_qps\": %.0f, \"in_process_qps\": %.0f, "
                     "\"ratio\": %.3f}\n}\n",
                     net_clients, net_total, net_qps, net_ref_qps,
                     net_qps / net_ref_qps);
        std::fclose(f);
        std::printf("# wrote %s\n", json_path.c_str());
    }

    return check.exit_code();
}
