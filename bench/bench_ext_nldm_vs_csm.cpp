// Extension A6: the paper's motivating claim - the voltage-based method
// (NLDM) "falls short when dealing with noisy inputs" and MIS events, while
// a CSM handles arbitrary waveforms. Two structurally hard scenarios:
//  (a) NAND2 with both inputs rising simultaneously: each SIS NLDM arc was
//      characterized with the other stack transistor fully on, so the MIS
//      delay is underestimated (the paper: "makes the delay analysis
//      optimistic");
//  (b) NOR2 driven by an input that jumps past 50% and then hesitates near
//      mid-rail: its 10-90% slew describes a clean ramp that looks nothing
//      like the real waveform, so the ramp-based lookup breaks down.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table_printer.h"
#include "core/characterizer.h"
#include "sta/golden_flat.h"
#include "sta/nldm.h"
#include "sta/wave_sta.h"
#include "wave/edges.h"
#include "wave/metrics.h"

using namespace mcsm;
using bench::Context;

int main() {
    Context& ctx = Context::get();
    const double vdd = ctx.vdd();

    std::printf("# Extension: NLDM (voltage-based) vs MCSM waveform STA on "
                "MIS and noisy inputs\n");

    const sta::NldmLibrary nldm(ctx.lib(), {"NOR2", "NAND2"});
    const core::Characterizer chr(ctx.lib());
    const core::CsmModel nand = chr.characterize(
        "NAND2", core::ModelKind::kMcsm, {"A", "B"}, ctx.char_options(11));

    TablePrinter table({"scenario", "golden_ps", "nldm_err_ps", "csm_err_ps"});
    bench::Checker check;
    const double t_edge = 1.0e-9;

    struct Scenario {
        const char* name;
        const char* cell;
        wave::Waveform a;
        wave::Waveform b;
        bool out_rising;
        const core::CsmModel* model;
    };
    std::vector<Scenario> scenarios;
    scenarios.push_back(
        {"MIS_nand2_stack", "NAND2",
         wave::piecewise_edges(0.0, {{t_edge, 100e-12, vdd}}),
         wave::piecewise_edges(0.0, {{t_edge, 100e-12, vdd}}), false, &nand});
    scenarios.push_back(
        {"noisy_midrail_hesitation", "NOR2",
         wave::piecewise_edges(0.0, {{t_edge, 50e-12, 0.66},
                                     {t_edge + 350e-12, 60e-12, vdd}}),
         wave::Waveform::constant(0.0), false, &ctx.nor_mcsm()});

    for (const Scenario& sc : scenarios) {
        sta::GateNetlist nl;
        nl.add_primary_input("a", sc.a);
        nl.add_primary_input("b", sc.b);
        nl.add_instance(
            {"u1", sc.cell, {{"A", "a"}, {"B", "b"}, {"OUT", "y"}}});
        nl.set_wire_cap("y", 4e-15);

        const auto golden = sta::run_golden_flat(nl, ctx.lib(), 3e-9);
        const auto g50 =
            wave::crossing(golden.at("y"), vdd, 0.5, sc.out_rising, t_edge);

        const auto arrivals = sta::run_nldm_sta(nl, nldm, vdd);
        const double nldm_t50 = arrivals.at("y").t50;

        sta::WaveformSta wsta(nl, {{sc.cell, sc.model}});
        sta::WaveStaOptions wopt;
        wopt.tstop = 3e-9;
        const auto nets = wsta.run(wopt);
        const auto m50 =
            wave::crossing(nets.at("y"), vdd, 0.5, sc.out_rising, t_edge);

        if (!g50 || !m50) {
            check.check(false,
                        std::string("edge not found in scenario ") + sc.name);
            continue;
        }
        const double nldm_err = (nldm_t50 - *g50) * 1e12;
        const double csm_err = (*m50 - *g50) * 1e12;
        table.add_row({sc.name, TablePrinter::num(*g50 * 1e12, 5),
                       TablePrinter::num(nldm_err, 3),
                       TablePrinter::num(csm_err, 3)});
        check.check(std::fabs(csm_err) < std::fabs(nldm_err),
                    std::string(sc.name) + ": CSM beats NLDM");
        check.check(nldm_err < 0.0,
                    std::string(sc.name) +
                        ": NLDM is optimistic, as the paper warns");
    }
    table.print_csv(std::cout);
    std::printf("# paper: SIS-based voltage models significantly "
                "underestimate MIS delay and cannot represent noisy "
                "waveforms\n");
    return check.exit_code();
}
