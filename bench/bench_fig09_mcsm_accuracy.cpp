// Fig. 9: MCSM output waveforms vs the golden (SPICE-substitute) simulation
// for the fast and slow history cases, plus the headline numbers: the paper
// reports a 4% maximum delay error for MCSM vs ~22% for the MIS CSM that
// neglects the internal node (Section 3.1 baseline).
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table_printer.h"
#include "core/model_scenarios.h"
#include "engine/scenarios.h"
#include "wave/metrics.h"

using namespace mcsm;
using bench::Context;

namespace {

struct CaseResult {
    wave::Waveform golden;
    wave::Waveform mcsm;
    wave::Waveform baseline;
    double d_golden = 0.0;
    double d_mcsm = 0.0;
    double d_baseline = 0.0;
};

CaseResult run_case(Context& ctx, engine::HistoryCase hc, int fanout) {
    const double vdd = ctx.vdd();
    const engine::HistoryStimulus stim = engine::nor2_history(hc, vdd);
    spice::TranOptions topt;
    topt.tstop = 3.2e-9;
    topt.dt = 1e-12;

    CaseResult out;
    engine::GoldenCell golden(ctx.lib(), "NOR2",
                              {{"A", stim.a}, {"B", stim.b}},
                              engine::LoadSpec{0.0, fanout, "INV_X1"});
    out.golden = golden.run(topt).node_waveform(golden.out_node());

    core::ModelLoadSpec load;
    load.fanout_count = fanout;
    load.receiver = &ctx.inv_sis();

    core::ModelCell mcsm(ctx.nor_mcsm(), {{"A", stim.a}, {"B", stim.b}}, load);
    out.mcsm = mcsm.run(topt).node_waveform(mcsm.out_node());
    core::ModelCell base(ctx.nor_mis_baseline(),
                         {{"A", stim.a}, {"B", stim.b}}, load);
    out.baseline = base.run(topt).node_waveform(base.out_node());

    const double t_from = stim.t_final - 0.2e-9;
    out.d_golden =
        wave::delay_50(stim.a, false, out.golden, true, vdd, t_from).value_or(-1);
    out.d_mcsm =
        wave::delay_50(stim.a, false, out.mcsm, true, vdd, t_from).value_or(-1);
    out.d_baseline =
        wave::delay_50(stim.a, false, out.baseline, true, vdd, t_from)
            .value_or(-1);
    return out;
}

}  // namespace

int main() {
    Context& ctx = Context::get();

    std::printf("# Fig. 9: MCSM vs golden waveforms for the fast/slow "
                "history cases (FO2), plus delay errors\n");

    const CaseResult fast = run_case(ctx, engine::HistoryCase::kFast10, 2);
    const CaseResult slow = run_case(ctx, engine::HistoryCase::kSlow01, 2);

    bench::print_waveform_header({"OUT1_golden", "OUT1_mcsm", "OUT2_golden",
                                  "OUT2_mcsm"});
    bench::print_waveform_rows(
        {&fast.golden, &fast.mcsm, &slow.golden, &slow.mcsm}, 1.9e-9, 2.5e-9,
        5e-12);

    TablePrinter table({"case", "golden_ps", "mcsm_ps", "mcsm_err_pct",
                        "baseline_ps", "baseline_err_pct"});
    double max_mcsm_err = 0.0;
    double max_base_err = 0.0;
    const CaseResult* results[2] = {&fast, &slow};
    const char* labels[2] = {"fast('10'->'11'->'00')",
                             "slow('01'->'11'->'00')"};
    for (int i = 0; i < 2; ++i) {
        const CaseResult& r = *results[i];
        const double em =
            100.0 * std::fabs(r.d_mcsm - r.d_golden) / r.d_golden;
        const double eb =
            100.0 * std::fabs(r.d_baseline - r.d_golden) / r.d_golden;
        max_mcsm_err = std::max(max_mcsm_err, em);
        max_base_err = std::max(max_base_err, eb);
        table.add_row({labels[i], TablePrinter::num(r.d_golden * 1e12, 4),
                       TablePrinter::num(r.d_mcsm * 1e12, 4),
                       TablePrinter::num(em, 3),
                       TablePrinter::num(r.d_baseline * 1e12, 4),
                       TablePrinter::num(eb, 3)});
    }
    table.print_csv(std::cout);
    std::printf("# measured: max MCSM error %.2f%%, max no-internal-node "
                "baseline error %.2f%%\n",
                max_mcsm_err, max_base_err);
    std::printf("# paper:    max MCSM error 4%%, baseline ~22%%\n");

    bench::Checker check;
    check.check(fast.d_golden > 0 && slow.d_golden > 0, "golden delays found");
    check.check(max_mcsm_err < 5.0, "MCSM max delay error below 5%");
    check.check(max_base_err > max_mcsm_err,
                "baseline (no internal node) is worse than MCSM");
    check.check(max_base_err > 5.0,
                "neglecting the internal node costs real accuracy");
    return check.exit_code();
}
