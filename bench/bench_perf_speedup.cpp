// Perf bench A4 (google-benchmark): runtime of the MCSM model transient vs
// the transistor-level golden transient on the same scenario - the whole
// point of CSMs in an STA/noise tool - plus characterization and query
// micro-benchmarks.
//
// Before the google-benchmark suite runs, a fixed stage list is wall-clock
// timed against the pre-refactor baseline configuration (dense solver,
// single thread) and written as machine-readable BENCH_perf.json
// ({"threads": N, "stages": {"<name>": {"baseline_ms", "current_ms",
// "speedup"}, ...}}) for CI trend tracking; set MCSM_BENCH_JSON to change
// the path, or =0 to skip.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "core/characterizer.h"
#include "core/explicit_sim.h"
#include "core/model_scenarios.h"
#include "engine/scenarios.h"
#include "spice/ekv_lanes.h"
#include "spice/tran_solver.h"

using namespace mcsm;
using bench::Context;

namespace {

spice::TranOptions tran_options() {
    spice::TranOptions topt;
    topt.tstop = 3.2e-9;
    topt.dt = 1e-12;
    return topt;
}

void BM_GoldenTransient(benchmark::State& state) {
    Context& ctx = Context::get();
    const engine::HistoryStimulus stim =
        engine::nor2_history(engine::HistoryCase::kFast10, ctx.vdd());
    for (auto _ : state) {
        engine::GoldenCell cell(ctx.lib(), "NOR2",
                                {{"A", stim.a}, {"B", stim.b}},
                                engine::LoadSpec{0.0, 2, "INV_X1"});
        benchmark::DoNotOptimize(cell.run(tran_options()));
    }
}
BENCHMARK(BM_GoldenTransient)->Unit(benchmark::kMillisecond);

void BM_McsmTransientImplicit(benchmark::State& state) {
    Context& ctx = Context::get();
    const engine::HistoryStimulus stim =
        engine::nor2_history(engine::HistoryCase::kFast10, ctx.vdd());
    const core::CsmModel& nor = ctx.nor_mcsm();
    const core::CsmModel& inv = ctx.inv_sis();
    for (auto _ : state) {
        core::ModelLoadSpec load;
        load.fanout_count = 2;
        load.receiver = &inv;
        core::ModelCell cell(nor, {{"A", stim.a}, {"B", stim.b}}, load);
        benchmark::DoNotOptimize(cell.run(tran_options()));
    }
}
BENCHMARK(BM_McsmTransientImplicit)->Unit(benchmark::kMillisecond);

void BM_McsmTransientExplicit(benchmark::State& state) {
    Context& ctx = Context::get();
    const engine::HistoryStimulus stim =
        engine::nor2_history(engine::HistoryCase::kFast10, ctx.vdd());
    const core::CsmModel& nor = ctx.nor_mcsm();
    core::ExplicitOptions eopt;
    eopt.tstop = 3.2e-9;
    eopt.dt = 1e-12;
    eopt.load_cap = 7e-15;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::simulate_explicit(nor, {stim.a, stim.b}, eopt));
    }
}
BENCHMARK(BM_McsmTransientExplicit)->Unit(benchmark::kMillisecond);

void BM_CharacterizeNor2McsmShortcut(benchmark::State& state) {
    Context& ctx = Context::get();
    const core::Characterizer chr(ctx.lib());
    core::CharOptions opt;
    opt.grid_points = static_cast<std::size_t>(state.range(0));
    opt.transient_caps = false;
    for (auto _ : state) {
        benchmark::DoNotOptimize(chr.characterize(
            "NOR2", core::ModelKind::kMcsm, {"A", "B"}, opt));
    }
}
BENCHMARK(BM_CharacterizeNor2McsmShortcut)->Arg(7)->Arg(11)
    ->Unit(benchmark::kMillisecond);

void BM_LutQuery4D(benchmark::State& state) {
    Context& ctx = Context::get();
    const core::CsmModel& nor = ctx.nor_mcsm();
    double x = 0.0;
    for (auto _ : state) {
        x += 1e-4;
        if (x > 1.0) x = 0.0;
        const std::array<double, 4> q{x, 1.2 - x, 0.6 + 0.3 * x, x};
        benchmark::DoNotOptimize(nor.io(q));
    }
}
BENCHMARK(BM_LutQuery4D);

void BM_LutQuery4DWithGradient(benchmark::State& state) {
    Context& ctx = Context::get();
    const core::CsmModel& nor = ctx.nor_mcsm();
    double x = 0.0;
    std::array<double, 4> grad{};
    for (auto _ : state) {
        x += 1e-4;
        if (x > 1.0) x = 0.0;
        const std::array<double, 4> q{x, 1.2 - x, 0.6 + 0.3 * x, x};
        benchmark::DoNotOptimize(nor.i_out.at_with_gradient(q, grad));
    }
}
BENCHMARK(BM_LutQuery4DWithGradient);

void BM_ModelDcState(benchmark::State& state) {
    Context& ctx = Context::get();
    const core::CsmModel& nor = ctx.nor_mcsm();
    for (auto _ : state) {
        const std::array<double, 2> pins{0.0, 0.0};
        benchmark::DoNotOptimize(nor.dc_state(pins));
    }
}
BENCHMARK(BM_ModelDcState)->Unit(benchmark::kMicrosecond);

// --- BENCH_perf.json: per-stage wall clock vs the pre-refactor baseline ---

using spice::SolverBackend;

// One stage timed in two configurations: "baseline" is the retained
// pre-refactor solver path (dense LU, fresh assembly, single thread),
// "current" is the persistent sparse workspace with parallel sweeps.
// The measurements themselves live in bench_util so bench_solver_core's
// report and this JSON stay in lockstep.
//
// Every stage reports min-of-N (the gate/headline number, robust to
// scheduler noise) and mean-of-N (the spread indicator). Micro-stages
// whose timer already returns a per-op average over thousands of reps
// report that average for both.
struct Stage {
    std::string name;
    bench::BenchTiming baseline;
    bench::BenchTiming current;
};

bench::BenchTiming avg_as_timing(double ms) {
    bench::BenchTiming t;
    t.min_ms = ms;
    t.mean_ms = ms;
    t.reps = 1;
    return t;
}

bench::BenchTiming newton_cycle_ms(Context& ctx, int stages,
                                   SolverBackend backend) {
    return avg_as_timing(
        bench::time_newton_cycle_us(ctx.lib(), stages, backend) * 1e-3);
}

bench::BenchTiming golden_transient_ms(Context& ctx, int stages,
                                       SolverBackend backend) {
    bench::BenchTiming t;
    bench::time_chain_transient_ms(ctx.lib(), stages, backend, nullptr, &t);
    return t;
}

bench::BenchTiming dc_sweep_ms(Context& ctx, SolverBackend backend) {
    bench::BenchTiming t;
    bench::time_dc_sweep_ms(ctx.lib(), backend, &t);
    return t;
}

bench::BenchTiming characterize_ms(Context& ctx, SolverBackend backend,
                                   std::size_t threads) {
    core::CharOptions opt = ctx.char_options(7);
    opt.transient_caps = false;
    opt.backend = backend;
    opt.threads = threads;
    bench::BenchTiming t;
    bench::time_characterize_nor2_ms(ctx.lib(), opt, &t);
    return t;
}

void write_bench_perf_json() {
    const char* path_env = std::getenv("MCSM_BENCH_JSON");
    const std::string path =
        path_env == nullptr ? "BENCH_perf.json" : path_env;
    if (path == "0") return;

    Context& ctx = Context::get();
    std::vector<Stage> stages;
    stages.push_back({"newton_cycle_12cell",
                      newton_cycle_ms(ctx, 12, SolverBackend::kDense),
                      newton_cycle_ms(ctx, 12, SolverBackend::kSparse)});
    stages.push_back({"newton_cycle_48cell",
                      newton_cycle_ms(ctx, 48, SolverBackend::kDense),
                      newton_cycle_ms(ctx, 48, SolverBackend::kSparse)});
    // Device-evaluation pass alone (assembly, no solve): the virtual
    // per-device scalar loop vs the batched SoA evaluate-and-stamp, both
    // writing the same CSR workspace.
    stages.push_back(
        {"device_eval_12cell",
         avg_as_timing(bench::time_device_eval_us(ctx.lib(), 12, false) *
                       1e-3),
         avg_as_timing(bench::time_device_eval_us(ctx.lib(), 12, true) *
                       1e-3)});
    stages.push_back(
        {"device_eval_48cell",
         avg_as_timing(bench::time_device_eval_us(ctx.lib(), 48, false) *
                       1e-3),
         avg_as_timing(bench::time_device_eval_us(ctx.lib(), 48, true) *
                       1e-3)});
    // 32 solutions of the factored chain system: per-solution refactor +
    // single-RHS solve (the point-by-point Newton pattern) vs one refactor
    // + one blocked multi-RHS substitution.
    stages.push_back(
        {"multi_rhs_32_12cell",
         avg_as_timing(bench::time_multi_rhs_us(ctx.lib(), 12, 32, false) *
                       1e-3),
         avg_as_timing(bench::time_multi_rhs_us(ctx.lib(), 12, 32, true) *
                       1e-3)});
    // Characterization-style DC bias sweep (all modeled nodes forced,
    // 6^4 grid): dense point-by-point baseline vs sparse blocked sweep.
    stages.push_back({"dc_sweep_nor2_1296pt",
                      dc_sweep_ms(ctx, SolverBackend::kDense),
                      dc_sweep_ms(ctx, SolverBackend::kSparse)});
    stages.push_back({"transient_12cell",
                      golden_transient_ms(ctx, 12, SolverBackend::kDense),
                      golden_transient_ms(ctx, 12, SolverBackend::kSparse)});
    stages.push_back({"transient_48cell",
                      golden_transient_ms(ctx, 48, SolverBackend::kDense),
                      golden_transient_ms(ctx, 48, SolverBackend::kSparse)});
    stages.push_back({"characterize_nor2_mcsm_g7",
                      characterize_ms(ctx, SolverBackend::kDense, 1),
                      characterize_ms(ctx, SolverBackend::kSparse, 0)});
    // Transient fast path: dense fixed-grid baseline (the seed solver
    // configuration) vs LTE-adaptive stepping + Jacobian reuse on the
    // sparse workspace.
    double reuse_rate = 0.0;
    bench::BenchTiming adaptive;
    bench::time_chain_transient_fast_ms(ctx.lib(), 48,
                                        /*reuse_jacobian=*/true, &reuse_rate,
                                        nullptr, &adaptive);
    stages.push_back({"transient_adaptive_48",
                      golden_transient_ms(ctx, 48, SolverBackend::kDense),
                      adaptive});

    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "bench_perf_speedup: cannot write %s\n",
                     path.c_str());
        return;
    }
    // baseline_ms/current_ms stay min-of-N (the numbers the CI trend and
    // speedup gates key on); the *_mean_ms companions expose run-to-run
    // spread without moving the gate.
    std::fprintf(f, "{\n  \"threads\": %zu,\n  \"stages\": {\n",
                 hardware_threads());
    for (std::size_t i = 0; i < stages.size(); ++i) {
        const Stage& s = stages[i];
        std::fprintf(f,
                     "    \"%s\": {\"baseline_ms\": %.4f, "
                     "\"current_ms\": %.4f, \"baseline_mean_ms\": %.4f, "
                     "\"current_mean_ms\": %.4f, \"speedup\": %.3f}%s\n",
                     s.name.c_str(), s.baseline.min_ms, s.current.min_ms,
                     s.baseline.mean_ms, s.current.mean_ms,
                     s.baseline.min_ms / s.current.min_ms,
                     i + 1 < stages.size() ? "," : "");
    }
    // SIMD lane-kernel block: pure full-batch EKV evaluation on the 48-cell
    // chain, scalar fast kernel vs the dispatched lane kernel (best-of-5;
    // at scalar dispatch both sides run the same code and speedup ~1).
    double simd_scalar_us = 1e300;
    double simd_lanes_us = 1e300;
    for (int r = 0; r < 5; ++r) {
        simd_scalar_us = std::min(
            simd_scalar_us, bench::time_ekv_kernel_us(ctx.lib(), 48, false));
        simd_lanes_us = std::min(
            simd_lanes_us, bench::time_ekv_kernel_us(ctx.lib(), 48, true));
    }
    std::fprintf(f,
                 "  },\n  \"simd\": {\"width\": %d, \"kernel\": \"%s\", "
                 "\"scalar_kernel_ms\": %.5f, \"lane_kernel_ms\": %.5f, "
                 "\"speedup\": %.3f},\n",
                 spice::ekv_lane_width(), spice::ekv_lane_kernel_name(),
                 simd_scalar_us * 1e-3, simd_lanes_us * 1e-3,
                 simd_scalar_us / simd_lanes_us);
    std::fprintf(f, "  \"jacobian_reuse_rate\": %.4f\n}\n", reuse_rate);
    std::fclose(f);
    std::printf("# wrote %s\n", path.c_str());
    for (const Stage& s : stages)
        std::printf("#   %-28s baseline %8.3f ms   current %8.3f ms   "
                    "speedup %5.2fx   (means %8.3f / %8.3f)\n",
                    s.name.c_str(), s.baseline.min_ms, s.current.min_ms,
                    s.baseline.min_ms / s.current.min_ms, s.baseline.mean_ms,
                    s.current.mean_ms);
    std::printf("#   simd ekv_kernel_48 w=%d (%s)  scalar %8.3f ms   lanes "
                "%8.3f ms   speedup %5.2fx\n",
                spice::ekv_lane_width(), spice::ekv_lane_kernel_name(),
                simd_scalar_us * 1e-3, simd_lanes_us * 1e-3,
                simd_scalar_us / simd_lanes_us);
    std::printf("#   jacobian_reuse_rate          %.2f\n", reuse_rate);
}

}  // namespace

int main(int argc, char** argv) {
    // Flags first, so --help / unrecognized arguments exit without paying
    // for the baseline timing pass (MCSM_BENCH_JSON=0 also skips it).
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    write_bench_perf_json();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
