// Perf bench A4 (google-benchmark): runtime of the MCSM model transient vs
// the transistor-level golden transient on the same scenario - the whole
// point of CSMs in an STA/noise tool - plus characterization and query
// micro-benchmarks.
#include <benchmark/benchmark.h>

#include <array>

#include "bench_util.h"
#include "core/characterizer.h"
#include "core/explicit_sim.h"
#include "core/model_scenarios.h"
#include "engine/scenarios.h"

using namespace mcsm;
using bench::Context;

namespace {

spice::TranOptions tran_options() {
    spice::TranOptions topt;
    topt.tstop = 3.2e-9;
    topt.dt = 1e-12;
    return topt;
}

void BM_GoldenTransient(benchmark::State& state) {
    Context& ctx = Context::get();
    const engine::HistoryStimulus stim =
        engine::nor2_history(engine::HistoryCase::kFast10, ctx.vdd());
    for (auto _ : state) {
        engine::GoldenCell cell(ctx.lib(), "NOR2",
                                {{"A", stim.a}, {"B", stim.b}},
                                engine::LoadSpec{0.0, 2, "INV_X1"});
        benchmark::DoNotOptimize(cell.run(tran_options()));
    }
}
BENCHMARK(BM_GoldenTransient)->Unit(benchmark::kMillisecond);

void BM_McsmTransientImplicit(benchmark::State& state) {
    Context& ctx = Context::get();
    const engine::HistoryStimulus stim =
        engine::nor2_history(engine::HistoryCase::kFast10, ctx.vdd());
    const core::CsmModel& nor = ctx.nor_mcsm();
    const core::CsmModel& inv = ctx.inv_sis();
    for (auto _ : state) {
        core::ModelLoadSpec load;
        load.fanout_count = 2;
        load.receiver = &inv;
        core::ModelCell cell(nor, {{"A", stim.a}, {"B", stim.b}}, load);
        benchmark::DoNotOptimize(cell.run(tran_options()));
    }
}
BENCHMARK(BM_McsmTransientImplicit)->Unit(benchmark::kMillisecond);

void BM_McsmTransientExplicit(benchmark::State& state) {
    Context& ctx = Context::get();
    const engine::HistoryStimulus stim =
        engine::nor2_history(engine::HistoryCase::kFast10, ctx.vdd());
    const core::CsmModel& nor = ctx.nor_mcsm();
    core::ExplicitOptions eopt;
    eopt.tstop = 3.2e-9;
    eopt.dt = 1e-12;
    eopt.load_cap = 7e-15;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::simulate_explicit(nor, {stim.a, stim.b}, eopt));
    }
}
BENCHMARK(BM_McsmTransientExplicit)->Unit(benchmark::kMillisecond);

void BM_CharacterizeNor2McsmShortcut(benchmark::State& state) {
    Context& ctx = Context::get();
    const core::Characterizer chr(ctx.lib());
    core::CharOptions opt;
    opt.grid_points = static_cast<std::size_t>(state.range(0));
    opt.transient_caps = false;
    for (auto _ : state) {
        benchmark::DoNotOptimize(chr.characterize(
            "NOR2", core::ModelKind::kMcsm, {"A", "B"}, opt));
    }
}
BENCHMARK(BM_CharacterizeNor2McsmShortcut)->Arg(7)->Arg(11)
    ->Unit(benchmark::kMillisecond);

void BM_LutQuery4D(benchmark::State& state) {
    Context& ctx = Context::get();
    const core::CsmModel& nor = ctx.nor_mcsm();
    double x = 0.0;
    for (auto _ : state) {
        x += 1e-4;
        if (x > 1.0) x = 0.0;
        const std::array<double, 4> q{x, 1.2 - x, 0.6 + 0.3 * x, x};
        benchmark::DoNotOptimize(nor.io(q));
    }
}
BENCHMARK(BM_LutQuery4D);

void BM_LutQuery4DWithGradient(benchmark::State& state) {
    Context& ctx = Context::get();
    const core::CsmModel& nor = ctx.nor_mcsm();
    double x = 0.0;
    std::array<double, 4> grad{};
    for (auto _ : state) {
        x += 1e-4;
        if (x > 1.0) x = 0.0;
        const std::array<double, 4> q{x, 1.2 - x, 0.6 + 0.3 * x, x};
        benchmark::DoNotOptimize(nor.i_out.at_with_gradient(q, grad));
    }
}
BENCHMARK(BM_LutQuery4DWithGradient);

void BM_ModelDcState(benchmark::State& state) {
    Context& ctx = Context::get();
    const core::CsmModel& nor = ctx.nor_mcsm();
    for (auto _ : state) {
        const std::array<double, 2> pins{0.0, 0.0};
        benchmark::DoNotOptimize(nor.dc_state(pins));
    }
}
BENCHMARK(BM_ModelDcState)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
