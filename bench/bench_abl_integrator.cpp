// Ablation A3: the paper's explicit update equations (4)-(5) vs the
// implicit (MNA/Newton) engine on the same MCSM model and load, across time
// steps. Shows the explicit scheme converges to the implicit solution as dt
// shrinks, and what step the paper's formulation needs for stability.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table_printer.h"
#include "core/explicit_sim.h"
#include "core/model_scenarios.h"
#include "engine/scenarios.h"
#include "wave/metrics.h"

using namespace mcsm;
using bench::Context;

int main() {
    Context& ctx = Context::get();
    const double vdd = ctx.vdd();

    std::printf("# Ablation: explicit (paper eqs. 4-5) vs implicit "
                "integration of the MCSM model\n");

    const engine::MisStimulus stim =
        engine::nor2_simultaneous_fall(vdd, 1.0e-9);
    const double cl = 5e-15;

    // Implicit reference.
    core::ModelLoadSpec load;
    load.cap = cl;
    core::ModelCell cell(ctx.nor_mcsm(), {{"A", stim.a}, {"B", stim.b}}, load);
    spice::TranOptions topt;
    topt.tstop = 2.5e-9;
    topt.dt = 0.5e-12;
    const wave::Waveform implicit_out =
        cell.run(topt).node_waveform(cell.out_node());
    const double d_imp =
        wave::delay_50(stim.a, false, implicit_out, true, vdd, 0.8e-9)
            .value_or(-1);

    TablePrinter table({"dt_ps", "explicit_delay_ps", "delta_vs_implicit_ps",
                        "rmse_pct_vdd"});
    double err_small_dt = 1e9;
    for (const double dt : {2e-12, 1e-12, 0.5e-12, 0.25e-12, 0.1e-12}) {
        core::ExplicitOptions eopt;
        eopt.tstop = 2.5e-9;
        eopt.dt = dt;
        eopt.load_cap = cl;
        const core::ExplicitResult er =
            core::simulate_explicit(ctx.nor_mcsm(), {stim.a, stim.b}, eopt);
        const double d_exp =
            wave::delay_50(stim.a, false, er.out, true, vdd, 0.8e-9)
                .value_or(-1);
        const double rmse = 100.0 * wave::rmse_normalized(
                                        implicit_out, er.out, 0.8e-9, 2.4e-9,
                                        vdd);
        const double delta = (d_exp - d_imp) * 1e12;
        if (dt <= 0.25e-12) err_small_dt = std::min(err_small_dt,
                                                    std::fabs(delta));
        table.add_row({TablePrinter::num(dt * 1e12, 3),
                       TablePrinter::num(d_exp * 1e12, 4),
                       TablePrinter::num(delta, 3),
                       TablePrinter::num(rmse, 3)});
    }
    table.print_csv(std::cout);
    std::printf("# implicit reference delay: %.3f ps\n", d_imp * 1e12);

    bench::Checker check;
    check.check(d_imp > 0.0, "implicit reference measured");
    check.check(err_small_dt < 1.0,
                "explicit scheme converges to the implicit solution "
                "(delta < 1 ps at dt <= 0.25 ps)");
    return check.exit_code();
}
