// Ablation A2: LUT grid resolution vs model accuracy and characterization
// cost (table size). Sweeps the per-axis grid of the NOR2 MCSM tables and
// reports the fast-history FO-equivalent delay error.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table_printer.h"
#include "core/characterizer.h"
#include "core/model_scenarios.h"
#include "engine/scenarios.h"
#include "wave/metrics.h"

using namespace mcsm;
using bench::Context;

int main() {
    Context& ctx = Context::get();
    const double vdd = ctx.vdd();
    const core::Characterizer chr(ctx.lib());

    std::printf("# Ablation: grid resolution vs accuracy (NOR2 MCSM, "
                "model-linearization caps)\n");

    const engine::HistoryStimulus stim =
        engine::nor2_history(engine::HistoryCase::kFast10, vdd);
    spice::TranOptions topt;
    topt.tstop = 3.5e-9;
    topt.dt = 1e-12;

    engine::GoldenCell golden(ctx.lib(), "NOR2",
                              {{"A", stim.a}, {"B", stim.b}},
                              engine::LoadSpec{5e-15, 0, ""});
    const wave::Waveform g = golden.run(topt).node_waveform(golden.out_node());
    const double dg =
        wave::delay_50(stim.a, false, g, true, vdd, stim.t_final - 0.2e-9)
            .value_or(-1);

    TablePrinter table({"grid_points", "table_entries", "char_ms",
                        "delay_err_pct", "rmse_pct_vdd"});
    std::vector<double> errs;
    for (const std::size_t grid : {5u, 7u, 9u, 13u, 17u}) {
        core::CharOptions opt;
        opt.grid_points = grid;
        opt.transient_caps = false;
        const auto start = std::chrono::steady_clock::now();
        const core::CsmModel model =
            chr.characterize("NOR2", core::ModelKind::kMcsm, {"A", "B"}, opt);
        const auto elapsed =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();

        core::ModelLoadSpec load;
        load.cap = 5e-15;
        core::ModelCell mc(model, {{"A", stim.a}, {"B", stim.b}}, load);
        const wave::Waveform m = mc.run(topt).node_waveform(mc.out_node());
        const double dm = wave::delay_50(stim.a, false, m, true, vdd,
                                         stim.t_final - 0.2e-9)
                              .value_or(-1);
        const double err = 100.0 * std::fabs(dm - dg) / dg;
        const double rmse = 100.0 * wave::rmse_normalized(
                                        g, m, 1.9e-9, 2.8e-9, vdd);
        errs.push_back(err);
        table.add_row({std::to_string(grid),
                       std::to_string(model.i_out.value_count()),
                       TablePrinter::num(elapsed, 4),
                       TablePrinter::num(err, 3),
                       TablePrinter::num(rmse, 3)});
    }
    table.print_csv(std::cout);

    bench::Checker check;
    check.check(errs.back() < 5.0, "dense grid reaches paper-level accuracy");
    check.check(errs.back() <= errs.front() + 0.5,
                "accuracy does not degrade with refinement");
    return check.exit_code();
}
