#include "bench_util.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <unordered_map>

#include "spice/dc_solver.h"
#include "spice/device_batch.h"
#include "spice/solver_workspace.h"
#include "spice/tran_solver.h"
#include "wave/edges.h"

namespace mcsm::bench {

Context::Context() : tech_(tech::make_tech130()), lib_(tech_), chr_(lib_) {
    const char* faithful = std::getenv("MCSM_FAITHFUL_CAPS");
    faithful_caps_ = (faithful != nullptr && faithful[0] == '1');
    if (const char* grid = std::getenv("MCSM_GRID"))
        grid_override_ = static_cast<std::size_t>(std::atoi(grid));
    if (faithful_caps_)
        std::printf(
            "# characterization: paper-faithful transient capacitance "
            "extraction enabled\n");
}

Context& Context::get() {
    static Context ctx;
    return ctx;
}

core::CharOptions Context::char_options(std::size_t grid_points) const {
    core::CharOptions opt;
    opt.grid_points = grid_override_ ? grid_override_ : grid_points;
    opt.transient_caps = faithful_caps_;
    return opt;
}

const core::CsmModel& Context::inv_sis() {
    if (!inv_sis_) {
        inv_sis_ = chr_.characterize("INV_X1", core::ModelKind::kSis, {"A"},
                                     char_options(13));
    }
    return *inv_sis_;
}

const core::CsmModel& Context::nor_mcsm() {
    if (!nor_mcsm_) {
        // 4-D tables: keep the default grid moderate.
        auto opt = char_options(faithful_caps_ ? 7 : 11);
        nor_mcsm_ =
            chr_.characterize("NOR2", core::ModelKind::kMcsm, {"A", "B"}, opt);
    }
    return *nor_mcsm_;
}

const core::CsmModel& Context::nor_mis_baseline() {
    if (!nor_mis_) {
        auto opt = char_options(faithful_caps_ ? 9 : 11);
        nor_mis_ = chr_.characterize("NOR2", core::ModelKind::kMisBaseline,
                                     {"A", "B"}, opt);
    }
    return *nor_mis_;
}

const core::CsmModel& Context::nor_sis_a() {
    if (!nor_sis_a_) {
        nor_sis_a_ = chr_.characterize("NOR2", core::ModelKind::kSis, {"A"},
                                       char_options(13));
    }
    return *nor_sis_a_;
}

BenchTiming time_reps_ms(int reps, const std::function<void()>& body) {
    using Clock = std::chrono::steady_clock;
    BenchTiming t;
    t.reps = reps;
    t.min_ms = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
        const auto t0 = Clock::now();
        body();
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - t0)
                .count();
        t.min_ms = std::min(t.min_ms, ms);
        t.mean_ms += ms;
    }
    t.mean_ms /= static_cast<double>(reps > 0 ? reps : 1);
    if (reps == 0) t.min_ms = 0.0;
    return t;
}

void Checker::check(bool ok, const std::string& message) {
    std::printf("[%s] %s\n", ok ? "PASS" : "FAIL", message.c_str());
    if (!ok) failed_ = true;
}

void print_waveform_header(const std::vector<std::string>& labels) {
    std::printf("t_ns");
    for (const auto& l : labels) std::printf(",%s", l.c_str());
    std::printf("\n");
}

void print_waveform_rows(const std::vector<const wave::Waveform*>& waves,
                         double t0, double t1, double step) {
    for (double t = t0; t <= t1 + 0.5 * step; t += step) {
        std::printf("%.4f", t * 1e9);
        for (const wave::Waveform* w : waves) std::printf(",%.4f", w->at(t));
        std::printf("\n");
    }
}

spice::Circuit make_chain_circuit(const cells::CellLibrary& lib, int stages) {
    using spice::Circuit;
    using spice::SourceSpec;
    const double vdd_v = lib.tech().vdd;
    Circuit c;
    const int vdd = c.node("vdd");
    c.add_vsource("VDD", vdd, Circuit::kGround, SourceSpec::dc(vdd_v));
    c.add_vsource("VIN", c.node("n0"), Circuit::kGround,
                  SourceSpec::pwl(wave::piecewise_edges(
                      0.0, {{0.2e-9, 80e-12, vdd_v}})));
    c.add_vsource("VB", c.node("b"), Circuit::kGround, SourceSpec::dc(0.0));
    for (int s = 0; s < stages; ++s) {
        const cells::CellType& cell = lib.get(s % 2 == 0 ? "NOR2" : "INV_X1");
        // Built with += to dodge GCC 12 -Wrestrict false positives on
        // `const char* + std::string&&` (see test_sta_scale.cpp).
        std::string net_in = "n";
        net_in += std::to_string(s);
        std::string net_out = "n";
        net_out += std::to_string(s + 1);
        std::string name = "U";
        name += std::to_string(s);
        std::unordered_map<std::string, int> conn;
        conn[cells::kVdd] = vdd;
        conn[cells::kGnd] = Circuit::kGround;
        conn["A"] = c.node_id(net_in);
        if (s % 2 == 0) conn["B"] = c.node_id("b");
        conn[cells::kOut] = c.node(net_out);
        cell.instantiate(c, name, conn);
    }
    return c;
}

double time_newton_cycle_us(const cells::CellLibrary& lib, int stages,
                            spice::SolverBackend backend) {
    using Clock = std::chrono::steady_clock;
    spice::Circuit c = make_chain_circuit(lib, stages);
    c.set_solver_backend(backend);
    const spice::DcResult op = spice::solve_dc(c);
    spice::SolverWorkspace& ws = c.workspace();

    spice::SimContext ctx;
    ctx.mode = spice::SimContext::Mode::kDc;
    ctx.x = &op.x;
    const int reps = 2000;
    const auto t0 = Clock::now();
    for (int r = 0; r < reps; ++r) {
        spice::Stamper& st = ws.begin_assembly();
        for (const auto& dev : c.devices()) dev->stamp(st, ctx);
        st.add_gmin_everywhere(1e-12);
        (void)ws.solve();
    }
    return std::chrono::duration<double, std::micro>(Clock::now() - t0)
               .count() /
           reps;
}

double time_device_eval_us(const cells::CellLibrary& lib, int stages,
                           bool batched) {
    using Clock = std::chrono::steady_clock;
    spice::Circuit c = make_chain_circuit(lib, stages);
    c.set_solver_backend(spice::SolverBackend::kSparse);
    const spice::DcResult op = spice::solve_dc(c);
    spice::SolverWorkspace& ws = c.workspace();

    spice::SimContext ctx;
    ctx.mode = spice::SimContext::Mode::kDc;
    ctx.x = &op.x;
    const int reps = 4000;
    const auto t0 = Clock::now();
    for (int r = 0; r < reps; ++r) {
        if (batched) {
            (void)ws.assemble(ctx);
        } else {
            spice::Stamper& st = ws.begin_assembly();
            for (const auto& dev : c.devices()) dev->stamp(st, ctx);
        }
    }
    return std::chrono::duration<double, std::micro>(Clock::now() - t0)
               .count() /
           reps;
}

double time_ekv_kernel_us(const cells::CellLibrary& lib, int stages,
                          bool lanes) {
    using Clock = std::chrono::steady_clock;
    spice::Circuit c = make_chain_circuit(lib, stages);
    c.set_solver_backend(spice::SolverBackend::kSparse);
    const spice::DcResult op = spice::solve_dc(c);
    const spice::MosfetBatch& batch = c.workspace().mosfet_batch();
    std::vector<spice::MosCurrent> out(batch.size());

    const int reps = 20000;
    const auto t0 = Clock::now();
    for (int r = 0; r < reps; ++r) {
        if (lanes)
            batch.evaluate_lanes(op.x, out.data());
        else
            batch.evaluate(op.x, out.data(), /*fast=*/true);
    }
    return std::chrono::duration<double, std::micro>(Clock::now() - t0)
               .count() /
           reps;
}

double time_multi_rhs_us(const cells::CellLibrary& lib, int stages,
                         std::size_t nrhs, bool blocked) {
    using Clock = std::chrono::steady_clock;
    spice::Circuit c = make_chain_circuit(lib, stages);
    c.set_solver_backend(spice::SolverBackend::kSparse);
    const spice::DcResult op = spice::solve_dc(c);
    spice::SolverWorkspace& ws = c.workspace();

    // Leave a representative assembly in the workspace storage.
    spice::SimContext ctx;
    ctx.mode = spice::SimContext::Mode::kDc;
    ctx.x = &op.x;
    spice::Stamper& st = ws.assemble(ctx);
    st.add_gmin_everywhere(1e-12);

    const std::size_t n = ws.system_size();
    std::vector<double> b(n * nrhs);
    std::vector<double> x(n * nrhs);
    for (std::size_t i = 0; i < b.size(); ++i)
        b[i] = 1e-6 * static_cast<double>(i % 23);

    const int reps = 500;
    const auto t0 = Clock::now();
    for (int r = 0; r < reps; ++r) {
        if (blocked) {
            ws.factor();
            ws.solve_block(b.data(), x.data(), nrhs);
        } else {
            for (std::size_t k = 0; k < nrhs; ++k) {
                ws.factor();
                ws.solve_block(b.data() + k * n, x.data() + k * n, 1);
            }
        }
    }
    return std::chrono::duration<double, std::micro>(Clock::now() - t0)
               .count() /
           reps;
}

double time_dc_sweep_ms(const cells::CellLibrary& lib,
                        spice::SolverBackend backend, BenchTiming* timing) {
    using spice::Circuit;
    using spice::SourceSpec;
    const double vdd_v = lib.tech().vdd;

    // NOR2 with every modeled node forced, like the MCSM characterization
    // fixture: pins A/B, the internal stack node, and OUT.
    Circuit c;
    const int vdd = c.node("vdd");
    c.add_vsource("VDD", vdd, Circuit::kGround, SourceSpec::dc(vdd_v));
    const int a = c.node("a");
    const int b = c.node("b");
    const int out = c.node("out");
    c.add_vsource("VA", a, Circuit::kGround, SourceSpec::dc(0.0));
    c.add_vsource("VB", b, Circuit::kGround, SourceSpec::dc(0.0));
    c.add_vsource("VOUT", out, Circuit::kGround, SourceSpec::dc(0.0));
    const cells::CellType& nor = lib.get("NOR2");
    std::unordered_map<std::string, int> conn{{cells::kVdd, vdd},
                                              {cells::kGnd, 0},
                                              {"A", a},
                                              {"B", b},
                                              {cells::kOut, out}};
    std::vector<spice::VSource*> swept;
    for (const std::string& formal : nor.internal_nodes()) {
        const int n = c.node("int_" + formal);
        conn[formal] = n;
        c.add_vsource("VN_" + formal, n, Circuit::kGround,
                      SourceSpec::dc(0.0));
    }
    nor.instantiate(c, "DUT", conn);
    c.set_solver_backend(backend);
    c.prepare();
    swept.push_back(&c.vsource("VA"));
    swept.push_back(&c.vsource("VB"));
    for (const std::string& formal : nor.internal_nodes())
        swept.push_back(&c.vsource("VN_" + formal));
    swept.push_back(&c.vsource("VOUT"));

    const std::vector<double> knots{-0.2, 0.0, 0.4, 0.8, 1.2, 1.4};
    const std::size_t dim = swept.size();
    std::vector<double> values;
    std::vector<std::size_t> idx(dim, 0);
    bool more = true;
    while (more) {
        for (std::size_t d = 0; d < dim; ++d)
            values.push_back(knots[idx[d]]);
        more = false;
        for (std::size_t d = dim; d-- > 0;) {
            if (++idx[d] < knots.size()) {
                more = true;
                break;
            }
            idx[d] = 0;
        }
    }
    const std::size_t n_points = values.size() / dim;

    const BenchTiming t = time_reps_ms(2, [&] {
        double sink = 0.0;
        spice::solve_dc_sweep(
            c, swept, values, n_points, {}, nullptr,
            [&](std::size_t, const std::vector<double>& x) {
                sink += x.back();
            });
        if (sink == 1e300) std::printf("#");  // keep the sweep observable
    });
    if (timing != nullptr) *timing = t;
    return t.min_ms;
}

double time_chain_transient_ms(const cells::CellLibrary& lib, int stages,
                               spice::SolverBackend backend,
                               wave::Waveform* far_out, BenchTiming* timing) {
    spice::TranOptions topt;
    topt.tstop = 2.5e-9;
    topt.dt = 2e-12;
    // Circuit construction stays outside the timed window (it is setup, not
    // solver work); only the solve_tran call itself is measured per rep.
    using Clock = std::chrono::steady_clock;
    BenchTiming t;
    t.reps = 3;
    t.min_ms = 1e300;
    for (int rep = 0; rep < t.reps; ++rep) {
        spice::Circuit c = make_chain_circuit(lib, stages);
        c.set_solver_backend(backend);
        const auto t0 = Clock::now();
        const spice::TranResult res = spice::solve_tran(c, topt);
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - t0)
                .count();
        t.min_ms = std::min(t.min_ms, ms);
        t.mean_ms += ms;
        if (far_out != nullptr) {
            std::string far_net = "n";
            far_net += std::to_string(stages);
            *far_out = res.node_waveform(c.node_id(far_net));
        }
    }
    t.mean_ms /= static_cast<double>(t.reps);
    if (timing != nullptr) *timing = t;
    return t.min_ms;
}

double time_chain_transient_fast_ms(const cells::CellLibrary& lib, int stages,
                                    bool reuse_jacobian, double* reuse_rate,
                                    wave::Waveform* far_out,
                                    BenchTiming* timing) {
    using Clock = std::chrono::steady_clock;
    spice::TranOptions topt = spice::fast_tran_options(2.5e-9, 2e-12);
    topt.reuse_jacobian = reuse_jacobian;
    BenchTiming t;
    t.reps = 3;
    t.min_ms = 1e300;
    for (int rep = 0; rep < t.reps; ++rep) {
        spice::Circuit c = make_chain_circuit(lib, stages);
        c.set_solver_backend(spice::SolverBackend::kSparse);
        const auto t0 = Clock::now();
        const spice::TranResult res = spice::solve_tran(c, topt);
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - t0)
                .count();
        t.min_ms = std::min(t.min_ms, ms);
        t.mean_ms += ms;
        if (reuse_rate != nullptr) {
            const spice::TranStats& st = res.stats();
            *reuse_rate =
                st.steps_accepted > 0
                    ? static_cast<double>(st.jacobian_reuse_steps) /
                          static_cast<double>(st.steps_accepted)
                    : 0.0;
        }
        if (far_out != nullptr) {
            std::string far_net = "n";
            far_net += std::to_string(stages);
            *far_out = res.node_waveform(c.node_id(far_net));
        }
    }
    t.mean_ms /= static_cast<double>(t.reps);
    if (timing != nullptr) *timing = t;
    return t.min_ms;
}

double time_characterize_nor2_ms(const cells::CellLibrary& lib,
                                 const core::CharOptions& opt,
                                 BenchTiming* timing) {
    const core::Characterizer chr(lib);
    const BenchTiming t = time_reps_ms(2, [&] {
        const core::CsmModel model = chr.characterize(
            "NOR2", core::ModelKind::kMcsm, {"A", "B"}, opt);
        (void)model;
    });
    if (timing != nullptr) *timing = t;
    return t.min_ms;
}

}  // namespace mcsm::bench
