#include "bench_util.h"

#include <cmath>
#include <cstdio>
#include <iostream>
#include <cstdlib>

namespace mcsm::bench {

Context::Context() : tech_(tech::make_tech130()), lib_(tech_), chr_(lib_) {
    const char* faithful = std::getenv("MCSM_FAITHFUL_CAPS");
    faithful_caps_ = (faithful != nullptr && faithful[0] == '1');
    if (const char* grid = std::getenv("MCSM_GRID"))
        grid_override_ = static_cast<std::size_t>(std::atoi(grid));
    if (faithful_caps_)
        std::printf(
            "# characterization: paper-faithful transient capacitance "
            "extraction enabled\n");
}

Context& Context::get() {
    static Context ctx;
    return ctx;
}

core::CharOptions Context::char_options(std::size_t grid_points) const {
    core::CharOptions opt;
    opt.grid_points = grid_override_ ? grid_override_ : grid_points;
    opt.transient_caps = faithful_caps_;
    return opt;
}

const core::CsmModel& Context::inv_sis() {
    if (!inv_sis_) {
        inv_sis_ = chr_.characterize("INV_X1", core::ModelKind::kSis, {"A"},
                                     char_options(13));
    }
    return *inv_sis_;
}

const core::CsmModel& Context::nor_mcsm() {
    if (!nor_mcsm_) {
        // 4-D tables: keep the default grid moderate.
        auto opt = char_options(faithful_caps_ ? 7 : 11);
        nor_mcsm_ =
            chr_.characterize("NOR2", core::ModelKind::kMcsm, {"A", "B"}, opt);
    }
    return *nor_mcsm_;
}

const core::CsmModel& Context::nor_mis_baseline() {
    if (!nor_mis_) {
        auto opt = char_options(faithful_caps_ ? 9 : 11);
        nor_mis_ = chr_.characterize("NOR2", core::ModelKind::kMisBaseline,
                                     {"A", "B"}, opt);
    }
    return *nor_mis_;
}

const core::CsmModel& Context::nor_sis_a() {
    if (!nor_sis_a_) {
        nor_sis_a_ = chr_.characterize("NOR2", core::ModelKind::kSis, {"A"},
                                       char_options(13));
    }
    return *nor_sis_a_;
}

void Checker::check(bool ok, const std::string& message) {
    std::printf("[%s] %s\n", ok ? "PASS" : "FAIL", message.c_str());
    if (!ok) failed_ = true;
}

void print_waveform_header(const std::vector<std::string>& labels) {
    std::printf("t_ns");
    for (const auto& l : labels) std::printf(",%s", l.c_str());
    std::printf("\n");
}

void print_waveform_rows(const std::vector<const wave::Waveform*>& waves,
                         double t0, double t1, double step) {
    for (double t = t0; t <= t1 + 0.5 * step; t += step) {
        std::printf("%.4f", t * 1e9);
        for (const wave::Waveform* w : waves) std::printf(",%.4f", w->at(t));
        std::printf("\n");
    }
}

}  // namespace mcsm::bench
