// Shared context for the figure-reproduction harnesses: the technology,
// cell library, and lazily characterized CSM models, plus small reporting
// helpers.
//
// Environment knobs:
//   MCSM_FAITHFUL_CAPS=1  use the paper-faithful transient capacitance
//                         extraction instead of the fast model-linearization
//                         (slower; an ablation bench shows they agree).
//   MCSM_GRID=<n>         per-axis grid points for the current tables.
#ifndef MCSM_BENCH_BENCH_UTIL_H
#define MCSM_BENCH_BENCH_UTIL_H

#include <functional>
#include <optional>
#include <string>

#include "cells/library.h"
#include "core/characterizer.h"
#include "core/model.h"
#include "spice/circuit.h"
#include "tech/tech130.h"
#include "wave/waveform.h"

namespace mcsm::bench {

class Context {
public:
    // Lazy singleton: models are characterized on first use.
    static Context& get();

    const tech::Technology& tech() const { return tech_; }
    const cells::CellLibrary& lib() const { return lib_; }
    double vdd() const { return tech_.vdd; }

    const core::CsmModel& inv_sis();
    const core::CsmModel& nor_mcsm();
    const core::CsmModel& nor_mis_baseline();
    const core::CsmModel& nor_sis_a();  // SIS model of NOR2 through pin A

    core::CharOptions char_options(std::size_t grid_points) const;

private:
    Context();

    tech::Technology tech_;
    cells::CellLibrary lib_;
    core::Characterizer chr_;
    bool faithful_caps_ = false;
    std::size_t grid_override_ = 0;

    std::optional<core::CsmModel> inv_sis_;
    std::optional<core::CsmModel> nor_mcsm_;
    std::optional<core::CsmModel> nor_mis_;
    std::optional<core::CsmModel> nor_sis_a_;
};

// Prints "[PASS] msg" / "[FAIL] msg" and tracks the overall exit code.
class Checker {
public:
    void check(bool ok, const std::string& message);
    // 0 when every check passed, 1 otherwise.
    int exit_code() const { return failed_ ? 1 : 0; }

private:
    bool failed_ = false;
};

// Prints a decimated waveform series as CSV columns "t_ns,<label>".
void print_waveform_header(const std::vector<std::string>& labels);
void print_waveform_rows(const std::vector<const wave::Waveform*>& waves,
                         double t0, double t1, double step);

// NOR2/INV chain of `stages` cells driven by one rising edge, flattened to
// one transistor-level Circuit - the flat-netlist scale scenario for the
// solver benches (node ids of net k are circuit.node_id("n<k>"), side
// input "b" held low).
spice::Circuit make_chain_circuit(const cells::CellLibrary& lib, int stages);

// --- solver-stage wall-clock timers -----------------------------------
// Shared by bench_solver_core and bench_perf_speedup's BENCH_perf.json so
// the two reports measure the same thing.
//
// Every timer here runs on std::chrono::steady_clock (monotonic: NTP steps
// and wall-time adjustments can never skew a measurement) and aggregates
// repetitions through time_reps_ms, which reports min-of-N alongside the
// mean: the JSON gates compare the noise-resistant minimum, the mean makes
// run-to-run spread visible in the artifacts.

struct BenchTiming {
    double min_ms = 0.0;   // best-of-N: the gate number
    double mean_ms = 0.0;  // average over N: the noise indicator
    int reps = 0;
};

// Runs `body` `reps` times on steady_clock and aggregates.
BenchTiming time_reps_ms(int reps, const std::function<void()>& body);

// Per-cycle cost of the Newton inner loop (assemble + factor + solve) on
// the flattened chain, microseconds.
double time_newton_cycle_us(const cells::CellLibrary& lib, int stages,
                            spice::SolverBackend backend);

// Per-assembly cost of the device-evaluation pass alone (no solve) on the
// sparse workspace: `batched` runs the SoA evaluate-and-stamp entry point
// the solvers use; otherwise the legacy virtual per-device loop writes the
// same CSR storage. Microseconds.
double time_device_eval_us(const cells::CellLibrary& lib, int stages,
                           bool batched);

// Per-pass cost of the pure EKV device-evaluation kernel on the flattened
// chain's MosfetBatch (no stamping, no CSR writes): `lanes` runs the
// dispatched SIMD lane kernel through evaluate_lanes, otherwise the scalar
// fast kernel through evaluate(fast=true). This isolates the math the SIMD
// tier vectorizes; time_device_eval_us measures the whole assembly
// including the scalar stamping that follows either kernel. Microseconds.
double time_ekv_kernel_us(const cells::CellLibrary& lib, int stages,
                          bool lanes);

// Per-batch cost of producing `nrhs` solutions on the chain circuit's
// factored system, microseconds. `blocked` uses one refactor plus one
// interleaved SparseLu::solve_block; otherwise each solution pays its own
// refactor + single-RHS solve (the point-by-point Newton pattern).
double time_multi_rhs_us(const cells::CellLibrary& lib, int stages,
                         std::size_t nrhs, bool blocked);

// Wall clock of a characterization-style DC bias sweep (NOR2 with every
// modeled node forced, 6^4 grid points), milliseconds. The dense backend
// takes the retained point-by-point path; the sparse backend runs the
// blocked solve_dc_sweep.
double time_dc_sweep_ms(const cells::CellLibrary& lib,
                        spice::SolverBackend backend,
                        BenchTiming* timing = nullptr);

// Best-of-3 wall clock of the full chain transient, milliseconds. When
// far_out is non-null it receives the far-end output waveform; `timing`,
// when non-null, receives the full min/mean aggregate.
double time_chain_transient_ms(const cells::CellLibrary& lib, int stages,
                               spice::SolverBackend backend,
                               wave::Waveform* far_out = nullptr,
                               BenchTiming* timing = nullptr);

// Best-of-3 wall clock of the chain transient on the sparse backend with
// the fast path (LTE-adaptive dt, optional Jacobian reuse), milliseconds.
// Same window as time_chain_transient_ms (2.5 ns / 2 ps record grid).
// When reuse_rate is non-null it receives jacobian_reuse_steps /
// steps_accepted of the last rep; far_out works as above.
double time_chain_transient_fast_ms(const cells::CellLibrary& lib, int stages,
                                    bool reuse_jacobian,
                                    double* reuse_rate = nullptr,
                                    wave::Waveform* far_out = nullptr,
                                    BenchTiming* timing = nullptr);

// Best-of-2 wall clock of a NOR2 MCSM characterization with `opt`,
// milliseconds (the caller sets grid/threads/backend on opt).
double time_characterize_nor2_ms(const cells::CellLibrary& lib,
                                 const core::CharOptions& opt,
                                 BenchTiming* timing = nullptr);

}  // namespace mcsm::bench

#endif  // MCSM_BENCH_BENCH_UTIL_H
