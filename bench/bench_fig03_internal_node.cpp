// Fig. 3: voltage waveforms of the NOR2 internal node N for the two input
// histories of Section 2.2 ('10'->'11'->'00' vs '01'->'11'->'00'), simulated
// on the transistor-level substrate. N1 parks near Vdd (plus the delta-V1
// charge-injection bump when B rises); N2 parks near the body-affected
// |Vt,p| (plus a delta-V2 bump when A rises).
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "engine/scenarios.h"

using namespace mcsm;
using bench::Context;

int main() {
    Context& ctx = Context::get();
    const double vdd = ctx.vdd();

    std::printf("# Fig. 3: NOR2 internal node voltage under two input "
                "histories (golden substrate)\n");

    spice::TranOptions topt;
    topt.tstop = 3.2e-9;
    topt.dt = 1e-12;

    struct Run {
        engine::HistoryCase hc;
        const char* label;
        wave::Waveform n;
        wave::Waveform a;
        wave::Waveform b;
        double vn_before_final = 0.0;
        double vn_peak_after_mid = 0.0;
    };
    std::vector<Run> runs{{engine::HistoryCase::kFast10, "N1", {}, {}, {}, 0, 0},
                          {engine::HistoryCase::kSlow01, "N2", {}, {}, {}, 0, 0}};

    for (Run& run : runs) {
        const engine::HistoryStimulus stim =
            engine::nor2_history(run.hc, vdd);
        engine::GoldenCell cell(ctx.lib(), "NOR2",
                                {{"A", stim.a}, {"B", stim.b}},
                                engine::LoadSpec{0.0, 2, "INV_X1"});
        const spice::TranResult r = cell.run(topt);
        run.n = r.node_waveform(cell.node_of("N"));
        run.a = stim.a;
        run.b = stim.b;
        run.vn_before_final = run.n.at(stim.t_final - 10e-12);
        // Peak between the mid edge and the final edge.
        double peak = -1e9;
        for (double t = stim.t_mid; t < stim.t_final; t += 5e-12)
            peak = std::max(peak, run.n.at(t));
        run.vn_peak_after_mid = peak;
    }

    bench::print_waveform_header({"A_case1", "B_case1", "N1", "N2"});
    bench::print_waveform_rows(
        {&runs[0].a, &runs[0].b, &runs[0].n, &runs[1].n}, 0.0, 3.0e-9,
        10e-12);

    std::printf("# summary: V(N1) before final edge = %.3f V, "
                "V(N2) before final edge = %.3f V\n",
                runs[0].vn_before_final, runs[1].vn_before_final);
    std::printf("# paper: N1 ~ Vdd + dV1, N2 ~ |Vt,p| + dV2\n");

    bench::Checker check;
    check.check(runs[0].vn_before_final > vdd - 0.05,
                "case 1 parks the stack node near/above Vdd");
    check.check(runs[0].vn_peak_after_mid > vdd + 0.01,
                "case 1 shows the delta-V1 boost above Vdd");
    check.check(runs[1].vn_before_final > 0.05 &&
                    runs[1].vn_before_final < 0.75,
                "case 2 parks the stack node near the body-affected |Vt,p|");
    check.check(runs[0].vn_before_final - runs[1].vn_before_final > 0.4,
                "the two histories leave clearly different internal states");
    return check.exit_code();
}
