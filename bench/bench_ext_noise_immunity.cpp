// Extension A11: noise-immunity curve. A classic cell-level noise analysis:
// inject input glitches of increasing width at NOR2 pin A (B low) and
// measure the output glitch peak - the curve that separates filtered noise
// from propagated noise. MCSM must reproduce the golden curve, including
// the threshold region, which delay/slew models cannot express at all.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table_printer.h"
#include "core/model_scenarios.h"
#include "engine/scenarios.h"
#include "wave/edges.h"
#include "wave/metrics.h"

using namespace mcsm;
using bench::Context;

int main() {
    Context& ctx = Context::get();
    const double vdd = ctx.vdd();

    std::printf("# Extension: noise-immunity curve - output glitch peak vs "
                "input glitch width (NOR2, FO2)\n");

    spice::TranOptions topt;
    topt.tstop = 3.0e-9;
    topt.dt = 1e-12;

    TablePrinter table({"input_width_ps", "golden_peak_V", "mcsm_peak_V",
                        "golden_out_width_ps", "mcsm_out_width_ps"});
    bench::Checker check;
    double worst_peak_err = 0.0;
    double golden_min_peak = 1e9;
    double golden_max_peak = -1e9;

    for (const double width : {25e-12, 40e-12, 60e-12, 90e-12, 130e-12,
                               190e-12, 280e-12}) {
        // Falling glitch on A (from its non-controlling-high... for NOR A
        // low keeps output high only if B low; here: A rests HIGH (output
        // low) and dips low for `width`, letting the output rise briefly.
        const wave::Waveform a = wave::pulse(1.5e-9, width, 20e-12, vdd, 0.0);
        const wave::Waveform b = wave::Waveform::constant(0.0);

        engine::GoldenCell golden(ctx.lib(), "NOR2", {{"A", a}, {"B", b}},
                                  engine::LoadSpec{0.0, 2, "INV_X1"});
        const wave::Waveform g =
            golden.run(topt).node_waveform(golden.out_node());

        core::ModelLoadSpec load;
        load.fanout_count = 2;
        load.receiver = &ctx.inv_sis();
        core::ModelCell cell(ctx.nor_mcsm(), {{"A", a}, {"B", b}}, load);
        const wave::Waveform m = cell.run(topt).node_waveform(cell.out_node());

        const double g_peak = wave::peak_excursion(g, 0.0, true, 1.4e-9,
                                                   2.9e-9);
        const double m_peak = wave::peak_excursion(m, 0.0, true, 1.4e-9,
                                                   2.9e-9);
        const double g_width =
            wave::width_above(g, 0.5 * vdd, 1.4e-9, 2.9e-9);
        const double m_width =
            wave::width_above(m, 0.5 * vdd, 1.4e-9, 2.9e-9);
        worst_peak_err = std::max(worst_peak_err, std::fabs(m_peak - g_peak));
        golden_min_peak = std::min(golden_min_peak, g_peak);
        golden_max_peak = std::max(golden_max_peak, g_peak);
        table.add_row({TablePrinter::num(width * 1e12, 4),
                       TablePrinter::num(g_peak, 4),
                       TablePrinter::num(m_peak, 4),
                       TablePrinter::num(g_width * 1e12, 4),
                       TablePrinter::num(m_width * 1e12, 4)});
    }
    table.print_csv(std::cout);
    std::printf("# golden peaks span %.3f..%.3f V; worst MCSM peak error "
                "%.3f V\n",
                golden_min_peak, golden_max_peak, worst_peak_err);

    check.check(golden_min_peak < 0.5 * vdd,
                "narrow input glitches are electrically filtered");
    check.check(golden_max_peak > 0.9 * vdd,
                "wide input glitches propagate at (near) full swing");
    check.check(worst_peak_err < 0.12 * vdd,
                "MCSM tracks the immunity curve within 12% of Vdd");
    return check.exit_code();
}
