// Ablation A7: the paper's simplification "we do not model the Miller
// effect between node N and other nodes". On our Meyer-style substrate the
// stack transistor's gate-source capacitance couples the switching input
// straight into the stack node, and ignoring it costs >10% of delay
// accuracy; with the pin->internal Miller tables the error drops to a few
// percent. This bench quantifies both variants against golden.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table_printer.h"
#include "core/characterizer.h"
#include "core/model_scenarios.h"
#include "engine/scenarios.h"
#include "wave/metrics.h"

using namespace mcsm;
using bench::Context;

int main() {
    Context& ctx = Context::get();
    const double vdd = ctx.vdd();
    const core::Characterizer chr(ctx.lib());

    std::printf("# Ablation: pin->internal-node Miller caps (paper neglects "
                "them; Section 3.2)\n");

    core::CharOptions with_opt = ctx.char_options(11);
    with_opt.internal_miller = true;
    core::CharOptions without_opt = with_opt;
    without_opt.internal_miller = false;

    const core::CsmModel with_miller = chr.characterize(
        "NOR2", core::ModelKind::kMcsm, {"A", "B"}, with_opt);
    const core::CsmModel without_miller = chr.characterize(
        "NOR2", core::ModelKind::kMcsm, {"A", "B"}, without_opt);

    spice::TranOptions topt;
    topt.tstop = 3.5e-9;
    topt.dt = 1e-12;

    TablePrinter table({"case", "load_fF", "golden_ps", "with_err_pct",
                        "without_err_pct"});
    double worst_with = 0.0;
    double worst_without = 0.0;
    for (const auto hc :
         {engine::HistoryCase::kFast10, engine::HistoryCase::kSlow01}) {
        const engine::HistoryStimulus stim = engine::nor2_history(hc, vdd);
        for (const double cl : {2e-15, 10e-15}) {
            engine::GoldenCell golden(ctx.lib(), "NOR2",
                                      {{"A", stim.a}, {"B", stim.b}},
                                      engine::LoadSpec{cl, 0, ""});
            const wave::Waveform g =
                golden.run(topt).node_waveform(golden.out_node());
            const double dg = wave::delay_50(stim.a, false, g, true, vdd,
                                             stim.t_final - 0.2e-9)
                                  .value_or(-1);

            double err[2] = {0.0, 0.0};
            const core::CsmModel* models[2] = {&with_miller, &without_miller};
            for (int i = 0; i < 2; ++i) {
                core::ModelLoadSpec load;
                load.cap = cl;
                core::ModelCell mc(*models[i],
                                   {{"A", stim.a}, {"B", stim.b}}, load);
                const wave::Waveform m =
                    mc.run(topt).node_waveform(mc.out_node());
                const double dm = wave::delay_50(stim.a, false, m, true, vdd,
                                                 stim.t_final - 0.2e-9)
                                      .value_or(-1);
                err[i] = 100.0 * std::fabs(dm - dg) / dg;
            }
            worst_with = std::max(worst_with, err[0]);
            worst_without = std::max(worst_without, err[1]);
            table.add_row(
                {hc == engine::HistoryCase::kFast10 ? "fast" : "slow",
                 TablePrinter::num(cl * 1e15, 3),
                 TablePrinter::num(dg * 1e12, 4),
                 TablePrinter::num(err[0], 3), TablePrinter::num(err[1], 3)});
        }
    }
    table.print_csv(std::cout);
    std::printf("# worst-case: with pin->N Miller %.2f%%, paper "
                "simplification %.2f%%\n",
                worst_with, worst_without);

    bench::Checker check;
    check.check(worst_with < 5.0, "extended model within 5% everywhere");
    check.check(worst_without > worst_with,
                "neglecting pin->N Miller hurts on this substrate");
    return check.exit_code();
}
